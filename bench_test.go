package mpu_test

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its experiment through internal/exp and reports the
// headline statistic the paper quotes as a custom metric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
// (`cmd/mastodon` prints the full rows.)

import (
	"fmt"
	"testing"
	"time"

	"mpu"
	"mpu/internal/apps"
	"mpu/internal/exp"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

// benchOpts shrink working sets for bench runs; the simulated portion (and
// thus the measured shapes) is unchanged — only the analytic scale factors
// move. Workers is left at 0 so the figure benchmarks exercise the default
// parallel sweep path (one worker per CPU); the *Sequential/*Parallel
// variants below pin the worker count for scaling comparisons.
var benchOpts = exp.Options{Scale: 8, Seed: 1}

var (
	seqOpts = exp.Options{Scale: 8, Seed: 1, Workers: 1}
	parOpts = exp.Options{Scale: 8, Seed: 1, Workers: 0}
)

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.Slowdown, "slowdown@80instr")
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exp.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := exp.Fig5(benchOpts)
		over := 0
		for _, p := range pts {
			if p.OverLimit {
				over++
			}
		}
		b.ReportMetric(float64(over), "points-over-limit")
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exp.Table3() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exp.Fig11() == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := exp.Fig12(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			switch r.Backend {
			case "RACER":
				b.ReportMetric(r.GeoSpeedup, "racer-speedup")
				b.ReportMetric(r.GeoEnergy, "racer-energy")
			case "MIMDRAM":
				b.ReportMetric(r.GeoSpeedup, "mimdram-speedup")
			case "DualityCache":
				b.ReportMetric(r.GeoSpeedup, "dcache-speedup")
			}
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := exp.Fig13(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Backend == "RACER" {
				b.ReportMetric(r.GeoMPUSpeedup, "racer-vs-gpu")
				b.ReportMetric(r.GeoMPUEnergy, "racer-energy-vs-gpu")
			}
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		ratio := 0.0
		for _, r := range rows {
			ratio += float64(r.AsmLines) / float64(r.EzpimLines)
		}
		b.ReportMetric(ratio/float64(len(rows)), "asm/ezpim-loc")
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig14(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.App == "EditDistance" && r.Backend == "RACER" {
				b.ReportMetric(r.MPUOverBaseline, "editdist-mpu/base")
			}
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig15(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.App == "EditDistance" && r.Backend == "RACER" && r.Mode == "Baseline" {
				b.ReportMetric(r.OffChipShare, "editdist-offchip-share")
			}
		}
	}
}

func BenchmarkAblationRecipeTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationRecipeTable(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[3].DecodeStalls)/float64(rows[0].DecodeStalls+1), "stall-ratio-unopt/opt")
	}
}

func BenchmarkAblationThermal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationThermal(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Speedup, "2-active-speedup")
	}
}

func BenchmarkAblationDivergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationDivergence(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[1].MicroOps)/float64(rows[0].MicroOps), "wasted-work-ratio")
	}
}

// BenchmarkFig12Sequential and BenchmarkFig12Parallel run the heaviest sweep
// (3 backends x 21 kernels x 2 modes = 126 simulation cells) with the worker
// pool pinned to 1 and to one-per-CPU respectively, so
// `go test -bench 'Fig12(Sequential|Parallel)'` tracks the sweep engine's
// wall-clock under both schedules.
func BenchmarkFig12Sequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig12(seqOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig12(parOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSpeedup times one sequential and one parallel Fig. 12 sweep
// per iteration and reports the ratio, so the speedup itself is a tracked
// benchmark metric (1.0 on a single-CPU host, approaching min(NumCPU, 126)x
// as cores are added).
func BenchmarkSweepSpeedup(b *testing.B) {
	var seq, par time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := exp.Fig12(seqOpts); err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		if _, err := exp.Fig12(parOpts); err != nil {
			b.Fatal(err)
		}
		seq += t1.Sub(t0)
		par += time.Since(t1)
	}
	b.ReportMetric(seq.Seconds()/par.Seconds(), "seq/par-speedup")
}

// BenchmarkLintLargestKernel measures the static-verification overhead on
// the largest kernel binary in the suite — the preflight cost every tool in
// the chain (Builder.Program, mpurun, strict machines) pays per program.
func BenchmarkLintLargestKernel(b *testing.B) {
	spec := mpu.RACER()
	var largest mpu.Program
	for _, k := range workloads.All() {
		p, _, err := workloads.BuildProgram(k, spec, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(p) > len(largest) {
			largest = p
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := mpu.Lint(largest, mpu.LintOptions{Spec: spec})
		if !r.Ok() {
			b.Fatalf("largest kernel not lint-ok:\n%s", r)
		}
		b.ReportMetric(float64(len(largest)), "instructions")
	}
}

// BenchmarkMachineRun measures one machine executing the largest kernel in
// the suite — the simulator hot path in isolation from the sweep worker
// pool. The activation limit is pinned to 1 with two VRFs per RFH so every
// ensemble schedules at least two rounds: the /jit variant (the default
// engine) records the first round and replays the rest through compiled
// closure chains, /nojit replays through the step interpreter, and /notrace
// interprets every round — the triple quantifies both the
// compile-once/replay-many win and the JIT's margin on top of it.
func BenchmarkMachineRun(b *testing.B) {
	spec := mpu.RACER()
	var largest *workloads.Kernel
	var size int
	for _, k := range workloads.All() {
		p, _, err := workloads.BuildProgram(k, spec, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(p) > size {
			largest, size = k, len(p)
		}
	}
	const vrfs = 16
	cfg := workloads.RunConfig{
		Spec: spec, Mode: 0, TotalElements: spec.BaselineUnits * spec.Lanes * vrfs,
		Seed: 1, MaxSimVRFs: vrfs, ActiveVRFsOverride: 1,
	}
	for _, bc := range []struct {
		name           string
		noTrace, noJIT bool
	}{{"jit", false, false}, {"nojit", false, true}, {"notrace", true, false}} {
		b.Run(bc.name, func(b *testing.B) {
			c := cfg
			c.NoTrace = bc.noTrace
			c.NoJIT = bc.noJIT
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := workloads.Run(largest, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceReplay isolates the replay hot loop in steady state: the
// machine is built once, a replay-eligible kernel (sobelx) is loaded and run
// once to record its traces and warm the recipe table, and each iteration
// then Rewinds and re-runs it — the resident-kernel regime, where every
// scheduling round is a trace hit and no host data transfer or program load
// is re-paid. The activation limit is pinned to 1 over many VRFs so one Run
// replays many rounds. /jit executes the fused closure chains, /nojit the
// step-interpreted replay, /notrace the plain interpreter; the racer
// geometry (64 lanes, one word per plane) is where the JIT's dispatch
// elimination pays, the simdram geometry (256 lanes, 4-word slabs) is where
// per-word dispatch cost is already amortized and the slab interpreter is
// competitive — both are tracked.
func BenchmarkTraceReplay(b *testing.B) {
	steady := func(b *testing.B, spec *mpu.Backend, vrfs int, noJIT, noTrace bool) {
		var kern *workloads.Kernel
		for _, k := range workloads.All() {
			if k.Name == "sobelx" {
				kern = k
			}
		}
		cfg := workloads.RunConfig{
			Spec: spec, Mode: 0, Seed: 1,
			TotalElements: spec.BaselineUnits * spec.Lanes * vrfs,
			MaxSimVRFs:    vrfs, ActiveVRFsOverride: 1,
			NoJIT: noJIT, NoTrace: noTrace, Workers: 1,
		}
		m, err := machine.New(workloads.MachineConfigFor(cfg))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := workloads.RunOn(m, kern, cfg); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Rewind()
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, bc := range []struct {
		name           string
		noJIT, noTrace bool
	}{{"jit", false, false}, {"nojit", true, false}, {"notrace", false, true}} {
		b.Run("racer/"+bc.name, func(b *testing.B) {
			steady(b, mpu.RACER(), 256, bc.noJIT, bc.noTrace)
		})
	}
	for _, bc := range []struct {
		name           string
		noJIT, noTrace bool
	}{{"jit", false, false}, {"nojit", true, false}} {
		b.Run("simdram/"+bc.name, func(b *testing.B) {
			steady(b, mpu.SIMDRAM(), 64, bc.noJIT, bc.noTrace)
		})
	}
}

// BenchmarkMachineRunMPUs measures ONE machine's phase-based scheduler as
// its core count grows: the editdistance systolic ring (per-MPU work pinned
// to two steps, one VRF per MPU) at 2, 16, and 128 MPUs, run /seq (Workers
// 1, the exact pre-refactor core walk) and /par (Workers 0 = one scheduler
// goroutine per CPU). Stats are byte-identical between the two (pinned by
// TestParallelMachineParity); the wall-clock ratio tracks the intra-machine
// speedup, which approaches min(NumCPU, MPUs)x on multi-core hosts and
// stays 1.0x on a single-CPU host.
func BenchmarkMachineRunMPUs(b *testing.B) {
	for _, n := range []int{2, 16, 128} {
		for _, sc := range []struct {
			name    string
			workers int
		}{{"seq", 1}, {"par", 0}} {
			b.Run(fmt.Sprintf("%d/%s", n, sc.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := apps.RunEditDistance(apps.EditDistanceConfig{
						Spec: mpu.RACER(), Mode: 0, MPUs: n, VRFs: 1, Steps: 2,
						Seed: 1, MachineWorkers: sc.workers,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKernelSuite measures raw simulator throughput over all 21 kernels
// on RACER (the packages' micro-benchmarks cover the layers individually).
func BenchmarkKernelSuite(b *testing.B) {
	spec := mpu.RACER()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, k := range workloads.All() {
			if _, err := workloads.Run(k, workloads.RunConfig{
				Spec: spec, Mode: 0, TotalElements: spec.MPUs * spec.Lanes, Seed: 1,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
