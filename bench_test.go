package mpu_test

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its experiment through internal/exp and reports the
// headline statistic the paper quotes as a custom metric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
// (`cmd/mastodon` prints the full rows.)

import (
	"testing"

	"mpu"
	"mpu/internal/exp"
	"mpu/internal/workloads"
)

// benchOpts shrink working sets for bench runs; the simulated portion (and
// thus the measured shapes) is unchanged — only the analytic scale factors
// move.
var benchOpts = exp.Options{Scale: 8, Seed: 1}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.Slowdown, "slowdown@80instr")
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exp.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := exp.Fig5()
		over := 0
		for _, p := range pts {
			if p.OverLimit {
				over++
			}
		}
		b.ReportMetric(float64(over), "points-over-limit")
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exp.Table3() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exp.Fig11() == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := exp.Fig12(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			switch r.Backend {
			case "RACER":
				b.ReportMetric(r.GeoSpeedup, "racer-speedup")
				b.ReportMetric(r.GeoEnergy, "racer-energy")
			case "MIMDRAM":
				b.ReportMetric(r.GeoSpeedup, "mimdram-speedup")
			case "DualityCache":
				b.ReportMetric(r.GeoSpeedup, "dcache-speedup")
			}
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := exp.Fig13(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.Backend == "RACER" {
				b.ReportMetric(r.GeoMPUSpeedup, "racer-vs-gpu")
				b.ReportMetric(r.GeoMPUEnergy, "racer-energy-vs-gpu")
			}
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		ratio := 0.0
		for _, r := range rows {
			ratio += float64(r.AsmLines) / float64(r.EzpimLines)
		}
		b.ReportMetric(ratio/float64(len(rows)), "asm/ezpim-loc")
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig14(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.App == "EditDistance" && r.Backend == "RACER" {
				b.ReportMetric(r.MPUOverBaseline, "editdist-mpu/base")
			}
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig15(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.App == "EditDistance" && r.Backend == "RACER" && r.Mode == "Baseline" {
				b.ReportMetric(r.OffChipShare, "editdist-offchip-share")
			}
		}
	}
}

func BenchmarkAblationRecipeTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationRecipeTable(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[3].DecodeStalls)/float64(rows[0].DecodeStalls+1), "stall-ratio-unopt/opt")
	}
}

func BenchmarkAblationThermal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationThermal(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Speedup, "2-active-speedup")
	}
}

func BenchmarkAblationDivergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationDivergence(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[1].MicroOps)/float64(rows[0].MicroOps), "wasted-work-ratio")
	}
}

// BenchmarkKernelSuite measures raw simulator throughput over all 21 kernels
// on RACER (the packages' micro-benchmarks cover the layers individually).
func BenchmarkKernelSuite(b *testing.B) {
	spec := mpu.RACER()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, k := range workloads.All() {
			if _, err := workloads.Run(k, workloads.RunConfig{
				Spec: spec, Mode: 0, TotalElements: spec.MPUs * spec.Lanes, Seed: 1,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
