module mpu

go 1.22
