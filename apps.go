package mpu

import "mpu/internal/apps"

// The three end-to-end applications of §VIII-D, runnable on any back end in
// MPU or Baseline mode with bit-exact verification against Go references.

// AppResult summarizes one end-to-end application run.
type AppResult = apps.Result

// LLMEncodeConfig sizes the transformer-encoder application.
type LLMEncodeConfig = apps.LLMEncodeConfig

// BlackScholesConfig sizes the option-pricing application.
type BlackScholesConfig = apps.BlackScholesConfig

// EditDistanceConfig sizes the systolic genome-matching application.
type EditDistanceConfig = apps.EditDistanceConfig

// RunLLMEncode executes a transformer encoder block (matmul, relu,
// layernorm, softmax) across a coordinator and worker MPUs with
// broadcast/scatter/gather collectives.
func RunLLMEncode(cfg LLMEncodeConfig) (*AppResult, error) { return apps.RunLLMEncode(cfg) }

// RunBlackScholes prices European options in fixed point using in-PUM
// ln/sqrt/exp subroutines and a logistic normal CDF, split across two MPUs.
func RunBlackScholes(cfg BlackScholesConfig) (*AppResult, error) { return apps.RunBlackScholes(cfg) }

// RunEditDistance scores genome reads against resident reference chunks with
// bitwise comparisons while queries flow around a systolic ring of MPUs.
func RunEditDistance(cfg EditDistanceConfig) (*AppResult, error) { return apps.RunEditDistance(cfg) }
