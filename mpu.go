// Package mpu is a Go implementation of the Memory Processing Unit (MPU) —
// a microarchitecture-agnostic front end for general-purpose
// processing-using-memory (PUM) datapaths, reproducing "The Memory
// Processing Unit: A Generalized Interface for End-to-End In-Memory
// Execution" (HPCA 2026).
//
// The package exposes the full stack:
//
//   - the MPU ISA (Table II): assembly text, binary encoding, and typed
//     instruction constructors;
//   - the ezpim advanced assembler (§V-C): a small structured language and a
//     programmatic Builder that lower if/else, data-driven while loops, and
//     subroutine calls onto the ISA's masking and jump machinery;
//   - three simulated bitwise-PUM back ends (§IV): ReRAM-based RACER,
//     DRAM-based MIMDRAM, and SRAM-based Duality Cache — every arithmetic
//     result is actually computed by executing the back end's micro-ops on
//     bit planes;
//   - the machine: MPUs with the full control path (precoder, compute
//     controller with recipe tables, EFI, thermal-aware scheduler, data
//     transfer controller) connected by an on-chip mesh, with a Baseline
//     mode that models the original CPU-assisted datapaths;
//   - the 21-kernel evaluation suite, three end-to-end applications, and an
//     experiment harness regenerating every table and figure of the paper.
//
// Quick start:
//
//	prog, _ := mpu.Assemble(`
//	    COMPUTE rfh0 vrf0
//	    ADD r0 r1 r2
//	    COMPUTE_DONE
//	`)
//	m, _ := mpu.NewMachine(mpu.MachineConfig{Spec: mpu.RACER()})
//	_ = m.LoadAll(prog)
//	_ = m.WriteVector(0, mpu.VRFAddr{}, 0, []uint64{1, 2, 3})
//	_ = m.WriteVector(0, mpu.VRFAddr{}, 1, []uint64{10, 20, 30})
//	stats, _ := m.Run()
//	sums, _ := m.ReadVector(0, mpu.VRFAddr{}, 2)
package mpu

import (
	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/ezpim"
	"mpu/internal/fbp"
	"mpu/internal/gpumodel"
	"mpu/internal/hlops"
	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/lint/comm"
	"mpu/internal/machine"
	"mpu/internal/tune"
	"mpu/internal/workloads"
)

// ---- ISA -------------------------------------------------------------------

// Program is a sequence of MPU instructions (one ISU binary).
type Program = isa.Program

// Instr is one MPU instruction.
type Instr = isa.Instr

// Assemble parses MPU assembly text (Table II mnemonics, labels, comments)
// into a validated program.
func Assemble(src string) (Program, error) { return isa.Assemble(src) }

// AssembleWithLines parses MPU assembly text and additionally returns the
// 1-based source line of every instruction, for lint findings and trace
// annotations that point back into the listing.
func AssembleWithLines(src string) (Program, []int, error) { return isa.AssembleWithLines(src) }

// Disassemble renders a program as assembly text.
func Disassemble(p Program) string { return isa.Disassemble(p) }

// EncodeProgram serializes a program into its 32-bit-per-instruction binary
// image; DecodeProgram parses one back.
func EncodeProgram(p Program) []byte { return isa.EncodeProgram(p) }

// DecodeProgram parses an ISU image produced by EncodeProgram.
func DecodeProgram(buf []byte) (Program, error) { return isa.DecodeProgram(buf) }

// ---- ezpim -----------------------------------------------------------------

// Builder assembles MPU programs with structured control flow (the
// programmatic face of the ezpim advanced assembler).
type Builder = ezpim.Builder

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return ezpim.NewBuilder() }

// Cond is an ezpim branch/loop condition; build with Eq/Ne/Lt/Gt/Le/Ge.
type Cond = ezpim.Cond

// Condition constructors (signed comparisons).
var (
	Eq = ezpim.Eq
	Ne = ezpim.Ne
	Lt = ezpim.Lt
	Gt = ezpim.Gt
	Le = ezpim.Le
	Ge = ezpim.Ge
)

// CompileResult carries a compiled ezpim program plus code-size accounting.
type CompileResult = ezpim.CompileResult

// CompileEzpim translates ezpim source text (Fig. 7-style structured
// programs) into an MPU program.
func CompileEzpim(src string) (*CompileResult, error) { return ezpim.Compile(src) }

// ---- FBP pipelines -----------------------------------------------------------

// FBPCompiled is a compiled pipeline: one program per placed MPU plus the
// placement and the machine-level verification report.
type FBPCompiled = fbp.Compiled

// FBPOptions selects the back end and placement cap for CompileFBP.
type FBPOptions = fbp.Options

// FBPPlacedNode names one graph node's MPU assignment.
type FBPPlacedNode = fbp.PlacedNode

// CompileFBP translates FBP graph text (node(Component) OUT -> IN node
// connections plus 'literal' -> PORT iip parameter bindings) into a
// commlint-verified multi-MPU program set. Errors are typed: *fbp.ParseError
// for grammar, *fbp.CompileError for component misuse, *fbp.LintError (with
// the finding report) for graphs the machine-level verifier rejects.
func CompileFBP(src string, opt FBPOptions) (*FBPCompiled, error) {
	return fbp.CompileSource(src, opt)
}

// ---- Back ends ---------------------------------------------------------------

// Backend describes a PUM datapath microarchitecture the MPU front end plugs
// into: geometry, native micro-op capabilities, timing/energy, and the
// constraints the thermal-aware scheduler enforces.
type Backend = backends.Spec

// RACER returns the ReRAM-based RACER back end (bit-pipelined NOR logic).
func RACER() *Backend { return backends.RACER() }

// MIMDRAM returns the DRAM-based MIMDRAM back end (triple-row activation).
func MIMDRAM() *Backend { return backends.MIMDRAM() }

// DualityCache returns the SRAM-based Duality Cache back end (bitline logic
// with CMOS full adders).
func DualityCache() *Backend { return backends.DualityCache() }

// Backends returns all shipped back ends in the paper's order.
func Backends() []*Backend { return backends.All() }

// BackendByName resolves "racer", "mimdram", or "dcache"/"dualitycache".
func BackendByName(name string) (*Backend, error) { return backends.ByName(name) }

// ---- Machine -----------------------------------------------------------------

// Machine is a simulated chip: MPUs in front of a PUM back end, connected by
// an on-chip mesh.
type Machine = machine.Machine

// MachineConfig assembles a machine.
type MachineConfig = machine.Config

// Stats aggregates the costs of one run.
type Stats = machine.Stats

// Mode selects who executes control flow: the MPU control path or the
// Baseline host CPU.
type Mode = machine.Mode

// Execution modes.
const (
	ModeMPU      = machine.ModeMPU
	ModeBaseline = machine.ModeBaseline
)

// VRFAddr names one vector register file within an MPU.
type VRFAddr = controlpath.VRFAddr

// NewMachine builds a machine from the configuration.
func NewMachine(cfg MachineConfig) (*Machine, error) { return machine.New(cfg) }

// ---- Workloads ----------------------------------------------------------------

// Kernel is one of the 21 evaluation kernels.
type Kernel = workloads.Kernel

// KernelResult is one kernel execution on one configuration.
type KernelResult = workloads.Result

// KernelRunConfig configures a kernel execution.
type KernelRunConfig = workloads.RunConfig

// Kernels returns the 21 evaluation kernels.
func Kernels() []*Kernel { return workloads.All() }

// KernelByName returns the named kernel or nil.
func KernelByName(name string) *Kernel { return workloads.ByName(name) }

// RunKernel executes a kernel under the configuration, optionally verifying
// every simulated lane against the scalar reference.
func RunKernel(k *Kernel, cfg KernelRunConfig) (*KernelResult, error) {
	return workloads.Run(k, cfg)
}

// ---- GPU comparison model -------------------------------------------------------

// GPUModel is the analytical RTX 4090 roofline used as the paper's
// comparison point.
type GPUModel = gpumodel.Model

// GPUProfile characterizes a workload for the GPU model.
type GPUProfile = gpumodel.Profile

// RTX4090 returns the GeForce RTX 4090 parameters.
func RTX4090() *GPUModel { return gpumodel.RTX4090() }

// SIMDRAM returns the Ambit/SIMDRAM-style commodity-DRAM back end — the §IX
// portability demonstration (MAJ/NOT-only capability set). It is not part of
// the paper's three-way evaluation.
func SIMDRAM() *Backend { return backends.SIMDRAM() }

// Remap retargets a binary compiled for RF holders of `from` VRFs onto
// hardware with holders of `to` VRFs across rfhs RF holders — the §VI-C
// binary-portability mechanism.
func Remap(p Program, from, to, rfhs int) (Program, error) {
	return machine.Remap(p, from, to, rfhs)
}

// Optimize runs the ezpim peephole pass over an assembled program, removing
// redundant masking sequences and identity moves. It returns the optimized
// program and the number of instructions removed.
func Optimize(p Program) (Program, int) { return ezpim.Optimize(p) }

// ---- Meta-ISA (hlops) -------------------------------------------------------

// Graph is the §IX meta-ISA layer: tensor-style operations over batched
// operands, compiled onto fused compute ensembles and DTC reduce
// collectives.
type Graph = hlops.Graph

// GraphValue is a handle to one graph operand.
type GraphValue = hlops.Value

// NewGraph starts a meta-ISA graph over the given VRFs.
func NewGraph(addrs []VRFAddr) *Graph { return hlops.NewGraph(addrs) }

// ---- Analysis & static verification -----------------------------------------

// ProgramAnalysis is the static summary of an MPU binary.
type ProgramAnalysis = lint.Analysis

// Analyze computes a static summary of a program: instruction histograms,
// ensemble structure, playback-buffer pressure, and control-flow features.
func Analyze(p Program) ProgramAnalysis { return lint.Analyze(p) }

// LintReport is the outcome of statically verifying a program.
type LintReport = lint.Report

// LintOptions configures Lint (back-end capacity checks, source-line maps,
// register-pressure budget).
type LintOptions = lint.Options

// LintFinding is one diagnostic.
type LintFinding = lint.Finding

// Lint severities.
const (
	LintInfo    = lint.Info
	LintWarning = lint.Warning
	LintError   = lint.Error
)

// Lint statically verifies a program: ensemble bracketing, jump targets,
// register def-use anomalies, and (when opts.Spec is set) back-end capacity
// limits. A program whose report has no Error findings cannot trip the
// machine's runtime ensemble guards (see docs/LINT.md).
func Lint(p Program, opts LintOptions) *LintReport { return lint.Lint(p, opts) }

// MachineLintOptions configures LintMachine: core count, NoC geometry
// override, back-end spec, and per-core source-line tables.
type MachineLintOptions = comm.Options

// LintMachine statically verifies a whole machine's program set — the
// "commlint" pass: per-core base lint plus cross-MPU communication checks
// (rendezvous matching, route legality for the mesh, the
// lower-ID-sends-first rule, and deadlock-freedom of the composed event
// graph). A set whose report has no Error findings cannot trip the runtime
// deadlock detector; violations carry a concrete who-waits-on-whom
// counterexample (see docs/LINT.md).
func LintMachine(progs []Program, opts MachineLintOptions) *LintReport {
	return comm.LintMachine(progs, opts)
}

// LintSPMD verifies n copies of one program composed as a machine — the
// LoadAll model mpurun and mpud use for submitted binaries.
func LintSPMD(p Program, n int, opts MachineLintOptions) *LintReport {
	return comm.LintSPMD(p, n, opts)
}

// TuneResult is an activation-limit autotuning sweep (§VI-C).
type TuneResult = tune.Result

// TuneConfig configures the sweep.
type TuneConfig = tune.Config

// TuneActivationLimit sweeps the VRFs-per-RFH activation limit for a kernel
// on a back end and returns the fastest thermally legal configuration.
func TuneActivationLimit(cfg TuneConfig) (*TuneResult, error) {
	return tune.ActivationLimit(cfg)
}
