package gpumodel

import "testing"

func TestRTX4090Parameters(t *testing.T) {
	m := RTX4090()
	if m.DRAMGBs != 1008 {
		t.Errorf("DRAM bandwidth = %v, want the 4090's 1008 GB/s", m.DRAMGBs)
	}
	if m.PCIeGBs != 32 {
		t.Errorf("PCIe bandwidth = %v, want 32 GB/s (gen4 x16)", m.PCIeGBs)
	}
	if m.BoardPowerW <= 0 || m.LaunchOverheadS <= 0 {
		t.Error("non-positive power/overhead")
	}
}

func TestMemoryBoundKernel(t *testing.T) {
	m := RTX4090()
	// 1 op/element over 24 bytes: classic streaming kernel → memory bound.
	res, err := m.Run(Profile{Name: "stream", Elements: 1 << 24, OpsPerElement: 1, BytesPerElement: 24, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MemBound {
		t.Error("streaming kernel not memory bound")
	}
	wantMem := float64(1<<24) * 24 / (m.DRAMGBs * 1e9)
	if res.Seconds < wantMem {
		t.Errorf("time %v below the bandwidth floor %v", res.Seconds, wantMem)
	}
}

func TestComputeBoundKernel(t *testing.T) {
	m := RTX4090()
	res, err := m.Run(Profile{Name: "heavy", Elements: 1 << 20, OpsPerElement: 10000, BytesPerElement: 8, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemBound {
		t.Error("op-heavy kernel reported memory bound")
	}
}

func TestDivergencePenalty(t *testing.T) {
	m := RTX4090()
	base, _ := m.Run(Profile{Elements: 1 << 20, OpsPerElement: 1000, BytesPerElement: 8, Passes: 1, Divergence: 1})
	div, _ := m.Run(Profile{Elements: 1 << 20, OpsPerElement: 1000, BytesPerElement: 8, Passes: 1, Divergence: 4})
	if div.Seconds <= base.Seconds {
		t.Error("divergence did not slow the kernel")
	}
}

func TestLaunchAndPCIeCosts(t *testing.T) {
	m := RTX4090()
	one, _ := m.Run(Profile{Elements: 1024, OpsPerElement: 1, BytesPerElement: 8, Passes: 1})
	many, _ := m.Run(Profile{Elements: 1024, OpsPerElement: 1, BytesPerElement: 8, Passes: 10})
	if many.Seconds < one.Seconds+8*m.LaunchOverheadS {
		t.Error("launch overhead not charged per pass")
	}
	withHost, _ := m.Run(Profile{Elements: 1024, OpsPerElement: 1, BytesPerElement: 8, Passes: 1, HostBytes: 32e9})
	if withHost.Seconds < 0.9 {
		t.Errorf("32 GB over PCIe should cost ≈1 s, got %v", withHost.Seconds)
	}
}

func TestEnergyTracksPower(t *testing.T) {
	m := RTX4090()
	res, _ := m.Run(Profile{Elements: 1 << 24, OpsPerElement: 1, BytesPerElement: 24, Passes: 1})
	want := res.Seconds * (m.BoardPowerW + m.HostPowerW)
	if diff := res.Joules - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("energy %v, want %v", res.Joules, want)
	}
}

func TestRunErrors(t *testing.T) {
	m := RTX4090()
	if _, err := m.Run(Profile{Elements: 0}); err == nil {
		t.Error("zero elements accepted")
	}
	if _, err := m.Run(Profile{Elements: -1}); err == nil {
		t.Error("negative elements accepted")
	}
}

func TestDefaultsNormalized(t *testing.T) {
	m := RTX4090()
	// Passes 0 → 1, Divergence 0 → 1: should equal the explicit values.
	a, _ := m.Run(Profile{Elements: 1 << 20, OpsPerElement: 10, BytesPerElement: 8})
	b, _ := m.Run(Profile{Elements: 1 << 20, OpsPerElement: 10, BytesPerElement: 8, Passes: 1, Divergence: 1})
	if a.Seconds != b.Seconds {
		t.Error("zero-value profile fields not normalized")
	}
}
