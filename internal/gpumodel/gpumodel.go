// Package gpumodel provides the analytical RTX 4090 cost model used as the
// paper's GPU comparison point. The real evaluation ran CUDA kernels on
// hardware; here a roofline model captures the behaviours that matter for
// the comparison: 64-bit bitwise kernels are memory-bound, every kernel pays
// launch overhead, data reaches the card over PCIe, and divergent control
// flow wastes SIMT lanes.
package gpumodel

import "fmt"

// Model holds device parameters.
type Model struct {
	Name string

	// PeakGOPS64 is effective 64-bit integer throughput (GOPS). The 4090's
	// 82.6 TFLOPS fp32 peak degrades heavily for 64-bit integer work,
	// which executes as multi-instruction int32 sequences.
	PeakGOPS64 float64

	DRAMGBs float64 // device memory bandwidth
	PCIeGBs float64 // host link bandwidth

	LaunchOverheadS float64 // per kernel launch
	BoardPowerW     float64 // under load
	HostPowerW      float64 // host share attributed while the GPU runs
}

// RTX4090 returns the GeForce RTX 4090 parameters [75].
func RTX4090() *Model {
	return &Model{
		Name:            "RTX4090",
		PeakGOPS64:      10_000, // ≈82.6 TFLOPS fp32 / ~8 for int64 sequences
		DRAMGBs:         1008,
		PCIeGBs:         32, // PCIe 4.0 ×16
		LaunchOverheadS: 5e-6,
		BoardPowerW:     380,
		HostPowerW:      60,
	}
}

// Profile characterizes one kernel for the roofline.
type Profile struct {
	Name     string
	Elements int

	OpsPerElement   float64 // 64-bit integer operations
	BytesPerElement float64 // device-memory traffic per pass
	Passes          int     // kernel launches / full-array passes
	Divergence      float64 // SIMT divergence penalty (≥1)

	// HostBytes counts PCIe traffic (H2D inputs + D2H results). PUM keeps
	// data resident, so this is pure GPU-side cost.
	HostBytes float64
}

// Result is the modeled execution.
type Result struct {
	Seconds  float64
	Joules   float64
	MemBound bool
}

// Run evaluates the roofline for p.
func (m *Model) Run(p Profile) (Result, error) {
	if p.Elements <= 0 {
		return Result{}, fmt.Errorf("gpumodel: non-positive element count %d", p.Elements)
	}
	passes := p.Passes
	if passes <= 0 {
		passes = 1
	}
	div := p.Divergence
	if div < 1 {
		div = 1
	}
	n := float64(p.Elements)
	tCompute := n * p.OpsPerElement * div / (m.PeakGOPS64 * 1e9)
	tMem := n * p.BytesPerElement * float64(passes) / (m.DRAMGBs * 1e9)
	tKernel := tCompute
	memBound := false
	if tMem > tKernel {
		tKernel = tMem
		memBound = true
	}
	tPCIe := p.HostBytes / (m.PCIeGBs * 1e9)
	t := tKernel + float64(passes)*m.LaunchOverheadS + tPCIe
	e := t * (m.BoardPowerW + m.HostPowerW)
	return Result{Seconds: t, Joules: e, MemBound: memBound}, nil
}
