package tune

import (
	"strings"
	"testing"

	"mpu/internal/backends"
	"mpu/internal/workloads"
)

func TestActivationLimitRACER(t *testing.T) {
	res, err := ActivationLimit(Config{
		Spec:   backends.RACER(),
		Kernel: workloads.ByName("vecadd"),
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Footnote 2: two active VRFs per cluster stay within air cooling and
	// double throughput; the sweep must find ≥2 legal and faster.
	if res.Best.ActiveVRFsPerRFH < 2 {
		t.Fatalf("best limit = %d, want ≥2 (footnote 2 headroom)", res.Best.ActiveVRFsPerRFH)
	}
	if res.Best.Speedup < 1.9 {
		t.Fatalf("best speedup = %.2f, want ≥2× over the shipped limit", res.Best.Speedup)
	}
	// Full activation must be rejected as thermally illegal on RACER.
	last := res.Candidates[len(res.Candidates)-1]
	if last.ActiveVRFsPerRFH != backends.RACER().VRFsPerRFH || last.Legal {
		t.Fatalf("full activation candidate = %+v, want illegal", last)
	}
	// Densities must grow monotonically with the limit.
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i].DensityWPerCM2 <= res.Candidates[i-1].DensityWPerCM2 {
			t.Fatal("density not monotone in the activation limit")
		}
	}
	if !strings.Contains(res.Render(), "best") {
		t.Fatal("render missing best marker")
	}
}

func TestSafetyMarginShrinksBudget(t *testing.T) {
	raw, err := ActivationLimit(Config{Spec: backends.RACER(), Kernel: workloads.ByName("vecand"), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	safe, err := ActivationLimit(Config{Spec: backends.RACER(), Kernel: workloads.ByName("vecand"), Seed: 2, SafetyMargin: 4})
	if err != nil {
		t.Fatal(err)
	}
	if safe.Best.ActiveVRFsPerRFH > raw.Best.ActiveVRFsPerRFH {
		t.Fatalf("margin 4 chose %d active VRFs, raw chose %d", safe.Best.ActiveVRFsPerRFH, raw.Best.ActiveVRFsPerRFH)
	}
	if safe.Best.DensityWPerCM2 > backends.AirCoolLimitWPerCM2/4 {
		t.Fatalf("margin violated: %.1f W/cm²", safe.Best.DensityWPerCM2)
	}
}

func TestMIMDRAMAlreadyFullyActive(t *testing.T) {
	spec := backends.MIMDRAM()
	res, err := ActivationLimit(Config{Spec: spec, Kernel: workloads.ByName("vecadd"), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// MIMDRAM ships fully active and stays under the limit: the tuner can
	// go no faster — it picks the smallest limit that already reaches the
	// shipped throughput (same speed, lower power density).
	if res.Best.Speedup < 0.99 || res.Best.Speedup > 1.01 {
		t.Fatalf("speedup over shipped config = %.2f, want ≈1", res.Best.Speedup)
	}
	shipped := res.Candidates[len(res.Candidates)-1] // limit 64 = shipped
	if shipped.ActiveVRFsPerRFH != spec.VRFsPerRFH || !shipped.Legal {
		t.Fatalf("shipped full activation should be legal: %+v", shipped)
	}
	if res.Best.DensityWPerCM2 > shipped.DensityWPerCM2 {
		t.Fatal("tuner picked a hotter configuration with no speed gain")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := ActivationLimit(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := ActivationLimit(Config{Spec: backends.RACER()}); err == nil {
		t.Fatal("missing kernel accepted")
	}
}
