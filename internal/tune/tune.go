// Package tune implements the autotuning support §VI-C envisions for MPU
// binaries: the VRFs-per-RFH activation limit is a compile-target parameter,
// and the runtime may run more VRFs concurrently than a conservative default
// whenever the thermal envelope allows (footnote 2: raising RACER from one
// to two active VRFs per cluster — still air-coolable — doubles throughput).
//
// ActivationLimit sweeps power-of-two limits, checks each against the
// datapath's power-density model, measures the kernel, and returns the
// fastest thermally legal configuration.
package tune

import (
	"fmt"

	"mpu/internal/backends"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

// Candidate is one activation limit's outcome.
type Candidate struct {
	ActiveVRFsPerRFH int
	Seconds          float64
	Joules           float64
	DensityWPerCM2   float64 // chip-wide, all MPUs running at this limit
	Legal            bool    // within the air-cooling envelope / margin
	Speedup          float64 // vs the spec's shipped limit
}

// Result is an autotuning sweep.
type Result struct {
	Kernel     string
	Backend    string
	Candidates []Candidate
	Best       Candidate // fastest legal candidate
}

// Config controls the sweep.
type Config struct {
	Spec          *backends.Spec
	Kernel        *workloads.Kernel
	TotalElements int // 0: one full chip of VRFs
	Seed          int64

	// SafetyMargin divides the air-cooling limit a candidate must stay
	// under (2 = keep 50% headroom). 0 means 1 (the raw limit).
	SafetyMargin float64
}

// ActivationLimit runs the sweep.
func ActivationLimit(cfg Config) (*Result, error) {
	if cfg.Spec == nil || cfg.Kernel == nil {
		return nil, fmt.Errorf("tune: spec and kernel are required")
	}
	if cfg.SafetyMargin == 0 {
		cfg.SafetyMargin = 1
	}
	spec := cfg.Spec
	n := cfg.TotalElements
	if n == 0 {
		n = spec.MPUs * spec.Lanes * spec.VRFsPerMPU() / 8
	}
	budget := backends.AirCoolLimitWPerCM2 / cfg.SafetyMargin
	res := &Result{Kernel: cfg.Kernel.Name, Backend: spec.Name}
	var baseSeconds float64
	for limit := 1; limit <= spec.VRFsPerRFH; limit *= 2 {
		r, err := workloads.Run(cfg.Kernel, workloads.RunConfig{
			Spec: spec, Mode: machine.ModeMPU, TotalElements: n,
			Seed: cfg.Seed, MaxSimVRFs: 8, ActiveVRFsOverride: limit,
		})
		if err != nil {
			return nil, err
		}
		active := limit * spec.RFHsPerMPU * spec.MPUs
		c := Candidate{
			ActiveVRFsPerRFH: limit,
			Seconds:          r.Seconds,
			Joules:           r.Joules,
			DensityWPerCM2:   spec.PowerDensity(active),
			Legal:            spec.PowerDensity(active) <= budget,
		}
		if limit == spec.ActiveVRFsPerRFH {
			baseSeconds = c.Seconds
		}
		res.Candidates = append(res.Candidates, c)
	}
	if baseSeconds == 0 {
		// The shipped limit is not a power of two; use the first candidate.
		baseSeconds = res.Candidates[0].Seconds
	}
	for i := range res.Candidates {
		res.Candidates[i].Speedup = baseSeconds / res.Candidates[i].Seconds
		c := res.Candidates[i]
		if c.Legal && (res.Best.Seconds == 0 || c.Seconds < res.Best.Seconds) {
			res.Best = c
		}
	}
	if res.Best.Seconds == 0 {
		return nil, fmt.Errorf("tune: no thermally legal configuration found")
	}
	return res, nil
}

// Render prints the sweep table.
func (r *Result) Render() string {
	s := fmt.Sprintf("Autotune — %s on MPU:%s (activation limit sweep, §VI-C)\n", r.Kernel, r.Backend)
	s += fmt.Sprintf("%12s %12s %12s %10s %7s\n", "active VRFs", "seconds", "W/cm²", "speedup", "legal")
	for _, c := range r.Candidates {
		mark := ""
		if c.ActiveVRFsPerRFH == r.Best.ActiveVRFsPerRFH {
			mark = "  <-- best"
		}
		legal := "no"
		if c.Legal {
			legal = "yes"
		}
		s += fmt.Sprintf("%12d %12.3g %12.1f %9.2fx %7s%s\n",
			c.ActiveVRFsPerRFH, c.Seconds, c.DensityWPerCM2, c.Speedup, legal, mark)
	}
	return s
}
