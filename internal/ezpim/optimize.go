package ezpim

import (
	"fmt"

	"mpu/internal/isa"
)

// Optimize runs a peephole pass over an assembled MPU program and returns
// the optimized program plus the number of instructions removed. It is the
// first piece of the "true compiler toolchain" the paper lists as future
// work (§IX): masking-sequence cleanups that are easy for a code generator
// to emit redundantly and expensive to execute on a bit-serial datapath.
//
// Patterns removed (each guarded so no jump target lands on the removed
// instruction, and all jump targets are re-indexed afterwards):
//
//	MOV rX rX                     — identity move
//	UNMASK ; UNMASK               — the second is a no-op
//	SETMASK a ; SETMASK b         — the first write is dead
//	UNMASK ; SETMASK x            — the UNMASK is dead
//	SETMASK x ; UNMASK            — the SETMASK is dead
func Optimize(p isa.Program) (isa.Program, int) {
	total := 0
	for {
		out, n := optimizeOnce(p)
		total += n
		if n == 0 {
			return out, total
		}
		p = out
	}
}

func optimizeOnce(p isa.Program) (isa.Program, int) {
	// Jump targets: removing an instruction that control flow can enter
	// directly would change semantics; removing the *first* of a pair is
	// only safe if the second is reached exclusively by fallthrough — i.e.
	// the second instruction is not itself a target, and the first is not
	// a target either (a jump could land on it expecting its effect...
	// actually landing on a removed dead-store is fine only if the store
	// really is dead on that path too; be conservative: never remove a
	// targeted instruction).
	target := make([]bool, len(p)+1)
	for _, in := range p {
		if in.Op == isa.JUMP || in.Op == isa.JUMPCOND {
			if t := int(in.Imm); t >= 0 && t < len(target) {
				target[t] = true
			}
		}
	}

	remove := make([]bool, len(p))
	for i := 0; i < len(p); i++ {
		in := p[i]
		// Identity move.
		if in.Op == isa.MOV && in.A == in.C && !target[i] {
			// Removing a targeted identity MOV would still be safe, but we
			// stay uniform with the other rules.
			remove[i] = true
			continue
		}
		if i+1 >= len(p) || target[i] || target[i+1] {
			continue
		}
		next := p[i+1]
		switch {
		case in.Op == isa.UNMASK && next.Op == isa.UNMASK:
			remove[i+1] = true
		case in.Op == isa.SETMASK && next.Op == isa.SETMASK:
			remove[i] = true
		case in.Op == isa.UNMASK && next.Op == isa.SETMASK:
			remove[i] = true
		case in.Op == isa.SETMASK && next.Op == isa.UNMASK:
			remove[i] = true
		}
	}

	removed := 0
	newIndex := make([]int, len(p)+1)
	idx := 0
	for i := range p {
		newIndex[i] = idx
		if remove[i] {
			removed++
			continue
		}
		idx++
	}
	newIndex[len(p)] = idx
	if removed == 0 {
		return p, 0
	}
	out := make(isa.Program, 0, len(p)-removed)
	for i, in := range p {
		if remove[i] {
			continue
		}
		if in.Op == isa.JUMP || in.Op == isa.JUMPCOND {
			in.Imm = int32(newIndex[in.Imm])
		}
		out = append(out, in)
	}
	if err := out.Validate(); err != nil {
		// A failed rewrite indicates a bug in the pass; fall back to the
		// unoptimized program rather than emitting a broken binary.
		panic(fmt.Sprintf("ezpim: optimizer produced invalid program: %v", err))
	}
	return out, removed
}
