// Package ezpim implements the paper's advanced assembler (§V-C): a
// high-level front end that turns structured control flow — if/else
// branches, data-driven while loops, subroutine calls — into MPU ISA
// masking and jump sequences. It offers two interfaces: a programmatic
// Builder used by the workload generators, and a small text language
// (Compile) resembling the ezpim snippets of Fig. 7.
//
// Register convention: user code owns r0..r55. ezpim reserves r56..r62 for
// mask saves and predication temporaries (the Fig. 7c mask arithmetic) and
// r63 aliases the conditional register in SETMASK.
package ezpim

import (
	"fmt"

	"mpu/internal/controlpath"
	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/lint/comm"
)

// UserRegs is the number of registers available to user code; higher
// registers belong to the assembler.
const UserRegs = 56

// maskTempBase..62 are the reserved predication registers.
const maskTempBase = UserRegs

// CmpKind selects a comparison operator.
type CmpKind int

// Comparison operators. GE, LE, and NE are synthesized by negating the
// hardware comparisons through the Fig. 7c mask arithmetic.
const (
	CmpEQ CmpKind = iota
	CmpNE
	CmpLT
	CmpGT
	CmpLE
	CmpGE
	CmpFuzzy // equality ignoring bit positions set in register M
)

// Cond is a branch/loop condition over two registers.
type Cond struct {
	Kind CmpKind
	A, B int
	M    int // FUZZY don't-care register
}

// Eq returns the condition a == b.
func Eq(a, b int) Cond { return Cond{Kind: CmpEQ, A: a, B: b} }

// Ne returns the condition a != b.
func Ne(a, b int) Cond { return Cond{Kind: CmpNE, A: a, B: b} }

// Lt returns the signed condition a < b.
func Lt(a, b int) Cond { return Cond{Kind: CmpLT, A: a, B: b} }

// Gt returns the signed condition a > b.
func Gt(a, b int) Cond { return Cond{Kind: CmpGT, A: a, B: b} }

// Le returns the signed condition a <= b.
func Le(a, b int) Cond { return Cond{Kind: CmpLE, A: a, B: b} }

// Ge returns the signed condition a >= b.
func Ge(a, b int) Cond { return Cond{Kind: CmpGE, A: a, B: b} }

// FuzzyEq returns the condition a == b ignoring bits set in m.
func FuzzyEq(a, b, m int) Cond { return Cond{Kind: CmpFuzzy, A: a, B: b, M: m} }

// Builder assembles an MPU program with structured control flow. Errors are
// collected and reported by Program(), keeping call sites clean.
type Builder struct {
	prog       isa.Program
	err        error
	inEnsemble bool
	inSub      bool
	maskDepth  int
	subs       map[string]int // label -> instruction index
	callFix    []fixup
	srcLines   int // high-level statements emitted (Table IV accounting)
	lintReport *lint.Report

	// Binary layout: when subroutines are defined, instruction 0 is an
	// entry JUMP patched to the first top-level statement, so execution
	// never falls through into a subroutine body.
	entryAt   int
	mainStart int
}

type fixup struct {
	at    int
	label string
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{subs: map[string]int{}, entryAt: -1, mainStart: -1}
}

// markMain records where top-level execution begins, for the entry JUMP.
func (b *Builder) markMain() {
	if b.mainStart == -1 && b.entryAt >= 0 && !b.inSub {
		b.mainStart = len(b.prog)
	}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("ezpim: "+format, args...)
	}
}

func (b *Builder) emit(in isa.Instr) {
	b.prog = append(b.prog, in)
}

// note counts one high-level statement for the Table IV LoC comparison.
func (b *Builder) note() { b.srcLines++ }

// allocMaskReg reserves one predication register for the current nesting
// level.
func (b *Builder) allocMaskRegs(n int) int {
	base := maskTempBase + b.maskDepth
	if base+n > isa.RegCond {
		b.fail("predication nesting too deep (needs %d reserved registers)", b.maskDepth+n)
	}
	b.maskDepth += n
	return base
}

func (b *Builder) releaseMaskRegs(n int) { b.maskDepth -= n }

// Ensemble emits a compute-ensemble header, runs body, and emits the footer.
func (b *Builder) Ensemble(addrs []controlpath.VRFAddr, body func()) {
	if b.inEnsemble {
		b.fail("nested ensembles are not allowed")
		return
	}
	if len(addrs) == 0 {
		b.fail("ensemble with no VRFs")
		return
	}
	b.markMain()
	for _, a := range addrs {
		b.emit(isa.Compute(int(a.RFH), int(a.VRF)))
	}
	b.inEnsemble = true
	body()
	b.inEnsemble = false
	b.emit(isa.ComputeDone())
	b.note()
}

func (b *Builder) needEnsemble(op string) bool {
	if !b.inEnsemble {
		b.fail("%s outside an ensemble", op)
		return false
	}
	return true
}

func (b *Builder) checkUserReg(rs ...int) {
	for _, r := range rs {
		if r < 0 || r >= isa.NumRegs {
			b.fail("register r%d out of range", r)
		}
	}
}

// Op emits one datapath instruction inside the current ensemble.
func (b *Builder) Op(in isa.Instr) {
	if !b.needEnsemble(in.Op.String()) {
		return
	}
	b.emit(in)
	b.note()
}

// Arithmetic and data-movement conveniences.

// Add emits rd = rs + rt.
func (b *Builder) Add(rs, rt, rd int) { b.Op(isa.Add(rs, rt, rd)) }

// Sub emits rd = rs - rt.
func (b *Builder) Sub(rs, rt, rd int) { b.Op(isa.Sub(rs, rt, rd)) }

// Mul emits rd = rs * rt.
func (b *Builder) Mul(rs, rt, rd int) { b.Op(isa.Mul(rs, rt, rd)) }

// Mac emits rd += rs * rt.
func (b *Builder) Mac(rs, rt, rd int) { b.Op(isa.Mac(rs, rt, rd)) }

// Div emits rd = rs / rt.
func (b *Builder) Div(rs, rt, rd int) { b.Op(isa.QDiv(rs, rt, rd)) }

// Rem emits rd = rs % rt.
func (b *Builder) Rem(rs, rt, rd int) { b.Op(isa.RDiv(rs, rt, rd)) }

// Inc emits rd = rs + 1.
func (b *Builder) Inc(rs, rd int) { b.Op(isa.Inc(rs, rd)) }

// Mov emits rd = rs.
func (b *Builder) Mov(rs, rd int) { b.Op(isa.Mov(rs, rd)) }

// Init0 emits rd = 0.
func (b *Builder) Init0(rd int) { b.Op(isa.Init0(rd)) }

// Init1 emits rd = 1.
func (b *Builder) Init1(rd int) { b.Op(isa.Init1(rd)) }

// And emits rd = rs & rt.
func (b *Builder) And(rs, rt, rd int) { b.Op(isa.And(rs, rt, rd)) }

// Or emits rd = rs | rt.
func (b *Builder) Or(rs, rt, rd int) { b.Op(isa.OrI(rs, rt, rd)) }

// Xor emits rd = rs ^ rt.
func (b *Builder) Xor(rs, rt, rd int) { b.Op(isa.Xor(rs, rt, rd)) }

// Inv emits rd = ^rs.
func (b *Builder) Inv(rs, rd int) { b.Op(isa.Inv(rs, rd)) }

// LShift emits rd = rs << 1.
func (b *Builder) LShift(rs, rd int) { b.Op(isa.LShift(rs, rd)) }

// Relu emits rd = max(rs, 0).
func (b *Builder) Relu(rs, rd int) { b.Op(isa.Relu(rs, rd)) }

// Popc emits rd = popcount(rs).
func (b *Builder) Popc(rs, rd int) { b.Op(isa.Popc(rs, rd)) }

// Max emits rd = max(rs, rt).
func (b *Builder) Max(rs, rt, rd int) { b.Op(isa.MaxI(rs, rt, rd)) }

// Min emits rd = min(rs, rt).
func (b *Builder) Min(rs, rt, rd int) { b.Op(isa.MinI(rs, rt, rd)) }

// Sel emits rd = bit0(rSel) ? rs : rt.
func (b *Builder) Sel(rSel, rs, rt, rd int) {
	b.Mov(rSel, rd)
	b.Op(isa.MuxI(rs, rt, rd))
}

// Const synthesizes an arbitrary 64-bit constant into rd using the shift-
// and-or idiom (PUM has no immediate loads; constants are genuinely built in
// the datapath unless preloaded by the host).
func (b *Builder) Const(rd int, v uint64) {
	if !b.needEnsemble("Const") {
		return
	}
	switch v {
	case 0:
		b.emit(isa.Init0(rd))
		b.note()
		return
	case 1:
		b.emit(isa.Init1(rd))
		b.note()
		return
	}
	one := b.allocMaskRegs(1)
	defer b.releaseMaskRegs(1)
	b.emit(isa.Init1(one))
	b.emit(isa.Init0(rd))
	started := false
	for bit := 63; bit >= 0; bit-- {
		if started {
			b.emit(isa.LShift(rd, rd))
		}
		if v>>uint(bit)&1 == 1 {
			b.emit(isa.OrI(rd, one, rd))
			started = true
		}
	}
	b.note()
}

// emitCond evaluates c under the current lane mask and loads the result into
// the mask register (mask := currentMask ∧ c). Negated comparisons use the
// Fig. 7c mask arithmetic through the reserved registers.
func (b *Builder) emitCond(c Cond) {
	b.checkUserReg(c.A, c.B)
	var cmp isa.Instr
	negate := false
	switch c.Kind {
	case CmpEQ:
		cmp = isa.CmpEq(c.A, c.B)
	case CmpNE:
		cmp, negate = isa.CmpEq(c.A, c.B), true
	case CmpLT:
		cmp = isa.CmpLt(c.A, c.B)
	case CmpGT:
		cmp = isa.CmpGt(c.A, c.B)
	case CmpGE:
		cmp, negate = isa.CmpLt(c.A, c.B), true
	case CmpLE:
		cmp, negate = isa.CmpGt(c.A, c.B), true
	case CmpFuzzy:
		cmp = isa.Fuzzy(c.A, c.B, c.M)
	default:
		b.fail("unknown comparison kind %d", c.Kind)
		return
	}
	if !negate {
		b.emit(cmp)
		b.emit(isa.SetMask(isa.RegCond))
		return
	}
	// mask := cur ∧ ¬c:  save cur, take c∧cur, complement under full
	// masking, intersect with cur, reload.
	regs := b.allocMaskRegs(2)
	cur, t := regs, regs+1
	b.emit(isa.GetMask(cur))
	b.emit(cmp)
	b.emit(isa.SetMask(isa.RegCond))
	b.emit(isa.GetMask(t)) // t = c ∧ cur
	b.emit(isa.Unmask())
	b.emit(isa.Inv(t, t))
	b.emit(isa.And(cur, t, t)) // bit0 = cur ∧ ¬(c∧cur) = cur ∧ ¬c
	b.emit(isa.SetMask(t))
	b.releaseMaskRegs(2)
}

// ifCtx tracks the reserved registers of an open predicated branch.
type ifCtx struct {
	save    int
	hasElse bool
}

// IfBegin opens a predicated branch: subsequent emission runs on lanes where
// c holds. Pair with IfElse (optional) and IfEnd. The streaming form exists
// for the text-language parser; most callers want If.
func (b *Builder) IfBegin(c Cond) *ifCtx {
	if !b.needEnsemble("if") {
		return &ifCtx{}
	}
	save := b.allocMaskRegs(1)
	b.emit(isa.GetMask(save))
	b.emitCond(c)
	return &ifCtx{save: save}
}

// IfElse flips the open branch to the complement lanes (outer ∧ ¬c). The
// else-mask derives from the then-mask rather than re-evaluating the
// condition, so the then-body may clobber the condition's registers.
func (b *Builder) IfElse(ctx *ifCtx) {
	if !b.inEnsemble {
		return
	}
	ctx.hasElse = true
	t := b.allocMaskRegs(1)
	b.emit(isa.GetMask(t)) // inner = save ∧ c
	b.emit(isa.Unmask())
	b.emit(isa.Inv(t, t))
	b.emit(isa.And(ctx.save, t, t)) // bit0 = save ∧ ¬inner
	b.emit(isa.SetMask(t))
}

// IfEnd closes the branch and restores the enclosing mask.
func (b *Builder) IfEnd(ctx *ifCtx) {
	if !b.inEnsemble {
		return
	}
	if ctx.hasElse {
		b.releaseMaskRegs(1)
	}
	b.emit(isa.SetMask(ctx.save))
	b.releaseMaskRegs(1)
	b.note()
}

// If emits a predicated branch: then runs on lanes where c holds, els (may
// be nil) on the remaining enabled lanes. Arbitrary nesting is supported up
// to the reserved-register budget.
func (b *Builder) If(c Cond, then func(), els func()) {
	ctx := b.IfBegin(c)
	if !b.inEnsemble {
		return
	}
	then()
	if els != nil {
		b.IfElse(ctx)
		els()
	}
	b.IfEnd(ctx)
}

// While emits a data-driven loop: body repeats on each lane until its
// condition fails, with per-lane divergence handled by the mask register and
// loop exit by JUMP_COND (§V-C "Dynamic Loops").
func (b *Builder) While(c Cond, body func()) {
	if !b.needEnsemble("while") {
		return
	}
	save := b.allocMaskRegs(1)
	b.emit(isa.GetMask(save))
	b.emitCond(c)
	top := len(b.prog)
	body()
	b.emitCond(c)
	b.emit(isa.JumpCond(top))
	b.emit(isa.SetMask(save))
	b.releaseMaskRegs(1)
	b.note()
}

// Repeat emits a loop with a lane-uniform trip count held in register n:
// a countdown in a reserved register drives the loop. n is preserved.
func (b *Builder) Repeat(n int, body func()) {
	if !b.needEnsemble("repeat") {
		return
	}
	regs := b.allocMaskRegs(2)
	cnt, zero := regs, regs+1
	b.emit(isa.Mov(n, cnt))
	b.emit(isa.Init0(zero))
	b.While(Gt(cnt, zero), func() {
		body()
		b.emit(isa.Init1(zero)) // reuse: zero==1 during decrement
		b.emit(isa.Sub(cnt, zero, cnt))
		b.emit(isa.Init0(zero))
	})
	b.releaseMaskRegs(2)
}

// Sub defines a subroutine; Call invokes it. Subroutines are placed inline
// where defined, so define them before the entry JUMP or rely on Program()'s
// layout (subroutines first, entry JUMP at index 0).

// Call emits a subroutine call to the named Sub.
func (b *Builder) Call(name string) {
	if !b.inEnsemble {
		b.markMain()
	}
	b.callFix = append(b.callFix, fixup{at: len(b.prog), label: name})
	b.emit(isa.Jump(0)) // patched in Program()
	b.note()
}

// SubDef registers the current position as subroutine name; the builder
// emits the trailing RETURN. Subroutines must be defined before main-line
// code; an entry JUMP at instruction 0 hops over them.
func (b *Builder) SubDef(name string, body func()) {
	if _, dup := b.subs[name]; dup {
		b.fail("duplicate subroutine %q", name)
		return
	}
	if b.inSub || b.inEnsemble {
		b.fail("subroutine %q defined inside another construct", name)
		return
	}
	if b.mainStart != -1 {
		b.fail("subroutine %q defined after main-line code", name)
		return
	}
	if b.entryAt == -1 {
		b.entryAt = len(b.prog)
		b.emit(isa.Jump(0)) // patched to mainStart in Program()
	}
	b.inSub = true
	b.inEnsemble = true // subroutine bodies execute in the caller's ensemble
	b.subs[name] = len(b.prog)
	body()
	b.emit(isa.Return())
	b.inEnsemble = false
	b.inSub = false
	b.note()
}

// Transfer emits a local transfer ensemble over the given RFH pairs; each
// copy moves (vrfSrc, rs) → (vrfDst, rd) for every pair.
func (b *Builder) Transfer(pairs []controlpath.RFHPair, copies func(t *Transfer)) {
	if b.inEnsemble {
		b.fail("transfer inside a compute ensemble")
		return
	}
	if len(pairs) == 0 {
		b.fail("transfer with no RFH pairs")
		return
	}
	b.markMain()
	for _, p := range pairs {
		b.emit(isa.Move(int(p.Src), int(p.Dst)))
	}
	copies(&Transfer{b: b})
	b.emit(isa.MoveDone())
	b.note()
}

// Transfer scopes MEMCPY emission to a transfer ensemble.
type Transfer struct{ b *Builder }

// Copy emits one MEMCPY.
func (t *Transfer) Copy(vrfSrc, rs, vrfDst, rd int) {
	t.b.emit(isa.Memcpy(vrfSrc, rs, vrfDst, rd))
	t.b.note()
}

// Send emits an inter-MPU send block to dst containing one transfer
// ensemble.
func (b *Builder) Send(dst int, pairs []controlpath.RFHPair, copies func(t *Transfer)) {
	if b.inEnsemble {
		b.fail("SEND inside a compute ensemble")
		return
	}
	b.markMain()
	b.emit(isa.Send(dst))
	for _, p := range pairs {
		b.emit(isa.Move(int(p.Src), int(p.Dst)))
	}
	copies(&Transfer{b: b})
	b.emit(isa.MoveDone())
	b.emit(isa.SendDone())
	b.note()
}

// Recv emits the matching receive for a peer's send block.
func (b *Builder) Recv(src int) {
	b.markMain()
	b.emit(isa.Recv(src))
	b.note()
}

// Sync emits an MPU_SYNC fence.
func (b *Builder) Sync() {
	b.markMain()
	b.emit(isa.Sync())
	b.note()
}

// Nop emits a bubble.
func (b *Builder) Nop() {
	if !b.inEnsemble {
		b.markMain()
	}
	b.emit(isa.Nop())
}

// Program finalizes the build: subroutine call fixups are patched and the
// program is validated. The builder is left intact for inspection.
func (b *Builder) Program() (isa.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.inEnsemble {
		return nil, fmt.Errorf("ezpim: unterminated ensemble")
	}
	out := make(isa.Program, len(b.prog))
	copy(out, b.prog)
	if b.entryAt >= 0 {
		if b.mainStart == -1 || b.mainStart >= len(out) {
			return nil, fmt.Errorf("ezpim: program defines subroutines but no main-line code")
		}
		out[b.entryAt].Imm = int32(b.mainStart)
	}
	for _, f := range b.callFix {
		target, ok := b.subs[f.label]
		if !ok {
			return nil, fmt.Errorf("ezpim: call to undefined subroutine %q", f.label)
		}
		out[f.at].Imm = int32(target)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	// Structural verification: the builder's lowering must produce programs
	// the machine's control path accepts. Error findings here are builder
	// bugs or misuse (e.g. a hand-rolled Emit sequence), surfaced at build
	// time instead of mid-run. The full report (including warnings and
	// observations) stays available through LintReport.
	b.lintReport = lint.Lint(out, lint.Options{})
	if err := b.lintReport.Err(); err != nil {
		return nil, fmt.Errorf("ezpim: built program fails verification: %w", err)
	}
	return out, nil
}

// LintReport returns the static-verification report of the last successful
// Program() call (nil before the first call).
func (b *Builder) LintReport() *lint.Report { return b.lintReport }

// ProgramSet finalizes one builder per MPU and verifies the set as a
// machine: after each per-core Program() build, the commlint composition
// checks cross-MPU communication (rendezvous matching, route legality,
// deadlock-freedom), so a multi-MPU application that would stall at runtime
// fails at build time with a concrete counterexample. builders[i] runs on
// mpu i; a nil builder contributes an empty program (a core that only
// terminates).
func ProgramSet(builders []*Builder) ([]isa.Program, error) {
	progs, rep, err := ProgramSetChecked(builders, comm.Options{MPUs: len(builders)})
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, fmt.Errorf("ezpim: program set fails machine verification: %w", err)
	}
	return progs, nil
}

// ProgramSetChecked is ProgramSet with the verification verdict exposed: it
// finalizes the builders, runs the commlint composition under opt (MPUs
// defaults to len(builders)), and returns the programs together with the
// full report instead of folding Error findings into the error. Callers that
// relay findings structurally — the FBP compiler feeding mpud's typed 422
// admission envelope — use this; everyone else uses ProgramSet. The error is
// non-nil only when a builder itself fails to finalize.
func ProgramSetChecked(builders []*Builder, opt comm.Options) ([]isa.Program, *lint.Report, error) {
	progs := make([]isa.Program, len(builders))
	for i, b := range builders {
		if b == nil {
			continue
		}
		p, err := b.Program()
		if err != nil {
			return nil, nil, fmt.Errorf("mpu%d: %w", i, err)
		}
		progs[i] = p
	}
	if opt.MPUs <= 0 {
		opt.MPUs = len(builders)
	}
	return progs, comm.LintMachine(progs, opt), nil
}

// SourceLines reports the number of high-level statements the builder was
// driven with — the "Lines of Code ezpim" column of Table IV.
func (b *Builder) SourceLines() int { return b.srcLines }

// EmittedInstructions reports the assembled instruction count — the
// "Lines of Code Baseline" proxy of Table IV (hand-written MPU assembly is
// one line per instruction).
func (b *Builder) EmittedInstructions() int { return len(b.prog) }

// ReduceAdd emits a log-depth cross-VRF reduction: register reg of every
// VRF in addrs is summed into addrs[0]'s reg, lane-wise, alternating
// transfer ensembles (partial values hop RFH-to-RFH through the DTC) with
// compute ensembles that accumulate. This is the gather/reduce collective
// the end-to-end applications of §VIII-D build on.
//
// Requirements: len(addrs) is a power of two, every VRF lives in a distinct
// RF holder, and all share the same VRF index (so one MEMCPY addresses every
// pair of the target map). tmp is a staging register clobbered in all VRFs.
func (b *Builder) ReduceAdd(addrs []controlpath.VRFAddr, reg, tmp int) {
	n := len(addrs)
	if n == 0 || n&(n-1) != 0 {
		b.fail("ReduceAdd needs a power-of-two VRF count, got %d", n)
		return
	}
	if reg == tmp {
		b.fail("ReduceAdd staging register must differ from the operand")
		return
	}
	vrfID := addrs[0].VRF
	seen := map[uint8]bool{}
	for _, a := range addrs {
		if a.VRF != vrfID {
			b.fail("ReduceAdd requires a uniform VRF index; got vrf%d and vrf%d", vrfID, a.VRF)
			return
		}
		if seen[a.RFH] {
			b.fail("ReduceAdd requires distinct RF holders; rfh%d repeats", a.RFH)
			return
		}
		seen[a.RFH] = true
	}
	for half := n / 2; half >= 1; half /= 2 {
		pairs := make([]controlpath.RFHPair, half)
		for i := 0; i < half; i++ {
			pairs[i] = controlpath.RFHPair{Src: addrs[i+half].RFH, Dst: addrs[i].RFH}
		}
		b.Transfer(pairs, func(t *Transfer) {
			t.Copy(int(vrfID), reg, int(vrfID), tmp)
		})
		b.Ensemble(addrs[:half], func() {
			b.Add(reg, tmp, reg)
		})
	}
}
