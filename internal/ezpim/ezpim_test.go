package ezpim

import (
	"fmt"
	"testing"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/isa"
	"mpu/internal/machine"
)

func a00() controlpath.VRFAddr { return controlpath.VRFAddr{RFH: 0, VRF: 0} }

// compileAndRun compiles src, loads regs into rfh0.vrf0, runs on RACER, and
// returns a register reader.
func compileAndRun(t *testing.T, src string, regs map[int][]uint64) func(reg int) []uint64 {
	t.Helper()
	res, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return runProgram(t, res.Program, regs)
}

func runProgram(t *testing.T, prog isa.Program, regs map[int][]uint64) func(reg int) []uint64 {
	t.Helper()
	m, err := machine.New(machine.Config{Spec: backends.RACER(), NumMPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	for r, vals := range regs {
		if err := m.WriteVector(0, a00(), r, vals); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return func(reg int) []uint64 {
		vals, err := m.ReadVector(0, a00(), reg)
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}
}

func TestCompileArithmetic(t *testing.T) {
	src := `
		ensemble {
			use rfh0.vrf0
			r2 = r0 + r1
			r3 = r0 * r1
			r4 = r0 & r1
			r5 = max(r0, r1)
			r6 = popc(r0)
			r7 = ~r0
			r8 = r0 << 1
			r9 = r1
		}
	`
	read := compileAndRun(t, src, map[int][]uint64{
		0: {6, 100, 0xff},
		1: {7, 3, 1},
	})
	type check struct {
		reg  int
		want []uint64
	}
	for _, c := range []check{
		{2, []uint64{13, 103, 0x100}},
		{3, []uint64{42, 300, 0xff}},
		{4, []uint64{6, 0, 1}},
		{5, []uint64{7, 100, 0xff}},
		{6, []uint64{2, 3, 8}},
		{7, []uint64{^uint64(6), ^uint64(100), ^uint64(0xff)}},
		{8, []uint64{12, 200, 0x1fe}},
		{9, []uint64{7, 3, 1}},
	} {
		got := read(c.reg)
		for i, want := range c.want {
			if got[i] != want {
				t.Errorf("r%d lane %d: got %d, want %d", c.reg, i, got[i], want)
			}
		}
	}
}

func TestCompileConstants(t *testing.T) {
	src := `
		ensemble {
			use rfh0.vrf0
			r0 = 0
			r1 = 1
			r2 = 1000003
			r3 = 0xdeadbeef
		}
	`
	read := compileAndRun(t, src, nil)
	for reg, want := range map[int]uint64{0: 0, 1: 1, 2: 1000003, 3: 0xdeadbeef} {
		if got := read(reg)[0]; got != want {
			t.Errorf("r%d = %d, want %d", reg, got, want)
		}
	}
}

func TestCompileIfElse(t *testing.T) {
	// abs(): r1 = |r0| (signed).
	src := `
		ensemble {
			use rfh0.vrf0
			r2 = 0
			if r0 < r2 {
				r1 = r2 - r0
			} else {
				r1 = r0
			}
		}
	`
	vals := []uint64{5, ^uint64(4), 0, ^uint64(0), 123} // 5, -5, 0, -1, 123
	read := compileAndRun(t, src, map[int][]uint64{0: vals})
	want := []uint64{5, 5, 0, 1, 123}
	got := read(1)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("lane %d: |%d| = %d, want %d", i, int64(vals[i]), got[i], want[i])
		}
	}
}

func TestCompileIfElseClobbersCondition(t *testing.T) {
	// The then-branch overwrites the condition register r0; the else mask
	// must still be derived from the captured then-mask.
	src := `
		ensemble {
			use rfh0.vrf0
			r2 = 0
			if r0 == r2 {
				r0 = 1
				r1 = 10
			} else {
				r1 = 20
			}
		}
	`
	read := compileAndRun(t, src, map[int][]uint64{0: {0, 7}})
	got := read(1)
	if got[0] != 10 || got[1] != 20 {
		t.Fatalf("branches = %v, want [10 20]", got)
	}
}

func TestCompileNestedIf(t *testing.T) {
	// Classify into r1: 0 if r0==0, 1 if 0<r0, 2 if r0<0.
	src := `
		ensemble {
			use rfh0.vrf0
			r2 = 0
			if r0 == r2 {
				r1 = 0
			} else {
				if r0 > r2 {
					r1 = 1
				} else {
					r1 = 2
				}
			}
		}
	`
	read := compileAndRun(t, src, map[int][]uint64{0: {0, 9, ^uint64(8)}})
	got := read(1)
	want := []uint64{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("lane %d: class %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCompileWhileGCD(t *testing.T) {
	src := `
		# per-lane Euclid: gcd(r0, r1) -> r0
		ensemble {
			use rfh0.vrf0
			r2 = 0
			while r1 != r2 {
				r3 = r0 % r1
				r0 = r1
				r1 = r3
			}
		}
	`
	av := []uint64{12, 35, 7, 48, 1}
	bv := []uint64{18, 14, 13, 0, 1}
	read := compileAndRun(t, src, map[int][]uint64{0: av, 1: bv})
	want := []uint64{6, 7, 1, 48, 1}
	got := read(0)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("lane %d: gcd(%d,%d) = %d, want %d", i, av[i], bv[i], got[i], want[i])
		}
	}
}

func TestCompileSubroutine(t *testing.T) {
	src := `
		sub square {
			r2 = r0 * r0
		}
		ensemble {
			use rfh0.vrf0
			call square
			r3 = r2 + r0
		}
	`
	read := compileAndRun(t, src, map[int][]uint64{0: {3, 10}})
	got := read(3)
	if got[0] != 12 || got[1] != 110 {
		t.Fatalf("square+x = %v, want [12 110]", got)
	}
}

func TestCompileMoveAndSync(t *testing.T) {
	src := `
		ensemble {
			use rfh0.vrf0
			r2 = r0 + r1
		}
		sync
		move rfh0 -> rfh1 {
			copy vrf0.r2 -> vrf0.r5
		}
	`
	res, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := machine.New(machine.Config{Spec: backends.RACER(), NumMPUs: 1})
	m.LoadAll(res.Program)
	m.WriteVector(0, a00(), 0, []uint64{4})
	m.WriteVector(0, a00(), 1, []uint64{5})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadVector(0, controlpath.VRFAddr{RFH: 1, VRF: 0}, 5)
	if got[0] != 9 {
		t.Fatalf("moved value = %d, want 9", got[0])
	}
}

func TestCompileSendRecv(t *testing.T) {
	sendSrc := `
		send mpu1 { move rfh0 -> rfh0 { copy vrf0.r0 -> vrf0.r1 } }
	`
	recvSrc := `recv mpu0`
	sp, err := Compile(sendSrc)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Compile(recvSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := machine.New(machine.Config{Spec: backends.RACER(), NumMPUs: 2})
	m.LoadProgram(0, sp.Program)
	m.LoadProgram(1, rp.Program)
	m.WriteVector(0, a00(), 0, []uint64{77})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadVector(1, a00(), 1)
	if got[0] != 77 {
		t.Fatalf("sent value = %d, want 77", got[0])
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		"frob {}",
		"ensemble { r0 = r1 }",                    // no use clause
		"ensemble { use rfh0.vrf0 r0 = r1 + }",    // bad expr
		"ensemble { use rfh0.vrf0 r99 = r1 }",     // register range
		"ensemble { use rfh0.vrf0 r0 = r1 << 2 }", // only shift-by-1
		"ensemble { use rfh0.vrf0 call missing }", // undefined sub
		"ensemble { use rfh0.vrf0 if r0 { r1 } }", // malformed condition
		"move rfh0 -> rfh1 { paste vrf0.r0 }",     // bad copy stmt
		"send mpu0 { copy vrf0.r0 -> vrf0.r0 }",   // send without move
		"sub f { r0 = r1 } sub f { r0 = r1 }",     // duplicate sub
		"ensemble { use rfh0.vrf0 r0 = r1 @ r2 }", // bad char
		"ensemble { use rfh0.vrf0 r0 = max(r1) }", // arity
		"sub late { r0 = r1 }",                    // subs but no main code
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

// TestCodeSizeReduction pins the Table IV claim: ezpim sources are much
// smaller than the assembly they expand to.
func TestCodeSizeReduction(t *testing.T) {
	src := `
		ensemble {
			use rfh0.vrf0
			r2 = 0
			while r1 != r2 {
				r3 = r0 % r1
				r0 = r1
				r1 = r3
			}
		}
	`
	res, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.SourceLines >= res.AsmLines {
		t.Fatalf("ezpim lines (%d) not smaller than assembly lines (%d)", res.SourceLines, res.AsmLines)
	}
	if res.AsmLines < 2*res.SourceLines {
		t.Fatalf("expected ≥2× expansion, got %d → %d", res.SourceLines, res.AsmLines)
	}
}

func TestBuilderWhileDivergence(t *testing.T) {
	// Builder-level version of the countdown loop.
	b := NewBuilder()
	b.Ensemble([]controlpath.VRFAddr{a00()}, func() {
		b.Init0(2)
		b.Init1(3)
		b.Init0(1)
		b.While(Gt(0, 2), func() {
			b.Sub(0, 3, 0)
			b.Inc(1, 1)
		})
	})
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	vals := []uint64{0, 3, 7}
	read := runProgram(t, prog, map[int][]uint64{0: vals})
	got := read(1)
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("lane %d: %d iterations, want %d", i, got[i], vals[i])
		}
	}
}

func TestBuilderRepeat(t *testing.T) {
	b := NewBuilder()
	b.Ensemble([]controlpath.VRFAddr{a00()}, func() {
		b.Init0(1)
		b.Repeat(0, func() {
			b.Inc(1, 1)
		})
	})
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	read := runProgram(t, prog, map[int][]uint64{0: {4, 4}})
	got := read(1)
	if got[0] != 4 || got[1] != 4 {
		t.Fatalf("repeat count = %v, want [4 4]", got)
	}
	// The trip-count register must be preserved.
	if r0 := read(0); r0[0] != 4 {
		t.Fatalf("repeat clobbered the count register: %v", r0)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.Add(0, 1, 2) // outside ensemble
	if _, err := b.Program(); err == nil {
		t.Error("arith outside ensemble accepted")
	}

	b = NewBuilder()
	b.Ensemble(nil, func() {})
	if _, err := b.Program(); err == nil {
		t.Error("empty ensemble accepted")
	}

	b = NewBuilder()
	b.Ensemble([]controlpath.VRFAddr{a00()}, func() {
		b.Ensemble([]controlpath.VRFAddr{a00()}, func() {})
	})
	if _, err := b.Program(); err == nil {
		t.Error("nested ensemble accepted")
	}

	b = NewBuilder()
	b.Call("nothing")
	if _, err := b.Program(); err == nil {
		t.Error("call to undefined subroutine accepted")
	}

	b = NewBuilder()
	b.Transfer(nil, func(tr *Transfer) {})
	if _, err := b.Program(); err == nil {
		t.Error("empty transfer accepted")
	}
}

func TestBuilderSelAndFuzzy(t *testing.T) {
	b := NewBuilder()
	b.Ensemble([]controlpath.VRFAddr{a00()}, func() {
		b.Sel(2, 0, 1, 3) // r3 = bit0(r2) ? r0 : r1
		b.If(FuzzyEq(0, 1, 4), func() {
			b.Init1(5)
		}, nil)
	})
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	read := runProgram(t, prog, map[int][]uint64{
		0: {10, 20},
		1: {30, 40},
		2: {1, 0},
		4: {0xFFFFFFFFFFFFFFF0, 0}, // lane 0 ignores all but low 4 bits
		5: {0, 0},
	})
	if got := read(3); got[0] != 10 || got[1] != 40 {
		t.Fatalf("sel = %v, want [10 40]", got)
	}
	// Lane 0: 10 vs 30 differ only above bit 4? 10=0b1010, 30=0b11110 —
	// they differ in low bits, so fuzzy(0,1) is false; lane 1: 20 vs 40
	// differ and mask is 0 → false. r5 stays 0 for both.
	if got := read(5); got[0] != 0 || got[1] != 0 {
		t.Fatalf("fuzzy branch = %v, want [0 0]", got)
	}
}

func TestSourceLineAccounting(t *testing.T) {
	b := NewBuilder()
	b.Ensemble([]controlpath.VRFAddr{a00()}, func() {
		b.Add(0, 1, 2)
		b.Add(2, 1, 3)
	})
	if _, err := b.Program(); err != nil {
		t.Fatal(err)
	}
	if b.SourceLines() != 3 { // two adds + the ensemble construct
		t.Fatalf("SourceLines = %d, want 3", b.SourceLines())
	}
	if b.EmittedInstructions() != 4 { // COMPUTE + 2×ADD + COMPUTE_DONE
		t.Fatalf("EmittedInstructions = %d, want 4", b.EmittedInstructions())
	}
}

func TestCompileLetVariables(t *testing.T) {
	src := `
		ensemble {
			use rfh0.vrf0
			let two = 2
			let sq = r0 * r0
			let out = sq + two
			r1 = out
			out = out + two   # reassignment
			r2 = out
		}
	`
	read := compileAndRun(t, src, map[int][]uint64{0: {3, 10}})
	if got := read(1); got[0] != 11 || got[1] != 102 {
		t.Fatalf("r1 = %v, want [11 102]", got)
	}
	if got := read(2); got[0] != 13 || got[1] != 104 {
		t.Fatalf("r2 = %v, want [13 104]", got)
	}
}

func TestCompileForLoop(t *testing.T) {
	src := `
		ensemble {
			use rfh0.vrf0
			let acc = 0
			for 5 {
				acc = acc + r0
			}
			r1 = acc
			for r2 {
				r1 = inc(r1)
			}
		}
	`
	read := compileAndRun(t, src, map[int][]uint64{0: {7, 2}, 2: {3, 3}})
	if got := read(1); got[0] != 38 || got[1] != 13 {
		t.Fatalf("r1 = %v, want [38 13]", got)
	}
}

func TestCompileLetErrors(t *testing.T) {
	cases := []string{
		"ensemble { use rfh0.vrf0 let x = 1 let x = 2 }", // duplicate
		"ensemble { use rfh0.vrf0 let r5 = 1 }",          // register-like name
		"ensemble { use rfh0.vrf0 let max = 1 }",         // keyword collision
		"ensemble { use rfh0.vrf0 r0 = undeclared }",     // use before declare
		"ensemble { use rfh0.vrf0 for 0 { r0 = r1 } }",   // zero trip count
		"ensemble { use rfh0.vrf0 for { r0 = r1 } }",     // missing count
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestLetRegisterExhaustion(t *testing.T) {
	src := "ensemble {\n use rfh0.vrf0\n"
	for i := 0; i < 60; i++ {
		src += fmt.Sprintf(" let v%d = 1\n", i)
	}
	src += "}"
	if _, err := Compile(src); err == nil {
		t.Fatal("unbounded let allocation accepted")
	}
}

func TestReduceAdd(t *testing.T) {
	const n = 8
	addrs := make([]controlpath.VRFAddr, n)
	for i := range addrs {
		addrs[i] = controlpath.VRFAddr{RFH: uint8(i), VRF: 3}
	}
	b := NewBuilder()
	b.ReduceAdd(addrs, 0, 1)
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{Spec: backends.RACER(), NumMPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	lanes := backends.RACER().Lanes
	want := make([]uint64, lanes)
	for i, a := range addrs {
		vals := make([]uint64, lanes)
		for l := range vals {
			vals[l] = uint64(i*1000 + l)
			want[l] += vals[l]
		}
		m.WriteVector(0, a, 0, vals)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadVector(0, addrs[0], 0)
	for l := range want {
		if got[l] != want[l] {
			t.Fatalf("lane %d: reduced %d, want %d", l, got[l], want[l])
		}
	}
}

func TestReduceAddValidation(t *testing.T) {
	mk := func(addrs []controlpath.VRFAddr, reg, tmp int) error {
		b := NewBuilder()
		b.ReduceAdd(addrs, reg, tmp)
		_, err := b.Program()
		return err
	}
	three := []controlpath.VRFAddr{{RFH: 0}, {RFH: 1}, {RFH: 2}}
	if mk(three, 0, 1) == nil {
		t.Error("non-power-of-two count accepted")
	}
	mixed := []controlpath.VRFAddr{{RFH: 0, VRF: 0}, {RFH: 1, VRF: 5}}
	if mk(mixed, 0, 1) == nil {
		t.Error("mixed VRF indices accepted")
	}
	dup := []controlpath.VRFAddr{{RFH: 2}, {RFH: 2}}
	if mk(dup, 0, 1) == nil {
		t.Error("duplicate RF holders accepted")
	}
	two := []controlpath.VRFAddr{{RFH: 0}, {RFH: 1}}
	if mk(two, 4, 4) == nil {
		t.Error("aliased staging register accepted")
	}
	if err := mk(two, 4, 5); err != nil {
		t.Errorf("valid reduction rejected: %v", err)
	}
}
