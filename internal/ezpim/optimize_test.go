package ezpim

import (
	"testing"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/isa"
	"mpu/internal/machine"
)

func TestOptimizeIdentityMov(t *testing.T) {
	p := isa.Program{
		isa.Compute(0, 0), isa.Mov(3, 3), isa.Add(0, 1, 2), isa.ComputeDone(),
	}
	out, n := Optimize(p)
	if n != 1 || len(out) != 3 {
		t.Fatalf("removed %d instrs, program length %d", n, len(out))
	}
	for _, in := range out {
		if in.Op == isa.MOV {
			t.Fatal("identity MOV survived")
		}
	}
}

func TestOptimizeMaskPairs(t *testing.T) {
	p := isa.Program{
		isa.Compute(0, 0),
		isa.Unmask(), isa.Unmask(), // → one UNMASK
		isa.SetMask(1), isa.SetMask(2), // → SETMASK r2
		isa.Unmask(), isa.SetMask(3), // → SETMASK r3
		isa.SetMask(4), isa.Unmask(), // → UNMASK
		isa.ComputeDone(),
	}
	out, n := Optimize(p)
	// The cascade collapses the whole run of mask writes to the final
	// UNMASK (the fixpoint keeps exactly the terminal mask state).
	if n != 7 {
		t.Fatalf("removed %d, want 7\n%s", n, isa.Disassemble(out))
	}
	if len(out) != 3 {
		t.Fatalf("program length %d, want COMPUTE/UNMASK/COMPUTE_DONE", len(out))
	}
	if out[1].Op != isa.UNMASK {
		t.Fatalf("surviving mask op = %s, want UNMASK (terminal state)", out[1].Op)
	}
}

func TestOptimizePreservesJumpTargets(t *testing.T) {
	// The SETMASK at the loop head is a jump target: it must survive, and
	// the JUMP_COND target must be re-indexed after earlier removals.
	p := isa.Program{
		isa.Compute(0, 0),
		isa.Mov(5, 5), // removed → later indices shift by 1
		isa.CmpGt(0, 1),
		isa.SetMask(isa.RegCond), // index 3: loop target
		isa.Sub(0, 1, 0),
		isa.CmpGt(0, 1),
		isa.SetMask(isa.RegCond),
		isa.JumpCond(3),
		isa.ComputeDone(),
	}
	out, n := Optimize(p)
	if n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	found := false
	for _, in := range out {
		if in.Op == isa.JUMPCOND {
			found = true
			if in.Imm != 2 {
				t.Fatalf("jump target = %d, want 2", in.Imm)
			}
		}
	}
	if !found {
		t.Fatal("JUMP_COND disappeared")
	}
	// The pair SETMASK(cond) @6 ; JUMP_COND — not a removable pattern; and
	// the targeted SETMASK @3 must remain even though SETMASK;SETMASK-like
	// sequences appear around it.
	if out[2].Op != isa.SETMASK {
		t.Fatalf("loop head is %s, want SETMASK", out[2].Op)
	}
}

func TestOptimizeNoChange(t *testing.T) {
	p := isa.Program{isa.Compute(0, 0), isa.Add(0, 1, 2), isa.ComputeDone()}
	out, n := Optimize(p)
	if n != 0 || len(out) != len(p) {
		t.Fatal("optimizer changed a minimal program")
	}
}

// TestOptimizeSemanticsPreserved runs a mask-heavy program before and after
// optimization and compares every architectural register.
func TestOptimizeSemanticsPreserved(t *testing.T) {
	src := `
		ensemble {
			use rfh0.vrf0
			r2 = 0
			r3 = r3          # identity, removable
			if r0 > r2 {
				r1 = r0 + r0
			} else {
				r1 = 0
			}
			while r0 > r2 {
				r0 = r0 - r4
			}
		}
	`
	res, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	opt, removed := Optimize(res.Program)
	if removed == 0 {
		t.Log("note: no removable patterns in this codegen output")
	}
	run := func(p isa.Program) [][]uint64 {
		m, err := machine.New(machine.Config{Spec: backends.RACER(), NumMPUs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadAll(p); err != nil {
			t.Fatal(err)
		}
		a := controlpath.VRFAddr{}
		m.WriteVector(0, a, 0, []uint64{5, 0, 9})
		m.WriteVector(0, a, 4, []uint64{1, 1, 3})
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		var out [][]uint64
		for r := 0; r < 8; r++ {
			vals, _ := m.ReadVector(0, a, r)
			out = append(out, vals)
		}
		return out
	}
	want := run(res.Program)
	got := run(opt)
	for r := range want {
		for l := range want[r] {
			if got[r][l] != want[r][l] {
				t.Fatalf("r%d lane %d: optimized %d, original %d", r, l, got[r][l], want[r][l])
			}
		}
	}
}
