package ezpim

import (
	"fmt"
	"strconv"
	"strings"

	"mpu/internal/controlpath"
	"mpu/internal/isa"
)

// This file implements the ezpim text language, the high-level notation of
// Fig. 7. A program is a sequence of top-level constructs:
//
//	sub square {                 // subroutine (ensemble-context statements)
//	    r2 = r0 * r0
//	}
//	ensemble {
//	    use rfh0.vrf0            // VRFs executing this block
//	    use rfh0.vrf1
//	    r2 = r0 + r1
//	    if r2 > r3 { r4 = r2 - r3 } else { r4 = r3 - r2 }
//	    while r0 > r5 { r0 = r0 - r6 }
//	    call square
//	}
//	move rfh0 -> rfh1 { copy vrf0.r2 -> vrf0.r3 }
//	send mpu1 { move rfh0 -> rfh0 { copy vrf0.r2 -> vrf0.r2 } }
//	recv mpu0
//	sync
//
// Expressions: rA OP rB (+ - * / % & | ^), ~rA, rA << 1, plain rA (move),
// integer constants, and the intrinsics max, min, popc, relu, inc, bflip,
// sel(mask, a, b). Conditions: rA {== != < > <= >=} rB or
// fuzzy(rA, rB, rMask). Comments run from // or # to end of line.

// CompileResult carries the program plus the Table IV code-size accounting.
type CompileResult struct {
	Program     isa.Program
	SourceLines int // non-empty, non-comment ezpim lines
	AsmLines    int // emitted MPU instructions (hand-written baseline proxy)
}

// Compile translates ezpim source text into an MPU program.
func Compile(src string) (*CompileResult, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, b: NewBuilder(), vars: map[string]int{}, nextVar: UserRegs - 1}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	prog, err := p.b.Program()
	if err != nil {
		return nil, err
	}
	return &CompileResult{
		Program:     prog,
		SourceLines: countSourceLines(src),
		AsmLines:    len(prog),
	}, nil
}

func countSourceLines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		l := strings.TrimSpace(line)
		if l == "" || strings.HasPrefix(l, "//") || strings.HasPrefix(l, "#") {
			continue
		}
		n++
	}
	return n
}

// ---- Lexer -----------------------------------------------------------------

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tPunct
)

type token struct {
	kind tokKind
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#' || (c == '/' && i+1 < len(src) && src[i+1] == '/'):
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isAlpha(c):
			j := i
			for j < len(src) && (isAlpha(src[j]) || isDigit(src[j])) {
				j++
			}
			toks = append(toks, token{tIdent, src[i:j], line})
			i = j
		case isDigit(c):
			j := i
			for j < len(src) && (isDigit(src[j]) || src[j] == 'x' || src[j] == 'X' ||
				(src[j] >= 'a' && src[j] <= 'f') || (src[j] >= 'A' && src[j] <= 'F')) {
				j++
			}
			toks = append(toks, token{tNumber, src[i:j], line})
			i = j
		default:
			// Multi-character punctuation first.
			for _, p := range []string{"->", "<<", "==", "!=", "<=", ">=", "+="} {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{tPunct, p, line})
					i += len(p)
					goto next
				}
			}
			if strings.ContainsRune("{}(),=+-*/%&|^~<>.", rune(c)) {
				toks = append(toks, token{tPunct, string(c), line})
				i++
				goto next
			}
			return nil, fmt.Errorf("ezpim: line %d: unexpected character %q", line, c)
		next:
		}
	}
	toks = append(toks, token{tEOF, "", line})
	return toks, nil
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// ---- Parser ----------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
	b    *Builder

	// let-variable allocation: named variables map onto registers from the
	// top of the user space downward (r55, r54, ...).
	vars    map[string]int
	nextVar int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("ezpim: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tPunct || t.text != s {
		return p.errf(t, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tIdent {
		return t, p.errf(t, "expected identifier, got %q", t.text)
	}
	return t, nil
}

// prefixed parses tokens like rfh0, vrf3, mpu2, r17.
func (p *parser) prefixed(prefix string, limit int) (int, error) {
	t, err := p.expectIdent()
	if err != nil {
		return 0, err
	}
	if !strings.HasPrefix(t.text, prefix) {
		return 0, p.errf(t, "expected %s<N>, got %q", prefix, t.text)
	}
	n, err := strconv.Atoi(t.text[len(prefix):])
	if err != nil || n < 0 || n >= limit {
		return 0, p.errf(t, "%s index out of range [0,%d)", t.text, limit)
	}
	return n, nil
}

// reg parses a register operand: rN, or a let-declared variable name.
func (p *parser) reg() (int, error) {
	t := p.peek()
	if t.kind == tIdent {
		if r, ok := p.vars[t.text]; ok {
			p.next()
			return r, nil
		}
	}
	return p.prefixed("r", UserRegs)
}

// declareVar allocates a register for a new let variable.
func (p *parser) declareVar(t token) (int, error) {
	if _, dup := p.vars[t.text]; dup {
		return 0, p.errf(t, "variable %q already declared", t.text)
	}
	if strings.HasPrefix(t.text, "r") && len(t.text) > 1 && isDigit(t.text[1]) {
		return 0, p.errf(t, "variable name %q collides with register syntax", t.text)
	}
	if isIntrinsicName(t.text) {
		return 0, p.errf(t, "variable name %q collides with an intrinsic", t.text)
	}
	if p.nextVar < 16 {
		return 0, p.errf(t, "too many let variables (registers exhausted)")
	}
	r := p.nextVar
	p.nextVar--
	p.vars[t.text] = r
	return r, nil
}

func isIntrinsicName(s string) bool {
	switch s {
	case "max", "min", "popc", "relu", "inc", "bflip", "sel", "fuzzy",
		"let", "for", "if", "else", "while", "call", "cas", "use",
		"ensemble", "move", "send", "recv", "sync", "sub", "copy":
		return true
	}
	return false
}

func (p *parser) parseProgram() error {
	for {
		t := p.peek()
		if t.kind == tEOF {
			return nil
		}
		if t.kind != tIdent {
			return p.errf(t, "expected a top-level construct, got %q", t.text)
		}
		switch t.text {
		case "sub":
			if err := p.parseSub(); err != nil {
				return err
			}
		case "ensemble":
			if err := p.parseEnsemble(); err != nil {
				return err
			}
		case "move":
			if err := p.parseMove(nil); err != nil {
				return err
			}
		case "send":
			if err := p.parseSend(); err != nil {
				return err
			}
		case "recv":
			p.next()
			id, err := p.prefixed("mpu", 1<<24)
			if err != nil {
				return err
			}
			p.b.Recv(id)
		case "sync":
			p.next()
			p.b.Sync()
		default:
			return p.errf(t, "unknown top-level construct %q", t.text)
		}
	}
}

func (p *parser) parseSub() error {
	p.next() // sub
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	var bodyErr error
	p.b.SubDef(name.text, func() { bodyErr = p.parseStmts() })
	if bodyErr != nil {
		return bodyErr
	}
	return p.expectPunct("}")
}

func (p *parser) parseEnsemble() error {
	p.next() // ensemble
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	var addrs []controlpath.VRFAddr
	for p.peek().kind == tIdent && p.peek().text == "use" {
		p.next()
		rfh, err := p.prefixed("rfh", isa.MaxRFHsPerMPU)
		if err != nil {
			return err
		}
		if err := p.expectPunct("."); err != nil {
			return err
		}
		vrf, err := p.prefixed("vrf", isa.MaxVRFsPerRFH)
		if err != nil {
			return err
		}
		addrs = append(addrs, controlpath.VRFAddr{RFH: uint8(rfh), VRF: uint8(vrf)})
	}
	if len(addrs) == 0 {
		return p.errf(p.peek(), "ensemble without any `use rfhN.vrfM` clause")
	}
	var bodyErr error
	p.b.Ensemble(addrs, func() { bodyErr = p.parseStmts() })
	if bodyErr != nil {
		return bodyErr
	}
	return p.expectPunct("}")
}

// parseStmts parses ensemble-context statements until the closing brace
// (which it leaves unconsumed).
func (p *parser) parseStmts() error {
	for {
		t := p.peek()
		if t.kind == tPunct && t.text == "}" {
			return nil
		}
		if t.kind == tEOF {
			return p.errf(t, "unexpected end of input inside a block")
		}
		if err := p.parseStmt(); err != nil {
			return err
		}
	}
}

func (p *parser) parseStmt() error {
	t := p.peek()
	if t.kind != tIdent {
		return p.errf(t, "expected a statement, got %q", t.text)
	}
	switch t.text {
	case "if":
		return p.parseIf()
	case "while":
		return p.parseWhile()
	case "let":
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		rd, err := p.declareVar(name)
		if err != nil {
			return err
		}
		if err := p.expectPunct("="); err != nil {
			return err
		}
		return p.parseExprInto(rd)
	case "for":
		return p.parseFor()
	case "call":
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		p.b.Call(name.text)
		return nil
	case "cas":
		p.next()
		if err := p.expectPunct("("); err != nil {
			return err
		}
		a, err := p.reg()
		if err != nil {
			return err
		}
		if err := p.expectPunct(","); err != nil {
			return err
		}
		bReg, err := p.reg()
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		p.b.Op(isa.Cas(a, bReg))
		return nil
	}
	// Assignment: rD = expr   or   rD += rA * rB (MAC)
	rd, err := p.reg()
	if err != nil {
		return err
	}
	op := p.next()
	if op.kind != tPunct || (op.text != "=" && op.text != "+=") {
		return p.errf(op, "expected = or += after destination register")
	}
	if op.text == "+=" {
		a, err := p.reg()
		if err != nil {
			return err
		}
		if err := p.expectPunct("*"); err != nil {
			return err
		}
		b, err := p.reg()
		if err != nil {
			return err
		}
		p.b.Mac(a, b, rd)
		return nil
	}
	return p.parseExprInto(rd)
}

func (p *parser) parseExprInto(rd int) error {
	t := p.peek()
	switch {
	case t.kind == tNumber:
		p.next()
		v, err := strconv.ParseUint(strings.TrimPrefix(t.text, "0x"), pick(strings.HasPrefix(t.text, "0x"), 16, 10), 64)
		if err != nil {
			return p.errf(t, "bad constant %q", t.text)
		}
		p.b.Const(rd, v)
		return nil
	case t.kind == tPunct && t.text == "~":
		p.next()
		a, err := p.reg()
		if err != nil {
			return err
		}
		p.b.Inv(a, rd)
		return nil
	case t.kind == tIdent && isIntrinsic(t.text):
		return p.parseIntrinsic(rd)
	case t.kind == tIdent:
		a, err := p.reg()
		if err != nil {
			return err
		}
		nxt := p.peek()
		if nxt.kind != tPunct || !strings.ContainsAny(nxt.text, "+-*/%&|^<") {
			p.b.Mov(a, rd)
			return nil
		}
		p.next()
		if nxt.text == "<<" {
			one := p.next()
			if one.kind != tNumber || one.text != "1" {
				return p.errf(one, "only shifts by 1 are supported (LSHIFT)")
			}
			p.b.LShift(a, rd)
			return nil
		}
		b, err := p.reg()
		if err != nil {
			return err
		}
		switch nxt.text {
		case "+":
			p.b.Add(a, b, rd)
		case "-":
			p.b.Sub(a, b, rd)
		case "*":
			p.b.Mul(a, b, rd)
		case "/":
			p.b.Div(a, b, rd)
		case "%":
			p.b.Rem(a, b, rd)
		case "&":
			p.b.And(a, b, rd)
		case "|":
			p.b.Or(a, b, rd)
		case "^":
			p.b.Xor(a, b, rd)
		default:
			return p.errf(nxt, "unsupported operator %q", nxt.text)
		}
		return nil
	}
	return p.errf(t, "cannot parse expression starting at %q", t.text)
}

func pick(cond bool, a, b int) int {
	if cond {
		return a
	}
	return b
}

func isIntrinsic(s string) bool {
	switch s {
	case "max", "min", "popc", "relu", "inc", "bflip", "sel":
		return true
	}
	return false
}

func (p *parser) parseIntrinsic(rd int) error {
	name := p.next().text
	if err := p.expectPunct("("); err != nil {
		return err
	}
	var args []int
	for {
		a, err := p.reg()
		if err != nil {
			return err
		}
		args = append(args, a)
		t := p.next()
		if t.kind == tPunct && t.text == ")" {
			break
		}
		if t.kind != tPunct || t.text != "," {
			return p.errf(t, "expected , or ) in %s()", name)
		}
	}
	want := map[string]int{"max": 2, "min": 2, "popc": 1, "relu": 1, "inc": 1, "bflip": 1, "sel": 3}[name]
	if len(args) != want {
		return p.errf(p.peek(), "%s() takes %d register arguments, got %d", name, want, len(args))
	}
	switch name {
	case "max":
		p.b.Max(args[0], args[1], rd)
	case "min":
		p.b.Min(args[0], args[1], rd)
	case "popc":
		p.b.Popc(args[0], rd)
	case "relu":
		p.b.Relu(args[0], rd)
	case "inc":
		p.b.Inc(args[0], rd)
	case "bflip":
		p.b.Op(isa.BFlip(args[0], rd))
	case "sel":
		p.b.Sel(args[0], args[1], args[2], rd)
	}
	return nil
}

func (p *parser) parseCond() (Cond, error) {
	t := p.peek()
	if t.kind == tIdent && t.text == "fuzzy" {
		p.next()
		if err := p.expectPunct("("); err != nil {
			return Cond{}, err
		}
		a, err := p.reg()
		if err != nil {
			return Cond{}, err
		}
		if err := p.expectPunct(","); err != nil {
			return Cond{}, err
		}
		b, err := p.reg()
		if err != nil {
			return Cond{}, err
		}
		if err := p.expectPunct(","); err != nil {
			return Cond{}, err
		}
		m, err := p.reg()
		if err != nil {
			return Cond{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return Cond{}, err
		}
		return FuzzyEq(a, b, m), nil
	}
	a, err := p.reg()
	if err != nil {
		return Cond{}, err
	}
	op := p.next()
	if op.kind != tPunct {
		return Cond{}, p.errf(op, "expected comparison operator")
	}
	b, err := p.reg()
	if err != nil {
		return Cond{}, err
	}
	switch op.text {
	case "==":
		return Eq(a, b), nil
	case "!=":
		return Ne(a, b), nil
	case "<":
		return Lt(a, b), nil
	case ">":
		return Gt(a, b), nil
	case "<=":
		return Le(a, b), nil
	case ">=":
		return Ge(a, b), nil
	}
	return Cond{}, p.errf(op, "unknown comparison %q", op.text)
}

func (p *parser) parseIf() error {
	p.next() // if
	cond, err := p.parseCond()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	ctx := p.b.IfBegin(cond)
	if err := p.parseStmts(); err != nil {
		return err
	}
	if err := p.expectPunct("}"); err != nil {
		return err
	}
	if p.peek().kind == tIdent && p.peek().text == "else" {
		p.next()
		if err := p.expectPunct("{"); err != nil {
			return err
		}
		p.b.IfElse(ctx)
		if err := p.parseStmts(); err != nil {
			return err
		}
		if err := p.expectPunct("}"); err != nil {
			return err
		}
	}
	p.b.IfEnd(ctx)
	return nil
}

// parseFor lowers `for <count> { ... }` — a lane-uniform repeat whose trip
// count is a constant or a register/variable — onto Builder.Repeat.
func (p *parser) parseFor() error {
	p.next() // for
	t := p.peek()
	var cnt int
	if t.kind == tNumber {
		p.next()
		n, err := strconv.ParseUint(t.text, 10, 16)
		if err != nil || n == 0 {
			return p.errf(t, "bad trip count %q", t.text)
		}
		// Synthesize the constant into a fresh variable register.
		r, err := p.declareVar(token{kind: tIdent, text: fmt.Sprintf("__for%d", p.pos), line: t.line})
		if err != nil {
			return err
		}
		p.b.Const(r, n)
		cnt = r
	} else {
		r, err := p.reg()
		if err != nil {
			return err
		}
		cnt = r
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	var bodyErr error
	p.b.Repeat(cnt, func() { bodyErr = p.parseStmts() })
	if bodyErr != nil {
		return bodyErr
	}
	return p.expectPunct("}")
}

func (p *parser) parseWhile() error {
	p.next() // while
	cond, err := p.parseCond()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	var bodyErr error
	p.b.While(cond, func() { bodyErr = p.parseStmts() })
	if bodyErr != nil {
		return bodyErr
	}
	return p.expectPunct("}")
}

func (p *parser) parseMove(send *int) error {
	p.next() // move
	var pairs []controlpath.RFHPair
	for {
		src, err := p.prefixed("rfh", isa.MaxRFHsPerMPU)
		if err != nil {
			return err
		}
		if err := p.expectPunct("->"); err != nil {
			return err
		}
		dst, err := p.prefixed("rfh", isa.MaxRFHsPerMPU)
		if err != nil {
			return err
		}
		pairs = append(pairs, controlpath.RFHPair{Src: uint8(src), Dst: uint8(dst)})
		if p.peek().kind == tPunct && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	var copyErr error
	copies := func(tr *Transfer) {
		for {
			t := p.peek()
			if t.kind == tPunct && t.text == "}" {
				return
			}
			if t.kind != tIdent || t.text != "copy" {
				copyErr = p.errf(t, "expected `copy` inside a move block")
				return
			}
			p.next()
			vs, err := p.prefixed("vrf", isa.MaxVRFsPerRFH)
			if err != nil {
				copyErr = err
				return
			}
			if copyErr = p.expectPunct("."); copyErr != nil {
				return
			}
			rs, err := p.reg()
			if err != nil {
				copyErr = err
				return
			}
			if copyErr = p.expectPunct("->"); copyErr != nil {
				return
			}
			vd, err := p.prefixed("vrf", isa.MaxVRFsPerRFH)
			if err != nil {
				copyErr = err
				return
			}
			if copyErr = p.expectPunct("."); copyErr != nil {
				return
			}
			rdReg, err := p.reg()
			if err != nil {
				copyErr = err
				return
			}
			tr.Copy(vs, rs, vd, rdReg)
		}
	}
	if send != nil {
		p.b.Send(*send, pairs, copies)
	} else {
		p.b.Transfer(pairs, copies)
	}
	if copyErr != nil {
		return copyErr
	}
	return p.expectPunct("}")
}

func (p *parser) parseSend() error {
	p.next() // send
	id, err := p.prefixed("mpu", 1<<24)
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	t := p.peek()
	if t.kind != tIdent || t.text != "move" {
		return p.errf(t, "send block must contain a move block")
	}
	if err := p.parseMove(&id); err != nil {
		return err
	}
	return p.expectPunct("}")
}
