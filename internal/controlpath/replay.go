package controlpath

// Replay support for the ensemble trace engine (internal/trace). A recorded
// ensemble round carries the distinct (opcode, expansion size) pairs its
// body decodes; before replaying a round without re-interpreting it, the
// machine asks the recipe cache whether every one of those lookups would hit
// — and if so, charges the round's hits in O(1) instead of per instruction.

// LookupPair is one distinct decode the body performs: the opcode and the
// micro-op count of its expansion (the same arguments Lookup takes).
type LookupPair struct {
	Opcode   uint8
	MicroOps int
}

// storedSize is the table footprint Lookup charges for an expansion.
func (c *RecipeCache) storedSize(microOps int) int {
	if c.cfg.PointerTable {
		return microOps/3 + 1
	}
	return microOps
}

// ReplayAllHit reports whether every pair is resident at its exact stored
// size — the precondition for skipping the body's Lookup calls: when it
// holds, each lookup the interpreter would perform is a zero-stall hit, and
// hits evict nothing, so residency is invariant across the replayed round.
func (c *RecipeCache) ReplayAllHit(pairs []LookupPair) bool {
	for _, p := range pairs {
		if size, ok := c.resident[p.Opcode]; !ok || size != c.storedSize(p.MicroOps) {
			return false
		}
	}
	return true
}

// ChargeReplayHits accounts one replayed all-hit round: hits is the number
// of Lookup calls the interpreted body would have made, and touchOrder lists
// the body's opcodes by last occurrence. Touching in that order leaves the
// LRU recency list exactly as the interpreted round would have — which
// matters because later misses choose eviction victims by that order.
func (c *RecipeCache) ChargeReplayHits(hits uint64, touchOrder []uint8) {
	c.Hits += hits
	for _, op := range touchOrder {
		c.touch(op)
	}
}
