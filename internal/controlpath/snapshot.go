package controlpath

import "fmt"

// Snapshot accessors: the machine snapshot (internal/machine/snapshot.go)
// serializes the control path's mutable state — return-stack frames and the
// recipe table's residency, recency order, and counters — through these
// instead of reaching into the structs, so the package keeps its invariants
// (lru ↔ resident consistency, used = Σ stored) on the restore path too.

// Frames returns a copy of the return stack's saved addresses, oldest first.
func (s *ReturnStack) Frames() []int {
	return append([]int(nil), s.addrs...)
}

// SetFrames replaces the saved addresses (oldest first). The frame count
// must respect the stack's depth limit.
func (s *ReturnStack) SetFrames(frames []int) error {
	if len(frames) > s.limit {
		return fmt.Errorf("controlpath: %d frames exceed return-stack depth %d", len(frames), s.limit)
	}
	s.addrs = append(s.addrs[:0], frames...)
	return nil
}

// ResidentEntry is one recipe-table entry in recency order.
type ResidentEntry struct {
	Opcode uint8
	Stored int // resident size in micro-op templates
}

// SnapshotEntries returns the resident recipes in recency order, least
// recently used first — the order RestoreEntries needs to rebuild an
// LRU-identical table.
func (c *RecipeCache) SnapshotEntries() []ResidentEntry {
	out := make([]ResidentEntry, 0, len(c.lru))
	for _, op := range c.lru {
		out = append(out, ResidentEntry{Opcode: op, Stored: c.resident[op]})
	}
	return out
}

// RestoreEntries replaces the table contents with entries (least recently
// used first), rebuilding the residency map, recency order, and used total.
// The counters (Hits/Misses/StallCycles) are exported fields the caller
// restores directly.
func (c *RecipeCache) RestoreEntries(entries []ResidentEntry) error {
	resident := make(map[uint8]int, len(entries))
	used := 0
	for _, e := range entries {
		if _, dup := resident[e.Opcode]; dup {
			return fmt.Errorf("controlpath: duplicate resident opcode %d", e.Opcode)
		}
		if e.Stored <= 0 {
			return fmt.Errorf("controlpath: resident opcode %d with non-positive size %d", e.Opcode, e.Stored)
		}
		resident[e.Opcode] = e.Stored
		used += e.Stored
	}
	if used > c.cfg.CapacityMicroOps {
		return fmt.Errorf("controlpath: restored residency %d exceeds capacity %d", used, c.cfg.CapacityMicroOps)
	}
	c.resident = resident
	c.lru = c.lru[:0]
	for _, e := range entries {
		c.lru = append(c.lru, e.Opcode)
	}
	c.used = used
	return nil
}
