package controlpath

import "testing"

// replayCfg: small capacity so eviction order is observable.
func replayCfg() RecipeCacheConfig {
	return RecipeCacheConfig{CapacityMicroOps: 30, PointerTable: false, TemplateLookup: true, MissPenaltyPer: 2}
}

func TestReplayAllHit(t *testing.T) {
	c := NewRecipeCache(replayCfg())
	c.Lookup(1, 10)
	c.Lookup(2, 10)
	pairs := []LookupPair{{Opcode: 1, MicroOps: 10}, {Opcode: 2, MicroOps: 10}}
	if !c.ReplayAllHit(pairs) {
		t.Fatal("resident pairs reported as miss")
	}
	if c.ReplayAllHit([]LookupPair{{Opcode: 3, MicroOps: 10}}) {
		t.Fatal("absent opcode reported as hit")
	}
	if c.ReplayAllHit([]LookupPair{{Opcode: 1, MicroOps: 11}}) {
		t.Fatal("size-mismatched entry reported as hit")
	}

	// PointerTable compresses the stored size; ReplayAllHit must apply the
	// same transform as Lookup.
	pc := NewRecipeCache(RecipeCacheConfig{CapacityMicroOps: 30, PointerTable: true, TemplateLookup: true, MissPenaltyPer: 2})
	pc.Lookup(1, 10)
	if !pc.ReplayAllHit([]LookupPair{{Opcode: 1, MicroOps: 10}}) {
		t.Fatal("pointer-table stored size not matched")
	}

	// Without template lookup nothing becomes resident, so replay never hits.
	nt := NewRecipeCache(RecipeCacheConfig{CapacityMicroOps: 30, TemplateLookup: false, MissPenaltyPer: 2})
	nt.Lookup(1, 10)
	if nt.ReplayAllHit([]LookupPair{{Opcode: 1, MicroOps: 10}}) {
		t.Fatal("template-lookup-disabled cache reported a hit")
	}
}

// TestChargeReplayHitsMatchesLookups drives two identically-configured
// caches — one through per-instruction Lookup calls, one through the O(1)
// replay charge — then diverges both with further misses and requires
// identical hit/miss/stall counters and eviction behavior, proving the
// replay touch order left the same LRU state.
func TestChargeReplayHitsMatchesLookups(t *testing.T) {
	body := []struct {
		opcode   uint8
		microOps int
	}{{1, 10}, {2, 10}, {1, 10}, {3, 10}} // last-occurrence order: 2, 1, 3

	a := NewRecipeCache(replayCfg())
	b := NewRecipeCache(replayCfg())
	for _, in := range body { // round 1: both interpret (cold caches)
		a.Lookup(in.opcode, in.microOps)
		b.Lookup(in.opcode, in.microOps)
	}

	pairs := []LookupPair{{1, 10}, {2, 10}, {3, 10}}
	touch := []uint8{2, 1, 3}
	for round := 0; round < 3; round++ {
		for _, in := range body {
			a.Lookup(in.opcode, in.microOps)
		}
		if !b.ReplayAllHit(pairs) {
			t.Fatal("warm cache reported a replay miss")
		}
		b.ChargeReplayHits(uint64(len(body)), touch)
	}

	// Diverging workload: opcode 4 forces an eviction (capacity 30 holds
	// three 10-op recipes); the victim must be the same in both caches.
	a.Lookup(4, 10)
	b.Lookup(4, 10)
	for _, in := range body {
		a.Lookup(in.opcode, in.microOps)
		b.Lookup(in.opcode, in.microOps)
	}

	if a.Hits != b.Hits || a.Misses != b.Misses || a.StallCycles != b.StallCycles {
		t.Fatalf("counter divergence: interpreted hits=%d misses=%d stalls=%d, replayed hits=%d misses=%d stalls=%d",
			a.Hits, a.Misses, a.StallCycles, b.Hits, b.Misses, b.StallCycles)
	}
	if a.used != b.used || len(a.resident) != len(b.resident) {
		t.Fatalf("residency divergence: %v vs %v", a.resident, b.resident)
	}
	for op, size := range a.resident {
		if b.resident[op] != size {
			t.Fatalf("resident[%d]: %d vs %d", op, size, b.resident[op])
		}
	}
	for i := range a.lru {
		if a.lru[i] != b.lru[i] {
			t.Fatalf("lru order divergence: %v vs %v", a.lru, b.lru)
		}
	}
}
