// Package controlpath implements the hardware building blocks of the MPU
// control path (§VI): the thermal-aware scheduler that batches VRF
// activations (Fig. 10), the recipe-table model with its pointer-table and
// template-lookup optimizations (Fig. 9), the playback buffer, the
// return-address stack backing JUMP/RETURN, and the data transfer
// controller's target map. The machine package wires these into a full MPU.
//
// Concurrency contract: every stateful structure here (RecipeCache,
// PlaybackBuffer, the return stack) is owned by exactly ONE core and is
// never locked — the machine's phase-barrier scheduler runs cores on
// separate goroutines, and each core touches only its own control path.
// Batches and the other pure functions are safe from any goroutine. Adding
// cross-core sharing to this package means adding synchronization AND a
// deterministic merge, or the worker-count stats parity breaks.
package controlpath

import "fmt"

// VRFAddr names one VRF within an MPU.
type VRFAddr struct {
	RFH, VRF uint8
}

func (a VRFAddr) String() string { return fmt.Sprintf("rfh%d.vrf%d", a.RFH, a.VRF) }

// Batches implements the Fig. 10 scheduling algorithm: the ensemble's VRFs
// are queued per RF holder and activated in rounds of at most limit VRFs per
// RFH. VRFs in different RFHs activate concurrently, so round r contains the
// r-th wave from every RFH queue. The returned slice has one entry per
// round, in activation order.
func Batches(vrfs []VRFAddr, limit int) [][]VRFAddr {
	if limit <= 0 {
		panic(fmt.Sprintf("controlpath: activation limit %d must be positive", limit))
	}
	queues := map[uint8][]VRFAddr{}
	var order []uint8
	seen := map[VRFAddr]bool{}
	for _, a := range vrfs {
		if seen[a] {
			continue // duplicate COMPUTE of the same VRF activates once
		}
		seen[a] = true
		if _, ok := queues[a.RFH]; !ok {
			order = append(order, a.RFH)
		}
		queues[a.RFH] = append(queues[a.RFH], a)
	}
	var rounds [][]VRFAddr
	for r := 0; ; r++ {
		var round []VRFAddr
		for _, rfh := range order {
			q := queues[rfh]
			lo := r * limit
			if lo >= len(q) {
				continue
			}
			hi := lo + limit
			if hi > len(q) {
				hi = len(q)
			}
			round = append(round, q[lo:hi]...)
		}
		if len(round) == 0 {
			return rounds
		}
		rounds = append(rounds, round)
	}
}

// RecipeCacheConfig selects the Fig. 9 optimizations and capacities
// (Table III: 1024 template-lookup entries, 20 pointer-table entries).
type RecipeCacheConfig struct {
	CapacityMicroOps int  // recipe-table capacity in micro-op templates
	PointerTable     bool // share common recipe subsequences
	TemplateLookup   bool // cache recipes from binary storage on demand
	MissPenaltyPer   int  // extra cycles per micro-op fetched on a miss
}

// DefaultRecipeCacheConfig returns the evaluated configuration.
func DefaultRecipeCacheConfig() RecipeCacheConfig {
	return RecipeCacheConfig{
		CapacityMicroOps: 4096,
		PointerTable:     true,
		TemplateLookup:   true,
		MissPenaltyPer:   2,
	}
}

// RecipeCache models decode-side stalls of the I2M recipe table. Recipes are
// identified by opcode; the functional expansion itself lives in
// internal/recipe — this model only accounts for the cycles the decoder
// stalls while a recipe is brought into the table.
type RecipeCache struct {
	cfg      RecipeCacheConfig
	resident map[uint8]int // opcode -> stored size (micro-ops)
	lru      []uint8
	used     int

	Hits, Misses uint64
	StallCycles  int64
}

// NewRecipeCache builds a cache with the given configuration.
func NewRecipeCache(cfg RecipeCacheConfig) *RecipeCache {
	if cfg.CapacityMicroOps <= 0 {
		panic("controlpath: recipe cache capacity must be positive")
	}
	return &RecipeCache{cfg: cfg, resident: map[uint8]int{}}
}

// Lookup charges the decode cost for one instruction whose recipe has the
// given micro-op count, returning the stall cycles incurred.
func (c *RecipeCache) Lookup(opcode uint8, microOps int) int64 {
	stored := microOps
	if c.cfg.PointerTable {
		// Common subsequences (adder chains, gate idioms) are shared via the
		// pointer table, compressing the stored template substantially.
		stored = microOps/3 + 1
	}
	if size, ok := c.resident[opcode]; ok && size == stored {
		c.Hits++
		c.touch(opcode)
		return 0
	}
	c.Misses++
	if !c.cfg.TemplateLookup {
		// Without the template-lookup table the decoder re-walks binary
		// storage for every occurrence and nothing becomes resident.
		stall := int64(c.cfg.MissPenaltyPer) * int64(stored)
		c.StallCycles += stall
		return stall
	}
	// Evict LRU entries until the recipe fits.
	for c.used+stored > c.cfg.CapacityMicroOps && len(c.lru) > 0 {
		victim := c.lru[0]
		c.lru = c.lru[1:]
		c.used -= c.resident[victim]
		delete(c.resident, victim)
	}
	if stored <= c.cfg.CapacityMicroOps {
		c.resident[opcode] = stored
		c.used += stored
		c.lru = append(c.lru, opcode)
	}
	stall := int64(c.cfg.MissPenaltyPer) * int64(stored)
	c.StallCycles += stall
	return stall
}

// Reset returns the cache to its just-constructed state — contents,
// recency order, and the accounting counters. Machine.Reset calls it when a
// pooled machine is recycled, so a warm run charges exactly the stalls a
// fresh machine would.
func (c *RecipeCache) Reset() {
	c.resident = map[uint8]int{}
	c.lru = nil
	c.used = 0
	c.Hits, c.Misses, c.StallCycles = 0, 0, 0
}

// ResetCounters zeroes the hit/miss/stall accounting while keeping the
// resident recipes and their recency order. Machine.Rewind uses it: a
// steady-state re-invocation of a resident kernel starts a fresh account
// but decodes against the table the previous run warmed.
func (c *RecipeCache) ResetCounters() {
	c.Hits, c.Misses, c.StallCycles = 0, 0, 0
}

func (c *RecipeCache) touch(opcode uint8) {
	for i, op := range c.lru {
		if op == opcode {
			c.lru = append(append(c.lru[:i:i], c.lru[i+1:]...), opcode)
			return
		}
	}
}

// PlaybackBuffer models the CC's instruction replay storage (Table III: 1024
// entries). Ensemble bodies that exceed it must be refetched from the ISU on
// every replay round.
type PlaybackBuffer struct {
	Capacity  int
	Overflows uint64
}

// NewPlaybackBuffer returns a buffer with the Table III capacity.
func NewPlaybackBuffer() *PlaybackBuffer { return &PlaybackBuffer{Capacity: 1024} }

// Reset clears the overflow count (machine recycling).
func (b *PlaybackBuffer) Reset() { b.Overflows = 0 }

// Fits records an ensemble body of n instructions and reports whether it can
// be replayed from the buffer.
func (b *PlaybackBuffer) Fits(n int) bool {
	if n > b.Capacity {
		b.Overflows++
		return false
	}
	return true
}

// ReturnStack is the control path's return-address stack for JUMP/RETURN.
type ReturnStack struct {
	addrs []int
	limit int
}

// NewReturnStack returns a stack with the given depth limit.
func NewReturnStack(limit int) *ReturnStack { return &ReturnStack{limit: limit} }

// Reset drops every saved frame (machine recycling).
func (s *ReturnStack) Reset() { s.addrs = s.addrs[:0] }

// Push saves a return address.
func (s *ReturnStack) Push(pc int) error {
	if len(s.addrs) >= s.limit {
		return fmt.Errorf("controlpath: return stack overflow (depth %d)", s.limit)
	}
	s.addrs = append(s.addrs, pc)
	return nil
}

// Pop restores the most recent return address.
func (s *ReturnStack) Pop() (int, error) {
	if len(s.addrs) == 0 {
		return 0, fmt.Errorf("controlpath: RETURN with empty return stack")
	}
	pc := s.addrs[len(s.addrs)-1]
	s.addrs = s.addrs[:len(s.addrs)-1]
	return pc, nil
}

// Depth reports the current nesting depth.
func (s *ReturnStack) Depth() int { return len(s.addrs) }

// RFHPair is one source→destination entry in the DTC target map.
type RFHPair struct {
	Src, Dst uint8
}

// TargetMap is the DTC state configured by a transfer ensemble's MOVE
// header (§VI-D).
type TargetMap struct {
	pairs []RFHPair
}

// Add appends an RFH pair from a MOVE instruction.
func (t *TargetMap) Add(src, dst uint8) { t.pairs = append(t.pairs, RFHPair{src, dst}) }

// Pairs returns the configured pairs in header order.
func (t *TargetMap) Pairs() []RFHPair { return t.pairs }

// Reset clears the map at MOVE_DONE.
func (t *TargetMap) Reset() { t.pairs = t.pairs[:0] }
