package controlpath

import (
	"testing"
	"testing/quick"
)

func addr(rfh, vrf int) VRFAddr { return VRFAddr{RFH: uint8(rfh), VRF: uint8(vrf)} }

func TestBatchesSingleRFH(t *testing.T) {
	vrfs := []VRFAddr{addr(0, 0), addr(0, 1), addr(0, 2)}
	rounds := Batches(vrfs, 1)
	if len(rounds) != 3 {
		t.Fatalf("rounds = %d, want 3 (limit 1)", len(rounds))
	}
	for i, r := range rounds {
		if len(r) != 1 || r[0] != vrfs[i] {
			t.Fatalf("round %d = %v", i, r)
		}
	}
}

func TestBatchesAcrossRFHs(t *testing.T) {
	// Two RFHs with 3 and 1 VRFs, limit 1: RFHs run concurrently, so
	// round 0 holds one VRF from each.
	vrfs := []VRFAddr{addr(0, 0), addr(0, 1), addr(0, 2), addr(1, 5)}
	rounds := Batches(vrfs, 1)
	if len(rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(rounds))
	}
	if len(rounds[0]) != 2 {
		t.Fatalf("round 0 = %v, want VRFs from both RFHs", rounds[0])
	}
	if len(rounds[1]) != 1 || len(rounds[2]) != 1 {
		t.Fatalf("later rounds = %v %v", rounds[1], rounds[2])
	}
}

func TestBatchesNoLimit(t *testing.T) {
	var vrfs []VRFAddr
	for v := 0; v < 64; v++ {
		vrfs = append(vrfs, addr(2, v))
	}
	rounds := Batches(vrfs, 64)
	if len(rounds) != 1 || len(rounds[0]) != 64 {
		t.Fatalf("unlimited activation should be one round, got %d", len(rounds))
	}
}

func TestBatchesDeduplicates(t *testing.T) {
	rounds := Batches([]VRFAddr{addr(0, 1), addr(0, 1), addr(0, 1)}, 1)
	if len(rounds) != 1 {
		t.Fatalf("duplicate COMPUTE produced %d rounds, want 1", len(rounds))
	}
}

func TestBatchesEmpty(t *testing.T) {
	if got := Batches(nil, 4); len(got) != 0 {
		t.Fatalf("empty ensemble produced %d rounds", len(got))
	}
}

func TestBatchesBadLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("limit 0 did not panic")
		}
	}()
	Batches([]VRFAddr{addr(0, 0)}, 0)
}

// Property: every VRF appears exactly once across rounds and no round holds
// more than limit VRFs of the same RFH.
func TestBatchesProperty(t *testing.T) {
	f := func(raw []uint16, limRaw uint8) bool {
		limit := int(limRaw)%8 + 1
		var vrfs []VRFAddr
		for _, r := range raw {
			vrfs = append(vrfs, addr(int(r>>8)%8, int(r)%64))
		}
		rounds := Batches(vrfs, limit)
		seen := map[VRFAddr]int{}
		for _, round := range rounds {
			perRFH := map[uint8]int{}
			for _, a := range round {
				seen[a]++
				perRFH[a.RFH]++
				if perRFH[a.RFH] > limit {
					return false
				}
			}
		}
		uniq := map[VRFAddr]bool{}
		for _, a := range vrfs {
			uniq[a] = true
		}
		if len(seen) != len(uniq) {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecipeCacheHitsAndMisses(t *testing.T) {
	c := NewRecipeCache(DefaultRecipeCacheConfig())
	first := c.Lookup(7, 900)
	if first == 0 {
		t.Fatal("first lookup should stall")
	}
	if got := c.Lookup(7, 900); got != 0 {
		t.Fatalf("second lookup stalled %d cycles, want 0", got)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestRecipeCacheEviction(t *testing.T) {
	cfg := DefaultRecipeCacheConfig()
	cfg.CapacityMicroOps = 100
	cfg.PointerTable = false
	c := NewRecipeCache(cfg)
	c.Lookup(1, 60)
	c.Lookup(2, 60) // evicts opcode 1
	if got := c.Lookup(1, 60); got == 0 {
		t.Fatal("evicted recipe hit the cache")
	}
}

func TestRecipeCachePointerTableCompresses(t *testing.T) {
	cfg := DefaultRecipeCacheConfig()
	cfg.CapacityMicroOps = 100
	cfg.PointerTable = true
	c := NewRecipeCache(cfg)
	// 240 raw micro-ops compress to ~81 stored entries and fit.
	c.Lookup(1, 240)
	if got := c.Lookup(1, 240); got != 0 {
		t.Fatal("pointer-table-compressed recipe did not fit")
	}
}

func TestRecipeCacheNoTemplateLookupNeverResident(t *testing.T) {
	cfg := DefaultRecipeCacheConfig()
	cfg.TemplateLookup = false
	c := NewRecipeCache(cfg)
	c.Lookup(3, 50)
	if got := c.Lookup(3, 50); got == 0 {
		t.Fatal("recipe became resident without the template-lookup table")
	}
	if c.Hits != 0 || c.Misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2", c.Hits, c.Misses)
	}
}

func TestRecipeCacheStallAccounting(t *testing.T) {
	cfg := DefaultRecipeCacheConfig()
	cfg.PointerTable = false
	c := NewRecipeCache(cfg)
	stall := c.Lookup(4, 10)
	if want := int64(cfg.MissPenaltyPer * 10); stall != want {
		t.Fatalf("stall = %d, want %d", stall, want)
	}
	if c.StallCycles != stall {
		t.Fatalf("StallCycles = %d", c.StallCycles)
	}
}

func TestPlaybackBuffer(t *testing.T) {
	b := NewPlaybackBuffer()
	if !b.Fits(1024) {
		t.Fatal("1024-entry body should fit (Table III)")
	}
	if b.Fits(1025) {
		t.Fatal("oversized body reported as fitting")
	}
	if b.Overflows != 1 {
		t.Fatalf("Overflows = %d", b.Overflows)
	}
}

func TestReturnStack(t *testing.T) {
	s := NewReturnStack(2)
	if _, err := s.Pop(); err == nil {
		t.Fatal("Pop of empty stack succeeded")
	}
	if err := s.Push(10); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(20); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(30); err == nil {
		t.Fatal("push beyond limit succeeded")
	}
	if s.Depth() != 2 {
		t.Fatalf("Depth = %d", s.Depth())
	}
	pc, err := s.Pop()
	if err != nil || pc != 20 {
		t.Fatalf("Pop = %d, %v", pc, err)
	}
}

func TestTargetMap(t *testing.T) {
	var tm TargetMap
	tm.Add(1, 2)
	tm.Add(3, 4)
	pairs := tm.Pairs()
	if len(pairs) != 2 || pairs[0] != (RFHPair{1, 2}) || pairs[1] != (RFHPair{3, 4}) {
		t.Fatalf("Pairs = %v", pairs)
	}
	tm.Reset()
	if len(tm.Pairs()) != 0 {
		t.Fatal("Reset left pairs behind")
	}
}
