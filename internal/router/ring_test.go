package router

import (
	"fmt"
	"testing"
)

func TestRingCandidatesDeterministicAndDistinct(t *testing.T) {
	names := []string{"n0", "n1", "n2", "n3"}
	r := newRing(names, 64)
	for k := 0; k < 200; k++ {
		key := fmt.Sprintf("racer|mpu|kernel%d", k)
		a := r.candidates(key, 3)
		b := r.candidates(key, 3)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("key %q: candidates not deterministic: %v vs %v", key, a, b)
		}
		if len(a) != 3 {
			t.Fatalf("key %q: want 3 candidates, got %v", key, a)
		}
		seen := map[int]bool{}
		for _, n := range a {
			if seen[n] {
				t.Fatalf("key %q: duplicate node in candidate set %v", key, a)
			}
			seen[n] = true
		}
	}
}

// TestRingBalance pins that the ring spreads a key population across every
// node: with 64 virtual points per node no node owns a wildly outsized
// share, and none is starved.
func TestRingBalance(t *testing.T) {
	names := []string{"n0", "n1", "n2", "n3"}
	r := newRing(names, 64)
	owns := make([]int, len(names))
	const keys = 4000
	for k := 0; k < keys; k++ {
		owns[r.candidates(fmt.Sprintf("racer|mpu|prog%d", k), 1)[0]]++
	}
	for i, c := range owns {
		if c == 0 {
			t.Fatalf("node %d owns no keys: %v", i, owns)
		}
		if c > keys/2 {
			t.Fatalf("node %d owns %d of %d keys — ring is degenerate: %v", i, c, keys, owns)
		}
	}
}

// TestRingStability pins minimal disruption: adding a node moves only a
// fraction of the key space (the consistent-hashing property the cache
// affinity argument rests on).
func TestRingStability(t *testing.T) {
	r3 := newRing([]string{"n0", "n1", "n2"}, 64)
	r4 := newRing([]string{"n0", "n1", "n2", "n3"}, 64)
	const keys = 2000
	moved := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("racer|mpu|prog%d", k)
		before := r3.candidates(key, 1)[0]
		after := r4.candidates(key, 1)[0]
		if after != 3 && after != before {
			t.Fatalf("key %q moved between surviving nodes: %d -> %d", key, before, after)
		}
		if after != before {
			moved++
		}
	}
	// Expect ~1/4 of keys to move to the new node; allow a generous band.
	if moved < keys/10 || moved > keys/2 {
		t.Fatalf("adding a node moved %d/%d keys (want ~1/4)", moved, keys)
	}
}

func TestShardKeyIgnoresDataShape(t *testing.T) {
	a := shardKey(&shardFields{Workload: "gcd", Backend: "racer", Mode: "mpu"})
	b := shardKey(&shardFields{Workload: "gcd", Backend: "RACER"})
	if a != b {
		t.Fatalf("mode default / backend case changed the key: %q vs %q", a, b)
	}
	c := shardKey(&shardFields{Workload: "relu", Backend: "racer"})
	if a == c {
		t.Fatalf("different programs share a key: %q", a)
	}
	d := shardKey(&shardFields{Binary: "AAAA", Backend: "racer"})
	e := shardKey(&shardFields{Binary: "AAAB", Backend: "racer"})
	if d == e {
		t.Fatalf("different binaries share a key: %q", d)
	}
}

func TestSumSeries(t *testing.T) {
	exp := `# HELP mpud_queue_depth x
# TYPE mpud_queue_depth gauge
mpud_queue_depth{pool="RACER/MPU"} 3
mpud_queue_depth{node="n1",pool="MIMDRAM/MPU"} 4
mpud_queue_depth_fake 100
mpud_inflight 7
`
	if v, ok := sumSeries(exp, "mpud_queue_depth"); !ok || v != 7 {
		t.Fatalf("queue depth sum = %d, %v (want 7)", v, ok)
	}
	if v, ok := sumSeries(exp, "mpud_inflight"); !ok || v != 7 {
		t.Fatalf("inflight sum = %d, %v (want 7)", v, ok)
	}
	if _, ok := sumSeries(exp, "mpud_missing"); ok {
		t.Fatal("missing series reported found")
	}
}
