package router

import (
	"context"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// nodeState is the router's live view of one mpud node, updated by the
// scrape loop and (on transport failure) by the forwarding path.
type nodeState struct {
	name        string // display name: host:port
	base        string // base URL
	ready       atomic.Bool
	loadBits    atomic.Uint64 // math.Float64bits of the EWMA load score
	queueDepth  atomic.Int64  // last scraped sum over pools
	inflight    atomic.Int64  // last scraped gauge
	outstanding atomic.Int64  // attempts this router has in flight right now

	// Scrape-loop-local state (single goroutine, no locking needed).
	hotScrapes int  // consecutive scrapes with queue depth over the advisory threshold
	advised    bool // advisory already logged for the current hot episode
}

func (n *nodeState) load() float64     { return math.Float64frombits(n.loadBits.Load()) }
func (n *nodeState) setLoad(v float64) { n.loadBits.Store(math.Float64bits(v)) }

// effLoad is the spill signal: the scraped EWMA plus the attempts this
// router has in flight to the node right now. The scrape alone is up to one
// interval stale — deciding on it herds traffic onto whichever node looked
// idle at the last sample and oscillates; the live outstanding count makes
// each routed request immediately visible to the next decision.
func (n *nodeState) effLoad() float64 {
	return n.load() + float64(n.outstanding.Load())
}

// ewmaAlpha weights the newest scrape sample; ~3 scrapes to converge.
const ewmaAlpha = 0.3

// scrapeLoop polls every node's /healthz and /metrics on the configured
// interval until stop closes. Readiness comes from /healthz (a draining mpud
// answers 503 and is immediately routed around); the load score is an EWMA
// of queue depth + inflight from the gauges mpud already exports, used as
// the least-loaded tiebreak inside a key's candidate set. Sustained queue
// depth above the advisory threshold emits a pool-autoscale advisory log
// line — the router cannot grow a node's pools, but it can tell the
// operator which node needs it.
func (rt *Router) scrapeLoop(stop <-chan struct{}) {
	defer rt.scrapeWG.Done()
	t := time.NewTicker(rt.cfg.ScrapeInterval)
	defer t.Stop()
	rt.scrapeAll()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			rt.scrapeAll()
		}
	}
}

func (rt *Router) scrapeAll() {
	for _, n := range rt.nodes {
		rt.scrapeNode(n)
	}
}

func (rt *Router) scrapeNode(n *nodeState) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ScrapeInterval)
	defer cancel()

	wasReady := n.ready.Load()
	ready := rt.probe(ctx, n.base+"/healthz") == http.StatusOK
	n.ready.Store(ready)
	if wasReady && !ready {
		rt.metrics.nodeUnready(n.name)
		rt.logf(routerLog{Msg: "node-unready", Node: n.name})
	}
	if !wasReady && ready {
		rt.logf(routerLog{Msg: "node-ready", Node: n.name})
	}
	if !ready {
		// Don't decay the load score while unready: the node keeps its last
		// known score and rejoins the tiebreak where it left off.
		n.hotScrapes, n.advised = 0, false
		return
	}

	depth, inflight, ok := rt.scrapeGauges(ctx, n.base+"/metrics")
	if !ok {
		return
	}
	n.queueDepth.Store(depth)
	n.inflight.Store(inflight)
	sample := float64(depth + inflight)
	n.setLoad(ewmaAlpha*sample + (1-ewmaAlpha)*n.load())

	// Pool-autoscale advisory: sustained admission-queue depth means the
	// node's warm pools are undersized for its shard of the key space.
	if rt.cfg.AutoscaleDepth > 0 && depth >= int64(rt.cfg.AutoscaleDepth) {
		n.hotScrapes++
		if n.hotScrapes >= rt.cfg.AutoscaleSustain && !n.advised {
			n.advised = true
			rt.metrics.autoscaleAdvisory(n.name)
			rt.logf(routerLog{
				Msg: "autoscale-advice", Node: n.name, Queue: int(depth),
				Err: "sustained queue depth: grow this node's warm pools (-pools size) or add nodes",
			})
		}
	} else {
		n.hotScrapes, n.advised = 0, false
	}
}

// probe GETs url and returns the status code (0 on transport failure).
func (rt *Router) probe(ctx context.Context, url string) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// scrapeGauges fetches a Prometheus text exposition and sums the
// mpud_queue_depth and mpud_inflight gauges, tolerating any label set (a
// node may or may not carry node="..." labels).
func (rt *Router) scrapeGauges(ctx context.Context, url string) (depth, inflight int64, ok bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, 0, false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, 0, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return 0, 0, false
	}
	d, dok := sumSeries(string(body), "mpud_queue_depth")
	f, fok := sumSeries(string(body), "mpud_inflight")
	return d, f, dok && fok
}

// sumSeries sums the values of every sample whose metric name matches
// exactly (label sets differ per node/pool; histogram series like
// name_bucket do not match).
func sumSeries(exposition, name string) (int64, bool) {
	var sum float64
	found := false
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue // a longer metric name sharing the prefix
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		sum += v
		found = true
	}
	return int64(sum), found
}
