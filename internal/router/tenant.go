package router

import (
	"context"
	"errors"
	"sync"
)

// errTenantSaturated is returned by acquire when the tenant's waiting queue
// is full; the handler maps it to 429 + Retry-After. It is the per-tenant
// analogue of mpud's 503 queue-full backpressure: bounded, immediate, never
// an invisible queue.
var errTenantSaturated = errors.New("tenant admission queue full")

// fairAdmission is a weighted-fair admission gate over the router's
// forwarding slots, implemented as stride scheduling: each tenant carries a
// virtual-time pass advanced by stride = strideScale/weight on every grant,
// and when slots are contended the waiting tenant with the smallest pass is
// served next. A tenant with weight 4 therefore gets 4× the grants of a
// weight-1 tenant under saturation, while idle tenants accumulate no credit
// (their pass is floored to the current virtual time when they return).
type fairAdmission struct {
	mu        sync.Mutex
	slots     int // in use
	maxSlots  int
	waitBound int            // per-tenant waiting cap
	waiting   int            // total waiters across tenants
	weights   map[string]int // configured weights; absent tenants get 1
	tenants   map[string]*tenantState
	vtime     float64 // pass of the most recent grant: the virtual clock
}

type tenantState struct {
	name     string
	weight   int
	pass     float64
	queue    []*waiter // FIFO within the tenant
	granted  uint64
	rejected uint64
}

type waiter struct {
	ch       chan struct{}
	canceled bool
}

// strideScale keeps strides integral-ish for human-readable passes; the
// algorithm only needs ratios.
const strideScale = 1 << 16

func newFairAdmission(maxSlots, waitBound int, weights map[string]int) *fairAdmission {
	if maxSlots <= 0 {
		maxSlots = 256
	}
	if waitBound <= 0 {
		waitBound = 128
	}
	return &fairAdmission{
		maxSlots:  maxSlots,
		waitBound: waitBound,
		weights:   weights,
		tenants:   map[string]*tenantState{},
	}
}

func (a *fairAdmission) tenant(name string) *tenantState {
	ts, ok := a.tenants[name]
	if !ok {
		w := a.weights[name]
		if w <= 0 {
			w = 1
		}
		ts = &tenantState{name: name, weight: w, pass: a.vtime}
		a.tenants[name] = ts
	}
	return ts
}

func (ts *tenantState) stride() float64 { return strideScale / float64(ts.weight) }

// acquire blocks until the tenant is granted a forwarding slot, the context
// ends, or the tenant's waiting queue is full (errTenantSaturated).
func (a *fairAdmission) acquire(ctx context.Context, tenant string) error {
	a.mu.Lock()
	ts := a.tenant(tenant)
	// A tenant returning from idle starts at the current virtual time: past
	// idleness earns no burst credit.
	if ts.pass < a.vtime {
		ts.pass = a.vtime
	}
	if a.slots < a.maxSlots && a.waiting == 0 {
		a.grantLockedTo(ts)
		a.mu.Unlock()
		return nil
	}
	if len(ts.queue) >= a.waitBound {
		ts.rejected++
		a.mu.Unlock()
		return errTenantSaturated
	}
	w := &waiter{ch: make(chan struct{})}
	ts.queue = append(ts.queue, w)
	a.waiting++
	a.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		defer a.mu.Unlock()
		select {
		case <-w.ch:
			// Granted concurrently with cancellation: the slot is ours, so
			// hand it back before reporting the context error.
			a.slots--
			a.dispatchLocked()
		default:
			w.canceled = true
			a.waiting--
		}
		return ctx.Err()
	}
}

// release returns a slot and dispatches the next waiter by virtual time.
func (a *fairAdmission) release() {
	a.mu.Lock()
	a.slots--
	a.dispatchLocked()
	a.mu.Unlock()
}

// grantLockedTo charges ts for one grant and advances the virtual clock.
func (a *fairAdmission) grantLockedTo(ts *tenantState) {
	a.slots++
	ts.granted++
	a.vtime = ts.pass // service starts at the tenant's pass
	ts.pass += ts.stride()
}

// dispatchLocked grants freed slots to the waiting tenant with the smallest
// pass until slots or waiters run out. Canceled waiters are skipped and
// compacted in passing.
func (a *fairAdmission) dispatchLocked() {
	for a.slots < a.maxSlots && a.waiting > 0 {
		var best *tenantState
		for _, ts := range a.tenants {
			for len(ts.queue) > 0 && ts.queue[0].canceled {
				ts.queue = ts.queue[1:]
			}
			if len(ts.queue) == 0 {
				continue
			}
			if best == nil || ts.pass < best.pass ||
				(ts.pass == best.pass && ts.name < best.name) { // deterministic tie
				best = ts
			}
		}
		if best == nil {
			return // a.waiting counted only canceled entries already compacted
		}
		w := best.queue[0]
		best.queue = best.queue[1:]
		a.waiting--
		a.grantLockedTo(best)
		close(w.ch)
	}
}

// snapshot returns per-tenant grant/reject counters for the metrics plane,
// keyed by tenant name.
func (a *fairAdmission) snapshot() map[string][2]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string][2]uint64, len(a.tenants))
	for name, ts := range a.tenants {
		out[name] = [2]uint64{ts.granted, ts.rejected}
	}
	return out
}
