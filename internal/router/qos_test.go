package router

import (
	"net/http"
	"strings"
	"testing"
)

// TestRouterQoSPassthrough pins that the X-QoS header crosses the router to
// the serving node: a valid class is accepted end-to-end, and an invalid one
// comes back as the node's deterministic 400 (relayed, never retried) —
// which can only happen if the header survived the forward.
func TestRouterQoSPassthrough(t *testing.T) {
	cluster := startCluster(t, 1, nil)
	_, rts := startRouter(t, cluster, nil)

	req := map[string]any{"workload": "vecadd", "backend": "racer", "elements": 64, "seed": 1}
	code, body, _ := postJSON(t, rts.URL, req, map[string]string{"X-QoS": "latency"})
	if code != http.StatusOK {
		t.Fatalf("latency class through router: %d %s", code, body)
	}

	code, body, _ = postJSON(t, rts.URL, req, map[string]string{"X-QoS": "turbo"})
	if code != http.StatusBadRequest {
		t.Fatalf("invalid class through router: %d %s, want the node's 400", code, body)
	}
	if !strings.Contains(string(body), "QoS") {
		t.Fatalf("400 body does not name the QoS header: %s", body)
	}
}
