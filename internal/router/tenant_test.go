package router

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestFairAdmissionWeightedShare pins the stride property: under a
// saturated single slot, a weight-3 tenant drains 3× the grants of a
// weight-1 tenant, deterministically interleaved by virtual time.
func TestFairAdmissionWeightedShare(t *testing.T) {
	a := newFairAdmission(1, 64, map[string]int{"heavy": 3, "light": 1})

	// Occupy the only slot so every subsequent acquire queues.
	if err := a.acquire(context.Background(), "warm"); err != nil {
		t.Fatal(err)
	}

	const per = 9
	order := make(chan string, 2*per)
	var wg sync.WaitGroup
	enqueue := func(tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.acquire(context.Background(), tenant); err != nil {
				t.Errorf("%s: %v", tenant, err)
				return
			}
			order <- tenant
			a.release()
		}()
	}
	// Enqueue heavy first, then light, waiting until each wave is queued so
	// the dispatch order is purely the scheduler's.
	for i := 0; i < per; i++ {
		enqueue("heavy")
	}
	waitWaiting(t, a, per)
	for i := 0; i < per/3; i++ {
		enqueue("light")
	}
	waitWaiting(t, a, per+per/3)

	a.release() // free the warm slot; grants cascade one at a time
	wg.Wait()
	close(order)

	var heavyFirst8, total int
	counts := map[string]int{}
	for tenant := range order {
		total++
		counts[tenant]++
		if total <= 8 && tenant == "heavy" {
			heavyFirst8++
		}
	}
	if counts["heavy"] != per || counts["light"] != per/3 {
		t.Fatalf("grant counts %v", counts)
	}
	// Stride schedule with weights 3:1 serves heavy 3 times per light turn:
	// of any leading window of 8 grants, exactly 6 are heavy.
	if heavyFirst8 != 6 {
		t.Fatalf("first 8 grants gave heavy %d (want 6 — 3:1 interleave)", heavyFirst8)
	}
}

func waitWaiting(t *testing.T, a *fairAdmission, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		a.mu.Lock()
		n := a.waiting
		a.mu.Unlock()
		if n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters queued", n, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFairAdmissionBoundedQueue(t *testing.T) {
	a := newFairAdmission(1, 2, nil)
	if err := a.acquire(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 3)
	for i := 0; i < 2; i++ {
		go func() {
			errs <- a.acquire(context.Background(), "t")
		}()
	}
	waitWaiting(t, a, 2)
	// Third waiter exceeds the bound: immediate errTenantSaturated.
	if err := a.acquire(context.Background(), "t"); !errors.Is(err, errTenantSaturated) {
		t.Fatalf("over-bound acquire returned %v", err)
	}
	a.release()
	a.release()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFairAdmissionContextCancel(t *testing.T) {
	a := newFairAdmission(1, 8, nil)
	if err := a.acquire(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.acquire(ctx, "t") }()
	waitWaiting(t, a, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire returned %v", err)
	}
	// The canceled waiter must not absorb the next grant.
	granted := make(chan error, 1)
	go func() { granted <- a.acquire(context.Background(), "t") }()
	waitWaiting(t, a, 1)
	a.release()
	if err := <-granted; err != nil {
		t.Fatal(err)
	}
	a.release()
}
