// Package router is the multi-node tier over mpud: an HTTP front end that
// shards /v1/execute requests across N mpud nodes by consistent hashing on
// (backend, mode, program-hash), so identical programs land on the node
// whose batching coalescer, ProgMemo, and per-core trace caches already hold
// them. Around the hash it layers the datacenter mechanics one daemon
// cannot provide: per-tenant weighted-fair admission (stride scheduling over
// bounded queues, 429 on saturation), bounded retry with hedging on 503 and
// connect failure (a speculative duplicate after the tracked p95 latency,
// loser canceled), and health/readiness tracking driven by each node's
// /healthz plus the queue_depth and inflight gauges mpud already exports
// (scrape → EWMA → least-loaded tiebreak within the hash's candidate set,
// with a pool-autoscale advisory log under sustained depth).
//
// Hedging policy: only POST /v1/execute is ever hedged, because the
// determinism contract makes it idempotent — the same request produces
// byte-identical machine.Stats on any node, cold or warm, so a duplicate
// in flight is observationally free. Nothing else is duplicated: drains are
// delivered by signal to a node, never proxied; the /v1/pipelines session
// plane is stateful and non-idempotent, so it is forwarded single-attempt
// with session affinity (see pipeline.go); and any future non-idempotent
// verb must follow the same rule (clients can also force single-attempt on
// execute with the X-No-Hedge header). The client-visible
// contract is the single-node one: byte-identical stats envelopes, 503 +
// Retry-After only when no node can accept work.
//
// Like internal/serve, the package is stdlib-only.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config assembles a Router.
type Config struct {
	// Nodes lists the mpud base URLs ("http://127.0.0.1:9001"). Required.
	Nodes []string

	// Replicas is the number of virtual points per node on the hash ring.
	// Default 64.
	Replicas int

	// Candidates is the size of each key's candidate set: the primary owner
	// plus the nodes eligible for the least-loaded tiebreak and for hedging.
	// Default 2.
	Candidates int

	// Retries bounds the extra attempts made after a 503 or transport
	// failure (the first attempt is free). Default 2.
	Retries int

	// Hedge enables speculative duplicates: when the primary attempt has
	// not answered after the tracked p95 attempt latency, one duplicate is
	// launched at the next candidate and the loser is canceled.
	Hedge bool

	// HedgeMin/HedgeMax clamp the hedge trigger delay. Defaults 1ms/250ms;
	// with no latency samples yet the delay is HedgeMax (hedge
	// conservatively before there is data).
	HedgeMin time.Duration
	HedgeMax time.Duration

	// SpillLoad is the least-loaded hysteresis: the primary owner keeps the
	// request (cache affinity) unless its EWMA load exceeds the best
	// candidate's by more than this. Default 4.
	SpillLoad float64

	// MaxInflight bounds concurrently forwarded requests across all
	// tenants; the weighted-fair gate applies under contention. Default 256.
	MaxInflight int

	// TenantQueue bounds each tenant's admission wait queue; beyond it the
	// tenant gets 429 + Retry-After. Default 128.
	TenantQueue int

	// Tenants maps tenant name (the X-Tenant header) to weight; unlisted
	// tenants get weight 1.
	Tenants map[string]int

	// ScrapeInterval is the node health/metrics poll period. Default 250ms.
	ScrapeInterval time.Duration

	// AutoscaleDepth and AutoscaleSustain shape the pool-autoscale
	// advisory: a node whose scraped queue depth is >= AutoscaleDepth for
	// AutoscaleSustain consecutive scrapes gets one advisory log line per
	// hot episode. Defaults 32 and 8; AutoscaleDepth <= 0 disables.
	AutoscaleDepth   int
	AutoscaleSustain int

	// RetryAfter is the hint returned with 429/503 responses. Default 1s.
	RetryAfter time.Duration

	// Client overrides the forwarding HTTP client (tests); nil builds one
	// with a 2-minute timeout.
	Client *http.Client

	// Logs receives one JSON line per routing event; nil discards.
	Logs io.Writer
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.Candidates <= 0 {
		c.Candidates = 2
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 250 * time.Millisecond
	}
	if c.SpillLoad <= 0 {
		c.SpillLoad = 4
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.TenantQueue <= 0 {
		c.TenantQueue = 128
	}
	if c.ScrapeInterval <= 0 {
		c.ScrapeInterval = 250 * time.Millisecond
	}
	if c.AutoscaleSustain <= 0 {
		c.AutoscaleSustain = 8
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Router shards requests across the node set. Create with New, mount as an
// http.Handler, Drain to stop admitting, Close to stop the scraper.
type Router struct {
	cfg      Config
	mux      *http.ServeMux
	ring     *ring
	nodes    []*nodeState
	adm      *fairAdmission
	metrics  *rmetrics
	client   *http.Client
	lat      latencyTracker
	paffMu   sync.Mutex
	paff     map[string]*nodeState // pipeline session ID → pinned node
	logMu    sync.Mutex
	draining atomic.Bool
	stop     chan struct{}
	scrapeWG sync.WaitGroup
	started  time.Time
}

// New validates the node list, builds the hash ring, performs one
// synchronous scrape (so a cluster that is already up is routable
// immediately), and starts the background scrape loop.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("router: no nodes configured")
	}
	rt := &Router{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		metrics: newRMetrics(),
		adm:     newFairAdmission(cfg.MaxInflight, cfg.TenantQueue, cfg.Tenants),
		client:  cfg.Client,
		paff:    map[string]*nodeState{},
		stop:    make(chan struct{}),
		started: time.Now(),
	}
	if rt.client == nil {
		rt.client = &http.Client{Timeout: 2 * time.Minute}
	}
	seen := map[string]bool{}
	names := make([]string, 0, len(cfg.Nodes))
	for _, base := range cfg.Nodes {
		base = strings.TrimRight(strings.TrimSpace(base), "/")
		if base == "" {
			continue
		}
		name := strings.TrimPrefix(strings.TrimPrefix(base, "https://"), "http://")
		if seen[name] {
			return nil, fmt.Errorf("router: duplicate node %s", name)
		}
		seen[name] = true
		names = append(names, name)
		rt.nodes = append(rt.nodes, &nodeState{name: name, base: base})
	}
	if len(rt.nodes) == 0 {
		return nil, errors.New("router: no nodes configured")
	}
	rt.ring = newRing(names, cfg.Replicas)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/v1/execute", rt.handleExecute)
	rt.mux.HandleFunc("/v1/workloads", rt.handleWorkloads)
	rt.mux.HandleFunc("/v1/pipelines", rt.handlePipelines)
	rt.mux.HandleFunc("/v1/pipelines/", rt.handlePipelineID)
	rt.scrapeAll()
	rt.scrapeWG.Add(1)
	go rt.scrapeLoop(rt.stop)
	return rt, nil
}

// ServeHTTP dispatches to the router's endpoints.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Drain stops admitting: /v1/execute and /healthz answer 503 while
// forwarded requests complete. Idempotent.
func (rt *Router) Drain() {
	if rt.draining.CompareAndSwap(false, true) {
		rt.logf(routerLog{Msg: "drain"})
	}
}

// Draining reports whether Drain has been called.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// Close drains and stops the scrape loop. Call after the HTTP layer has
// finished in-flight handlers.
func (rt *Router) Close() {
	rt.Drain()
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
	}
	rt.scrapeWG.Wait()
	rt.logf(routerLog{Msg: "closed"})
}

// Hedging reports (hedges, hedge wins, retries) — the study drivers report
// the hedge rate honestly alongside the p99 it buys.
func (rt *Router) Hedging() (hedges, wins, retries uint64) {
	return rt.metrics.counters()
}

// shardFields is the subset of the execute request the router reads: just
// enough to place the program. Everything else is opaque and relayed.
type shardFields struct {
	Workload string `json:"workload"`
	Binary   string `json:"binary"`
	Backend  string `json:"backend"`
	Mode     string `json:"mode"`
}

// shardKey is the consistent-hashing identity: (backend, mode,
// program-hash). Elements and seed are deliberately excluded — the same
// program over different data still wants the node with its compiled traces.
func shardKey(f *shardFields) string {
	mode := strings.ToLower(strings.TrimSpace(f.Mode))
	if mode == "" {
		mode = "mpu"
	}
	prog := f.Workload
	if f.Binary != "" {
		prog = fmt.Sprintf("bin:%016x", fnv64(f.Binary))
	}
	return strings.ToLower(strings.TrimSpace(f.Backend)) + "|" + mode + "|" + prog
}

// targetsFor orders the ready nodes for a key: the ring's candidate
// preference order, with the least-loaded member of the candidate set moved
// to the front when the primary owner's EWMA load exceeds it by more than
// the SpillLoad hysteresis (cache affinity wins ties; real imbalance spills).
func (rt *Router) targetsFor(key string) []*nodeState {
	ordered := rt.ring.candidates(key, len(rt.nodes))
	ready := make([]*nodeState, 0, len(ordered))
	for _, i := range ordered {
		if rt.nodes[i].ready.Load() {
			ready = append(ready, rt.nodes[i])
		}
	}
	if len(ready) < 2 {
		return ready
	}
	cset := len(ready)
	if cset > rt.cfg.Candidates {
		cset = rt.cfg.Candidates
	}
	best := 0
	for i := 1; i < cset; i++ {
		if ready[i].effLoad() < ready[best].effLoad() {
			best = i
		}
	}
	if best != 0 && ready[0].effLoad() > ready[best].effLoad()+rt.cfg.SpillLoad {
		ready[0], ready[best] = ready[best], ready[0]
	}
	return ready
}

// attempt is one forwarded try's outcome.
type attempt struct {
	idx        int
	node       *nodeState
	status     int
	body       []byte
	retryAfter string
	err        error
}

// retryable: transport failure or node-side backpressure. Everything else —
// including 4xx and execution faults — is deterministic and relayed as-is.
func retryable(a attempt) bool {
	return a.err != nil || a.status == http.StatusServiceUnavailable
}

// forward runs the bounded retry + hedge state machine over the ordered
// target list and returns the winning attempt (or the last retryable
// failure). started counts attempts launched; hedgeWon reports whether the
// speculative duplicate answered first.
func (rt *Router) forward(ctx context.Context, body []byte, qos string, targets []*nodeState, hedge bool) (win attempt, started int, hedged, hedgeWon bool) {
	results := make(chan attempt, len(targets))
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	launch := func(i int) {
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		n := targets[i]
		n.outstanding.Add(1)
		go func() {
			defer n.outstanding.Add(-1)
			st, b, ra, err := rt.post(actx, n, body, qos)
			results <- attempt{idx: i, node: n, status: st, body: b, retryAfter: ra, err: err}
		}()
	}
	launch(0)
	started = 1
	outstanding := 1
	retriesUsed := 0
	hedgeIdx := -1
	var hedgeTimer <-chan time.Time
	if hedge && len(targets) > 1 {
		hedgeTimer = time.After(rt.hedgeDelay())
	}
	var last attempt
	for {
		select {
		case <-hedgeTimer:
			hedgeTimer = nil
			if started < len(targets) && outstanding > 0 {
				hedgeIdx = started
				launch(started)
				started++
				outstanding++
				hedged = true
				rt.metrics.addHedge()
			}
		case a := <-results:
			outstanding--
			if !retryable(a) {
				if hedged && a.idx == hedgeIdx {
					hedgeWon = true
					rt.metrics.hedgeWin()
				}
				return a, started, hedged, hedgeWon
			}
			last = a
			if a.err != nil && ctx.Err() == nil {
				// Fast feedback: a connect failure unreadies the node now;
				// the scrape loop restores it when /healthz answers again.
				if a.node.ready.CompareAndSwap(true, false) {
					rt.metrics.nodeUnready(a.node.name)
					rt.logf(routerLog{Msg: "node-unready", Node: a.node.name, Err: a.err.Error()})
				}
			}
			if started < len(targets) && retriesUsed < rt.cfg.Retries && ctx.Err() == nil {
				launch(started)
				started++
				outstanding++
				retriesUsed++
				rt.metrics.addRetry()
				continue
			}
			if outstanding > 0 {
				continue // a hedge sibling may still win
			}
			return last, started, hedged, hedgeWon
		case <-ctx.Done():
			return attempt{err: ctx.Err()}, started, hedged, hedgeWon
		}
	}
}

// post forwards one attempt and feeds the p95 tracker on success.
func (rt *Router) post(ctx context.Context, n *nodeState, body []byte, qos string) (status int, respBody []byte, retryAfter string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+"/v1/execute", strings.NewReader(string(body)))
	if err != nil {
		return 0, nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if qos != "" {
		// Relay the QoS class verbatim: the node validates it, and a 400 for
		// a bad class is deterministic, so it is relayed, never retried.
		req.Header.Set("X-QoS", qos)
	}
	t0 := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return 0, nil, "", err
	}
	if resp.StatusCode == http.StatusOK {
		rt.lat.observe(time.Since(t0).Seconds())
	}
	return resp.StatusCode, b, resp.Header.Get("Retry-After"), nil
}

func (rt *Router) handleExecute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		rt.finishError(w, start, http.StatusBadRequest, "", fmt.Sprintf("bad request body: %v", err), "")
		return
	}
	var sf shardFields
	if err := json.Unmarshal(body, &sf); err != nil {
		rt.finishError(w, start, http.StatusBadRequest, "", fmt.Sprintf("bad request body: %v", err), "")
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	if rt.Draining() {
		rt.retryLater(w, start, http.StatusServiceUnavailable, tenant, "draining")
		return
	}
	if err := rt.adm.acquire(r.Context(), tenant); err != nil {
		if errors.Is(err, errTenantSaturated) {
			rt.retryLater(w, start, http.StatusTooManyRequests, tenant, "tenant admission queue full")
			return
		}
		rt.finishError(w, start, http.StatusGatewayTimeout, tenant, "canceled while waiting for admission", "")
		return
	}
	defer rt.adm.release()
	rt.metrics.addInflight(1)
	defer rt.metrics.addInflight(-1)

	key := shardKey(&sf)
	targets := rt.targetsFor(key)
	if len(targets) == 0 {
		rt.retryLater(w, start, http.StatusServiceUnavailable, tenant, "no ready nodes")
		return
	}
	hedge := rt.cfg.Hedge && r.Header.Get("X-No-Hedge") == ""
	win, attempts, hedged, hedgeWon := rt.forward(r.Context(), body, r.Header.Get("X-QoS"), targets, hedge)
	if win.err != nil {
		status := http.StatusBadGateway
		if errors.Is(win.err, context.Canceled) || errors.Is(win.err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		rt.finishError(w, start, status, tenant, win.err.Error(), key)
		return
	}
	if win.status == http.StatusServiceUnavailable && win.retryAfter != "" {
		w.Header().Set("Retry-After", win.retryAfter)
	}
	w.Header().Set("X-Mpurouter-Node", win.node.name)
	w.Header().Set("X-Mpurouter-Attempts", fmt.Sprint(attempts))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(win.status)
	w.Write(win.body)
	rt.metrics.observeRequest(win.status, time.Since(start).Seconds())
	rt.metrics.observeForward(win.node.name)
	rt.logf(routerLog{
		Msg: "route", Tenant: tenant, Node: win.node.name, Key: key,
		Status: win.status, MS: time.Since(start).Seconds() * 1e3,
		Attempts: attempts, Hedged: hedged, HedgeWon: hedgeWon,
	})
}

// retryLater answers a refusal with Retry-After, the admission-side
// backpressure path (503: no capacity / draining; 429: tenant saturated).
func (rt *Router) retryLater(w http.ResponseWriter, start time.Time, status int, tenant, why string) {
	w.Header().Set("Retry-After", fmt.Sprint(int((rt.cfg.RetryAfter+time.Second-1)/time.Second)))
	rt.finishError(w, start, status, tenant, why, "")
}

func (rt *Router) finishError(w http.ResponseWriter, start time.Time, status int, tenant, msg, key string) {
	writeJSONError(w, status, msg)
	rt.metrics.observeRequest(status, time.Since(start).Seconds())
	rt.logf(routerLog{Msg: "refuse", Tenant: tenant, Key: key, Status: status,
		MS: time.Since(start).Seconds() * 1e3, Err: msg})
}

func (rt *Router) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	for _, n := range rt.nodes {
		if !n.ready.Load() {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.base+"/v1/workloads", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			cancel()
			continue
		}
		b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		cancel()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		return
	}
	writeJSONError(w, http.StatusServiceUnavailable, "no ready nodes")
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type nodeHealth struct {
		Name       string  `json:"name"`
		URL        string  `json:"url"`
		Ready      bool    `json:"ready"`
		Load       float64 `json:"load"`
		QueueDepth int64   `json:"queue_depth"`
		Inflight   int64   `json:"inflight"`
	}
	var h struct {
		Status string       `json:"status"`
		Nodes  []nodeHealth `json:"nodes"`
		UpSec  float64      `json:"up_sec"`
	}
	readyCount := 0
	for _, n := range rt.nodes {
		nh := nodeHealth{
			Name: n.name, URL: n.base, Ready: n.ready.Load(), Load: n.load(),
			QueueDepth: n.queueDepth.Load(), Inflight: n.inflight.Load(),
		}
		if nh.Ready {
			readyCount++
		}
		h.Nodes = append(h.Nodes, nh)
	}
	h.UpSec = time.Since(rt.started).Seconds()
	code := http.StatusOK
	switch {
	case rt.Draining():
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	case readyCount == 0:
		h.Status = "down"
		code = http.StatusServiceUnavailable
	case readyCount < len(rt.nodes):
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	writeJSONStatus(w, code, h)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	views := make([]nodeView, 0, len(rt.nodes))
	for _, n := range rt.nodes {
		views = append(views, nodeView{name: n.name, ready: n.ready.Load(), load: n.load(), depth: n.queueDepth.Load()})
	}
	sort.Slice(views, func(i, j int) bool { return views[i].name < views[j].name })
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, rt.metrics.render(views, rt.adm.snapshot(), rt.hedgeDelay().Seconds(), rt.pinnedPipelines()))
}

// hedgeDelay is the current speculative-duplicate trigger: the tracked p95
// attempt latency clamped to [HedgeMin, HedgeMax]; HedgeMax before any
// sample exists.
func (rt *Router) hedgeDelay() time.Duration {
	p := rt.lat.p95()
	if p <= 0 {
		return rt.cfg.HedgeMax
	}
	d := time.Duration(p * float64(time.Second))
	if d < rt.cfg.HedgeMin {
		d = rt.cfg.HedgeMin
	}
	if d > rt.cfg.HedgeMax {
		d = rt.cfg.HedgeMax
	}
	return d
}

// latencyTracker keeps a ring of recent successful attempt latencies and
// serves their p95; recomputed lazily every refreshEvery observations.
type latencyTracker struct {
	mu     sync.Mutex
	buf    [512]float64
	n      int // filled entries
	idx    int // next write
	since  int // observations since last recompute
	cached float64
}

const refreshEvery = 16

func (t *latencyTracker) observe(sec float64) {
	t.mu.Lock()
	t.buf[t.idx] = sec
	t.idx = (t.idx + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
	t.since++
	if t.since >= refreshEvery || t.cached == 0 {
		t.since = 0
		s := make([]float64, t.n)
		copy(s, t.buf[:t.n])
		sort.Float64s(s)
		t.cached = s[int(0.95*float64(len(s)-1))]
	}
	t.mu.Unlock()
}

func (t *latencyTracker) p95() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cached
}

// routerLog is the router's JSON log-line schema.
type routerLog struct {
	TS       string  `json:"ts"`
	Msg      string  `json:"msg"`
	Tenant   string  `json:"tenant,omitempty"`
	Node     string  `json:"node,omitempty"`
	Key      string  `json:"key,omitempty"`
	Pipeline string  `json:"pipeline,omitempty"`
	Status   int     `json:"status,omitempty"`
	MS       float64 `json:"ms,omitempty"`
	Attempts int     `json:"attempts,omitempty"`
	Hedged   bool    `json:"hedged,omitempty"`
	HedgeWon bool    `json:"hedge_won,omitempty"`
	Queue    int     `json:"queue,omitempty"`
	Err      string  `json:"err,omitempty"`
}

func (rt *Router) logf(e routerLog) {
	if rt.cfg.Logs == nil {
		return
	}
	e.TS = time.Now().UTC().Format(time.RFC3339Nano)
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	b = append(b, '\n')
	rt.logMu.Lock()
	rt.cfg.Logs.Write(b)
	rt.logMu.Unlock()
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	if status == 0 {
		return
	}
	writeJSONStatus(w, status, map[string]string{"error": msg})
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}
