package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"mpu/internal/serve"
)

// pipeSource is a 2-node streaming graph with a resident accumulator: src
// splits the record register, total folds it into r48. The accumulator
// carrying across requests is the proof that the affine node's parked
// snapshot — not a fresh compile — served every advance.
const pipeSource = "src(Split) OUT -> IN total(Reduce)\n'1' -> REGS src\n'add' -> OP total\n"

func pipeJSON(t *testing.T, method, url string, req any) (int, []byte, http.Header) {
	t.Helper()
	var rd *bytes.Reader
	if req != nil {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	hr, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes(), resp.Header
}

func advanceBody(records int, base uint64) map[string]any {
	recs := make([]map[string]any, records)
	for i := range recs {
		vals := make([]uint64, 64)
		for l := range vals {
			vals[l] = base + uint64(i)
		}
		recs[i] = map[string]any{
			"sets":  []map[string]any{{"node": "src", "reg": 0, "values": vals}},
			"dumps": []map[string]any{{"node": "total", "reg": 48}},
		}
	}
	return map[string]any{"records": recs}
}

func accumulator(t *testing.T, body []byte) uint64 {
	t.Helper()
	var resp struct {
		Records []struct {
			Dumps []struct {
				Values []uint64 `json:"values"`
			} `json:"dumps"`
		} `json:"records"`
		Summary struct {
			TraceMisses uint64 `json:"trace_misses"`
			JITCompiles uint64 `json:"jit_compiles"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad advance body %s: %v", body, err)
	}
	last := resp.Records[len(resp.Records)-1]
	return last.Dumps[0].Values[0]
}

// TestRouterPipelineAffinity pins the session plane's routing contract:
// a create lands on one node by ring hash, every advance for that session
// follows the pin exactly once (X-Mpurouter-Attempts is always 1 — never
// hedged, never retried), state accumulates across separate routed requests,
// and DELETE clears the pin so the ID becomes 404 at the router.
func TestRouterPipelineAffinity(t *testing.T) {
	cluster := startCluster(t, 3, nil)
	rt, rts := startRouter(t, cluster, nil) // hedging ON — pipelines must ignore it
	_ = rt

	code, body, hdr := pipeJSON(t, http.MethodPost, rts.URL+"/v1/pipelines", map[string]any{
		"source": pipeSource, "backend": "racer",
	})
	if code != http.StatusOK {
		t.Fatalf("create: %d %s", code, body)
	}
	var created struct {
		ID   string `json:"id"`
		MPUs int    `json:"mpus"`
	}
	if err := json.Unmarshal(body, &created); err != nil || created.ID == "" {
		t.Fatalf("create body %s: %v", body, err)
	}
	if created.MPUs != 2 {
		t.Fatalf("placement: got %d MPUs, want 2", created.MPUs)
	}
	owner := hdr.Get("X-Mpurouter-Node")
	if owner == "" {
		t.Fatal("create response lacks the serving-node header")
	}

	// Stream records across separate routed requests; the accumulator must
	// carry, and every request must land on the create's node in one attempt.
	want := uint64(0)
	for reqN := 0; reqN < 4; reqN++ {
		code, body, hdr := pipeJSON(t, http.MethodPost, rts.URL+"/v1/pipelines/"+created.ID, advanceBody(3, 1))
		if code != http.StatusOK {
			t.Fatalf("advance %d: %d %s", reqN, code, body)
		}
		if got := hdr.Get("X-Mpurouter-Node"); got != owner {
			t.Fatalf("advance %d served by %s, session lives on %s — affinity broken", reqN, got, owner)
		}
		if got := hdr.Get("X-Mpurouter-Attempts"); got != "1" {
			t.Fatalf("advance %d took %s attempts — pipelines must be single-attempt", reqN, got)
		}
		want += 1 + 2 + 3 // three records of lane-value base..base+2
		if got := accumulator(t, body); got != want {
			t.Fatalf("advance %d: accumulator %d, want %d — state did not carry across requests", reqN, got, want)
		}
	}

	// Status follows the pin too, and the merged listing shows the session.
	code, body, _ = pipeJSON(t, http.MethodGet, rts.URL+"/v1/pipelines/"+created.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, body)
	}
	var st struct {
		Records uint64 `json:"records"`
		Parked  bool   `json:"parked"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Records != 12 || !st.Parked {
		t.Fatalf("status: records=%d parked=%v, want 12/true", st.Records, st.Parked)
	}
	code, body, _ = pipeJSON(t, http.MethodGet, rts.URL+"/v1/pipelines", nil)
	if code != http.StatusOK || !strings.Contains(string(body), created.ID) {
		t.Fatalf("listing lacks %s: %d %s", created.ID, code, body)
	}

	// DELETE relays the close and clears the pin.
	if code, body, _ = pipeJSON(t, http.MethodDelete, rts.URL+"/v1/pipelines/"+created.ID, nil); code != http.StatusOK {
		t.Fatalf("close: %d %s", code, body)
	}
	if code, _, _ = pipeJSON(t, http.MethodGet, rts.URL+"/v1/pipelines/"+created.ID, nil); code != http.StatusNotFound {
		t.Fatalf("post-close status: %d, want 404", code)
	}
}

// TestRouterPipelineSpread pins the placement motivation: distinct graph
// sources spread across the cluster while identical sources share a node.
func TestRouterPipelineSpread(t *testing.T) {
	cluster := startCluster(t, 3, func(i int, c *serve.Config) {
		c.MaxSessions = 32
	})
	_, rts := startRouter(t, cluster, nil)

	nodesUsed := map[string]bool{}
	bySource := map[string]map[string]bool{}
	var ids []string
	for variant := 0; variant < 6; variant++ {
		src := pipeSource + fmt.Sprintf("# variant %d\n", variant)
		for rep := 0; rep < 2; rep++ {
			code, body, hdr := pipeJSON(t, http.MethodPost, rts.URL+"/v1/pipelines", map[string]any{
				"source": src, "backend": "racer",
			})
			if code != http.StatusOK {
				t.Fatalf("create variant %d: %d %s", variant, code, body)
			}
			var created struct {
				ID string `json:"id"`
			}
			json.Unmarshal(body, &created)
			ids = append(ids, created.ID)
			node := hdr.Get("X-Mpurouter-Node")
			if bySource[src] == nil {
				bySource[src] = map[string]bool{}
			}
			bySource[src][node] = true
			nodesUsed[node] = true
		}
	}
	for src, nodes := range bySource {
		if len(nodes) != 1 {
			t.Errorf("identical source landed on %d nodes %v — cache affinity broken:\n%s", len(nodes), nodes, src)
		}
	}
	if len(nodesUsed) < 2 {
		t.Errorf("all pipelines landed on one node: %v", nodesUsed)
	}
	for _, id := range ids {
		if code, body, _ := pipeJSON(t, http.MethodDelete, rts.URL+"/v1/pipelines/"+id, nil); code != http.StatusOK {
			t.Fatalf("close %s: %d %s", id, code, body)
		}
	}
}

// TestRouterPipelineErrors pins the relayed error taxonomy: a rejected graph's
// 422 finding envelope passes through verbatim, an unknown ID is a router-side
// 404, and a draining router refuses creates but keeps advancing pinned
// sessions (admitted work).
func TestRouterPipelineErrors(t *testing.T) {
	cluster := startCluster(t, 2, nil)
	rt, rts := startRouter(t, cluster, nil)

	// Deadlocking ring (mismatched STEPS) → node-side 422 with findings,
	// relayed byte-for-byte.
	bad := "a(EDStep) RIGHT -> LEFT b\nb(EDStep) RIGHT -> LEFT a\n'1' -> STEPS a\n'2' -> STEPS b\n"
	code, body, _ := pipeJSON(t, http.MethodPost, rts.URL+"/v1/pipelines", map[string]any{
		"source": bad, "backend": "racer",
	})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("deadlocking graph: %d %s", code, body)
	}
	var envelope struct {
		Error    string            `json:"error"`
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || len(envelope.Findings) == 0 {
		t.Fatalf("422 without findings: %s", body)
	}

	// Unknown session ID: the router answers 404 itself — no pin, no node.
	if code, body, _ = pipeJSON(t, http.MethodPost, rts.URL+"/v1/pipelines/nope", advanceBody(1, 1)); code != http.StatusNotFound {
		t.Fatalf("unknown id: %d %s", code, body)
	}

	// Draining: creates refused with Retry-After, pinned advances keep flowing.
	code, body, _ = pipeJSON(t, http.MethodPost, rts.URL+"/v1/pipelines", map[string]any{
		"source": pipeSource, "backend": "racer",
	})
	if code != http.StatusOK {
		t.Fatalf("create: %d %s", code, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &created)
	rt.Drain()
	code, body, hdr := pipeJSON(t, http.MethodPost, rts.URL+"/v1/pipelines", map[string]any{
		"source": pipeSource, "backend": "racer",
	})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: %d %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("draining refusal without Retry-After")
	}
	if code, body, _ = pipeJSON(t, http.MethodPost, rts.URL+"/v1/pipelines/"+created.ID, advanceBody(2, 1)); code != http.StatusOK {
		t.Fatalf("advance while draining: %d %s — admitted sessions must keep flowing", code, body)
	}
}
