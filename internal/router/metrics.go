package router

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// rmetrics is the router's hand-rolled Prometheus-text registry, the same
// stdlib-only idiom as internal/serve: a fixed catalog of series emitted in
// deterministic order with sorted label values.
type rmetrics struct {
	mu sync.Mutex

	requests     map[string]uint64 // HTTP status code → count
	nodeForwards map[string]uint64 // node → winning responses relayed
	nodeUnreadys map[string]uint64 // node → ready→unready transitions
	advisories   map[string]uint64 // node → autoscale advisories emitted
	retries      uint64            // extra attempts after 503/transport failure
	hedges       uint64            // speculative duplicates launched
	hedgeWins    uint64            // hedged attempt answered first
	inflight     int64             // admitted, not yet answered

	latency rhistogram // request wall time, seconds
}

func newRMetrics() *rmetrics {
	return &rmetrics{
		requests:     map[string]uint64{},
		nodeForwards: map[string]uint64{},
		nodeUnreadys: map[string]uint64{},
		advisories:   map[string]uint64{},
		latency:      newRHistogram([]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}),
	}
}

// rhistogram mirrors serve's cumulative-bucket histogram.
type rhistogram struct {
	bounds []float64
	counts []uint64
	sum    float64
	n      uint64
}

func newRHistogram(bounds []float64) rhistogram {
	return rhistogram{bounds: bounds, counts: make([]uint64, len(bounds))}
}

func (h *rhistogram) observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
		}
	}
	h.sum += v
	h.n++
}

func (m *rmetrics) observeRequest(code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[strconv.Itoa(code)]++
	m.latency.observe(seconds)
}

func (m *rmetrics) observeForward(node string) {
	m.mu.Lock()
	m.nodeForwards[node]++
	m.mu.Unlock()
}

func (m *rmetrics) addRetry() {
	m.mu.Lock()
	m.retries++
	m.mu.Unlock()
}

func (m *rmetrics) addHedge() {
	m.mu.Lock()
	m.hedges++
	m.mu.Unlock()
}

func (m *rmetrics) hedgeWin() {
	m.mu.Lock()
	m.hedgeWins++
	m.mu.Unlock()
}

func (m *rmetrics) nodeUnready(node string) {
	m.mu.Lock()
	m.nodeUnreadys[node]++
	m.mu.Unlock()
}

func (m *rmetrics) autoscaleAdvisory(node string) {
	m.mu.Lock()
	m.advisories[node]++
	m.mu.Unlock()
}

func (m *rmetrics) addInflight(d int64) {
	m.mu.Lock()
	m.inflight += d
	m.mu.Unlock()
}

// counters returns (hedges, hedgeWins, retries) for the study drivers.
func (m *rmetrics) counters() (uint64, uint64, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hedges, m.hedgeWins, m.retries
}

// nodeView is sampled at render time from the live node states.
type nodeView struct {
	name  string
	ready bool
	load  float64
	depth int64
}

// render emits the Prometheus text exposition.
func (m *rmetrics) render(nodes []nodeView, tenants map[string][2]uint64, hedgeDelaySec float64, pipelines int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sb strings.Builder

	sb.WriteString("# HELP mpurouter_requests_total Requests answered, by HTTP status code.\n")
	sb.WriteString("# TYPE mpurouter_requests_total counter\n")
	codes := make([]string, 0, len(m.requests))
	for c := range m.requests {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(&sb, "mpurouter_requests_total{code=%q} %d\n", c, m.requests[c])
	}

	sb.WriteString("# HELP mpurouter_inflight Admitted requests not yet answered.\n")
	sb.WriteString("# TYPE mpurouter_inflight gauge\n")
	fmt.Fprintf(&sb, "mpurouter_inflight %d\n", m.inflight)

	sb.WriteString("# HELP mpurouter_node_requests_total Winning responses relayed, by serving node.\n")
	sb.WriteString("# TYPE mpurouter_node_requests_total counter\n")
	emitByLabel(&sb, "mpurouter_node_requests_total", "node", m.nodeForwards)

	sb.WriteString("# HELP mpurouter_retries_total Extra attempts after a 503 or transport failure.\n")
	sb.WriteString("# TYPE mpurouter_retries_total counter\n")
	fmt.Fprintf(&sb, "mpurouter_retries_total %d\n", m.retries)

	sb.WriteString("# HELP mpurouter_hedges_total Speculative duplicate attempts launched after the hedge delay.\n")
	sb.WriteString("# TYPE mpurouter_hedges_total counter\n")
	fmt.Fprintf(&sb, "mpurouter_hedges_total %d\n", m.hedges)

	sb.WriteString("# HELP mpurouter_hedge_wins_total Hedged attempts that answered before the primary.\n")
	sb.WriteString("# TYPE mpurouter_hedge_wins_total counter\n")
	fmt.Fprintf(&sb, "mpurouter_hedge_wins_total %d\n", m.hedgeWins)

	sb.WriteString("# HELP mpurouter_hedge_delay_seconds Current hedge trigger delay (tracked p95, clamped).\n")
	sb.WriteString("# TYPE mpurouter_hedge_delay_seconds gauge\n")
	fmt.Fprintf(&sb, "mpurouter_hedge_delay_seconds %s\n", strconv.FormatFloat(hedgeDelaySec, 'g', -1, 64))

	sb.WriteString("# HELP mpurouter_node_ready Node readiness from the /healthz scrape (1 ready, 0 not).\n")
	sb.WriteString("# TYPE mpurouter_node_ready gauge\n")
	for _, n := range nodes {
		v := 0
		if n.ready {
			v = 1
		}
		fmt.Fprintf(&sb, "mpurouter_node_ready{node=%q} %d\n", n.name, v)
	}

	sb.WriteString("# HELP mpurouter_node_load EWMA load score (queue depth + inflight) per node.\n")
	sb.WriteString("# TYPE mpurouter_node_load gauge\n")
	for _, n := range nodes {
		fmt.Fprintf(&sb, "mpurouter_node_load{node=%q} %s\n", n.name, strconv.FormatFloat(n.load, 'g', -1, 64))
	}

	sb.WriteString("# HELP mpurouter_node_queue_depth Last scraped admission-queue depth per node.\n")
	sb.WriteString("# TYPE mpurouter_node_queue_depth gauge\n")
	for _, n := range nodes {
		fmt.Fprintf(&sb, "mpurouter_node_queue_depth{node=%q} %d\n", n.name, n.depth)
	}

	sb.WriteString("# HELP mpurouter_node_unready_total Ready-to-unready transitions observed by the scraper.\n")
	sb.WriteString("# TYPE mpurouter_node_unready_total counter\n")
	emitByLabel(&sb, "mpurouter_node_unready_total", "node", m.nodeUnreadys)

	sb.WriteString("# HELP mpurouter_autoscale_advisories_total Pool-autoscale advisories logged per node.\n")
	sb.WriteString("# TYPE mpurouter_autoscale_advisories_total counter\n")
	emitByLabel(&sb, "mpurouter_autoscale_advisories_total", "node", m.advisories)

	sb.WriteString("# HELP mpurouter_tenant_granted_total Admission grants per tenant.\n")
	sb.WriteString("# TYPE mpurouter_tenant_granted_total counter\n")
	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "mpurouter_tenant_granted_total{tenant=%q} %d\n", name, tenants[name][0])
	}
	sb.WriteString("# HELP mpurouter_tenant_rejected_total Admissions refused with 429 per tenant (queue full).\n")
	sb.WriteString("# TYPE mpurouter_tenant_rejected_total counter\n")
	for _, name := range names {
		fmt.Fprintf(&sb, "mpurouter_tenant_rejected_total{tenant=%q} %d\n", name, tenants[name][1])
	}

	renderRHistogram(&sb, "mpurouter_request_seconds", "Request wall time from admission to relayed response.", &m.latency)

	sb.WriteString("# HELP mpurouter_pipelines Pipeline sessions with a live node-affinity pin.\n")
	sb.WriteString("# TYPE mpurouter_pipelines gauge\n")
	fmt.Fprintf(&sb, "mpurouter_pipelines %d\n", pipelines)
	return sb.String()
}

func emitByLabel(sb *strings.Builder, name, label string, vals map[string]uint64) {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(sb, "%s{%s=%q} %d\n", name, label, k, vals[k])
	}
}

func renderRHistogram(sb *strings.Builder, name, help string, h *rhistogram) {
	fmt.Fprintf(sb, "# HELP %s %s\n", name, help)
	fmt.Fprintf(sb, "# TYPE %s histogram\n", name)
	for i, b := range h.bounds {
		fmt.Fprintf(sb, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), h.counts[i])
	}
	fmt.Fprintf(sb, "%s_bucket{le=\"+Inf\"} %d\n", name, h.n)
	fmt.Fprintf(sb, "%s_sum %s\n", name, strconv.FormatFloat(h.sum, 'g', -1, 64))
	fmt.Fprintf(sb, "%s_count %d\n", name, h.n)
}
