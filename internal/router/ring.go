package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over node indices. Each node contributes
// replicas virtual points; a key owns the first point clockwise from its
// hash, and its candidate set is the first distinct nodes from there. The
// point of hashing on (backend, mode, program-hash) rather than the whole
// request is cache affinity: identical programs — whatever their elements or
// seed — land on the node whose batching coalescer, ProgMemo, and per-core
// trace caches already hold them, so adding nodes shards the program working
// set instead of spraying it.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int
}

// newRing builds the ring: replicas virtual points per node, hashed from
// "name#i" so the layout depends only on node names, not list order.
func newRing(names []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = 64
	}
	r := &ring{points: make([]ringPoint, 0, len(names)*replicas)}
	for i, name := range names {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", name, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node // stable under hash collisions
	})
	return r
}

// candidates returns up to n distinct node indices in ring order starting at
// the key's owner. The first entry is the primary owner; the rest are the
// fallback/hedge set, deterministic for a given key and node set.
func (r *ring) candidates(key string, n int) []int {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[int]bool{}
	var out []int
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// ringHash is fnv64 with a 64-bit avalanche finalizer on top: FNV-1a alone
// diffuses short, similar strings ("n0#17", "n0#18") poorly into the upper
// bits that decide ring order, which skews point placement badly.
func ringHash(s string) uint64 {
	h := fnv64(s)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
