package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Pipeline passthrough: the router relays the /v1/pipelines session plane to
// the node set with session affinity. A pipeline session is everything
// /v1/execute is not — stateful (resident accumulators and a parked snapshot
// live on one node) and non-idempotent (an advance applies records; a
// duplicate in flight would double-apply them) — so the hedging and retry
// machinery is deliberately bypassed: every pipeline verb is forwarded
// exactly once, and a transport failure is relayed as 502, never re-sent.
//
// Placement: a create is routed by ring hash on (backend, mode, source-hash),
// the same cache-affinity argument as /v1/execute — identical pipeline graphs
// land on the node whose trace caches and JIT memos already hold their
// compiled programs. The session ID from the create response is then pinned
// to that node in the affinity table, and every subsequent advance, status,
// or close for the ID follows the pin. A DELETE (or a node-side 404, the
// stale-mapping signal after a node restart) clears the pin.

// pipelineFields is the subset of a create request the router reads to place
// the session; everything else is opaque and relayed.
type pipelineFields struct {
	Source  string `json:"source"`
	Backend string `json:"backend"`
	Mode    string `json:"mode"`
}

// pipelineKey hashes like shardKey but over the graph source text (the
// "program" of a pipeline), namespaced so a pipeline never shares a ring
// point with an execute workload of the same name.
func pipelineKey(f *pipelineFields) string {
	mode := strings.ToLower(strings.TrimSpace(f.Mode))
	if mode == "" {
		mode = "mpu"
	}
	prog := fmt.Sprintf("fbp:%016x", fnv64(f.Source))
	return strings.ToLower(strings.TrimSpace(f.Backend)) + "|" + mode + "|" + prog
}

// relayOnce forwards one request to one node, exactly once: no retry, no
// hedge sibling, no fallback candidate. The outstanding count still feeds the
// least-loaded spill signal so pipeline traffic is visible to execute routing.
func (rt *Router) relayOnce(ctx context.Context, n *nodeState, method, path string, body []byte) attempt {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, n.base+path, rd)
	if err != nil {
		return attempt{node: n, err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	n.outstanding.Add(1)
	defer n.outstanding.Add(-1)
	resp, err := rt.client.Do(req)
	if err != nil {
		return attempt{node: n, err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return attempt{node: n, err: err}
	}
	return attempt{node: n, status: resp.StatusCode, body: b, retryAfter: resp.Header.Get("Retry-After")}
}

// pinPipeline records (and pinnedNode reads, unpinPipeline clears) the
// session-ID → node affinity mapping.
func (rt *Router) pinPipeline(id string, n *nodeState) {
	rt.paffMu.Lock()
	rt.paff[id] = n
	rt.paffMu.Unlock()
}

func (rt *Router) pinnedNode(id string) *nodeState {
	rt.paffMu.Lock()
	defer rt.paffMu.Unlock()
	return rt.paff[id]
}

func (rt *Router) unpinPipeline(id string) {
	rt.paffMu.Lock()
	delete(rt.paff, id)
	rt.paffMu.Unlock()
}

func (rt *Router) pinnedPipelines() int {
	rt.paffMu.Lock()
	defer rt.paffMu.Unlock()
	return len(rt.paff)
}

func (rt *Router) handlePipelines(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		rt.listPipelines(w, r)
	case http.MethodPost:
		rt.createPipeline(w, r)
	default:
		writeJSONError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// createPipeline places a new session by ring hash and pins the returned ID.
func (rt *Router) createPipeline(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if rt.Draining() {
		rt.retryLater(w, start, http.StatusServiceUnavailable, "", "draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		rt.finishError(w, start, http.StatusBadRequest, "", fmt.Sprintf("bad request body: %v", err), "")
		return
	}
	var pf pipelineFields
	if err := json.Unmarshal(body, &pf); err != nil {
		rt.finishError(w, start, http.StatusBadRequest, "", fmt.Sprintf("bad request body: %v", err), "")
		return
	}
	key := pipelineKey(&pf)
	targets := rt.targetsFor(key)
	if len(targets) == 0 {
		rt.retryLater(w, start, http.StatusServiceUnavailable, "", "no ready nodes")
		return
	}
	a := rt.relayOnce(r.Context(), targets[0], http.MethodPost, "/v1/pipelines", body)
	if a.err != nil {
		rt.unreadyOnTransportFailure(r.Context(), a)
		rt.finishError(w, start, http.StatusBadGateway, "", a.err.Error(), key)
		return
	}
	id := ""
	if a.status == http.StatusOK {
		var created struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(a.body, &created) == nil && created.ID != "" {
			id = created.ID
			rt.pinPipeline(id, a.node)
		}
	}
	rt.relayPipelineResponse(w, start, a, id, key)
}

// handlePipelineID relays status, advance, and close verbs to the pinned node.
func (rt *Router) handlePipelineID(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := strings.TrimPrefix(r.URL.Path, "/v1/pipelines/")
	if id == "" || strings.Contains(id, "/") {
		writeJSONError(w, http.StatusNotFound, "not found")
		return
	}
	n := rt.pinnedNode(id)
	if n == nil {
		rt.finishError(w, start, http.StatusNotFound, "", fmt.Sprintf("unknown pipeline %s", id), "")
		return
	}
	var body []byte
	if r.Method == http.MethodPost {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
		if err != nil {
			rt.finishError(w, start, http.StatusBadRequest, "", fmt.Sprintf("bad request body: %v", err), "")
			return
		}
	}
	// Single attempt even on transport failure: the session state is on this
	// node and nowhere else, so there is no other node to try, and re-sending
	// an advance whose fate is unknown could double-apply its records.
	a := rt.relayOnce(r.Context(), n, r.Method, r.URL.Path, body)
	if a.err != nil {
		rt.unreadyOnTransportFailure(r.Context(), a)
		rt.finishError(w, start, http.StatusBadGateway, "", a.err.Error(), "")
		return
	}
	if (r.Method == http.MethodDelete && a.status == http.StatusOK) || a.status == http.StatusNotFound {
		rt.unpinPipeline(id)
	}
	rt.relayPipelineResponse(w, start, a, id, "")
}

// listPipelines merges every ready node's session list into one view.
func (rt *Router) listPipelines(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		id  string
		raw json.RawMessage
	}
	var all []entry
	for _, n := range rt.nodes {
		if !n.ready.Load() {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		a := rt.relayOnce(ctx, n, http.MethodGet, "/v1/pipelines", nil)
		cancel()
		if a.err != nil || a.status != http.StatusOK {
			continue
		}
		var page struct {
			Sessions []json.RawMessage `json:"sessions"`
		}
		if json.Unmarshal(a.body, &page) != nil {
			continue
		}
		for _, raw := range page.Sessions {
			var idf struct {
				ID string `json:"id"`
			}
			json.Unmarshal(raw, &idf)
			all = append(all, entry{id: idf.ID, raw: raw})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	var out struct {
		Sessions []json.RawMessage `json:"sessions"`
	}
	out.Sessions = make([]json.RawMessage, len(all))
	for i, e := range all {
		out.Sessions[i] = e.raw
	}
	writeJSONStatus(w, http.StatusOK, out)
}

// unreadyOnTransportFailure is the same fast feedback the execute path gives
// the scraper: a connect failure unreadies the node immediately; the scrape
// loop restores it when /healthz answers again.
func (rt *Router) unreadyOnTransportFailure(ctx context.Context, a attempt) {
	if a.node == nil || ctx.Err() != nil {
		return
	}
	if a.node.ready.CompareAndSwap(true, false) {
		rt.metrics.nodeUnready(a.node.name)
		rt.logf(routerLog{Msg: "node-unready", Node: a.node.name, Err: a.err.Error()})
	}
}

// relayPipelineResponse relays a node's answer verbatim and accounts for it.
func (rt *Router) relayPipelineResponse(w http.ResponseWriter, start time.Time, a attempt, id, key string) {
	if a.status == http.StatusServiceUnavailable && a.retryAfter != "" {
		w.Header().Set("Retry-After", a.retryAfter)
	}
	w.Header().Set("X-Mpurouter-Node", a.node.name)
	w.Header().Set("X-Mpurouter-Attempts", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(a.status)
	w.Write(a.body)
	rt.metrics.observeRequest(a.status, time.Since(start).Seconds())
	rt.metrics.observeForward(a.node.name)
	rt.logf(routerLog{
		Msg: "pipeline", Node: a.node.name, Key: key, Pipeline: id,
		Status: a.status, MS: time.Since(start).Seconds() * 1e3, Attempts: 1,
	})
}
