package router

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the metrics golden file")

// goldenRMetrics populates every series the router exports with fixed
// observations, so the render is fully deterministic.
func goldenRMetrics() *rmetrics {
	m := newRMetrics()
	m.observeRequest(200, 0.004)
	m.observeRequest(200, 0.3)
	m.observeRequest(429, 0.0001)
	m.observeForward("n1:9001")
	m.observeForward("n1:9001")
	m.observeForward("n2:9002")
	m.addRetry()
	m.addHedge()
	m.addHedge()
	m.hedgeWin()
	m.nodeUnready("n2:9002")
	m.autoscaleAdvisory("n1:9001")
	m.addInflight(1)
	return m
}

// TestRouterMetricsRenderGolden pins the router's /metrics exposition
// byte-for-byte — series names, help text, label shapes, and emission order
// are a wire contract for dashboards and the cluster studies. A rename or
// reorder must show up as a reviewed golden diff, not a silent scrape break.
// Regenerate with: go test ./internal/router -run TestRouterMetricsRenderGolden -update
func TestRouterMetricsRenderGolden(t *testing.T) {
	got := goldenRMetrics().render(
		[]nodeView{
			{name: "n1:9001", ready: true, load: 1.5, depth: 3},
			{name: "n2:9002", ready: false, load: 0, depth: 0},
		},
		map[string][2]uint64{"default": {12, 0}, "tenant-b": {4, 2}},
		0.025,
		1,
	)
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("metrics rendering drifted from %s (regenerate with -update if intended):\n%s",
			golden, rDiffLines(string(want), got))
	}
}

// rDiffLines renders a compact first-divergence report for golden mismatches.
func rDiffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\nwant: %s\ngot:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(w), len(g))
}
