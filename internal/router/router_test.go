package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mpu/internal/machine"
	"mpu/internal/serve"
)

// clusterNode is one in-process mpud: a serve.Server behind httptest — the
// -smoke pattern from PR 5 scaled out to N nodes.
type clusterNode struct {
	srv *serve.Server
	ts  *httptest.Server
}

// startCluster spins up n in-process mpud nodes. mut, if non-nil, edits each
// node's config (slow nodes, pool sizes) before construction.
func startCluster(t *testing.T, n int, mut func(i int, c *serve.Config)) []clusterNode {
	t.Helper()
	nodes := make([]clusterNode, n)
	for i := 0; i < n; i++ {
		cfg := serve.Config{
			Pools:  []serve.PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 2}},
			NodeID: fmt.Sprintf("node%d", i),
		}
		if mut != nil {
			mut(i, &cfg)
		}
		srv, err := serve.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		nodes[i] = clusterNode{srv: srv, ts: ts}
		t.Cleanup(srv.Close)
		t.Cleanup(ts.Close)
	}
	return nodes
}

func startRouter(t *testing.T, nodes []clusterNode, mut func(c *Config)) (*Router, *httptest.Server) {
	t.Helper()
	cfg := Config{
		ScrapeInterval: 25 * time.Millisecond,
		Hedge:          true,
	}
	for _, n := range nodes {
		cfg.Nodes = append(cfg.Nodes, n.ts.URL)
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(rt.Close)
	t.Cleanup(ts.Close)
	return rt, ts
}

func postJSON(t *testing.T, url string, req map[string]any, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/execute", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes(), resp.Header
}

func statsOf(t *testing.T, body []byte) []byte {
	t.Helper()
	var r struct {
		Stats json.RawMessage `json:"stats"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	return []byte(r.Stats)
}

// TestRouterParityThreeNodesVsSingle is the acceptance parity test: the same
// workload set run through a 3-node router — one node deliberately slow so
// some requests are hedged — yields per-request machine.Stats envelopes
// byte-identical to a single mpud, order-independent. Hedging is
// observationally free because every node computes identical stats.
func TestRouterParityThreeNodesVsSingle(t *testing.T) {
	single := startCluster(t, 1, nil)
	cluster := startCluster(t, 3, func(i int, c *serve.Config) {
		if i == 2 {
			c.DebugDelay = 40 * time.Millisecond // the hedging trigger
		}
	})
	rt, rts := startRouter(t, cluster, func(c *Config) {
		c.HedgeMax = 5 * time.Millisecond // hedge well before the slow node answers
	})

	type job struct {
		workload string
		elements int
		seed     int64
	}
	var jobs []job
	for _, w := range []string{"gcd", "vecadd", "relu", "vecxor", "vecand", "vecsub"} {
		for seed := int64(0); seed < 3; seed++ {
			jobs = append(jobs, job{w, 64 + int(seed)*64, seed})
		}
	}

	// Reference: the single node, sequential.
	want := map[job][]byte{}
	for _, j := range jobs {
		code, body, _ := postJSON(t, single[0].ts.URL, map[string]any{
			"workload": j.workload, "backend": "racer", "elements": j.elements, "seed": j.seed, "check": true,
		}, nil)
		if code != http.StatusOK {
			t.Fatalf("single %v: %d %s", j, code, body)
		}
		want[j] = statsOf(t, body)
	}

	// Routed: concurrent, so responses land in arbitrary order.
	var wg sync.WaitGroup
	got := make([][]byte, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			code, body, _ := postJSON(t, rts.URL, map[string]any{
				"workload": j.workload, "backend": "racer", "elements": j.elements, "seed": j.seed, "check": true,
			}, nil)
			if code != http.StatusOK {
				t.Errorf("routed %v: %d %s", j, code, body)
				return
			}
			got[i] = statsOf(t, body)
		}(i, j)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, j := range jobs {
		if !bytes.Equal(want[j], got[i]) {
			t.Fatalf("%v: routed stats diverge from single mpud:\nwant: %s\ngot:  %s", j, want[j], got[i])
		}
	}

	// The slow node guarantees some keys hit the hedge path; the parity
	// above therefore covered hedged requests too.
	hedges, _, _ := rt.Hedging()
	if hedges == 0 {
		t.Error("no request was hedged — the slow-node hedge path went unexercised")
	}
}

// TestRollingDrainZeroLost is the acceptance drain test: drain one node
// mid-load; the router notices via /healthz, re-routes (retrying any 503
// from the draining node), and the client-side accounting balances — every
// request is answered 200 or refused with a contract status, zero lost.
func TestRollingDrainZeroLost(t *testing.T) {
	cluster := startCluster(t, 3, nil)
	rt, rts := startRouter(t, cluster, nil)
	_ = rt

	const clients = 8
	const perClient = 30
	var (
		mu       sync.Mutex
		ok       int
		rejected int
		lost     int
	)
	var wg sync.WaitGroup
	drainOnce := sync.OnceFunc(func() { cluster[0].srv.Drain() })
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if c == 0 && i == perClient/3 {
					drainOnce() // SIGTERM-equivalent mid-load on node0
				}
				code, body, _ := postJSON(t, rts.URL, map[string]any{
					"workload": "gcd", "backend": "racer", "elements": 64,
					"seed": int64(c*perClient + i), "check": true,
				}, nil)
				mu.Lock()
				switch code {
				case http.StatusOK:
					ok++
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					rejected++
				default:
					lost++
					t.Errorf("client %d req %d: status %d: %s", c, i, code, body)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	total := clients * perClient
	if ok+rejected != total || lost != 0 {
		t.Fatalf("accounting does not balance: ok=%d rejected=%d lost=%d of %d", ok, rejected, lost, total)
	}
	if ok == 0 {
		t.Fatal("no request succeeded")
	}

	// The router must have marked the drained node unready.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(rts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Status string `json:"status"`
			Nodes  []struct {
				Name  string `json:"name"`
				Ready bool   `json:"ready"`
			} `json:"nodes"`
		}
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		drainedUnready := false
		for _, n := range h.Nodes {
			if n.Name == strings.TrimPrefix(cluster[0].ts.URL, "http://") && !n.Ready {
				drainedUnready = true
			}
		}
		if drainedUnready && h.Status == "degraded" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never marked the drained node unready: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And traffic must still flow on the surviving nodes.
	code, body, _ := postJSON(t, rts.URL, map[string]any{
		"workload": "relu", "backend": "racer", "elements": 64, "seed": 1,
	}, nil)
	if code != http.StatusOK {
		t.Fatalf("post-drain request: %d %s", code, body)
	}
}

// TestRouterAffinity pins the sharding motivation: the same program always
// lands on the same node (cache affinity), different programs spread.
func TestRouterAffinity(t *testing.T) {
	cluster := startCluster(t, 3, nil)
	_, rts := startRouter(t, cluster, func(c *Config) {
		c.Hedge = false // keep the serving node deterministic
	})
	servedBy := map[string]map[string]bool{}
	for _, w := range []string{"gcd", "vecadd", "relu", "vecxor", "vecsub", "vecand", "vecmul", "abs"} {
		for seed := int64(0); seed < 3; seed++ {
			code, body, hdr := postJSON(t, rts.URL, map[string]any{
				"workload": w, "backend": "racer", "elements": 64, "seed": seed,
			}, nil)
			if code != http.StatusOK {
				t.Fatalf("%s: %d %s", w, code, body)
			}
			node := hdr.Get("X-Mpurouter-Node")
			if node == "" {
				t.Fatal("response lacks the serving-node header")
			}
			if servedBy[w] == nil {
				servedBy[w] = map[string]bool{}
			}
			servedBy[w][node] = true
		}
	}
	nodesUsed := map[string]bool{}
	for w, nodes := range servedBy {
		if len(nodes) != 1 {
			t.Errorf("workload %s served by %d nodes %v — affinity broken", w, len(nodes), nodes)
		}
		for n := range nodes {
			nodesUsed[n] = true
		}
	}
	if len(nodesUsed) < 2 {
		t.Errorf("all programs landed on one node: %v", servedBy)
	}
}

// TestRouterNoReadyNodes pins the empty-cluster refusal: 503 + Retry-After.
func TestRouterNoReadyNodes(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(dead.Close)
	_, rts := startRouter(t, nil, func(c *Config) {
		c.Nodes = []string{dead.URL}
	})
	code, body, hdr := postJSON(t, rts.URL, map[string]any{
		"workload": "gcd", "backend": "racer", "elements": 64,
	}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestTenantSaturation pins the 429 contract: a tenant beyond its bounded
// admission queue is refused with Retry-After while other tenants proceed.
func TestTenantSaturation(t *testing.T) {
	cluster := startCluster(t, 1, func(i int, c *serve.Config) {
		c.DebugDelay = 150 * time.Millisecond // hold slots long enough to saturate
	})
	_, rts := startRouter(t, cluster, func(c *Config) {
		c.MaxInflight = 1
		c.TenantQueue = 1
		c.Hedge = false
	})
	const n = 6
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, hdr := postJSON(t, rts.URL, map[string]any{
				"workload": "gcd", "backend": "racer", "elements": 64, "seed": int64(i),
			}, map[string]string{"X-Tenant": "greedy"})
			codes[i] = code
			if code == http.StatusTooManyRequests && hdr.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}(i)
	}
	wg.Wait()
	ok, saturated := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			saturated++
		default:
			t.Fatalf("unexpected statuses %v", codes)
		}
	}
	if ok == 0 || saturated == 0 {
		t.Fatalf("want both served and saturated, got %v", codes)
	}
}

// TestAutoscaleAdvisory drives the scraper against a fake node whose
// /metrics reports sustained queue depth and pins the advisory log + metric.
func TestAutoscaleAdvisory(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"status":"ok"}`))
		case "/metrics":
			fmt.Fprint(w, "mpud_queue_depth{pool=\"RACER/MPU\"} 50\nmpud_inflight 10\n")
		}
	}))
	t.Cleanup(fake.Close)
	var logs bytes.Buffer
	var logMu sync.Mutex
	rt, rts := startRouter(t, nil, func(c *Config) {
		c.Nodes = []string{fake.URL}
		c.AutoscaleDepth = 32
		c.AutoscaleSustain = 2
		c.ScrapeInterval = 10 * time.Millisecond
		c.Logs = writerFunc(func(p []byte) (int, error) {
			logMu.Lock()
			defer logMu.Unlock()
			return logs.Write(p)
		})
	})
	_ = rt
	deadline := time.Now().Add(5 * time.Second)
	for {
		logMu.Lock()
		advised := strings.Contains(logs.String(), `"msg":"autoscale-advice"`)
		logMu.Unlock()
		if advised {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no autoscale advisory after sustained depth; logs:\n%s", logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "mpurouter_autoscale_advisories_total") {
		t.Fatalf("metrics missing the advisory counter:\n%s", buf.String())
	}
	// One advisory per hot episode, not one per scrape: wait a few more
	// scrapes and confirm the count did not explode.
	time.Sleep(100 * time.Millisecond)
	logMu.Lock()
	n := strings.Count(logs.String(), `"msg":"autoscale-advice"`)
	logMu.Unlock()
	if n != 1 {
		t.Fatalf("advisory logged %d times for one sustained episode (want 1)", n)
	}
}

// TestRouterMetricsExposition pins the router's series catalog.
func TestRouterMetricsExposition(t *testing.T) {
	cluster := startCluster(t, 2, nil)
	_, rts := startRouter(t, cluster, nil)
	if code, body, _ := postJSON(t, rts.URL, map[string]any{
		"workload": "vecadd", "backend": "racer", "elements": 64,
	}, map[string]string{"X-Tenant": "alice"}); code != http.StatusOK {
		t.Fatalf("execute: %d %s", code, body)
	}
	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, series := range []string{
		`mpurouter_requests_total{code="200"} 1`,
		"mpurouter_inflight 0",
		"mpurouter_node_requests_total{node=",
		"mpurouter_retries_total 0",
		"mpurouter_hedges_total",
		"mpurouter_hedge_wins_total",
		"mpurouter_hedge_delay_seconds",
		"mpurouter_node_ready{node=",
		"mpurouter_node_load{node=",
		`mpurouter_tenant_granted_total{tenant="alice"} 1`,
		"mpurouter_request_seconds_count 1",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
