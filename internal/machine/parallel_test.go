package machine_test

// Parallel-scheduler parity difftest: the phase-based scheduler must be
// invisible in every reported number. Each workload runs twice — sequential
// (Workers 1) and parallel (Workers 4) — and the two Stats must match byte
// for byte: per-core accounting plus the fixed-order reduction makes the
// merge independent of goroutine interleaving. The deadlock tests pin the
// other contract: a stuck machine raises the same diagnostic at any worker
// count.

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mpu/internal/apps"
	"mpu/internal/backends"
	"mpu/internal/isa"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

const (
	parallelWorkers = 4
	spmdMPUs        = 4 // kernel-parity machine size
	spmdVRFs        = 2
)

// runKernelSPMD executes kernel k's program on an SPMD multi-MPU machine —
// unlike workloads.Run (which simulates one MPU's share), this instantiates
// several cores so the parallel run phase actually fans out.
func runKernelSPMD(t *testing.T, k *workloads.Kernel, spec *backends.Spec, mode machine.Mode, workers int) *machine.Stats {
	t.Helper()
	prog, addrs, err := workloads.BuildProgram(k, spec, spmdVRFs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.Config{Spec: spec, Mode: mode, NumMPUs: spmdMPUs, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	inputs := k.Gen(rng, spmdVRFs*spec.Lanes)
	for mpu := 0; mpu < spmdMPUs; mpu++ {
		for reg, vals := range inputs {
			for v := 0; v < spmdVRFs; v++ {
				lo := v * spec.Lanes
				if err := m.WriteVector(mpu, addrs[v], reg, vals[lo:lo+spec.Lanes]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("%s on %s/%s (workers %d): %v", k.Name, spec.Name, mode, workers, err)
	}
	return st
}

func requireWorkerParity(t *testing.T, name string, seq, par *machine.Stats) {
	t.Helper()
	if !reflect.DeepEqual(*seq, *par) {
		t.Errorf("%s: stats diverge between sequential and parallel schedulers:\nseq: %+v\npar: %+v", name, *seq, *par)
	}
}

func TestParallelMachineParity(t *testing.T) {
	// All kernels, SPMD over 4 cores, both modes.
	spec := backends.RACER()
	for _, mode := range []machine.Mode{machine.ModeMPU, machine.ModeBaseline} {
		for _, k := range workloads.All() {
			name := fmt.Sprintf("%s/%s/%s", k.Name, spec.Name, mode)
			seq := runKernelSPMD(t, k, spec, mode, 1)
			par := runKernelSPMD(t, k, spec, mode, parallelWorkers)
			requireWorkerParity(t, name, seq, par)
		}
	}

	// All apps on every back end — including the §IX SIMDRAM portability
	// demo — in both modes. The apps exercise the rendezvous barrier (ring,
	// pipeline, and gather traffic), which the SPMD kernels never reach.
	type appRun struct {
		name string
		run  func(spec *backends.Spec, mode machine.Mode, workers int) (*apps.Result, error)
	}
	cases := []appRun{
		{"LLMEncode", func(spec *backends.Spec, mode machine.Mode, workers int) (*apps.Result, error) {
			return apps.RunLLMEncode(apps.LLMEncodeConfig{Spec: spec, Mode: mode, Seed: 1, MachineWorkers: workers})
		}},
		{"BlackScholes", func(spec *backends.Spec, mode machine.Mode, workers int) (*apps.Result, error) {
			return apps.RunBlackScholes(apps.BlackScholesConfig{Spec: spec, Mode: mode, Seed: 1, MachineWorkers: workers})
		}},
		{"EditDistance", func(spec *backends.Spec, mode machine.Mode, workers int) (*apps.Result, error) {
			return apps.RunEditDistance(apps.EditDistanceConfig{Spec: spec, Mode: mode, Seed: 1, MachineWorkers: workers})
		}},
	}
	specs := append(backends.All(), backends.SIMDRAM())
	for _, spec := range specs {
		for _, mode := range []machine.Mode{machine.ModeMPU, machine.ModeBaseline} {
			for _, c := range cases {
				name := fmt.Sprintf("%s/%s/%s", c.name, spec.Name, mode)
				seq, err := c.run(spec, mode, 1)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				par, err := c.run(spec, mode, parallelWorkers)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				requireWorkerParity(t, name, seq.Stats, par.Stats)
			}
		}
	}
}

// sendRecvProg builds a program that SENDs one register to dst and/or RECVs
// from src (−1 skips the phase).
func sendRecvProg(t *testing.T, dst, src int) isa.Program {
	t.Helper()
	var sb strings.Builder
	if dst >= 0 {
		fmt.Fprintf(&sb, "SEND mpu%d\nMOVE rfh0 rfh0\nMEMCPY vrf0 r0 vrf0 r0\nMOVE_DONE\nSEND_DONE\n", dst)
	}
	if src >= 0 {
		fmt.Fprintf(&sb, "RECV mpu%d\n", src)
	}
	p, err := isa.Assemble(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParallelDeadlockDetection(t *testing.T) {
	type comm struct{ dst, src int } // one MPU's program shape
	cases := []struct {
		name string
		mpus []comm
		want []string // who-waits-on-whom lines the diagnostic must carry
	}{
		// Every MPU sends to its ring successor before receiving: a cyclic
		// wait no rendezvous can break.
		{"cyclic send chain", []comm{{dst: 1, src: 2}, {dst: 2, src: 0}, {dst: 0, src: 1}},
			[]string{
				"mpu0: SEND to mpu1 at pc 0 (waits on mpu1)",
				"mpu1: SEND to mpu2 at pc 0 (waits on mpu2)",
				"mpu2: SEND to mpu0 at pc 0 (waits on mpu0)",
			}},
		// A core that sends to itself can never reach its own RECV.
		{"self send", []comm{{dst: 0, src: 0}, {dst: -1, src: -1}},
			[]string{"mpu0: SEND to mpu0 at pc 0 (waits on mpu0)"}},
		// Sender and receiver each name a third, finished core.
		{"mismatched pair", []comm{{dst: 1, src: -1}, {dst: -1, src: 2}, {dst: -1, src: -1}},
			[]string{
				"mpu0: SEND to mpu1 at pc 0 (waits on mpu1)",
				"mpu1: RECV from mpu2 at pc 0 (waits on mpu2)",
			}},
		// A receiver whose named source never sends.
		{"recv without sender", []comm{{dst: -1, src: 1}, {dst: -1, src: -1}},
			[]string{"mpu0: RECV from mpu1 at pc 0 (waits on mpu1)"}},
	}
	for _, c := range cases {
		var errs []string
		for _, workers := range []int{1, parallelWorkers} {
			m, err := machine.New(machine.Config{Spec: backends.RACER(), Mode: machine.ModeMPU,
				NumMPUs: len(c.mpus), Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for id, cm := range c.mpus {
				if cm.dst < 0 && cm.src < 0 {
					continue // empty program: core finishes immediately
				}
				if err := m.LoadProgram(id, sendRecvProg(t, cm.dst, cm.src)); err != nil {
					t.Fatal(err)
				}
			}
			_, err = m.Run()
			if err == nil || !strings.Contains(err.Error(), "deadlock") {
				t.Fatalf("%s (workers %d): expected deadlock error, got %v", c.name, workers, err)
			}
			for _, line := range c.want {
				if !strings.Contains(err.Error(), line) {
					t.Errorf("%s (workers %d): diagnostic missing waiter %q:\n%s", c.name, workers, line, err)
				}
			}
			errs = append(errs, err.Error())
		}
		if errs[0] != errs[1] {
			t.Errorf("%s: diagnostic differs between worker counts:\nseq: %s\npar: %s", c.name, errs[0], errs[1])
		}
	}
}
