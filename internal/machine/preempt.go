package machine

import (
	"errors"

	"mpu/internal/controlpath"
	"mpu/internal/lint"
	"mpu/internal/trace"
	"mpu/internal/vrf"
)

// ErrPreempted reports that Run paused at an ensemble boundary in response
// to Preempt. The machine is left mid-run but architecturally consistent:
// the caller may Snapshot it, call Run again to resume in place, or Restore
// the snapshot into any compatible machine and resume there. A resumed run
// produces Stats byte-identical to an uninterrupted one.
var ErrPreempted = errors.New("machine: run preempted at ensemble boundary")

// Preempt asks a running machine to pause at the next ensemble boundary.
// It is safe to call from any goroutine, including while Run executes; the
// flag is consumed by the Run call that honors (or outlives) it, so a
// request landing after the run completed does not poison the next run.
func (m *Machine) Preempt() { m.preempt.Store(true) }

// ensState is the resumable position inside one compute ensemble. A yield
// between thermal rounds records the round index and the body end pc here
// (the header scratch c.hdr keeps the activation list); the next Run
// re-enters runEnsembleRounds without re-charging the header walk, the
// playback-buffer probe, or the ensemble count.
type ensState struct {
	active    bool
	bodyStart int
	bodyLen   int
	fits      bool // body fit the playback buffer (charged at entry)
	round     int  // next thermal round to execute
	endPC     int  // body end pc recorded by the rounds run so far
}

// shouldYield reports whether the core should pause for a pending
// preemption request. The seg guard makes every Run call execute at least
// one instruction per runnable core before honoring the flag, so a caller
// that preempts in a tight loop still drives the program forward.
func (c *core) shouldYield() bool {
	return c.seg > 0 && c.m.preempt.Load()
}

// runEnsembleRounds executes the active ensemble's remaining thermal
// rounds, yielding between rounds when preemption is pending. The
// trace-engine gate (classification verdict, installed trace, recipe
// residency) is recomputed from the memoized caches on every entry, so a
// resumed ensemble replays, records, or falls back exactly as the
// uninterrupted run would — the caches are part of the snapshot.
func (c *core) runEnsembleRounds() error {
	bodyStart, bodyLen, fits := c.ens.bodyStart, c.ens.bodyLen, c.ens.fits
	rounds := controlpath.Batches(c.hdr, c.m.limit)
	if c.ens.round == 0 {
		c.tracef("ensemble: %d VRFs, %d instruction body, %d rounds", len(c.hdr), bodyLen, len(rounds))
	}

	// Spilling bodies replay from the ISU, not the playback buffer, so the
	// O(1) cycle delta would be wrong; classify everything else before the
	// first round so the recorder only runs on bodies that can succeed.
	enabled := c.m.traceEnabled()
	gate := enabled && fits
	key := trace.Key{BodyStart: bodyStart, BodyLen: bodyLen}
	var tr *trace.Trace
	known := false
	if gate {
		// The CFG-classification verdict is memoized per key, so a
		// dynamic body pays for ClassifyBody exactly once per program
		// load, not once per activation.
		if !c.traces.Eligible(key, func() bool {
			cl := lint.ClassifyBody(c.prog, bodyStart)
			return cl == lint.BodyStraight || cl == lint.BodyStatic
		}) {
			tr, known = nil, true
		} else {
			tr, known = c.traces.Lookup(key)
		}
	}

	endPC := c.ens.endPC
	for ri := c.ens.round; ri < len(rounds); ri++ {
		if c.shouldYield() {
			c.ens.round = ri
			c.ens.endPC = endPC
			return nil
		}
		batch := rounds[ri]
		c.tracef("round %d: %d VRFs active", ri, len(batch))
		c.local.Rounds++
		c.cycles += 4 // footer interrupt + batch swap (Fig. 10 lines 11–23)
		if cap(c.act) < len(batch) {
			c.act = make([]*vrf.VRF, len(batch))
		}
		vrfs := c.act[:len(batch)]
		for i, a := range batch {
			vrfs[i] = c.vrfAt(a)
			vrfs[i].Unmask() // activation enables every lane
		}
		switch {
		case gate && known && tr != nil && c.replayable(tr):
			c.local.TraceHits++
			c.replayRound(tr, vrfs)
			endPC = tr.EndPC
		case gate && !known:
			// First execution: interpret under the recorder. Finish returns
			// nil if the run proved unreplayable (negative cache entry).
			c.local.TraceMisses++
			rec := trace.NewRecorder()
			pc, err := c.runBody(bodyStart, vrfs, rec)
			if err != nil {
				return err
			}
			tr = rec.Finish(pc)
			c.traces.Install(key, tr)
			known = true
			endPC = pc
		default:
			if enabled {
				c.local.TraceFallbacks++
			}
			pc, err := c.runBody(bodyStart, vrfs, nil)
			if err != nil {
				return err
			}
			endPC = pc
		}
		c.seg++
	}
	c.pc = endPC
	c.ens = ensState{}
	return nil
}
