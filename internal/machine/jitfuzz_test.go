package machine_test

// FuzzJITParity is the trace JIT's differential oracle: arbitrary bytes are
// shaped into a lint-clean straight-line compute-ensemble body, and the body
// runs three times — JIT (default), NoJIT (step-interpreted trace replay),
// and NoTrace (pure interpreter). All three must leave identical register
// planes in every VRF and report identical Stats (engine-strategy counters
// aside). Each body also runs under a deliberately tiny recipe table so the
// recipe-cold replay fallback (ReplayAllHit false) is exercised, and the
// seed corpus includes a body large enough to spill the playback buffer.
//
// Run with `go test -fuzz=FuzzJITParity ./internal/machine`.

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/machine"
)

// fuzzVRFs activates four VRFs per ensemble; with ActiveVRFsOverride 1 the
// scheduler splits them into four rounds — one recording, three replaying.
const fuzzVRFs = 4

// fuzzRegs bounds the register window the generated bodies touch (and the
// harness seeds and compares).
const fuzzRegs = 16

// fuzzOps is the datapath subset generated bodies draw from: every
// micro-coded kind the JIT compiles, via representative ISA ops.
var fuzzOps = []isa.Op{
	isa.ADD, isa.SUB, isa.INC, isa.INIT0, isa.INIT1,
	isa.CMPEQ, isa.CMPGT, isa.CMPLT, isa.CAS, isa.MUX, isa.MAX, isa.MIN,
	isa.AND, isa.NAND, isa.NOR, isa.INV, isa.OR, isa.XOR, isa.XNOR,
	isa.POPC, isa.RELU,
}

// fuzzBody shapes 4 bytes per instruction into a straight-line body:
// datapath ops plus mask manipulation, no control flow.
func fuzzBody(data []byte) []isa.Instr {
	const maxInstrs = 48
	var body []isa.Instr
	for len(data) >= 4 && len(body) < maxInstrs {
		sel, a, b, c := data[0], data[1], data[2], data[3]
		data = data[4:]
		switch sel % 16 {
		case 0:
			body = append(body, isa.SetMask(int(a)%fuzzRegs))
		case 1:
			body = append(body, isa.Unmask())
		case 2:
			body = append(body, isa.GetMask(int(a)%fuzzRegs))
		default:
			body = append(body, isa.Instr{
				Op: fuzzOps[int(sel)%len(fuzzOps)],
				A:  uint8(int(a) % fuzzRegs),
				B:  uint8(int(b) % fuzzRegs),
				C:  uint8(int(c) % fuzzRegs),
			})
		}
	}
	return body
}

// fuzzProgram wraps a body into an SPMD ensemble over fuzzVRFs register
// files, mirroring workloads.BuildProgram's address layout.
func fuzzProgram(spec *backends.Spec, body []isa.Instr) (isa.Program, []controlpath.VRFAddr) {
	addrs := make([]controlpath.VRFAddr, fuzzVRFs)
	var p isa.Program
	for v := range addrs {
		addrs[v] = controlpath.VRFAddr{
			RFH: uint8(v % spec.RFHsPerMPU),
			VRF: uint8(v / spec.RFHsPerMPU),
		}
		p = append(p, isa.Compute(int(addrs[v].RFH), int(addrs[v].VRF)))
	}
	p = append(p, body...)
	p = append(p, isa.Unmask(), isa.ComputeDone())
	return p, addrs
}

// fuzzRun executes prog on a fresh machine and returns its stats plus the
// full register window of every activated VRF.
func fuzzRun(t *testing.T, spec *backends.Spec, prog isa.Program, addrs []controlpath.VRFAddr,
	rc controlpath.RecipeCacheConfig, noTrace, noJIT bool, seed int64) (*machine.Stats, [][]uint64) {
	t.Helper()
	m, err := machine.New(machine.Config{
		Spec: spec, Mode: machine.ModeMPU, NumMPUs: 1,
		ActiveVRFsOverride: 1, Recipe: rc, NoTrace: noTrace, NoJIT: noJIT,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		t.Fatalf("lint-clean body rejected at load: %v\nprogram:\n%s", err, isa.Disassemble(prog))
	}
	rng := rand.New(rand.NewSource(seed))
	for _, a := range addrs {
		for reg := 0; reg < fuzzRegs; reg++ {
			vals := make([]uint64, spec.Lanes)
			for l := range vals {
				vals[l] = rng.Uint64()
			}
			if err := m.WriteVector(0, a, reg, vals); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("straight-line body faulted: %v\nprogram:\n%s", err, isa.Disassemble(prog))
	}
	var planes [][]uint64
	for _, a := range addrs {
		for reg := 0; reg < fuzzRegs; reg++ {
			vals, err := m.ReadVector(0, a, reg)
			if err != nil {
				t.Fatal(err)
			}
			planes = append(planes, vals)
		}
	}
	return st, planes
}

func checkJITParity(t *testing.T, data []byte) {
	t.Helper()
	body := fuzzBody(data)
	if len(body) == 0 {
		return
	}
	h := fnv.New64a()
	h.Write(data)
	seed := int64(h.Sum64() >> 1)
	recipes := []controlpath.RecipeCacheConfig{
		{}, // defaults: replay serves from a warm recipe table
		{CapacityMicroOps: 1, PointerTable: true, TemplateLookup: true}, // recipe-cold fallback
	}
	for _, spec := range []*backends.Spec{backends.RACER(), backends.SIMDRAM()} {
		prog, addrs := fuzzProgram(spec, body)
		if !lint.Lint(prog, lint.Options{Spec: spec}).Ok() {
			continue
		}
		for ri, rc := range recipes {
			jitStats, jitPlanes := fuzzRun(t, spec, prog, addrs, rc, false, false, seed)
			nojitStats, nojitPlanes := fuzzRun(t, spec, prog, addrs, rc, false, true, seed)
			notraceStats, notracePlanes := fuzzRun(t, spec, prog, addrs, rc, true, false, seed)
			name := spec.Name
			if ri == 1 {
				name += "/recipe-cold"
			}
			requireParity(t, name, jitStats, nojitStats, notraceStats)
			for i := range jitPlanes {
				for l := range jitPlanes[i] {
					if jitPlanes[i][l] != nojitPlanes[i][l] || jitPlanes[i][l] != notracePlanes[i][l] {
						t.Fatalf("%s: plane %d lane %d diverges: jit=%#x nojit=%#x notrace=%#x\nprogram:\n%s",
							name, i, l, jitPlanes[i][l], nojitPlanes[i][l], notracePlanes[i][l],
							isa.Disassemble(prog))
					}
				}
			}
		}
	}
}

// jitSeedCorpus returns hand-shaped inputs covering the replay edge cases:
// mask churn, every datapath family, a playback-buffer spill (a body whose
// micro-op expansion exceeds the 1024-op playback capacity), and a
// single-instruction minimal body.
func jitSeedCorpus() [][]byte {
	instr := func(sel, a, b, c byte) []byte { return []byte{sel, a, b, c} }
	cat := func(chunks ...[]byte) []byte {
		var out []byte
		for _, ch := range chunks {
			out = append(out, ch...)
		}
		return out
	}
	// Mask churn interleaved with compares and logic (selector math: sel%16
	// picks the step kind, sel%len(fuzzOps) picks the datapath op).
	masky := cat(
		instr(5, 0, 1, 2),  // CMPEQ sets cond
		instr(0, 2, 0, 0),  // SETMASK
		instr(12, 0, 1, 3), // AND under mask
		instr(2, 4, 0, 0),  // GETMASK
		instr(1, 0, 0, 0),  // UNMASK
		instr(0, 4, 0, 0),  // SETMASK from saved mask
		instr(17, 1, 2, 5), // XOR
		instr(1, 0, 0, 0),
	)
	// Every selector value once: sweeps the full fuzzOps table.
	var sweep []byte
	for sel := byte(0); sel < 32; sel++ {
		sweep = append(sweep, instr(sel, sel, sel+1, sel+2)...)
	}
	// Playback spill: 40 word-width adds expand far past 1024 micro-ops
	// (sel 84 → datapath ADD).
	var spill []byte
	for i := byte(0); i < 40; i++ {
		spill = append(spill, instr(84, i%8, (i+1)%8, (i+2)%8)...)
	}
	return [][]byte{
		masky,
		sweep,
		spill,
		instr(7, 1, 2, 3), // minimal single-instruction body
	}
}

func FuzzJITParity(f *testing.F) {
	for _, s := range jitSeedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkJITParity(t, data)
	})
}

// TestJITParityRandom drives the same oracle from a deterministic PRNG so
// plain `go test` exercises it without the fuzz engine.
func TestJITParityRandom(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 6
	}
	rng := rand.New(rand.NewSource(81))
	for i := 0; i < n; i++ {
		buf := make([]byte, 4*(1+rng.Intn(24)))
		rng.Read(buf)
		checkJITParity(t, buf)
	}
	for _, s := range jitSeedCorpus() {
		checkJITParity(t, s)
	}
}
