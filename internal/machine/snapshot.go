package machine

import (
	"bytes"
	"fmt"
	"sort"

	"mpu/internal/controlpath"
	"mpu/internal/isa"
	"mpu/internal/micro"
	"mpu/internal/snap"
	"mpu/internal/trace"
	"mpu/internal/vrf"
)

// Machine snapshots serialize the complete architectural state — programs,
// pc/cycle/issue counters, rendezvous and mid-ensemble resume state, the
// per-core Stats account, return stacks, recipe-table residency and
// counters, playback-buffer overflow counts, every allocated VRF's planes,
// and the installed trace cache — to a versioned, checksummed binary
// stream. Restore rebuilds a compatible machine into exactly that state, so
// snapshot → restore → resume produces Stats and register contents
// byte-identical to an uninterrupted run (TestSnapshotResumeParity), and
// re-snapshotting a restored machine reproduces the input bytes
// (FuzzSnapshotRoundTrip).
//
// What is deliberately NOT serialized: the machine-wide expansion and JIT
// memos (pure content-keyed caches, rebuilt on demand and charged nowhere),
// the pc-indexed decode cache (same), per-core scratch (act, tm, seg), and
// m.stats (an output of reduceStats, not an input to execution). JIT'd
// closure chains are recompiled on restore through the memo — compilation
// is a pure function of the recorded steps and the lane geometry, so the
// restored machine replays exactly as the snapshotted one did.

// snapMagic versions the snapshot format; bump it on any layout change.
const snapMagic = "MPUSNAP1"

// rasDepth is the per-core return-stack limit (New passes it to
// NewReturnStack); Restore validates frame counts against it before
// touching the live stack.
const rasDepth = 64

// Snapshot serializes the machine's architectural state. It must not be
// called while Run executes; the intended sequence is Run → ErrPreempted →
// Snapshot (or any quiesced point between runs).
func (m *Machine) Snapshot() []byte {
	w := snap.NewWriter()
	w.String(snapMagic)
	w.Bytes(m.fingerprint())
	w.Bool(m.midRun)
	for _, c := range m.mpus {
		c.encodeState(w)
	}
	return w.Finish()
}

// fingerprint captures the configuration a snapshot is only meaningful
// under: restoring into a machine with a different spec, mode, core count,
// activation limit, cost scaling, or engine configuration would resume with
// different charges. Workers is deliberately excluded — stats are
// byte-identical at any worker count, so snapshots move freely between
// sequential and parallel machines.
func (m *Machine) fingerprint() []byte {
	w := snap.NewWriter()
	spec := m.cfg.Spec
	w.String(spec.Name)
	w.Int(spec.Lanes)
	w.Int(spec.RFHsPerMPU)
	w.Int(spec.VRFsPerRFH)
	w.Int(int(m.cfg.Mode))
	w.Int(len(m.mpus))
	w.Int(m.limit)
	w.F64(m.cfg.ComputeScale)
	w.Int(m.cfg.MaxSteps)
	w.Bool(m.traceEnabled())
	w.Bool(m.cfg.NoJIT)
	w.Int(m.cfg.Recipe.CapacityMicroOps)
	w.Bool(m.cfg.Recipe.PointerTable)
	w.Bool(m.cfg.Recipe.TemplateLookup)
	w.Int(m.cfg.Recipe.MissPenaltyPer)
	h := m.cfg.Host
	w.I64(h.RoundTripCycles)
	w.I64(h.OnChipRoundTripCycles)
	w.F64(h.ReadbackBytesPerLane)
	w.F64(h.BusEnergyPJPerByte)
	w.F64(h.ActivePowerW)
	w.F64(h.OnChipActivePowerW)
	return w.Finish()
}

// Restore overwrites the machine's architectural state from a snapshot
// taken on an identically configured machine (fingerprint-checked; worker
// count may differ). The stream is fully decoded and validated before any
// machine state changes, so a failed Restore leaves the machine untouched.
// Restore is one of the audited writers of rendezvous and snapshot-resume
// core state (cmd/repolint rules 6 and 7).
func (m *Machine) Restore(data []byte) error {
	r, err := snap.NewReader(data)
	if err != nil {
		return err
	}
	if magic := r.String(); magic != snapMagic {
		if err := r.Err(); err != nil {
			return err
		}
		return fmt.Errorf("machine: snapshot magic %q, want %q", magic, snapMagic)
	}
	fp := r.Bytes()
	if r.Err() == nil && !bytes.Equal(fp, m.fingerprint()) {
		return fmt.Errorf("machine: snapshot fingerprint does not match this machine's configuration (spec/mode/MPUs/limit/scale/engine)")
	}
	midRun := r.Bool()
	snaps := make([]coreSnap, len(m.mpus))
	for i := range snaps {
		if err := snaps[i].decodeCore(r, m); err != nil {
			return err
		}
	}
	if err := r.Close(); err != nil {
		return err
	}

	for i, c := range m.mpus {
		cs := &snaps[i]
		c.prog = cs.prog
		c.pc = cs.pc
		c.cycles = cs.cycles
		c.issue = cs.issue
		c.done = cs.done
		c.blocked = cs.blocked
		c.sendDst = cs.sendDst
		c.recvSrc = cs.recvSrc
		c.waitSend = cs.waitSend
		c.waitRecv = cs.waitRecv
		c.ens = cs.ens
		c.hdr = append(c.hdr[:0], cs.hdr...)
		c.local = cs.local
		c.ras.SetFrames(cs.frames) // length validated in decode
		c.rcache.RestoreEntries(cs.rentries)
		c.rcache.Hits = cs.rhits
		c.rcache.Misses = cs.rmisses
		c.rcache.StallCycles = cs.rstall
		c.pbuf.Overflows = cs.overflows
		c.vrfs = cs.vrfs
		c.decode = make([]*expandEntry, len(cs.prog))
		c.traces.RestoreEntries(cs.tentries)
		// Recompile the traces that were JIT'd when the snapshot was taken.
		// The memoized lowering is a pure function of the step stream and
		// lane count and charges nothing — JITCompiles already sits in the
		// restored local Stats — so replayed rounds take the same path, and
		// count the same JITReplays, as the uninterrupted run.
		for j := range cs.tentries {
			if t := cs.tentries[j].Tr; t != nil && t.Compiled && cs.hadProg[j] {
				t.Prog = m.jitMemo.Compile(t, m.cfg.Spec.Lanes)
			}
		}
		c.act = c.act[:0]
		c.tm.Reset()
		c.seg = 0
	}
	m.midRun = midRun
	m.preempt.Store(false)
	return nil
}

// coreSnap is one core's decoded state, held off to the side until the
// whole stream validates.
type coreSnap struct {
	prog      isa.Program
	pc        int
	cycles    int64
	issue     int64
	done      bool
	blocked   bool
	sendDst   int
	recvSrc   int
	waitSend  bool
	waitRecv  bool
	ens       ensState
	hdr       []controlpath.VRFAddr
	local     Stats
	frames    []int
	rentries  []controlpath.ResidentEntry
	rhits     uint64
	rmisses   uint64
	rstall    int64
	overflows uint64
	vrfs      map[controlpath.VRFAddr]*vrf.VRF
	tentries  []trace.CacheEntry
	hadProg   []bool // per tentries entry: Prog was compiled when snapshotted
}

func (c *core) encodeState(w *snap.Writer) {
	w.Bytes(isa.EncodeProgram(c.prog))
	w.Int(c.pc)
	w.I64(c.cycles)
	w.I64(c.issue)
	w.Bool(c.done)
	w.Bool(c.blocked)
	w.Int(c.sendDst)
	w.Int(c.recvSrc)
	w.Bool(c.waitSend)
	w.Bool(c.waitRecv)
	w.Bool(c.ens.active)
	if c.ens.active {
		w.Int(c.ens.bodyStart)
		w.Int(c.ens.bodyLen)
		w.Bool(c.ens.fits)
		w.Int(c.ens.round)
		w.Int(c.ens.endPC)
		w.Int(len(c.hdr))
		for _, a := range c.hdr {
			w.U8(a.RFH)
			w.U8(a.VRF)
		}
	}
	encodeStats(w, &c.local)
	frames := c.ras.Frames()
	w.Int(len(frames))
	for _, f := range frames {
		w.Int(f)
	}
	rents := c.rcache.SnapshotEntries()
	w.Int(len(rents))
	for _, e := range rents {
		w.U8(e.Opcode)
		w.Int(e.Stored)
	}
	w.U64(c.rcache.Hits)
	w.U64(c.rcache.Misses)
	w.I64(c.rcache.StallCycles)
	w.U64(c.pbuf.Overflows)
	addrs := make([]controlpath.VRFAddr, 0, len(c.vrfs))
	for a := range c.vrfs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].RFH != addrs[j].RFH {
			return addrs[i].RFH < addrs[j].RFH
		}
		return addrs[i].VRF < addrs[j].VRF
	})
	w.Int(len(addrs))
	for _, a := range addrs {
		w.U8(a.RFH)
		w.U8(a.VRF)
		c.vrfs[a].EncodeState(w)
	}
	tents := c.traces.SnapshotEntries()
	w.Int(len(tents))
	for _, e := range tents {
		encodeTraceEntry(w, e)
	}
}

func (cs *coreSnap) decodeCore(r *snap.Reader, m *Machine) error {
	progBytes := r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	prog, err := isa.DecodeProgram(progBytes)
	if err != nil {
		return fmt.Errorf("machine: snapshot program: %w", err)
	}
	if err := prog.Validate(); err != nil {
		return fmt.Errorf("machine: snapshot program: %w", err)
	}
	cs.prog = prog
	cs.pc = r.Int()
	cs.cycles = r.I64()
	cs.issue = r.I64()
	cs.done = r.Bool()
	cs.blocked = r.Bool()
	cs.sendDst = r.Int()
	cs.recvSrc = r.Int()
	cs.waitSend = r.Bool()
	cs.waitRecv = r.Bool()
	if r.Err() == nil && (cs.sendDst < 0 || cs.sendDst >= len(m.mpus) || cs.recvSrc < 0 || cs.recvSrc >= len(m.mpus)) {
		return fmt.Errorf("machine: snapshot rendezvous partner out of range")
	}
	cs.ens.active = r.Bool()
	if r.Err() == nil && cs.ens.active {
		cs.ens.bodyStart = r.Int()
		cs.ens.bodyLen = r.Int()
		cs.ens.fits = r.Bool()
		cs.ens.round = r.Int()
		cs.ens.endPC = r.Int()
		n := r.Len(2)
		if err := r.Err(); err != nil {
			return err
		}
		if cs.ens.bodyStart < 0 || cs.ens.bodyLen < 1 || cs.ens.bodyStart+cs.ens.bodyLen > len(prog) ||
			cs.ens.round < 0 || cs.ens.endPC < 0 || n < 1 {
			return fmt.Errorf("machine: snapshot mid-ensemble state out of range")
		}
		cs.hdr = make([]controlpath.VRFAddr, n)
		for i := range cs.hdr {
			cs.hdr[i] = controlpath.VRFAddr{RFH: r.U8(), VRF: r.U8()}
			if r.Err() == nil {
				if err := m.checkAddr(cs.hdr[i]); err != nil {
					return err
				}
			}
		}
	}
	if err := decodeStats(r, &cs.local); err != nil {
		return err
	}
	nf := r.Len(8)
	if r.Err() == nil && nf > rasDepth {
		return fmt.Errorf("machine: snapshot return stack of %d frames exceeds depth %d", nf, rasDepth)
	}
	cs.frames = make([]int, nf)
	for i := range cs.frames {
		cs.frames[i] = r.Int()
	}
	nr := r.Len(9)
	cs.rentries = make([]controlpath.ResidentEntry, nr)
	for i := range cs.rentries {
		cs.rentries[i] = controlpath.ResidentEntry{Opcode: r.U8(), Stored: r.Int()}
	}
	if r.Err() == nil {
		// Dry-run the rebuild against a scratch cache so the live one is
		// never touched by an invalid stream.
		if err := controlpath.NewRecipeCache(m.cfg.Recipe).RestoreEntries(cs.rentries); err != nil {
			return err
		}
	}
	cs.rhits = r.U64()
	cs.rmisses = r.U64()
	cs.rstall = r.I64()
	cs.overflows = r.U64()
	nv := r.Len(2)
	if err := r.Err(); err != nil {
		return err
	}
	cs.vrfs = make(map[controlpath.VRFAddr]*vrf.VRF, nv)
	prev := controlpath.VRFAddr{}
	for i := 0; i < nv; i++ {
		a := controlpath.VRFAddr{RFH: r.U8(), VRF: r.U8()}
		if err := r.Err(); err != nil {
			return err
		}
		if err := m.checkAddr(a); err != nil {
			return err
		}
		if i > 0 && (a.RFH < prev.RFH || (a.RFH == prev.RFH && a.VRF <= prev.VRF)) {
			return fmt.Errorf("machine: snapshot VRFs not in canonical order")
		}
		prev = a
		v := vrf.New(m.cfg.Spec.Lanes)
		if err := v.DecodeState(r); err != nil {
			return err
		}
		cs.vrfs[a] = v
	}
	nt := r.Len(1)
	if err := r.Err(); err != nil {
		return err
	}
	cs.tentries = make([]trace.CacheEntry, 0, nt)
	cs.hadProg = make([]bool, 0, nt)
	prevKey := trace.Key{}
	for i := 0; i < nt; i++ {
		e, hadProg, err := decodeTraceEntry(r, len(prog))
		if err != nil {
			return err
		}
		if i > 0 && !keyLess(prevKey, e.Key) {
			return fmt.Errorf("machine: snapshot trace entries not in canonical order")
		}
		prevKey = e.Key
		cs.tentries = append(cs.tentries, e)
		cs.hadProg = append(cs.hadProg, hadProg)
	}
	return r.Err()
}

func keyLess(a, b trace.Key) bool {
	if a.BodyStart != b.BodyStart {
		return a.BodyStart < b.BodyStart
	}
	return a.BodyLen < b.BodyLen
}

// encodeStats writes a Stats block in struct-field order (the same order
// the JSON wire contract fixes in statsjson.go).
func encodeStats(w *snap.Writer, s *Stats) {
	w.I64(s.Cycles)
	w.Int(len(s.PerMPUCycles))
	for _, c := range s.PerMPUCycles {
		w.I64(c)
	}
	w.U64(s.Instructions)
	w.U64(s.MicroOps)
	w.U64(s.Rounds)
	w.U64(s.Ensembles)
	w.U64(s.Transfers)
	w.U64(s.Sends)
	w.U64(s.Offloads)
	w.U64(s.RecipeHits)
	w.U64(s.RecipeMisses)
	w.U64(s.PlaybackSpill)
	w.U64(s.TraceHits)
	w.U64(s.TraceMisses)
	w.U64(s.TraceFallbacks)
	w.U64(s.JITCompiles)
	w.U64(s.JITReplays)
	w.I64(s.ComputeCycles)
	w.I64(s.TransferCycles)
	w.I64(s.InterMPUCycles)
	w.I64(s.OffloadCycles)
	w.I64(s.DecodeStalls)
	w.F64(s.DatapathEnergyPJ)
	w.F64(s.FrontendStaticPJ)
	w.F64(s.FrontendDynamicPJ)
	w.F64(s.NoCEnergyPJ)
	w.F64(s.HostEnergyPJ)
}

func decodeStats(r *snap.Reader, s *Stats) error {
	s.Cycles = r.I64()
	n := r.Len(8)
	if err := r.Err(); err != nil {
		return err
	}
	if n > 0 {
		s.PerMPUCycles = make([]int64, n)
		for i := range s.PerMPUCycles {
			s.PerMPUCycles[i] = r.I64()
		}
	}
	s.Instructions = r.U64()
	s.MicroOps = r.U64()
	s.Rounds = r.U64()
	s.Ensembles = r.U64()
	s.Transfers = r.U64()
	s.Sends = r.U64()
	s.Offloads = r.U64()
	s.RecipeHits = r.U64()
	s.RecipeMisses = r.U64()
	s.PlaybackSpill = r.U64()
	s.TraceHits = r.U64()
	s.TraceMisses = r.U64()
	s.TraceFallbacks = r.U64()
	s.JITCompiles = r.U64()
	s.JITReplays = r.U64()
	s.ComputeCycles = r.I64()
	s.TransferCycles = r.I64()
	s.InterMPUCycles = r.I64()
	s.OffloadCycles = r.I64()
	s.DecodeStalls = r.I64()
	s.DatapathEnergyPJ = r.F64()
	s.FrontendStaticPJ = r.F64()
	s.FrontendDynamicPJ = r.F64()
	s.NoCEnergyPJ = r.F64()
	s.HostEnergyPJ = r.F64()
	return r.Err()
}

func encodeTraceEntry(w *snap.Writer, e trace.CacheEntry) {
	w.Int(e.Key.BodyStart)
	w.Int(e.Key.BodyLen)
	w.Bool(e.Classified)
	w.Bool(e.Eligible)
	w.Bool(e.Done)
	w.Bool(e.Tr != nil)
	if e.Tr == nil {
		return
	}
	t := e.Tr
	w.Int(len(t.Steps))
	for i := range t.Steps {
		s := &t.Steps[i]
		w.U8(uint8(s.Kind))
		w.U8(s.Arg)
		w.Int(len(s.Ops))
		for _, op := range s.Ops {
			w.U8(uint8(op.Kind))
			w.U16(uint16(op.Dst))
			w.U16(uint16(op.Dst2))
			w.U16(uint16(op.A))
			w.U16(uint16(op.B))
			w.U16(uint16(op.C))
		}
	}
	w.Int(t.EndPC)
	w.I64(t.Cycles)
	w.I64(t.Issue)
	w.U64(t.Instructions)
	w.I64(t.ComputeCycles)
	w.U64(t.MicroOpsPerVRF)
	w.F64(t.EnergyPerVRF)
	w.U64(t.Offloads)
	w.I64(t.OffloadCycles)
	w.F64(t.HostEnergyPJ)
	w.Int(len(t.Lookups))
	for _, l := range t.Lookups {
		w.U8(l.Opcode)
		w.Int(l.MicroOps)
	}
	w.U64(t.NumLookups)
	w.Int(len(t.TouchOrder))
	for _, op := range t.TouchOrder {
		w.U8(op)
	}
	w.Bool(t.Compiled)
	w.Bool(t.Prog != nil)
}

func decodeTraceEntry(r *snap.Reader, progLen int) (trace.CacheEntry, bool, error) {
	var e trace.CacheEntry
	e.Key.BodyStart = r.Int()
	e.Key.BodyLen = r.Int()
	e.Classified = r.Bool()
	e.Eligible = r.Bool()
	e.Done = r.Bool()
	hasTr := r.Bool()
	if err := r.Err(); err != nil {
		return e, false, err
	}
	if e.Key.BodyStart < 0 || e.Key.BodyLen < 0 || e.Key.BodyStart+e.Key.BodyLen > progLen {
		return e, false, fmt.Errorf("machine: snapshot trace key outside the program")
	}
	if !hasTr {
		return e, false, nil
	}
	t := &trace.Trace{}
	ns := r.Len(3)
	if err := r.Err(); err != nil {
		return e, false, err
	}
	t.Steps = make([]trace.Step, ns)
	for i := range t.Steps {
		s := &t.Steps[i]
		s.Kind = trace.StepKind(r.U8())
		s.Arg = r.U8()
		if r.Err() == nil {
			if s.Kind > trace.StepGetMask {
				return e, false, fmt.Errorf("machine: snapshot trace step kind %d unknown", s.Kind)
			}
			if (s.Kind == trace.StepSetMaskReg || s.Kind == trace.StepGetMask) && int(s.Arg) >= isa.NumRegs {
				return e, false, fmt.Errorf("machine: snapshot trace step register %d out of range", s.Arg)
			}
		}
		no := r.Len(11)
		if err := r.Err(); err != nil {
			return e, false, err
		}
		if no > 0 {
			s.Ops = make([]micro.ResolvedOp, no)
			for j := range s.Ops {
				op := &s.Ops[j]
				op.Kind = micro.Kind(r.U8())
				op.Dst = micro.Slot(r.U16())
				op.Dst2 = micro.Slot(r.U16())
				op.A = micro.Slot(r.U16())
				op.B = micro.Slot(r.U16())
				op.C = micro.Slot(r.U16())
				if r.Err() == nil {
					if err := validateResolvedOp(op); err != nil {
						return e, false, err
					}
				}
			}
		}
	}
	t.EndPC = r.Int()
	t.Cycles = r.I64()
	t.Issue = r.I64()
	t.Instructions = r.U64()
	t.ComputeCycles = r.I64()
	t.MicroOpsPerVRF = r.U64()
	t.EnergyPerVRF = r.F64()
	t.Offloads = r.U64()
	t.OffloadCycles = r.I64()
	t.HostEnergyPJ = r.F64()
	nl := r.Len(9)
	if err := r.Err(); err != nil {
		return e, false, err
	}
	if nl > 0 {
		t.Lookups = make([]controlpath.LookupPair, nl)
		for i := range t.Lookups {
			t.Lookups[i] = controlpath.LookupPair{Opcode: r.U8(), MicroOps: r.Int()}
		}
	}
	t.NumLookups = r.U64()
	nto := r.Len(1)
	if err := r.Err(); err != nil {
		return e, false, err
	}
	if nto > 0 {
		t.TouchOrder = make([]uint8, nto)
		for i := range t.TouchOrder {
			t.TouchOrder[i] = r.U8()
		}
	}
	t.Compiled = r.Bool()
	hadProg := r.Bool()
	if r.Err() == nil && hadProg && !t.Compiled {
		return e, false, fmt.Errorf("machine: snapshot trace has a JIT program without a concluded compilation")
	}
	e.Tr = t
	return e, hadProg, r.Err()
}

// validateResolvedOp rejects resolved micro-ops no recorder could have
// produced, mirroring micro.Resolve's guarantees: every slot addresses a
// real plane below the (never operand-addressable) mask slot, and the
// destinations never name a constant plane. Restored traces execute on the
// unchecked fast path, so the stream is where the checking happens.
func validateResolvedOp(op *micro.ResolvedOp) error {
	if int(op.Kind) >= micro.NumKinds {
		return fmt.Errorf("machine: snapshot micro-op kind %d unknown", op.Kind)
	}
	for _, s := range [...]micro.Slot{op.Dst, op.Dst2, op.A, op.B, op.C} {
		if s >= micro.SlotMask {
			return fmt.Errorf("machine: snapshot micro-op slot %d out of range", s)
		}
	}
	if op.Dst == micro.SlotZero || op.Dst == micro.SlotOne || op.Dst2 == micro.SlotOne {
		return fmt.Errorf("machine: snapshot micro-op writes a constant plane")
	}
	return nil
}
