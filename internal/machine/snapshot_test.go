package machine_test

// Snapshot/restore/resume parity difftest: preemption must be invisible in
// every reported number and every byte of architectural state. Each kernel
// runs twice — once uninterrupted, and once preempted at EVERY ensemble
// boundary, with the machine serialized, discarded, and restored into a
// freshly constructed machine (alternating worker counts, since snapshots
// are scheduler-portable) before each resume. The final Stats, their JSON
// rendering, and a final post-run snapshot must be byte-identical across
// the two runs. Every intermediate snapshot must also survive a
// restore→re-snapshot round trip byte-for-byte, which is the same
// canonical-encoding property FuzzSnapshotRoundTrip hammers with corrupted
// streams.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/isa"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

const (
	snapMPUs = 4
	snapVRFs = 2
)

// buildSnapKernelMachine instantiates an SPMD machine with kernel k loaded
// and its inputs written — the starting state both the uninterrupted and
// the preempted run share.
func buildSnapKernelMachine(t *testing.T, k *workloads.Kernel, cfg machine.Config) *machine.Machine {
	t.Helper()
	prog, addrs, err := workloads.BuildProgram(k, cfg.Spec, snapVRFs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	inputs := k.Gen(rng, snapVRFs*cfg.Spec.Lanes)
	for mpu := 0; mpu < cfg.NumMPUs; mpu++ {
		for reg, vals := range inputs {
			for v := 0; v < snapVRFs; v++ {
				lo := v * cfg.Spec.Lanes
				if err := m.WriteVector(mpu, addrs[v], reg, vals[lo:lo+cfg.Spec.Lanes]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return m
}

// resumePreempted drives m to completion while preempting before every
// segment: each Run call is immediately asked to yield at its first
// ensemble boundary, the machine is snapshotted and thrown away, and a
// fresh machine — built with the next worker count in the rotation, since
// the fingerprint deliberately excludes Workers — is restored from the
// bytes and resumed. Returns the final stats and the machine that produced
// them.
func resumePreempted(t *testing.T, name string, m *machine.Machine, cfg machine.Config) (*machine.Stats, *machine.Machine) {
	t.Helper()
	workerSeq := []int{4, 1, 2}
	for i := 0; ; i++ {
		if i > 1<<20 {
			t.Fatalf("%s: preemption loop made no progress", name)
		}
		m.Preempt()
		st, err := m.Run()
		if err == nil {
			return st, m
		}
		if !errors.Is(err, machine.ErrPreempted) {
			t.Fatalf("%s: run at boundary %d: %v", name, i, err)
		}
		data := m.Snapshot()
		cfg.Workers = workerSeq[i%len(workerSeq)]
		fresh, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Restore(data); err != nil {
			t.Fatalf("%s: restore at boundary %d: %v", name, i, err)
		}
		if again := fresh.Snapshot(); !bytes.Equal(again, data) {
			t.Fatalf("%s: snapshot round-trip diverged at boundary %d (%d vs %d bytes)", name, i, len(again), len(data))
		}
		m = fresh
	}
}

// requireSnapshotParity compares an uninterrupted run against a
// preempt-at-every-boundary run: Stats struct, JSON wire rendering, and a
// final post-run snapshot (which covers VRF contents, trace caches, recipe
// tables — the complete architectural state) must all be byte-identical.
func requireSnapshotParity(t *testing.T, name string, ref, got *machine.Stats, refM, gotM *machine.Machine) {
	t.Helper()
	if !reflect.DeepEqual(*ref, *got) {
		t.Errorf("%s: stats diverge between uninterrupted and preempted runs:\n ref: %+v\n got: %+v", name, *ref, *got)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, gotJSON) {
		t.Errorf("%s: stats JSON diverges:\n ref: %s\n got: %s", name, refJSON, gotJSON)
	}
	if !bytes.Equal(refM.Snapshot(), gotM.Snapshot()) {
		t.Errorf("%s: final architectural state diverges between uninterrupted and preempted runs", name)
	}
}

func TestSnapshotResumeParity(t *testing.T) {
	specs := backends.All()
	modes := []machine.Mode{machine.ModeMPU, machine.ModeBaseline}
	if testing.Short() {
		specs = specs[:1]
	}
	for _, spec := range specs {
		for _, mode := range modes {
			for _, k := range workloads.All() {
				name := fmt.Sprintf("%s/%s/%s", k.Name, spec.Name, mode)
				cfg := machine.Config{Spec: spec, Mode: mode, NumMPUs: snapMPUs, Workers: 1}
				refM := buildSnapKernelMachine(t, k, cfg)
				ref, err := refM.Run()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				preM := buildSnapKernelMachine(t, k, cfg)
				pre, preM := resumePreempted(t, name, preM, cfg)
				requireSnapshotParity(t, name, ref, pre, refM, preM)
			}
		}
	}
}

// TestSnapshotResumeParityRendezvous pins preemption across in-flight
// SEND/RECV waits, which the SPMD kernels never reach: mpu0 computes
// through a NOP prelude before sending, so mpu1 spends many preempted Run
// calls blocked in RECV — that wait state rides through snapshot, restore,
// and worker-count changes, and the rendezvous must still charge the same
// cycles as the uninterrupted run.
func TestSnapshotResumeParityRendezvous(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(strings.Repeat("NOP\n", 12))
	sb.WriteString("SEND mpu1\nMOVE rfh0 rfh0\nMEMCPY vrf0 r0 vrf0 r0\nMOVE_DONE\nSEND_DONE\n")
	sender, err := isa.Assemble(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := isa.Assemble("RECV mpu0\nNOP\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []machine.Mode{machine.ModeMPU, machine.ModeBaseline} {
		name := fmt.Sprintf("rendezvous/%s", mode)
		cfg := machine.Config{Spec: backends.RACER(), Mode: mode, NumMPUs: 2, Workers: 1}
		build := func() *machine.Machine {
			m, err := machine.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadProgram(0, sender); err != nil {
				t.Fatal(err)
			}
			if err := m.LoadProgram(1, receiver); err != nil {
				t.Fatal(err)
			}
			return m
		}
		refM := build()
		ref, err := refM.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pre, preM := resumePreempted(t, name, build(), cfg)
		requireSnapshotParity(t, name, ref, pre, refM, preM)
	}
}

// TestRestoreRejectsMismatchedMachine pins the fingerprint check: a
// snapshot must not restore into a machine with a different configuration,
// and a failed restore must leave the target untouched.
func TestRestoreRejectsMismatchedMachine(t *testing.T) {
	k := workloads.All()[0]
	cfg := machine.Config{Spec: backends.RACER(), Mode: machine.ModeMPU, NumMPUs: 2, Workers: 1}
	m := buildSnapKernelMachine(t, k, cfg)
	data := m.Snapshot()

	for _, alt := range []machine.Config{
		{Spec: backends.RACER(), Mode: machine.ModeBaseline, NumMPUs: 2, Workers: 1},
		{Spec: backends.RACER(), Mode: machine.ModeMPU, NumMPUs: 3, Workers: 1},
		{Spec: backends.RACER(), Mode: machine.ModeMPU, NumMPUs: 2, Workers: 1, NoJIT: true},
	} {
		other, err := machine.New(alt)
		if err != nil {
			t.Fatal(err)
		}
		before := other.Snapshot()
		if err := other.Restore(data); err == nil {
			t.Errorf("restore into %+v machine succeeded, want fingerprint mismatch", alt)
		} else if !strings.Contains(err.Error(), "fingerprint") {
			t.Errorf("restore into %+v machine: %v, want fingerprint mismatch", alt, err)
		}
		if !bytes.Equal(before, other.Snapshot()) {
			t.Errorf("failed restore into %+v machine mutated its state", alt)
		}
	}

	// Same config, different worker count: must restore cleanly.
	par, err := machine.New(machine.Config{Spec: cfg.Spec, Mode: cfg.Mode, NumMPUs: cfg.NumMPUs, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Restore(data); err != nil {
		t.Errorf("restore into parallel machine: %v", err)
	}
}

// TestRestoreRejectsCorruption flips a spread of bytes across a valid
// snapshot (every position would take minutes; the trailing checksum makes
// position irrelevant anyway) and requires a decode error from each. A
// restored-from-corruption machine must never hold state that does not
// round-trip.
func TestRestoreRejectsCorruption(t *testing.T) {
	cfg := machine.Config{Spec: backends.RACER(), Mode: machine.ModeMPU, NumMPUs: 2, Workers: 1}
	m := buildSnapKernelMachine(t, workloads.All()[0], cfg)
	m.Preempt()
	if _, err := m.Run(); !errors.Is(err, machine.ErrPreempted) {
		t.Fatalf("expected preemption, got %v", err)
	}
	data := m.Snapshot()
	tried, corrupted := 0, 0
	for i := 0; i < len(data); i += 1 + i/8 { // dense up front (header, fingerprint), sparse later
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		fresh, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tried++
		if err := fresh.Restore(mut); err != nil {
			corrupted++
		}
	}
	// The checksum alone catches every single-byte flip; the count pins
	// that no mutation silently restores.
	if corrupted != tried {
		t.Errorf("%d of %d single-byte corruptions restored without error", tried-corrupted, tried)
	}
}

// fuzzSpec is a deliberately small back end for the fuzzer: ragged lanes
// (48 % 64 ≠ 0) select the lazy per-register VRF layout, so snapshots stay
// a few KB — Go's mutator degrades badly on the ~140 KB streams the flat
// 64-lane directory produces — while still exercising every structural
// decode branch (allocation bitmaps, mid-ensemble state, recipe residency,
// installed traces). The flat word-dump layout is raw data with no decode
// structure to explore; TestSnapshotResumeParity covers it on every
// shipped back end.
func fuzzSpec() *backends.Spec {
	s := backends.RACER()
	s.Name = "fuzz48"
	s.Lanes = 48
	return s
}

// FuzzSnapshotRoundTrip asserts decode∘encode = identity: any byte stream
// Restore accepts must re-snapshot to exactly the input bytes. Combined
// with TestSnapshotResumeParity (encode∘decode = identity on real states),
// this pins the format as canonical — there is exactly one serialization
// of any machine state, so snapshot bytes are comparable for equality.
func FuzzSnapshotRoundTrip(f *testing.F) {
	cfg := machine.Config{Spec: fuzzSpec(), Mode: machine.ModeMPU, NumMPUs: 2, Workers: 1}
	prog, err := isa.Assemble(`
		COMPUTE rfh0 vrf0
		COMPUTE rfh0 vrf1
		ADD r0 r1 r2
		SUB r2 r1 r3
		COMPUTE_DONE
		NOP
	`)
	if err != nil {
		f.Fatal(err)
	}
	build := func() *machine.Machine {
		m, err := machine.New(cfg)
		if err != nil {
			f.Fatal(err)
		}
		if err := m.LoadAll(prog); err != nil {
			f.Fatal(err)
		}
		vals := make([]uint64, cfg.Spec.Lanes)
		for i := range vals {
			vals[i] = uint64(i*i + 1)
		}
		for mpu := 0; mpu < cfg.NumMPUs; mpu++ {
			for _, v := range []int{0, 1} {
				for _, reg := range []int{0, 1} {
					if err := m.WriteVector(mpu, controlpath.VRFAddr{RFH: 0, VRF: uint8(v)}, reg, vals); err != nil {
						f.Fatal(err)
					}
				}
			}
		}
		return m
	}
	m := build()
	f.Add(m.Snapshot()) // loaded, not yet run
	for i := 0; i < 1<<16; i++ {
		m.Preempt()
		if _, err := m.Run(); err == nil {
			break
		} else if !errors.Is(err, machine.ErrPreempted) {
			f.Fatal(err)
		}
		f.Add(m.Snapshot()) // every boundary: mid-ensemble rounds, warm caches
	}
	f.Add(m.Snapshot()) // completed run: full stats, installed traces
	f.Fuzz(func(t *testing.T, data []byte) {
		fresh, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Restore(data); err != nil {
			return // rejected streams are out of scope; acceptance is what binds
		}
		if again := fresh.Snapshot(); !bytes.Equal(again, data) {
			t.Fatalf("accepted %d-byte stream re-encoded to %d different bytes", len(data), len(again))
		}
	})
}
