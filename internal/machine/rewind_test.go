// Rewind tests live in the external test package for the same reason the
// Reset tests do: they drive the machine through internal/workloads.
package machine_test

import (
	"bytes"
	"testing"

	"mpu/internal/backends"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

// warmMachine builds a machine for the given engine flags, runs sobelx on it
// once (recording traces and warming the recipe table), and returns it with
// its config. sobelx is straight-line and fits both the playback buffer and
// the recipe table, so every later round of a rewound run replays.
func warmMachine(t testing.TB, noJIT, noTrace bool, vrfs int) *machine.Machine {
	t.Helper()
	spec := backends.RACER()
	cfg := workloads.RunConfig{
		Spec: spec, Mode: machine.ModeMPU, Seed: 1,
		TotalElements: spec.BaselineUnits * spec.Lanes * vrfs,
		MaxSimVRFs:    vrfs, ActiveVRFsOverride: 1, Workers: 1,
		NoJIT: noJIT, NoTrace: noTrace,
	}
	m, err := machine.New(workloads.MachineConfigFor(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workloads.RunOn(m, workloads.ByName("sobelx"), cfg); err != nil {
		t.Fatal(err)
	}
	return m
}

func rewindRun(t testing.TB, m *machine.Machine) *machine.Stats {
	t.Helper()
	m.Rewind()
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRewindSteadyState pins the resident-kernel regime Rewind models: the
// rewound run decodes against a warm recipe table and replays the traces
// the first run recorded — every round a hit, every replay through the
// closure chain compiled during the first run (no new lowering) — and the
// regime is a fixed point: a second rewound run reproduces the first's
// stats byte for byte. The engines must also agree in steady state exactly
// as they do cold (strategy counters aside).
func TestRewindSteadyState(t *testing.T) {
	const vrfs = 32
	jit := warmMachine(t, false, false, vrfs)
	w1 := rewindRun(t, jit)

	if w1.TraceMisses != 0 {
		t.Errorf("steady-state run recorded %d trace misses, want 0", w1.TraceMisses)
	}
	if w1.TraceHits == 0 {
		t.Error("steady-state run replayed no rounds from traces")
	}
	if w1.JITCompiles != 0 {
		t.Errorf("steady-state run lowered %d bodies; compilation belongs to the first run", w1.JITCompiles)
	}
	if w1.JITReplays == 0 {
		t.Error("steady-state run executed no compiled replays")
	}
	if w1.JITReplays > w1.TraceHits {
		t.Errorf("more JIT replays (%d) than trace hits (%d)", w1.JITReplays, w1.TraceHits)
	}

	w2 := rewindRun(t, jit)
	if b1, b2 := statsBytes(t, w1), statsBytes(t, w2); !bytes.Equal(b1, b2) {
		t.Errorf("steady state is not a fixed point:\nrun1: %s\nrun2: %s", b1, b2)
	}

	nojit := rewindRun(t, warmMachine(t, true, false, vrfs))
	notrace := rewindRun(t, warmMachine(t, false, true, vrfs))
	requireParity(t, "sobelx-rewound", w1, nojit, notrace)
}

// TestReplayAllocsEngineInvariant is the zero-allocation regression guard
// for the replay hot loop: a rewound run's allocations on the replay
// engines are the phase scheduler's per-round batching and nothing else,
// so /jit and /nojit must allocate identically — the compiled closure
// chains add zero allocations on top of the step-interpreted replay. A JIT
// that allocated per replayed round (a slice header, a boxed interface, a
// deferred mask copy) shifts the /jit number and fails here. The plain
// interpreter allocates strictly more (per-round interpretation work the
// trace engine exists to eliminate), so it bounds the other two from
// above. (trace.TestProgRunDoesNotAllocate pins the closure chains
// themselves at exactly zero.)
func TestReplayAllocsEngineInvariant(t *testing.T) {
	const vrfs = 32
	measure := func(noJIT, noTrace bool) float64 {
		m := warmMachine(t, noJIT, noTrace, vrfs)
		return testing.AllocsPerRun(10, func() {
			m.Rewind()
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	jit := measure(false, false)
	nojit := measure(true, false)
	notrace := measure(false, true)
	if jit != nojit {
		t.Errorf("compiled replay allocates differently from step replay: jit=%v nojit=%v", jit, nojit)
	}
	if jit > notrace {
		t.Errorf("replay allocates more than full interpretation: jit=%v notrace=%v", jit, notrace)
	}
}
