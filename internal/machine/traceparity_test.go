package machine_test

// Trace-engine parity difftest: the compile-once/replay-many engine must be
// invisible in every reported number. Each kernel and application runs twice
// — engine on (the default) and off (NoTrace) — on every back end in both
// modes, and the two Stats must match byte for byte, trace counters aside.

import (
	"fmt"
	"reflect"
	"testing"

	"mpu/internal/apps"
	"mpu/internal/backends"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

// parityVRFs simulates two VRFs per RFH so that ActiveVRFsOverride 1 forces
// at least two scheduling rounds on every back end — round one records the
// trace, round two replays it.
const parityVRFs = 16

// stripTrace clears the counters that describe simulator execution strategy
// rather than modeled hardware; everything else must match exactly.
func stripTrace(st *machine.Stats) machine.Stats {
	c := *st
	c.TraceHits, c.TraceMisses, c.TraceFallbacks = 0, 0, 0
	return c
}

func requireParity(t *testing.T, name string, on, off *machine.Stats) {
	t.Helper()
	a, b := stripTrace(on), stripTrace(off)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: stats diverge between trace engine on and off:\n on: %+v\noff: %+v", name, a, b)
	}
	if off.TraceHits+off.TraceMisses+off.TraceFallbacks != 0 {
		t.Errorf("%s: NoTrace run reported trace counters: %+v", name, off)
	}
}

func TestTraceParity(t *testing.T) {
	var totalHits uint64
	for _, spec := range backends.All() {
		for _, mode := range []machine.Mode{machine.ModeMPU, machine.ModeBaseline} {
			for _, k := range workloads.All() {
				name := fmt.Sprintf("%s/%s/%s", k.Name, spec.Name, mode)
				run := func(noTrace bool) *machine.Stats {
					res, err := workloads.Run(k, workloads.RunConfig{
						Spec:               spec,
						Mode:               mode,
						TotalElements:      spec.BaselineUnits * spec.Lanes * parityVRFs,
						Seed:               1,
						MaxSimVRFs:         parityVRFs,
						ActiveVRFsOverride: 1,
						NoTrace:            noTrace,
					})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					return res.Stats
				}
				on, off := run(false), run(true)
				requireParity(t, name, on, off)
				totalHits += on.TraceHits

				// Pin the fallback path: gcd's dynamic while loop (JUMP_COND)
				// must never replay from a trace.
				if k.Name == "gcd" {
					if on.TraceHits != 0 {
						t.Errorf("%s: dynamic-control-flow body replayed %d rounds from a trace", name, on.TraceHits)
					}
					if on.TraceFallbacks == 0 {
						t.Errorf("%s: dynamic-control-flow body reported no fallback rounds", name)
					}
				}
			}
		}
	}
	if totalHits == 0 {
		t.Error("no kernel round was replayed from a trace — the engine never engaged")
	}
}

func TestTraceParityApps(t *testing.T) {
	type appRun struct {
		name string
		run  func(spec *backends.Spec, mode machine.Mode, noTrace bool) (*apps.Result, error)
	}
	cases := []appRun{
		{"LLMEncode", func(spec *backends.Spec, mode machine.Mode, noTrace bool) (*apps.Result, error) {
			return apps.RunLLMEncode(apps.LLMEncodeConfig{Spec: spec, Mode: mode, Seed: 1, NoTrace: noTrace})
		}},
		{"BlackScholes", func(spec *backends.Spec, mode machine.Mode, noTrace bool) (*apps.Result, error) {
			return apps.RunBlackScholes(apps.BlackScholesConfig{Spec: spec, Mode: mode, Seed: 1, NoTrace: noTrace})
		}},
		{"EditDistance", func(spec *backends.Spec, mode machine.Mode, noTrace bool) (*apps.Result, error) {
			return apps.RunEditDistance(apps.EditDistanceConfig{Spec: spec, Mode: mode, Seed: 1, NoTrace: noTrace})
		}},
	}
	for _, spec := range backends.All() {
		for _, mode := range []machine.Mode{machine.ModeMPU, machine.ModeBaseline} {
			for _, c := range cases {
				name := fmt.Sprintf("%s/%s/%s", c.name, spec.Name, mode)
				on, err := c.run(spec, mode, false)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				off, err := c.run(spec, mode, true)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				requireParity(t, name, on.Stats, off.Stats)
			}
		}
	}
}
