package machine_test

// Trace-engine and trace-JIT parity difftest: neither the compile-once/
// replay-many engine nor the JIT'd closure-chain replay may be visible in
// any reported number. Each kernel and application runs three times — JIT
// (the default), NoJIT (trace engine with step-interpreted replay), and
// NoTrace (pure interpreter) — on every back end in both modes, and the
// three Stats must match byte for byte, engine-strategy counters aside.

import (
	"fmt"
	"reflect"
	"testing"

	"mpu/internal/apps"
	"mpu/internal/backends"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

// parityVRFs simulates two VRFs per RFH so that ActiveVRFsOverride 1 forces
// at least two scheduling rounds on every back end — round one records the
// trace, round two replays it.
const parityVRFs = 16

// engine selects which execution strategies to disable for one parity leg.
type engine struct {
	name    string
	noTrace bool
	noJIT   bool
}

var engines = []engine{
	{"jit", false, false},
	{"nojit", false, true},
	{"notrace", true, false},
}

// stripTrace clears the counters that describe simulator execution strategy
// rather than modeled hardware; everything else must match exactly.
func stripTrace(st *machine.Stats) machine.Stats {
	c := *st
	c.TraceHits, c.TraceMisses, c.TraceFallbacks = 0, 0, 0
	c.JITCompiles, c.JITReplays = 0, 0
	return c
}

func requireParity(t *testing.T, name string, jit, nojit, notrace *machine.Stats) {
	t.Helper()
	a, b, c := stripTrace(jit), stripTrace(nojit), stripTrace(notrace)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: stats diverge between JIT and step-interpreted replay:\n  jit: %+v\nnojit: %+v", name, a, b)
	}
	if !reflect.DeepEqual(b, c) {
		t.Errorf("%s: stats diverge between trace engine on and off:\n  nojit: %+v\nnotrace: %+v", name, b, c)
	}
	if notrace.TraceHits+notrace.TraceMisses+notrace.TraceFallbacks != 0 {
		t.Errorf("%s: NoTrace run reported trace counters: %+v", name, notrace)
	}
	if notrace.JITCompiles+notrace.JITReplays != 0 {
		t.Errorf("%s: NoTrace run reported JIT counters: %+v", name, notrace)
	}
	if nojit.JITCompiles+nojit.JITReplays != 0 {
		t.Errorf("%s: NoJIT run reported JIT counters: %+v", name, nojit)
	}
	if jit.JITReplays > jit.TraceHits {
		t.Errorf("%s: more JIT replays (%d) than trace hits (%d)", name, jit.JITReplays, jit.TraceHits)
	}
}

func TestTraceParity(t *testing.T) {
	var totalHits, totalJITReplays uint64
	for _, spec := range backends.All() {
		for _, mode := range []machine.Mode{machine.ModeMPU, machine.ModeBaseline} {
			for _, k := range workloads.All() {
				name := fmt.Sprintf("%s/%s/%s", k.Name, spec.Name, mode)
				run := func(e engine) *machine.Stats {
					res, err := workloads.Run(k, workloads.RunConfig{
						Spec:               spec,
						Mode:               mode,
						TotalElements:      spec.BaselineUnits * spec.Lanes * parityVRFs,
						Seed:               1,
						MaxSimVRFs:         parityVRFs,
						ActiveVRFsOverride: 1,
						NoTrace:            e.noTrace,
						NoJIT:              e.noJIT,
					})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					return res.Stats
				}
				jit, nojit, notrace := run(engines[0]), run(engines[1]), run(engines[2])
				requireParity(t, name, jit, nojit, notrace)
				totalHits += jit.TraceHits
				totalJITReplays += jit.JITReplays

				// Pin the fallback path: gcd's dynamic while loop (JUMP_COND)
				// must never replay from a trace.
				if k.Name == "gcd" {
					if jit.TraceHits != 0 {
						t.Errorf("%s: dynamic-control-flow body replayed %d rounds from a trace", name, jit.TraceHits)
					}
					if jit.TraceFallbacks == 0 {
						t.Errorf("%s: dynamic-control-flow body reported no fallback rounds", name)
					}
					if jit.JITCompiles != 0 {
						t.Errorf("%s: dynamic-control-flow body compiled %d JIT progs", name, jit.JITCompiles)
					}
				}
			}
		}
	}
	if totalHits == 0 {
		t.Error("no kernel round was replayed from a trace — the engine never engaged")
	}
	if totalJITReplays == 0 {
		t.Error("no kernel round ran a JIT'd closure chain — the JIT never engaged")
	}
}

func TestTraceParityApps(t *testing.T) {
	type appRun struct {
		name string
		run  func(spec *backends.Spec, mode machine.Mode, e engine) (*apps.Result, error)
	}
	cases := []appRun{
		{"LLMEncode", func(spec *backends.Spec, mode machine.Mode, e engine) (*apps.Result, error) {
			return apps.RunLLMEncode(apps.LLMEncodeConfig{Spec: spec, Mode: mode, Seed: 1, NoTrace: e.noTrace, NoJIT: e.noJIT})
		}},
		{"BlackScholes", func(spec *backends.Spec, mode machine.Mode, e engine) (*apps.Result, error) {
			return apps.RunBlackScholes(apps.BlackScholesConfig{Spec: spec, Mode: mode, Seed: 1, NoTrace: e.noTrace, NoJIT: e.noJIT})
		}},
		{"EditDistance", func(spec *backends.Spec, mode machine.Mode, e engine) (*apps.Result, error) {
			return apps.RunEditDistance(apps.EditDistanceConfig{Spec: spec, Mode: mode, Seed: 1, NoTrace: e.noTrace, NoJIT: e.noJIT})
		}},
	}
	for _, spec := range backends.All() {
		for _, mode := range []machine.Mode{machine.ModeMPU, machine.ModeBaseline} {
			for _, c := range cases {
				name := fmt.Sprintf("%s/%s/%s", c.name, spec.Name, mode)
				var st [3]*machine.Stats
				for i, e := range engines {
					r, err := c.run(spec, mode, e)
					if err != nil {
						t.Fatalf("%s/%s: %v", name, e.name, err)
					}
					st[i] = r.Stats
				}
				requireParity(t, name, st[0], st[1], st[2])
			}
		}
	}
}
