package machine

import (
	"testing"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/isa"
)

// narrowSpec is a hypothetical datapath with 32-VRF holders, used to test
// §VI-C binary portability.
func narrowSpec() *backends.Spec {
	s := backends.RACER()
	s.Name = "RACER-narrow"
	s.VRFsPerRFH = 32
	return s
}

func TestRemapIdentity(t *testing.T) {
	p := isa.Program{isa.Compute(0, 5), isa.Add(0, 1, 2), isa.ComputeDone()}
	out, err := Remap(p, 64, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if out[i] != p[i] {
			t.Fatalf("identity remap changed instr %d", i)
		}
	}
}

func TestRemapComputeAddresses(t *testing.T) {
	// rfh1.vrf40 under 64-VRF holders is linear VRF 104; under 32-VRF
	// holders that is rfh3.vrf8.
	p := isa.Program{isa.Compute(1, 40), isa.Add(0, 1, 2), isa.ComputeDone()}
	out, err := Remap(p, 64, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].A != 3 || out[0].B != 8 {
		t.Fatalf("remapped COMPUTE = rfh%d.vrf%d, want rfh3.vrf8", out[0].A, out[0].B)
	}
}

func TestRemapOutOfResources(t *testing.T) {
	// Linear VRF 504 needs RFH 15 under 32-VRF holders; only 8 exist.
	p := isa.Program{isa.Compute(7, 56), isa.Add(0, 1, 2), isa.ComputeDone()}
	if _, err := Remap(p, 64, 32, 8); err == nil {
		t.Fatal("remap beyond target resources accepted")
	}
}

func TestRemapIndivisible(t *testing.T) {
	p := isa.Program{isa.Compute(0, 0), isa.Nop(), isa.ComputeDone()}
	if _, err := Remap(p, 64, 48, 8); err == nil {
		t.Fatal("indivisible holder sizes accepted")
	}
}

func TestRemapBadParams(t *testing.T) {
	if _, err := Remap(nil, 0, 32, 8); err == nil {
		t.Fatal("zero holder size accepted")
	}
}

// TestRemapExecutesIdentically compiles a control-flow program against
// 64-VRF holders, remaps it to a 32-VRF-holder datapath, and checks the
// results match the original execution.
func TestRemapExecutesIdentically(t *testing.T) {
	src := `
		COMPUTE rfh0 vrf0
		COMPUTE rfh1 vrf40
		INIT0 r2
		INIT1 r3
		INIT0 r1
	loop:
		SUB r0 r3 r0
		INC r1 r1
		CMPGT r0 r2
		SETMASK cond
		JUMP_COND loop
		UNMASK
		COMPUTE_DONE
	`
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	vals := []uint64{3, 7, 1, 0}

	// Original hardware.
	orig, err := New(Config{Spec: backends.RACER(), NumMPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	orig.LoadAll(prog)
	origAddrs := []controlpath.VRFAddr{{RFH: 0, VRF: 0}, {RFH: 1, VRF: 40}}
	for _, a := range origAddrs {
		orig.WriteVector(0, a, 0, vals)
	}
	if _, err := orig.Run(); err != nil {
		t.Fatal(err)
	}

	// Narrow hardware: remap and rerun.
	remapped, err := Remap(prog, 64, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := New(Config{Spec: narrowSpec(), NumMPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.LoadAll(remapped); err != nil {
		t.Fatal(err)
	}
	// Linear VRF 0 → rfh0.vrf0; linear 104 → rfh3.vrf8.
	newAddrs := []controlpath.VRFAddr{{RFH: 0, VRF: 0}, {RFH: 3, VRF: 8}}
	for _, a := range newAddrs {
		nm.WriteVector(0, a, 0, vals)
	}
	if _, err := nm.Run(); err != nil {
		t.Fatal(err)
	}

	for i := range origAddrs {
		want, _ := orig.ReadVector(0, origAddrs[i], 1)
		got, _ := nm.ReadVector(0, newAddrs[i], 1)
		for l := range vals {
			if got[l] != want[l] {
				t.Fatalf("vrf %d lane %d: remapped %d, original %d", i, l, got[l], want[l])
			}
		}
	}
}

// TestRemapTransferEnsemble checks MOVE/MEMCPY rewriting when holders split.
func TestRemapTransferEnsemble(t *testing.T) {
	src := `
		MOVE rfh0 rfh1
		MEMCPY vrf40 r3 vrf41 r5
		MOVE_DONE
	`
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Remap(prog, 64, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The MOVE expands into two pair entries (one per 32-VRF sub-holder).
	moves := 0
	for _, in := range out {
		if in.Op == isa.MOVE {
			moves++
		}
	}
	if moves != 2 {
		t.Fatalf("MOVE header expanded to %d pairs, want 2", moves)
	}
	// vrf40/vrf41 live in sub-holder 1 → offsets 8/9.
	for _, in := range out {
		if in.Op == isa.MEMCPY {
			if in.A != 8 || in.C != 9 {
				t.Fatalf("MEMCPY remapped to vrf%d->vrf%d, want vrf8->vrf9", in.A, in.C)
			}
		}
	}
	// Functional check: run the remapped transfer on narrow hardware.
	nm, err := New(Config{Spec: narrowSpec(), NumMPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.LoadAll(out); err != nil {
		t.Fatal(err)
	}
	// Source rfh0.vrf40 → linear 40 → narrow rfh1.vrf8.
	nm.WriteVector(0, controlpath.VRFAddr{RFH: 1, VRF: 8}, 3, []uint64{123})
	if _, err := nm.Run(); err != nil {
		t.Fatal(err)
	}
	// Dest rfh1.vrf41 → linear 105 → narrow rfh3.vrf9.
	got, _ := nm.ReadVector(0, controlpath.VRFAddr{RFH: 3, VRF: 9}, 5)
	if got[0] != 123 {
		t.Fatalf("transferred value = %d, want 123", got[0])
	}
}

// TestRemapStraddlingMemcpyRejected: a MEMCPY whose source and destination
// land in different sub-holders cannot be remapped pair-uniformly.
func TestRemapStraddlingMemcpyRejected(t *testing.T) {
	src := `
		MOVE rfh0 rfh1
		MEMCPY vrf10 r0 vrf40 r0
		MOVE_DONE
	`
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Remap(prog, 64, 32, 8); err == nil {
		t.Fatal("straddling MEMCPY accepted")
	}
}

// TestRemapJumpTargetsShift: MOVE expansion must rewrite jump targets.
func TestRemapJumpTargetsShift(t *testing.T) {
	prog := isa.Program{
		isa.Move(0, 1),           // expands to 2 instrs
		isa.Memcpy(40, 0, 40, 1), // index 1 → 2
		isa.MoveDone(),           // index 2 → 3
		isa.Compute(0, 0),        // 3 → 4
		isa.CmpGt(0, 1),          // 4 → 5
		isa.SetMask(isa.RegCond), // 5 → 6
		isa.JumpCond(4),          // target 4 → 5
		isa.ComputeDone(),
	}
	out, err := Remap(prog, 64, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range out {
		if in.Op == isa.JUMPCOND && in.Imm != 5 {
			t.Fatalf("jump target remapped to %d, want 5", in.Imm)
		}
	}
}
