package machine

import "strconv"

// MarshalJSON encodes the statistics with an explicit, fixed field order and
// integer-exact counters (no float round-trip through encoding/json's
// reflection path for the uint64/int64 fields). The byte sequence is the
// service-layer determinism contract: the same run must serialize to the
// same bytes whether it was served cold, from a warm pool, batched, or
// concurrently, so mpud parity tests compare these bytes directly. Energies
// use the shortest float64 representation, which round-trips exactly.
//
// Decoding needs no custom counterpart: the keys match the struct tags, so
// json.Unmarshal restores every field (TestStatsJSONRoundTrip pins it).
func (s *Stats) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 640)
	b = append(b, '{')
	appendInt := func(key string, v int64) {
		if len(b) > 1 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, key...)
		b = append(b, '"', ':')
		b = strconv.AppendInt(b, v, 10)
	}
	appendUint := func(key string, v uint64) {
		if len(b) > 1 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, key...)
		b = append(b, '"', ':')
		b = strconv.AppendUint(b, v, 10)
	}
	appendFloat := func(key string, v float64) {
		if len(b) > 1 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, key...)
		b = append(b, '"', ':')
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
	}

	appendInt("cycles", s.Cycles)
	if len(b) > 1 {
		b = append(b, ',')
	}
	b = append(b, `"per_mpu_cycles":[`...)
	for i, c := range s.PerMPUCycles {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, c, 10)
	}
	b = append(b, ']')

	appendUint("instructions", s.Instructions)
	appendUint("micro_ops", s.MicroOps)
	appendUint("rounds", s.Rounds)
	appendUint("ensembles", s.Ensembles)
	appendUint("transfers", s.Transfers)
	appendUint("sends", s.Sends)
	appendUint("offloads", s.Offloads)
	appendUint("recipe_hits", s.RecipeHits)
	appendUint("recipe_misses", s.RecipeMisses)
	appendUint("playback_spill", s.PlaybackSpill)
	appendUint("trace_hits", s.TraceHits)
	appendUint("trace_misses", s.TraceMisses)
	appendUint("trace_fallbacks", s.TraceFallbacks)
	appendUint("jit_compiles", s.JITCompiles)
	appendUint("jit_replays", s.JITReplays)
	appendInt("compute_cycles", s.ComputeCycles)
	appendInt("transfer_cycles", s.TransferCycles)
	appendInt("inter_mpu_cycles", s.InterMPUCycles)
	appendInt("offload_cycles", s.OffloadCycles)
	appendInt("decode_stalls", s.DecodeStalls)
	appendFloat("datapath_energy_pj", s.DatapathEnergyPJ)
	appendFloat("frontend_static_pj", s.FrontendStaticPJ)
	appendFloat("frontend_dynamic_pj", s.FrontendDynamicPJ)
	appendFloat("noc_energy_pj", s.NoCEnergyPJ)
	appendFloat("host_energy_pj", s.HostEnergyPJ)
	b = append(b, '}')
	return b, nil
}
