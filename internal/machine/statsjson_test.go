package machine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// sampleStats exercises every field with values that would expose encoding
// bugs: counters above 2^53 (float64-lossy if they ever went through a
// number round-trip), negative-capable int64s, and energies whose shortest
// representation needs an exponent.
func sampleStats() *Stats {
	return &Stats{
		Cycles:            (1 << 60) + 3,
		PerMPUCycles:      []int64{12, (1 << 60) + 3, 7},
		Instructions:      (1 << 62) + 11,
		MicroOps:          987654321987654321,
		Rounds:            42,
		Ensembles:         7,
		Transfers:         3,
		Sends:             2,
		Offloads:          5,
		RecipeHits:        1 << 40,
		RecipeMisses:      9,
		PlaybackSpill:     1,
		TraceHits:         100,
		TraceMisses:       4,
		TraceFallbacks:    2,
		JITCompiles:       3,
		JITReplays:        97,
		ComputeCycles:     123456789,
		TransferCycles:    55,
		InterMPUCycles:    66,
		OffloadCycles:     77,
		DecodeStalls:      88,
		DatapathEnergyPJ:  1.2345678901234567e9,
		FrontendStaticPJ:  0.1 + 0.2, // 0.30000000000000004 — must survive
		FrontendDynamicPJ: 71.72,
		NoCEnergyPJ:       3.5e-7,
		HostEnergyPJ:      0,
	}
}

// TestStatsJSONRoundTrip pins that marshal → unmarshal → marshal is the
// identity on the byte level: the encoder's shortest-float and exact-integer
// forms must survive the stdlib decoder driven by the struct tags.
func TestStatsJSONRoundTrip(t *testing.T) {
	st := sampleStats()
	first, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip not byte-identical\nfirst:  %s\nsecond: %s", first, second)
	}
	if back.Instructions != st.Instructions || back.Cycles != st.Cycles {
		t.Fatalf("large counters corrupted: %+v", back)
	}
	if back.FrontendStaticPJ != st.FrontendStaticPJ {
		t.Fatalf("float field corrupted: got %v want %v", back.FrontendStaticPJ, st.FrontendStaticPJ)
	}
}

// TestStatsJSONFieldOrder pins the wire contract: fixed key order, starting
// with cycles and ending with host_energy_pj, nothing reflection-ordered.
func TestStatsJSONFieldOrder(t *testing.T) {
	b, err := json.Marshal(&Stats{})
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	keys := []string{
		"cycles", "per_mpu_cycles", "instructions", "micro_ops", "rounds",
		"ensembles", "transfers", "sends", "offloads", "recipe_hits",
		"recipe_misses", "playback_spill", "trace_hits", "trace_misses",
		"trace_fallbacks", "jit_compiles", "jit_replays",
		"compute_cycles", "transfer_cycles",
		"inter_mpu_cycles", "offload_cycles", "decode_stalls",
		"datapath_energy_pj", "frontend_static_pj", "frontend_dynamic_pj",
		"noc_energy_pj", "host_energy_pj",
	}
	pos := -1
	for _, k := range keys {
		i := strings.Index(s, `"`+k+`"`)
		if i < 0 {
			t.Fatalf("key %q missing from %s", k, s)
		}
		if i < pos {
			t.Fatalf("key %q out of order in %s", k, s)
		}
		pos = i
	}
	if !json.Valid(b) {
		t.Fatalf("encoder produced invalid JSON: %s", s)
	}
	var zero Stats
	if err := json.Unmarshal(b, &zero); err != nil {
		t.Fatalf("zero-value stats do not decode: %v", err)
	}
}
