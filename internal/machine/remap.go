package machine

import (
	"fmt"

	"mpu/internal/isa"
)

// Remap retargets an MPU binary compiled for RF holders of `from` vector
// register files onto hardware whose holders have `to` VRFs across rfhs RF
// holders (§VI-C: "we encode the compile-target VRFs-per-RFH parameter in
// the binary, and the MPU runtime can perform some degree of RFH/VRF-to-MPU
// remapping if the target hardware uses a different parameter, provided
// enough resources are available").
//
// VRFs are renumbered by their linear index rfh·from + vrf. When the source
// holders are larger than the target's, one source RFH spreads across
// several target RFHs — MOVE headers are expanded accordingly, which is
// valid because every MEMCPY of a transfer ensemble applies uniformly to
// each pair. Remapping fails if the program addresses more VRFs than the
// target provides, or if holder sizes are not divisible (partial-holder
// remapping would tear transfer ensembles apart).
func Remap(p isa.Program, from, to, rfhs int) (isa.Program, error) {
	return remap(p, from, to, rfhs)
}

func remap(p isa.Program, from, to, rfhs int) (isa.Program, error) {
	if from <= 0 || to <= 0 || rfhs <= 0 {
		return nil, fmt.Errorf("machine: remap parameters must be positive")
	}
	if from == to {
		out := make(isa.Program, len(p))
		copy(out, p)
		return out, nil
	}
	if from%to != 0 && to%from != 0 {
		return nil, fmt.Errorf("machine: cannot remap %d-VRF holders onto %d-VRF holders (not divisible)", from, to)
	}
	mapAddr := func(rfh, vrf uint8) (uint8, uint8, error) {
		linear := int(rfh)*from + int(vrf)
		nr, nv := linear/to, linear%to
		if nr >= rfhs {
			return 0, 0, fmt.Errorf("machine: remapped rfh%d.vrf%d needs RFH %d, target has %d", rfh, vrf, nr, rfhs)
		}
		return uint8(nr), uint8(nv), nil
	}
	var out isa.Program
	for i, in := range p {
		switch in.Op {
		case isa.COMPUTE:
			nr, nv, err := mapAddr(in.A, in.B)
			if err != nil {
				return nil, fmt.Errorf("instr %d: %w", i, err)
			}
			out = append(out, isa.Compute(int(nr), int(nv)))
		case isa.MOVE:
			if from > to {
				// One source holder spans k target holders: expand the
				// header pair-wise so relative VRF offsets stay aligned.
				k := from / to
				for j := 0; j < k; j++ {
					sr, _, err := mapAddr(in.A, uint8(j*to))
					if err != nil {
						return nil, fmt.Errorf("instr %d: %w", i, err)
					}
					dr, _, err := mapAddr(in.B, uint8(j*to))
					if err != nil {
						return nil, fmt.Errorf("instr %d: %w", i, err)
					}
					out = append(out, isa.Move(int(sr), int(dr)))
				}
			} else {
				// Holders grew: several old holders pack into one new RFH;
				// the pair maps to the holders containing offset 0.
				sr, _, err := mapAddr(in.A, 0)
				if err != nil {
					return nil, fmt.Errorf("instr %d: %w", i, err)
				}
				dr, _, err := mapAddr(in.B, 0)
				if err != nil {
					return nil, fmt.Errorf("instr %d: %w", i, err)
				}
				out = append(out, isa.Move(int(sr), int(dr)))
			}
		case isa.MEMCPY:
			if from > to {
				// The expanded MOVE header covers sub-holder j = vrf/to;
				// but each MEMCPY applies to EVERY pair, so the vrf index
				// must address the same relative slot in all of them.
				// That holds only when src and dst use the same offset.
				if int(in.A)/to != int(in.C)/to {
					return nil, fmt.Errorf("instr %d: MEMCPY vrf%d->vrf%d straddles split holders", i, in.A, in.C)
				}
				out = append(out, isa.Memcpy(int(in.A)%to, int(in.B), int(in.C)%to, int(in.D)))
			} else {
				// Old vrf indices are valid offsets inside the larger
				// holder only if every old holder mapped to offset 0 —
				// guaranteed when to%from == 0 and the MOVE used offset 0.
				out = append(out, in)
			}
		case isa.JUMP, isa.JUMPCOND:
			// Jump targets shift when MOVE headers expand; recompute after
			// the first pass if sizes changed.
			out = append(out, in)
		default:
			out = append(out, in)
		}
	}
	if len(out) != len(p) {
		// MOVE expansion moved instruction indices: rebuild jump targets by
		// mapping old indices to new ones.
		newIndex := make([]int, len(p)+1)
		idx := 0
		for i, in := range p {
			newIndex[i] = idx
			if in.Op == isa.MOVE && from > to {
				idx += from / to
			} else {
				idx++
			}
		}
		newIndex[len(p)] = idx
		j := 0
		for i, in := range p {
			n := 1
			if in.Op == isa.MOVE && from > to {
				n = from / to
			}
			if in.Op == isa.JUMP || in.Op == isa.JUMPCOND {
				tgt := int(in.Imm)
				if tgt < 0 || tgt > len(p) {
					return nil, fmt.Errorf("instr %d: jump target %d out of range", i, tgt)
				}
				out[j].Imm = int32(newIndex[tgt])
			}
			j += n
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("machine: remapped program invalid: %w", err)
	}
	return out, nil
}
