// Reset/reuse tests live in the external test package: they drive the
// machine through internal/workloads (which itself imports machine), so an
// in-package test file would form an import cycle.
package machine_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

// statsBytes serializes through the stable encoder; tests compare raw bytes
// so any drift in any field — including the float energies — fails loudly.
func statsBytes(t *testing.T, st *machine.Stats) []byte {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runKernelOn executes the named workload kernel on m (which must match
// spec/mode) and returns the stable stats bytes.
func runKernelOn(t *testing.T, m *machine.Machine, spec *backends.Spec, name string, elems int, seed int64) []byte {
	t.Helper()
	k := workloads.ByName(name)
	if k == nil {
		t.Fatalf("unknown kernel %q", name)
	}
	res, err := workloads.RunOn(m, k, workloads.RunConfig{
		Spec: spec, Mode: machine.ModeMPU, TotalElements: elems, Seed: seed, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return statsBytes(t, res.Stats)
}

// TestResetReuseMatchesFresh pins the pool-reuse contract: back-to-back
// loads on one machine (gcd, then relu, then gcd again) produce stats
// byte-identical to fresh-machine runs of the same requests. A stale recipe
// cache, RAS frame, compiled trace, or leftover VRF plane would each break
// a different field.
func TestResetReuseMatchesFresh(t *testing.T) {
	spec := backends.RACER()
	seq := []struct {
		kernel string
		elems  int
		seed   int64
	}{
		{"gcd", 256, 1},
		{"relu", 512, 2},
		{"gcd", 256, 1},
	}

	warm, err := machine.New(machine.Config{Spec: spec, Mode: machine.ModeMPU, NumMPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, rq := range seq {
		got := runKernelOn(t, warm, spec, rq.kernel, rq.elems, rq.seed)
		fresh, err := machine.New(machine.Config{Spec: spec, Mode: machine.ModeMPU, NumMPUs: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := runKernelOn(t, fresh, spec, rq.kernel, rq.elems, rq.seed)
		if !bytes.Equal(got, want) {
			t.Fatalf("request %d (%s): warm-machine stats diverge from fresh\nwarm:  %s\nfresh: %s",
				i, rq.kernel, got, want)
		}
	}
}

// TestResetClearsArchitecturalState pins the functional half: a register
// written before Reset must read back zero afterwards, like a fresh machine.
func TestResetClearsArchitecturalState(t *testing.T) {
	spec := backends.RACER()
	m, err := machine.New(machine.Config{Spec: spec, Mode: machine.ModeMPU, NumMPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := controlpath.VRFAddr{RFH: 0, VRF: 0}
	vals := make([]uint64, spec.Lanes)
	for i := range vals {
		vals[i] = uint64(i + 1)
	}
	if err := m.WriteVector(0, a, 0, vals); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	got, err := m.ReadVector(0, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("lane %d: register survived Reset with %d", i, v)
		}
	}
}
