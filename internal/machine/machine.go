// Package machine executes MPU ISA binaries on a simulated chip: one or more
// MPUs in front of a PUM datapath back end, connected by an on-chip mesh.
// It is the Go equivalent of the paper's MASTODON simulator — functional
// execution happens on bit planes through the real micro-op recipes, while
// per-event costs (micro-op timing, decode stalls, scheduler rounds, NoC
// hops, host round trips) accumulate into Stats.
//
// Two modes mirror the paper's configurations: ModeMPU runs control flow in
// the MPU control path; ModeBaseline models the original datapaths, which
// must offload every data-driven control decision to the external host CPU.
package machine

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/hostcpu"
	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/lint/comm"
	"mpu/internal/micro"
	"mpu/internal/noc"
	"mpu/internal/recipe"
	"mpu/internal/sweep"
	"mpu/internal/trace"
	"mpu/internal/vrf"
)

// Sentinel fault classes, matchable with errors.Is. They tag exactly the
// runtime guards the static linter (internal/lint) proves unreachable for
// programs with no Error findings — the lint-soundness fuzz oracle in
// internal/isa keys on them. Config-dependent failures (deadlock, runaway
// loops, return-stack overflow from deep recursion, SEND to an MPU that was
// not instantiated) are deliberately not tagged.
var (
	// ErrEnsembleFault: ensemble bracketing or context violations — an
	// instruction outside any ensemble, an illegal instruction inside a
	// compute/transfer/SEND block, a missing *_DONE footer, or a RETURN
	// popping an empty return-address stack.
	ErrEnsembleFault = errors.New("ensemble structure fault")
	// ErrCapacityFault: an RFH/VRF id beyond the back-end spec's geometry.
	ErrCapacityFault = errors.New("capacity fault")
)

// Mode selects who executes control flow.
type Mode int

// Execution modes.
const (
	// ModeMPU: the MPU control path executes everything on chip.
	ModeMPU Mode = iota
	// ModeBaseline: the original datapath; JUMP_COND, JUMP, RETURN and
	// SEND coordination are CPU round trips.
	ModeBaseline
)

func (m Mode) String() string {
	if m == ModeBaseline {
		return "Baseline"
	}
	return "MPU"
}

// Config assembles a machine.
type Config struct {
	Spec    *backends.Spec
	Mode    Mode
	NumMPUs int // instantiated MPUs (≤ Spec.MPUs); 0 means 1

	Host   *hostcpu.Model
	Recipe controlpath.RecipeCacheConfig

	// ActiveVRFsOverride, if positive, replaces the spec's thermal
	// activation limit (footnote 2's RACER 2-active-VRF study).
	ActiveVRFsOverride int

	// ComputeScale multiplies compute-cycle and datapath-energy charges;
	// experiments use it for the Baseline stencil Toeplitz inflation
	// (§VIII-B: ~4× application footprint). 0 means 1.
	ComputeScale float64

	// MaxSteps bounds instruction executions per scheduling round to catch
	// runaway loops. 0 means the default of 50M.
	MaxSteps int

	// Strict makes LoadProgram reject programs the static linter flags
	// with Error findings (checked against Spec), and Run escalate any
	// ensemble or capacity fault that slips through to a lint-soundness
	// violation — loaded programs proved clean must not trip those guards.
	Strict bool

	// Workers bounds the scheduler goroutines that execute cores
	// concurrently between communication points. 0 means one per CPU
	// (runtime.GOMAXPROCS), 1 forces the sequential scheduler; the count is
	// capped at NumMPUs either way. Statistics are byte-identical at any
	// worker count — callers nesting machines inside a sweep should divide
	// GOMAXPROCS between the two levels (see sweep.MachineWorkers).
	Workers int

	// NoTrace disables the ensemble trace engine, forcing every scheduling
	// round through the interpreter (the escape hatch behind cmd flags and
	// the parity difftest). The engine is also disabled while Trace is set,
	// so the execution log keeps its per-instruction fidelity.
	NoTrace bool

	// NoJIT keeps the trace engine but disables JIT compilation of
	// installed traces, so replayed rounds interpret the step stream
	// instead of running the fused closure chain (the -nojit escape hatch
	// and the JIT parity difftest's reference engine). Implied by NoTrace:
	// without traces there is nothing to compile.
	NoJIT bool

	// Trace, when non-nil, receives a line per architectural event
	// (ensemble activation, scheduling round, control transfer, DTC and
	// inter-MPU traffic) — the MASTODON-style execution log.
	Trace io.Writer
}

// Stats aggregates the costs of one Run.
//
// The JSON form (see MarshalJSON in statsjson.go) is a stable wire contract
// shared by the mpud service responses, mpurun -json, and the experiment
// exports; the tags below give json.Unmarshal the matching field names.
type Stats struct {
	Cycles       int64   `json:"cycles"`         // makespan: max cycle count across MPUs
	PerMPUCycles []int64 `json:"per_mpu_cycles"` // per-MPU clocks

	Instructions  uint64 `json:"instructions"` // dynamic ISA instructions executed (per round)
	MicroOps      uint64 `json:"micro_ops"`    // micro-ops issued across all MPUs and rounds
	Rounds        uint64 `json:"rounds"`       // scheduler activation rounds (Fig. 10 replays)
	Ensembles     uint64 `json:"ensembles"`    // compute ensembles executed
	Transfers     uint64 `json:"transfers"`    // MEMCPY pair-copies performed
	Sends         uint64 `json:"sends"`        // inter-MPU send blocks completed
	Offloads      uint64 `json:"offloads"`     // Baseline CPU round trips
	RecipeHits    uint64 `json:"recipe_hits"`
	RecipeMisses  uint64 `json:"recipe_misses"`
	PlaybackSpill uint64 `json:"playback_spill"` // ensemble bodies exceeding the playback buffer

	// Trace-engine round accounting. Every scheduling round increments
	// exactly one of these while the engine is enabled: TraceHits replayed
	// from a compiled trace, TraceMisses interpreted under the recorder
	// that compiles one, TraceFallbacks interpreted because the body is
	// untraceable (dynamic control flow, playback spill, recording abort)
	// or the recipe cache could not guarantee all-hit decode. They describe
	// simulator execution strategy, not modeled hardware, and are excluded
	// from trace-on/off parity.
	TraceHits      uint64 `json:"trace_hits"`
	TraceMisses    uint64 `json:"trace_misses"`
	TraceFallbacks uint64 `json:"trace_fallbacks"`

	// Trace-JIT accounting, same simulator-strategy caveat as the trace
	// counters (excluded from parity): JITCompiles counts traces lowered
	// to fused closure chains at install time, JITReplays the replayed
	// rounds that ran a compiled chain instead of interpreting the step
	// stream (every JIT replay is also a TraceHit). Only the closure-
	// compile path and the replay loop write them (enforced by
	// cmd/repolint's jit-counter-mutation rule).
	JITCompiles uint64 `json:"jit_compiles"`
	JITReplays  uint64 `json:"jit_replays"`

	ComputeCycles  int64 `json:"compute_cycles"`   // summed across MPUs
	TransferCycles int64 `json:"transfer_cycles"`  // on-chip DTC transfers
	InterMPUCycles int64 `json:"inter_mpu_cycles"` // NoC message passing
	OffloadCycles  int64 `json:"offload_cycles"`   // off-chip CPU interaction (Baseline)
	DecodeStalls   int64 `json:"decode_stalls"`    // recipe-table misses

	DatapathEnergyPJ  float64 `json:"datapath_energy_pj"`
	FrontendStaticPJ  float64 `json:"frontend_static_pj"`
	FrontendDynamicPJ float64 `json:"frontend_dynamic_pj"`
	NoCEnergyPJ       float64 `json:"noc_energy_pj"`
	HostEnergyPJ      float64 `json:"host_energy_pj"`
}

// TimeSeconds converts the makespan to seconds at the back-end clock.
func (s *Stats) TimeSeconds(clockGHz float64) float64 {
	return float64(s.Cycles) / (clockGHz * 1e9)
}

// TotalEnergyPJ sums every energy component.
func (s *Stats) TotalEnergyPJ() float64 {
	return s.DatapathEnergyPJ + s.FrontendStaticPJ + s.FrontendDynamicPJ +
		s.NoCEnergyPJ + s.HostEnergyPJ
}

// Machine is a configured chip ready to load and run binaries.
type Machine struct {
	cfg    Config
	mesh   *noc.Mesh
	nocCfg noc.Config
	mpus   []*core
	stats  Stats
	limit  int // effective active VRFs per RFH

	// expands memoizes recipe expansion per dynamic instruction. A dynamic
	// loop re-executes the same instruction thousands of times across
	// rounds and replays; re-running the gate-level expander each time
	// dominated simulation wall clock. The cache is per machine (the
	// capability set is fixed at construction), so concurrent sweep cells
	// share nothing. It is the one piece of machine state cores touch from
	// concurrent scheduler goroutines, hence the mutex; entries are
	// immutable once published, so lookups hand out shared pointers.
	expandsMu sync.Mutex
	expands   map[isa.Instr]*expandEntry

	// jitMemo caches JIT-compiled closure chains by step-stream content,
	// under the same contract that lets expands survive Reset: a compiled
	// program is a pure function of the recorded steps and the lane
	// geometry, and charges nothing. A pooled machine that re-records a
	// body after Reset, or several cores recording the same SPMD body,
	// adopt one compilation instead of lowering per micro-op again.
	jitMemo *trace.ProgMemo

	// preempt is the cooperative-yield request flag (Preempt/ErrPreempted,
	// preempt.go). It is the only machine field a foreign goroutine writes
	// while Run executes, hence the atomic; cores poll it between
	// instructions and between ensemble rounds.
	preempt atomic.Bool
	// midRun records that the previous Run returned ErrPreempted: the next
	// Run resumes the paused program instead of starting a fresh account
	// (per-core local Stats are preserved, not zeroed). Cleared by Run,
	// Reset, Rewind, and Restore.
	midRun bool
}

// expandEntry pairs a recipe expansion with its slot-resolved form, so the
// body interpreter and the trace engine share one decode.
type expandEntry struct {
	ops  []micro.Op
	rops []micro.ResolvedOp
}

// core is one MPU: precoder state, compute controller, DTC, and its VRFs.
type core struct {
	id      int
	m       *Machine
	prog    isa.Program
	pc      int
	cycles  int64
	issue   int64 // cycles spent issuing micro-ops (front-end dynamic energy)
	vrfs    map[controlpath.VRFAddr]*vrf.VRF
	ras     *controlpath.ReturnStack
	rcache  *controlpath.RecipeCache
	pbuf    *controlpath.PlaybackBuffer
	done    bool
	blocked bool
	// local accumulates this core's share of the run statistics. Between
	// communication points each core charges only its own local Stats, so
	// scheduler goroutines never contend; Run merges the locals in
	// ascending core-ID order (reduceStats) once every core has finished.
	// Rendezvous costs are charged to the *sender's* local during the
	// single-threaded barrier phase, which keeps every core's charge
	// sequence — including the order of float additions — independent of
	// the worker count.
	local Stats
	// pending rendezvous state
	sendDst  int
	recvSrc  int
	waitSend bool
	waitRecv bool

	// decode caches the expansion entry per body pc (reset on program
	// load), replacing a struct-keyed map probe per interpreted datapath
	// instruction with an index load.
	decode []*expandEntry
	// traces holds the core's compiled ensemble bodies.
	traces *trace.Cache
	// hdr, act, and tm are per-core scratch reused across ensembles to keep
	// header scans, round activation, and DTC target maps allocation-free.
	// While ens.active, hdr doubles as live state: it holds the paused
	// ensemble's activation list until the rounds finish, and snapshots
	// serialize it alongside ens.
	hdr []controlpath.VRFAddr
	act []*vrf.VRF
	tm  controlpath.TargetMap

	// ens is the resumable mid-ensemble position after a preemption yield
	// (preempt.go); seg counts this Run call's completed execution units so
	// a yield never fires before the core has made progress. Both are
	// serialized machine state: only the run path, Run, Reset, Rewind, and
	// Restore may write them (cmd/repolint's snapshot-state rule).
	ens ensState
	seg int64
}

// New builds a machine. NumMPUs defaults to 1.
func New(cfg Config) (*Machine, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("machine: nil back-end spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumMPUs == 0 {
		cfg.NumMPUs = 1
	}
	if cfg.NumMPUs < 0 || cfg.NumMPUs > cfg.Spec.MPUs {
		return nil, fmt.Errorf("machine: %d MPUs outside [1,%d]", cfg.NumMPUs, cfg.Spec.MPUs)
	}
	if cfg.Host == nil {
		cfg.Host = hostcpu.Default()
	}
	if cfg.Recipe.CapacityMicroOps == 0 {
		cfg.Recipe = controlpath.DefaultRecipeCacheConfig()
	}
	if cfg.ComputeScale == 0 {
		cfg.ComputeScale = 1
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 50_000_000
	}
	nc := noc.Default(cfg.NumMPUs)
	mesh, err := noc.New(nc)
	if err != nil {
		return nil, err
	}
	limit := cfg.Spec.ActiveVRFsPerRFH
	if cfg.ActiveVRFsOverride > 0 {
		limit = cfg.ActiveVRFsOverride
		if limit > cfg.Spec.VRFsPerRFH {
			limit = cfg.Spec.VRFsPerRFH
		}
	}
	m := &Machine{cfg: cfg, mesh: mesh, nocCfg: nc, limit: limit,
		expands: map[isa.Instr]*expandEntry{},
		jitMemo: trace.NewProgMemo()}
	for i := 0; i < cfg.NumMPUs; i++ {
		m.mpus = append(m.mpus, &core{
			id:     i,
			m:      m,
			vrfs:   map[controlpath.VRFAddr]*vrf.VRF{},
			ras:    controlpath.NewReturnStack(64),
			rcache: controlpath.NewRecipeCache(cfg.Recipe),
			pbuf:   controlpath.NewPlaybackBuffer(),
			traces: trace.NewCache(),
			done:   true, // no program yet
		})
	}
	return m, nil
}

// traceEnabled reports whether the compile-once/replay-many engine is on:
// it is the default, switched off by NoTrace and while an execution log is
// being written (the log must show every interpreted instruction).
func (m *Machine) traceEnabled() bool {
	return !m.cfg.NoTrace && m.cfg.Trace == nil
}

// Spec returns the back-end spec the machine was built with.
func (m *Machine) Spec() *backends.Spec { return m.cfg.Spec }

// Mode returns the configured execution mode.
func (m *Machine) Mode() Mode { return m.cfg.Mode }

// NumMPUs returns the instantiated MPU count.
func (m *Machine) NumMPUs() int { return len(m.mpus) }

// LoadProgram installs a binary into one MPU's instruction storage unit.
func (m *Machine) LoadProgram(mpu int, p isa.Program) error {
	if mpu < 0 || mpu >= len(m.mpus) {
		return fmt.Errorf("machine: MPU %d out of range [0,%d)", mpu, len(m.mpus))
	}
	if err := p.Validate(); err != nil {
		return err
	}
	const isuBytes = 2 << 20 // Table III: 2 MB instruction storage
	if p.BinarySize() > isuBytes {
		return fmt.Errorf("machine: binary of %d bytes exceeds the %d-byte ISU", p.BinarySize(), isuBytes)
	}
	if m.cfg.Strict {
		if err := lint.Lint(p, lint.Options{Spec: m.cfg.Spec}).Err(); err != nil {
			return fmt.Errorf("machine: strict mode rejected the program: %w", err)
		}
	}
	c := m.mpus[mpu]
	c.prog = p
	c.pc = 0
	c.done = len(p) == 0
	// A new binary invalidates everything keyed by pc.
	c.decode = make([]*expandEntry, len(p))
	c.traces.Reset()
	return nil
}

// LoadAll installs the same binary on every MPU (SPMD execution).
func (m *Machine) LoadAll(p isa.Program) error {
	for i := range m.mpus {
		if err := m.LoadProgram(i, p); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) checkAddr(a controlpath.VRFAddr) error {
	if int(a.RFH) >= m.cfg.Spec.RFHsPerMPU {
		return fmt.Errorf("machine: rfh%d out of range [0,%d) (%w)", a.RFH, m.cfg.Spec.RFHsPerMPU, ErrCapacityFault)
	}
	if int(a.VRF) >= m.cfg.Spec.VRFsPerRFH {
		return fmt.Errorf("machine: vrf%d out of range [0,%d) (%w)", a.VRF, m.cfg.Spec.VRFsPerRFH, ErrCapacityFault)
	}
	return nil
}

func (c *core) vrfAt(a controlpath.VRFAddr) *vrf.VRF {
	v, ok := c.vrfs[a]
	if !ok {
		v = vrf.New(c.m.cfg.Spec.Lanes)
		c.vrfs[a] = v
	}
	return v
}

// WriteVector loads host data into a vector register (outside kernel time).
func (m *Machine) WriteVector(mpu int, a controlpath.VRFAddr, reg int, vals []uint64) error {
	if mpu < 0 || mpu >= len(m.mpus) {
		return fmt.Errorf("machine: MPU %d out of range", mpu)
	}
	if err := m.checkAddr(a); err != nil {
		return err
	}
	if reg < 0 || reg >= isa.NumRegs {
		return fmt.Errorf("machine: register %d out of range", reg)
	}
	m.mpus[mpu].vrfAt(a).WriteReg(reg, vals)
	return nil
}

// ReadVector reads a vector register back to the host.
func (m *Machine) ReadVector(mpu int, a controlpath.VRFAddr, reg int) ([]uint64, error) {
	if mpu < 0 || mpu >= len(m.mpus) {
		return nil, fmt.Errorf("machine: MPU %d out of range", mpu)
	}
	if err := m.checkAddr(a); err != nil {
		return nil, err
	}
	if reg < 0 || reg >= isa.NumRegs {
		return nil, fmt.Errorf("machine: register %d out of range", reg)
	}
	return m.mpus[mpu].vrfAt(a).ReadReg(reg), nil
}

// Run executes all loaded programs to completion and returns the statistics.
// MPUs run concurrently in simulated time, synchronizing at SEND/RECV
// rendezvous points.
//
// The scheduler is phase-based: in the run phase every runnable core
// executes until it finishes or blocks on a rendezvous — cores are
// independent between communication points, so with Config.Workers > 1 the
// run phase fans them out across a bounded goroutine pool; in the barrier
// phase (always single-threaded) pending SEND/RECV pairs are matched and
// completed in ascending sender-ID order. Each core's execution — and thus
// its charge sequence into its local Stats — depends only on its own
// program and the deterministic barrier sequence, so the reduced statistics
// are byte-identical at any worker count.
func (m *Machine) Run() (*Stats, error) {
	workers := m.schedWorkers()
	if !m.midRun {
		for _, c := range m.mpus {
			c.local = Stats{}
		}
	}
	m.midRun = false
	for _, c := range m.mpus {
		c.seg = 0
	}
	runnable := make([]*core, 0, len(m.mpus))
	for {
		runnable = runnable[:0]
		allDone := true
		for _, c := range m.mpus {
			if c.done {
				continue
			}
			allDone = false
			if !c.blocked {
				runnable = append(runnable, c)
			}
		}
		if allDone {
			break
		}
		progress := len(runnable) > 0
		// Run phase. On error both schedules surface the diagnostic of the
		// lowest-ID failing core: runnable is in ID order, and sweep.Each
		// reports the lowest failing index.
		if workers <= 1 || len(runnable) == 1 {
			for _, c := range runnable {
				if err := c.run(); err != nil {
					return nil, m.faultf(fmt.Errorf("mpu%d: %w", c.id, err))
				}
			}
		} else if err := sweep.Each(workers, len(runnable), func(i int) error {
			if err := runnable[i].run(); err != nil {
				return fmt.Errorf("mpu%d: %w", runnable[i].id, err)
			}
			return nil
		}); err != nil {
			return nil, m.faultf(err)
		}
		// Barrier phase: match pending rendezvous. A blocked sender names
		// its destination, so the only core that can complete it is
		// mpus[s.sendDst] (validated when SEND executed) — an O(n) scan
		// over senders instead of an O(n²) sender×receiver product.
		for _, s := range m.mpus {
			if !s.blocked || !s.waitSend {
				continue
			}
			r := m.mpus[s.sendDst]
			if r.blocked && r.waitRecv && r.recvSrc == s.id {
				if err := m.rendezvous(s, r); err != nil {
					return nil, m.faultf(err)
				}
				progress = true
			}
		}
		// Honor a pending preemption request after the barrier phase: every
		// runnable core has reached a consistent pause point (yielded at an
		// ensemble boundary, finished, or blocked on rendezvous). The check
		// precedes the deadlock test so a pause request on a stuck machine
		// defers the diagnosis to the resuming Run rather than masking it.
		if m.preempt.Load() {
			stillRunning := false
			for _, c := range m.mpus {
				if !c.done {
					stillRunning = true
					break
				}
			}
			if stillRunning {
				m.preempt.Store(false)
				m.midRun = true
				return nil, ErrPreempted
			}
		}
		if !progress {
			return nil, fmt.Errorf("machine: deadlock — no MPU can make progress (check SEND/RECV pairing and the lower-ID-sends-first rule)\n%s",
				comm.FormatWaiters(m.waiters()))
		}
	}
	// A request that raced the run's completion is consumed, not carried
	// into the next Run.
	m.preempt.Store(false)
	return m.reduceStats(), nil
}

// waiters snapshots every blocked core's pending rendezvous for the deadlock
// diagnostic: who waits on whom, at which pc. Built in ascending core order
// from the single-threaded barrier phase, so the list is identical at any
// worker count.
func (m *Machine) waiters() []comm.Waiter {
	var ws []comm.Waiter
	for _, c := range m.mpus {
		if !c.blocked {
			continue
		}
		switch {
		case c.waitSend:
			ws = append(ws, comm.Waiter{Core: c.id, Op: "SEND", Partner: c.sendDst, PC: c.pc})
		case c.waitRecv:
			ws = append(ws, comm.Waiter{Core: c.id, Op: "RECV", Partner: c.recvSrc, PC: c.pc})
		}
	}
	return ws
}

// schedWorkers resolves the effective run-phase worker count: an explicit
// Config.Workers wins, 0 means one per CPU, and the result is capped at the
// core count. A machine writing an execution log always runs sequentially so
// the log lines keep their deterministic interleaving.
func (m *Machine) schedWorkers() int {
	w := m.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(m.mpus) {
		w = len(m.mpus)
	}
	if m.cfg.Trace != nil {
		w = 1
	}
	return w
}

// reduceStats merges the per-core statistics into the machine totals in
// ascending core-ID order — the only place m.stats is written (enforced by
// cmd/repolint's machine-stats-mutation rule). The fixed reduction order
// makes the float energy sums bit-for-bit reproducible across worker counts,
// the same discipline runBody's round-local accumulation applies within a
// core.
func (m *Machine) reduceStats() *Stats {
	m.stats = Stats{}
	st := &m.stats
	for _, c := range m.mpus {
		l := &c.local
		st.PerMPUCycles = append(st.PerMPUCycles, c.cycles)
		if c.cycles > st.Cycles {
			st.Cycles = c.cycles
		}
		st.Instructions += l.Instructions
		st.MicroOps += l.MicroOps
		st.Rounds += l.Rounds
		st.Ensembles += l.Ensembles
		st.Transfers += l.Transfers
		st.Sends += l.Sends
		st.Offloads += l.Offloads
		st.RecipeHits += c.rcache.Hits
		st.RecipeMisses += c.rcache.Misses
		st.PlaybackSpill += c.pbuf.Overflows
		st.TraceHits += l.TraceHits
		st.TraceMisses += l.TraceMisses
		st.TraceFallbacks += l.TraceFallbacks
		st.JITCompiles += l.JITCompiles
		st.JITReplays += l.JITReplays
		st.ComputeCycles += l.ComputeCycles
		st.TransferCycles += l.TransferCycles
		st.InterMPUCycles += l.InterMPUCycles
		st.OffloadCycles += l.OffloadCycles
		st.DecodeStalls += c.rcache.StallCycles
		st.DatapathEnergyPJ += l.DatapathEnergyPJ
		st.NoCEnergyPJ += l.NoCEnergyPJ
		st.HostEnergyPJ += l.HostEnergyPJ
		st.FrontendDynamicPJ += float64(c.issue) * frontendDynamicPJPerCycle
	}
	if m.cfg.Mode == ModeMPU {
		st.FrontendStaticPJ = float64(len(m.mpus)) * frontendStaticPJPerCycle * float64(st.Cycles)
	} else {
		// Baseline: the host is live for the whole run, and the original
		// datapaths' less efficient micro-op expansion dissipates extra
		// decode/control energy (§VIII-B's "even if we ignore CPU energy
		// savings" component).
		st.HostEnergyPJ += m.cfg.Host.IdleEnergyPJ(st.Cycles, m.cfg.Spec.OnChipCPU)
		if f := m.cfg.Spec.BaselineEnergyFactor; f > 0 {
			st.DatapathEnergyPJ *= f
		}
		st.FrontendDynamicPJ = 0 // no MPU front end exists
	}
	return st
}

// faultf escalates tagged faults under strict mode: a strict machine only
// loads lint-clean programs, so an ensemble or capacity fault at run time
// means the static analysis missed a path — surface it as such.
func (m *Machine) faultf(err error) error {
	if m.cfg.Strict && (errors.Is(err, ErrEnsembleFault) || errors.Is(err, ErrCapacityFault)) {
		return fmt.Errorf("machine: lint soundness violation — lint-clean program tripped a runtime guard: %w", err)
	}
	return err
}

// Front-end energy constants (see internal/frontend; duplicated here to keep
// the dependency graph acyclic: frontend imports nothing, but machine only
// needs the two scalars). Both are per-cycle energies at the 1 GHz clock:
// 1 mW × 1 ns = 1 pJ, so frontend.StaticPowerMW (1.22 mW) charges 1.22 pJ
// per cycle per MPU and frontend.DynamicPowerMW (71.72 mW) charges 71.72 pJ
// per active issue cycle. TestFrontendEnergyUnits pins the equivalence
// against internal/frontend's reported totals.
const (
	frontendStaticPJPerCycle  = 1.22  // pJ per cycle per MPU (1.22 mW at 1 GHz)
	frontendDynamicPJPerCycle = 71.72 // pJ per active issue cycle (71.72 mW at 1 GHz)
)

// expand returns the decoded recipe for in — the micro-op expansion plus
// its slot-resolved form — memoized for the machine's capability set. The
// returned entry is shared and must not be mutated. Cores call this from
// concurrent scheduler goroutines, so the memo is mutex-guarded; when two
// cores race to expand the same instruction the first published entry wins,
// keeping one canonical pointer per instruction.
func (m *Machine) expand(in isa.Instr) (*expandEntry, error) {
	m.expandsMu.Lock()
	e, ok := m.expands[in]
	m.expandsMu.Unlock()
	if ok {
		return e, nil
	}
	ops, rops, err := recipe.ExpandResolved(m.cfg.Spec.Caps, in)
	if err != nil {
		return nil, err
	}
	e = &expandEntry{ops: ops, rops: rops}
	m.expandsMu.Lock()
	if prev, ok := m.expands[in]; ok {
		e = prev
	} else {
		m.expands[in] = e
	}
	m.expandsMu.Unlock()
	return e, nil
}

// decodeAt resolves the expansion entry for the datapath instruction at pc
// through the per-core pc-indexed cache.
func (c *core) decodeAt(pc int) (*expandEntry, error) {
	if e := c.decode[pc]; e != nil {
		return e, nil
	}
	e, err := c.m.expand(c.prog[pc])
	if err != nil {
		return nil, err
	}
	c.decode[pc] = e
	return e, nil
}

// run executes instructions until the MPU finishes, blocks on rendezvous,
// or yields to a pending preemption request at an ensemble boundary (a
// yield leaves done and blocked false; Run surfaces it as ErrPreempted
// after the barrier phase).
func (c *core) run() error {
	for !c.done && !c.blocked {
		if c.ens.active {
			// Resuming a preempted ensemble: finish its remaining rounds
			// before decoding anything new.
			if c.shouldYield() {
				return nil
			}
			if err := c.runEnsembleRounds(); err != nil {
				return err
			}
			continue
		}
		if c.shouldYield() {
			return nil
		}
		if c.pc < 0 || c.pc >= len(c.prog) {
			c.done = true
			return nil
		}
		in := c.prog[c.pc]
		c.seg++
		switch in.Op {
		case isa.NOP:
			c.cycles++
			c.pc++
		case isa.MPUSYNC:
			// With one compute controller (Table III) ensembles already
			// serialize; the fence costs a pipeline drain.
			c.cycles += 2
			c.pc++
		case isa.COMPUTE:
			if err := c.runComputeEnsemble(); err != nil {
				return err
			}
		case isa.MOVE:
			if err := c.runTransferEnsemble(); err != nil {
				return err
			}
		case isa.SEND:
			c.waitSend = true
			c.sendDst = int(in.Imm)
			if c.sendDst < 0 || c.sendDst >= len(c.m.mpus) {
				return fmt.Errorf("SEND to unknown mpu%d", c.sendDst)
			}
			c.blocked = true
		case isa.RECV:
			c.waitRecv = true
			c.recvSrc = int(in.Imm)
			if c.recvSrc < 0 || c.recvSrc >= len(c.m.mpus) {
				return fmt.Errorf("RECV from unknown mpu%d", c.recvSrc)
			}
			c.blocked = true
		case isa.JUMP:
			c.chargeControlRedirect()
			if err := c.ras.Push(c.pc + 1); err != nil {
				return err
			}
			c.pc = int(in.Imm)
		case isa.RETURN:
			c.chargeControlRedirect()
			pc, err := c.ras.Pop()
			if err != nil {
				// Underflow: a RETURN with no pending JUMP frame — a
				// structural bug the linter flags as return-unbalanced.
				return fmt.Errorf("%v (%w)", err, ErrEnsembleFault)
			}
			c.pc = pc
		default:
			return fmt.Errorf("instruction %s at %d outside any ensemble (%w)", in.Op, c.pc, ErrEnsembleFault)
		}
	}
	return nil
}

// tracef logs one architectural event when tracing is enabled.
func (c *core) tracef(format string, args ...any) {
	if c.m.cfg.Trace != nil {
		fmt.Fprintf(c.m.cfg.Trace, "mpu%d: "+format+"\n", append([]any{c.id}, args...)...)
	}
}

// chargeControlRedirect accounts for a JUMP/RETURN: one cycle on the MPU,
// a full host round trip for Baseline datapaths, which cannot redirect
// their own instruction stream (Table I: subroutine calls).
func (c *core) chargeControlRedirect() {
	c.cycles++
	if c.m.cfg.Mode == ModeBaseline {
		c.offload()
	}
}

// offload charges one host CPU round trip (Baseline control decision).
func (c *core) offload() {
	c.tracef("host offload (control decision)")
	lat := c.m.cfg.Host.OffloadCycles(c.m.cfg.Spec.Lanes, c.m.cfg.Spec.OnChipCPU)
	c.cycles += lat
	c.local.OffloadCycles += lat
	c.local.Offloads++
	c.local.HostEnergyPJ += c.m.cfg.Host.OffloadEnergyPJ(c.m.cfg.Spec.Lanes)
}

// offloadBody charges one host round trip inside an ensemble body. Unlike
// offload, the energy accumulates into the caller's round-local sum so a
// replayed round reproduces the identical float addition order.
func (c *core) offloadBody(hostPJ *float64) (lat int64, pj float64) {
	c.tracef("host offload (control decision)")
	lat = c.m.cfg.Host.OffloadCycles(c.m.cfg.Spec.Lanes, c.m.cfg.Spec.OnChipCPU)
	c.cycles += lat
	c.local.OffloadCycles += lat
	c.local.Offloads++
	pj = c.m.cfg.Host.OffloadEnergyPJ(c.m.cfg.Spec.Lanes)
	*hostPJ += pj
	return lat, pj
}

// runComputeEnsemble executes one COMPUTE…COMPUTE_DONE block under the
// Fig. 10 scheduler: VRFs are activated in rounds bounded by the thermal
// limit, and the body (including its dynamic loops and subroutine calls)
// replays once per round.
//
// When the trace engine is on, the first execution of a body the lint CFG
// proves free of data-dependent branches runs under a recorder that compiles
// it into a flat trace; later rounds replay the trace — data-mutating plane
// ops plus one aggregated charge — instead of re-interpreting instruction by
// instruction.
//
// The entry charges (header walk, playback-buffer probe, ensemble count)
// happen exactly once here; the rounds themselves run in runEnsembleRounds
// (preempt.go), which can yield between rounds and resume without repeating
// them.
func (c *core) runComputeEnsemble() error {
	c.hdr = c.hdr[:0]
	for c.pc < len(c.prog) && c.prog[c.pc].Op == isa.COMPUTE {
		in := c.prog[c.pc]
		a := controlpath.VRFAddr{RFH: in.A, VRF: in.B}
		if err := c.m.checkAddr(a); err != nil {
			return err
		}
		c.hdr = append(c.hdr, a)
		c.cycles++ // activation-board write
		c.pc++
	}
	if len(c.hdr) == 0 {
		return fmt.Errorf("compute ensemble with empty header at %d (%w)", c.pc, ErrEnsembleFault)
	}
	bodyStart := c.pc
	bodyLen, err := c.findComputeDone(bodyStart)
	if err != nil {
		return err
	}
	fits := c.pbuf.Fits(bodyLen)
	if !fits {
		// Body exceeds the playback buffer: every replay refetches from the
		// ISU at one cycle per instruction.
		c.cycles += int64(bodyLen)
	}
	c.local.Ensembles++
	c.ens = ensState{active: true, bodyStart: bodyStart, bodyLen: bodyLen, fits: fits, endPC: bodyStart}
	return c.runEnsembleRounds()
}

// replayable reports whether a compiled body can replay this round: Baseline
// mode performs no recipe decode inside bodies, while ModeMPU additionally
// requires every decode the body performs to hit the resident recipe table —
// otherwise the trace's cycle delta (recorded stall-free) would hide real
// miss stalls and evictions.
func (c *core) replayable(t *trace.Trace) bool {
	return c.m.cfg.Mode == ModeBaseline || c.rcache.ReplayAllHit(t.Lookups)
}

// compileJIT lowers an installed trace to its fused closure chain, called
// lazily from replayRound on the body's first replayed round — bodies that
// never replay (recipe-cold decode every round) are never lowered. The
// machine-wide jitMemo dedupes the lowering by step-stream content, so a
// Reset-recycled pool machine or a sibling SPMD core adopts the existing
// chain; JITCompiles still counts every trace lowered (memo hits included)
// so warm-pool stats stay byte-identical to a fresh machine's. A declined
// compilation — a lane geometry without a flat word directory — leaves
// Prog nil and replay interprets the step stream as before. This is one of
// the two sanctioned writers of the JIT counters (cmd/repolint's
// jit-counter-mutation rule).
func (c *core) compileJIT(tr *trace.Trace) {
	tr.Compiled = true
	if c.m.cfg.NoJIT {
		return
	}
	if p := c.m.jitMemo.Compile(tr, c.m.cfg.Spec.Lanes); p != nil {
		tr.Prog = p
		c.local.JITCompiles++
	}
}

// replayRound applies a compiled body to one round's activated VRFs: the
// data-mutating steps run per VRF, and every cost counter advances by the
// precomputed delta — O(1) accounting regardless of dynamic body length.
func (c *core) replayRound(t *trace.Trace, batch []*vrf.VRF) {
	st := &c.local
	if !t.Compiled {
		c.compileJIT(t)
	}
	if c.m.cfg.Mode == ModeMPU {
		// All-hit decode (checked by replayable): charge the hits and touch
		// the LRU in last-occurrence order, leaving the recipe cache in the
		// exact state an interpreted round would.
		c.rcache.ChargeReplayHits(t.NumLookups, t.TouchOrder)
	} else {
		st.Offloads += t.Offloads
		st.OffloadCycles += t.OffloadCycles
		st.HostEnergyPJ += t.HostEnergyPJ
	}
	c.cycles += t.Cycles
	c.issue += t.Issue
	st.Instructions += t.Instructions
	st.ComputeCycles += t.ComputeCycles
	st.MicroOps += t.MicroOpsPerVRF * uint64(len(batch))
	st.DatapathEnergyPJ += t.EnergyPerVRF * float64(len(batch))
	if t.Prog != nil {
		// JIT path: the closure chain pre-binds everything the step
		// interpreter below resolves per op; it mutates the same words in
		// the same order under the same mask, so the paths are
		// bit-identical (pinned by TestTraceParity's jit dimension and
		// FuzzJITParity).
		st.JITReplays++
		for _, v := range batch {
			t.Prog.Run(v)
		}
		return
	}
	for _, v := range batch {
		for i := range t.Steps {
			s := &t.Steps[i]
			switch s.Kind {
			case trace.StepExec:
				v.ExecAllResolved(s.Ops)
			case trace.StepSetMaskCond:
				v.SetMaskFromCond()
			case trace.StepSetMaskReg:
				v.SetMaskFromReg(int(s.Arg))
			case trace.StepUnmask:
				v.Unmask()
			case trace.StepGetMask:
				v.GetMaskInto(int(s.Arg))
			}
		}
	}
}

// findComputeDone returns the linear distance from start to the matching
// COMPUTE_DONE (playback-buffer sizing). Jump targets may lie outside; only
// the straight-line footprint occupies the buffer.
func (c *core) findComputeDone(start int) (int, error) {
	for i := start; i < len(c.prog); i++ {
		switch c.prog[i].Op {
		case isa.COMPUTEDONE:
			return i - start + 1, nil
		case isa.COMPUTE, isa.MOVE, isa.SEND, isa.RECV:
			return 0, fmt.Errorf("instruction %s at %d inside a compute ensemble (%w)", c.prog[i].Op, i, ErrEnsembleFault)
		}
	}
	return 0, fmt.Errorf("compute ensemble at %d missing COMPUTE_DONE (%w)", start, ErrEnsembleFault)
}

// runBody interprets one replay of an ensemble body on the active batch,
// returning the pc just past COMPUTE_DONE. A non-nil rec compiles the round
// into a trace as a side effect (nil records nothing).
//
// The two float-valued charges — datapath and host energy — accumulate into
// round-local sums flushed once at COMPUTE_DONE. Float addition is not
// associative, so charging them per instruction would make the O(1) replay
// path (one addition per round) drift from the interpreter in the last ulps;
// summing per round first makes both paths add bit-identical values.
func (c *core) runBody(start int, batch []*vrf.VRF, rec *trace.Recorder) (int, error) {
	spec := c.m.cfg.Spec
	st := &c.local
	pc := start
	steps := 0
	var bodyPJ, hostPJ float64
	for {
		if pc < 0 || pc >= len(c.prog) {
			return 0, fmt.Errorf("ensemble body ran past the program end (pc=%d) (%w)", pc, ErrEnsembleFault)
		}
		steps++
		if steps > c.m.cfg.MaxSteps {
			return 0, fmt.Errorf("ensemble body exceeded %d steps — runaway loop?", c.m.cfg.MaxSteps)
		}
		in := c.prog[pc]
		st.Instructions++
		rec.Instr()
		switch {
		case in.Op == isa.COMPUTEDONE:
			st.DatapathEnergyPJ += bodyPJ * float64(len(batch))
			st.HostEnergyPJ += hostPJ
			return pc + 1, nil

		case recipe.IsDatapathOp(in.Op):
			e, err := c.decodeAt(pc)
			if err != nil {
				return 0, err
			}
			if c.m.cfg.Mode == ModeMPU {
				rec.Lookup(uint8(in.Op), len(e.ops))
				c.cycles += c.rcache.Lookup(uint8(in.Op), len(e.ops))
			}
			for _, v := range batch {
				v.ExecAllResolved(e.rops)
			}
			n := int64(len(e.ops))
			exec := int64(float64(n*int64(spec.CyclesPerMicroOp)) * c.m.cfg.ComputeScale)
			c.cycles += exec
			c.issue += n
			st.ComputeCycles += exec
			st.MicroOps += uint64(n) * uint64(len(batch))
			perVRF := float64(n) * spec.MicroOpEnergyPJ * c.m.cfg.ComputeScale
			bodyPJ += perVRF
			rec.Exec(e.rops, exec, perVRF)
			pc++

		case in.Op == isa.SETMASK:
			for _, v := range batch {
				if in.A == isa.RegCond {
					v.SetMaskFromCond()
				} else {
					v.SetMaskFromReg(int(in.A))
				}
			}
			c.cycles++
			if in.A == isa.RegCond {
				rec.Mask(trace.StepSetMaskCond, 0)
			} else {
				rec.Mask(trace.StepSetMaskReg, in.A)
			}
			rec.Cycles(1)
			pc++
		case in.Op == isa.UNMASK:
			for _, v := range batch {
				v.Unmask()
			}
			c.cycles++
			rec.Mask(trace.StepUnmask, 0)
			rec.Cycles(1)
			pc++
		case in.Op == isa.GETMASK:
			for _, v := range batch {
				v.GetMaskInto(int(in.C))
			}
			c.cycles++
			rec.Mask(trace.StepGetMask, in.C)
			rec.Cycles(1)
			pc++

		case in.Op == isa.JUMPCOND:
			// EFI (§VI-B): read mask registers of the active VRFs; jump
			// while any lane anywhere in the batch remains enabled. The
			// decision depends on lane data, so the round is unrecordable.
			rec.Abort()
			any := false
			for _, v := range batch {
				if v.MaskAny() {
					any = true
					break
				}
			}
			c.cycles += 4 // mask readback into the CC + decision
			if c.m.cfg.Mode == ModeBaseline {
				c.offloadBody(&hostPJ) // the original datapath asks the CPU instead
			}
			if any {
				pc = int(in.Imm)
			} else {
				pc++
			}

		case in.Op == isa.JUMP:
			c.cycles++
			rec.Cycles(1)
			if c.m.cfg.Mode == ModeBaseline {
				lat, pj := c.offloadBody(&hostPJ)
				rec.Offload(lat, pj)
			}
			if err := c.ras.Push(pc + 1); err != nil {
				return 0, err
			}
			rec.Push()
			pc = int(in.Imm)
		case in.Op == isa.RETURN:
			c.cycles++
			rec.Cycles(1)
			if c.m.cfg.Mode == ModeBaseline {
				lat, pj := c.offloadBody(&hostPJ)
				rec.Offload(lat, pj)
			}
			rpc, err := c.ras.Pop()
			if err != nil {
				return 0, fmt.Errorf("%v (%w)", err, ErrEnsembleFault)
			}
			rec.Pop()
			pc = rpc
		case in.Op == isa.NOP:
			c.cycles++
			rec.Cycles(1)
			pc++
		default:
			return 0, fmt.Errorf("instruction %s at %d not executable inside a compute ensemble (%w)", in.Op, pc, ErrEnsembleFault)
		}
	}
}

// runTransferEnsemble executes a local MOVE…MOVE_DONE block on the DTC.
func (c *core) runTransferEnsemble() error {
	c.tm.Reset()
	for c.pc < len(c.prog) && c.prog[c.pc].Op == isa.MOVE {
		in := c.prog[c.pc]
		c.tm.Add(in.A, in.B)
		c.cycles++ // target-map write
		c.pc++
	}
	pairs := c.tm.Pairs()
	if len(pairs) == 0 {
		return fmt.Errorf("transfer ensemble with empty header at %d (%w)", c.pc, ErrEnsembleFault)
	}
	c.tracef("transfer ensemble: %d RFH pairs", len(pairs))
	for {
		if c.pc >= len(c.prog) {
			return fmt.Errorf("transfer ensemble missing MOVE_DONE (%w)", ErrEnsembleFault)
		}
		in := c.prog[c.pc]
		switch in.Op {
		case isa.MOVEDONE:
			c.cycles++
			c.pc++
			return nil
		case isa.MEMCPY:
			if err := c.memcpyLocal(pairs, in); err != nil {
				return err
			}
			c.pc++
		case isa.NOP:
			c.cycles++
			c.pc++
		default:
			return fmt.Errorf("instruction %s at %d inside a transfer ensemble (%w)", in.Op, c.pc, ErrEnsembleFault)
		}
	}
}

// memcpyLocal copies one register per RFH pair through the DTC. Pairs use
// disjoint RFH links, so they stream in parallel; the cost is one setup plus
// the register's lane words.
func (c *core) memcpyLocal(pairs []controlpath.RFHPair, in isa.Instr) error {
	spec := c.m.cfg.Spec
	for _, p := range pairs {
		src := controlpath.VRFAddr{RFH: p.Src, VRF: in.A}
		dst := controlpath.VRFAddr{RFH: p.Dst, VRF: in.C}
		if err := c.m.checkAddr(src); err != nil {
			return err
		}
		if err := c.m.checkAddr(dst); err != nil {
			return err
		}
		vrf.CopyRegister(c.vrfAt(src), int(in.B), c.vrfAt(dst), int(in.D))
		c.local.Transfers++
	}
	cyc := int64(16 + spec.Lanes) // setup + one 64-bit word per lane
	c.cycles += cyc
	c.local.TransferCycles += cyc
	c.local.NoCEnergyPJ += c.m.mesh.DTCEnergyPJ(len(pairs) * spec.Lanes * 8)
	return nil
}

// rendezvous completes a matched SEND/RECV pair: the sender's block
// (SEND … MOVE/MEMCPY … MOVE_DONE … SEND_DONE) executes with source VRFs on
// the sender and destination VRFs on the receiver, costed through the mesh.
// It only runs in the single-threaded barrier phase; its costs are charged
// to the sender's local Stats, so the charge sequence every core observes is
// independent of the scheduler's worker count.
func (m *Machine) rendezvous(s, r *core) error {
	st := &s.local
	t0 := s.cycles
	if r.cycles > t0 {
		t0 = r.cycles
	}
	var block int64
	if m.cfg.Mode == ModeBaseline {
		// The host coordinates the pairing before any data moves.
		lat := m.cfg.Host.OffloadCycles(m.cfg.Spec.Lanes, m.cfg.Spec.OnChipCPU)
		block += lat
		st.OffloadCycles += lat
		st.Offloads++
		st.HostEnergyPJ += m.cfg.Host.OffloadEnergyPJ(m.cfg.Spec.Lanes)
	}

	pc := s.pc + 1 // past SEND
	s.tm.Reset()
	for pc < len(s.prog) && s.prog[pc].Op == isa.MOVE {
		s.tm.Add(s.prog[pc].A, s.prog[pc].B)
		block++
		pc++
	}
	pairs := s.tm.Pairs()
	if len(pairs) == 0 {
		return fmt.Errorf("mpu%d: SEND block without MOVE header at %d (%w)", s.id, pc, ErrEnsembleFault)
	}
loop:
	for {
		if pc >= len(s.prog) {
			return fmt.Errorf("mpu%d: SEND block missing SEND_DONE (%w)", s.id, ErrEnsembleFault)
		}
		in := s.prog[pc]
		switch in.Op {
		case isa.MEMCPY:
			for _, p := range pairs {
				src := controlpath.VRFAddr{RFH: p.Src, VRF: in.A}
				dst := controlpath.VRFAddr{RFH: p.Dst, VRF: in.C}
				if err := m.checkAddr(src); err != nil {
					return err
				}
				if err := m.checkAddr(dst); err != nil {
					return err
				}
				vrf.CopyRegister(s.vrfAt(src), int(in.B), r.vrfAt(dst), int(in.D))
				st.Transfers++
			}
			cyc, pj, err := m.mesh.TransferCost(s.id, r.id, m.cfg.Spec.Lanes)
			if err != nil {
				return err
			}
			block += int64(cyc)
			st.InterMPUCycles += int64(cyc)
			st.NoCEnergyPJ += pj * float64(len(pairs))
			pc++
		case isa.MOVEDONE, isa.NOP:
			block++
			pc++
		case isa.SENDDONE:
			pc++
			break loop
		default:
			return fmt.Errorf("mpu%d: instruction %s at %d inside a SEND block (%w)", s.id, in.Op, pc, ErrEnsembleFault)
		}
	}
	s.tracef("send block to mpu%d complete (%d pairs)", r.id, len(pairs))
	st.Sends++
	s.pc = pc
	r.pc++ // past RECV
	s.cycles = t0 + block
	r.cycles = t0 + block
	s.blocked, s.waitSend = false, false
	r.blocked, r.waitRecv = false, false
	return nil
}
