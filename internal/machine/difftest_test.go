package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/ezpim"
	"mpu/internal/isa"
)

// Differential testing: random programs — arithmetic, predication, nested
// branches, and bounded dynamic loops — run both on the bit-serial machine
// (through ezpim, the recipe library, and the full control path) and on an
// independent scalar interpreter that implements Table II semantics
// directly on uint64 lanes. Any divergence in any architectural register of
// any lane fails the test.

// scalarRef interprets an MPU program over flat lanes (the test uses a
// fully-activated batch, so the EFI's any-lane OR equals an OR over all
// lanes).
type scalarRef struct {
	prog  isa.Program
	regs  [][isa.NumRegs]uint64 // per lane
	cond  []bool
	mask  []bool
	ras   []int
	steps int
}

func newScalarRef(prog isa.Program, lanes int) *scalarRef {
	r := &scalarRef{
		prog: prog,
		regs: make([][isa.NumRegs]uint64, lanes),
		cond: make([]bool, lanes),
		mask: make([]bool, lanes),
	}
	for l := range r.mask {
		r.mask[l] = true
	}
	return r
}

func (r *scalarRef) anyMask() bool {
	for _, m := range r.mask {
		if m {
			return true
		}
	}
	return false
}

func (r *scalarRef) run() error {
	pc := 0
	for pc >= 0 && pc < len(r.prog) {
		r.steps++
		if r.steps > 2_000_000 {
			return fmt.Errorf("scalar reference ran away at pc=%d", pc)
		}
		in := r.prog[pc]
		switch in.Op {
		case isa.COMPUTE:
			// Activation re-enables every lane, matching the machine.
			for l := range r.mask {
				r.mask[l] = true
			}
			pc++
		case isa.COMPUTEDONE, isa.NOP, isa.MPUSYNC:
			pc++
		case isa.SETMASK:
			for l := range r.mask {
				if in.A == isa.RegCond {
					r.mask[l] = r.cond[l]
				} else {
					r.mask[l] = r.regs[l][in.A]&1 == 1
				}
			}
			pc++
		case isa.UNMASK:
			for l := range r.mask {
				r.mask[l] = true
			}
			pc++
		case isa.GETMASK:
			for l := range r.mask {
				v := uint64(0)
				if r.mask[l] {
					v = 1
				}
				r.regs[l][in.C] = v
			}
			pc++
		case isa.JUMPCOND:
			if r.anyMask() {
				pc = int(in.Imm)
			} else {
				pc++
			}
		case isa.JUMP:
			r.ras = append(r.ras, pc+1)
			pc = int(in.Imm)
		case isa.RETURN:
			if len(r.ras) == 0 {
				return fmt.Errorf("scalar reference RETURN underflow")
			}
			pc = r.ras[len(r.ras)-1]
			r.ras = r.ras[:len(r.ras)-1]
		case isa.CMPEQ, isa.CMPGT, isa.CMPLT, isa.FUZZY:
			for l := range r.mask {
				res := false
				a, b := r.regs[l][in.A], r.regs[l][in.B]
				switch in.Op {
				case isa.CMPEQ:
					res = a == b
				case isa.CMPGT:
					res = int64(a) > int64(b)
				case isa.CMPLT:
					res = int64(a) < int64(b)
				case isa.FUZZY:
					res = (a^b)&^r.regs[l][in.C] == 0
				}
				r.cond[l] = res && r.mask[l]
			}
			pc++
		default:
			for l := range r.mask {
				if !r.mask[l] {
					continue
				}
				r.execLane(l, in)
			}
			pc++
		}
	}
	return nil
}

// execLane applies a datapath instruction to one enabled lane.
func (r *scalarRef) execLane(l int, in isa.Instr) {
	regs := &r.regs[l]
	a, b := regs[in.A], regs[in.B]
	switch in.Op {
	case isa.ADD:
		regs[in.C] = a + b
	case isa.SUB:
		regs[in.C] = a - b
	case isa.MUL:
		regs[in.C] = a * b
	case isa.MAC:
		regs[in.C] += a * b
	case isa.QDIV:
		if b == 0 {
			regs[in.C] = ^uint64(0)
		} else {
			regs[in.C] = a / b
		}
	case isa.RDIV:
		if b == 0 {
			regs[in.C] = a
		} else {
			regs[in.C] = a % b
		}
	case isa.QRDIV:
		q, rem := ^uint64(0), a
		if b != 0 {
			q, rem = a/b, a%b
		}
		regs[in.C], regs[in.B] = q, rem
	case isa.INC:
		regs[in.C] = a + 1
	case isa.INIT0:
		regs[in.C] = 0
	case isa.INIT1:
		regs[in.C] = 1
	case isa.POPC:
		n := uint64(0)
		for x := a; x != 0; x >>= 1 {
			n += x & 1
		}
		regs[in.C] = n
	case isa.RELU:
		if int64(a) < 0 {
			regs[in.C] = 0
		} else {
			regs[in.C] = a
		}
	case isa.CAS:
		if int64(a) > int64(b) {
			regs[in.A], regs[in.B] = b, a
		}
	case isa.MUX:
		if regs[in.C]&1 == 1 {
			regs[in.C] = a
		} else {
			regs[in.C] = b
		}
	case isa.MAX:
		if int64(a) >= int64(b) {
			regs[in.C] = a
		} else {
			regs[in.C] = b
		}
	case isa.MIN:
		if int64(a) <= int64(b) {
			regs[in.C] = a
		} else {
			regs[in.C] = b
		}
	case isa.AND:
		regs[in.C] = a & b
	case isa.NAND:
		regs[in.C] = ^(a & b)
	case isa.NOR:
		regs[in.C] = ^(a | b)
	case isa.OR:
		regs[in.C] = a | b
	case isa.XOR:
		regs[in.C] = a ^ b
	case isa.XNOR:
		regs[in.C] = ^(a ^ b)
	case isa.INV:
		regs[in.C] = ^a
	case isa.BFLIP:
		var v uint64
		for i := 0; i < 64; i++ {
			if a>>uint(i)&1 == 1 {
				v |= 1 << uint(63-i)
			}
		}
		regs[in.C] = v
	case isa.LSHIFT:
		regs[in.C] = a << 1
	case isa.MOV:
		regs[in.C] = a
	default:
		panic(fmt.Sprintf("scalar reference: unhandled op %s", in.Op))
	}
}

// genProgram builds a random but well-formed program using registers
// r0..r11 for data, r12 as a loop counter, r13 as zero, r14 as one.
func genProgram(rng *rand.Rand, addrs []controlpath.VRFAddr) (isa.Program, error) {
	b := ezpim.NewBuilder()
	const (
		dataRegs = 12
		cnt      = 12
		zero     = 13
		one      = 14
	)
	reg := func() int { return rng.Intn(dataRegs) }
	var emitOps func(depth, n int)
	emitOps = func(depth, n int) {
		for i := 0; i < n; i++ {
			switch k := rng.Intn(24); {
			case k < 10: // three-operand arithmetic/boolean
				ops := []func(a, b, c int) isa.Instr{
					isa.Add, isa.Sub, isa.Mul, isa.And, isa.OrI, isa.Xor,
					isa.Nand, isa.Nor, isa.Xnor, isa.MaxI, isa.MinI, isa.Mac,
				}
				b.Op(ops[rng.Intn(len(ops))](reg(), reg(), reg()))
			case k < 14: // unary
				ops := []func(a, c int) isa.Instr{
					isa.Inc, isa.Inv, isa.Mov, isa.LShift, isa.BFlip, isa.Relu, isa.Popc,
				}
				b.Op(ops[rng.Intn(len(ops))](reg(), reg()))
			case k < 15:
				b.Op(isa.QDiv(reg(), reg(), reg()))
			case k < 16:
				b.Op(isa.Cas(reg(), reg()))
			case k < 17:
				b.Op(isa.MuxI(reg(), reg(), reg()))
			case k < 18:
				b.Op(isa.Fuzzy(reg(), reg(), reg()))
				b.Op(isa.SetMask(isa.RegCond))
				b.Op(isa.Unmask())
			case k < 22 && depth < 3: // nested branch
				conds := []func(a, b int) ezpim.Cond{ezpim.Eq, ezpim.Ne, ezpim.Lt, ezpim.Gt, ezpim.Le, ezpim.Ge}
				c := conds[rng.Intn(len(conds))](reg(), reg())
				if rng.Intn(2) == 0 {
					b.If(c, func() { emitOps(depth+1, 1+rng.Intn(3)) }, nil)
				} else {
					b.If(c, func() { emitOps(depth+1, 1+rng.Intn(3)) },
						func() { emitOps(depth+1, 1+rng.Intn(3)) })
				}
			case k < 23 && depth == 0: // bounded countdown loop
				b.Op(isa.Init0(zero))
				b.Op(isa.Init1(one))
				b.Op(isa.Init1(cnt))
				for j := rng.Intn(3); j > 0; j-- {
					b.Op(isa.Inc(cnt, cnt)) // trip count 1..3
				}
				b.While(ezpim.Gt(cnt, zero), func() {
					emitOps(depth+1, 1+rng.Intn(3))
					b.Op(isa.Sub(cnt, one, cnt))
				})
			default:
				b.Op(isa.Init1(reg()))
			}
		}
	}
	b.Ensemble(addrs, func() { emitOps(0, 6+rng.Intn(10)) })
	return b.Program()
}

// TestDifferentialRandomPrograms cross-checks 60 random programs on the
// fully-activating MIMDRAM back end (one batch → flat EFI OR).
func TestDifferentialRandomPrograms(t *testing.T) {
	diffTrials(t, backends.MIMDRAM(), 60, 1000)
}

// TestDifferentialOtherBackends runs fewer trials on the remaining
// capability sets, including the MAJ/NOT-only SIMDRAM.
func TestDifferentialOtherBackends(t *testing.T) {
	for _, spec := range []*backends.Spec{backends.DualityCache(), backends.SIMDRAM()} {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			diffTrials(t, spec, 15, 5000)
		})
	}
}

func diffTrials(t *testing.T, spec *backends.Spec, trials int, seedBase int64) {
	t.Helper()
	addrs := []controlpath.VRFAddr{{RFH: 0, VRF: 0}, {RFH: 1, VRF: 0}}
	lanes := spec.Lanes * len(addrs)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(seedBase + int64(trial)))
		prog, err := genProgram(rng, addrs)
		if err != nil {
			t.Fatalf("trial %d: generate: %v", trial, err)
		}

		m, err := New(Config{Spec: spec, NumMPUs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadAll(prog); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ref := newScalarRef(prog, lanes)
		for l := 0; l < lanes; l++ {
			for reg := 0; reg < 12; reg++ {
				v := rng.Uint64()
				if rng.Intn(2) == 0 {
					v %= 97 // small values make loops/compares interesting
				}
				ref.regs[l][reg] = v
				a := addrs[l/spec.Lanes]
				m.mpus[0].vrfAt(a).WriteWord(reg, l%spec.Lanes, v)
			}
		}

		if _, err := m.Run(); err != nil {
			t.Fatalf("trial %d: machine: %v\n%s", trial, err, isa.Disassemble(prog))
		}
		if err := ref.run(); err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}

		for l := 0; l < lanes; l++ {
			a := addrs[l/spec.Lanes]
			for reg := 0; reg < 15; reg++ {
				got := m.mpus[0].vrfAt(a).ReadWord(reg, l%spec.Lanes)
				want := ref.regs[l][reg]
				if got != want {
					t.Fatalf("trial %d: lane %d r%d: machine %#x, reference %#x\nprogram:\n%s",
						trial, l, reg, got, want, isa.Disassemble(prog))
				}
			}
		}
	}
}
