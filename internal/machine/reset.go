package machine

import (
	"mpu/internal/controlpath"
	"mpu/internal/vrf"
)

// Reset returns the machine to its just-constructed state so a pooled
// instance can be reused across LoadProgram calls. It is the one audited
// place that recycles per-core run state:
//
//   - program, pc, cycle and issue counters, and the done/blocked flags
//   - vector register files (dropped wholesale; vrfAt re-creates zeroed
//     planes on demand, exactly like a fresh machine)
//   - the return-address stack, recipe cache (contents AND stall/hit
//     accounting), and playback-buffer overflow count
//   - pending SEND/RECV rendezvous state
//   - the pc-indexed decode cache and the compiled ensemble trace cache
//   - the per-core local Stats and scratch buffers
//
// The only state that survives is the machine's configuration and the
// recipe-expansion memo (m.expands): expansion is pure decode work keyed by
// instruction bits, shared by pointer, and charged nowhere, so keeping it
// warm is what makes pool reuse profitable without perturbing statistics.
// TestResetReuseMatchesFresh pins that a Reset+LoadAll+Run sequence on a
// used machine produces byte-identical Stats to a fresh machine's run.
func (m *Machine) Reset() {
	for _, c := range m.mpus {
		c.prog = nil
		c.pc = 0
		c.cycles = 0
		c.issue = 0
		c.vrfs = map[controlpath.VRFAddr]*vrf.VRF{}
		c.ras.Reset()
		c.rcache.Reset()
		c.pbuf.Reset()
		c.done = true
		c.blocked = false
		c.local = Stats{}
		c.sendDst = 0
		c.recvSrc = 0
		c.waitSend = false
		c.waitRecv = false
		c.decode = nil
		c.traces.Reset()
		c.hdr = c.hdr[:0]
		c.act = c.act[:0]
		c.tm.Reset()
	}
}
