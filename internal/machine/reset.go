package machine

import (
	"mpu/internal/controlpath"
	"mpu/internal/vrf"
)

// Reset returns the machine to its just-constructed state so a pooled
// instance can be reused across LoadProgram calls. It is the one audited
// place that recycles per-core run state:
//
//   - program, pc, cycle and issue counters, and the done/blocked flags
//   - vector register files (dropped wholesale; vrfAt re-creates zeroed
//     planes on demand, exactly like a fresh machine)
//   - the return-address stack, recipe cache (contents AND stall/hit
//     accounting), and playback-buffer overflow count
//   - pending SEND/RECV rendezvous state
//   - the pc-indexed decode cache and the compiled ensemble trace cache
//   - the per-core local Stats and scratch buffers
//
// The only state that survives is the machine's configuration and two
// content-keyed memos: the recipe-expansion memo (m.expands) and the JIT
// program memo (m.jitMemo). Both cache pure functions — expansion is decode
// work keyed by instruction bits, a compiled closure chain is keyed by the
// recorded step stream and lane count — shared by pointer and charged
// nowhere, so keeping them warm is what makes pool reuse profitable without
// perturbing statistics. TestResetReuseMatchesFresh pins that a
// Reset+LoadAll+Run sequence on a used machine produces byte-identical
// Stats to a fresh machine's run.
func (m *Machine) Reset() {
	m.preempt.Store(false)
	m.midRun = false
	for _, c := range m.mpus {
		c.prog = nil
		c.pc = 0
		c.cycles = 0
		c.issue = 0
		c.vrfs = map[controlpath.VRFAddr]*vrf.VRF{}
		c.ras.Reset()
		c.rcache.Reset()
		c.pbuf.Reset()
		c.done = true
		c.blocked = false
		c.local = Stats{}
		c.sendDst = 0
		c.recvSrc = 0
		c.waitSend = false
		c.waitRecv = false
		c.decode = nil
		c.traces.Reset()
		c.hdr = c.hdr[:0]
		c.act = c.act[:0]
		c.tm.Reset()
		c.ens = ensState{}
		c.seg = 0
	}
}

// Rewind re-arms every core to execute its loaded program again from the
// top, keeping everything the completed run learned: vector register
// contents, recipe-table residency, installed traces and their compiled
// closure chains, and the decode caches. Where Reset models handing a
// pooled machine to a new request (fresh-machine stats equivalence),
// Rewind models the steady state of a resident kernel invoked again — the
// next Run's ensemble rounds replay warm traces against a warm recipe
// table, so its Stats legitimately differ from a cold run's (trace hits
// where the cold run recorded, recipe hits where it stalled on decode).
// Per-run accounting (cycle and issue counters, recipe and playback-buffer
// tallies) restarts at zero; BenchmarkTraceReplay uses Rewind to measure
// the replay hot loop without re-paying program load and host data
// transfer every iteration.
func (m *Machine) Rewind() {
	m.preempt.Store(false)
	m.midRun = false
	for _, c := range m.mpus {
		c.pc = 0
		c.cycles = 0
		c.issue = 0
		c.ras.Reset()
		c.rcache.ResetCounters()
		c.pbuf.Reset()
		c.done = len(c.prog) == 0
		c.blocked = false
		c.local = Stats{}
		c.sendDst = 0
		c.recvSrc = 0
		c.waitSend = false
		c.waitRecv = false
		c.hdr = c.hdr[:0]
		c.act = c.act[:0]
		c.tm.Reset()
		c.ens = ensState{}
		c.seg = 0
	}
}
