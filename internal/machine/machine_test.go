package machine

import (
	"strings"
	"testing"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/ezpim"
	"mpu/internal/isa"
)

func addr(rfh, vrf int) controlpath.VRFAddr {
	return controlpath.VRFAddr{RFH: uint8(rfh), VRF: uint8(vrf)}
}

func mustAssemble(t *testing.T, src string) isa.Program {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func newMachine(t *testing.T, spec *backends.Spec, mode Mode, mpus int) *Machine {
	t.Helper()
	m, err := New(Config{Spec: spec, Mode: mode, NumMPUs: mpus})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const vecAddSrc = `
	COMPUTE rfh0 vrf0
	ADD r0 r1 r2
	COMPUTE_DONE
`

func TestVectorAddOnAllBackends(t *testing.T) {
	for _, spec := range backends.All() {
		m := newMachine(t, spec, ModeMPU, 1)
		if err := m.LoadAll(mustAssemble(t, vecAddSrc)); err != nil {
			t.Fatal(err)
		}
		a := make([]uint64, spec.Lanes)
		b := make([]uint64, spec.Lanes)
		for i := range a {
			a[i] = uint64(i * 3)
			b[i] = uint64(i*i + 7)
		}
		if err := m.WriteVector(0, addr(0, 0), 0, a); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteVector(0, addr(0, 0), 1, b); err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		got, err := m.ReadVector(0, addr(0, 0), 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if got[i] != a[i]+b[i] {
				t.Fatalf("%s lane %d: got %d, want %d", spec.Name, i, got[i], a[i]+b[i])
			}
		}
		if st.Cycles <= 0 || st.MicroOps == 0 || st.Ensembles != 1 {
			t.Fatalf("%s: implausible stats %+v", spec.Name, st)
		}
		if st.DatapathEnergyPJ <= 0 {
			t.Fatalf("%s: no datapath energy recorded", spec.Name)
		}
	}
}

// Dynamic divergent loop: each lane decrements its value to zero, counting
// iterations. Lanes exit independently through the mask register; the EFI
// ends the loop when every lane is done (§V-C, §VI-B).
const countdownSrc = `
	COMPUTE rfh0 vrf0
	INIT0 r2
	INIT1 r3
	INIT0 r1
	CMPGT r0 r2
	SETMASK cond
loop:
	SUB r0 r3 r0
	INC r1 r1
	CMPGT r0 r2
	SETMASK cond
	JUMP_COND loop
	UNMASK
	COMPUTE_DONE
`

func TestDynamicLoopWithDivergence(t *testing.T) {
	spec := backends.RACER()
	m := newMachine(t, spec, ModeMPU, 1)
	if err := m.LoadAll(mustAssemble(t, countdownSrc)); err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, spec.Lanes)
	for i := range vals {
		vals[i] = uint64(i % 9) // includes zero-iteration lanes
	}
	if err := m.WriteVector(0, addr(0, 0), 0, vals); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	count, _ := m.ReadVector(0, addr(0, 0), 1)
	rem, _ := m.ReadVector(0, addr(0, 0), 0)
	for i := range vals {
		if count[i] != vals[i] {
			t.Fatalf("lane %d: counted %d iterations, want %d", i, count[i], vals[i])
		}
		if rem[i] != 0 {
			t.Fatalf("lane %d: residue %d, want 0", i, rem[i])
		}
	}
}

// TestSchedulerRounds: more VRFs than the thermal limit → the body replays
// in rounds (Fig. 10) and every VRF still computes correctly.
func TestSchedulerRounds(t *testing.T) {
	spec := backends.RACER() // 1 active VRF per RFH
	src := `
		COMPUTE rfh0 vrf0
		COMPUTE rfh0 vrf1
		COMPUTE rfh0 vrf2
		COMPUTE rfh1 vrf0
		ADD r0 r1 r2
		COMPUTE_DONE
	`
	m := newMachine(t, spec, ModeMPU, 1)
	if err := m.LoadAll(mustAssemble(t, src)); err != nil {
		t.Fatal(err)
	}
	targets := []controlpath.VRFAddr{addr(0, 0), addr(0, 1), addr(0, 2), addr(1, 0)}
	for k, a := range targets {
		va := make([]uint64, spec.Lanes)
		vb := make([]uint64, spec.Lanes)
		for i := range va {
			va[i] = uint64(100*k + i)
			vb[i] = uint64(k + 1)
		}
		m.WriteVector(0, a, 0, va)
		m.WriteVector(0, a, 1, vb)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// rfh0 has 3 VRFs at limit 1 → 3 rounds; rfh1's single VRF rides round 0.
	if st.Rounds != 3 {
		t.Fatalf("Rounds = %d, want 3", st.Rounds)
	}
	for k, a := range targets {
		got, _ := m.ReadVector(0, a, 2)
		for i := range got {
			want := uint64(100*k+i) + uint64(k+1)
			if got[i] != want {
				t.Fatalf("vrf %v lane %d: got %d, want %d", a, i, got[i], want)
			}
		}
	}
}

// TestMIMDRAMSingleRound: with full activation allowed, the same four VRFs
// execute in one round.
func TestMIMDRAMSingleRound(t *testing.T) {
	spec := backends.MIMDRAM()
	src := `
		COMPUTE rfh0 vrf0
		COMPUTE rfh0 vrf1
		COMPUTE rfh0 vrf2
		COMPUTE rfh1 vrf0
		ADD r0 r1 r2
		COMPUTE_DONE
	`
	m := newMachine(t, spec, ModeMPU, 1)
	m.LoadAll(mustAssemble(t, src))
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 1 {
		t.Fatalf("Rounds = %d, want 1 (no thermal throttle)", st.Rounds)
	}
}

func TestActiveVRFsOverride(t *testing.T) {
	spec := backends.RACER()
	m, err := New(Config{Spec: spec, NumMPUs: 1, ActiveVRFsOverride: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := `
		COMPUTE rfh0 vrf0
		COMPUTE rfh0 vrf1
		ADD r0 r1 r2
		COMPUTE_DONE
	`
	m.LoadAll(mustAssemble(t, src))
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 1 {
		t.Fatalf("Rounds = %d, want 1 with override 2", st.Rounds)
	}
}

// TestBaselineOffloadsControlFlow: the Baseline configuration must pay a CPU
// round trip per JUMP_COND evaluation and be dramatically slower (Fig. 1).
func TestBaselineOffloadsControlFlow(t *testing.T) {
	spec := backends.RACER()
	prog := mustAssemble(t, countdownSrc)
	vals := make([]uint64, spec.Lanes)
	for i := range vals {
		vals[i] = 8
	}

	run := func(mode Mode) *Stats {
		m := newMachine(t, spec, mode, 1)
		m.LoadAll(prog)
		m.WriteVector(0, addr(0, 0), 0, vals)
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	mpuSt := run(ModeMPU)
	baseSt := run(ModeBaseline)
	if mpuSt.Offloads != 0 {
		t.Fatalf("MPU mode performed %d offloads", mpuSt.Offloads)
	}
	if baseSt.Offloads != 8 { // one JUMP_COND evaluation per iteration
		t.Fatalf("Baseline offloads = %d, want 8", baseSt.Offloads)
	}
	if baseSt.Cycles < 4*mpuSt.Cycles {
		t.Fatalf("Baseline (%d cycles) not substantially slower than MPU (%d)", baseSt.Cycles, mpuSt.Cycles)
	}
	if baseSt.HostEnergyPJ <= 0 {
		t.Fatal("Baseline recorded no host energy")
	}
	if mpuSt.HostEnergyPJ != 0 {
		t.Fatal("MPU mode recorded host energy")
	}
	if mpuSt.FrontendStaticPJ <= 0 {
		t.Fatal("MPU mode recorded no front-end static energy")
	}
}

func TestSubroutineCall(t *testing.T) {
	// Binary layout convention (also emitted by ezpim): an entry JUMP hops
	// over the subroutine region into main, and execution halts by running
	// off the end of the binary.
	src := `
		JUMP main
	sub:
		ADD r0 r1 r2
		RETURN
	main:
		COMPUTE rfh0 vrf0
		JUMP sub
		COMPUTE_DONE
	`
	m := newMachine(t, backends.RACER(), ModeMPU, 1)
	m.LoadAll(mustAssemble(t, src))
	a := []uint64{5, 6, 7}
	b := []uint64{10, 20, 30}
	m.WriteVector(0, addr(0, 0), 0, a)
	m.WriteVector(0, addr(0, 0), 1, b)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadVector(0, addr(0, 0), 2)
	for i := range a {
		if got[i] != a[i]+b[i] {
			t.Fatalf("lane %d: got %d, want %d", i, got[i], a[i]+b[i])
		}
	}
}

func TestLocalTransferEnsemble(t *testing.T) {
	src := `
		MOVE rfh0 rfh1
		MEMCPY vrf0 r3 vrf2 r5
		MOVE_DONE
	`
	m := newMachine(t, backends.RACER(), ModeMPU, 1)
	m.LoadAll(mustAssemble(t, src))
	vals := []uint64{1, 2, 3, 4}
	m.WriteVector(0, addr(0, 0), 3, vals)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadVector(0, addr(1, 2), 5)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("lane %d: got %d, want %d", i, got[i], vals[i])
		}
	}
	if st.Transfers != 1 || st.TransferCycles <= 0 {
		t.Fatalf("transfer stats: %+v", st)
	}
}

func TestMultiPairTransfer(t *testing.T) {
	src := `
		MOVE rfh0 rfh1
		MOVE rfh2 rfh3
		MEMCPY vrf0 r0 vrf0 r0
		MOVE_DONE
	`
	m := newMachine(t, backends.RACER(), ModeMPU, 1)
	m.LoadAll(mustAssemble(t, src))
	m.WriteVector(0, addr(0, 0), 0, []uint64{11})
	m.WriteVector(0, addr(2, 0), 0, []uint64{22})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got1, _ := m.ReadVector(0, addr(1, 0), 0)
	got3, _ := m.ReadVector(0, addr(3, 0), 0)
	if got1[0] != 11 || got3[0] != 22 {
		t.Fatalf("pair transfers: got %d and %d", got1[0], got3[0])
	}
}

func TestInterMPUSendRecv(t *testing.T) {
	sender := mustAssemble(t, `
		SEND mpu1
		MOVE rfh0 rfh0
		MEMCPY vrf0 r1 vrf0 r2
		MOVE_DONE
		SEND_DONE
	`)
	receiver := mustAssemble(t, `
		RECV mpu0
	`)
	m := newMachine(t, backends.RACER(), ModeMPU, 2)
	if err := m.LoadProgram(0, sender); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(1, receiver); err != nil {
		t.Fatal(err)
	}
	vals := []uint64{42, 43, 44}
	m.WriteVector(0, addr(0, 0), 1, vals)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadVector(1, addr(0, 0), 2)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("lane %d: got %d, want %d", i, got[i], vals[i])
		}
	}
	if st.Sends != 1 || st.InterMPUCycles <= 0 || st.NoCEnergyPJ <= 0 {
		t.Fatalf("inter-MPU stats: %+v", st)
	}
	// Clocks must be synchronized by the rendezvous.
	if st.PerMPUCycles[0] != st.PerMPUCycles[1] {
		t.Fatalf("clocks diverged after rendezvous: %v", st.PerMPUCycles)
	}
}

func TestBaselineSendPaysOffload(t *testing.T) {
	sender := mustAssemble(t, "SEND mpu1\nMOVE rfh0 rfh0\nMEMCPY vrf0 r0 vrf0 r0\nMOVE_DONE\nSEND_DONE")
	receiver := mustAssemble(t, "RECV mpu0")
	m := newMachine(t, backends.RACER(), ModeBaseline, 2)
	m.LoadProgram(0, sender)
	m.LoadProgram(1, receiver)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Offloads != 1 {
		t.Fatalf("Baseline SEND offloads = %d, want 1", st.Offloads)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Both MPUs SEND to each other — nobody reaches RECV.
	prog0 := mustAssemble(t, "SEND mpu1\nMOVE rfh0 rfh0\nMEMCPY vrf0 r0 vrf0 r0\nMOVE_DONE\nSEND_DONE\nRECV mpu1")
	prog1 := mustAssemble(t, "SEND mpu0\nMOVE rfh0 rfh0\nMEMCPY vrf0 r0 vrf0 r0\nMOVE_DONE\nSEND_DONE\nRECV mpu0")
	m := newMachine(t, backends.RACER(), ModeMPU, 2)
	m.LoadProgram(0, prog0)
	m.LoadProgram(1, prog1)
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestProgramErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"arith outside ensemble", "ADD r0 r1 r2"},
		{"missing compute_done", "COMPUTE rfh0 vrf0\nADD r0 r1 r2"},
		{"nested compute", "COMPUTE rfh0 vrf0\nCOMPUTE_DONE\nCOMPUTE_DONE"},
		{"move inside compute", "COMPUTE rfh0 vrf0\nMOVE rfh0 rfh1\nCOMPUTE_DONE"},
		{"memcpy outside move", "MEMCPY vrf0 r0 vrf0 r0"},
		{"missing move_done", "MOVE rfh0 rfh1\nMEMCPY vrf0 r0 vrf0 r0"},
		{"arith inside move", "MOVE rfh0 rfh1\nADD r0 r1 r2\nMOVE_DONE"},
		{"return without jump", "RETURN"},
	}
	for _, c := range cases {
		m := newMachine(t, backends.RACER(), ModeMPU, 1)
		m.LoadAll(mustAssemble(t, c.src))
		if _, err := m.Run(); err == nil {
			t.Errorf("%s: Run succeeded, want error", c.name)
		}
	}
}

func TestRunawayLoopAborts(t *testing.T) {
	// Mask never clears → JUMP_COND loops forever; MaxSteps must abort.
	src := `
		COMPUTE rfh0 vrf0
	loop:
		NOP
		JUMP_COND loop
		COMPUTE_DONE
	`
	m, err := New(Config{Spec: backends.RACER(), NumMPUs: 1, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	m.LoadAll(mustAssemble(t, src))
	if _, err := m.Run(); err == nil {
		t.Fatal("runaway loop did not abort")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := New(Config{Spec: backends.RACER(), NumMPUs: 10_000}); err == nil {
		t.Error("excess MPU count accepted")
	}
	m := newMachine(t, backends.RACER(), ModeMPU, 1)
	if err := m.WriteVector(5, addr(0, 0), 0, nil); err == nil {
		t.Error("bad MPU id accepted")
	}
	if err := m.WriteVector(0, addr(20, 0), 0, nil); err == nil {
		t.Error("bad RFH accepted")
	}
	if err := m.WriteVector(0, addr(0, 0), 99, nil); err == nil {
		t.Error("bad register accepted")
	}
	if _, err := m.ReadVector(0, addr(0, 200), 0); err == nil {
		t.Error("bad VRF accepted")
	}
}

func TestComputeScale(t *testing.T) {
	prog := mustAssemble(t, vecAddSrc)
	run := func(scale float64) int64 {
		m, err := New(Config{Spec: backends.RACER(), NumMPUs: 1, ComputeScale: scale})
		if err != nil {
			t.Fatal(err)
		}
		m.LoadAll(prog)
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.ComputeCycles
	}
	if c1, c4 := run(1), run(4); c4 < 3*c1 {
		t.Fatalf("ComputeScale 4 gave %d cycles vs %d", c4, c1)
	}
}

func TestRecipeCacheWarmup(t *testing.T) {
	// Two identical ADDs: the second must hit the recipe table.
	src := `
		COMPUTE rfh0 vrf0
		ADD r0 r1 r2
		ADD r2 r1 r3
		COMPUTE_DONE
	`
	m := newMachine(t, backends.RACER(), ModeMPU, 1)
	m.LoadAll(mustAssemble(t, src))
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.RecipeHits == 0 || st.RecipeMisses == 0 {
		t.Fatalf("recipe cache hits=%d misses=%d", st.RecipeHits, st.RecipeMisses)
	}
	if st.DecodeStalls <= 0 {
		t.Fatal("no decode stalls recorded for the first ADD")
	}
}

func TestStatsTimeAndEnergyHelpers(t *testing.T) {
	st := &Stats{Cycles: 2_000_000_000, DatapathEnergyPJ: 100, HostEnergyPJ: 50}
	if got := st.TimeSeconds(1.0); got != 2.0 {
		t.Fatalf("TimeSeconds = %v", got)
	}
	if got := st.TotalEnergyPJ(); got != 150 {
		t.Fatalf("TotalEnergyPJ = %v", got)
	}
}

func TestEmptyProgramFinishesImmediately(t *testing.T) {
	m := newMachine(t, backends.RACER(), ModeMPU, 2)
	m.LoadProgram(0, isa.Program{})
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 0 {
		t.Fatalf("empty machine ran %d cycles", st.Cycles)
	}
}

func TestTraceOutput(t *testing.T) {
	var buf strings.Builder
	m, err := New(Config{Spec: backends.RACER(), NumMPUs: 1, Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	m.LoadAll(mustAssemble(t, vecAddSrc))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ensemble:", "round 0:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}

	// Baseline traces host offloads.
	buf.Reset()
	m, _ = New(Config{Spec: backends.RACER(), NumMPUs: 1, Mode: ModeBaseline, Trace: &buf})
	m.LoadAll(mustAssemble(t, countdownSrc))
	m.WriteVector(0, addr(0, 0), 0, []uint64{2})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "host offload") {
		t.Fatal("trace missing offload events")
	}
}

// TestSPMDMultiMPU: the same binary on several MPUs computes independently.
func TestSPMDMultiMPU(t *testing.T) {
	m := newMachine(t, backends.RACER(), ModeMPU, 3)
	if err := m.LoadAll(mustAssemble(t, vecAddSrc)); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		m.WriteVector(id, addr(0, 0), 0, []uint64{uint64(id * 100)})
		m.WriteVector(id, addr(0, 0), 1, []uint64{7})
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		got, _ := m.ReadVector(id, addr(0, 0), 2)
		if got[0] != uint64(id*100+7) {
			t.Fatalf("mpu%d: got %d", id, got[0])
		}
	}
	if len(st.PerMPUCycles) != 3 {
		t.Fatalf("per-MPU clocks = %d entries", len(st.PerMPUCycles))
	}
}

// TestISUCapacity: binaries beyond the 2 MB instruction storage are rejected.
func TestISUCapacity(t *testing.T) {
	m := newMachine(t, backends.RACER(), ModeMPU, 1)
	big := make(isa.Program, (2<<20)/4+1)
	for i := range big {
		big[i] = isa.Nop()
	}
	if err := m.LoadProgram(0, big); err == nil {
		t.Fatal("oversized binary accepted")
	}
}

// TestPlaybackSpill: ensemble bodies beyond 1024 instructions refetch from
// the ISU and are counted.
func TestPlaybackSpill(t *testing.T) {
	b := ezpim.NewBuilder()
	b.Ensemble([]controlpath.VRFAddr{{}}, func() {
		for i := 0; i < 1100; i++ {
			b.Mov(0, 1)
		}
	})
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t, backends.RACER(), ModeMPU, 1)
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.PlaybackSpill == 0 {
		t.Fatal("oversized body did not spill the playback buffer")
	}
}
