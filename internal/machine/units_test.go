package machine

// Unit check for the front-end energy constants: the machine charges
// frontend static/dynamic energy in pJ per cycle, and at the 1 GHz clock a
// front end drawing P mW spends exactly P pJ each cycle (1 mW × 1 ns =
// 1 pJ). The per-cycle constants must therefore equal the mW figures
// published by internal/frontend — numerically, not just by coincidence —
// and a run's totals must reproduce the frontend package's own energy
// helpers.

import (
	"testing"

	"mpu/internal/backends"
	"mpu/internal/frontend"
)

func TestFrontendEnergyUnits(t *testing.T) {
	if frontend.ClockGHz != 1.0 {
		t.Fatalf("frontend clock is %g GHz; the machine's pJ-per-cycle constants assume 1 GHz", frontend.ClockGHz)
	}
	if frontendStaticPJPerCycle != frontend.StaticPowerMW {
		t.Errorf("frontendStaticPJPerCycle = %g, want frontend.StaticPowerMW = %g",
			frontendStaticPJPerCycle, frontend.StaticPowerMW)
	}
	if frontendDynamicPJPerCycle != frontend.DynamicPowerMW {
		t.Errorf("frontendDynamicPJPerCycle = %g, want frontend.DynamicPowerMW = %g",
			frontendDynamicPJPerCycle, frontend.DynamicPowerMW)
	}

	// End to end: a run's static energy must equal the frontend package's
	// own accounting for the same MPU count and cycle count.
	const mpus = 3
	m := newMachine(t, backends.RACER(), ModeMPU, mpus)
	if err := m.LoadAll(mustAssemble(t, vecAddSrc)); err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := frontend.StaticEnergyPJ(mpus, st.Cycles); st.FrontendStaticPJ != want {
		t.Errorf("FrontendStaticPJ = %g, want frontend.StaticEnergyPJ(%d, %d) = %g",
			st.FrontendStaticPJ, mpus, st.Cycles, want)
	}
	if st.FrontendDynamicPJ <= 0 {
		t.Errorf("FrontendDynamicPJ = %g, want > 0", st.FrontendDynamicPJ)
	}
}
