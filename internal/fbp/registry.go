package fbp

import (
	"fmt"
	"sort"
	"strconv"

	"mpu/internal/apps"
	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/ezpim"
	"mpu/internal/workloads"
)

// Bound is one edge seen from a node: the peer MPU, this node's port, and
// the peer's port.
type Bound struct {
	Peer          int
	Local, Remote Port
}

// Ctx is the view a component gets while emitting its node's program.
// Ins/Outs are the node's edges sorted by peer MPU ascending — the order
// streaming components issue their RECVs and SENDs in, which together with
// the forward-edge rule keeps the rendezvous schedule deadlock-free.
type Ctx struct {
	B     *ezpim.Builder
	Spec  *backends.Spec
	Graph *Graph
	Node  *Node
	MPU   int
	Ins   []Bound
	Outs  []Bound
}

// Param documents one component parameter (bound by IIP).
type Param struct {
	Name, Doc, Default string
}

// Component is one registry entry: a node body generator.
type Component struct {
	Name   string
	Doc    string
	Params []Param
	Emit   func(c *Ctx) error
}

// Components returns the registry sorted by name.
func Components() []*Component {
	out := make([]*Component, 0, len(registry))
	for _, c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the named component, or nil.
func Lookup(name string) *Component { return registry[name] }

func (c *Ctx) errf(format string, args ...any) error {
	return &CompileError{Node: c.Node.Name, Msg: fmt.Sprintf(format, args...)}
}

// checkParams rejects IIP bindings the component does not declare.
func (c *Ctx) checkParams(comp *Component) error {
	for k := range c.Node.Params {
		known := false
		for _, p := range comp.Params {
			if p.Name == k {
				known = true
				break
			}
		}
		if !known {
			return c.errf("unknown parameter %q for component %s", k, comp.Name)
		}
	}
	return nil
}

func (c *Ctx) strParam(name, def string) string {
	if v, ok := c.Node.Params[name]; ok {
		return v
	}
	return def
}

func (c *Ctx) intParam(name string, def, min, max int) (int, error) {
	v, ok := c.Node.Params[name]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, c.errf("parameter %s: %q is not an integer", name, v)
	}
	if n < min || n > max {
		return 0, c.errf("parameter %s: %d outside [%d,%d]", name, n, min, max)
	}
	return n, nil
}

func (c *Ctx) uintParam(name string, def uint64) (uint64, error) {
	v, ok := c.Node.Params[name]
	if !ok {
		return def, nil
	}
	n, err := strconv.ParseUint(v, 0, 64)
	if err != nil {
		return 0, c.errf("parameter %s: %q is not an unsigned integer", name, v)
	}
	return n, nil
}

// requireForward enforces the streaming-DAG placement rule: data flows from
// lower-placed nodes to higher-placed ones, so recv-before-send per node is
// a legal schedule (commlint proves the composition regardless).
func (c *Ctx) requireForward() error {
	for _, in := range c.Ins {
		if in.Peer >= c.MPU {
			return c.errf("edge from node on MPU %d: streaming inputs must come from earlier nodes (graph order is placement order)", in.Peer)
		}
	}
	for _, out := range c.Outs {
		if out.Peer <= c.MPU {
			return c.errf("edge to node on MPU %d: streaming outputs must go to later nodes (use EDStep for ring topologies)", out.Peer)
		}
	}
	return nil
}

// streamLayout is the generic streaming-component data layout: register file
// v of the record lives at (rfh v, vrf 0), moved by the identity pair map —
// the same shape the kernel harness and llmencode use.
func streamLayout(vrfs int) ([]controlpath.VRFAddr, []controlpath.RFHPair) {
	addrs := make([]controlpath.VRFAddr, vrfs)
	pairs := make([]controlpath.RFHPair, vrfs)
	for v := 0; v < vrfs; v++ {
		addrs[v] = controlpath.VRFAddr{RFH: uint8(v), VRF: 0}
		pairs[v] = controlpath.RFHPair{Src: uint8(v), Dst: uint8(v)}
	}
	return addrs, pairs
}

// dstReg is the register a downstream edge receives into: the index of the
// peer's IN port (IN[3] lands in r3), r0 when unindexed.
func dstReg(out Bound) (int, error) {
	r := out.Remote.Index
	if r < 0 {
		r = 0
	}
	if r >= ezpim.UserRegs {
		return 0, fmt.Errorf("destination port %s names register %d beyond the %d user registers", out.Remote, r, ezpim.UserRegs)
	}
	return r, nil
}

// foldOp maps a Merge/Reduce op name to its builder emitter.
func foldOp(b *ezpim.Builder, name string) (func(rs, rt, rd int), error) {
	switch name {
	case "add":
		return b.Add, nil
	case "mul":
		return b.Mul, nil
	case "min":
		return b.Min, nil
	case "max":
		return b.Max, nil
	case "and":
		return b.And, nil
	case "or":
		return b.Or, nil
	case "xor":
		return b.Xor, nil
	}
	return nil, fmt.Errorf("unknown fold op %q (add, mul, min, max, and, or, xor)", name)
}

var registry = map[string]*Component{}

func register(c *Component) { registry[c.Name] = c }

func init() {
	register(&Component{
		Name: "Map",
		Doc:  "applies one catalog kernel to every record: inputs r0..rI-1, result in the kernel's output register, forwarded downstream into the peer's IN[i] register",
		Params: []Param{
			{Name: "kernel", Doc: "catalog kernel name (required)", Default: ""},
			{Name: "vrfs", Doc: "record VRFs per MPU", Default: "1"},
		},
		Emit: emitMap,
	})
	register(&Component{
		Name: "Split",
		Doc:  "fans the record out: forwards registers r0..regs-1 unchanged to every downstream node",
		Params: []Param{
			{Name: "regs", Doc: "leading registers to forward", Default: "1"},
			{Name: "vrfs", Doc: "record VRFs per MPU", Default: "1"},
		},
		Emit: emitSplit,
	})
	register(&Component{
		Name: "Merge",
		Doc:  "folds the contributions staged by its IN[i] edges (register i each) into one value with op, forwarded downstream",
		Params: []Param{
			{Name: "op", Doc: "fold operation: add, mul, min, max, and, or, xor", Default: "add"},
			{Name: "vrfs", Doc: "record VRFs per MPU", Default: "1"},
		},
		Emit: emitMerge,
	})
	register(&Component{
		Name: "Filter",
		Doc:  "zeroes every lane of the record register that falls below min (lane-predicated, no divergence)",
		Params: []Param{
			{Name: "reg", Doc: "record register to threshold", Default: "0"},
			{Name: "min", Doc: "keep lanes with value >= min", Default: "1"},
			{Name: "vrfs", Doc: "record VRFs per MPU", Default: "1"},
		},
		Emit: emitFilter,
	})
	register(&Component{
		Name: "Reduce",
		Doc:  "folds the record register into a resident accumulator that persists across streamed records (read it back with a dump)",
		Params: []Param{
			{Name: "op", Doc: "fold operation: add, mul, min, max, and, or, xor", Default: "add"},
			{Name: "reg", Doc: "record register folded in", Default: "0"},
			{Name: "into", Doc: "accumulator register", Default: "48"},
			{Name: "vrfs", Doc: "record VRFs per MPU", Default: "1"},
		},
		Emit: emitReduce,
	})
	register(&Component{
		Name: "EDStep",
		Doc:  "one position of the systolic edit-distance ring (§VIII-D): scores visiting queries against resident chunks and rotates them; IN/OUT edges must close an even-length ring in placement order",
		Params: []Param{
			{Name: "vrfs", Doc: "resident-read VRFs per MPU", Default: "4"},
			{Name: "steps", Doc: "systolic steps (default: full rotation)", Default: ""},
		},
		Emit: emitEDStep,
	})
	register(&Component{
		Name: "LLMCoord",
		Doc:  "llmencode coordinator (§VIII-D): broadcasts weights, scatters token batches over OUT[w], computes batch 0, gathers results over IN[w]; worker w must sit on MPU coord+w",
		Params: []Param{
			{Name: "vrfs", Doc: "token VRFs per participant", Default: "2"},
		},
		Emit: emitLLMCoord,
	})
	register(&Component{
		Name: "LLMWorker",
		Doc:  "llmencode worker: receives weights and its token batch from the coordinator, runs the encoder block, sends probabilities back into staging column w",
		Params: []Param{
			{Name: "vrfs", Doc: "token VRFs per participant", Default: "2"},
		},
		Emit: emitLLMWorker,
	})
}

func emitMap(c *Ctx) error {
	if err := c.requireForward(); err != nil {
		return err
	}
	kname := c.strParam("kernel", "")
	if kname == "" {
		return c.errf("Map requires a kernel parameter ('name' -> KERNEL %s)", c.Node.Name)
	}
	k := workloads.ByName(kname)
	if k == nil {
		return c.errf("unknown kernel %q", kname)
	}
	vrfs, err := c.intParam("vrfs", 1, 1, c.Spec.RFHsPerMPU)
	if err != nil {
		return err
	}
	addrs, pairs := streamLayout(vrfs)
	b := c.B
	if k.Subs != nil {
		k.Subs(b)
	}
	for _, in := range c.Ins {
		b.Recv(in.Peer)
	}
	b.Ensemble(addrs, func() { k.Emit(b) })
	for _, out := range c.Outs {
		dst, err := dstReg(out)
		if err != nil {
			return c.errf("%v", err)
		}
		b.Send(out.Peer, pairs, func(t *ezpim.Transfer) {
			t.Copy(0, k.Out, 0, dst)
		})
	}
	return nil
}

func emitSplit(c *Ctx) error {
	if err := c.requireForward(); err != nil {
		return err
	}
	if len(c.Outs) == 0 {
		return c.errf("Split needs at least one OUT edge")
	}
	regs, err := c.intParam("regs", 1, 1, ezpim.UserRegs)
	if err != nil {
		return err
	}
	vrfs, err := c.intParam("vrfs", 1, 1, c.Spec.RFHsPerMPU)
	if err != nil {
		return err
	}
	_, pairs := streamLayout(vrfs)
	b := c.B
	for _, in := range c.Ins {
		b.Recv(in.Peer)
	}
	for _, out := range c.Outs {
		b.Send(out.Peer, pairs, func(t *ezpim.Transfer) {
			for r := 0; r < regs; r++ {
				t.Copy(0, r, 0, r)
			}
		})
	}
	return nil
}

func emitMerge(c *Ctx) error {
	if err := c.requireForward(); err != nil {
		return err
	}
	if len(c.Ins) < 2 {
		return c.errf("Merge needs at least two IN edges")
	}
	vrfs, err := c.intParam("vrfs", 1, 1, c.Spec.RFHsPerMPU)
	if err != nil {
		return err
	}
	b := c.B
	fold, err := foldOp(b, c.strParam("op", "add"))
	if err != nil {
		return c.errf("%v", err)
	}
	// Each in-edge stages its contribution in the register its IN[i] port
	// names; the fold runs in index order into the lowest one.
	staged := make([]int, 0, len(c.Ins))
	seen := map[int]bool{}
	for _, in := range c.Ins {
		r := in.Local.Index
		if r < 0 {
			r = 0
		}
		if seen[r] {
			return c.errf("two IN edges stage into register %d — give each a distinct IN[i] index", r)
		}
		seen[r] = true
		staged = append(staged, r)
	}
	sort.Ints(staged)
	addrs, pairs := streamLayout(vrfs)
	for _, in := range c.Ins {
		b.Recv(in.Peer)
	}
	acc := staged[0]
	b.Ensemble(addrs, func() {
		for _, r := range staged[1:] {
			fold(acc, r, acc)
		}
	})
	for _, out := range c.Outs {
		dst, err := dstReg(out)
		if err != nil {
			return c.errf("%v", err)
		}
		b.Send(out.Peer, pairs, func(t *ezpim.Transfer) {
			t.Copy(0, acc, 0, dst)
		})
	}
	return nil
}

func emitFilter(c *Ctx) error {
	if err := c.requireForward(); err != nil {
		return err
	}
	// The threshold broadcast lives in the top user register, clear of
	// record data and kernel scratch.
	const thr = ezpim.UserRegs - 1
	reg, err := c.intParam("reg", 0, 0, thr-1)
	if err != nil {
		return err
	}
	min, err := c.uintParam("min", 1)
	if err != nil {
		return err
	}
	vrfs, err := c.intParam("vrfs", 1, 1, c.Spec.RFHsPerMPU)
	if err != nil {
		return err
	}
	addrs, pairs := streamLayout(vrfs)
	b := c.B
	for _, in := range c.Ins {
		b.Recv(in.Peer)
	}
	b.Ensemble(addrs, func() {
		b.Const(thr, min)
		b.If(ezpim.Lt(reg, thr), func() { b.Init0(reg) }, nil)
	})
	for _, out := range c.Outs {
		dst, err := dstReg(out)
		if err != nil {
			return c.errf("%v", err)
		}
		b.Send(out.Peer, pairs, func(t *ezpim.Transfer) {
			t.Copy(0, reg, 0, dst)
		})
	}
	return nil
}

func emitReduce(c *Ctx) error {
	if err := c.requireForward(); err != nil {
		return err
	}
	reg, err := c.intParam("reg", 0, 0, ezpim.UserRegs-1)
	if err != nil {
		return err
	}
	into, err := c.intParam("into", 48, 0, ezpim.UserRegs-1)
	if err != nil {
		return err
	}
	if into == reg {
		return c.errf("accumulator register %d collides with the record register", into)
	}
	vrfs, err := c.intParam("vrfs", 1, 1, c.Spec.RFHsPerMPU)
	if err != nil {
		return err
	}
	b := c.B
	fold, err := foldOp(b, c.strParam("op", "add"))
	if err != nil {
		return c.errf("%v", err)
	}
	addrs, pairs := streamLayout(vrfs)
	for _, in := range c.Ins {
		b.Recv(in.Peer)
	}
	b.Ensemble(addrs, func() { fold(into, reg, into) })
	for _, out := range c.Outs {
		dst, err := dstReg(out)
		if err != nil {
			return c.errf("%v", err)
		}
		b.Send(out.Peer, pairs, func(t *ezpim.Transfer) {
			t.Copy(0, into, 0, dst)
		})
	}
	return nil
}

// ringLength walks the single-out-edge cycle this node sits on and checks
// every member is an EDStep. Placement order must advance around the ring
// so that next == (id+1) mod ring, matching the hand-wired topology.
func (c *Ctx) ringLength() (int, error) {
	outOf := make(map[int]int, len(c.Graph.Nodes)) // node index -> successor
	for _, e := range c.Graph.Edges {
		if _, dup := outOf[e.From]; dup && c.Graph.Nodes[e.From].Component == "EDStep" {
			return 0, c.errf("EDStep node %s has two OUT edges", c.Graph.Nodes[e.From].Name)
		}
		outOf[e.From] = e.To
	}
	length := 0
	cur := c.Node.Index
	for {
		n := c.Graph.Nodes[cur]
		if n.Component != "EDStep" {
			return 0, c.errf("ring member %s is %s, not EDStep", n.Name, n.Component)
		}
		next, ok := outOf[cur]
		if !ok {
			return 0, c.errf("ring member %s has no OUT edge — EDStep edges must close a ring", n.Name)
		}
		length++
		cur = next
		if cur == c.Node.Index {
			break
		}
		if length > len(c.Graph.Nodes) {
			return 0, c.errf("EDStep edges do not close a ring")
		}
	}
	return length, nil
}

func emitEDStep(c *Ctx) error {
	if len(c.Ins) != 1 || len(c.Outs) != 1 {
		return c.errf("EDStep needs exactly one IN and one OUT edge (a ring)")
	}
	ring, err := c.ringLength()
	if err != nil {
		return err
	}
	if ring%2 != 0 || ring < 2 {
		return c.errf("ring size %d must be even and >= 2 (the alternating send/recv phases need it)", ring)
	}
	next, prev := c.Outs[0].Peer, c.Ins[0].Peer
	if next != (c.MPU+1)%ring || prev != (c.MPU+ring-1)%ring {
		return c.errf("ring must advance in placement order: OUT -> next node, so node i feeds node (i+1) mod %d", ring)
	}
	vrfs, err := c.intParam("vrfs", 4, 1, c.Spec.VRFsPerMPU())
	if err != nil {
		return err
	}
	steps, err := c.intParam("steps", ring, 1, ring)
	if err != nil {
		return err
	}
	// From here the emission replicates buildEditDistanceBuilders for ring
	// position c.MPU, instruction for instruction — the parity tests pin it.
	addrs, pairs := apps.EditDistanceLayout(c.Spec, vrfs)
	maxVRFID := (vrfs - 1) / c.Spec.RFHsPerMPU
	b := c.B
	for step := 0; step < steps; step++ {
		b.Ensemble(addrs, func() { apps.EmitEditStep(b) })
		send := func() {
			b.Send(next, pairs, func(t *ezpim.Transfer) {
				for v := 0; v <= maxVRFID; v++ {
					t.Copy(v, apps.EDQueryReg, v, apps.EDStageReg)
				}
			})
		}
		recv := func() { b.Recv(prev) }
		if c.MPU%2 == 0 {
			send()
			recv()
		} else {
			recv()
			send()
		}
		b.Ensemble(addrs, func() { b.Mov(apps.EDStageReg, apps.EDQueryReg) })
	}
	return nil
}

func emitLLMCoord(c *Ctx) error {
	workers := len(c.Outs)
	if workers == 0 || len(c.Ins) != workers {
		return c.errf("LLMCoord needs matching OUT[w] -> worker and worker -> IN[w] edges (got %d out, %d in)", workers, len(c.Ins))
	}
	if workers >= c.Spec.VRFsPerRFH {
		return c.errf("%d workers exceed the coordinator's staging capacity (%d VRF columns)", workers, c.Spec.VRFsPerRFH)
	}
	vrfs, err := c.intParam("vrfs", 2, 1, c.Spec.RFHsPerMPU)
	if err != nil {
		return err
	}
	// OUT[w]/IN[w] indices double as the staging VRF column worker w's batch
	// and results occupy, so worker w must sit on MPU coord+w.
	for _, o := range c.Outs {
		w := o.Local.Index
		if w < 1 || w > workers {
			return c.errf("scatter port %s must be OUT[w] with w in 1..%d", o.Local, workers)
		}
		if o.Peer != c.MPU+w {
			return c.errf("worker on OUT[%d] sits on MPU %d, want MPU %d (staging column w)", w, o.Peer, c.MPU+w)
		}
	}
	for _, in := range c.Ins {
		w := in.Local.Index
		if w < 1 || w > workers {
			return c.errf("gather port %s must be IN[w] with w in 1..%d", in.Local, workers)
		}
		if in.Peer != c.MPU+w {
			return c.errf("worker on IN[%d] sits on MPU %d, want MPU %d", w, in.Peer, c.MPU+w)
		}
	}
	// Replicates buildLLMEncodeBuilders' coordinator program exactly.
	computeAddrs, pairs := apps.LLMEncodeLayout(vrfs)
	b := c.B
	for w := 1; w <= workers; w++ {
		wID := w
		b.Send(c.MPU+w, pairs, func(t *ezpim.Transfer) {
			for r := 0; r < 2*apps.LLMFeatures*apps.LLMFeatures; r++ {
				t.Copy(0, apps.LLMW1Reg+r, 0, apps.LLMW1Reg+r) // broadcast W1/W2
			}
			for f := 0; f < apps.LLMFeatures; f++ {
				t.Copy(wID, apps.LLMXReg+f, 0, apps.LLMXReg+f) // scatter batch w
			}
		})
	}
	b.Ensemble(computeAddrs, func() { apps.EmitLLMBlock(b) })
	for w := 1; w <= workers; w++ {
		b.Recv(c.MPU + w)
	}
	return nil
}

func emitLLMWorker(c *Ctx) error {
	if len(c.Ins) != 1 || len(c.Outs) != 1 {
		return c.errf("LLMWorker needs exactly one IN (from its coordinator) and one OUT (back to it)")
	}
	coord := c.Ins[0].Peer
	if c.Outs[0].Peer != coord {
		return c.errf("results must go back to the coordinator on MPU %d", coord)
	}
	wID := c.MPU - coord
	if wID < 1 {
		return c.errf("worker must sit after its coordinator (MPU coord+w)")
	}
	if i := c.Ins[0].Remote.Index; i >= 0 && i != wID {
		return c.errf("coordinator scatters this worker over OUT[%d] but it sits on MPU coord+%d", i, wID)
	}
	if i := c.Outs[0].Remote.Index; i >= 0 && i != wID {
		return c.errf("results gather into IN[%d] but this worker's staging column is %d", i, wID)
	}
	vrfs, err := c.intParam("vrfs", 2, 1, c.Spec.RFHsPerMPU)
	if err != nil {
		return err
	}
	// Replicates buildLLMEncodeBuilders' worker program exactly.
	computeAddrs, pairs := apps.LLMEncodeLayout(vrfs)
	b := c.B
	b.Recv(coord)
	b.Ensemble(computeAddrs, func() { apps.EmitLLMBlock(b) })
	b.Send(coord, pairs, func(t *ezpim.Transfer) {
		for f := 0; f < apps.LLMFeatures; f++ {
			t.Copy(0, apps.LLMPReg+f, wID, apps.LLMPReg+f) // gather
		}
	})
	return nil
}
