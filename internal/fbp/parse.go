package fbp

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a pipeline definition in the minimal FBP grammar (a subset of
// the classic .fbp network definition language):
//
//	statement  = connection | iip
//	connection = noderef port { "->" port noderef [ port ] }
//	iip        = "'" text "'" "->" port noderef
//	noderef    = name [ "(" component ")" ]
//	port       = NAME [ "[" index "]" ]
//
// Statements are separated by newlines or commas; "#" starts a comment
// running to end of line. A node names its component in parentheses on
// first appearance (later references use the bare name); node placement
// order is first-appearance order. Port names are case-insensitive and
// normalized to upper case. IIPs bind component parameters: the target port
// name (lower-cased) becomes the parameter key.
func Parse(src string) (*Graph, error) {
	p := &parser{g: &Graph{}, byName: map[string]*Node{}}
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if hash := strings.IndexByte(line, '#'); hash >= 0 {
			line = line[:hash]
		}
		for _, stmt := range splitStatements(line) {
			if strings.TrimSpace(stmt) == "" {
				continue
			}
			if err := p.statement(stmt, i+1); err != nil {
				return nil, err
			}
		}
	}
	for _, n := range p.g.Nodes {
		if n.Component == "" {
			return nil, &ParseError{n.Line, fmt.Sprintf("node %s never names a component", n.Name)}
		}
	}
	if len(p.g.Nodes) == 0 {
		return nil, &ParseError{1, "empty graph: no nodes defined"}
	}
	return p.g, nil
}

// splitStatements splits a line on commas that sit outside IIP quotes.
func splitStatements(line string) []string {
	var out []string
	start, quoted := 0, false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\'':
			quoted = !quoted
		case ',':
			if !quoted {
				out = append(out, line[start:i])
				start = i + 1
			}
		}
	}
	return append(out, line[start:])
}

type parser struct {
	g      *Graph
	byName map[string]*Node

	// statement scanning state
	toks []token
	pos  int
	line int
}

type tokKind int

const (
	tokName tokKind = iota
	tokString
	tokArrow
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
)

type token struct {
	kind tokKind
	text string
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{p.line, fmt.Sprintf(format, args...)}
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.' || c == '-'
}

func (p *parser) lex(s string) error {
	p.toks = p.toks[:0]
	p.pos = 0
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '\'':
			j := strings.IndexByte(s[i+1:], '\'')
			if j < 0 {
				return p.errf("unterminated IIP literal")
			}
			p.toks = append(p.toks, token{tokString, s[i+1 : i+1+j]})
			i += j + 2
		case c == '-' && i+1 < len(s) && s[i+1] == '>':
			p.toks = append(p.toks, token{tokArrow, "->"})
			i += 2
		case c == '(':
			p.toks = append(p.toks, token{tokLParen, "("})
			i++
		case c == ')':
			p.toks = append(p.toks, token{tokRParen, ")"})
			i++
		case c == '[':
			p.toks = append(p.toks, token{tokLBracket, "["})
			i++
		case c == ']':
			p.toks = append(p.toks, token{tokRBracket, "]"})
			i++
		case isNameByte(c):
			j := i
			for j < len(s) && isNameByte(s[j]) {
				j++
			}
			p.toks = append(p.toks, token{tokName, s[i:j]})
			i = j
		default:
			return p.errf("unexpected character %q", string(c))
		}
	}
	return nil
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) accept(k tokKind) bool {
	if t, ok := p.peek(); ok && t.kind == k {
		p.pos++
		return true
	}
	return false
}

// statement parses one connection chain or IIP binding.
func (p *parser) statement(s string, line int) error {
	p.line = line
	if err := p.lex(s); err != nil {
		return err
	}
	first, _ := p.peek()
	if first.kind == tokString {
		return p.iip()
	}
	return p.connection()
}

// iip parses 'literal' -> PORT noderef and binds the parameter.
func (p *parser) iip() error {
	lit, _ := p.next()
	if !p.accept(tokArrow) {
		return p.errf("IIP literal must be followed by ->")
	}
	port, err := p.port(true)
	if err != nil {
		return err
	}
	if port.Name == "" {
		return p.errf("IIP needs a target port name")
	}
	node, err := p.noderef()
	if err != nil {
		return err
	}
	if _, ok := p.peek(); ok {
		return p.errf("trailing tokens after IIP binding")
	}
	key := strings.ToLower(port.Name)
	if _, dup := node.Params[key]; dup {
		return p.errf("node %s: parameter %s bound twice", node.Name, key)
	}
	node.Params[key] = lit.text
	return nil
}

// connection parses noderef port (-> port noderef [port])+ — a chain of one
// or more edges.
func (p *parser) connection() error {
	from, err := p.noderef()
	if err != nil {
		return err
	}
	fromPort, err := p.port(false)
	if err != nil {
		return err
	}
	edges := 0
	for p.accept(tokArrow) {
		toPort, err := p.port(true)
		if err != nil {
			return err
		}
		if toPort.Name == "" {
			return p.errf("-> must be followed by an input port name")
		}
		to, err := p.noderef()
		if err != nil {
			return err
		}
		if to == from {
			return p.errf("node %s connects to itself", to.Name)
		}
		p.g.Edges = append(p.g.Edges, Edge{
			From: from.Index, To: to.Index,
			FromPort: fromPort, ToPort: toPort, Line: p.line,
		})
		edges++
		// The chain continues only with an out port for the next hop.
		from = to
		fromPort, err = p.port(false)
		if err != nil {
			return err
		}
		if fromPort.Name == "" {
			break
		}
	}
	if edges == 0 {
		return p.errf("statement defines no connection (expected ->)")
	}
	if fromPort.Name != "" {
		return p.errf("dangling output port %s (expected ->)", fromPort)
	}
	if _, ok := p.peek(); ok {
		return p.errf("trailing tokens after connection")
	}
	return nil
}

// noderef parses name [ "(" Component ")" ], interning the node.
func (p *parser) noderef() (*Node, error) {
	t, ok := p.next()
	if !ok || t.kind != tokName {
		return nil, p.errf("expected a node name")
	}
	var comp string
	if p.accept(tokLParen) {
		c, ok := p.next()
		if !ok || c.kind != tokName {
			return nil, p.errf("expected a component name after (")
		}
		if !p.accept(tokRParen) {
			return nil, p.errf("unclosed component reference (missing ))")
		}
		comp = c.text
	}
	n := p.byName[t.text]
	if n == nil {
		n = &Node{Name: t.text, Index: len(p.g.Nodes), Params: map[string]string{}, Line: p.line}
		p.byName[t.text] = n
		p.g.Nodes = append(p.g.Nodes, n)
	}
	if comp != "" {
		if n.Component != "" && n.Component != comp {
			return nil, p.errf("node %s redeclared as %s (was %s)", n.Name, comp, n.Component)
		}
		n.Component = comp
	}
	return n, nil
}

// port parses NAME [ "[" index "]" ]; a missing port yields the zero Port
// when required is false. A bare name is only a port if the token after it
// is not a port-position ambiguity: the caller's grammar position
// disambiguates (ports always precede -> or a noderef / end the statement).
func (p *parser) port(required bool) (Port, error) {
	t, ok := p.peek()
	if !ok || t.kind != tokName {
		if required {
			return Port{}, p.errf("expected a port name")
		}
		return Port{Index: -1}, nil
	}
	p.pos++
	port := Port{Name: strings.ToUpper(t.text), Index: -1}
	if p.accept(tokLBracket) {
		idx, ok := p.next()
		if !ok || idx.kind != tokName {
			return Port{}, p.errf("expected a port index after [")
		}
		n, err := strconv.Atoi(idx.text)
		if err != nil || n < 0 {
			return Port{}, p.errf("bad port index %q", idx.text)
		}
		if !p.accept(tokRBracket) {
			return Port{}, p.errf("unclosed port index (missing ])")
		}
		port.Index = n
	}
	return port, nil
}
