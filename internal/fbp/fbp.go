// Package fbp is the dataflow pipeline layer (ROADMAP item 2): a minimal
// flow-based-programming graph language compiled to streaming multi-MPU
// programs.
//
// A graph is a list of connections between named nodes,
//
//	src(Split) OUT[0] -> IN sum(Map)
//	'vecadd' -> KERNEL sum
//
// where each node instantiates a component from the registry (Map over any
// catalog kernel, Split/Merge/Filter/Reduce streaming primitives, and the
// EDStep/LLMCoord/LLMWorker components that subsume the hand-wired apps).
// IIP literals ('value' -> PORT node) bind component parameters.
//
// The compiler places node i of the graph (first-appearance order) on MPU i
// of the noc mesh, lowers every edge to a SEND/RECV rendezvous with a legal
// X-Y route, emits each node body through ezpim, and verifies the whole
// program set with the machine-level linter (commlint): a graph that
// compiles is lint- and deadlock-clean by construction. Errors are typed —
// *ParseError for grammar violations, *CompileError for component misuse,
// *LintError carrying the full findings report for geometry and
// communication rejections — so mpud can map them onto its 400/422
// admission envelope.
package fbp

import (
	"fmt"

	"mpu/internal/lint"
)

// Port identifies one endpoint port: a name plus an optional index for
// array ports (OUT[2]). Index is -1 when the port is unindexed.
type Port struct {
	Name  string
	Index int
}

func (p Port) String() string {
	if p.Index < 0 {
		return p.Name
	}
	return fmt.Sprintf("%s[%d]", p.Name, p.Index)
}

// Node is one process of the graph. Index is the node's position in
// first-appearance order — the MPU it is placed on.
type Node struct {
	Name      string
	Component string
	Index     int
	Params    map[string]string // IIP bindings, port name lower-cased
	Line      int               // first-appearance source line
}

// Edge is one connection: data flows From.FromPort -> To.ToPort.
type Edge struct {
	From, To         int // node indices
	FromPort, ToPort Port
	Line             int
}

// Graph is a parsed pipeline definition.
type Graph struct {
	Nodes []*Node
	Edges []Edge
}

// Node returns the named node, or nil.
func (g *Graph) Node(name string) *Node {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// ParseError reports a grammar violation with its 1-based source line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("fbp: line %d: %s", e.Line, e.Msg) }

// CompileError reports a component-level rejection (unknown component, bad
// parameter, malformed topology) attributed to a node.
type CompileError struct {
	Node string
	Msg  string
}

func (e *CompileError) Error() string {
	if e.Node == "" {
		return "fbp: " + e.Msg
	}
	return fmt.Sprintf("fbp: node %s: %s", e.Node, e.Msg)
}

// LintError carries the machine-level verification report of a graph whose
// node programs built but whose composition was rejected — geometry
// overflow, illegal routes, unmatched rendezvous, or a deadlock
// counterexample. The findings feed mpud's typed 422 admission envelope.
type LintError struct {
	Report *lint.Report
}

func (e *LintError) Error() string {
	return fmt.Sprintf("fbp: pipeline rejected by machine verification: %d error finding(s)", len(e.Report.Errs()))
}
