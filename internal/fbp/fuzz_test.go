package fbp_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mpu/internal/backends"
	"mpu/internal/fbp"
	"mpu/internal/machine"
)

// FuzzFBPParse is the front-end robustness oracle: the parser must never
// panic on arbitrary input, and every graph it accepts must either compile
// or be rejected with one of the typed errors (never an untyped failure) —
// the contract mpud's 400/422 admission mapping depends on.
func FuzzFBPParse(f *testing.F) {
	f.Add("a(Map) OUT -> IN b(Map)\n'vecadd' -> KERNEL a\n'relu' -> KERNEL b")
	f.Add("ed0(EDStep) OUT -> IN ed1(EDStep)\ned1 OUT -> IN ed0")
	f.Add("c(LLMCoord) OUT[1] -> IN w(LLMWorker)\nw OUT -> IN[1] c")
	f.Add("src(Split) OUT[0] -> IN a(Filter), src OUT[1] -> IN b(Reduce)\n'2' -> REGS src")
	f.Add("'9' -> MIN gate\ngate(Filter) OUT -> IN total(Reduce)\n# comment")
	f.Add("a(Map OUT -> ] [ '")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := fbp.Parse(src)
		if err != nil {
			var pe *fbp.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse returned untyped error %T: %v", err, err)
			}
			return
		}
		spec, specErr := backends.ByName("dcache")
		if specErr != nil {
			t.Fatal(specErr)
		}
		_, err = fbp.Compile(g, fbp.Options{Spec: spec, MaxMPUs: 8})
		if err == nil {
			return
		}
		var ce *fbp.CompileError
		var le *fbp.LintError
		if !errors.As(err, &ce) && !errors.As(err, &le) {
			t.Fatalf("Compile returned untyped error %T: %v", err, err)
		}
	})
}

// fuzzKernels are catalog kernels safe on all-zero records (no division,
// no data-dependent loop that could diverge on degenerate inputs).
var fuzzKernels = []string{"vecadd", "vecsub", "vecmul", "vecand", "vecxor", "relu", "abs", "sign"}

// genPipeline decodes fuzz bytes into a structured streaming DAG: node 0 is
// a Split source, every later node is a Map/Filter/Reduce/Merge fed by its
// predecessor (Merge additionally by an earlier node), so generated graphs
// are usually — not always — compilable and the oracle exercises the full
// clean path.
func genPipeline(data []byte) string {
	if len(data) < 4 {
		return ""
	}
	n := 2 + int(data[0])%5
	if len(data) < n+2 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("'2' -> REGS n0\n")
	for i := 1; i < n; i++ {
		b := data[i]
		from := fmt.Sprintf("n%d", i-1)
		if i == 1 {
			from = "n0(Split)"
		}
		switch kind := b % 6; {
		case kind == 3:
			fmt.Fprintf(&sb, "%s OUT -> IN n%d(Filter)\n", from, i)
			fmt.Fprintf(&sb, "'%d' -> MIN n%d\n", int(b)%7, i)
		case kind == 4:
			fmt.Fprintf(&sb, "%s OUT -> IN n%d(Reduce)\n", from, i)
		case kind == 5 && i >= 3:
			fmt.Fprintf(&sb, "%s OUT -> IN[0] n%d(Merge)\n", from, i)
			fmt.Fprintf(&sb, "n%d OUT -> IN[1] n%d\n", int(b/6)%(i-1), i)
		default:
			k := fuzzKernels[int(b/6)%len(fuzzKernels)]
			fmt.Fprintf(&sb, "%s OUT -> IN n%d(Map)\n", from, i)
			fmt.Fprintf(&sb, "'%s' -> KERNEL n%d\n", k, i)
		}
	}
	return sb.String()
}

// FuzzPipelineSoundness is the compiler's clean ⇔ runs oracle (the
// FuzzCommSoundness contract one layer up): every graph the compiler
// accepts carries a clean machine-level report and must execute on a real
// machine without a rendezvous deadlock or fault.
func FuzzPipelineSoundness(f *testing.F) {
	f.Add([]byte{4, 1, 9, 17, 33, 0})
	f.Add([]byte{2, 3, 0, 0})
	f.Add([]byte{6, 5, 23, 4, 29, 3, 11, 0})
	f.Add([]byte{5, 0, 6, 12, 18, 24, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		src := genPipeline(data)
		if src == "" {
			t.Skip()
		}
		spec, err := backends.ByName("dcache")
		if err != nil {
			t.Fatal(err)
		}
		c, err := fbp.CompileSource(src, fbp.Options{Spec: spec})
		if err != nil {
			// Generator slack (e.g. a Merge drawing both edges from the
			// same predecessor) rejects with a typed error; that path is
			// FuzzFBPParse's concern.
			var ce *fbp.CompileError
			var le *fbp.LintError
			var pe *fbp.ParseError
			if !errors.As(err, &ce) && !errors.As(err, &le) && !errors.As(err, &pe) {
				t.Fatalf("untyped error %T for\n%s: %v", err, src, err)
			}
			return
		}
		if !c.Report.Ok() {
			t.Fatalf("compiler accepted a graph with error findings:\n%s", c.Report)
		}
		m, err := machine.New(machine.Config{Spec: spec, Mode: machine.ModeMPU, NumMPUs: c.MPUs})
		if err != nil {
			t.Fatal(err)
		}
		for id, p := range c.Programs {
			if err := m.LoadProgram(id, p); err != nil {
				t.Fatalf("load mpu%d: %v", id, err)
			}
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("compiled pipeline failed at runtime:\n%s\n%v", src, err)
		}
	})
}
