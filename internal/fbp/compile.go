package fbp

import (
	"fmt"
	"sort"

	"mpu/internal/backends"
	"mpu/internal/ezpim"
	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/lint/comm"
	"mpu/internal/noc"
)

// Options configures compilation.
type Options struct {
	// Spec is the back end the pipeline targets (required): it sizes the
	// VRF layouts and feeds the capacity checks.
	Spec *backends.Spec

	// MaxMPUs caps the node count a graph may place; 0 (or anything above
	// chip capacity) means Spec.MPUs. mpud sets this to its per-session
	// machine bound so oversized graphs are rejected at admission.
	MaxMPUs int
}

// PlacedNode records where one node landed.
type PlacedNode struct {
	Name      string `json:"name"`
	Component string `json:"component"`
	MPU       int    `json:"mpu"`
}

// Compiled is a verified pipeline ready to load: Programs[i] runs on MPU i.
type Compiled struct {
	Graph    *Graph
	Programs []isa.Program
	Nodes    []PlacedNode
	MPUs     int
	Hops     int // total X-Y route hops across all edges
	Report   *lint.Report
}

// Compile places the graph on the mesh (node i of first-appearance order on
// MPU i — the placement that keeps every hand-wired topology reproducible),
// emits each node's program through its component, and verifies the set
// with the machine-level linter. The error is *CompileError for component
// rejections and *LintError (with the findings report) for geometry or
// communication rejections.
func Compile(g *Graph, opt Options) (*Compiled, error) {
	if opt.Spec == nil {
		return nil, &CompileError{Msg: "Options.Spec is required"}
	}
	n := len(g.Nodes)
	max := opt.MaxMPUs
	if max <= 0 || max > opt.Spec.MPUs {
		max = opt.Spec.MPUs
	}
	if n > max {
		// Geometry overflow is an admission verdict, not a grammar error:
		// report it in the same findings envelope commlint rejections use.
		return nil, &LintError{Report: &lint.Report{Findings: []lint.Finding{{
			Severity: lint.Error, Check: "pipeline-geometry", MPU: -1, Index: -1,
			Message: fmt.Sprintf("graph places %d nodes but the %s machine admits %d MPUs", n, opt.Spec.Name, max),
		}}}}
	}

	// Edge bindings per node, sorted by peer for the deterministic
	// recv/send issue order the components rely on.
	ins := make([][]Bound, n)
	outs := make([][]Bound, n)
	for _, e := range g.Edges {
		ins[e.To] = append(ins[e.To], Bound{Peer: e.From, Local: e.ToPort, Remote: e.FromPort})
		outs[e.From] = append(outs[e.From], Bound{Peer: e.To, Local: e.FromPort, Remote: e.ToPort})
	}
	for i := 0; i < n; i++ {
		sort.Slice(ins[i], func(a, b int) bool { return ins[i][a].Peer < ins[i][b].Peer })
		sort.Slice(outs[i], func(a, b int) bool { return outs[i][a].Peer < outs[i][b].Peer })
	}

	builders := make([]*ezpim.Builder, n)
	nodes := make([]PlacedNode, n)
	for i, node := range g.Nodes {
		comp := Lookup(node.Component)
		if comp == nil {
			return nil, &CompileError{Node: node.Name, Msg: fmt.Sprintf("unknown component %q", node.Component)}
		}
		c := &Ctx{
			B: ezpim.NewBuilder(), Spec: opt.Spec, Graph: g, Node: node,
			MPU: i, Ins: ins[i], Outs: outs[i],
		}
		if err := c.checkParams(comp); err != nil {
			return nil, err
		}
		if err := comp.Emit(c); err != nil {
			return nil, err
		}
		builders[i] = c.B
		nodes[i] = PlacedNode{Name: node.Name, Component: node.Component, MPU: i}
	}

	// Finalize and verify the set as one machine: per-core structural and
	// capacity lint, then the commlint composition (rendezvous matching,
	// route legality over the mesh machine.New will build, deadlock
	// freedom). A clean report is the compiler's output contract.
	progs, report, err := ezpim.ProgramSetChecked(builders, comm.Options{MPUs: n, Spec: opt.Spec})
	if err != nil {
		return nil, &CompileError{Msg: err.Error()}
	}
	if !report.Ok() {
		return nil, &LintError{Report: report}
	}

	mesh, err := noc.New(noc.Default(n))
	if err != nil {
		return nil, &CompileError{Msg: fmt.Sprintf("mesh for %d MPUs: %v", n, err)}
	}
	hops := 0
	for _, e := range g.Edges {
		h, err := mesh.Hops(e.From, e.To)
		if err != nil {
			return nil, &CompileError{Msg: err.Error()}
		}
		hops += h
	}
	return &Compiled{Graph: g, Programs: progs, Nodes: nodes, MPUs: n, Hops: hops, Report: report}, nil
}

// CompileSource parses and compiles in one step — the entry point the
// daemon and CLIs use. Errors are *ParseError, *CompileError, or
// *LintError.
func CompileSource(src string, opt Options) (*Compiled, error) {
	g, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(g, opt)
}
