package fbp

import (
	"errors"
	"strings"
	"testing"
)

func TestParseChainAndIIP(t *testing.T) {
	src := `
# comment line
src(Split) OUT[0] -> IN sum(Map), src OUT[1] -> IN mix(Map)  # trailing comment
'2' -> REGS src
'vecadd' -> KERNEL sum
sum OUT -> IN[0] fold(Merge) OUT -> IN tail(Filter)
mix OUT -> IN[1] fold
`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := []string{"src", "sum", "mix", "fold", "tail"}
	if len(g.Nodes) != len(wantNodes) {
		t.Fatalf("got %d nodes, want %d", len(g.Nodes), len(wantNodes))
	}
	for i, name := range wantNodes {
		if g.Nodes[i].Name != name || g.Nodes[i].Index != i {
			t.Fatalf("node %d = %s (index %d), want %s", i, g.Nodes[i].Name, g.Nodes[i].Index, name)
		}
	}
	if got := g.Node("src").Params["regs"]; got != "2" {
		t.Fatalf("src regs param = %q", got)
	}
	if got := g.Node("sum").Params["kernel"]; got != "vecadd" {
		t.Fatalf("sum kernel param = %q", got)
	}
	if len(g.Edges) != 5 {
		t.Fatalf("got %d edges, want 5", len(g.Edges))
	}
	e := g.Edges[0]
	if e.From != 0 || e.To != 1 || e.FromPort.Name != "OUT" || e.FromPort.Index != 0 || e.ToPort.Index != -1 {
		t.Fatalf("edge 0 = %+v", e)
	}
	// The chained statement contributes fold -> tail.
	last := g.Edges[3]
	if last.From != 3 || last.To != 4 {
		t.Fatalf("chain edge = %+v", last)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
		line      int
	}{
		{"", "empty graph", 1},
		{"a(Map)", "no connection", 1},
		{"a(Map) OUT ->", "expected a port name", 1},
		{"a(Map) OUT -> IN a", "connects to itself", 1},
		{"'v' -> a(Map)", "expected a node name", 1},
		{"'unterminated -> X a(Map)", "unterminated", 1},
		{"a(Map) OUT -> IN b(Map)\nb(Filter) OUT -> IN c(Map)", "redeclared", 2},
		{"a(Map) OUT -> IN b(Map) OUT", "dangling output port", 1},
		{"a(Map) OUT[x] -> IN b(Map)", "bad port index", 1},
		{"a OUT -> IN b", "never names a component", 1},
		{"a(Map) OUT -> IN b(Map) (x)", "trailing tokens", 1},
		{"'v' -> P a(Map)\n'w' -> P a", "bound twice", 2},
		{"a(Map) ! -> IN b(Map)", "unexpected character", 1},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("Parse(%q) = %v, want *ParseError", c.src, err)
		}
		if !strings.Contains(pe.Msg, c.want) {
			t.Errorf("Parse(%q) msg = %q, want substring %q", c.src, pe.Msg, c.want)
		}
		if pe.Line != c.line {
			t.Errorf("Parse(%q) line = %d, want %d", c.src, pe.Line, c.line)
		}
	}
}

func TestComponentsRegistry(t *testing.T) {
	comps := Components()
	if len(comps) < 8 {
		t.Fatalf("registry has %d components, want >= 8", len(comps))
	}
	for i, c := range comps {
		if c.Doc == "" {
			t.Errorf("component %s has no doc", c.Name)
		}
		if i > 0 && comps[i-1].Name >= c.Name {
			t.Errorf("registry not sorted: %s >= %s", comps[i-1].Name, c.Name)
		}
	}
	if Lookup("Map") == nil || Lookup("EDStep") == nil {
		t.Fatal("core components missing from registry")
	}
}
