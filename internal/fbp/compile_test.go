package fbp_test

import (
	"errors"
	"strings"
	"testing"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/fbp"
	"mpu/internal/machine"
)

func racer(t *testing.T) *backends.Spec {
	t.Helper()
	spec, err := backends.ByName("racer")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestCompileETL compiles the shipped ETL example and streams one record
// through it end to end, checking the resident Reduce accumulator.
func TestCompileETL(t *testing.T) {
	spec := racer(t)
	c := compileExample(t, spec, "etl")
	if c.MPUs != 6 {
		t.Fatalf("etl places %d MPUs, want 6", c.MPUs)
	}
	if !c.Report.Ok() {
		t.Fatalf("compiled pipeline carries error findings:\n%s", c.Report)
	}
	m, err := machine.New(machine.Config{Spec: spec, Mode: machine.ModeMPU, NumMPUs: c.MPUs})
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range c.Programs {
		if err := m.LoadProgram(id, p); err != nil {
			t.Fatal(err)
		}
	}
	lanes := spec.Lanes
	// Streaming layout: the record's register file v sits at (rfh v, vrf 0);
	// src is node 0 = MPU 0, total is node 5 = MPU 5.
	a := controlpath.VRFAddr{RFH: 0, VRF: 0}
	r0 := make([]uint64, lanes)
	r1 := make([]uint64, lanes)
	for i := range r0 {
		r0[i] = uint64(i)
		r1[i] = uint64(2 * i)
	}
	if err := m.WriteVector(0, a, 0, r0); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteVector(0, a, 1, r1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadVector(5, a, 48) // Reduce accumulator on node total
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		sum := uint64(3 * i)           // vecadd lane result
		mix := uint64(i) ^ uint64(2*i) // vecxor lane result
		want := sum
		if mix > want {
			want = mix // Merge op=max
		}
		// Filter min=1 zeroes only lanes below 1; Reduce adds into an
		// accumulator that starts at zero.
		if want < 1 {
			want = 0
		}
		if got[i] != want {
			t.Fatalf("lane %d: accumulator %d, want %d", i, got[i], want)
		}
	}
}

func TestCompileTypedErrors(t *testing.T) {
	spec := racer(t)
	compile := func(src string) error {
		_, err := fbp.CompileSource(src, fbp.Options{Spec: spec})
		return err
	}
	cases := []struct {
		name, src, want string
	}{
		{"unknown component", "a(Nope) OUT -> IN b(Map)", "unknown component"},
		{"map without kernel", "a(Map) OUT -> IN b(Map)\n'vecadd' -> KERNEL a", "requires a kernel"},
		{"unknown kernel", "a(Map) OUT -> IN b(Map)\n'vecadd' -> KERNEL a\n'zzz' -> KERNEL b", "unknown kernel"},
		{"unknown param", "a(Map) OUT -> IN b(Map)\n'vecadd' -> KERNEL a\n'vecadd' -> KERNEL b\n'1' -> BOGUS a", "unknown parameter"},
		{"backward edge", "a(Split) OUT -> IN b(Split)\nb OUT -> IN a", "must come from earlier nodes"},
		{"odd ring", "a(EDStep) OUT -> IN b(EDStep) OUT -> IN c(EDStep)\nc OUT -> IN a", "must be even"},
		{"llm bad placement", "c(LLMCoord) OUT[2] -> IN w1(LLMWorker)\nc OUT[1] -> IN w2(LLMWorker)\nw1 OUT -> IN[2] c\nw2 OUT -> IN[1] c", "staging column"},
		{"merge collision", "a(Split) OUT -> IN s(Split)\na OUT[1] -> IN f(Merge)\ns OUT -> IN f\nf OUT -> IN z(Filter)", "distinct IN[i]"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := compile(c.src)
			var ce *fbp.CompileError
			if !errors.As(err, &ce) {
				t.Fatalf("got %v, want *CompileError", err)
			}
			if !strings.Contains(ce.Error(), c.want) {
				t.Fatalf("error %q missing %q", ce.Error(), c.want)
			}
		})
	}
}

// TestCompileGeometryOverflow pins the LintError path for graphs larger
// than the admitted machine: a findings report, not a grammar error.
func TestCompileGeometryOverflow(t *testing.T) {
	spec := racer(t)
	var sb strings.Builder
	sb.WriteString("n0(Split) OUT -> IN n1(Filter)\n")
	for i := 1; i < 6; i++ {
		sb.WriteString("n")
		sb.WriteString(string(rune('0' + i)))
		sb.WriteString(" OUT -> IN n")
		sb.WriteString(string(rune('0' + i + 1)))
		sb.WriteString("(Filter)\n")
	}
	_, err := fbp.CompileSource(sb.String(), fbp.Options{Spec: spec, MaxMPUs: 4})
	var le *fbp.LintError
	if !errors.As(err, &le) {
		t.Fatalf("got %v, want *LintError", err)
	}
	if len(le.Report.Errs()) != 1 || le.Report.Errs()[0].Check != "pipeline-geometry" {
		t.Fatalf("report = %s", le.Report)
	}
}

// TestCompileCommRejection: programs that build but whose composition
// deadlocks (mis-phased ring steps) surface as LintError with the commlint
// counterexample.
func TestCompileCommRejection(t *testing.T) {
	spec := racer(t)
	src := `
a(EDStep) OUT -> IN b(EDStep)
b OUT -> IN a
'1' -> STEPS a
'2' -> STEPS b
`
	_, err := fbp.CompileSource(src, fbp.Options{Spec: spec})
	var le *fbp.LintError
	if !errors.As(err, &le) {
		t.Fatalf("got %v, want *LintError", err)
	}
	if le.Report.Ok() {
		t.Fatalf("lint error with a clean report: %s", le.Report)
	}
}
