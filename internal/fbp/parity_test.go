package fbp_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"mpu/internal/apps"
	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/fbp"
	"mpu/internal/isa"
	"mpu/internal/machine"
)

// The parity tests are the compiler's subsumption proof: the .fbp-expressed
// editdistance ring and llmencode pipeline must produce byte-identical
// programs — and, run on identical inputs, byte-identical machine.Stats —
// to the hand-wired Build*Programs on every back end. Any divergence in
// emission order, layout, or collective shape shows up here first.

// paritySpecs is all 4 back ends: the 3 of the paper's main evaluation plus
// the SIMDRAM portability demo.
func paritySpecs(t *testing.T) []*backends.Spec {
	t.Helper()
	specs := backends.All()
	sim, err := backends.ByName("simdram")
	if err != nil {
		t.Fatal(err)
	}
	return append(specs, sim)
}

func loadExample(t *testing.T, name string) string {
	t.Helper()
	src, err := os.ReadFile("../../examples/pipelines/" + name + ".fbp")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func compileExample(t *testing.T, spec *backends.Spec, name string) *fbp.Compiled {
	t.Helper()
	c, err := fbp.CompileSource(loadExample(t, name), fbp.Options{Spec: spec})
	if err != nil {
		t.Fatalf("%s on %s: %v", name, spec.Name, err)
	}
	return c
}

func sameProgramSet(t *testing.T, label string, got, want []isa.Program) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d programs, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := isa.EncodeProgram(got[i]), isa.EncodeProgram(want[i])
		if !bytes.Equal(g, w) {
			t.Fatalf("%s: mpu%d program differs from the hand-wired build (%d vs %d bytes encoded)",
				label, i, len(g), len(w))
		}
	}
}

func runStats(t *testing.T, spec *backends.Spec, progs []isa.Program, write func(t *testing.T, m *machine.Machine)) []byte {
	t.Helper()
	m, err := machine.New(machine.Config{Spec: spec, Mode: machine.ModeMPU, NumMPUs: len(progs)})
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range progs {
		if err := m.LoadProgram(id, p); err != nil {
			t.Fatal(err)
		}
	}
	write(t, m)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func broadcast(n int, v uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// writeEditDistanceInputs mirrors RunEditDistance's data load (same rng
// stream) for the default 8×4 configuration.
func writeEditDistanceInputs(t *testing.T, spec *backends.Spec, m *machine.Machine) {
	t.Helper()
	const mpus, vrfs = 8, 4
	lanes := spec.Lanes
	addrs, _ := apps.EditDistanceLayout(spec, vrfs)
	rng := rand.New(rand.NewSource(7))
	n := vrfs * lanes
	for id := 0; id < mpus; id++ {
		chunks := make([]uint64, n)
		queries := make([]uint64, n)
		for i := range chunks {
			chunks[i] = rng.Uint64()
			queries[i] = rng.Uint64()
		}
		for v := 0; v < vrfs; v++ {
			lo := v * lanes
			if err := m.WriteVector(id, addrs[v], apps.EDChunkReg, chunks[lo:lo+lanes]); err != nil {
				t.Fatal(err)
			}
			if err := m.WriteVector(id, addrs[v], apps.EDQueryReg, queries[lo:lo+lanes]); err != nil {
				t.Fatal(err)
			}
			if err := m.WriteVector(id, addrs[v], apps.EDBestReg, broadcast(lanes, 1<<20)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// writeLLMEncodeInputs mirrors RunLLMEncode's data load for the default
// coordinator+3-workers, 2-VRF configuration.
func writeLLMEncodeInputs(t *testing.T, spec *backends.Spec, m *machine.Machine) {
	t.Helper()
	const workers, vrfs = 3, 2
	const d = apps.LLMFeatures
	per := workers + 1
	lanes := spec.Lanes
	computeAddrs, _ := apps.LLMEncodeLayout(vrfs)
	rng := rand.New(rand.NewSource(7))
	var w1, w2 [d][d]uint64
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			w1[i][j] = uint64(rng.Intn(4))
			w2[i][j] = uint64(rng.Intn(4))
		}
	}
	nTok := vrfs * lanes
	xs := make([][][d]uint64, per)
	for batch := 0; batch < per; batch++ {
		xs[batch] = make([][d]uint64, nTok)
		for tok := range xs[batch] {
			for f := 0; f < d; f++ {
				xs[batch][tok][f] = uint64(rng.Intn(2 * apps.Q))
			}
		}
	}
	const coord = 0
	for v := 0; v < vrfs; v++ {
		a := computeAddrs[v]
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				if err := m.WriteVector(coord, a, apps.LLMW1Reg+i*d+j, broadcast(lanes, w1[i][j])); err != nil {
					t.Fatal(err)
				}
				if err := m.WriteVector(coord, a, apps.LLMW1Reg+d*d+i*d+j, broadcast(lanes, w2[i][j])); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for batch := 0; batch < per; batch++ {
		for v := 0; v < vrfs; v++ {
			a := computeAddrs[v]
			if batch > 0 {
				a = controlpath.VRFAddr{RFH: uint8(v), VRF: uint8(batch)}
			}
			for f := 0; f < d; f++ {
				vals := make([]uint64, lanes)
				for l := 0; l < lanes; l++ {
					vals[l] = xs[batch][v*lanes+l][f]
				}
				if err := m.WriteVector(coord, a, apps.LLMXReg+f, vals); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestPipelineParityEditDistance(t *testing.T) {
	for _, spec := range paritySpecs(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			c := compileExample(t, spec, "editdistance_ring")
			want, err := apps.BuildEditDistancePrograms(apps.EditDistanceConfig{Spec: spec, Mode: machine.ModeMPU})
			if err != nil {
				t.Fatal(err)
			}
			sameProgramSet(t, "editdistance", c.Programs, want)

			write := func(t *testing.T, m *machine.Machine) { writeEditDistanceInputs(t, spec, m) }
			got := runStats(t, spec, c.Programs, write)
			ref := runStats(t, spec, want, write)
			if !bytes.Equal(got, ref) {
				t.Fatalf("stats differ:\nfbp:  %s\nhand: %s", got, ref)
			}
		})
	}
}

func TestPipelineParityLLMEncode(t *testing.T) {
	for _, spec := range paritySpecs(t) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			c := compileExample(t, spec, "llmencode")
			want, err := apps.BuildLLMEncodePrograms(apps.LLMEncodeConfig{Spec: spec, Mode: machine.ModeMPU})
			if err != nil {
				t.Fatal(err)
			}
			sameProgramSet(t, "llmencode", c.Programs, want)

			write := func(t *testing.T, m *machine.Machine) { writeLLMEncodeInputs(t, spec, m) }
			got := runStats(t, spec, c.Programs, write)
			ref := runStats(t, spec, want, write)
			if !bytes.Equal(got, ref) {
				t.Fatalf("stats differ:\nfbp:  %s\nhand: %s", got, ref)
			}
		})
	}
}
