package hostcpu

import "testing"

func TestOffloadCycles(t *testing.T) {
	m := Default()
	off := m.OffloadCycles(64, false)
	on := m.OffloadCycles(64, true)
	if off <= on {
		t.Fatalf("off-chip trip (%d) not costlier than on-chip (%d)", off, on)
	}
	if off < m.RoundTripCycles {
		t.Fatalf("offload %d below base round trip %d", off, m.RoundTripCycles)
	}
	// Wider vectors mean more condition state to read back.
	if m.OffloadCycles(1<<20, false) <= off {
		t.Fatal("readback cost did not grow with lane count")
	}
}

func TestOffloadEnergyScalesWithLanes(t *testing.T) {
	m := Default()
	if m.OffloadEnergyPJ(64) <= 0 {
		t.Fatal("no offload energy")
	}
	if m.OffloadEnergyPJ(1024) <= m.OffloadEnergyPJ(64) {
		t.Fatal("offload energy did not grow with lanes")
	}
}

func TestIdleEnergy(t *testing.T) {
	m := Default()
	// 1 ms at 45 W = 45 mJ = 45e9 pJ.
	got := m.IdleEnergyPJ(1_000_000, false)
	want := m.ActivePowerW * 1e-3 * 1e12
	if diff := got - want; diff > 1 || diff < -1 {
		t.Fatalf("IdleEnergyPJ = %g, want %g", got, want)
	}
	// On-chip hosts attribute a smaller share.
	if on := m.IdleEnergyPJ(1_000_000, true); on >= got {
		t.Fatalf("on-chip idle energy %g not below off-chip %g", on, got)
	}
}

// TestFig1Calibration pins the calibration target: with an 80-instruction
// CMPEQ loop body on RACER (~920 cycles per CMPEQ), one round trip per
// iteration slows the loop by roughly 10× (Fig. 1).
func TestFig1Calibration(t *testing.T) {
	m := Default()
	bodyCycles := float64(80 * 920)
	slowdown := (bodyCycles + float64(m.OffloadCycles(64, false))) / bodyCycles
	if slowdown < 7 || slowdown > 14 {
		t.Fatalf("Fig. 1 slowdown at 80 instructions = %.1f×, want ≈10×", slowdown)
	}
}
