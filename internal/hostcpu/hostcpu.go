// Package hostcpu models the external host processor the *Baseline*
// configurations depend on for control flow (§I, Fig. 1). The original
// datapaths cannot evaluate dynamic loop conditions or redirect their own
// instruction streams, so every such decision is a full off-chip round trip:
// the host reads condition state back over the memory bus, evaluates it, and
// issues the next command sequence through the driver stack.
//
// Parameters are sized from the Xeon Gold 6544Y system of Table III and
// calibrated so that the Fig. 1 microbenchmark reproduces: with an 80
// CMPEQ-instruction loop body on RACER, one CPU interaction per iteration
// slows the loop by ~10×.
package hostcpu

// Model carries the offload cost parameters.
type Model struct {
	// RoundTripCycles is the cost (in 1 GHz datapath cycles) of one
	// CPU-assisted control decision for an off-chip datapath: interrupt
	// delivery, driver work, condition readback, and command re-issue.
	RoundTripCycles int64

	// OnChipRoundTripCycles applies to datapaths co-located with the CPU
	// (Duality Cache): the trip is a cache-hierarchy access, not a bus
	// crossing.
	OnChipRoundTripCycles int64

	// ReadbackBytesPerLane is the condition state the CPU must pull back
	// per vector lane to evaluate a branch or loop exit.
	ReadbackBytesPerLane float64

	// BusEnergyPJPerByte is the off-chip transfer energy.
	BusEnergyPJPerByte float64

	// ActivePowerW is drawn by the host whenever a Baseline kernel runs:
	// the CPU cannot sleep because it owns the control loop. The MPU
	// configurations eliminate this entirely (§VIII-B).
	ActivePowerW float64

	// OnChipActivePowerW is the share attributed when the datapath lives
	// next to the CPU (Duality Cache): the cores idle-poll rather than
	// drive an off-chip link.
	OnChipActivePowerW float64
}

// Default returns the calibrated model.
func Default() *Model {
	return &Model{
		RoundTripCycles:       650_000, // ≈0.65 ms: interrupt + driver + readback + reissue
		OnChipRoundTripCycles: 3_000,   // cache-resident handshake
		ReadbackBytesPerLane:  0.125,   // one mask bit per lane
		BusEnergyPJPerByte:    25,      // off-chip DDR-class transfer energy
		ActivePowerW:          45,      // package power while polling/serving
		OnChipActivePowerW:    18,      // co-located cores actively polling
	}
}

// OffloadCycles returns the latency of one control offload moving
// lanes-worth of condition state, for an on- or off-chip datapath.
func (m *Model) OffloadCycles(lanes int, onChip bool) int64 {
	base := m.RoundTripCycles
	if onChip {
		base = m.OnChipRoundTripCycles
	}
	// Readback streams at ~8 bytes/cycle on the shared bus.
	rb := int64(m.ReadbackBytesPerLane * float64(lanes) / 8)
	return base + rb
}

// OffloadEnergyPJ returns the bus energy of one offload's readback plus
// command traffic.
func (m *Model) OffloadEnergyPJ(lanes int) float64 {
	bytes := m.ReadbackBytesPerLane*float64(lanes) + 64 // plus a command packet
	return bytes * m.BusEnergyPJPerByte
}

// IdleEnergyPJ returns the host-side energy for a Baseline run of the given
// duration (cycles at 1 GHz): the CPU is live for the whole kernel. On-chip
// hosts attribute the smaller co-located share.
func (m *Model) IdleEnergyPJ(cycles int64, onChip bool) float64 {
	p := m.ActivePowerW
	if onChip {
		p = m.OnChipActivePowerW
	}
	seconds := float64(cycles) * 1e-9
	return p * seconds * 1e12
}
