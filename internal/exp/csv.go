package exp

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// CSV exports: each figure's data series as a machine-readable table, for
// replotting outside the text renderers.

// WriteCSV writes rows (first row = header) to dir/name.csv.
func WriteCSV(dir, name string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f64(x float64) string { return strconv.FormatFloat(x, 'g', 6, 64) }

// CSV renders the Fig. 1 series.
func (r *Fig1Result) CSV() [][]string {
	rows := [][]string{{"body_instrs", "pum_cycles", "cpu_cycles", "slowdown", "cpu_share"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			strconv.Itoa(p.BodyInstrs),
			strconv.FormatInt(p.PUMCycles, 10),
			strconv.FormatInt(p.CPUCycles, 10),
			f64(p.Slowdown),
			f64(p.CPUTimeShare),
		})
	}
	return rows
}

// Fig5CSV renders the power-density sweep.
func Fig5CSV(points []Fig5Point) [][]string {
	rows := [][]string{{"backend", "active_arrays", "w_per_cm2", "over_limit"}}
	for _, p := range points {
		rows = append(rows, []string{
			p.Backend, strconv.Itoa(p.ActiveArrays), f64(p.WPerCM2),
			strconv.FormatBool(p.OverLimit),
		})
	}
	return rows
}

// CSV renders one back end's Fig. 12 sweep.
func (r *Fig12Result) CSV() [][]string {
	rows := [][]string{{"backend", "kernel", "group", "mpu_seconds", "baseline_seconds",
		"mpu_joules", "baseline_joules", "speedup", "energy_savings"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			r.Backend, row.Kernel, row.Group.String(),
			f64(row.MPUSeconds), f64(row.BaselineSeconds),
			f64(row.MPUJoules), f64(row.BaselineJoules),
			f64(row.Speedup), f64(row.EnergySavings),
		})
	}
	return rows
}

// CSV renders one back end's Fig. 13 sweep.
func (r *Fig13Result) CSV() [][]string {
	rows := [][]string{{"backend", "kernel", "group",
		"baseline_speedup_vs_gpu", "mpu_speedup_vs_gpu",
		"baseline_energy_vs_gpu", "mpu_energy_vs_gpu"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			r.Backend, row.Kernel, row.Group.String(),
			f64(row.BaselineSpeedupVsGPU), f64(row.MPUSpeedupVsGPU),
			f64(row.BaselineEnergyVsGPU), f64(row.MPUEnergyVsGPU),
		})
	}
	return rows
}

// Fig14CSV renders the end-to-end comparison.
func Fig14CSV(rows []Fig14Row) [][]string {
	out := [][]string{{"app", "backend", "baseline_speedup_vs_gpu", "mpu_speedup_vs_gpu",
		"baseline_energy_vs_gpu", "mpu_energy_vs_gpu", "mpu_over_baseline"}}
	for _, r := range rows {
		out = append(out, []string{
			r.App, r.Backend,
			f64(r.BaselineSpeedupVsGPU), f64(r.MPUSpeedupVsGPU),
			f64(r.BaselineEnergyVsGPU), f64(r.MPUEnergyVsGPU),
			f64(r.MPUOverBaseline),
		})
	}
	return out
}

// Fig15CSV renders the breakdown.
func Fig15CSV(rows []Fig15Row) [][]string {
	out := [][]string{{"app", "backend", "config", "compute_share", "intermpu_share", "offchip_share"}}
	for _, r := range rows {
		out = append(out, []string{
			r.App, r.Backend, r.Mode,
			f64(r.ComputeShare), f64(r.InterMPUShare), f64(r.OffChipShare),
		})
	}
	return out
}

// Table4CSV renders the application summary.
func Table4CSV(rows []Table4Row) [][]string {
	out := [][]string{{"app", "steps", "collectives", "mpus", "loc_asm", "loc_ezpim"}}
	for _, r := range rows {
		out = append(out, []string{
			r.App, r.Steps, r.Collectives,
			strconv.Itoa(r.MPUs), strconv.Itoa(r.AsmLines), strconv.Itoa(r.EzpimLines),
		})
	}
	return out
}

// ExportAll runs every data-bearing experiment and writes its CSV into dir.
func ExportAll(dir string, opts Options) error {
	f1, err := Fig1(opts)
	if err != nil {
		return fmt.Errorf("fig1: %w", err)
	}
	if err := WriteCSV(dir, "fig1", f1.CSV()); err != nil {
		return err
	}
	if err := WriteCSV(dir, "fig5", Fig5CSV(Fig5(opts))); err != nil {
		return err
	}
	f12, err := Fig12(opts)
	if err != nil {
		return fmt.Errorf("fig12: %w", err)
	}
	for _, r := range f12 {
		if err := WriteCSV(dir, "fig12_"+r.Backend, r.CSV()); err != nil {
			return err
		}
	}
	f13, err := Fig13(opts)
	if err != nil {
		return fmt.Errorf("fig13: %w", err)
	}
	for _, r := range f13 {
		if err := WriteCSV(dir, "fig13_"+r.Backend, r.CSV()); err != nil {
			return err
		}
	}
	t4, err := Table4(opts)
	if err != nil {
		return fmt.Errorf("table4: %w", err)
	}
	if err := WriteCSV(dir, "table4", Table4CSV(t4)); err != nil {
		return err
	}
	f14, err := Fig14(opts)
	if err != nil {
		return fmt.Errorf("fig14: %w", err)
	}
	if err := WriteCSV(dir, "fig14", Fig14CSV(f14)); err != nil {
		return err
	}
	f15, err := Fig15(opts)
	if err != nil {
		return fmt.Errorf("fig15: %w", err)
	}
	if err := WriteCSV(dir, "fig15", Fig15CSV(f15)); err != nil {
		return err
	}
	sc, err := Scale(opts)
	if err != nil {
		return fmt.Errorf("scale: %w", err)
	}
	return WriteCSV(dir, "scale", ScaleCSV(sc))
}
