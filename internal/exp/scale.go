package exp

import (
	"fmt"
	"strconv"
	"strings"

	"mpu/internal/apps"
	"mpu/internal/backends"
	"mpu/internal/machine"
	"mpu/internal/sweep"
)

// The MPU-count scaling study: how the two communicating applications
// (the editdistance systolic ring and the llmencode coordinator+worker
// pipeline) scale from 2 MPUs to the full 512-MPU chip. Per-MPU work is
// pinned (a fixed number of systolic steps; a fixed batch per pipeline
// participant), so total work grows linearly with the MPU count and ideal
// scaling is a flat makespan — throughput rising linearly and energy per
// work unit staying constant.

// Scaling-cell shape: one VRF per MPU keeps the 512-MPU cells tractable,
// two systolic steps pin the ring's per-MPU work, and a pipeline group is
// the paper's coordinator + 3 workers (a lone coordinator + 1 worker at
// the 2-MPU point).
const (
	scaleEDSteps  = 2
	scaleVRFs     = 1
	scaleLLMGroup = 4 // participants per llmencode group above 2 MPUs
)

// scaleSpec returns the sweep's chip: RACER grown to a full 512-MPU die so
// the count axis reaches the paper's baseline-unit budget (RACER's iso-area
// configuration stops at 497).
func scaleSpec() *backends.Spec {
	s := backends.RACER()
	s.Name = "RACER-512"
	s.MPUs = 512
	s.CapacityGB = float64(512*s.MemPerMPUMB) / 1024
	return s
}

// scaleCounts returns the doubling MPU-count axis 2, 4, …, capped by the
// Options.Scale divisor (the full axis tops out at 512).
func scaleCounts(scale int) []int {
	max := 512 / scale
	if max < 8 {
		max = 8
	}
	var counts []int
	for n := 2; n <= max; n *= 2 {
		counts = append(counts, n)
	}
	return counts
}

// ScaleRow is one application × MPU-count cell of the scaling study.
type ScaleRow struct {
	App     string
	MPUs    int
	Seconds float64
	Joules  float64

	// Units counts the application's work items in the cell: chunk-query
	// scorings for editdistance, encoded tokens for llmencode.
	Units           int
	Throughput      float64 // units per simulated second
	Speedup         float64 // throughput vs the 2-MPU row of the same app
	EnergyPerUnitPJ float64
}

// Scale sweeps the editdistance ring and the llmencode pipeline over the
// MPU-count axis on the 512-MPU RACER chip in MPU mode. Cells fan out
// across Options.Workers sweep workers, and each cell's machine runs its
// cores on the per-cell scheduler budget (Options.MachineWorkers); rows are
// byte-identical at any worker count.
func Scale(opts Options) ([]ScaleRow, error) {
	opts = opts.norm()
	spec := scaleSpec()
	counts := scaleCounts(opts.Scale)
	names := []string{"EditDistance", "LLMEncode"}
	mw := opts.machineWorkers()
	rows, err := sweep.Map(opts.Workers, len(names)*len(counts), func(i int) (ScaleRow, error) {
		name, n := names[i/len(counts)], counts[i%len(counts)]
		var (
			res   *apps.Result
			units int
			err   error
		)
		switch name {
		case "EditDistance":
			res, err = apps.RunEditDistance(apps.EditDistanceConfig{
				Spec: spec, Mode: machine.ModeMPU, MPUs: n, VRFs: scaleVRFs,
				Steps: scaleEDSteps, Seed: opts.Seed, NoTrace: opts.NoTrace, NoJIT: opts.NoJIT,
				MachineWorkers: mw,
			})
			units = n * scaleVRFs * spec.Lanes * scaleEDSteps
		case "LLMEncode":
			// Every participant (coordinator included) encodes one batch of
			// VRFs×lanes tokens, so tokens = MPUs × VRFs × lanes.
			workers, groups := scaleLLMGroup-1, n/scaleLLMGroup
			if n < scaleLLMGroup {
				workers, groups = n-1, 1
			}
			res, err = apps.RunLLMEncode(apps.LLMEncodeConfig{
				Spec: spec, Mode: machine.ModeMPU, Workers: workers, Groups: groups,
				VRFs: scaleVRFs, Seed: opts.Seed, NoTrace: opts.NoTrace, NoJIT: opts.NoJIT,
				MachineWorkers: mw,
			})
			units = n * scaleVRFs * spec.Lanes
		}
		if err != nil {
			return ScaleRow{}, fmt.Errorf("%s @ %d MPUs: %w", name, n, err)
		}
		return ScaleRow{
			App: name, MPUs: n, Seconds: res.Seconds, Joules: res.Joules,
			Units:           units,
			Throughput:      float64(units) / res.Seconds,
			EnergyPerUnitPJ: res.Joules * 1e12 / float64(units),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	// Speedups are relative to each app's smallest-count row, filled in once
	// every cell has run.
	for i := range rows {
		base := rows[i/len(counts)*len(counts)]
		rows[i].Speedup = rows[i].Throughput / base.Throughput
	}
	return rows, nil
}

// RenderScale prints the scaling study.
func RenderScale(rows []ScaleRow) string {
	var sb strings.Builder
	sb.WriteString("Scaling — application throughput and energy vs MPU count (MPU:RACER-512)\n")
	fmt.Fprintf(&sb, "%-14s %6s %10s %12s %12s %14s %9s %12s\n",
		"application", "MPUs", "units", "seconds", "joules", "units/s", "speedup", "pJ/unit")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %6d %10d %12.3g %12.3g %14.4g %8.1fx %12.1f\n",
			r.App, r.MPUs, r.Units, r.Seconds, r.Joules, r.Throughput, r.Speedup, r.EnergyPerUnitPJ)
	}
	return sb.String()
}

// ScaleCSV renders the scaling study.
func ScaleCSV(rows []ScaleRow) [][]string {
	out := [][]string{{"app", "mpus", "units", "seconds", "joules",
		"throughput_units_per_s", "speedup_vs_2mpu", "pj_per_unit"}}
	for _, r := range rows {
		out = append(out, []string{
			r.App, strconv.Itoa(r.MPUs), strconv.Itoa(r.Units),
			f64(r.Seconds), f64(r.Joules),
			f64(r.Throughput), f64(r.Speedup), f64(r.EnergyPerUnitPJ),
		})
	}
	return out
}
