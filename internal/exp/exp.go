// Package exp regenerates every table and figure of the paper's evaluation
// (§VII–§VIII): the Fig. 1 motivation study, the Table I feature matrix, the
// Fig. 5 power-density curves, Table III system parameters, the Fig. 11
// front-end breakdown, the Fig. 12/13 kernel comparisons, Table IV and the
// Fig. 14/15 end-to-end application studies, plus the ablations called out
// in DESIGN.md. Each experiment returns structured rows and renders the same
// series the paper reports.
package exp

import (
	"fmt"
	"math"
	"strings"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/ezpim"
	"mpu/internal/frontend"
	"mpu/internal/isa"
	"mpu/internal/machine"
	"mpu/internal/sweep"
)

// Options tunes experiment scale. Scale divides the paper-scale element
// counts (1 = full evaluation size; larger values shrink runs for quick
// iteration and tests).
//
// Workers sets the sweep fan-out: every independent cell of an experiment
// (one machine run of one backend × kernel × mode configuration, one
// figure point) is dispatched to a bounded worker pool and the results are
// reassembled in input order, so rendered tables, figures, and CSVs are
// byte-identical at any worker count. 0 means runtime.GOMAXPROCS; 1 forces
// the exact sequential execution path (the CLI's -j 1).
type Options struct {
	Scale   int
	Seed    int64
	Workers int

	// MachineWorkers sets the intra-machine scheduler fan-out for the
	// multi-MPU cells (the apps and the MPU-count scaling sweep): scheduler
	// goroutines executing cores concurrently between communication points.
	// 0 divides GOMAXPROCS by the sweep worker count so the two levels of
	// parallelism share one CPU budget (sweep.MachineWorkers); 1 forces the
	// sequential core walk (the CLI's -mj 1). Statistics — and thus every
	// rendered table and CSV — are byte-identical at any value.
	MachineWorkers int

	// NoTrace forwards to machine.Config: disable the ensemble trace engine
	// and interpret every scheduling round (the CLI's -notrace).
	NoTrace bool

	// NoJIT forwards to machine.Config: keep the trace engine but replay
	// step-interpreted instead of through compiled closure chains (the
	// CLI's -nojit).
	NoJIT bool
}

// machineWorkers resolves the per-cell scheduler budget for a sweep fanning
// out at o.Workers (see sweep.MachineWorkers).
func (o Options) machineWorkers() int {
	return sweep.MachineWorkers(o.MachineWorkers, sweep.Workers(o.Workers))
}

func (o Options) norm() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// elementsFor returns the Fig. 12/13 working-set size for a back end: a
// chip-scale problem (7/8 of baseline VRF capacity for RACER/MIMDRAM so
// both configurations hold it; 1.5× capacity for Duality Cache, whose
// 0.2 GB SRAM forces external streaming, §VIII-B).
func elementsFor(spec *backends.Spec, scale int) int {
	switch spec.Name {
	case "DualityCache":
		n := spec.MPUs * spec.VRFsPerMPU() * spec.Lanes
		return n * 3 / 2 / scale
	default:
		return spec.BaselineUnits * spec.Lanes * 448 / scale
	}
}

// geomean returns the geometric mean of positive values.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// ---- Fig. 1 ---------------------------------------------------------------

// Fig1Point is one x-position of the Fig. 1 study.
type Fig1Point struct {
	BodyInstrs   int
	PUMCycles    int64 // loop time with in-MPU control
	CPUCycles    int64 // added CPU time in the Baseline configuration
	Slowdown     float64
	CPUTimeShare float64
}

// Fig1Result is the dynamic-loop breakdown for RACER.
type Fig1Result struct {
	Points []Fig1Point
}

// Fig1 reproduces the motivation study: a dynamic loop of back-to-back
// CMPEQ instructions on RACER, with the loop condition evaluated either by
// the MPU control path or by the host CPU (one round trip per iteration).
func Fig1(opts Options) (*Fig1Result, error) {
	opts = opts.norm()
	spec := backends.RACER()
	const iters = 4
	bodies := []int{1, 2, 5, 10, 20, 40, 80}
	points, err := sweep.Map(opts.Workers, len(bodies), func(i int) (Fig1Point, error) {
		k := bodies[i]
		prog, err := fig1Program(k, iters)
		if err != nil {
			return Fig1Point{}, err
		}
		run := func(mode machine.Mode) (*machine.Stats, error) {
			m, err := machine.New(machine.Config{Spec: spec, Mode: mode, NumMPUs: 1, NoTrace: opts.NoTrace, NoJIT: opts.NoJIT})
			if err != nil {
				return nil, err
			}
			if err := m.LoadAll(prog); err != nil {
				return nil, err
			}
			// r0 counts down from iters; r1 = 1; r2 = 0.
			a := controlpath.VRFAddr{}
			if err := m.WriteVector(0, a, 0, broadcast(spec.Lanes, iters)); err != nil {
				return nil, err
			}
			return m.Run()
		}
		mpuSt, err := run(machine.ModeMPU)
		if err != nil {
			return Fig1Point{}, err
		}
		baseSt, err := run(machine.ModeBaseline)
		if err != nil {
			return Fig1Point{}, err
		}
		p := Fig1Point{
			BodyInstrs: k,
			PUMCycles:  mpuSt.Cycles,
			CPUCycles:  baseSt.OffloadCycles,
			Slowdown:   float64(baseSt.Cycles) / float64(mpuSt.Cycles),
		}
		p.CPUTimeShare = float64(baseSt.OffloadCycles) / float64(baseSt.Cycles)
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig1Result{Points: points}, nil
}

func fig1Program(bodyInstrs, iters int) (isa.Program, error) {
	b := ezpim.NewBuilder()
	b.Ensemble([]controlpath.VRFAddr{{}}, func() {
		b.Init1(1)
		b.Init0(2)
		b.While(ezpim.Gt(0, 2), func() {
			for i := 0; i < bodyInstrs; i++ {
				b.Op(isa.CmpEq(3, 4))
			}
			b.Sub(0, 1, 0)
		})
	})
	return b.Program()
}

// Render prints the figure as text.
func (r *Fig1Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 1 — RACER dynamic-loop slowdown when the CPU evaluates the loop condition\n")
	fmt.Fprintf(&sb, "%8s %14s %14s %10s %9s\n", "body", "PUM cycles", "CPU cycles", "slowdown", "CPU-share")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%8d %14d %14d %9.1fx %8.0f%%\n",
			p.BodyInstrs, p.PUMCycles, p.CPUCycles, p.Slowdown, 100*p.CPUTimeShare)
	}
	return sb.String()
}

// ---- Table I --------------------------------------------------------------

// Table1 renders the feature matrix of Table I.
func Table1() string {
	rows := []struct {
		feature string
		support [7]byte // LS DC MD RC CPU GPU MPU
	}{
		{"if-else statements", [7]byte{'y', 'y', 'y', 'y', 'y', 'y', 'y'}},
		{"Dynamic loops", [7]byte{'n', 'n', 'n', 'n', 'y', 'y', 'y'}},
		{"Subroutine calls", [7]byte{'n', 'n', 'y', 'n', 'y', 'y', 'y'}},
		{"Global synchronization", [7]byte{'y', 'y', 'n', 'y', 'y', 'y', 'y'}},
		{"Collective communication", [7]byte{'n', 'y', 'y', 'y', 'y', 'n', 'y'}},
		{"Power-density-aware scheduling", [7]byte{'n', 'n', 'n', 'n', 'n', 'n', 'y'}},
		{"Runtime micro-op decoding", [7]byte{'n', 'n', 'y', 'y', 'y', 'n', 'y'}},
	}
	var sb strings.Builder
	sb.WriteString("Table I — MPU features vs prior PUM datapaths, CPUs, and GPUs\n")
	fmt.Fprintf(&sb, "%-32s %3s %3s %3s %3s %4s %4s %4s\n", "Feature", "LS", "DC", "MD", "RC", "CPU", "GPU", "MPU")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-32s", r.feature)
		for _, c := range r.support {
			mark := "-"
			if c == 'y' {
				mark = "*"
			}
			fmt.Fprintf(&sb, " %3s", mark)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("(* = supported)\n")
	return sb.String()
}

// ---- Fig. 5 ---------------------------------------------------------------

// Fig5Point is the power density of one datapath at one activation level.
type Fig5Point struct {
	Backend      string
	ActiveArrays int
	WPerCM2      float64
	OverLimit    bool
}

// Fig5 sweeps active arrays per datapath against the air-cooling limit.
func Fig5(opts Options) []Fig5Point {
	opts = opts.norm()
	specs := backends.All()
	perBackend, _ := sweep.Map(opts.Workers, len(specs), func(i int) ([]Fig5Point, error) {
		spec := specs[i]
		total := spec.TotalVRFs()
		var pts []Fig5Point
		for _, frac := range []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0} {
			n := int(float64(total) * frac)
			if n == 0 {
				n = 1
			}
			d := spec.PowerDensity(n)
			pts = append(pts, Fig5Point{
				Backend: spec.Name, ActiveArrays: n, WPerCM2: d,
				OverLimit: d > backends.AirCoolLimitWPerCM2,
			})
		}
		return pts, nil
	})
	var out []Fig5Point
	for _, pts := range perBackend {
		out = append(out, pts...)
	}
	return out
}

// RenderFig5 prints the sweep.
func RenderFig5(points []Fig5Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 5 — power density vs active memory arrays (air-cool limit %.0f W/cm²)\n",
		backends.AirCoolLimitWPerCM2)
	fmt.Fprintf(&sb, "%-14s %14s %12s %6s\n", "backend", "active arrays", "W/cm²", "limit")
	for _, p := range points {
		mark := ""
		if p.OverLimit {
			mark = "OVER"
		}
		fmt.Fprintf(&sb, "%-14s %14d %12.2f %6s\n", p.Backend, p.ActiveArrays, p.WPerCM2, mark)
	}
	return sb.String()
}

// ---- Table III ------------------------------------------------------------

// Table3 renders the system parameters.
func Table3() string {
	var sb strings.Builder
	sb.WriteString("Table III — system parameters\n")
	rc := controlpath.DefaultRecipeCacheConfig()
	fmt.Fprintf(&sb, "%-28s %v\n", "Template lookup capacity", rc.CapacityMicroOps)
	fmt.Fprintf(&sb, "%-28s %v\n", "Pointer table", rc.PointerTable)
	fmt.Fprintf(&sb, "%-28s %d entries\n", "Playback buffer", controlpath.NewPlaybackBuffer().Capacity)
	fmt.Fprintf(&sb, "%-28s 2 MB\n", "Instruction storage")
	for _, s := range backends.All() {
		fmt.Fprintf(&sb, "-- %s --\n", s.Name)
		fmt.Fprintf(&sb, "  %-26s %d\n", "MPUs on chip (iso-area)", s.MPUs)
		fmt.Fprintf(&sb, "  %-26s %d\n", "Baseline datapath units", s.BaselineUnits)
		fmt.Fprintf(&sb, "  %-26s %d\n", "RFHs per MPU", s.RFHsPerMPU)
		fmt.Fprintf(&sb, "  %-26s %d\n", "VRFs per RFH", s.VRFsPerRFH)
		fmt.Fprintf(&sb, "  %-26s %d\n", "Active VRFs per RFH", s.ActiveVRFsPerRFH)
		fmt.Fprintf(&sb, "  %-26s %d\n", "Lanes per VRF", s.Lanes)
		fmt.Fprintf(&sb, "  %-26s %d MB\n", "Memory per MPU", s.MemPerMPUMB)
		fmt.Fprintf(&sb, "  %-26s %d cycles\n", "Micro-op latency", s.CyclesPerMicroOp)
	}
	return sb.String()
}

// ---- Fig. 11 --------------------------------------------------------------

// Fig11 renders the front-end area/power breakdown and the §VIII-A chip
// impact numbers. It lives in internal/frontend; re-exported here for the
// CLI.
func Fig11() string {
	var sb strings.Builder
	sb.WriteString("Fig. 11 — MPU front-end power and area breakdown (per MPU)\n")
	fmt.Fprintf(&sb, "%-26s %8s %9s %10s\n", "component", "area%", "static%", "dynamic%")
	for _, c := range frontend.Components() {
		fmt.Fprintf(&sb, "%-26s %7.0f%% %8.0f%% %9.1f%%\n",
			c.Name, 100*c.AreaFrac, 100*c.StaticFrac, 100*c.DynamicFrac)
	}
	a, s, d := frontend.StorageShare()
	fmt.Fprintf(&sb, "storage components: %.0f%% area, %.0f%% static, %.0f%% dynamic\n", 100*a, 100*s, 100*d)
	fmt.Fprintf(&sb, "totals per MPU: %.3f mm², %.2f mW static, %.2f mW dynamic\n",
		frontend.AreaMM2, frontend.StaticPowerMW, frontend.DynamicPowerMW)
	areaCM2, staticMW := frontend.ChipImpact(512, 4.00, 330)
	fmt.Fprintf(&sb, "RACER + 512 MPUs: 4.00 → %.2f cm², 330 → %.0f mW static, max runtime %.1f W\n",
		areaCM2, staticMW, frontend.MaxRuntimePowerW(512))
	return sb.String()
}

func broadcast(n int, v uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// defaultRecipeCfg returns the Table III recipe-table configuration.
func defaultRecipeCfg() controlpath.RecipeCacheConfig {
	return controlpath.DefaultRecipeCacheConfig()
}

// backendsByName resolves a back end for tests and the CLI.
func backendsByName(name string) (*backends.Spec, error) { return backends.ByName(name) }
