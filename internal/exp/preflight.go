package exp

import (
	"fmt"
	"strings"

	"mpu/internal/apps"
	"mpu/internal/backends"
	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/lint/comm"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

// preflightSPMD is the SPMD width the kernel rows are verified at: wide
// enough to exercise mesh geometry, small enough to keep the composed state
// space trivial.
const preflightSPMD = 4

// PreflightRow is one verified target of the preflight experiment.
type PreflightRow struct {
	Target   string // kernel or application name
	Backend  string
	MPUs     int
	Errors   int
	Warnings int
}

// PreflightResult is the full static-verification sweep.
type PreflightResult struct {
	Rows []PreflightRow
}

// Preflight statically verifies every shipped kernel (SPMD) and application
// program set with the machine-level linter — the commlint gate the paper's
// experiments sit behind. It is the batch counterpart of `mpurun -lint`: a
// failure here means a figure regeneration would deadlock or fault
// mid-sweep, so mastodon surfaces it up front without burning any simulated
// cycles.
func Preflight(opts Options) (*PreflightResult, error) {
	opts = opts.norm()
	res := &PreflightResult{}
	add := func(target, backend string, mpus int, rep *lint.Report) {
		res.Rows = append(res.Rows, PreflightRow{
			Target: target, Backend: backend, MPUs: mpus,
			Errors: rep.Count(lint.Error), Warnings: rep.Count(lint.Warning),
		})
	}
	specs := append(backends.All(), backends.SIMDRAM())
	for _, spec := range specs {
		for _, k := range workloads.All() {
			p, _, err := workloads.BuildProgram(k, spec, 1)
			if err != nil {
				return nil, fmt.Errorf("exp: preflight %s/%s: %w", spec.Name, k.Name, err)
			}
			add(k.Name, spec.Name, preflightSPMD,
				comm.LintSPMD(p, preflightSPMD, comm.Options{Spec: spec}))
		}
	}
	spec := backends.RACER()
	appBuilds := []struct {
		name  string
		progs func() ([]isa.Program, error)
	}{
		{"LLMEncode", func() ([]isa.Program, error) {
			return apps.BuildLLMEncodePrograms(apps.LLMEncodeConfig{Spec: spec, Mode: machine.ModeMPU,
				Workers: llmWorkers, VRFs: llmVRFs})
		}},
		{"BlackScholes", func() ([]isa.Program, error) {
			return apps.BuildBlackScholesPrograms(apps.BlackScholesConfig{Spec: spec, Mode: machine.ModeMPU,
				Options: bsOptVRFs * spec.Lanes})
		}},
		{"EditDistance", func() ([]isa.Program, error) {
			return apps.BuildEditDistancePrograms(apps.EditDistanceConfig{Spec: spec, Mode: machine.ModeMPU,
				MPUs: edRing, VRFs: edVRFs})
		}},
	}
	for _, b := range appBuilds {
		progs, err := b.progs()
		if err != nil {
			return nil, fmt.Errorf("exp: preflight %s: %w", b.name, err)
		}
		add(b.name, spec.Name, len(progs),
			comm.LintMachine(progs, comm.Options{Spec: spec}))
	}
	return res, nil
}

// Clean reports whether every target verified without errors or warnings.
func (r *PreflightResult) Clean() bool {
	for _, row := range r.Rows {
		if row.Errors > 0 || row.Warnings > 0 {
			return false
		}
	}
	return true
}

// Render formats the sweep as the preflight table: one summary line, then
// only the offending rows (a clean sweep prints no per-row noise).
func (r *PreflightResult) Render() string {
	var sb strings.Builder
	dirty := 0
	for _, row := range r.Rows {
		if row.Errors > 0 || row.Warnings > 0 {
			dirty++
		}
	}
	fmt.Fprintf(&sb, "Preflight: machine-level static verification (commlint)\n")
	fmt.Fprintf(&sb, "%d targets verified, %d with findings\n", len(r.Rows), dirty)
	if dirty > 0 {
		fmt.Fprintf(&sb, "%-16s %-10s %5s %7s %9s\n", "target", "backend", "mpus", "errors", "warnings")
		for _, row := range r.Rows {
			if row.Errors == 0 && row.Warnings == 0 {
				continue
			}
			fmt.Fprintf(&sb, "%-16s %-10s %5d %7d %9d\n", row.Target, row.Backend, row.MPUs, row.Errors, row.Warnings)
		}
	}
	return sb.String()
}
