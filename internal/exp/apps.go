package exp

import (
	"fmt"
	"strings"

	"mpu/internal/apps"
	"mpu/internal/backends"
	"mpu/internal/gpumodel"
	"mpu/internal/machine"
	"mpu/internal/sweep"
	"mpu/internal/workloads"
)

// App sizes for the end-to-end studies (scaled-down instances of the paper's
// 130/2/23-MPU runs; see the apps package docs).
const (
	llmWorkers = 3
	llmVRFs    = 2
	bsOptVRFs  = 8
	edRing     = 8
	edVRFs     = 4
)

// runApp executes one end-to-end application cell. mw is the intra-machine
// scheduler worker count — the cell's share of the CPU budget when the
// enclosing sweep itself fans out (Options.machineWorkers).
func runApp(name string, spec *backends.Spec, mode machine.Mode, opts Options, mw int) (*apps.Result, error) {
	switch name {
	case "LLMEncode":
		return apps.RunLLMEncode(apps.LLMEncodeConfig{Spec: spec, Mode: mode, Workers: llmWorkers, VRFs: llmVRFs,
			Seed: opts.Seed, NoTrace: opts.NoTrace, NoJIT: opts.NoJIT, MachineWorkers: mw})
	case "BlackScholes":
		return apps.RunBlackScholes(apps.BlackScholesConfig{Spec: spec, Mode: mode, Options: bsOptVRFs * spec.Lanes,
			Seed: opts.Seed, NoTrace: opts.NoTrace, NoJIT: opts.NoJIT, MachineWorkers: mw})
	case "EditDistance":
		return apps.RunEditDistance(apps.EditDistanceConfig{Spec: spec, Mode: mode, MPUs: edRing, VRFs: edVRFs,
			Seed: opts.Seed, NoTrace: opts.NoTrace, NoJIT: opts.NoJIT, MachineWorkers: mw})
	}
	return nil, fmt.Errorf("exp: unknown application %q", name)
}

// AppNames lists the end-to-end applications in Table IV order.
func AppNames() []string { return []string{"LLMEncode", "BlackScholes", "EditDistance"} }

// appGPUProfile characterizes the application for the RTX 4090 model at
// iso-chip utilization: the simulated instance occupies only a few MPUs, but
// the chip runs spec.MPUs/appMPUs independent instances concurrently (SPMD),
// so the GPU side must process the same total work. The MPU-side time is the
// single instance's makespan (the other instances run in parallel).
func appGPUProfile(name string, spec *backends.Spec) gpumodel.Profile {
	lanes := spec.Lanes
	switch name {
	case "LLMEncode":
		groups := spec.MPUs / (llmWorkers + 1)
		tokens := (llmWorkers + 1) * llmVRFs * lanes * groups
		return gpumodel.Profile{
			Name: name, Elements: tokens,
			OpsPerElement: 150, BytesPerElement: 64, Passes: 4, Divergence: 1,
			HostBytes: float64(tokens * 64),
		}
	case "BlackScholes":
		groups := spec.MPUs / 2
		options := 2 * bsOptVRFs * lanes * groups
		return gpumodel.Profile{
			Name: name, Elements: options,
			// The GPU prices an option in ~60 ops using hardware
			// transcendentals — the advantage §VIII-D highlights.
			OpsPerElement: 60, BytesPerElement: 40, Passes: 1, Divergence: 1,
			HostBytes: float64(options * 40),
		}
	case "EditDistance":
		groups := spec.MPUs / edRing
		reads := edRing * edVRFs * lanes * groups
		return gpumodel.Profile{
			Name: name, Elements: reads,
			OpsPerElement: float64(edRing * 20), BytesPerElement: 24,
			Passes: edRing, Divergence: 1.5,
			HostBytes: float64(reads * 24),
		}
	}
	return gpumodel.Profile{}
}

// Table4Row summarizes one application.
type Table4Row struct {
	App         string
	Steps       string
	Collectives string
	MPUs        int
	AsmLines    int // hand-written MPU assembly proxy ("Baseline" LoC)
	EzpimLines  int
}

// Table4 measures the end-to-end application structure and the ezpim code
// size reduction, on RACER in MPU mode.
func Table4(opts Options) ([]Table4Row, error) {
	opts = opts.norm()
	spec := backends.RACER()
	names := AppNames()
	mw := opts.machineWorkers()
	return sweep.Map(opts.Workers, len(names), func(i int) (Table4Row, error) {
		res, err := runApp(names[i], spec, machine.ModeMPU, opts, mw)
		if err != nil {
			return Table4Row{}, err
		}
		return Table4Row{
			App:         res.Name,
			Steps:       strings.Join(res.Steps, ", "),
			Collectives: strings.Join(res.Collectives, ", "),
			MPUs:        res.MPUs,
			AsmLines:    res.AsmLines,
			EzpimLines:  res.EzpimLines,
		}, nil
	})
}

// RenderTable4 prints the application summary.
func RenderTable4(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("Table IV — end-to-end application execution on the MPU\n")
	fmt.Fprintf(&sb, "%-14s %-36s %-22s %5s %9s %7s\n",
		"application", "compute steps", "collective comm.", "MPUs", "LoC(asm)", "LoC(ez)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %-36s %-22s %5d %9d %7d\n",
			r.App, r.Steps, r.Collectives, r.MPUs, r.AsmLines, r.EzpimLines)
	}
	return sb.String()
}

// Fig14Row is one application × back end comparison against the GPU.
type Fig14Row struct {
	App     string
	Backend string

	BaselineSpeedupVsGPU float64
	MPUSpeedupVsGPU      float64
	BaselineEnergyVsGPU  float64
	MPUEnergyVsGPU       float64
	MPUOverBaseline      float64
}

// Fig14 compares Baseline and MPU configurations of RACER and MIMDRAM
// against the GPU on the three applications.
func Fig14(opts Options) ([]Fig14Row, error) {
	opts = opts.norm()
	gpu := gpumodel.RTX4090()
	specs := []*backends.Spec{backends.RACER(), backends.MIMDRAM()}
	names := AppNames()
	mw := opts.machineWorkers()
	return sweep.Map(opts.Workers, len(specs)*len(names), func(i int) (Fig14Row, error) {
		spec, name := specs[i/len(names)], names[i%len(names)]
		g, err := gpu.Run(appGPUProfile(name, spec))
		if err != nil {
			return Fig14Row{}, err
		}
		mpu, err := runApp(name, spec, machine.ModeMPU, opts, mw)
		if err != nil {
			return Fig14Row{}, err
		}
		base, err := runApp(name, spec, machine.ModeBaseline, opts, mw)
		if err != nil {
			return Fig14Row{}, err
		}
		return Fig14Row{
			App: name, Backend: spec.Name,
			BaselineSpeedupVsGPU: g.Seconds / base.Seconds,
			MPUSpeedupVsGPU:      g.Seconds / mpu.Seconds,
			BaselineEnergyVsGPU:  g.Joules / base.Joules,
			MPUEnergyVsGPU:       g.Joules / mpu.Joules,
			MPUOverBaseline:      base.Seconds / mpu.Seconds,
		}, nil
	})
}

// RenderFig14 prints the application comparison.
func RenderFig14(rows []Fig14Row) string {
	var sb strings.Builder
	sb.WriteString("Fig. 14 — end-to-end application speedup and energy vs GPU\n")
	fmt.Fprintf(&sb, "%-14s %-10s %12s %12s %12s %12s %12s\n",
		"application", "backend", "base spd", "MPU spd", "base enrg", "MPU enrg", "MPU/base")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %-10s %11.3fx %11.3fx %11.3fx %11.3fx %11.2fx\n",
			r.App, r.Backend,
			r.BaselineSpeedupVsGPU, r.MPUSpeedupVsGPU,
			r.BaselineEnergyVsGPU, r.MPUEnergyVsGPU, r.MPUOverBaseline)
	}
	return sb.String()
}

// Fig15Row is one execution-time breakdown.
type Fig15Row struct {
	App     string
	Backend string
	Mode    string

	ComputeShare  float64
	InterMPUShare float64
	OffChipShare  float64
}

// Fig15 breaks application execution time into MPU computation, on-chip
// inter-MPU communication, and off-chip CPU communication.
func Fig15(opts Options) ([]Fig15Row, error) {
	opts = opts.norm()
	specs := []*backends.Spec{backends.RACER(), backends.MIMDRAM()}
	names := AppNames()
	modes := []machine.Mode{machine.ModeMPU, machine.ModeBaseline}
	nCells := len(specs) * len(names) * len(modes)
	mw := opts.machineWorkers()
	return sweep.Map(opts.Workers, nCells, func(i int) (Fig15Row, error) {
		spec := specs[i/(len(names)*len(modes))]
		name := names[i/len(modes)%len(names)]
		mode := modes[i%len(modes)]
		res, err := runApp(name, spec, mode, opts, mw)
		if err != nil {
			return Fig15Row{}, err
		}
		c, n, o := res.Breakdown()
		return Fig15Row{
			App: name, Backend: spec.Name, Mode: mode.String(),
			ComputeShare: c, InterMPUShare: n, OffChipShare: o,
		}, nil
	})
}

// RenderFig15 prints the breakdown.
func RenderFig15(rows []Fig15Row) string {
	var sb strings.Builder
	sb.WriteString("Fig. 15 — execution time breakdown (MPU compute / inter-MPU / off-chip CPU)\n")
	fmt.Fprintf(&sb, "%-14s %-10s %-9s %9s %10s %9s\n", "application", "backend", "config", "compute", "inter-MPU", "off-chip")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %-10s %-9s %8.0f%% %9.0f%% %8.0f%%\n",
			r.App, r.Backend, r.Mode, 100*r.ComputeShare, 100*r.InterMPUShare, 100*r.OffChipShare)
	}
	return sb.String()
}

// ---- Ablations -------------------------------------------------------------

// AblationRecipeRow is one recipe-table configuration's decode cost.
type AblationRecipeRow struct {
	Config       string
	DecodeStalls int64
	Seconds      float64
}

// AblationRecipeTable measures the Fig. 9 optimizations: decode stalls with
// and without the pointer table and template-lookup caching, on a
// MUL/DIV-heavy kernel (softmax).
func AblationRecipeTable(opts Options) ([]AblationRecipeRow, error) {
	opts = opts.norm()
	spec := backends.RACER()
	k := workloads.ByName("softmax")
	n := spec.MPUs * spec.Lanes * 2
	configs := []struct {
		name                    string
		pointerTable, tmplCache bool
	}{
		{"pointer+lookup (default)", true, true},
		{"lookup only", false, true},
		{"pointer only", true, false},
		{"neither", false, false},
	}
	return sweep.Map(opts.Workers, len(configs), func(i int) (AblationRecipeRow, error) {
		c := configs[i]
		rc := defaultRecipeCfg()
		rc.PointerTable = c.pointerTable
		rc.TemplateLookup = c.tmplCache
		res, err := workloads.Run(k, workloads.RunConfig{
			Spec: spec, Mode: machine.ModeMPU, TotalElements: n,
			Seed: opts.Seed, RecipeCache: rc, NoTrace: opts.NoTrace, NoJIT: opts.NoJIT,
		})
		if err != nil {
			return AblationRecipeRow{}, err
		}
		return AblationRecipeRow{
			Config: c.name, DecodeStalls: res.Stats.DecodeStalls, Seconds: res.Seconds,
		}, nil
	})
}

// RenderAblationRecipe prints the recipe-table ablation.
func RenderAblationRecipe(rows []AblationRecipeRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — recipe-table optimizations (softmax on MPU:RACER)\n")
	fmt.Fprintf(&sb, "%-28s %14s %12s\n", "configuration", "decode stalls", "seconds")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-28s %14d %12.3g\n", r.Config, r.DecodeStalls, r.Seconds)
	}
	return sb.String()
}

// AblationThermalRow compares RACER activation limits (footnote 2).
type AblationThermalRow struct {
	ActiveVRFsPerRFH int
	Seconds          float64
	Speedup          float64 // vs 1 active VRF
}

// AblationThermal sweeps the RACER per-cluster activation limit on vecadd.
func AblationThermal(opts Options) ([]AblationThermalRow, error) {
	opts = opts.norm()
	spec := backends.RACER()
	k := workloads.ByName("vecadd")
	n := elementsFor(spec, opts.Scale)
	limits := []int{1, 2, 4}
	rows, err := sweep.Map(opts.Workers, len(limits), func(i int) (AblationThermalRow, error) {
		res, err := workloads.Run(k, workloads.RunConfig{
			Spec: spec, Mode: machine.ModeMPU, TotalElements: n,
			Seed: opts.Seed, MaxSimVRFs: maxSimVRFs, ActiveVRFsOverride: limits[i],
			NoTrace: opts.NoTrace, NoJIT: opts.NoJIT,
		})
		if err != nil {
			return AblationThermalRow{}, err
		}
		return AblationThermalRow{ActiveVRFsPerRFH: limits[i], Seconds: res.Seconds}, nil
	})
	if err != nil {
		return nil, err
	}
	// Speedups are relative to the 1-active-VRF row, filled in once every
	// cell has run.
	base := rows[0].Seconds
	for i := range rows {
		rows[i].Speedup = base / rows[i].Seconds
	}
	return rows, nil
}

// RenderAblationThermal prints the activation-limit sweep.
func RenderAblationThermal(rows []AblationThermalRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — RACER active VRFs per cluster (footnote 2)\n")
	fmt.Fprintf(&sb, "%12s %12s %10s\n", "active VRFs", "seconds", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%12d %12.3g %9.2fx\n", r.ActiveVRFsPerRFH, r.Seconds, r.Speedup)
	}
	return sb.String()
}

// AblationDivergenceRow compares scheduling granularities for a divergent
// dynamic loop.
type AblationDivergenceRow struct {
	ActiveVRFsPerRFH int
	Seconds          float64
	MicroOps         uint64 // issued work: bigger batches waste lanes
}

// AblationDivergence measures the §V footnote's argument against warp-style
// lockstep: larger activation batches force every VRF to ride the slowest
// lane's iteration count (gcd on RACER).
func AblationDivergence(opts Options) ([]AblationDivergenceRow, error) {
	opts = opts.norm()
	spec := backends.RACER()
	k := workloads.ByName("gcd")
	n := spec.MPUs * spec.Lanes * 32 // 32 VRFs per MPU share
	limits := []int{1, 4}
	return sweep.Map(opts.Workers, len(limits), func(i int) (AblationDivergenceRow, error) {
		res, err := workloads.Run(k, workloads.RunConfig{
			Spec: spec, Mode: machine.ModeMPU, TotalElements: n,
			Seed: opts.Seed, ActiveVRFsOverride: limits[i], NoTrace: opts.NoTrace, NoJIT: opts.NoJIT,
		})
		if err != nil {
			return AblationDivergenceRow{}, err
		}
		return AblationDivergenceRow{
			ActiveVRFsPerRFH: limits[i], Seconds: res.Seconds, MicroOps: res.Stats.MicroOps,
		}, nil
	})
}

// RenderAblationDivergence prints the divergence ablation.
func RenderAblationDivergence(rows []AblationDivergenceRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — ensemble batch granularity under divergence (gcd on MPU:RACER)\n")
	fmt.Fprintf(&sb, "%12s %12s %14s\n", "active VRFs", "seconds", "micro-ops")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%12d %12.3g %14d\n", r.ActiveVRFsPerRFH, r.Seconds, r.MicroOps)
	}
	return sb.String()
}
