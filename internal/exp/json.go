package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// WriteJSON marshals v with indentation and writes it to path, creating the
// parent directory if missing. Shared by the benchmark drivers (BENCH_*.json)
// and the mpuload study.
func WriteJSON(path string, v any) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}
