package exp

import (
	"os"
	"strings"
	"testing"

	"mpu/internal/workloads"
)

// The experiment tests assert the SHAPES the paper reports (who wins, by
// roughly what factor, where crossovers fall) — see EXPERIMENTS.md for the
// paper-vs-measured accounting.

func TestFig1Shape(t *testing.T) {
	r, err := Fig1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 7 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Slowdown shrinks as the loop body amortizes the round trip, and at 80
	// body instructions sits near the paper's 10.1×.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Slowdown >= r.Points[i-1].Slowdown {
			t.Fatalf("slowdown not decreasing at body=%d", r.Points[i].BodyInstrs)
		}
	}
	last := r.Points[len(r.Points)-1]
	if last.BodyInstrs != 80 || last.Slowdown < 5 || last.Slowdown > 15 {
		t.Fatalf("slowdown at 80 instrs = %.1f, want ≈10", last.Slowdown)
	}
	if last.CPUTimeShare < 0.8 {
		t.Fatalf("CPU share = %.2f, want dominant", last.CPUTimeShare)
	}
	if !strings.Contains(r.Render(), "slowdown") {
		t.Fatal("render missing header")
	}
}

func TestTable1Shape(t *testing.T) {
	s := Table1()
	for _, want := range []string{"Dynamic loops", "Power-density-aware", "MPU"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table1 missing %q", want)
		}
	}
	// The MPU column supports everything: 7 features → the MPU mark count
	// must be 7 per column position; cheap proxy: every row ends with '*'.
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "if-else") || strings.HasPrefix(line, "Dynamic") {
			if !strings.HasSuffix(strings.TrimRight(line, " "), "*") {
				t.Fatalf("MPU column not supported in row %q", line)
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	pts := Fig5(Options{})
	over := map[string]bool{}
	for _, p := range pts {
		if p.OverLimit {
			over[p.Backend] = true
		}
	}
	if !over["RACER"] {
		t.Fatal("RACER never exceeds the air-cooling limit")
	}
	if over["DualityCache"] {
		t.Fatal("DualityCache exceeded the thermal limit; the paper says it is not thermally throttled")
	}
	if over["MIMDRAM"] {
		t.Fatal("MIMDRAM fully-active should stay under the limit (Table III allows full activation)")
	}
	if !strings.Contains(RenderFig5(pts), "OVER") {
		t.Fatal("render missing limit marks")
	}
}

func TestTable3AndFig11Render(t *testing.T) {
	t3 := Table3()
	for _, want := range []string{"RACER", "MIMDRAM", "DualityCache", "Active VRFs per RFH", "Playback buffer"} {
		if !strings.Contains(t3, want) {
			t.Fatalf("Table3 missing %q", want)
		}
	}
	f11 := Fig11()
	for _, want := range []string{"playback buffer", "template lookup", "0.123", "4.63"} {
		if !strings.Contains(f11, want) {
			t.Fatalf("Fig11 missing %q", want)
		}
	}
}

func TestFig12Shapes(t *testing.T) {
	results, err := Fig12(Options{Scale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("backends = %d", len(results))
	}
	byName := map[string]*Fig12Result{}
	for _, r := range results {
		byName[r.Backend] = r
		if len(r.Rows) != 21 {
			t.Fatalf("%s: %d kernels", r.Backend, len(r.Rows))
		}
		// Basic kernels: MPU within a few percent of Baseline (iso-area).
		if g := r.GroupGeoSpeedup[workloads.Basic]; g < 0.90 || g > 1.06 {
			t.Errorf("%s basic geomean speedup = %.3f, want ≈0.96–1.0", r.Backend, g)
		}
		// Energy savings everywhere.
		if r.GeoEnergy <= 1 {
			t.Errorf("%s geomean energy savings = %.2f, want > 1", r.Backend, r.GeoEnergy)
		}
		// Stencils benefit from dropping the Toeplitz transformation.
		if g := r.GroupGeoSpeedup[workloads.Stencil]; g < 2 {
			t.Errorf("%s stencil geomean speedup = %.2f, want ≳3", r.Backend, g)
		}
	}
	racer, mimdram, dcache := byName["RACER"], byName["MIMDRAM"], byName["DualityCache"]
	// Overall: every back end improves; RACER improves the most,
	// DualityCache the least (§VIII-B).
	if racer.GeoSpeedup <= 1.3 {
		t.Errorf("RACER geomean speedup = %.2f, want ≈1.7 (paper: 1.79)", racer.GeoSpeedup)
	}
	if !(racer.GeoSpeedup > mimdram.GeoSpeedup && mimdram.GeoSpeedup > dcache.GeoSpeedup) {
		t.Errorf("speedup ordering RACER(%.2f) > MIMDRAM(%.2f) > DualityCache(%.2f) violated",
			racer.GeoSpeedup, mimdram.GeoSpeedup, dcache.GeoSpeedup)
	}
	// RACER's control-flow kernels: strong gains (paper: 5.6× for
	// stencil+complex).
	if g := racer.GroupGeoSpeedup[workloads.Complex]; g < 2 {
		t.Errorf("RACER complex geomean = %.2f, want ≳3", g)
	}
	if !strings.Contains(racer.Render(), "geomean") {
		t.Fatal("render missing geomeans")
	}
}

func TestFig13Shapes(t *testing.T) {
	results, err := Fig13(Options{Scale: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		// The MPU configuration always improves on Baseline against the
		// same GPU yardstick.
		if r.GeoMPUSpeedup <= r.GeoBaselineSpeedup {
			t.Errorf("%s: MPU geomean (%.2f) not above Baseline (%.2f) vs GPU",
				r.Backend, r.GeoMPUSpeedup, r.GeoBaselineSpeedup)
		}
		if r.Backend == "RACER" {
			// Basic bitwise kernels beat the GPU outright (memory-bound
			// there, in-place here).
			for _, row := range r.Rows {
				// (vecmul's full 64-bit bit-serial multiply is the
				// costliest basic kernel; it still wins, just less.)
				if row.Group == workloads.Basic && row.MPUSpeedupVsGPU < 1.2 {
					t.Errorf("RACER %s vs GPU = %.2fx, want above 1", row.Kernel, row.MPUSpeedupVsGPU)
				}
			}
			if r.GeoMPUSpeedup < 1 {
				t.Errorf("MPU:RACER geomean vs GPU = %.2f, want > 1", r.GeoMPUSpeedup)
			}
		}
		if !strings.Contains(r.Render(), "GPU") {
			t.Fatal("render missing header")
		}
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("apps = %d", len(rows))
	}
	wantMPUs := map[string]int{"LLMEncode": 4, "BlackScholes": 2, "EditDistance": 8}
	for _, r := range rows {
		if r.EzpimLines >= r.AsmLines {
			t.Errorf("%s: ezpim LoC %d not below assembly %d", r.App, r.EzpimLines, r.AsmLines)
		}
		if r.MPUs != wantMPUs[r.App] {
			t.Errorf("%s: MPUs = %d, want %d", r.App, r.MPUs, wantMPUs[r.App])
		}
	}
	if !strings.Contains(RenderTable4(rows), "collective") {
		t.Fatal("render missing header")
	}
}

func TestFig14Shapes(t *testing.T) {
	rows, err := Fig14(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The MPU always improves on Baseline end to end.
		if r.MPUOverBaseline <= 1 {
			t.Errorf("%s on %s: MPU/Baseline = %.2f, want > 1", r.App, r.Backend, r.MPUOverBaseline)
		}
		// Baseline EditDistance loses to the GPU (Fig. 14's 7.72× story).
		if r.App == "EditDistance" && r.BaselineSpeedupVsGPU >= 1 {
			t.Errorf("Baseline EditDistance on %s beats the GPU (%.2fx); the paper has it losing", r.Backend, r.BaselineSpeedupVsGPU)
		}
		// BlackScholes: MPU still trails the GPU's hardware transcendentals.
		if r.App == "BlackScholes" && r.MPUSpeedupVsGPU >= 1 {
			t.Errorf("MPU BlackScholes on %s beats the GPU (%.2fx); the paper reports slowdowns", r.Backend, r.MPUSpeedupVsGPU)
		}
	}
	if !strings.Contains(RenderFig14(rows), "MPU/base") {
		t.Fatal("render missing header")
	}
}

func TestFig15Shapes(t *testing.T) {
	rows, err := Fig15(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sum := r.ComputeShare + r.InterMPUShare + r.OffChipShare
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s/%s/%s: shares sum to %v", r.App, r.Backend, r.Mode, sum)
		}
		if r.Mode == "MPU" && r.OffChipShare != 0 {
			t.Errorf("%s on %s: MPU config shows off-chip time", r.App, r.Backend)
		}
		if r.Mode == "Baseline" && r.App == "EditDistance" && r.OffChipShare < 0.5 {
			t.Errorf("Baseline EditDistance off-chip share = %.2f, want dominant", r.OffChipShare)
		}
	}
	if !strings.Contains(RenderFig15(rows), "off-chip") {
		t.Fatal("render missing header")
	}
}

func TestAblationRecipeTable(t *testing.T) {
	rows, err := AblationRecipeTable(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	def, neither := rows[0], rows[3]
	if def.DecodeStalls >= neither.DecodeStalls {
		t.Errorf("default config stalls (%d) not below unoptimized (%d)", def.DecodeStalls, neither.DecodeStalls)
	}
	if !strings.Contains(RenderAblationRecipe(rows), "decode") {
		t.Fatal("render missing header")
	}
}

func TestAblationThermal(t *testing.T) {
	rows, err := AblationThermal(Options{Scale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Footnote 2: doubling the activation limit roughly doubles throughput.
	if rows[1].Speedup < 1.5 {
		t.Errorf("2 active VRFs speedup = %.2f, want ≈2", rows[1].Speedup)
	}
	if rows[2].Seconds >= rows[1].Seconds {
		t.Error("4 active VRFs not faster than 2")
	}
	if !strings.Contains(RenderAblationThermal(rows), "active VRFs") {
		t.Fatal("render missing header")
	}
}

func TestAblationDivergence(t *testing.T) {
	rows, err := AblationDivergence(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	fine, coarse := rows[0], rows[1]
	if coarse.Seconds >= fine.Seconds {
		t.Errorf("coarse batching (%.3g s) not faster than fine (%.3g s)", coarse.Seconds, fine.Seconds)
	}
	// Bigger batches ride the slowest lane: more issued work.
	if coarse.MicroOps <= fine.MicroOps {
		t.Errorf("coarse micro-ops (%d) not above fine (%d)", coarse.MicroOps, fine.MicroOps)
	}
	if !strings.Contains(RenderAblationDivergence(rows), "granularity") {
		t.Fatal("render missing header")
	}
}

func TestElementsFor(t *testing.T) {
	for _, s := range []string{"racer", "mimdram", "dcache"} {
		spec, _ := backendsByName(s)
		if elementsFor(spec, 1) <= 0 || elementsFor(spec, 8) >= elementsFor(spec, 1) {
			t.Errorf("%s: scale did not shrink the working set", s)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("geomean(2,8) = %v", g)
	}
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
}

func TestExportAll(t *testing.T) {
	dir := t.TempDir()
	if err := ExportAll(dir, Options{Scale: 16}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig1", "fig5", "fig12_RACER", "fig12_MIMDRAM",
		"fig12_DualityCache", "fig13_RACER", "table4", "fig14", "fig15"} {
		fi, err := os.Stat(dir + "/" + name + ".csv")
		if err != nil || fi.Size() == 0 {
			t.Errorf("%s.csv missing or empty: %v", name, err)
		}
	}
}
