package exp

import (
	"reflect"
	"testing"
)

// Every shipped graph must compile, verify clean, and run on every back
// end, and the sweep must be deterministic (same placements, same cycles).
func TestPipelinesSweep(t *testing.T) {
	const dir = "../../examples/pipelines"
	r, err := Pipelines(Options{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean() {
		t.Fatalf("shipped pipelines not verification-clean:\n%s", r.Render())
	}
	if len(r.Rows) == 0 || len(r.Rows)%4 != 0 {
		t.Fatalf("got %d rows, want a multiple of 4 (graphs x back ends)", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Cycles <= 0 || row.MPUs <= 0 || row.Nodes <= 0 {
			t.Errorf("%s/%s: degenerate row %+v", row.Graph, row.Backend, row)
		}
	}
	again, err := Pipelines(Options{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Rows, again.Rows) {
		t.Errorf("sweep not deterministic:\n%s\nvs\n%s", r.Render(), again.Render())
	}
}
