package exp

import (
	"fmt"
	"strings"

	"mpu/internal/backends"
	"mpu/internal/gpumodel"
	"mpu/internal/machine"
	"mpu/internal/sweep"
	"mpu/internal/workloads"
)

// baselineComputeScale returns the Baseline compute inflation for a kernel:
// stencils run as 4×-footprint Toeplitz matrix products on the original
// datapaths (§VIII-B).
func baselineComputeScale(k *workloads.Kernel) float64 {
	if k.Group == workloads.Stencil {
		return 4
	}
	return 1
}

// maxSimVRFs keeps the functional portion of chip-scale runs small; timing
// scales through the scheduler-round factor (see workloads.Run).
const maxSimVRFs = 8

// KernelRow is one kernel's Fig. 12 comparison on one back end.
type KernelRow struct {
	Kernel string
	Group  workloads.Group

	MPUSeconds, BaselineSeconds float64
	MPUJoules, BaselineJoules   float64

	Speedup       float64 // Baseline time / MPU time
	EnergySavings float64 // Baseline energy / MPU energy
}

// Fig12Result is one back end's kernel sweep.
type Fig12Result struct {
	Backend string
	Rows    []KernelRow

	GeoSpeedup, GeoEnergy           float64
	GroupGeoSpeedup, GroupGeoEnergy map[workloads.Group]float64

	// Trace-engine round accounting summed over the sweep's machine runs
	// (simulator execution strategy, not modeled hardware; all zero with
	// -notrace).
	TraceHits, TraceMisses, TraceFallbacks uint64

	// Trace-JIT accounting: compiled closure-chain programs and the replay
	// rounds they served (zero with -notrace or -nojit).
	JITCompiles, JITReplays uint64
}

// Fig12 runs all 21 kernels on every back end in MPU and Baseline modes and
// reports speedup and energy savings of MPU:X over Baseline:X. Every
// (backend, kernel) cell is an independent machine run, fanned out across
// opts.Workers and reassembled in sweep order.
func Fig12(opts Options) ([]*Fig12Result, error) {
	opts = opts.norm()
	specs := backends.All()
	kernels := workloads.All()
	nk := len(kernels)
	type cell struct{ mpu, base *workloads.Result }
	cells, err := sweep.Map(opts.Workers, len(specs)*nk, func(i int) (cell, error) {
		spec, k := specs[i/nk], kernels[i%nk]
		n := elementsFor(spec, opts.Scale)
		mpu, err := workloads.Run(k, workloads.RunConfig{
			Spec: spec, Mode: machine.ModeMPU, TotalElements: n,
			Seed: opts.Seed, MaxSimVRFs: maxSimVRFs, NoTrace: opts.NoTrace, NoJIT: opts.NoJIT,
		})
		if err != nil {
			return cell{}, fmt.Errorf("fig12 %s MPU:%s: %w", k.Name, spec.Name, err)
		}
		base, err := workloads.Run(k, workloads.RunConfig{
			Spec: spec, Mode: machine.ModeBaseline, TotalElements: n,
			Seed: opts.Seed, MaxSimVRFs: maxSimVRFs, NoTrace: opts.NoTrace, NoJIT: opts.NoJIT,
			ComputeScale: baselineComputeScale(k),
		})
		if err != nil {
			return cell{}, fmt.Errorf("fig12 %s Baseline:%s: %w", k.Name, spec.Name, err)
		}
		return cell{mpu, base}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Fig12Result
	for si, spec := range specs {
		res := &Fig12Result{
			Backend:         spec.Name,
			GroupGeoSpeedup: map[workloads.Group]float64{},
			GroupGeoEnergy:  map[workloads.Group]float64{},
		}
		groupSpeed := map[workloads.Group][]float64{}
		groupEnergy := map[workloads.Group][]float64{}
		var speeds, energies []float64
		for ki, k := range kernels {
			c := cells[si*nk+ki]
			row := KernelRow{
				Kernel: k.Name, Group: k.Group,
				MPUSeconds: c.mpu.Seconds, BaselineSeconds: c.base.Seconds,
				MPUJoules: c.mpu.Joules, BaselineJoules: c.base.Joules,
				Speedup:       c.base.Seconds / c.mpu.Seconds,
				EnergySavings: c.base.Joules / c.mpu.Joules,
			}
			res.Rows = append(res.Rows, row)
			res.TraceHits += c.mpu.Stats.TraceHits + c.base.Stats.TraceHits
			res.TraceMisses += c.mpu.Stats.TraceMisses + c.base.Stats.TraceMisses
			res.TraceFallbacks += c.mpu.Stats.TraceFallbacks + c.base.Stats.TraceFallbacks
			res.JITCompiles += c.mpu.Stats.JITCompiles + c.base.Stats.JITCompiles
			res.JITReplays += c.mpu.Stats.JITReplays + c.base.Stats.JITReplays
			speeds = append(speeds, row.Speedup)
			energies = append(energies, row.EnergySavings)
			groupSpeed[k.Group] = append(groupSpeed[k.Group], row.Speedup)
			groupEnergy[k.Group] = append(groupEnergy[k.Group], row.EnergySavings)
		}
		res.GeoSpeedup = geomean(speeds)
		res.GeoEnergy = geomean(energies)
		for g, xs := range groupSpeed {
			res.GroupGeoSpeedup[g] = geomean(xs)
		}
		for g, xs := range groupEnergy {
			res.GroupGeoEnergy[g] = geomean(xs)
		}
		out = append(out, res)
	}
	return out, nil
}

// Render prints the per-kernel speedups and energy savings.
func (r *Fig12Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 12 — MPU:%s vs Baseline:%s\n", r.Backend, r.Backend)
	fmt.Fprintf(&sb, "%-12s %-8s %10s %10s\n", "kernel", "group", "speedup", "energy")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %-8s %9.2fx %9.2fx\n", row.Kernel, row.Group, row.Speedup, row.EnergySavings)
	}
	for _, g := range []workloads.Group{workloads.Basic, workloads.Branch, workloads.Stencil, workloads.Complex} {
		fmt.Fprintf(&sb, "geomean %-10s %9.2fx %9.2fx\n", g, r.GroupGeoSpeedup[g], r.GroupGeoEnergy[g])
	}
	fmt.Fprintf(&sb, "geomean %-10s %9.2fx %9.2fx\n", "all", r.GeoSpeedup, r.GeoEnergy)
	if n := r.TraceHits + r.TraceMisses + r.TraceFallbacks; n > 0 {
		fmt.Fprintf(&sb, "trace engine: %d/%d rounds replayed (%d recorded, %d interpreted)\n",
			r.TraceHits, n, r.TraceMisses, r.TraceFallbacks)
	}
	if r.JITCompiles+r.JITReplays > 0 {
		fmt.Fprintf(&sb, "trace JIT: %d compiled bodies served %d replay rounds\n",
			r.JITCompiles, r.JITReplays)
	}
	return sb.String()
}

// GPURow is one kernel's Fig. 13 comparison against the RTX 4090 model.
type GPURow struct {
	Kernel string
	Group  workloads.Group

	BaselineSpeedupVsGPU float64
	MPUSpeedupVsGPU      float64
	BaselineEnergyVsGPU  float64
	MPUEnergyVsGPU       float64
}

// Fig13Result is one back end's GPU-normalized sweep.
type Fig13Result struct {
	Backend string
	Rows    []GPURow

	GeoMPUSpeedup, GeoMPUEnergy           float64
	GeoBaselineSpeedup, GeoBaselineEnergy float64
}

// Fig13 normalizes Baseline:X and MPU:X to the GPU for RACER and MIMDRAM
// (plus DualityCache, which the paper summarizes in prose). Cells fan out
// like Fig12; the analytical GPU run rides along in each cell.
func Fig13(opts Options) ([]*Fig13Result, error) {
	opts = opts.norm()
	gpu := gpumodel.RTX4090()
	specs := backends.All()
	kernels := workloads.All()
	nk := len(kernels)
	cells, err := sweep.Map(opts.Workers, len(specs)*nk, func(i int) (GPURow, error) {
		spec, k := specs[i/nk], kernels[i%nk]
		n := elementsFor(spec, opts.Scale)
		g, err := workloads.GPURun(k, gpu, n)
		if err != nil {
			return GPURow{}, err
		}
		mpu, err := workloads.Run(k, workloads.RunConfig{
			Spec: spec, Mode: machine.ModeMPU, TotalElements: n,
			Seed: opts.Seed, MaxSimVRFs: maxSimVRFs, NoTrace: opts.NoTrace, NoJIT: opts.NoJIT,
		})
		if err != nil {
			return GPURow{}, err
		}
		base, err := workloads.Run(k, workloads.RunConfig{
			Spec: spec, Mode: machine.ModeBaseline, TotalElements: n,
			Seed: opts.Seed, MaxSimVRFs: maxSimVRFs, NoTrace: opts.NoTrace, NoJIT: opts.NoJIT,
			ComputeScale: baselineComputeScale(k),
		})
		if err != nil {
			return GPURow{}, err
		}
		return GPURow{
			Kernel: k.Name, Group: k.Group,
			BaselineSpeedupVsGPU: g.Seconds / base.Seconds,
			MPUSpeedupVsGPU:      g.Seconds / mpu.Seconds,
			BaselineEnergyVsGPU:  g.Joules / base.Joules,
			MPUEnergyVsGPU:       g.Joules / mpu.Joules,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Fig13Result
	for si, spec := range specs {
		res := &Fig13Result{Backend: spec.Name}
		var ms, me, bs, be []float64
		for ki := range kernels {
			row := cells[si*nk+ki]
			res.Rows = append(res.Rows, row)
			ms = append(ms, row.MPUSpeedupVsGPU)
			me = append(me, row.MPUEnergyVsGPU)
			bs = append(bs, row.BaselineSpeedupVsGPU)
			be = append(be, row.BaselineEnergyVsGPU)
		}
		res.GeoMPUSpeedup = geomean(ms)
		res.GeoMPUEnergy = geomean(me)
		res.GeoBaselineSpeedup = geomean(bs)
		res.GeoBaselineEnergy = geomean(be)
		out = append(out, res)
	}
	return out, nil
}

// Render prints the GPU-normalized rows (log-scale data in the paper).
func (r *Fig13Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 13 — Baseline:%s and MPU:%s normalized to GPU (RTX 4090 model)\n", r.Backend, r.Backend)
	fmt.Fprintf(&sb, "%-12s %-8s %14s %14s %14s %14s\n",
		"kernel", "group", "base speedup", "MPU speedup", "base energy", "MPU energy")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %-8s %13.2fx %13.2fx %13.2fx %13.2fx\n",
			row.Kernel, row.Group,
			row.BaselineSpeedupVsGPU, row.MPUSpeedupVsGPU,
			row.BaselineEnergyVsGPU, row.MPUEnergyVsGPU)
	}
	fmt.Fprintf(&sb, "geomean: base %.2fx / MPU %.2fx speedup, base %.2fx / MPU %.2fx energy\n",
		r.GeoBaselineSpeedup, r.GeoMPUSpeedup, r.GeoBaselineEnergy, r.GeoMPUEnergy)
	return sb.String()
}
