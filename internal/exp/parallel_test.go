package exp

import (
	"reflect"
	"testing"
)

// The worker pool must be invisible in the output: any -j value renders the
// same bytes. These tests run the data-bearing sweeps once sequentially
// (Workers: 1) and once with more workers than cells in most stages
// (Workers: 8) and require identical renders and CSV rows.

func parallelOpts(workers int) Options {
	return Options{Scale: 16, Seed: 1, Workers: workers}
}

func TestFig1Deterministic(t *testing.T) {
	seq, err := Fig1(parallelOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig1(parallelOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Render() != par.Render() {
		t.Errorf("Fig1 render differs between -j 1 and -j 8")
	}
	if !reflect.DeepEqual(seq.CSV(), par.CSV()) {
		t.Errorf("Fig1 CSV differs between -j 1 and -j 8")
	}
}

func TestFig5Deterministic(t *testing.T) {
	seq := Fig5(parallelOpts(1))
	par := Fig5(parallelOpts(8))
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Fig5 points differ between -j 1 and -j 8")
	}
	if RenderFig5(seq) != RenderFig5(par) {
		t.Errorf("Fig5 render differs between -j 1 and -j 8")
	}
}

func TestFig12Deterministic(t *testing.T) {
	seq, err := Fig12(parallelOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig12(parallelOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("backend count: seq %d, par %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Render() != par[i].Render() {
			t.Errorf("Fig12 %s render differs between -j 1 and -j 8", seq[i].Backend)
		}
		if !reflect.DeepEqual(seq[i].CSV(), par[i].CSV()) {
			t.Errorf("Fig12 %s CSV differs between -j 1 and -j 8", seq[i].Backend)
		}
	}
}

func TestFig13Deterministic(t *testing.T) {
	seq, err := Fig13(parallelOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig13(parallelOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("backend count: seq %d, par %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Render() != par[i].Render() {
			t.Errorf("Fig13 %s render differs between -j 1 and -j 8", seq[i].Backend)
		}
		if !reflect.DeepEqual(seq[i].CSV(), par[i].CSV()) {
			t.Errorf("Fig13 %s CSV differs between -j 1 and -j 8", seq[i].Backend)
		}
	}
}

// Table1 takes no sweep options (it is derived from the static backend
// capability table), but `mastodon -j N table1` still routes through the
// same driver: pin down that it renders at all and is stable call-to-call.
func TestTable1Stable(t *testing.T) {
	if Table1() == "" || Table1() != Table1() {
		t.Fatal("Table1 is empty or unstable")
	}
}

func TestFig15Deterministic(t *testing.T) {
	seq, err := Fig15(parallelOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig15(parallelOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Fig15 rows differ between -j 1 and -j 8")
	}
}
