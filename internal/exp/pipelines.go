package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mpu/internal/backends"
	"mpu/internal/fbp"
	"mpu/internal/lint"
	"mpu/internal/machine"
)

// The pipelines experiment: every shipped .fbp graph is compiled for every
// back end, machine-level verified (the compiler routes through commlint, so
// a finding here is a compiler regression, not a user error), and executed
// once offline — the mastodon counterpart of `mpurun file.fbp`, proving the
// graphs run end-to-end without a daemon before any of them is used in a
// study.

// PipelineRow is one (graph, backend) cell of the sweep.
type PipelineRow struct {
	Graph    string // file base name
	Backend  string
	Nodes    int
	MPUs     int
	Hops     int
	Errors   int
	Warnings int
	Cycles   int64 // one offline run in MPU mode
}

// PipelinesResult is the full compile+verify+run sweep.
type PipelinesResult struct {
	Rows []PipelineRow
}

// Pipelines compiles every .fbp graph under dir for every back end, counts
// the verifier findings, and runs each placement once offline.
func Pipelines(opts Options, dir string) (*PipelinesResult, error) {
	opts = opts.norm()
	paths, err := filepath.Glob(filepath.Join(dir, "*.fbp"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("exp: no .fbp graphs under %s", dir)
	}
	sort.Strings(paths)
	specs := append(backends.All(), backends.SIMDRAM())
	res := &PipelinesResult{}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		graph := strings.TrimSuffix(filepath.Base(path), ".fbp")
		for _, spec := range specs {
			c, err := fbp.CompileSource(string(src), fbp.Options{Spec: spec})
			if err != nil {
				return nil, fmt.Errorf("exp: pipelines %s/%s: %w", graph, spec.Name, err)
			}
			m, err := machine.New(machine.Config{
				Spec: spec, NumMPUs: c.MPUs, Workers: opts.MachineWorkers,
				NoTrace: opts.NoTrace, NoJIT: opts.NoJIT,
			})
			if err != nil {
				return nil, fmt.Errorf("exp: pipelines %s/%s: %w", graph, spec.Name, err)
			}
			for mpu, p := range c.Programs {
				if err := m.LoadProgram(mpu, p); err != nil {
					return nil, fmt.Errorf("exp: pipelines %s/%s: %w", graph, spec.Name, err)
				}
			}
			st, err := m.Run()
			if err != nil {
				return nil, fmt.Errorf("exp: pipelines %s/%s: %w", graph, spec.Name, err)
			}
			res.Rows = append(res.Rows, PipelineRow{
				Graph: graph, Backend: spec.Name,
				Nodes: len(c.Nodes), MPUs: c.MPUs, Hops: c.Hops,
				Errors:   c.Report.Count(lint.Error),
				Warnings: c.Report.Count(lint.Warning),
				Cycles:   st.Cycles,
			})
		}
	}
	return res, nil
}

// Clean reports whether every cell compiled and verified without findings.
func (r *PipelinesResult) Clean() bool {
	for _, row := range r.Rows {
		if row.Errors > 0 || row.Warnings > 0 {
			return false
		}
	}
	return true
}

// Render formats the sweep as one table: every graph on every back end with
// its placement and one offline run's cycle count.
func (r *PipelinesResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Pipelines: FBP graph compilation, verification, and offline execution\n")
	fmt.Fprintf(&sb, "%-20s %-13s %5s %5s %5s %7s %9s %10s\n",
		"graph", "backend", "nodes", "mpus", "hops", "errors", "warnings", "cycles")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-20s %-13s %5d %5d %5d %7d %9d %10d\n",
			row.Graph, row.Backend, row.Nodes, row.MPUs, row.Hops, row.Errors, row.Warnings, row.Cycles)
	}
	return sb.String()
}
