package exp

import "sort"

// Percentile returns the p-quantile (0 <= p <= 1) of values by nearest rank,
// without mutating the input; 0 when values is empty. Shared by the load
// generators and study drivers so every BENCH file computes percentiles the
// same way.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	return s[int(p*float64(len(s)-1))]
}
