package exp

import "testing"

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.5, 3}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	if vals[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}
