// Package sweep provides the bounded worker pool behind the experiment
// harness. Every cell of a configuration sweep — one (backend, kernel,
// mode) machine run, one figure point — is independent, so the harness
// fans cells out across goroutines and reassembles the results in input
// order. The output of a parallel sweep is byte-identical to a sequential
// one; only the wall clock changes.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a -j style worker-count request: n > 0 is used as
// given; anything else defaults to runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// MachineWorkers resolves the intra-machine scheduler budget for one cell
// of a sweep that fans out sweepWorkers cells concurrently. An explicit
// request (> 0) wins. 0 divides GOMAXPROCS across the sweep — each cell
// gets floor(GOMAXPROCS / sweepWorkers) scheduler goroutines, at least 1 —
// so sweep-level and machine-level parallelism together never oversubscribe
// the host: sweepWorkers × MachineWorkers(0, sweepWorkers) ≤ GOMAXPROCS.
func MachineWorkers(requested, sweepWorkers int) int {
	if requested > 0 {
		return requested
	}
	if sweepWorkers < 1 {
		sweepWorkers = 1
	}
	w := runtime.GOMAXPROCS(0) / sweepWorkers
	if w < 1 {
		w = 1
	}
	return w
}

// Map evaluates fn(0), …, fn(n-1) and returns the results in index order.
//
// The worker count is resolved through Workers. One worker runs the calls
// inline, sequentially, in index order — the exact pre-pool execution
// path. More workers fan the indices out across a bounded pool of
// goroutines. fn must therefore be safe to call from multiple goroutines
// when workers != 1 (cells must not share mutable state).
//
// On failure Map stops issuing new indices, waits for in-flight calls,
// and returns the error of the lowest failing index among the cells that
// ran (with one worker this is exactly the first error a sequential run
// reports).
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next     atomic.Int64 // next index to claim
		stop     atomic.Bool  // set on first error: stop issuing work
		mu       sync.Mutex
		firstErr error
		errIdx   = n // lowest failing index seen so far
		wg       sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || stop.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Each is Map for functions with no result value.
func Each(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
