package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestMapOrderAndValues(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Map(workers, 37, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 37 {
			t.Fatalf("workers=%d: len = %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("Map(_, 0) = %v, %v", out, err)
	}
}

func TestMapErrorPropagation(t *testing.T) {
	sentinel := errors.New("cell failed")
	for _, workers := range []int{1, 8} {
		_, err := Map(workers, 20, func(i int) (int, error) {
			if i == 13 {
				return 0, fmt.Errorf("index %d: %w", i, sentinel)
			}
			return i, nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
	}
}

func TestMapLowestErrorWins(t *testing.T) {
	// Every cell fails; the reported error must be the lowest index that
	// ran, and with one worker exactly index 0.
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 16, func(i int) (int, error) {
			return 0, fmt.Errorf("cell %03d", i)
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if workers == 1 && err.Error() != "cell 000" {
			t.Fatalf("sequential error = %q, want cell 000", err)
		}
	}
}

func TestMapEarlyCancellation(t *testing.T) {
	// Index 0 fails immediately; the other cells are slow. The pool must
	// stop issuing work long before all 1000 cells execute.
	var ran atomic.Int64
	_, err := Map(4, 1000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		time.Sleep(2 * time.Millisecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n > 500 {
		t.Fatalf("%d cells ran after early failure, want far fewer", n)
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(8, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if err := Each(8, 10, func(i int) error { return errors.New("x") }); err == nil {
		t.Fatal("expected error")
	}
}
