// Package vrf models a vector register file: the programmer-visible mapping
// of one or more physical memory arrays (§III). A VRF holds 64 architectural
// vector registers of 64 bits × n lanes, a small set of scratch registers and
// planes reserved for recipe temporaries, the conditional register written by
// comparison instructions, and the in-VRF mask register that power-gates
// individual lanes (§VI-B).
package vrf

import (
	"fmt"

	"mpu/internal/bitvec"
	"mpu/internal/isa"
	"mpu/internal/micro"
)

// VRF is the functional state of one vector register file. Registers are
// allocated lazily: a register that is never touched costs no memory, which
// keeps chip-scale machines (hundreds of MPUs × hundreds of VRFs) tractable.
type VRF struct {
	lanes   int
	regs    [isa.NumRegs][]bitvec.Plane
	scratch [micro.NumScratchRegs][]bitvec.Plane
	temps   [micro.NumTempPlanes]bitvec.Plane
	cond    bitvec.Plane
	mask    bitvec.Plane
	zero    bitvec.Plane
	one     bitvec.Plane

	// words is the flat word directory backing every plane whenever each
	// plane is a whole number of machine words (lanes % 64 == 0, every
	// shipped backend): micro.Slot s occupies words[s*wpl : (s+1)*wpl], so
	// the resolved executor (resolved.go) and the trace JIT (kernel.go)
	// turn a slot into its storage with one multiply. Plane views are lazy
	// aliases over this directory. nil for ragged lane counts; those VRFs
	// take the per-register slab path below.
	words []uint64
	wpl   int // words per plane: lanes / 64 when words != nil

	// MicroOps counts executed micro-ops, for cross-checking against the
	// control path's issue accounting.
	MicroOps uint64
}

// New returns a VRF with the given lane count. All lanes start enabled.
func New(lanes int) *VRF {
	if lanes <= 0 {
		panic(fmt.Sprintf("vrf: lane count %d must be positive", lanes))
	}
	v := &VRF{lanes: lanes}
	if lanes%isa.WordBits == 0 {
		// One flat directory backs every slot; plane views alias into it.
		v.wpl = lanes / isa.WordBits
		v.words = make([]uint64, micro.NumSlots*v.wpl)
		slab := bitvec.PlanesOver(lanes, micro.NumTempPlanes+4, v.words[micro.SlotTempBase*v.wpl:])
		copy(v.temps[:], slab[:micro.NumTempPlanes])
		v.cond = slab[int(micro.SlotCond)-micro.SlotTempBase]
		v.zero = slab[int(micro.SlotZero)-micro.SlotTempBase]
		v.one = slab[int(micro.SlotOne)-micro.SlotTempBase]
		v.mask = slab[int(micro.SlotMask)-micro.SlotTempBase]
	} else {
		// One slab covers the fixed planes: temps, cond, zero, one, mask.
		slab, _ := bitvec.NewSlabWords(lanes, micro.NumTempPlanes+4)
		copy(v.temps[:], slab[:micro.NumTempPlanes])
		v.cond = slab[micro.NumTempPlanes]
		v.zero = slab[micro.NumTempPlanes+1]
		v.one = slab[micro.NumTempPlanes+2]
		v.mask = slab[micro.NumTempPlanes+3]
	}
	v.one.Fill(true)
	v.mask.Fill(true)
	return v
}

// Lanes reports the vector width of this VRF.
func (v *VRF) Lanes() int { return v.lanes }

// newRegPlanes allocates (or, with the flat directory, aliases) the 64
// planes of one architectural or scratch register. base is the register's
// first slot.
func (v *VRF) newRegPlanes(base int) []bitvec.Plane {
	if v.words != nil {
		return bitvec.PlanesOver(v.lanes, isa.WordBits, v.words[base*v.wpl:])
	}
	planes, _ := bitvec.NewSlabWords(v.lanes, isa.WordBits)
	return planes
}

func (v *VRF) regPlanes(r int) []bitvec.Plane {
	if r < 0 || r >= isa.NumRegs {
		panic(fmt.Sprintf("vrf: register %d out of range", r))
	}
	if v.regs[r] == nil {
		v.regs[r] = v.newRegPlanes(r * isa.WordBits)
	}
	return v.regs[r]
}

func (v *VRF) scratchPlanes(s int) []bitvec.Plane {
	if s < 0 || s >= micro.NumScratchRegs {
		panic(fmt.Sprintf("vrf: scratch register %d out of range", s))
	}
	if v.scratch[s] == nil {
		v.scratch[s] = v.newRegPlanes(micro.SlotScratchBase + s*isa.WordBits)
	}
	return v.scratch[s]
}

// plane resolves a micro-op plane reference to backing storage.
func (v *VRF) plane(r micro.Ref) bitvec.Plane {
	switch r.Space {
	case micro.SpaceReg:
		if r.Bit >= isa.WordBits {
			panic(fmt.Sprintf("vrf: bit %d out of range", r.Bit))
		}
		return v.regPlanes(int(r.Idx))[r.Bit]
	case micro.SpaceScratch:
		if r.Bit >= isa.WordBits {
			panic(fmt.Sprintf("vrf: bit %d out of range", r.Bit))
		}
		return v.scratchPlanes(int(r.Idx))[r.Bit]
	case micro.SpaceTemp:
		if int(r.Idx) >= micro.NumTempPlanes {
			panic(fmt.Sprintf("vrf: temp plane %d out of range", r.Idx))
		}
		return v.temps[r.Idx]
	case micro.SpaceCond:
		return v.cond
	case micro.SpaceZero:
		return v.zero
	case micro.SpaceOne:
		return v.one
	}
	panic(fmt.Sprintf("vrf: bad plane space %d", r.Space))
}

// Exec applies one micro-op under the VRF's lane mask. CONDWR and MASKRD
// bypass masking, per §VI-B (GETMASK disables lane control so all mask bits
// are copied; comparisons clear the conditional bit of disabled lanes so
// stale condition state can never re-enable a lane).
func (v *VRF) Exec(op micro.Op) {
	v.MicroOps++
	switch op.Kind {
	case micro.NOR:
		bitvec.Nor(v.plane(op.Dst), v.plane(op.A), v.plane(op.B), v.mask)
	case micro.AND:
		bitvec.And(v.plane(op.Dst), v.plane(op.A), v.plane(op.B), v.mask)
	case micro.OR:
		bitvec.Or(v.plane(op.Dst), v.plane(op.A), v.plane(op.B), v.mask)
	case micro.XOR:
		bitvec.Xor(v.plane(op.Dst), v.plane(op.A), v.plane(op.B), v.mask)
	case micro.NOT:
		bitvec.Not(v.plane(op.Dst), v.plane(op.A), v.mask)
	case micro.COPY:
		bitvec.Copy(v.plane(op.Dst), v.plane(op.A), v.mask)
	case micro.MAJ:
		bitvec.Maj(v.plane(op.Dst), v.plane(op.A), v.plane(op.B), v.plane(op.C), v.mask)
	case micro.MUX:
		bitvec.Mux(v.plane(op.Dst), v.plane(op.A), v.plane(op.B), v.plane(op.C), v.mask)
	case micro.FADD:
		bitvec.FullAdd(v.plane(op.Dst), v.plane(op.Dst2), v.plane(op.A), v.plane(op.B), v.plane(op.C), v.mask)
	case micro.SET0:
		bitvec.SetAll(v.plane(op.Dst), false, v.mask)
	case micro.SET1:
		bitvec.SetAll(v.plane(op.Dst), true, v.mask)
	case micro.CONDWR:
		// cond := src AND mask, written unmasked: disabled lanes read 0.
		bitvec.And(v.cond, v.plane(op.A), v.mask, v.one)
	case micro.MASKRD:
		bitvec.Copy(v.plane(op.Dst), v.mask, v.one)
	default:
		panic(fmt.Sprintf("vrf: unknown micro-op kind %d", op.Kind))
	}
	if op.Dst.Space == micro.SpaceZero || op.Dst.Space == micro.SpaceOne ||
		op.Dst2.Space == micro.SpaceOne {
		panic("vrf: micro-op wrote a constant plane")
	}
}

// ExecAll applies a micro-op sequence in order.
func (v *VRF) ExecAll(ops []micro.Op) {
	for _, op := range ops {
		v.Exec(op)
	}
}

// SetMaskFromCond loads the mask register from the conditional register
// (SETMASK cond).
func (v *VRF) SetMaskFromCond() { v.mask.CopyFrom(v.cond) }

// SetMaskFromReg loads the mask register from bit 0 of register r
// (SETMASK r<N>).
func (v *VRF) SetMaskFromReg(r int) { v.mask.CopyFrom(v.regPlanes(r)[0]) }

// Unmask re-enables every lane (UNMASK).
func (v *VRF) Unmask() { v.mask.Fill(true) }

// MaskAny reports whether any lane remains enabled; the EFI reads this to
// evaluate JUMP_COND.
func (v *VRF) MaskAny() bool { return v.mask.AnySet() }

// MaskPop returns the number of enabled lanes.
func (v *VRF) MaskPop() int { return v.mask.PopCount() }

// GetMaskInto copies the lane mask into bit 0 of register r and clears the
// remaining bits, bypassing lane gating (GETMASK).
func (v *VRF) GetMaskInto(r int) {
	ps := v.regPlanes(r)
	bitvec.Copy(ps[0], v.mask, v.one)
	for b := 1; b < isa.WordBits; b++ {
		bitvec.SetAll(ps[b], false, v.one)
	}
}

// ReadWord returns the 64-bit value of register r in lane l.
func (v *VRF) ReadWord(r, l int) uint64 {
	ps := v.regPlanes(r)
	var x uint64
	for b := 0; b < isa.WordBits; b++ {
		if ps[b].Get(l) {
			x |= 1 << uint(b)
		}
	}
	return x
}

// WriteWord stores a 64-bit value into register r, lane l, bypassing the
// lane mask (host-side data loading).
func (v *VRF) WriteWord(r, l int, x uint64) {
	ps := v.regPlanes(r)
	for b := 0; b < isa.WordBits; b++ {
		ps[b].Set(l, x>>uint(b)&1 == 1)
	}
}

// ReadReg returns all lane values of register r.
func (v *VRF) ReadReg(r int) []uint64 {
	out := make([]uint64, v.lanes)
	ps := v.regPlanes(r)
	for b := 0; b < isa.WordBits; b++ {
		ps[b].ScatterInto(out, uint(b))
	}
	return out
}

// WriteReg stores vals into register r starting at lane 0; extra lanes are
// zeroed. It panics if vals exceeds the lane count.
func (v *VRF) WriteReg(r int, vals []uint64) {
	if len(vals) > v.lanes {
		panic(fmt.Sprintf("vrf: %d values exceed %d lanes", len(vals), v.lanes))
	}
	ps := v.regPlanes(r)
	for b := 0; b < isa.WordBits; b++ {
		ps[b].GatherFrom(vals, uint(b))
	}
}

// CondBits returns the conditional register as a lane-indexed bool slice.
func (v *VRF) CondBits() []bool {
	out := make([]bool, v.lanes)
	for l := 0; l < v.lanes; l++ {
		out[l] = v.cond.Get(l)
	}
	return out
}

// MaskBits returns the mask register as a lane-indexed bool slice.
func (v *VRF) MaskBits() []bool {
	out := make([]bool, v.lanes)
	for l := 0; l < v.lanes; l++ {
		out[l] = v.mask.Get(l)
	}
	return out
}

// CopyRegister copies register src of from into register dst of v, bypassing
// lane masks. Lane counts must match; this is the DTC's MEMCPY datapath.
func CopyRegister(from *VRF, src int, to *VRF, dst int) {
	if from.lanes != to.lanes {
		panic(fmt.Sprintf("vrf: MEMCPY lane mismatch %d vs %d", from.lanes, to.lanes))
	}
	fp, tp := from.regPlanes(src), to.regPlanes(dst)
	for b := 0; b < isa.WordBits; b++ {
		tp[b].CopyFrom(fp[b])
	}
}

// TouchedRegs returns the architectural registers that have been allocated,
// in ascending order — useful for debugging and state dumps.
func (v *VRF) TouchedRegs() []int {
	var out []int
	for r := range v.regs {
		if v.regs[r] != nil {
			out = append(out, r)
		}
	}
	return out
}
