package vrf

import (
	"mpu/internal/bitvec"
	"mpu/internal/isa"
	"mpu/internal/micro"
)

// The trace JIT's execution substrate: a resolved micro-op stream is
// lowered, once, into a chain of fused closures over the flat word
// directory. micro.Runs segments the stream into maximal same-kind runs;
// each run compiles to one closure whose loop body is that kind's merge
// expression with the operand slots pre-packed into flat arrays, so replay
// executes the whole stream with zero per-op kind dispatch, no plane
// resolution, and no allocation. Every closure carries a masked and an
// unmasked loop and picks between them by inspecting the mask word(s) at
// entry — legal because no micro-op writes the mask plane, so the mask is
// constant across the stream.

// CompiledExec is one resolved stream lowered to a fused closure chain for
// a fixed lane geometry. Compile with CompileResolved; execute with
// (*VRF).RunCompiled.
type CompiledExec struct {
	lanes int
	k64   []kern64 // lanes == 64: one word per plane
	kw    []kernW  // lanes > 64: wpl words per plane
	n     uint64   // micro-ops per execution (MicroOps accounting)
}

// kern64 executes one fused run over a single-word directory under mask m.
type kern64 func(ws []uint64, m uint64)

// kernW executes one fused run over a multi-word directory under mask span
// m. all is the caller's hoisted AllOnes(m) verdict: no micro-op writes the
// mask plane, so the mask — and the masked/unmasked choice — is constant
// across the whole stream, and RunCompiled tests it once instead of every
// fused run re-scanning the mask words.
type kernW func(ws []uint64, m []uint64, all bool)

// Ops reports the number of micro-ops one execution simulates.
func (c *CompiledExec) Ops() uint64 { return c.n }

// CompileResolved lowers a resolved stream for the given lane count. It
// returns nil when the geometry has no flat word directory (lanes not a
// multiple of 64) or the stream contains a kind the compiler does not
// know — the callers' signal to stay on the interpreter.
func CompileResolved(rs []micro.ResolvedOp, lanes int) *CompiledExec {
	if lanes <= 0 || lanes%isa.WordBits != 0 {
		return nil
	}
	c := &CompiledExec{lanes: lanes, n: uint64(len(rs))}
	wpl := lanes / isa.WordBits
	for _, run := range micro.Runs(rs) {
		ops := rs[run.Start : run.Start+run.Len]
		if wpl == 1 {
			k := compileRun64(run.Kind, ops)
			if k == nil {
				return nil
			}
			c.k64 = append(c.k64, k)
		} else {
			k := compileRunWide(run.Kind, ops, wpl)
			if k == nil {
				return nil
			}
			c.kw = append(c.kw, k)
		}
	}
	return c
}

// RunCompiled executes a compiled stream over the flat word directory with
// the same semantics (and MicroOps accounting) as ExecAllResolved on the
// stream it was compiled from.
func (v *VRF) RunCompiled(c *CompiledExec) {
	if v.lanes != c.lanes {
		panic("vrf: compiled stream executed on a VRF of different lane count")
	}
	ws := v.words
	if v.wpl == 1 {
		m := ws[micro.SlotMask]
		for _, k := range c.k64 {
			k(ws, m)
		}
	} else {
		m := v.span(micro.SlotMask)
		all := bitvec.AllOnes(m)
		for _, k := range c.kw {
			k(ws, m, all)
		}
	}
	v.MicroOps += c.n
}

// packSlots extracts one operand column of a run into a flat array.
func packSlots(ops []micro.ResolvedOp, get func(*micro.ResolvedOp) micro.Slot) []micro.Slot {
	out := make([]micro.Slot, len(ops))
	for i := range ops {
		out[i] = get(&ops[i])
	}
	return out
}

// compileRun64 builds the single-word closure for one same-kind run. Each
// loop below is the corresponding execResolved64 case unrolled across the
// run, with an unmasked variant selected when every lane is enabled.
func compileRun64(kind micro.Kind, ops []micro.ResolvedOp) kern64 {
	d := packSlots(ops, func(r *micro.ResolvedOp) micro.Slot { return r.Dst })
	a := packSlots(ops, func(r *micro.ResolvedOp) micro.Slot { return r.A })
	switch kind {
	case micro.NOR:
		b := packSlots(ops, func(r *micro.ResolvedOp) micro.Slot { return r.B })
		return func(ws []uint64, m uint64) {
			if m == ^uint64(0) {
				for i, di := range d {
					ws[di] = ^(ws[a[i]] | ws[b[i]])
				}
				return
			}
			for i, di := range d {
				x := ^(ws[a[i]] | ws[b[i]])
				ws[di] = (ws[di] &^ m) | (x & m)
			}
		}
	case micro.AND:
		b := packSlots(ops, func(r *micro.ResolvedOp) micro.Slot { return r.B })
		return func(ws []uint64, m uint64) {
			if m == ^uint64(0) {
				for i, di := range d {
					ws[di] = ws[a[i]] & ws[b[i]]
				}
				return
			}
			for i, di := range d {
				x := ws[a[i]] & ws[b[i]]
				ws[di] = (ws[di] &^ m) | (x & m)
			}
		}
	case micro.OR:
		b := packSlots(ops, func(r *micro.ResolvedOp) micro.Slot { return r.B })
		return func(ws []uint64, m uint64) {
			if m == ^uint64(0) {
				for i, di := range d {
					ws[di] = ws[a[i]] | ws[b[i]]
				}
				return
			}
			for i, di := range d {
				x := ws[a[i]] | ws[b[i]]
				ws[di] = (ws[di] &^ m) | (x & m)
			}
		}
	case micro.XOR:
		b := packSlots(ops, func(r *micro.ResolvedOp) micro.Slot { return r.B })
		return func(ws []uint64, m uint64) {
			if m == ^uint64(0) {
				for i, di := range d {
					ws[di] = ws[a[i]] ^ ws[b[i]]
				}
				return
			}
			for i, di := range d {
				x := ws[a[i]] ^ ws[b[i]]
				ws[di] = (ws[di] &^ m) | (x & m)
			}
		}
	case micro.NOT:
		return func(ws []uint64, m uint64) {
			if m == ^uint64(0) {
				for i, di := range d {
					ws[di] = ^ws[a[i]]
				}
				return
			}
			for i, di := range d {
				x := ^ws[a[i]]
				ws[di] = (ws[di] &^ m) | (x & m)
			}
		}
	case micro.COPY:
		return func(ws []uint64, m uint64) {
			if m == ^uint64(0) {
				for i, di := range d {
					ws[di] = ws[a[i]]
				}
				return
			}
			for i, di := range d {
				x := ws[a[i]]
				ws[di] = (ws[di] &^ m) | (x & m)
			}
		}
	case micro.MAJ:
		b := packSlots(ops, func(r *micro.ResolvedOp) micro.Slot { return r.B })
		cc := packSlots(ops, func(r *micro.ResolvedOp) micro.Slot { return r.C })
		return func(ws []uint64, m uint64) {
			if m == ^uint64(0) {
				for i, di := range d {
					aw, bw, cw := ws[a[i]], ws[b[i]], ws[cc[i]]
					ws[di] = (aw & bw) | (bw & cw) | (aw & cw)
				}
				return
			}
			for i, di := range d {
				aw, bw, cw := ws[a[i]], ws[b[i]], ws[cc[i]]
				x := (aw & bw) | (bw & cw) | (aw & cw)
				ws[di] = (ws[di] &^ m) | (x & m)
			}
		}
	case micro.MUX:
		b := packSlots(ops, func(r *micro.ResolvedOp) micro.Slot { return r.B })
		cc := packSlots(ops, func(r *micro.ResolvedOp) micro.Slot { return r.C })
		return func(ws []uint64, m uint64) {
			if m == ^uint64(0) {
				for i, di := range d {
					ws[di] = (ws[a[i]] & ws[cc[i]]) | (ws[b[i]] &^ ws[cc[i]])
				}
				return
			}
			for i, di := range d {
				x := (ws[a[i]] & ws[cc[i]]) | (ws[b[i]] &^ ws[cc[i]])
				ws[di] = (ws[di] &^ m) | (x & m)
			}
		}
	case micro.FADD:
		d2 := packSlots(ops, func(r *micro.ResolvedOp) micro.Slot { return r.Dst2 })
		b := packSlots(ops, func(r *micro.ResolvedOp) micro.Slot { return r.B })
		cc := packSlots(ops, func(r *micro.ResolvedOp) micro.Slot { return r.C })
		return func(ws []uint64, m uint64) {
			if m == ^uint64(0) {
				for i, di := range d {
					aw, bw, cw := ws[a[i]], ws[b[i]], ws[cc[i]]
					ws[di] = aw ^ bw ^ cw
					ws[d2[i]] = (aw & bw) | (bw & cw) | (aw & cw)
				}
				return
			}
			for i, di := range d {
				aw, bw, cw := ws[a[i]], ws[b[i]], ws[cc[i]]
				s := aw ^ bw ^ cw
				co := (aw & bw) | (bw & cw) | (aw & cw)
				ws[di] = (ws[di] &^ m) | (s & m)
				d2i := d2[i]
				ws[d2i] = (ws[d2i] &^ m) | (co & m)
			}
		}
	case micro.SET0:
		return func(ws []uint64, m uint64) {
			if m == ^uint64(0) {
				for _, di := range d {
					ws[di] = 0
				}
				return
			}
			for _, di := range d {
				ws[di] &^= m
			}
		}
	case micro.SET1:
		return func(ws []uint64, m uint64) {
			if m == ^uint64(0) {
				for _, di := range d {
					ws[di] = ^uint64(0)
				}
				return
			}
			for _, di := range d {
				ws[di] |= m
			}
		}
	case micro.CONDWR:
		return func(ws []uint64, m uint64) {
			for i := range a {
				ws[micro.SlotCond] = ws[a[i]] & m
			}
		}
	case micro.MASKRD:
		return func(ws []uint64, m uint64) {
			for _, di := range d {
				ws[di] = m
			}
		}
	}
	return nil
}

// compileRunWide builds the multi-word closure for one same-kind run:
// operand slots become word-directory base offsets, and the loop body
// reslices each operand's wpl-word span and applies the kind's merge
// expression with `for w := range dst` — the same reslicing idiom as the
// bitvec kernels, which is what lets the compiler eliminate the inner-loop
// bounds checks (flat `ws[base+w]` indexing measures ~40% slower on the
// same stream). No per-run mask scan: the caller hoists the AllOnes verdict
// for the whole stream.
func compileRunWide(kind micro.Kind, ops []micro.ResolvedOp, wpl int) kernW {
	pack := func(get func(*micro.ResolvedOp) micro.Slot) []int {
		out := make([]int, len(ops))
		for i := range ops {
			out[i] = int(get(&ops[i])) * wpl
		}
		return out
	}
	d := pack(func(r *micro.ResolvedOp) micro.Slot { return r.Dst })
	a := pack(func(r *micro.ResolvedOp) micro.Slot { return r.A })
	switch kind {
	case micro.NOR:
		b := pack(func(r *micro.ResolvedOp) micro.Slot { return r.B })
		return func(ws, m []uint64, all bool) {
			if all {
				for i, di := range d {
					dst := ws[di : di+wpl]
					aa := ws[a[i] : a[i]+wpl]
					bb := ws[b[i] : b[i]+wpl]
					aa = aa[:len(dst)]
					bb = bb[:len(dst)]
					for w := range dst {
						dst[w] = ^(aa[w] | bb[w])
					}
				}
				return
			}
			for i, di := range d {
				dst := ws[di : di+wpl]
				aa := ws[a[i] : a[i]+wpl]
				bb := ws[b[i] : b[i]+wpl]
				mm := m[:len(dst)]
				aa = aa[:len(dst)]
				bb = bb[:len(dst)]
				for w := range dst {
					x := ^(aa[w] | bb[w])
					dst[w] = (dst[w] &^ mm[w]) | (x & mm[w])
				}
			}
		}
	case micro.AND:
		b := pack(func(r *micro.ResolvedOp) micro.Slot { return r.B })
		return func(ws, m []uint64, all bool) {
			if all {
				for i, di := range d {
					dst := ws[di : di+wpl]
					aa := ws[a[i] : a[i]+wpl]
					bb := ws[b[i] : b[i]+wpl]
					aa = aa[:len(dst)]
					bb = bb[:len(dst)]
					for w := range dst {
						dst[w] = aa[w] & bb[w]
					}
				}
				return
			}
			for i, di := range d {
				dst := ws[di : di+wpl]
				aa := ws[a[i] : a[i]+wpl]
				bb := ws[b[i] : b[i]+wpl]
				mm := m[:len(dst)]
				aa = aa[:len(dst)]
				bb = bb[:len(dst)]
				for w := range dst {
					x := aa[w] & bb[w]
					dst[w] = (dst[w] &^ mm[w]) | (x & mm[w])
				}
			}
		}
	case micro.OR:
		b := pack(func(r *micro.ResolvedOp) micro.Slot { return r.B })
		return func(ws, m []uint64, all bool) {
			if all {
				for i, di := range d {
					dst := ws[di : di+wpl]
					aa := ws[a[i] : a[i]+wpl]
					bb := ws[b[i] : b[i]+wpl]
					aa = aa[:len(dst)]
					bb = bb[:len(dst)]
					for w := range dst {
						dst[w] = aa[w] | bb[w]
					}
				}
				return
			}
			for i, di := range d {
				dst := ws[di : di+wpl]
				aa := ws[a[i] : a[i]+wpl]
				bb := ws[b[i] : b[i]+wpl]
				mm := m[:len(dst)]
				aa = aa[:len(dst)]
				bb = bb[:len(dst)]
				for w := range dst {
					x := aa[w] | bb[w]
					dst[w] = (dst[w] &^ mm[w]) | (x & mm[w])
				}
			}
		}
	case micro.XOR:
		b := pack(func(r *micro.ResolvedOp) micro.Slot { return r.B })
		return func(ws, m []uint64, all bool) {
			if all {
				for i, di := range d {
					dst := ws[di : di+wpl]
					aa := ws[a[i] : a[i]+wpl]
					bb := ws[b[i] : b[i]+wpl]
					aa = aa[:len(dst)]
					bb = bb[:len(dst)]
					for w := range dst {
						dst[w] = aa[w] ^ bb[w]
					}
				}
				return
			}
			for i, di := range d {
				dst := ws[di : di+wpl]
				aa := ws[a[i] : a[i]+wpl]
				bb := ws[b[i] : b[i]+wpl]
				mm := m[:len(dst)]
				aa = aa[:len(dst)]
				bb = bb[:len(dst)]
				for w := range dst {
					x := aa[w] ^ bb[w]
					dst[w] = (dst[w] &^ mm[w]) | (x & mm[w])
				}
			}
		}
	case micro.NOT:
		return func(ws, m []uint64, all bool) {
			if all {
				for i, di := range d {
					dst := ws[di : di+wpl]
					aa := ws[a[i] : a[i]+wpl]
					aa = aa[:len(dst)]
					for w := range dst {
						dst[w] = ^aa[w]
					}
				}
				return
			}
			for i, di := range d {
				dst := ws[di : di+wpl]
				aa := ws[a[i] : a[i]+wpl]
				mm := m[:len(dst)]
				aa = aa[:len(dst)]
				for w := range dst {
					x := ^aa[w]
					dst[w] = (dst[w] &^ mm[w]) | (x & mm[w])
				}
			}
		}
	case micro.COPY:
		return func(ws, m []uint64, all bool) {
			if all {
				for i, di := range d {
					copy(ws[di:di+wpl], ws[a[i]:a[i]+wpl])
				}
				return
			}
			for i, di := range d {
				dst := ws[di : di+wpl]
				aa := ws[a[i] : a[i]+wpl]
				mm := m[:len(dst)]
				aa = aa[:len(dst)]
				for w := range dst {
					dst[w] = (dst[w] &^ mm[w]) | (aa[w] & mm[w])
				}
			}
		}
	case micro.MAJ:
		b := pack(func(r *micro.ResolvedOp) micro.Slot { return r.B })
		cc := pack(func(r *micro.ResolvedOp) micro.Slot { return r.C })
		return func(ws, m []uint64, all bool) {
			if all {
				for i, di := range d {
					dst := ws[di : di+wpl]
					aa := ws[a[i] : a[i]+wpl]
					bb := ws[b[i] : b[i]+wpl]
					cw := ws[cc[i] : cc[i]+wpl]
					aa = aa[:len(dst)]
					bb = bb[:len(dst)]
					cw = cw[:len(dst)]
					for w := range dst {
						dst[w] = (aa[w] & bb[w]) | (bb[w] & cw[w]) | (aa[w] & cw[w])
					}
				}
				return
			}
			for i, di := range d {
				dst := ws[di : di+wpl]
				aa := ws[a[i] : a[i]+wpl]
				bb := ws[b[i] : b[i]+wpl]
				cw := ws[cc[i] : cc[i]+wpl]
				mm := m[:len(dst)]
				aa = aa[:len(dst)]
				bb = bb[:len(dst)]
				cw = cw[:len(dst)]
				for w := range dst {
					x := (aa[w] & bb[w]) | (bb[w] & cw[w]) | (aa[w] & cw[w])
					dst[w] = (dst[w] &^ mm[w]) | (x & mm[w])
				}
			}
		}
	case micro.MUX:
		b := pack(func(r *micro.ResolvedOp) micro.Slot { return r.B })
		cc := pack(func(r *micro.ResolvedOp) micro.Slot { return r.C })
		return func(ws, m []uint64, all bool) {
			if all {
				for i, di := range d {
					dst := ws[di : di+wpl]
					aa := ws[a[i] : a[i]+wpl]
					bb := ws[b[i] : b[i]+wpl]
					sel := ws[cc[i] : cc[i]+wpl]
					aa = aa[:len(dst)]
					bb = bb[:len(dst)]
					sel = sel[:len(dst)]
					for w := range dst {
						dst[w] = (aa[w] & sel[w]) | (bb[w] &^ sel[w])
					}
				}
				return
			}
			for i, di := range d {
				dst := ws[di : di+wpl]
				aa := ws[a[i] : a[i]+wpl]
				bb := ws[b[i] : b[i]+wpl]
				sel := ws[cc[i] : cc[i]+wpl]
				mm := m[:len(dst)]
				aa = aa[:len(dst)]
				bb = bb[:len(dst)]
				sel = sel[:len(dst)]
				for w := range dst {
					x := (aa[w] & sel[w]) | (bb[w] &^ sel[w])
					dst[w] = (dst[w] &^ mm[w]) | (x & mm[w])
				}
			}
		}
	case micro.FADD:
		d2 := pack(func(r *micro.ResolvedOp) micro.Slot { return r.Dst2 })
		b := pack(func(r *micro.ResolvedOp) micro.Slot { return r.B })
		cc := pack(func(r *micro.ResolvedOp) micro.Slot { return r.C })
		return func(ws, m []uint64, all bool) {
			if all {
				for i, di := range d {
					dst := ws[di : di+wpl]
					dst2 := ws[d2[i] : d2[i]+wpl]
					aa := ws[a[i] : a[i]+wpl]
					bb := ws[b[i] : b[i]+wpl]
					cw := ws[cc[i] : cc[i]+wpl]
					dst2 = dst2[:len(dst)]
					aa = aa[:len(dst)]
					bb = bb[:len(dst)]
					cw = cw[:len(dst)]
					for w := range dst {
						// Inputs read before either output word is written, so
						// outputs may alias inputs (but not each other).
						aw, bw, ci := aa[w], bb[w], cw[w]
						dst[w] = aw ^ bw ^ ci
						dst2[w] = (aw & bw) | (bw & ci) | (aw & ci)
					}
				}
				return
			}
			for i, di := range d {
				dst := ws[di : di+wpl]
				dst2 := ws[d2[i] : d2[i]+wpl]
				aa := ws[a[i] : a[i]+wpl]
				bb := ws[b[i] : b[i]+wpl]
				cw := ws[cc[i] : cc[i]+wpl]
				mm := m[:len(dst)]
				dst2 = dst2[:len(dst)]
				aa = aa[:len(dst)]
				bb = bb[:len(dst)]
				cw = cw[:len(dst)]
				for w := range dst {
					aw, bw, ci := aa[w], bb[w], cw[w]
					s := aw ^ bw ^ ci
					co := (aw & bw) | (bw & ci) | (aw & ci)
					dst[w] = (dst[w] &^ mm[w]) | (s & mm[w])
					dst2[w] = (dst2[w] &^ mm[w]) | (co & mm[w])
				}
			}
		}
	case micro.SET0:
		return func(ws, m []uint64, all bool) {
			if all {
				for _, di := range d {
					dst := ws[di : di+wpl]
					for w := range dst {
						dst[w] = 0
					}
				}
				return
			}
			for _, di := range d {
				dst := ws[di : di+wpl]
				mm := m[:len(dst)]
				for w := range dst {
					dst[w] &^= mm[w]
				}
			}
		}
	case micro.SET1:
		return func(ws, m []uint64, all bool) {
			if all {
				for _, di := range d {
					dst := ws[di : di+wpl]
					for w := range dst {
						dst[w] = ^uint64(0)
					}
				}
				return
			}
			for _, di := range d {
				dst := ws[di : di+wpl]
				mm := m[:len(dst)]
				for w := range dst {
					dst[w] |= mm[w]
				}
			}
		}
	case micro.CONDWR:
		cond := int(micro.SlotCond) * wpl
		return func(ws, m []uint64, all bool) {
			// Unmasked write by definition: disabled lanes read conditional
			// bit 0 regardless of dst's prior contents.
			for i := range a {
				dst := ws[cond : cond+wpl]
				aa := ws[a[i] : a[i]+wpl]
				mm := m[:len(dst)]
				aa = aa[:len(dst)]
				for w := range dst {
					dst[w] = aa[w] & mm[w]
				}
			}
		}
	case micro.MASKRD:
		return func(ws, m []uint64, all bool) {
			for _, di := range d {
				copy(ws[di:di+wpl], m)
			}
		}
	}
	return nil
}
