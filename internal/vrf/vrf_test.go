package vrf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpu/internal/micro"
)

func TestReadWriteWord(t *testing.T) {
	v := New(10)
	v.WriteWord(3, 7, 0xdeadbeefcafef00d)
	if got := v.ReadWord(3, 7); got != 0xdeadbeefcafef00d {
		t.Fatalf("ReadWord = %#x", got)
	}
	if got := v.ReadWord(3, 6); got != 0 {
		t.Fatalf("neighbour lane = %#x, want 0", got)
	}
}

func TestWriteRegZeroPads(t *testing.T) {
	v := New(8)
	v.WriteWord(0, 7, 99)
	v.WriteReg(0, []uint64{1, 2, 3})
	got := v.ReadReg(0)
	want := []uint64{1, 2, 3, 0, 0, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lane %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestWriteRegOverflowPanics(t *testing.T) {
	v := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized WriteReg")
		}
	}()
	v.WriteReg(0, []uint64{1, 2, 3})
}

func TestRoundTripProperty(t *testing.T) {
	v := New(130)
	f := func(lane uint8, x uint64) bool {
		l := int(lane) % 130
		v.WriteWord(5, l, x)
		return v.ReadWord(5, l) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskLifecycle(t *testing.T) {
	v := New(4)
	if !v.MaskAny() || v.MaskPop() != 4 {
		t.Fatal("lanes not initially enabled")
	}
	v.WriteReg(0, []uint64{1, 0, 1, 0})
	v.SetMaskFromReg(0)
	if v.MaskPop() != 2 {
		t.Fatalf("MaskPop = %d, want 2", v.MaskPop())
	}
	bits := v.MaskBits()
	if !bits[0] || bits[1] || !bits[2] || bits[3] {
		t.Fatalf("MaskBits = %v", bits)
	}
	v.GetMaskInto(7)
	got := v.ReadReg(7)
	want := []uint64{1, 0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GETMASK lane %d = %d, want %d", i, got[i], want[i])
		}
	}
	v.Unmask()
	if v.MaskPop() != 4 {
		t.Fatal("Unmask did not enable all lanes")
	}
}

func TestGetMaskBypassesGating(t *testing.T) {
	v := New(4)
	v.WriteReg(0, []uint64{0, 0, 0, 0})
	v.SetMaskFromReg(0) // all lanes disabled
	v.WriteWord(7, 1, ^uint64(0))
	v.GetMaskInto(7)
	// Every lane, including disabled ones, must now read 0 in r7.
	for l, got := range v.ReadReg(7) {
		if got != 0 {
			t.Fatalf("lane %d = %#x after GETMASK under empty mask", l, got)
		}
	}
}

func TestSetMaskFromCond(t *testing.T) {
	v := New(3)
	// Write cond through the CONDWR micro-op from a temp plane.
	v.WriteReg(0, []uint64{1, 0, 1})
	v.Exec(micro.Op{Kind: micro.COPY, Dst: micro.Temp(0), A: micro.Reg(0, 0)})
	v.Exec(micro.Op{Kind: micro.CONDWR, A: micro.Temp(0)})
	v.SetMaskFromCond()
	bits := v.MaskBits()
	if !bits[0] || bits[1] || !bits[2] {
		t.Fatalf("mask after SETMASK cond = %v", bits)
	}
	if !v.MaskAny() {
		t.Fatal("MaskAny false with lanes set")
	}
}

func TestCondWriteRespectsMask(t *testing.T) {
	v := New(2)
	v.WriteReg(0, []uint64{0, 1})
	v.SetMaskFromReg(0) // only lane 1 enabled
	// CONDWR from the constant-one plane: lane 0 disabled → cond 0.
	v.Exec(micro.Op{Kind: micro.CONDWR, A: micro.One()})
	cond := v.CondBits()
	if cond[0] || !cond[1] {
		t.Fatalf("cond = %v, want [false true]", cond)
	}
}

func TestExecMicroOps(t *testing.T) {
	v := New(2)
	v.WriteReg(0, []uint64{0b01, 0b11})
	v.WriteReg(1, []uint64{0b10, 0b11})
	v.Exec(micro.Op{Kind: micro.XOR, Dst: micro.Reg(2, 0), A: micro.Reg(0, 0), B: micro.Reg(1, 0)})
	v.Exec(micro.Op{Kind: micro.AND, Dst: micro.Reg(2, 1), A: micro.Reg(0, 1), B: micro.Reg(1, 1)})
	got := v.ReadReg(2)
	if got[0] != 0b01 || got[1] != 0b10 {
		t.Fatalf("micro-op results = %b, %b", got[0], got[1])
	}
	if v.MicroOps != 2 {
		t.Fatalf("MicroOps = %d, want 2", v.MicroOps)
	}
}

func TestWriteToConstantPlanePanics(t *testing.T) {
	v := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("writing the constant-one plane did not panic")
		}
	}()
	v.Exec(micro.Op{Kind: micro.COPY, Dst: micro.One(), A: micro.Zero()})
}

func TestCopyRegister(t *testing.T) {
	a, b := New(5), New(5)
	vals := []uint64{10, 20, 30, 40, 50}
	a.WriteReg(2, vals)
	CopyRegister(a, 2, b, 9)
	for l, got := range b.ReadReg(9) {
		if got != vals[l] {
			t.Fatalf("lane %d = %d, want %d", l, got, vals[l])
		}
	}
}

func TestCopyRegisterLaneMismatchPanics(t *testing.T) {
	a, b := New(5), New(6)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on lane mismatch")
		}
	}()
	CopyRegister(a, 0, b, 0)
}

func TestTouchedRegs(t *testing.T) {
	v := New(4)
	if got := v.TouchedRegs(); len(got) != 0 {
		t.Fatalf("fresh VRF touched regs = %v", got)
	}
	v.WriteWord(5, 0, 1)
	v.WriteWord(2, 0, 1)
	got := v.TouchedRegs()
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("TouchedRegs = %v, want [2 5]", got)
	}
}

func TestBadConstructions(t *testing.T) {
	for _, f := range []func(){
		func() { New(0) },
		func() { New(-3) },
		func() { v := New(2); v.ReadWord(64, 0) },
		func() { v := New(2); v.Exec(micro.Op{Kind: micro.Kind(99)}) },
		func() { v := New(2); v.Exec(micro.Op{Kind: micro.COPY, Dst: micro.Temp(0), A: micro.Temp(16)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkExecXor(b *testing.B) {
	v := New(4096)
	rng := rand.New(rand.NewSource(1))
	for l := 0; l < 4096; l++ {
		v.WriteWord(0, l, rng.Uint64())
		v.WriteWord(1, l, rng.Uint64())
	}
	op := micro.Op{Kind: micro.XOR, Dst: micro.Reg(2, 0), A: micro.Reg(0, 0), B: micro.Reg(1, 0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Exec(op)
	}
}
