package vrf

import (
	"fmt"

	"mpu/internal/bitvec"
	"mpu/internal/isa"
	"mpu/internal/micro"
	"mpu/internal/snap"
)

// Snapshot encoding of one VRF. Two layouts mirror the two storage paths:
//
//   - flat (lanes % 64 == 0, every shipped backend): the whole word
//     directory is dumped wholesale — registers, scratch, temps, cond, and
//     the constant and mask planes all live in one slab, so one copy
//     captures everything including lazy-view allocation being irrelevant.
//   - ragged: per-register slabs are lazy, so the encoding carries
//     allocation bitmaps and only the allocated registers' planes, plus the
//     fixed planes (temps, cond, mask; the zero/one constants are invariant
//     and skipped).
//
// Both layouts re-encode byte-identically after a decode: the flat path is
// a verbatim word copy, and the ragged path rejects dirty tail bits and
// malformed bitmaps instead of normalizing them.

// EncodeState appends the VRF's architectural state to w.
func (v *VRF) EncodeState(w *snap.Writer) {
	w.U64(v.MicroOps)
	if v.words != nil {
		w.Bool(true)
		for _, x := range v.words {
			w.U64(x)
		}
		return
	}
	w.Bool(false)
	var regBits uint64
	for r := 0; r < isa.NumRegs; r++ {
		if v.regs[r] != nil {
			regBits |= 1 << uint(r)
		}
	}
	w.U64(regBits)
	var scratchBits uint8
	for s := 0; s < micro.NumScratchRegs; s++ {
		if v.scratch[s] != nil {
			scratchBits |= 1 << uint(s)
		}
	}
	w.U8(scratchBits)
	var buf []uint64
	for r := 0; r < isa.NumRegs; r++ {
		if v.regs[r] != nil {
			buf = encodePlanes(w, v.regs[r], buf)
		}
	}
	for s := 0; s < micro.NumScratchRegs; s++ {
		if v.scratch[s] != nil {
			buf = encodePlanes(w, v.scratch[s], buf)
		}
	}
	buf = encodePlanes(w, v.temps[:], buf)
	buf = encodePlane(w, v.cond, buf)
	encodePlane(w, v.mask, buf)
}

// DecodeState overwrites a freshly constructed VRF (same lane count as the
// encoder's) with the stream's state. On error the VRF must be discarded.
func (v *VRF) DecodeState(r *snap.Reader) error {
	v.MicroOps = r.U64()
	flat := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if flat != (v.words != nil) {
		return fmt.Errorf("vrf: snapshot layout (flat=%v) does not match %d-lane geometry", flat, v.lanes)
	}
	if flat {
		for i := range v.words {
			v.words[i] = r.U64()
		}
		return r.Err()
	}
	regBits := r.U64()
	scratchBits := r.U8()
	if err := r.Err(); err != nil {
		return err
	}
	if scratchBits >= 1<<uint(micro.NumScratchRegs) {
		return fmt.Errorf("vrf: scratch allocation bits %#x out of range", scratchBits)
	}
	var buf []uint64
	var err error
	for reg := 0; reg < isa.NumRegs; reg++ {
		if regBits&(1<<uint(reg)) == 0 {
			continue
		}
		if buf, err = decodePlanes(r, v.regPlanes(reg), buf); err != nil {
			return err
		}
	}
	for s := 0; s < micro.NumScratchRegs; s++ {
		if scratchBits&(1<<uint(s)) == 0 {
			continue
		}
		if buf, err = decodePlanes(r, v.scratchPlanes(s), buf); err != nil {
			return err
		}
	}
	if buf, err = decodePlanes(r, v.temps[:], buf); err != nil {
		return err
	}
	if buf, err = decodePlane(r, v.cond, buf); err != nil {
		return err
	}
	if _, err = decodePlane(r, v.mask, buf); err != nil {
		return err
	}
	return r.Err()
}

func encodePlane(w *snap.Writer, p bitvec.Plane, buf []uint64) []uint64 {
	buf = p.AppendWords(buf[:0])
	for _, x := range buf {
		w.U64(x)
	}
	return buf
}

func encodePlanes(w *snap.Writer, ps []bitvec.Plane, buf []uint64) []uint64 {
	for _, p := range ps {
		buf = encodePlane(w, p, buf)
	}
	return buf
}

func decodePlane(r *snap.Reader, p bitvec.Plane, buf []uint64) ([]uint64, error) {
	words := (p.Len() + 63) / 64
	buf = buf[:0]
	for i := 0; i < words; i++ {
		buf = append(buf, r.U64())
	}
	if err := r.Err(); err != nil {
		return buf, err
	}
	return buf, p.LoadWords(buf)
}

func decodePlanes(r *snap.Reader, ps []bitvec.Plane, buf []uint64) ([]uint64, error) {
	var err error
	for _, p := range ps {
		if buf, err = decodePlane(r, p, buf); err != nil {
			return buf, err
		}
	}
	return buf, nil
}
