package vrf

import (
	"fmt"

	"mpu/internal/bitvec"
	"mpu/internal/isa"
	"mpu/internal/micro"
)

// Compile-time guards that micro's slot layout mirrors the ISA register
// file; both pairs fail to build if the constants drift apart.
var (
	_ [micro.SlotNumRegs - isa.NumRegs]struct{}
	_ [isa.NumRegs - micro.SlotNumRegs]struct{}
	_ [micro.SlotWordBits - isa.WordBits]struct{}
	_ [isa.WordBits - micro.SlotWordBits]struct{}
)

// ExecAllResolved applies a resolved micro-op sequence in order, with the
// same semantics (and the same MicroOps accounting) as ExecAll on the
// unresolved form. When every plane is a whole number of machine words
// (lanes % 64 == 0, which holds for all shipped backends) it runs a
// word-level fast path over the flat slot directory that skips per-op
// plane resolution, bounds checks, and the constant-plane write guard
// (performed once at Resolve time): single-word planes get the fully
// inlined 64-lane executor, wider planes the multi-word slab kernels.
func (v *VRF) ExecAllResolved(rs []micro.ResolvedOp) {
	if v.words != nil {
		if v.wpl == 1 {
			v.execResolved64(rs)
		} else {
			v.execResolvedWide(rs)
		}
		v.MicroOps += uint64(len(rs))
		return
	}
	for _, r := range rs {
		v.Exec(r.Op())
	}
}

// execResolved64 is the single-word executor: micro.Slot i is backed by
// v.words[i], so operand access is one index with no plane resolution. Each
// case reproduces the corresponding bitvec merge expression for a full
// 64-lane word: with lanes == 64 the tail mask is all-ones, so bitvec's
// clampTail calls are no-ops, and the constant-one plane is a full word, so
// the unmasked CONDWR and MASKRD writes reduce to plain stores. Sources are
// loaded before the destination is written, matching bitvec's aliasing
// behavior.
func (v *VRF) execResolved64(rs []micro.ResolvedOp) {
	ws := v.words
	m := ws[micro.SlotMask] // no micro-op writes the mask plane
	for i := range rs {
		r := &rs[i]
		switch r.Kind {
		case micro.NOR:
			x := ^(ws[r.A] | ws[r.B])
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.AND:
			x := ws[r.A] & ws[r.B]
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.OR:
			x := ws[r.A] | ws[r.B]
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.XOR:
			x := ws[r.A] ^ ws[r.B]
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.NOT:
			x := ^ws[r.A]
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.COPY:
			x := ws[r.A]
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.MAJ:
			a, b, c := ws[r.A], ws[r.B], ws[r.C]
			x := (a & b) | (b & c) | (a & c)
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.MUX:
			a, b, c := ws[r.A], ws[r.B], ws[r.C]
			x := (a & c) | (b &^ c)
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.FADD:
			a, b, c := ws[r.A], ws[r.B], ws[r.C]
			s := a ^ b ^ c
			co := (a & b) | (b & c) | (a & c)
			ws[r.Dst] = (ws[r.Dst] &^ m) | (s & m)
			ws[r.Dst2] = (ws[r.Dst2] &^ m) | (co & m)
		case micro.SET0:
			ws[r.Dst] &^= m
		case micro.SET1:
			ws[r.Dst] |= m
		case micro.CONDWR:
			ws[micro.SlotCond] = ws[r.A] & m
		case micro.MASKRD:
			ws[r.Dst] = m
		default:
			panic(fmt.Sprintf("vrf: unknown micro-op kind %d", r.Kind))
		}
	}
}

// span returns the word-directory storage of one slot: wpl consecutive
// words starting at s*wpl.
func (v *VRF) span(s micro.Slot) []uint64 {
	base := int(s) * v.wpl
	return v.words[base : base+v.wpl]
}

// execResolvedWide is the multi-word executor for lanes that span several
// words per plane (lanes % 64 == 0, lanes > 64 — e.g. SIMDRAM's 256). Each
// op runs one bitvec slab kernel over the operand spans; the kernels
// reproduce the plane path bit for bit (every word is fully populated, so
// there is no tail to clamp, and word i of one plane only ever combines
// with word i of another).
func (v *VRF) execResolvedWide(rs []micro.ResolvedOp) {
	m := v.span(micro.SlotMask) // no micro-op writes the mask plane
	for i := range rs {
		r := &rs[i]
		switch r.Kind {
		case micro.NOR:
			bitvec.NorWords(v.span(r.Dst), v.span(r.A), v.span(r.B), m)
		case micro.AND:
			bitvec.AndWords(v.span(r.Dst), v.span(r.A), v.span(r.B), m)
		case micro.OR:
			bitvec.OrWords(v.span(r.Dst), v.span(r.A), v.span(r.B), m)
		case micro.XOR:
			bitvec.XorWords(v.span(r.Dst), v.span(r.A), v.span(r.B), m)
		case micro.NOT:
			bitvec.NotWords(v.span(r.Dst), v.span(r.A), m)
		case micro.COPY:
			bitvec.CopyWords(v.span(r.Dst), v.span(r.A), m)
		case micro.MAJ:
			bitvec.MajWords(v.span(r.Dst), v.span(r.A), v.span(r.B), v.span(r.C), m)
		case micro.MUX:
			bitvec.MuxWords(v.span(r.Dst), v.span(r.A), v.span(r.B), v.span(r.C), m)
		case micro.FADD:
			bitvec.FullAddWords(v.span(r.Dst), v.span(r.Dst2), v.span(r.A), v.span(r.B), v.span(r.C), m)
		case micro.SET0:
			bitvec.ClearWords(v.span(r.Dst), m)
		case micro.SET1:
			bitvec.SetWords(v.span(r.Dst), m)
		case micro.CONDWR:
			bitvec.AndIntoWords(v.span(micro.SlotCond), v.span(r.A), m)
		case micro.MASKRD:
			copy(v.span(r.Dst), m)
		default:
			panic(fmt.Sprintf("vrf: unknown micro-op kind %d", r.Kind))
		}
	}
}
