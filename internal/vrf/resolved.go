package vrf

import (
	"fmt"

	"mpu/internal/isa"
	"mpu/internal/micro"
)

// Compile-time guards that micro's slot layout mirrors the ISA register
// file; both pairs fail to build if the constants drift apart.
var (
	_ [micro.SlotNumRegs - isa.NumRegs]struct{}
	_ [isa.NumRegs - micro.SlotNumRegs]struct{}
	_ [micro.SlotWordBits - isa.WordBits]struct{}
	_ [isa.WordBits - micro.SlotWordBits]struct{}
)

// ExecAllResolved applies a resolved micro-op sequence in order, with the
// same semantics (and the same MicroOps accounting) as ExecAll on the
// unresolved form. When every plane is a single machine word (lanes == 64,
// which holds for all shipped backends) it runs a word-level fast path over
// the flat slot directory that skips per-op plane resolution, bounds
// checks, and the constant-plane write guard (performed once at Resolve
// time).
func (v *VRF) ExecAllResolved(rs []micro.ResolvedOp) {
	if v.words != nil {
		v.execResolved64(rs)
		v.MicroOps += uint64(len(rs))
		return
	}
	for _, r := range rs {
		v.Exec(r.Op())
	}
}

// execResolved64 is the single-word executor: micro.Slot i is backed by
// v.words[i], so operand access is one index with no plane resolution. Each
// case reproduces the corresponding bitvec merge expression for a full
// 64-lane word: with lanes == 64 the tail mask is all-ones, so bitvec's
// clampTail calls are no-ops, and the constant-one plane is a full word, so
// the unmasked CONDWR and MASKRD writes reduce to plain stores. Sources are
// loaded before the destination is written, matching bitvec's aliasing
// behavior.
func (v *VRF) execResolved64(rs []micro.ResolvedOp) {
	ws := v.words
	m := ws[micro.SlotMask] // no micro-op writes the mask plane
	for i := range rs {
		r := &rs[i]
		switch r.Kind {
		case micro.NOR:
			x := ^(ws[r.A] | ws[r.B])
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.AND:
			x := ws[r.A] & ws[r.B]
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.OR:
			x := ws[r.A] | ws[r.B]
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.XOR:
			x := ws[r.A] ^ ws[r.B]
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.NOT:
			x := ^ws[r.A]
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.COPY:
			x := ws[r.A]
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.MAJ:
			a, b, c := ws[r.A], ws[r.B], ws[r.C]
			x := (a & b) | (b & c) | (a & c)
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.MUX:
			a, b, c := ws[r.A], ws[r.B], ws[r.C]
			x := (a & c) | (b &^ c)
			ws[r.Dst] = (ws[r.Dst] &^ m) | (x & m)
		case micro.FADD:
			a, b, c := ws[r.A], ws[r.B], ws[r.C]
			s := a ^ b ^ c
			co := (a & b) | (b & c) | (a & c)
			ws[r.Dst] = (ws[r.Dst] &^ m) | (s & m)
			ws[r.Dst2] = (ws[r.Dst2] &^ m) | (co & m)
		case micro.SET0:
			ws[r.Dst] &^= m
		case micro.SET1:
			ws[r.Dst] |= m
		case micro.CONDWR:
			ws[micro.SlotCond] = ws[r.A] & m
		case micro.MASKRD:
			ws[r.Dst] = m
		default:
			panic(fmt.Sprintf("vrf: unknown micro-op kind %d", r.Kind))
		}
	}
}
