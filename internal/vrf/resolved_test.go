package vrf

import (
	"fmt"
	"math/rand"
	"testing"

	"mpu/internal/isa"
	"mpu/internal/micro"
	"mpu/internal/recipe"
)

// capSets mirror the three shipped backends plus a NOR-only worst case, so
// the resolved executor is exercised against every decomposition style.
func capSets() map[string]micro.CapabilitySet {
	return map[string]micro.CapabilitySet{
		"nor":   micro.NewCapabilitySet(micro.NOR),
		"maj":   micro.NewCapabilitySet(micro.MAJ, micro.NOT, micro.AND, micro.OR),
		"fadd":  micro.NewCapabilitySet(micro.AND, micro.OR, micro.XOR, micro.NOT, micro.FADD, micro.MUX),
		"mixed": micro.NewCapabilitySet(micro.NOR, micro.XOR, micro.MAJ, micro.MUX),
	}
}

// sameState compares the complete functional state of two VRFs: every
// architectural and scratch register plane, every temp plane, and the cond
// and mask registers. Comparing planes (not just ReadReg) catches divergence
// recipes would otherwise hide in scratch space.
func sameState(t *testing.T, ref, got *VRF) {
	t.Helper()
	for r := 0; r < isa.NumRegs; r++ {
		a, b := ref.regPlanes(r), got.regPlanes(r)
		for bit := 0; bit < isa.WordBits; bit++ {
			if !a[bit].Equal(b[bit]) {
				t.Fatalf("reg %d bit %d differs:\nref %s\ngot %s", r, bit, a[bit], b[bit])
			}
		}
	}
	for s := 0; s < micro.NumScratchRegs; s++ {
		a, b := ref.scratchPlanes(s), got.scratchPlanes(s)
		for bit := 0; bit < isa.WordBits; bit++ {
			if !a[bit].Equal(b[bit]) {
				t.Fatalf("scratch %d bit %d differs", s, bit)
			}
		}
	}
	for p := 0; p < micro.NumTempPlanes; p++ {
		if !ref.temps[p].Equal(got.temps[p]) {
			t.Fatalf("temp plane %d differs", p)
		}
	}
	if !ref.cond.Equal(got.cond) {
		t.Fatalf("cond differs:\nref %s\ngot %s", ref.cond, got.cond)
	}
	if !ref.mask.Equal(got.mask) {
		t.Fatalf("mask differs:\nref %s\ngot %s", ref.mask, got.mask)
	}
	if ref.MicroOps != got.MicroOps {
		t.Fatalf("MicroOps %d != %d", got.MicroOps, ref.MicroOps)
	}
}

// seedPair returns two identically-seeded VRFs: random values in the operand
// registers and a random lane mask loaded through the SETMASK path.
func seedPair(rng *rand.Rand, lanes int) (*VRF, *VRF) {
	a, b := New(lanes), New(lanes)
	for _, r := range []int{1, 2, 3} {
		vals := make([]uint64, lanes)
		for l := range vals {
			vals[l] = rng.Uint64()
		}
		a.WriteReg(r, vals)
		b.WriteReg(r, vals)
	}
	maskBits := make([]uint64, lanes)
	for l := range maskBits {
		maskBits[l] = uint64(rng.Intn(2))
	}
	a.WriteReg(9, maskBits)
	b.WriteReg(9, maskBits)
	a.SetMaskFromReg(9)
	b.SetMaskFromReg(9)
	return a, b
}

// TestExecAllResolvedMatchesExec runs every datapath instruction's recipe,
// under every capability style, through both the reference executor and the
// resolved one, on identical random state, and requires identical VRFs.
func TestExecAllResolvedMatchesExec(t *testing.T) {
	for _, lanes := range []int{64, 37, 128} {
		for name, caps := range capSets() {
			t.Run(fmt.Sprintf("lanes%d/%s", lanes, name), func(t *testing.T) {
				rng := rand.New(rand.NewSource(1))
				for op := isa.Op(0); int(op) < isa.NumOps; op++ {
					if !recipe.IsDatapathOp(op) {
						continue
					}
					in := isa.Instr{Op: op, A: 1, B: 2, C: 3}
					ops, rs, err := recipe.ExpandResolved(caps, in)
					if err != nil {
						t.Fatalf("%s: %v", op, err)
					}
					if len(rs) != len(ops) {
						t.Fatalf("%s: %d resolved ops for %d ops", op, len(rs), len(ops))
					}
					ref, got := seedPair(rng, lanes)
					ref.ExecAll(ops)
					got.ExecAllResolved(rs)
					sameState(t, ref, got)
				}
			})
		}
	}
}

// TestExecAllResolvedControlOps covers the executor ops recipes use rarely
// or never (MASKRD, SET0/SET1 on temps, constant-plane sources) plus the
// mask-register round trip through SetMaskFromCond.
func TestExecAllResolvedControlOps(t *testing.T) {
	ops := []micro.Op{
		{Kind: micro.MASKRD, Dst: micro.Reg(4, 0)},
		{Kind: micro.SET1, Dst: micro.Temp(7)},
		{Kind: micro.SET0, Dst: micro.Scratch(1, 5)},
		{Kind: micro.MUX, Dst: micro.Reg(6, 1), A: micro.One(), B: micro.Zero(), C: micro.Reg(1, 0)},
		{Kind: micro.CONDWR, A: micro.Reg(1, 3)},
		{Kind: micro.NOT, Dst: micro.Temp(0), A: micro.Zero()},
		{Kind: micro.MAJ, Dst: micro.Reg(8, 2), A: micro.One(), B: micro.Reg(2, 2), C: micro.Cond()},
	}
	rs := micro.Resolve(ops)
	for _, lanes := range []int{64, 37} {
		rng := rand.New(rand.NewSource(7))
		ref, got := seedPair(rng, lanes)
		ref.ExecAll(ops)
		got.ExecAllResolved(rs)
		ref.SetMaskFromCond()
		got.SetMaskFromCond()
		ref.ExecAll(ops)
		got.ExecAllResolved(rs)
		ref.Unmask()
		got.Unmask()
		ref.ExecAll(ops)
		got.ExecAllResolved(rs)
		sameState(t, ref, got)
	}
}
