package vrf

import (
	"math/rand"
	"testing"

	"mpu/internal/micro"
)

// randResolved builds a random but well-formed resolved stream: every kind,
// destinations never a constant or the mask plane, FADD outputs distinct.
func randResolved(n int, rng *rand.Rand) []micro.ResolvedOp {
	kinds := []micro.Kind{
		micro.NOR, micro.AND, micro.OR, micro.XOR, micro.NOT, micro.COPY,
		micro.MAJ, micro.MUX, micro.FADD, micro.SET0, micro.SET1,
		micro.CONDWR, micro.MASKRD,
	}
	// Writable slots: register bits, scratch bits, temps, cond.
	writable := func() micro.Slot {
		return micro.Slot(rng.Intn(int(micro.SlotCond) + 1))
	}
	// Readable slots additionally include the constant planes.
	readable := func() micro.Slot {
		s := micro.Slot(rng.Intn(int(micro.SlotOne) + 1))
		return s
	}
	out := make([]micro.ResolvedOp, n)
	for i := range out {
		r := micro.ResolvedOp{
			Kind: kinds[rng.Intn(len(kinds))],
			Dst:  writable(), A: readable(), B: readable(), C: readable(),
		}
		if r.Kind == micro.FADD {
			r.Dst2 = writable()
			for r.Dst2 == r.Dst {
				r.Dst2 = writable()
			}
		}
		out[i] = r
	}
	return out
}

// randomize fills every plane of the directory with random words, clears
// tail bits (none exist: lanes%64==0), and restores the constant planes and
// a chosen mask.
func randomize(v *VRF, rng *rand.Rand, maskedLanes bool) {
	for i := range v.words {
		v.words[i] = rng.Uint64()
	}
	zero := int(micro.SlotZero) * v.wpl
	one := int(micro.SlotOne) * v.wpl
	mask := int(micro.SlotMask) * v.wpl
	for i := 0; i < v.wpl; i++ {
		v.words[zero+i] = 0
		v.words[one+i] = ^uint64(0)
		if maskedLanes {
			v.words[mask+i] = rng.Uint64()
		} else {
			v.words[mask+i] = ^uint64(0)
		}
	}
}

// The compiled closure chain must reproduce the interpreting executor's
// directory bit for bit, masked and unmasked, at both geometries.
func TestCompiledExecMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, lanes := range []int{64, 256} {
		for _, masked := range []bool{false, true} {
			for trial := 0; trial < 20; trial++ {
				rs := randResolved(1+rng.Intn(60), rng)
				c := CompileResolved(rs, lanes)
				if c == nil {
					t.Fatalf("lanes=%d: CompileResolved returned nil for a well-formed stream", lanes)
				}
				if c.Ops() != uint64(len(rs)) {
					t.Fatalf("lanes=%d: Ops() = %d, want %d", lanes, c.Ops(), len(rs))
				}
				vi, vj := New(lanes), New(lanes)
				seed := rng.Int63()
				randomize(vi, rand.New(rand.NewSource(seed)), masked)
				randomize(vj, rand.New(rand.NewSource(seed)), masked)

				vi.ExecAllResolved(rs)
				vj.RunCompiled(c)

				if vi.MicroOps != vj.MicroOps {
					t.Fatalf("lanes=%d masked=%v: MicroOps %d vs %d", lanes, masked, vi.MicroOps, vj.MicroOps)
				}
				for w := range vi.words {
					if vi.words[w] != vj.words[w] {
						t.Fatalf("lanes=%d masked=%v trial=%d: word %d (slot %d): interp=%#x jit=%#x",
							lanes, masked, trial, w, w/vi.wpl, vi.words[w], vj.words[w])
					}
				}
			}
		}
	}
}

// Ragged lane counts have no word directory; the compiler must decline.
func TestCompileResolvedRejectsRaggedLanes(t *testing.T) {
	rs := randResolved(4, rand.New(rand.NewSource(3)))
	for _, lanes := range []int{1, 63, 65, 100} {
		if CompileResolved(rs, lanes) != nil {
			t.Errorf("lanes=%d: compiled for a geometry without a word directory", lanes)
		}
	}
	if CompileResolved(rs, 0) != nil || CompileResolved(rs, -64) != nil {
		t.Error("compiled for a non-positive lane count")
	}
}

// A compiled stream must never allocate during execution — the replay hot
// loop runs millions of times per simulation.
func TestRunCompiledDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, lanes := range []int{64, 256} {
		rs := randResolved(64, rng)
		c := CompileResolved(rs, lanes)
		v := New(lanes)
		randomize(v, rng, true)
		if n := testing.AllocsPerRun(100, func() { v.RunCompiled(c) }); n != 0 {
			t.Errorf("lanes=%d: RunCompiled allocates %v times per run", lanes, n)
		}
	}
}

func TestRunCompiledLaneMismatchPanics(t *testing.T) {
	c := CompileResolved(randResolved(2, rand.New(rand.NewSource(9))), 64)
	v := New(128)
	defer func() {
		if recover() == nil {
			t.Error("no panic executing a 64-lane stream on a 128-lane VRF")
		}
	}()
	v.RunCompiled(c)
}
