package workloads

import (
	"testing"

	"mpu/internal/backends"
	"mpu/internal/machine"
)

// TestPortabilityToSIMDRAM is the §IX generality demonstration: the
// unmodified kernel suite — including divergent dynamic loops and the
// MAJ/NOT-only gate decompositions — runs reference-exactly on a fourth
// back end that was never part of the evaluation.
func TestPortabilityToSIMDRAM(t *testing.T) {
	spec := backends.SIMDRAM()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(k, RunConfig{
				Spec:          spec,
				Mode:          machine.ModeMPU,
				TotalElements: spec.MPUs * spec.Lanes,
				Seed:          99,
				Check:         true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.CheckedLanes == 0 {
				t.Fatal("nothing verified")
			}
		})
	}
}

// TestSIMDRAMSchedulerLimit: the 16-active-VRF limit produces replay rounds
// on a fully loaded MPU (64 VRFs per RFH).
func TestSIMDRAMSchedulerLimit(t *testing.T) {
	spec := backends.SIMDRAM()
	k := ByName("vecadd")
	res, err := Run(k, RunConfig{
		Spec: spec, Mode: machine.ModeMPU,
		TotalElements: spec.MPUs * spec.Lanes * 64, // 64 VRFs per MPU share
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 64 VRFs over 8 RFHs = 8 per RFH; at limit 16 that is one round —
	// grow to 256 VRFs for 32 per RFH → 2 rounds.
	res2, err := Run(k, RunConfig{
		Spec: spec, Mode: machine.ModeMPU,
		TotalElements: spec.MPUs * spec.Lanes * 256,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Rounds <= res.Stats.Rounds {
		t.Fatalf("rounds did not grow with load: %d vs %d", res2.Stats.Rounds, res.Stats.Rounds)
	}
}
