// Package workloads defines the 21 data-intensive kernels of the evaluation
// (§VII) in four groups — basic, branch-focused, stencil, and complex — plus
// the harness that runs them on a simulated machine and checks results
// against scalar references.
//
// Every kernel is expressed as per-lane computation over preloaded vector
// registers. Stencils follow the standard PUM data layout: the host loads
// shifted copies of the input signal into adjacent registers, so x[i-1],
// x[i], x[i+1] are lane-aligned. Reduction-style operands (softmax
// denominators, thresholds, filter weights) arrive as broadcast registers.
package workloads

import (
	"math/rand"
	"sync"

	"mpu/internal/ezpim"
)

// Group classifies kernels per §VII.
type Group int

// Kernel groups.
const (
	Basic Group = iota
	Branch
	Stencil
	Complex
)

func (g Group) String() string {
	switch g {
	case Basic:
		return "basic"
	case Branch:
		return "branch"
	case Stencil:
		return "stencil"
	case Complex:
		return "complex"
	}
	return "unknown"
}

// GPUTraits characterize the kernel for the RTX 4090 roofline model.
type GPUTraits struct {
	Ops        float64 // 64-bit integer ops per element
	Bytes      float64 // device-memory bytes per element per pass
	Passes     int
	Divergence float64 // SIMT divergence penalty
}

// Kernel is one benchmark kernel.
type Kernel struct {
	Name  string
	Group Group

	// Inputs is the number of consecutive registers r0..rInputs-1 the
	// generator fills; Out is the result register.
	Inputs int
	Out    int

	// Gen produces per-register lane values for n elements.
	Gen func(rng *rand.Rand, n int) [][]uint64

	// Ref computes the expected output of one lane from its register
	// values.
	Ref func(in []uint64) uint64

	// Subs optionally defines ISA subroutines (emitted before main).
	Subs func(b *ezpim.Builder)

	// Emit writes the kernel body (ensemble context).
	Emit func(b *ezpim.Builder)

	GPU GPUTraits
}

func broadcast(n int, v uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func randSmall(rng *rand.Rand, n int, bound uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() % bound
	}
	return out
}

// signal generates a smooth-ish positive signal and returns k shifted copies
// (offset -k/2..+k/2), mimicking the host's stencil data layout.
func shiftedSignal(rng *rand.Rand, n, k int, bound uint64) [][]uint64 {
	pad := k / 2
	base := make([]uint64, n+2*pad)
	for i := range base {
		base[i] = rng.Uint64() % bound
	}
	out := make([][]uint64, k)
	for s := 0; s < k; s++ {
		out[s] = base[s : s+n]
	}
	return out
}

func refAbsDiff(a, b uint64) uint64 {
	if int64(a) >= int64(b) {
		return a - b
	}
	return b - a
}

// refISqrt is floor(sqrt(x)) by the same Newton iteration the kernel runs.
func refISqrt(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	s := x
	u := (s + x/s) / 2
	for u < s {
		s = u
		u = (s + x/s) / 2
	}
	return s
}

// refCRC is the MSB-first CRC-32 (poly 0x04C11DB7, init 0) of the 64-bit
// message, mirroring the kernel's bitwise loop.
func refCRC(x uint64) uint64 {
	crc := uint64(0)
	for i := 63; i >= 0; i-- {
		bit := x >> uint(i) & 1
		top := crc >> 31 & 1
		crc = crc << 1 & 0xFFFFFFFF
		if top^bit == 1 {
			crc ^= 0x04C11DB7
		}
	}
	return crc
}

// refSoftmaxExp is the fixed-point Q16 cubic exp approximation the softmax
// kernel computes: 65536 + x + x²/2·65536 + x³/6·65536².
func refSoftmaxExp(x, denom uint64) uint64 {
	const one = 65536
	x2 := x * x
	x3 := x2 * x
	e := one + x + x2/(2*one) + x3/(6*one*one)
	return e * one / denom
}

// emitAbsInto emits out = |a - b| (signed) using predication.
func emitAbsInto(b *ezpim.Builder, a, bb, out, scratch int) {
	b.Sub(a, bb, out)
	b.Init0(scratch)
	b.If(ezpim.Lt(out, scratch), func() {
		b.Sub(bb, a, out)
	}, nil)
}

// emitISqrtBody emits out = floor(sqrt(x)) with a data-driven Newton loop.
// Scratch registers s..s+3 are clobbered.
func emitISqrtBody(b *ezpim.Builder, x, out, s int) {
	zero, two, u := s, s+1, s+2
	b.Init0(zero)
	b.Const(two, 2)
	b.Mov(x, out) // s = x
	b.If(ezpim.Gt(x, zero), func() {
		t := s + 3
		b.Div(x, out, t) // t = x/s
		b.Add(out, t, t) // t = s + x/s
		b.Div(t, two, t) // u = t/2
		b.Mov(t, u)
		b.While(ezpim.Lt(u, out), func() {
			b.Mov(u, out)    // s = u
			b.Div(x, out, t) // t = x/s
			b.Add(out, t, t)
			b.Div(t, two, u) // u = (s+x/s)/2
		})
	}, func() {
		b.Init0(out)
	})
}

// The kernel catalog is built once and shared: Kernel values are immutable
// after construction (their Gen/Ref/Emit closures capture no mutable
// state), so concurrent sweep cells may use the same *Kernel freely. The
// only per-run state — the seeded RNG — is created inside Run, per cell.
var (
	allOnce sync.Once
	allKs   []*Kernel
)

// All returns the 21 evaluation kernels in group order. The returned slice
// is freshly allocated; the *Kernel values are shared and must be treated
// as read-only.
func All() []*Kernel {
	allOnce.Do(func() {
		allKs = append(allKs, basicKernels()...)
		allKs = append(allKs, branchKernels()...)
		allKs = append(allKs, stencilKernels()...)
		allKs = append(allKs, complexKernels()...)
	})
	out := make([]*Kernel, len(allKs))
	copy(out, allKs)
	return out
}

// Names returns every kernel name in catalog order — the request-addressable
// namespace the mpud service exposes at /v1/workloads.
func Names() []string {
	ks := All()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.Name
	}
	return out
}

// ByName returns the named kernel or nil.
func ByName(name string) *Kernel {
	for _, k := range All() {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// ByGroup filters kernels by group.
func ByGroup(g Group) []*Kernel {
	var out []*Kernel
	for _, k := range All() {
		if k.Group == g {
			out = append(out, k)
		}
	}
	return out
}

func basicKernels() []*Kernel {
	gen2 := func(rng *rand.Rand, n int) [][]uint64 {
		return [][]uint64{randSmall(rng, n, 1<<40), randSmall(rng, n, 1<<40)}
	}
	return []*Kernel{
		{
			Name: "vecadd", Group: Basic, Inputs: 2, Out: 2, Gen: gen2,
			Ref:  func(in []uint64) uint64 { return in[0] + in[1] },
			Emit: func(b *ezpim.Builder) { b.Add(0, 1, 2) },
			GPU:  GPUTraits{Ops: 1, Bytes: 24, Passes: 1, Divergence: 1},
		},
		{
			Name: "vecsub", Group: Basic, Inputs: 2, Out: 2, Gen: gen2,
			Ref:  func(in []uint64) uint64 { return in[0] - in[1] },
			Emit: func(b *ezpim.Builder) { b.Sub(0, 1, 2) },
			GPU:  GPUTraits{Ops: 1, Bytes: 24, Passes: 1, Divergence: 1},
		},
		{
			Name: "vecmul", Group: Basic, Inputs: 2, Out: 2,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				return [][]uint64{randSmall(rng, n, 1<<31), randSmall(rng, n, 1<<31)}
			},
			Ref:  func(in []uint64) uint64 { return in[0] * in[1] },
			Emit: func(b *ezpim.Builder) { b.Mul(0, 1, 2) },
			GPU:  GPUTraits{Ops: 4, Bytes: 24, Passes: 1, Divergence: 1},
		},
		{
			Name: "vecand", Group: Basic, Inputs: 2, Out: 2, Gen: gen2,
			Ref:  func(in []uint64) uint64 { return in[0] & in[1] },
			Emit: func(b *ezpim.Builder) { b.And(0, 1, 2) },
			GPU:  GPUTraits{Ops: 1, Bytes: 24, Passes: 1, Divergence: 1},
		},
		{
			Name: "vecxor", Group: Basic, Inputs: 2, Out: 2, Gen: gen2,
			Ref:  func(in []uint64) uint64 { return in[0] ^ in[1] },
			Emit: func(b *ezpim.Builder) { b.Xor(0, 1, 2) },
			GPU:  GPUTraits{Ops: 1, Bytes: 24, Passes: 1, Divergence: 1},
		},
		{
			Name: "mac", Group: Basic, Inputs: 3, Out: 2,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				return [][]uint64{randSmall(rng, n, 1<<28), randSmall(rng, n, 1<<28), randSmall(rng, n, 1<<40)}
			},
			Ref:  func(in []uint64) uint64 { return in[2] + in[0]*in[1] },
			Emit: func(b *ezpim.Builder) { b.Mac(0, 1, 2) },
			GPU:  GPUTraits{Ops: 5, Bytes: 32, Passes: 1, Divergence: 1},
		},
	}
}

func branchKernels() []*Kernel {
	signedGen := func(rng *rand.Rand, n int) [][]uint64 {
		v := make([]uint64, n)
		for i := range v {
			v[i] = uint64(int64(rng.Intn(1<<20)) - 1<<19)
		}
		return [][]uint64{v}
	}
	return []*Kernel{
		{
			Name: "relu", Group: Branch, Inputs: 1, Out: 1, Gen: signedGen,
			Ref: func(in []uint64) uint64 {
				if int64(in[0]) < 0 {
					return 0
				}
				return in[0]
			},
			Emit: func(b *ezpim.Builder) {
				b.Init0(2)
				b.Mov(0, 1)
				b.If(ezpim.Lt(0, 2), func() { b.Init0(1) }, nil)
			},
			GPU: GPUTraits{Ops: 2, Bytes: 16, Passes: 1, Divergence: 1.3},
		},
		{
			Name: "abs", Group: Branch, Inputs: 1, Out: 1, Gen: signedGen,
			Ref: func(in []uint64) uint64 {
				if int64(in[0]) < 0 {
					return -in[0]
				}
				return in[0]
			},
			Emit: func(b *ezpim.Builder) {
				b.Init0(2)
				b.If(ezpim.Lt(0, 2), func() {
					b.Sub(2, 0, 1)
				}, func() {
					b.Mov(0, 1)
				})
			},
			GPU: GPUTraits{Ops: 2, Bytes: 16, Passes: 1, Divergence: 1.3},
		},
		{
			Name: "clamp", Group: Branch, Inputs: 3, Out: 3,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				return [][]uint64{
					randSmall(rng, n, 1<<20),
					broadcast(n, 100),
					broadcast(n, 10000),
				}
			},
			Ref: func(in []uint64) uint64 {
				v := in[0]
				if v < in[1] {
					return in[1]
				}
				if v > in[2] {
					return in[2]
				}
				return v
			},
			Emit: func(b *ezpim.Builder) {
				b.Mov(0, 3)
				b.If(ezpim.Lt(3, 1), func() { b.Mov(1, 3) }, nil)
				b.If(ezpim.Gt(3, 2), func() { b.Mov(2, 3) }, nil)
			},
			GPU: GPUTraits{Ops: 4, Bytes: 16, Passes: 1, Divergence: 1.5},
		},
		{
			Name: "sign", Group: Branch, Inputs: 1, Out: 1, Gen: signedGen,
			Ref: func(in []uint64) uint64 {
				switch v := int64(in[0]); {
				case v == 0:
					return 0
				case v > 0:
					return 1
				default:
					return 2
				}
			},
			Emit: func(b *ezpim.Builder) {
				b.Init0(2)
				b.If(ezpim.Eq(0, 2), func() {
					b.Init0(1)
				}, func() {
					b.If(ezpim.Gt(0, 2), func() {
						b.Init1(1)
					}, func() {
						b.Const(1, 2)
					})
				})
			},
			GPU: GPUTraits{Ops: 4, Bytes: 16, Passes: 1, Divergence: 1.7},
		},
		{
			Name: "threshold", Group: Branch, Inputs: 2, Out: 2,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				return [][]uint64{randSmall(rng, n, 1<<20), broadcast(n, 1<<19)}
			},
			Ref: func(in []uint64) uint64 {
				if int64(in[0]) > int64(in[1]) {
					return 1
				}
				return 0
			},
			Emit: func(b *ezpim.Builder) {
				b.If(ezpim.Gt(0, 1), func() { b.Init1(2) }, func() { b.Init0(2) })
			},
			GPU: GPUTraits{Ops: 2, Bytes: 24, Passes: 1, Divergence: 1.3},
		},
	}
}

func stencilKernels() []*Kernel {
	return []*Kernel{
		{
			Name: "conv1d3", Group: Stencil, Inputs: 6, Out: 6,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				regs := shiftedSignal(rng, n, 3, 1<<16)
				return append(regs, broadcast(n, 3), broadcast(n, 5), broadcast(n, 2))
			},
			Ref: func(in []uint64) uint64 { return in[0]*in[3] + in[1]*in[4] + in[2]*in[5] },
			Emit: func(b *ezpim.Builder) {
				b.Mul(0, 3, 6)
				b.Mac(1, 4, 6)
				b.Mac(2, 5, 6)
			},
			GPU: GPUTraits{Ops: 6, Bytes: 16, Passes: 1, Divergence: 1},
		},
		{
			Name: "jacobi1d", Group: Stencil, Inputs: 4, Out: 4,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				regs := shiftedSignal(rng, n, 3, 1<<24)
				return append(regs, broadcast(n, 3))
			},
			Ref: func(in []uint64) uint64 { return (in[0] + in[1] + in[2]) / 3 },
			Emit: func(b *ezpim.Builder) {
				b.Add(0, 1, 4)
				b.Add(4, 2, 4)
				b.Div(4, 3, 4)
			},
			GPU: GPUTraits{Ops: 4, Bytes: 16, Passes: 1, Divergence: 1},
		},
		{
			Name: "conv2d3x3", Group: Stencil, Inputs: 18, Out: 18,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				regs := shiftedSignal(rng, n, 9, 1<<12)
				w := []uint64{1, 2, 1, 2, 4, 2, 1, 2, 1}
				for _, wi := range w {
					regs = append(regs, broadcast(n, wi))
				}
				return regs
			},
			Ref: func(in []uint64) uint64 {
				var s uint64
				for i := 0; i < 9; i++ {
					s += in[i] * in[9+i]
				}
				return s
			},
			Emit: func(b *ezpim.Builder) {
				b.Mul(0, 9, 18)
				for i := 1; i < 9; i++ {
					b.Mac(i, 9+i, 18)
				}
			},
			GPU: GPUTraits{Ops: 18, Bytes: 16, Passes: 1, Divergence: 1},
		},
		{
			Name: "sobelx", Group: Stencil, Inputs: 9, Out: 9,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				return shiftedSignal(rng, n, 9, 256)
			},
			Ref: func(in []uint64) uint64 {
				gx := int64(in[2]) - int64(in[0]) + 2*(int64(in[5])-int64(in[3])) + int64(in[8]) - int64(in[6])
				if gx < 0 {
					gx = -gx
				}
				return uint64(gx)
			},
			Emit: func(b *ezpim.Builder) {
				b.Sub(2, 0, 9)  // x2-x0
				b.Sub(5, 3, 10) // x5-x3
				b.Add(10, 10, 10)
				b.Add(9, 10, 9)
				b.Sub(8, 6, 10)
				b.Add(9, 10, 9)
				b.Init0(10)
				b.If(ezpim.Lt(9, 10), func() { b.Sub(10, 9, 9) }, nil)
			},
			GPU: GPUTraits{Ops: 8, Bytes: 16, Passes: 1, Divergence: 1.2},
		},
	}
}

func complexKernels() []*Kernel {
	return []*Kernel{
		{
			Name: "manhattan", Group: Complex, Inputs: 8, Out: 8,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				regs := make([][]uint64, 8)
				for i := range regs {
					regs[i] = randSmall(rng, n, 1<<20)
				}
				return regs
			},
			Ref: func(in []uint64) uint64 {
				var s uint64
				for k := 0; k < 4; k++ {
					s += refAbsDiff(in[k], in[4+k])
				}
				return s
			},
			Emit: func(b *ezpim.Builder) {
				b.Init0(8)
				for k := 0; k < 4; k++ {
					emitAbsInto(b, k, 4+k, 9, 10)
					b.Add(8, 9, 8)
				}
			},
			GPU: GPUTraits{Ops: 12, Bytes: 72, Passes: 1, Divergence: 1.5},
		},
		{
			Name: "euclidean", Group: Complex, Inputs: 8, Out: 8,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				regs := make([][]uint64, 8)
				for i := range regs {
					regs[i] = randSmall(rng, n, 1<<15)
				}
				return regs
			},
			Ref: func(in []uint64) uint64 {
				var s uint64
				for k := 0; k < 4; k++ {
					d := refAbsDiff(in[k], in[4+k])
					s += d * d
				}
				return refISqrt(s)
			},
			Subs: func(b *ezpim.Builder) {
				b.SubDef("isqrt", func() {
					// In: r20, out: r21; clobbers r22..r25.
					b.Mov(20, 26)
					emitISqrtBody(b, 26, 21, 22)
				})
			},
			Emit: func(b *ezpim.Builder) {
				b.Init0(9)
				for k := 0; k < 4; k++ {
					emitAbsInto(b, k, 4+k, 10, 11)
					b.Mac(10, 10, 9)
				}
				b.Mov(9, 20)
				b.Call("isqrt")
				b.Mov(21, 8)
			},
			GPU: GPUTraits{Ops: 40, Bytes: 72, Passes: 1, Divergence: 2.5},
		},
		{
			Name: "ibert-sqrt", Group: Complex, Inputs: 1, Out: 1,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				v := randSmall(rng, n, 1<<32)
				v[0] = 0 // pin the guard path
				return [][]uint64{v}
			},
			Ref:  func(in []uint64) uint64 { return refISqrt(in[0]) },
			Emit: func(b *ezpim.Builder) { emitISqrtBody(b, 0, 1, 2) },
			GPU:  GPUTraits{Ops: 30, Bytes: 16, Passes: 1, Divergence: 3},
		},
		{
			Name: "softmax", Group: Complex, Inputs: 2, Out: 2,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				return [][]uint64{randSmall(rng, n, 4<<16), broadcast(n, 123456789)}
			},
			Ref: func(in []uint64) uint64 { return refSoftmaxExp(in[0], in[1]) },
			Emit: func(b *ezpim.Builder) {
				// Fixed-point Q16 cubic exp, then normalize by the
				// broadcast denominator.
				b.Const(3, 65536)
				b.Const(4, 2*65536)
				b.Const(5, 6*65536*65536)
				b.Mul(0, 0, 6) // x²
				b.Mul(6, 0, 7) // x³
				b.Div(6, 4, 6) // x²/2·65536
				b.Div(7, 5, 7) // x³/6·65536²
				b.Add(3, 0, 2) // 1 + x
				b.Add(2, 6, 2)
				b.Add(2, 7, 2)
				b.Mul(2, 3, 2) // scale
				b.Div(2, 1, 2) // normalize
			},
			GPU: GPUTraits{Ops: 25, Bytes: 24, Passes: 1, Divergence: 1},
		},
		{
			Name: "crc32", Group: Complex, Inputs: 1, Out: 1,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				return [][]uint64{randSmall(rng, n, 1<<62)}
			},
			Ref: func(in []uint64) uint64 { return refCRC(in[0]) },
			Emit: func(b *ezpim.Builder) {
				const (
					crc, msg, zero, topC, topM, t, poly, mask32, n64, one = 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
				)
				b.Init0(crc)
				b.Mov(0, msg)
				b.Init0(zero)
				b.Init1(one)
				b.Const(poly, 0x04C11DB7)
				b.Const(mask32, 0xFFFFFFFF)
				b.Const(topC+10, 0x80000000)         // r14: CRC top bit
				b.Const(topM+10, 0x8000000000000000) // r15: msg top bit
				b.Const(n64, 64)
				b.Repeat(n64, func() {
					b.And(crc, topC+10, topC) // crc & 0x80000000
					b.And(msg, topM+10, topM) // msg top bit
					b.LShift(crc, crc)
					b.And(crc, mask32, crc)
					b.LShift(msg, msg)
					b.Init0(t)
					b.If(ezpim.Ne(topC, zero), func() { b.Xor(t, one, t) }, nil)
					b.If(ezpim.Ne(topM, zero), func() { b.Xor(t, one, t) }, nil)
					b.If(ezpim.Ne(t, zero), func() { b.Xor(crc, poly, crc) }, nil)
				})
			},
			GPU: GPUTraits{Ops: 64 * 6, Bytes: 16, Passes: 1, Divergence: 2},
		},
		{
			Name: "gcd", Group: Complex, Inputs: 2, Out: 2,
			Gen: func(rng *rand.Rand, n int) [][]uint64 {
				a := make([]uint64, n)
				bv := make([]uint64, n)
				for i := range a {
					a[i] = uint64(rng.Intn(1<<20) + 1)
					bv[i] = uint64(rng.Intn(1 << 20))
				}
				return [][]uint64{a, bv}
			},
			Ref: func(in []uint64) uint64 {
				a, b := in[0], in[1]
				for b != 0 {
					a, b = b, a%b
				}
				return a
			},
			Emit: func(b *ezpim.Builder) {
				b.Mov(0, 3)
				b.Mov(1, 4)
				b.Init0(5)
				b.While(ezpim.Ne(4, 5), func() {
					b.Rem(3, 4, 6)
					b.Mov(4, 3)
					b.Mov(6, 4)
				})
				b.Mov(3, 2)
			},
			GPU: GPUTraits{Ops: 120, Bytes: 24, Passes: 1, Divergence: 4},
		},
	}
}
