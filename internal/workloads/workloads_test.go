package workloads

import (
	"testing"

	"mpu/internal/backends"
	"mpu/internal/gpumodel"
	"mpu/internal/machine"
)

func TestRegistryShape(t *testing.T) {
	ks := All()
	if len(ks) != 21 {
		t.Fatalf("kernel count = %d, want the paper's 21", len(ks))
	}
	counts := map[Group]int{}
	seen := map[string]bool{}
	for _, k := range ks {
		if seen[k.Name] {
			t.Errorf("duplicate kernel %q", k.Name)
		}
		seen[k.Name] = true
		counts[k.Group]++
		if k.Gen == nil || k.Ref == nil || k.Emit == nil {
			t.Errorf("%s: missing generator/reference/emitter", k.Name)
		}
		if k.GPU.Ops <= 0 || k.GPU.Bytes <= 0 {
			t.Errorf("%s: missing GPU traits", k.Name)
		}
		if k.Out < k.Inputs && k.Name != "relu" && k.Name != "abs" && k.Name != "sign" &&
			k.Name != "mac" && k.Name != "clamp" && k.Name != "threshold" &&
			k.Name != "ibert-sqrt" && k.Name != "softmax" && k.Name != "crc32" && k.Name != "gcd" {
			t.Errorf("%s: output register %d overlaps inputs 0..%d", k.Name, k.Out, k.Inputs-1)
		}
	}
	if counts[Basic] != 6 || counts[Branch] != 5 || counts[Stencil] != 4 || counts[Complex] != 6 {
		t.Fatalf("group counts = %v, want 6/5/4/6", counts)
	}
}

func TestByNameAndGroup(t *testing.T) {
	if ByName("gcd") == nil || ByName("vecadd") == nil {
		t.Fatal("ByName missed known kernels")
	}
	if ByName("nope") != nil {
		t.Fatal("ByName invented a kernel")
	}
	if got := len(ByGroup(Stencil)); got != 4 {
		t.Fatalf("stencil group size = %d", got)
	}
	if Group(9).String() != "unknown" || Basic.String() != "basic" {
		t.Fatal("Group.String broken")
	}
}

// TestAllKernelsCorrectOnRACER is the central functional test: every kernel
// must produce reference-exact results through the NOR-only bit-serial
// datapath, including the divergent dynamic-loop kernels.
func TestAllKernelsCorrectOnRACER(t *testing.T) {
	spec := backends.RACER()
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(k, RunConfig{
				Spec:          spec,
				Mode:          machine.ModeMPU,
				TotalElements: spec.MPUs * spec.Lanes * 2, // 2 VRFs per MPU share
				Seed:          1,
				Check:         true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.CheckedLanes == 0 {
				t.Fatal("no lanes verified")
			}
			if res.Seconds <= 0 || res.Joules <= 0 {
				t.Fatalf("implausible cost: %v s, %v J", res.Seconds, res.Joules)
			}
		})
	}
}

// TestKernelsCorrectOnOtherBackends spot-checks representative kernels on
// MIMDRAM and Duality Cache capability sets end to end.
func TestKernelsCorrectOnOtherBackends(t *testing.T) {
	names := []string{"vecadd", "abs", "conv1d3", "gcd", "crc32", "euclidean"}
	for _, spec := range []*backends.Spec{backends.MIMDRAM(), backends.DualityCache()} {
		for _, name := range names {
			k := ByName(name)
			res, err := Run(k, RunConfig{
				Spec:          spec,
				Mode:          machine.ModeMPU,
				TotalElements: spec.MPUs * spec.Lanes,
				Seed:          2,
				Check:         true,
			})
			if err != nil {
				t.Fatalf("%s on %s: %v", name, spec.Name, err)
			}
			if res.CheckedLanes == 0 {
				t.Fatalf("%s on %s: nothing verified", name, spec.Name)
			}
		}
	}
}

// TestBaselineMatchesFunctionally: Baseline mode computes identical results —
// only the control costs differ.
func TestBaselineMatchesFunctionally(t *testing.T) {
	spec := backends.RACER()
	k := ByName("gcd")
	mpu, err := Run(k, RunConfig{Spec: spec, Mode: machine.ModeMPU, TotalElements: spec.MPUs * 64, Seed: 3, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(k, RunConfig{Spec: spec, Mode: machine.ModeBaseline, TotalElements: spec.MPUs * 64, Seed: 3, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.Offloads == 0 {
		t.Fatal("Baseline gcd performed no offloads")
	}
	if mpu.Stats.Offloads != 0 {
		t.Fatal("MPU gcd performed offloads")
	}
	if base.Seconds <= mpu.Seconds {
		t.Fatalf("Baseline (%.3gs) not slower than MPU (%.3gs) on a dynamic-loop kernel", base.Seconds, mpu.Seconds)
	}
}

// TestBasicKernelIsoAreaSlowdown: on control-free kernels the MPU config is
// slightly SLOWER than Baseline (capacity given up to front ends, §VIII-B).
func TestBasicKernelIsoAreaSlowdown(t *testing.T) {
	spec := backends.RACER()
	k := ByName("vecadd")
	// A chip-scale working set (448 of 512 VRFs per baseline unit): the
	// iso-area MPU configuration has 497/512 of the arrays, so each array
	// shoulders ~3% more work. MaxSimVRFs=8 keeps the functional part
	// small while the fractional overflow factor carries the timing.
	n := spec.BaselineUnits * spec.Lanes * 448
	mpu, err := Run(k, RunConfig{Spec: spec, Mode: machine.ModeMPU, TotalElements: n, Seed: 4, MaxSimVRFs: 8})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(k, RunConfig{Spec: spec, Mode: machine.ModeBaseline, TotalElements: n, Seed: 4, MaxSimVRFs: 8})
	if err != nil {
		t.Fatal(err)
	}
	ratio := mpu.Seconds / base.Seconds
	if ratio < 1.005 || ratio > 1.08 {
		t.Fatalf("iso-area slowdown = %.3f, want a few percent above 1 (capacity derate)", ratio)
	}
}

// TestDCacheCapacityOverflow: a working set beyond 0.2 GB forces external
// streaming passes on Duality Cache.
func TestDCacheCapacityOverflow(t *testing.T) {
	spec := backends.DualityCache()
	k := ByName("vecadd")
	onChip := spec.MPUs * spec.VRFsPerMPU() * spec.Lanes
	res, err := Run(k, RunConfig{Spec: spec, Mode: machine.ModeMPU, TotalElements: onChip * 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow <= 1 {
		t.Fatalf("overflow = %v, want > 1 for a 4× working set", res.Overflow)
	}
	fit, err := Run(k, RunConfig{Spec: spec, Mode: machine.ModeMPU, TotalElements: onChip / 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Overflow != 1 {
		t.Fatalf("fitting working set reported overflow %v", fit.Overflow)
	}
	if res.Seconds < 4*fit.Seconds {
		t.Fatalf("overflowing run (%.3g s) not ≳4× the fitting run (%.3g s)", res.Seconds, fit.Seconds)
	}
}

func TestComputeScaleInflatesStencilBaseline(t *testing.T) {
	spec := backends.RACER()
	k := ByName("conv1d3")
	n := spec.BaselineUnits * spec.Lanes
	plain, err := Run(k, RunConfig{Spec: spec, Mode: machine.ModeBaseline, TotalElements: n, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := Run(k, RunConfig{Spec: spec, Mode: machine.ModeBaseline, TotalElements: n, Seed: 6, ComputeScale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if inflated.Seconds < 3*plain.Seconds {
		t.Fatalf("Toeplitz inflation: %.3g vs %.3g s", inflated.Seconds, plain.Seconds)
	}
}

func TestGPURunProfiles(t *testing.T) {
	gpu := gpumodel.RTX4090()
	for _, k := range All() {
		res, err := GPURun(k, gpu, 1<<22)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if res.Seconds <= 0 || res.Joules <= 0 {
			t.Fatalf("%s: implausible GPU cost", k.Name)
		}
	}
	// Bitwise elementwise kernels must be memory/transfer-bound, not
	// compute-bound.
	res, _ := GPURun(ByName("vecand"), gpu, 1<<24)
	if !res.MemBound {
		t.Error("vecand not memory-bound on the GPU model")
	}
}

func TestRunConfigErrors(t *testing.T) {
	k := ByName("vecadd")
	if _, err := Run(k, RunConfig{Spec: backends.RACER(), TotalElements: 0}); err == nil {
		t.Error("zero elements accepted")
	}
}

func TestMaxSimVRFsCap(t *testing.T) {
	spec := backends.RACER()
	k := ByName("vecadd")
	res, err := Run(k, RunConfig{
		Spec: spec, Mode: machine.ModeMPU,
		TotalElements: spec.MPUs * spec.Lanes * 16,
		MaxSimVRFs:    4, Seed: 7, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimElements > 4*spec.Lanes {
		t.Fatalf("simulated %d elements despite 4-VRF cap", res.SimElements)
	}
	if res.Overflow != 4 {
		t.Fatalf("overflow = %v, want 4", res.Overflow)
	}
}
