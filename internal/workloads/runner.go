package workloads

import (
	"fmt"
	"math/rand"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/ezpim"
	"mpu/internal/gpumodel"
	"mpu/internal/isa"
	"mpu/internal/machine"
)

// The chip executes kernels SPMD: every MPU (or, for Baseline, every
// equivalent datapath unit) runs the same program on its share of the data.
// The runner therefore simulates ONE MPU's share functionally and in time —
// the chip makespan equals the per-MPU makespan — and scales energy to the
// full chip. Host-CPU costs are charged once per chip (the Baseline host
// broadcasts control decisions chip-wide). Working sets beyond one MPU's
// VRF capacity execute in passes, with the spilled data streamed from
// external memory (this is what throttles Duality Cache's 0.2 GB chip).

// External-memory streaming parameters for capacity overflow.
const (
	extMemGBs       = 50.0
	extMemPJPerByte = 20.0
)

// RunConfig configures one kernel execution.
type RunConfig struct {
	Spec          *backends.Spec
	Mode          machine.Mode
	TotalElements int
	Seed          int64

	// Check verifies every simulated lane against the scalar reference.
	Check bool

	// ComputeScale forwards to machine.Config (Baseline stencil Toeplitz
	// inflation).
	ComputeScale float64

	// ActiveVRFsOverride forwards to machine.Config (thermal ablation).
	ActiveVRFsOverride int

	// MaxSimVRFs caps the functionally simulated VRFs (testing knob);
	// 0 means the full per-MPU VRF count.
	MaxSimVRFs int

	// RecipeCache overrides the decode model (ablations); zero value means
	// the default configuration.
	RecipeCache controlpath.RecipeCacheConfig

	// NoTrace forwards to machine.Config: disable the compile-once/
	// replay-many trace engine and interpret every scheduling round.
	NoTrace bool

	// NoJIT forwards to machine.Config: keep the trace engine but replay
	// step-interpreted instead of through compiled closure chains.
	NoJIT bool

	// Workers forwards to machine.Config: scheduler goroutines executing
	// cores concurrently between communication points (0 = one per CPU,
	// 1 = sequential). Kernel runs simulate a single MPU, so this only
	// matters for callers that raise NumMPUs; it is plumbed so sweeps can
	// hand machines their share of the CPU budget uniformly.
	Workers int
}

// Result is one kernel execution on one configuration.
type Result struct {
	Kernel  string
	Config  string
	Stats   *machine.Stats
	Seconds float64 // chip makespan including overflow passes and streaming
	Joules  float64 // chip energy

	PerMPUElements int
	SimElements    int
	VRFs           int
	Overflow       float64 // energy scale: total VRFs / simulated VRFs
	RoundScale     float64 // time scale: real scheduler rounds / simulated
	CheckedLanes   int
}

// BuildProgram assembles kernel k's SPMD binary over simVRFs register files
// laid out round-robin across spec's RF holders, returning the program and
// the VRF addresses it activates. Run uses it internally; tools (the lint
// sweep, disassembly dumps) can call it without simulating anything.
func BuildProgram(k *Kernel, spec *backends.Spec, simVRFs int) (isa.Program, []controlpath.VRFAddr, error) {
	if simVRFs <= 0 {
		simVRFs = 1
	}
	addrs := make([]controlpath.VRFAddr, simVRFs)
	for v := range addrs {
		addrs[v] = controlpath.VRFAddr{
			RFH: uint8(v % spec.RFHsPerMPU),
			VRF: uint8(v / spec.RFHsPerMPU),
		}
	}
	b := ezpim.NewBuilder()
	if k.Subs != nil {
		k.Subs(b)
	}
	b.Ensemble(addrs, func() { k.Emit(b) })
	prog, err := b.Program()
	if err != nil {
		return nil, nil, fmt.Errorf("workloads: %s: %w", k.Name, err)
	}
	return prog, addrs, nil
}

// MachineConfigFor returns the machine configuration Run would build for
// cfg. Pool owners (internal/serve) construct warm machines with it once at
// startup and then feed them to RunOn per request.
func MachineConfigFor(cfg RunConfig) machine.Config {
	return machine.Config{
		Spec:               cfg.Spec,
		Mode:               cfg.Mode,
		NumMPUs:            1,
		ComputeScale:       cfg.ComputeScale,
		ActiveVRFsOverride: cfg.ActiveVRFsOverride,
		Recipe:             cfg.RecipeCache,
		NoTrace:            cfg.NoTrace,
		NoJIT:              cfg.NoJIT,
		Workers:            cfg.Workers,
	}
}

// Run executes kernel k under cfg on a machine built for the occasion.
func Run(k *Kernel, cfg RunConfig) (*Result, error) {
	m, err := machine.New(MachineConfigFor(cfg))
	if err != nil {
		return nil, err
	}
	return RunOn(m, k, cfg)
}

// Prepared is a kernel run that has been loaded onto a machine but not yet
// executed: program assembled, inputs written, and the scaling factors that
// turn machine stats into chip-level results captured. It exists so callers
// that preempt runs (internal/serve) can hold the run's accounting context
// across an arbitrary number of Machine.Run calls, snapshots, and restores:
// PrepareOn once, Run (possibly many times, possibly on a machine restored
// from a snapshot — update Machine to point at it), then Finish exactly
// once with the final stats.
type Prepared struct {
	// Machine executes the run. Callers that restore a snapshot into a
	// different machine must repoint this before calling Finish, which
	// reads output vectors back for checking.
	Machine *machine.Machine

	k      *Kernel
	cfg    RunConfig
	addrs  []controlpath.VRFAddr
	inputs [][]uint64

	units      int
	share      int
	vrfsNeeded int
	simVRFs    int
	simElems   int
	overflow   float64
	roundScale float64
}

// RunOn executes kernel k under cfg on an existing machine, Resetting it
// first so a warm-pool run is byte-identical to a fresh-machine run. The
// machine must have been built with MachineConfigFor (or an equivalent
// spec/mode pair); mismatches are rejected rather than silently simulating
// the wrong chip.
func RunOn(m *machine.Machine, k *Kernel, cfg RunConfig) (*Result, error) {
	p, err := PrepareOn(m, k, cfg)
	if err != nil {
		return nil, err
	}
	run, err := p.Machine.Run()
	if err != nil {
		return nil, fmt.Errorf("workloads: %s on %s/%s: %w", k.Name, cfg.Spec.Name, cfg.Mode, err)
	}
	return p.Finish(run)
}

// PrepareOn loads kernel k under cfg onto m — Reset, program load, input
// vectors — and returns the accounting context Finish needs. It performs
// every pre-run step of RunOn and none of the post-run ones.
func PrepareOn(m *machine.Machine, k *Kernel, cfg RunConfig) (*Prepared, error) {
	if cfg.TotalElements <= 0 {
		return nil, fmt.Errorf("workloads: non-positive element count")
	}
	spec := cfg.Spec
	if m.Spec().Name != spec.Name || m.Mode() != cfg.Mode {
		return nil, fmt.Errorf("workloads: machine built for %s/%s cannot serve %s/%s",
			m.Spec().Name, m.Mode(), spec.Name, cfg.Mode)
	}
	units := spec.MPUs
	if cfg.Mode == machine.ModeBaseline {
		units = spec.BaselineUnits
	}
	share := (cfg.TotalElements + units - 1) / units
	vrfsNeeded := (share + spec.Lanes - 1) / spec.Lanes
	if vrfsNeeded == 0 {
		vrfsNeeded = 1
	}
	capVRFs := spec.VRFsPerMPU()
	if cfg.MaxSimVRFs > 0 && cfg.MaxSimVRFs < capVRFs {
		capVRFs = cfg.MaxSimVRFs
	}
	simVRFs := vrfsNeeded
	if simVRFs > capVRFs {
		simVRFs = capVRFs
	}
	// Energy scales with total array-work (VRF count); time scales with the
	// scheduler's activation rounds, which depend on the thermal limit:
	// RACER's 1-active-VRF clusters serialize, while MIMDRAM and Duality
	// Cache activate everything at once (§VI-C).
	overflow := float64(vrfsNeeded) / float64(simVRFs)
	limit := spec.ActiveVRFsPerRFH
	if cfg.ActiveVRFsOverride > 0 {
		limit = cfg.ActiveVRFsOverride
	}
	rounds := func(vrfs int) int {
		perRFH := (vrfs + spec.RFHsPerMPU - 1) / spec.RFHsPerMPU
		return (perRFH + limit - 1) / limit
	}
	roundScale := float64(rounds(vrfsNeeded)) / float64(rounds(simVRFs))
	simElems := simVRFs * spec.Lanes
	if simElems > share {
		simElems = share
	}

	// Build the SPMD program.
	prog, addrs, err := BuildProgram(k, spec, simVRFs)
	if err != nil {
		return nil, err
	}

	m.Reset()
	if err := m.LoadAll(prog); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	inputs := k.Gen(rng, simElems)
	if len(inputs) != k.Inputs {
		return nil, fmt.Errorf("workloads: %s: generator produced %d registers, want %d", k.Name, len(inputs), k.Inputs)
	}
	for reg, vals := range inputs {
		for v := 0; v < simVRFs; v++ {
			lo := v * spec.Lanes
			if lo >= len(vals) {
				break
			}
			hi := lo + spec.Lanes
			if hi > len(vals) {
				hi = len(vals)
			}
			if err := m.WriteVector(0, addrs[v], reg, vals[lo:hi]); err != nil {
				return nil, err
			}
		}
	}

	return &Prepared{
		Machine:    m,
		k:          k,
		cfg:        cfg,
		addrs:      addrs,
		inputs:     inputs,
		units:      units,
		share:      share,
		vrfsNeeded: vrfsNeeded,
		simVRFs:    simVRFs,
		simElems:   simElems,
		overflow:   overflow,
		roundScale: roundScale,
	}, nil
}

// Finish turns the stats of a completed run into a chip-level Result —
// output checking, round/overflow scaling, external-memory streaming, and
// energy totals. run must be the stats Machine.Run returned on completion
// (not a preempted intermediate).
func (p *Prepared) Finish(run *machine.Stats) (*Result, error) {
	k, cfg, spec, m := p.k, p.cfg, p.cfg.Spec, p.Machine
	units, simVRFs, simElems := p.units, p.simVRFs, p.simElems
	share, vrfsNeeded := p.share, p.vrfsNeeded
	overflow, roundScale := p.overflow, p.roundScale
	// Run returns a pointer into the machine; a pooled machine's next request
	// would overwrite it, so the Result carries a private copy. (Each Run
	// rebuilds PerMPUCycles from nil, so the shallow copy shares nothing the
	// machine will mutate.)
	st := new(machine.Stats)
	*st = *run

	checked := 0
	if cfg.Check {
		lane := make([]uint64, k.Inputs)
		for v := 0; v < simVRFs; v++ {
			out, err := m.ReadVector(0, p.addrs[v], k.Out)
			if err != nil {
				return nil, err
			}
			for l := 0; l < spec.Lanes; l++ {
				idx := v*spec.Lanes + l
				if idx >= simElems {
					break
				}
				for r := range lane {
					lane[r] = p.inputs[r][idx]
				}
				want := k.Ref(lane)
				if out[l] != want {
					return nil, fmt.Errorf("workloads: %s on %s/%s: element %d: got %#x, want %#x",
						k.Name, spec.Name, cfg.Mode, idx, out[l], want)
				}
				checked++
			}
		}
	}

	// Replay rounds re-run the ensemble body but pay decode stalls only
	// once (the recipe table stays warm), so scale steady-state cycles by
	// the round factor and add the one-time stalls back.
	steadyCycles := float64(st.Cycles - st.DecodeStalls)
	seconds := (steadyCycles*roundScale + float64(st.DecodeStalls)) / (spec.ClockGHz * 1e9)
	// External streaming applies only to data beyond the MPU's real VRF
	// capacity — not beyond the (smaller) functional-simulation cap, which
	// is a testing knob and only scales time through overflow.
	var streamSec, streamPJ float64
	if spill := vrfsNeeded - spec.VRFsPerMPU(); spill > 0 {
		spillBytes := float64(spill) * float64(spec.Lanes) * 8 *
			float64(k.Inputs+1) * float64(units)
		streamSec = spillBytes / (extMemGBs * 1e9)
		streamPJ = spillBytes * extMemPJPerByte
	}
	seconds += streamSec

	// Chip-side energies scale with total array-work (units × overflow);
	// the single host's energy scales with real time (roundScale).
	host := st.HostEnergyPJ
	joules := ((st.TotalEnergyPJ()-host)*float64(units)*overflow +
		host*roundScale + streamPJ) * 1e-12

	return &Result{
		Kernel:         k.Name,
		Config:         fmt.Sprintf("%s:%s", cfg.Mode, spec.Name),
		Stats:          st,
		Seconds:        seconds,
		Joules:         joules,
		PerMPUElements: share,
		SimElements:    simElems,
		VRFs:           vrfsNeeded,
		Overflow:       overflow,
		RoundScale:     roundScale,
		CheckedLanes:   checked,
	}, nil
}

// GPURun evaluates the kernel on the analytical GPU model.
func GPURun(k *Kernel, m *gpumodel.Model, totalElements int) (gpumodel.Result, error) {
	return m.Run(gpumodel.Profile{
		Name:            k.Name,
		Elements:        totalElements,
		OpsPerElement:   k.GPU.Ops,
		BytesPerElement: k.GPU.Bytes,
		Passes:          k.GPU.Passes,
		Divergence:      k.GPU.Divergence,
		HostBytes:       float64(totalElements) * 8 * float64(k.Inputs+1),
	})
}
