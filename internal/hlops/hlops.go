// Package hlops is the meta-ISA layer sketched in §IX: high-level,
// tensor-style operations ("encode matrix multiply operations as multiply
// and accumulate micro-ops") compiled down to MPU programs. A Graph records
// operations over batched operands — each value is one vector register
// replicated across a set of VRFs, holding VRFs×lanes elements — and
// Compile lowers them through the ezpim builder: consecutive elementwise
// operations fuse into one compute ensemble, and cross-VRF reductions expand
// into the DTC tree-reduce collective.
//
// The register allocator is linear with explicit Free; graphs needing more
// than the architectural register file fail at Compile with a clear error,
// mirroring how a real toolchain for the MPU would spill (spilling is left
// as future work, as in the paper).
package hlops

import (
	"fmt"

	"mpu/internal/controlpath"
	"mpu/internal/ezpim"
	"mpu/internal/isa"
)

// Value is a handle to one graph operand (a vector register across the
// graph's VRFs).
type Value struct {
	reg  int
	g    *Graph
	dead bool
}

// Reg exposes the architectural register backing the value (for data
// loading and readback).
func (v Value) Reg() int { return v.reg }

type opKind int

const (
	opElem opKind = iota // one or more datapath instructions
	opReduce
)

type op struct {
	kind  opKind
	emit  func(b *ezpim.Builder) // elementwise
	reg   int                    // reduce operand
	tmp   int                    // reduce staging
	width int                    // reduce participant count
}

// Graph records meta-ISA operations for one VRF set.
type Graph struct {
	addrs   []controlpath.VRFAddr
	ops     []op
	nextReg int
	free    []int
	err     error
}

// NewGraph starts a graph over the given VRFs. For reductions the VRFs must
// occupy distinct RF holders with a uniform VRF index and have a
// power-of-two count; elementwise-only graphs have no layout constraints.
func NewGraph(addrs []controlpath.VRFAddr) *Graph {
	return &Graph{addrs: addrs}
}

func (g *Graph) fail(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf("hlops: "+format, args...)
	}
}

// alloc reserves one register.
func (g *Graph) alloc() int {
	if n := len(g.free); n > 0 {
		r := g.free[n-1]
		g.free = g.free[:n-1]
		return r
	}
	r := g.nextReg
	if r >= ezpim.UserRegs-2 { // keep two registers for reduce staging
		g.fail("register file exhausted (%d live values); Free dead values", r)
		return 0
	}
	g.nextReg = r + 1
	return r
}

// Input binds a value to an externally loaded register. Inputs must be
// declared before any computed value so the allocator does not reuse their
// registers.
func (g *Graph) Input(reg int) Value {
	if reg < 0 || reg >= ezpim.UserRegs {
		g.fail("input register r%d out of user range", reg)
		return Value{g: g}
	}
	if reg >= g.nextReg {
		g.nextReg = reg + 1
	}
	return Value{reg: reg, g: g}
}

// Free returns a value's register to the allocator; using the value
// afterwards is an error.
func (g *Graph) Free(v *Value) {
	if v.dead {
		g.fail("double Free of r%d", v.reg)
		return
	}
	v.dead = true
	g.free = append(g.free, v.reg)
}

func (g *Graph) use(vs ...Value) bool {
	for _, v := range vs {
		if v.g != g {
			g.fail("value from a different graph")
			return false
		}
		if v.dead {
			g.fail("use of freed value r%d", v.reg)
			return false
		}
	}
	return true
}

func (g *Graph) binary(mk func(a, b, c int) isa.Instr, a, b Value) Value {
	if !g.use(a, b) {
		return Value{g: g}
	}
	out := Value{reg: g.alloc(), g: g}
	in := mk(a.reg, b.reg, out.reg)
	g.ops = append(g.ops, op{kind: opElem, emit: func(bl *ezpim.Builder) { bl.Op(in) }})
	return out
}

func (g *Graph) unary(mk func(a, c int) isa.Instr, a Value) Value {
	if !g.use(a) {
		return Value{g: g}
	}
	out := Value{reg: g.alloc(), g: g}
	in := mk(a.reg, out.reg)
	g.ops = append(g.ops, op{kind: opElem, emit: func(bl *ezpim.Builder) { bl.Op(in) }})
	return out
}

// Elementwise operations.

// Add returns a + b.
func (g *Graph) Add(a, b Value) Value { return g.binary(isa.Add, a, b) }

// Sub returns a - b.
func (g *Graph) Sub(a, b Value) Value { return g.binary(isa.Sub, a, b) }

// Mul returns a * b.
func (g *Graph) Mul(a, b Value) Value { return g.binary(isa.Mul, a, b) }

// Div returns a / b (unsigned).
func (g *Graph) Div(a, b Value) Value { return g.binary(isa.QDiv, a, b) }

// Max returns max(a, b) (signed).
func (g *Graph) Max(a, b Value) Value { return g.binary(isa.MaxI, a, b) }

// Min returns min(a, b) (signed).
func (g *Graph) Min(a, b Value) Value { return g.binary(isa.MinI, a, b) }

// And returns a & b.
func (g *Graph) And(a, b Value) Value { return g.binary(isa.And, a, b) }

// Xor returns a ^ b.
func (g *Graph) Xor(a, b Value) Value { return g.binary(isa.Xor, a, b) }

// Relu returns max(a, 0).
func (g *Graph) Relu(a Value) Value { return g.unary(isa.Relu, a) }

// Popc returns popcount(a).
func (g *Graph) Popc(a Value) Value { return g.unary(isa.Popc, a) }

// Not returns ^a.
func (g *Graph) Not(a Value) Value { return g.unary(isa.Inv, a) }

// Const returns a value filled with the constant c in every lane.
func (g *Graph) Const(c uint64) Value {
	out := Value{reg: g.alloc(), g: g}
	g.ops = append(g.ops, op{kind: opElem, emit: func(bl *ezpim.Builder) { bl.Const(out.reg, c) }})
	return out
}

// MulAcc computes acc += a*b in place and returns acc.
func (g *Graph) MulAcc(acc, a, b Value) Value {
	if !g.use(acc, a, b) {
		return Value{g: g}
	}
	in := isa.Mac(a.reg, b.reg, acc.reg)
	g.ops = append(g.ops, op{kind: opElem, emit: func(bl *ezpim.Builder) { bl.Op(in) }})
	return acc
}

// SumReduce folds a across the graph's VRFs with the DTC tree collective:
// after execution, VRF addrs[0] holds the lane-wise sum over all VRFs. The
// value's register is reused for the result.
func (g *Graph) SumReduce(a Value) Value {
	if !g.use(a) {
		return Value{g: g}
	}
	n := len(g.addrs)
	if n == 0 || n&(n-1) != 0 {
		g.fail("SumReduce needs a power-of-two VRF count, got %d", n)
		return Value{g: g}
	}
	tmp := g.alloc()
	g.ops = append(g.ops, op{kind: opReduce, reg: a.reg, tmp: tmp, width: n})
	g.free = append(g.free, tmp)
	return a
}

// Dot returns the lane-wise dot product of a and b across the graph's VRFs:
// per-VRF products followed by a tree reduction into addrs[0].
func (g *Graph) Dot(a, b Value) Value {
	return g.SumReduce(g.Mul(a, b))
}

// Compile lowers the graph: runs of elementwise ops fuse into single
// compute ensembles, separated by reduce collectives.
func (g *Graph) Compile() (isa.Program, error) {
	if g.err != nil {
		return nil, g.err
	}
	if len(g.addrs) == 0 {
		return nil, fmt.Errorf("hlops: graph has no VRFs")
	}
	if len(g.ops) == 0 {
		return nil, fmt.Errorf("hlops: graph has no operations")
	}
	b := ezpim.NewBuilder()
	i := 0
	for i < len(g.ops) {
		if g.ops[i].kind == opReduce {
			o := g.ops[i]
			b.ReduceAdd(g.addrs, o.reg, o.tmp)
			i++
			continue
		}
		j := i
		for j < len(g.ops) && g.ops[j].kind == opElem {
			j++
		}
		segment := g.ops[i:j]
		b.Ensemble(g.addrs, func() {
			for _, o := range segment {
				o.emit(b)
			}
		})
		i = j
	}
	return b.Program()
}
