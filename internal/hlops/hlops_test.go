package hlops

import (
	"math/rand"
	"testing"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/isa"
	"mpu/internal/machine"
)

func rfhAddrs(n int) []controlpath.VRFAddr {
	addrs := make([]controlpath.VRFAddr, n)
	for i := range addrs {
		addrs[i] = controlpath.VRFAddr{RFH: uint8(i), VRF: 0}
	}
	return addrs
}

func runGraph(t *testing.T, prog isa.Program, addrs []controlpath.VRFAddr,
	load map[int][][]uint64) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.Config{Spec: backends.RACER(), NumMPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	for reg, perVRF := range load {
		for v, vals := range perVRF {
			if err := m.WriteVector(0, addrs[v], reg, vals); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestElementwiseGraph(t *testing.T) {
	addrs := rfhAddrs(2)
	g := NewGraph(addrs)
	x := g.Input(0)
	y := g.Input(1)
	z := g.Add(x, y)         // r2
	w := g.Mul(z, z)         // r3
	r := g.Relu(g.Sub(x, y)) // r4 (sub), r5 (relu)... allocation order
	prog, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	lanes := backends.RACER().Lanes
	xv := [][]uint64{make([]uint64, lanes), make([]uint64, lanes)}
	yv := [][]uint64{make([]uint64, lanes), make([]uint64, lanes)}
	rng := rand.New(rand.NewSource(4))
	for v := 0; v < 2; v++ {
		for l := 0; l < lanes; l++ {
			xv[v][l] = uint64(rng.Intn(1000))
			yv[v][l] = uint64(rng.Intn(1000))
		}
	}
	m := runGraph(t, prog, addrs, map[int][][]uint64{0: xv, 1: yv})
	for v := 0; v < 2; v++ {
		gotW, _ := m.ReadVector(0, addrs[v], w.Reg())
		gotR, _ := m.ReadVector(0, addrs[v], r.Reg())
		for l := 0; l < lanes; l++ {
			s := xv[v][l] + yv[v][l]
			if gotW[l] != s*s {
				t.Fatalf("vrf %d lane %d: (x+y)² = %d, want %d", v, l, gotW[l], s*s)
			}
			d := xv[v][l] - yv[v][l]
			if int64(d) < 0 {
				d = 0
			}
			if gotR[l] != d {
				t.Fatalf("vrf %d lane %d: relu(x−y) = %d, want %d", v, l, gotR[l], d)
			}
		}
	}
}

func TestDotReduce(t *testing.T) {
	const n = 4
	addrs := rfhAddrs(n)
	g := NewGraph(addrs)
	x := g.Input(0)
	y := g.Input(1)
	d := g.Dot(x, y)
	prog, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	lanes := backends.RACER().Lanes
	xv := make([][]uint64, n)
	yv := make([][]uint64, n)
	want := make([]uint64, lanes)
	rng := rand.New(rand.NewSource(6))
	for v := 0; v < n; v++ {
		xv[v] = make([]uint64, lanes)
		yv[v] = make([]uint64, lanes)
		for l := 0; l < lanes; l++ {
			xv[v][l] = uint64(rng.Intn(500))
			yv[v][l] = uint64(rng.Intn(500))
			want[l] += xv[v][l] * yv[v][l]
		}
	}
	m := runGraph(t, prog, addrs, map[int][][]uint64{0: xv, 1: yv})
	got, _ := m.ReadVector(0, addrs[0], d.Reg())
	for l := range want {
		if got[l] != want[l] {
			t.Fatalf("lane %d: dot = %d, want %d", l, got[l], want[l])
		}
	}
}

func TestGraphWithConstAndMulAcc(t *testing.T) {
	addrs := rfhAddrs(1)
	g := NewGraph(addrs)
	x := g.Input(0)
	three := g.Const(3)
	acc := g.Const(100)
	acc = g.MulAcc(acc, x, three) // 100 + 3x
	prog, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	m := runGraph(t, prog, addrs, map[int][][]uint64{0: {{7, 0, 50}}})
	got, _ := m.ReadVector(0, addrs[0], acc.Reg())
	for l, x := range []uint64{7, 0, 50} {
		if got[l] != 100+3*x {
			t.Fatalf("lane %d: %d, want %d", l, got[l], 100+3*x)
		}
	}
}

func TestSegmentFusion(t *testing.T) {
	// Elementwise ops around a reduction must form exactly three segments:
	// ensemble, reduce (transfers + ensembles), ensemble.
	addrs := rfhAddrs(2)
	g := NewGraph(addrs)
	x := g.Input(0)
	s := g.Add(x, x)
	s = g.SumReduce(s)
	_ = g.Add(s, s)
	prog, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	moves := 0
	for _, in := range prog {
		if in.Op == isa.MOVE {
			moves++
		}
	}
	if moves != 1 { // log2(2) reduction rounds = 1 transfer ensemble
		t.Fatalf("MOVE headers = %d, want 1", moves)
	}
}

func TestAllocatorFreeAndReuse(t *testing.T) {
	g := NewGraph(rfhAddrs(1))
	x := g.Input(0)
	t1 := g.Add(x, x)
	r1 := t1.Reg()
	g.Free(&t1)
	t2 := g.Mul(x, x)
	if t2.Reg() != r1 {
		t.Fatalf("freed register not reused: got r%d, want r%d", t2.Reg(), r1)
	}
	if _, err := g.Compile(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphErrors(t *testing.T) {
	// Register exhaustion.
	g := NewGraph(rfhAddrs(1))
	x := g.Input(0)
	for i := 0; i < 60; i++ {
		x = g.Add(x, x)
	}
	if _, err := g.Compile(); err == nil {
		t.Error("register exhaustion not reported")
	}

	// Use after free.
	g = NewGraph(rfhAddrs(1))
	v := g.Add(g.Input(0), g.Input(1))
	g.Free(&v)
	g.Add(v, v)
	if _, err := g.Compile(); err == nil {
		t.Error("use-after-free not reported")
	}

	// Double free.
	g = NewGraph(rfhAddrs(1))
	v = g.Add(g.Input(0), g.Input(1))
	g.Free(&v)
	v2 := v
	g.Free(&v2)
	if _, err := g.Compile(); err == nil {
		t.Error("double free not reported")
	}

	// Non-power-of-two reduction.
	g = NewGraph(rfhAddrs(3))
	g.SumReduce(g.Input(0))
	if _, err := g.Compile(); err == nil {
		t.Error("3-way reduction not reported")
	}

	// Cross-graph value.
	g1, g2 := NewGraph(rfhAddrs(1)), NewGraph(rfhAddrs(1))
	a := g1.Input(0)
	g2.Add(a, a)
	if _, err := g2.Compile(); err == nil {
		t.Error("cross-graph value not reported")
	}

	// Empty graph.
	if _, err := NewGraph(rfhAddrs(1)).Compile(); err == nil {
		t.Error("empty graph not reported")
	}
	// Bad input register.
	g = NewGraph(rfhAddrs(1))
	g.Input(99)
	g.Add(g.Input(0), g.Input(1))
	if _, err := g.Compile(); err == nil {
		t.Error("out-of-range input not reported")
	}
}
