// Package isa defines the MPU instruction set architecture of Table II:
// 32-bit instructions over 64-bit data, spanning ensemble deployment,
// inter-MPU communication, control flow, arithmetic, comparison, Boolean
// and data-movement instructions. The package provides typed instruction
// constructors, binary encode/decode, and a textual assembler and
// disassembler used by ezpim and the workloads.
package isa

import "fmt"

// Op is an MPU opcode.
type Op uint8

// Opcode space, grouped as in Table II of the paper.
const (
	// Ensemble deployment.
	NOP Op = iota
	COMPUTE
	COMPUTEDONE
	MPUSYNC
	MOVE
	MOVEDONE

	// Inter-MPU communication.
	SEND
	SENDDONE
	RECV

	// Control flow.
	GETMASK
	SETMASK
	UNMASK
	JUMPCOND
	JUMP
	RETURN

	// Arithmetic.
	ADD
	SUB
	INC
	INIT0
	INIT1
	MUL
	MAC
	QDIV
	QRDIV
	RDIV
	POPC
	RELU

	// Comparison & search.
	CMPEQ
	CMPGT
	CMPLT
	FUZZY
	CAS
	MUX
	MAX
	MIN

	// Boolean & bit manipulation.
	AND
	NAND
	NOR
	INV
	OR
	XOR
	XNOR
	BFLIP
	LSHIFT

	// Data movement.
	MEMCPY
	MOV

	numOps
)

// NumOps is the count of defined opcodes (useful for table sizing).
const NumOps = int(numOps)

// WordBits is the architectural data width (Table II: 64-bit data).
const WordBits = 64

// NumRegs is the number of vector registers addressable within a VRF.
const NumRegs = 64

// RegCond is the pseudo-register name accepted by SETMASK to select the
// conditional register as the mask source (§VI-B: "SETMASK can retrieve a
// bitmask from either the conditional register or one bit of data from each
// element in a vector register").
const RegCond = 63

// MaxVRFsPerRFH bounds VRF ids; it matches the 512-bit activation board of
// Table III divided across 8 RF holders.
const MaxVRFsPerRFH = 64

// MaxRFHsPerMPU bounds RFH ids (Table III: 8 RFHs per MPU).
const MaxRFHsPerMPU = 8

var opNames = [numOps]string{
	NOP:         "NOP",
	COMPUTE:     "COMPUTE",
	COMPUTEDONE: "COMPUTE_DONE",
	MPUSYNC:     "MPU_SYNC",
	MOVE:        "MOVE",
	MOVEDONE:    "MOVE_DONE",
	SEND:        "SEND",
	SENDDONE:    "SEND_DONE",
	RECV:        "RECV",
	GETMASK:     "GETMASK",
	SETMASK:     "SETMASK",
	UNMASK:      "UNMASK",
	JUMPCOND:    "JUMP_COND",
	JUMP:        "JUMP",
	RETURN:      "RETURN",
	ADD:         "ADD",
	SUB:         "SUB",
	INC:         "INC",
	INIT0:       "INIT0",
	INIT1:       "INIT1",
	MUL:         "MUL",
	MAC:         "MAC",
	QDIV:        "QDIV",
	QRDIV:       "QRDIV",
	RDIV:        "RDIV",
	POPC:        "POPC",
	RELU:        "RELU",
	CMPEQ:       "CMPEQ",
	CMPGT:       "CMPGT",
	CMPLT:       "CMPLT",
	FUZZY:       "FUZZY",
	CAS:         "CAS",
	MUX:         "MUX",
	MAX:         "MAX",
	MIN:         "MIN",
	AND:         "AND",
	NAND:        "NAND",
	NOR:         "NOR",
	INV:         "INV",
	OR:          "OR",
	XOR:         "XOR",
	XNOR:        "XNOR",
	BFLIP:       "BFLIP",
	LSHIFT:      "LSHIFT",
	MEMCPY:      "MEMCPY",
	MOV:         "MOV",
}

// String returns the assembly mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("OP(%d)", uint8(op))
}

// Class describes an opcode's position in the Table II grouping.
type Class uint8

// Instruction classes.
const (
	ClassEnsemble Class = iota
	ClassInterMPU
	ClassControl
	ClassArith
	ClassCompare
	ClassBoolean
	ClassData
)

// ClassOf returns the Table II group of op.
func ClassOf(op Op) Class {
	switch {
	case op == NOP:
		return ClassControl
	case op <= MOVEDONE:
		return ClassEnsemble
	case op <= RECV:
		return ClassInterMPU
	case op <= RETURN:
		return ClassControl
	case op <= RELU:
		return ClassArith
	case op <= MIN:
		return ClassCompare
	case op <= LSHIFT:
		return ClassBoolean
	default:
		return ClassData
	}
}

// Instr is one decoded MPU instruction. Field meaning depends on the opcode:
//
//	3-operand arith/bool/compare: A=rs, B=rt, C=rd
//	2-operand (INC, POPC, RELU, INV, BFLIP, LSHIFT, MOV, GETMASK...): A=rs, C=rd
//	COMPUTE:   A=rfh, B=vrf
//	MOVE:      A=rfhSrc, B=rfhDst
//	SEND/RECV: Imm=mpu id
//	JUMP/JUMP_COND: Imm=absolute instruction index (filled by the assembler
//	                from labels)
//	MEMCPY:    A=vrfSrc, B=rs, C=vrfDst, D=rd
type Instr struct {
	Op         Op
	A, B, C, D uint8
	Imm        int32
}

// Typed constructors. These are the canonical way to build programs
// programmatically (ezpim's Builder relies on them).

// Compute starts/extends a compute ensemble header by activating vrf of rfh.
func Compute(rfh, vrf int) Instr { return Instr{Op: COMPUTE, A: uint8(rfh), B: uint8(vrf)} }

// ComputeDone ends a compute ensemble.
func ComputeDone() Instr { return Instr{Op: COMPUTEDONE} }

// Sync is the MPU_SYNC fence across deployed ensembles.
func Sync() Instr { return Instr{Op: MPUSYNC} }

// Move starts/extends a transfer ensemble header with an RFH pair.
func Move(rfhSrc, rfhDst int) Instr { return Instr{Op: MOVE, A: uint8(rfhSrc), B: uint8(rfhDst)} }

// MoveDone ends a transfer ensemble.
func MoveDone() Instr { return Instr{Op: MOVEDONE} }

// Send opens an inter-MPU send block targeting MPU dst.
func Send(dst int) Instr { return Instr{Op: SEND, Imm: int32(dst)} }

// SendDone closes an inter-MPU send block.
func SendDone() Instr { return Instr{Op: SENDDONE} }

// Recv services an inter-MPU transfer arriving from MPU src.
func Recv(src int) Instr { return Instr{Op: RECV, Imm: int32(src)} }

// GetMask copies the lane mask into rd (bit 0 of every lane).
func GetMask(rd int) Instr { return Instr{Op: GETMASK, C: uint8(rd)} }

// SetMask loads the mask register from rs (bit 0), or from the conditional
// register when rs == RegCond.
func SetMask(rs int) Instr { return Instr{Op: SETMASK, A: uint8(rs)} }

// Unmask re-enables all lanes.
func Unmask() Instr { return Instr{Op: UNMASK} }

// JumpCond jumps to absolute instruction index target while any lane remains
// enabled in the mask register (§VI-B EFI semantics; see DESIGN.md).
func JumpCond(target int) Instr { return Instr{Op: JUMPCOND, Imm: int32(target)} }

// Jump jumps unconditionally to target, pushing the return address.
func Jump(target int) Instr { return Instr{Op: JUMP, Imm: int32(target)} }

// Return pops the return-address stack.
func Return() Instr { return Instr{Op: RETURN} }

// Nop inserts a bubble.
func Nop() Instr { return Instr{Op: NOP} }

// Three-operand constructors.
func op3(op Op, rs, rt, rd int) Instr { return Instr{Op: op, A: uint8(rs), B: uint8(rt), C: uint8(rd)} }

// Two-operand constructors.
func op2(op Op, rs, rd int) Instr { return Instr{Op: op, A: uint8(rs), C: uint8(rd)} }

// Add returns rd = rs + rt (two's complement).
func Add(rs, rt, rd int) Instr { return op3(ADD, rs, rt, rd) }

// Sub returns rd = rs - rt.
func Sub(rs, rt, rd int) Instr { return op3(SUB, rs, rt, rd) }

// Inc returns rd = rs + 1.
func Inc(rs, rd int) Instr { return op2(INC, rs, rd) }

// Init0 initialises rd with 0.
func Init0(rd int) Instr { return Instr{Op: INIT0, C: uint8(rd)} }

// Init1 initialises rd with 1.
func Init1(rd int) Instr { return Instr{Op: INIT1, C: uint8(rd)} }

// Mul returns rd = rs * rt (8/16/32-bit inputs per Table II; the simulator
// computes the low 64 bits of the product).
func Mul(rs, rt, rd int) Instr { return op3(MUL, rs, rt, rd) }

// Mac returns rd += rs * rt.
func Mac(rs, rt, rd int) Instr { return op3(MAC, rs, rt, rd) }

// QDiv returns rd = rs / rt (quotient; unsigned).
func QDiv(rs, rt, rd int) Instr { return op3(QDIV, rs, rt, rd) }

// QRDiv returns quotient in rd and remainder in rt (overwriting rt, as the
// paper's description notes).
func QRDiv(rs, rt, rd int) Instr { return op3(QRDIV, rs, rt, rd) }

// RDiv returns rd = rs % rt (remainder; unsigned).
func RDiv(rs, rt, rd int) Instr { return op3(RDIV, rs, rt, rd) }

// Popc returns rd = population count of rs.
func Popc(rs, rd int) Instr { return op2(POPC, rs, rd) }

// Relu returns rd = max(rs, 0) treating rs as signed.
func Relu(rs, rd int) Instr { return op2(RELU, rs, rd) }

// CmpEq sets the conditional register to rs == rt per lane.
func CmpEq(rs, rt int) Instr { return Instr{Op: CMPEQ, A: uint8(rs), B: uint8(rt)} }

// CmpGt sets the conditional register to rs > rt per lane (signed).
func CmpGt(rs, rt int) Instr { return Instr{Op: CMPGT, A: uint8(rs), B: uint8(rt)} }

// CmpLt sets the conditional register to rs < rt per lane (signed).
func CmpLt(rs, rt int) Instr { return Instr{Op: CMPLT, A: uint8(rs), B: uint8(rt)} }

// Fuzzy sets the conditional register to rs == rt ignoring bit positions set
// in rd.
func Fuzzy(rs, rt, rd int) Instr { return op3(FUZZY, rs, rt, rd) }

// Cas conditionally swaps rs and rt per lane so that rs <= rt afterwards
// (the compare-and-swap sorting primitive).
func Cas(rs, rt int) Instr { return Instr{Op: CAS, A: uint8(rs), B: uint8(rt)} }

// MuxI blends rs and rt under the bitmask held in rd (Table II: "choose rs
// or rt based on bitmask in rd"): per lane, rd = bit0(rd) != 0 ? rs : rt.
func MuxI(rs, rt, rd int) Instr { return op3(MUX, rs, rt, rd) }

// MaxI returns rd = max(rs, rt) (signed).
func MaxI(rs, rt, rd int) Instr { return op3(MAX, rs, rt, rd) }

// MinI returns rd = min(rs, rt) (signed).
func MinI(rs, rt, rd int) Instr { return op3(MIN, rs, rt, rd) }

// And returns rd = rs & rt.
func And(rs, rt, rd int) Instr { return op3(AND, rs, rt, rd) }

// Nand returns rd = ^(rs & rt).
func Nand(rs, rt, rd int) Instr { return op3(NAND, rs, rt, rd) }

// Nor returns rd = ^(rs | rt).
func Nor(rs, rt, rd int) Instr { return op3(NOR, rs, rt, rd) }

// Inv returns rd = ^rs.
func Inv(rs, rd int) Instr { return op2(INV, rs, rd) }

// OrI returns rd = rs | rt.
func OrI(rs, rt, rd int) Instr { return op3(OR, rs, rt, rd) }

// Xor returns rd = rs ^ rt.
func Xor(rs, rt, rd int) Instr { return op3(XOR, rs, rt, rd) }

// Xnor returns rd = ^(rs ^ rt).
func Xnor(rs, rt, rd int) Instr { return op3(XNOR, rs, rt, rd) }

// BFlip reverses the bit order of rs into rd.
func BFlip(rs, rd int) Instr { return op2(BFLIP, rs, rd) }

// LShift shifts rs left by 1 into rd.
func LShift(rs, rd int) Instr { return op2(LSHIFT, rs, rd) }

// Memcpy copies register rs of the source VRF to register rd of the
// destination VRF for each RFH pair of the enclosing transfer ensemble.
func Memcpy(vrfSrc, rs, vrfDst, rd int) Instr {
	return Instr{Op: MEMCPY, A: uint8(vrfSrc), B: uint8(rs), C: uint8(vrfDst), D: uint8(rd)}
}

// Mov copies register rs to rd within a VRF.
func Mov(rs, rd int) Instr { return op2(MOV, rs, rd) }

// Reads returns the general registers an arithmetic-class instruction reads,
// for dependency bookkeeping in tools. It returns nil for non-datapath ops.
func (in Instr) Reads() []int {
	switch in.Op {
	case ADD, SUB, MUL, QDIV, RDIV, AND, NAND, NOR, OR, XOR, XNOR, MAX, MIN:
		return []int{int(in.A), int(in.B)}
	case MAC:
		return []int{int(in.A), int(in.B), int(in.C)}
	case QRDIV:
		return []int{int(in.A), int(in.B)}
	case INC, POPC, RELU, INV, BFLIP, LSHIFT, MOV:
		return []int{int(in.A)}
	case CMPEQ, CMPGT, CMPLT, CAS:
		return []int{int(in.A), int(in.B)}
	case FUZZY, MUX:
		return []int{int(in.A), int(in.B), int(in.C)}
	case SETMASK:
		if in.A != RegCond {
			return []int{int(in.A)}
		}
	}
	return nil
}

// Writes returns the general registers the instruction writes.
func (in Instr) Writes() []int {
	switch in.Op {
	case ADD, SUB, MUL, MAC, QDIV, RDIV, INC, INIT0, INIT1, POPC, RELU,
		AND, NAND, NOR, OR, XOR, XNOR, INV, BFLIP, LSHIFT, MOV, MAX, MIN,
		MUX, GETMASK:
		return []int{int(in.C)}
	case QRDIV:
		return []int{int(in.C), int(in.B)}
	case CAS:
		return []int{int(in.A), int(in.B)}
	}
	return nil
}

// Validate checks operand ranges for the instruction.
func (in Instr) Validate() error {
	if in.Op >= numOps {
		return fmt.Errorf("isa: unknown opcode %d", in.Op)
	}
	checkReg := func(name string, v uint8) error {
		if v >= NumRegs {
			return fmt.Errorf("isa: %s operand %s=r%d out of range [0,%d)", in.Op, name, v, NumRegs)
		}
		return nil
	}
	switch in.Op {
	case COMPUTE:
		if in.A >= MaxRFHsPerMPU {
			return fmt.Errorf("isa: COMPUTE rfh%d out of range [0,%d)", in.A, MaxRFHsPerMPU)
		}
		if in.B >= MaxVRFsPerRFH {
			return fmt.Errorf("isa: COMPUTE vrf%d out of range [0,%d)", in.B, MaxVRFsPerRFH)
		}
	case MOVE:
		if in.A >= MaxRFHsPerMPU || in.B >= MaxRFHsPerMPU {
			return fmt.Errorf("isa: MOVE rfh%d->rfh%d out of range [0,%d)", in.A, in.B, MaxRFHsPerMPU)
		}
	case SEND, RECV:
		if in.Imm < 0 {
			return fmt.Errorf("isa: %s negative MPU id %d", in.Op, in.Imm)
		}
	case JUMP, JUMPCOND:
		if in.Imm < 0 {
			return fmt.Errorf("isa: %s negative target %d", in.Op, in.Imm)
		}
	case MEMCPY:
		if in.A >= MaxVRFsPerRFH || in.C >= MaxVRFsPerRFH {
			return fmt.Errorf("isa: MEMCPY vrf out of range")
		}
		if err := checkReg("rs", in.B); err != nil {
			return err
		}
		return checkReg("rd", in.D)
	case SETMASK:
		// RegCond (63) is legal as the conditional-register source.
		return checkReg("rs", in.A)
	default:
		for _, r := range in.Reads() {
			if err := checkReg("src", uint8(r)); err != nil {
				return err
			}
		}
		for _, r := range in.Writes() {
			if err := checkReg("dst", uint8(r)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Program is a sequence of MPU instructions (one ISU binary).
type Program []Instr

// Validate checks every instruction and that jump targets stay in range.
func (p Program) Validate() error {
	for i, in := range p {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("instr %d: %w", i, err)
		}
		if in.Op == JUMP || in.Op == JUMPCOND {
			if int(in.Imm) >= len(p) {
				return fmt.Errorf("instr %d: %s target %d beyond program end %d", i, in.Op, in.Imm, len(p))
			}
		}
	}
	return nil
}
