package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary layout of the 32-bit MPU instruction word:
//
//	generic:  op:8 | A:8 | B:8 | C:8
//	imm form: op:8 | imm:24            (SEND, RECV, JUMP, JUMP_COND)
//	memcpy:   op:8 | A:6 | B:6 | C:6 | D:6
//
// The imm form gives a 16M-instruction jump range, far beyond the 2 MB ISU of
// Table III. The MEMCPY form packs four 6-bit operands, matching the 64
// registers per VRF and 64 VRFs per RF holder.

const immMask = 1<<24 - 1

// Encode packs in into its 32-bit binary form.
func Encode(in Instr) uint32 {
	switch in.Op {
	case SEND, RECV, JUMP, JUMPCOND:
		return uint32(in.Op)<<24 | uint32(in.Imm)&immMask
	case MEMCPY:
		return uint32(in.Op)<<24 |
			uint32(in.A&0x3f)<<18 | uint32(in.B&0x3f)<<12 |
			uint32(in.C&0x3f)<<6 | uint32(in.D&0x3f)
	default:
		return uint32(in.Op)<<24 | uint32(in.A)<<16 | uint32(in.B)<<8 | uint32(in.C)
	}
}

// Decode unpacks a 32-bit instruction word.
func Decode(w uint32) (Instr, error) {
	op := Op(w >> 24)
	if op >= numOps {
		return Instr{}, fmt.Errorf("isa: decode: unknown opcode %d", op)
	}
	switch op {
	case SEND, RECV, JUMP, JUMPCOND:
		return Instr{Op: op, Imm: int32(w & immMask)}, nil
	case MEMCPY:
		return Instr{
			Op: op,
			A:  uint8(w >> 18 & 0x3f),
			B:  uint8(w >> 12 & 0x3f),
			C:  uint8(w >> 6 & 0x3f),
			D:  uint8(w & 0x3f),
		}, nil
	default:
		return Instr{Op: op, A: uint8(w >> 16), B: uint8(w >> 8), C: uint8(w)}, nil
	}
}

// EncodeProgram serialises p little-endian, 4 bytes per instruction — the
// format an instruction storage unit (ISU) holds on chip.
func EncodeProgram(p Program) []byte {
	buf := make([]byte, 4*len(p))
	for i, in := range p {
		binary.LittleEndian.PutUint32(buf[4*i:], Encode(in))
	}
	return buf
}

// DecodeProgram parses an ISU image produced by EncodeProgram.
func DecodeProgram(buf []byte) (Program, error) {
	if len(buf)%4 != 0 {
		return nil, fmt.Errorf("isa: binary length %d not a multiple of 4", len(buf))
	}
	p := make(Program, len(buf)/4)
	for i := range p {
		in, err := Decode(binary.LittleEndian.Uint32(buf[4*i:]))
		if err != nil {
			return nil, fmt.Errorf("isa: instr %d: %w", i, err)
		}
		p[i] = in
	}
	return p, nil
}

// BinarySize returns the ISU footprint of p in bytes.
func (p Program) BinarySize() int { return 4 * len(p) }
