package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Analysis is a static summary of an MPU binary — the toolchain-side view a
// compiler or autotuner needs before dispatch.
type Analysis struct {
	Instructions int
	BinaryBytes  int

	ByClass map[Class]int
	ByOp    map[Op]int

	ComputeEnsembles  int
	TransferEnsembles int
	SendBlocks        int
	Recvs             int
	MaxHeaderVRFs     int // largest compute-ensemble header
	MaxBodyLen        int // largest straight-line ensemble body (playback pressure)
	JumpTargets       int
	HasDynamicLoops   bool // any JUMP_COND
	HasSubroutines    bool // any JUMP/RETURN
	VRFsTouched       int  // distinct (rfh, vrf) pairs in COMPUTE headers
}

// Analyze computes the static summary of p.
func Analyze(p Program) Analysis {
	a := Analysis{
		Instructions: len(p),
		BinaryBytes:  p.BinarySize(),
		ByClass:      map[Class]int{},
		ByOp:         map[Op]int{},
	}
	vrfs := map[[2]uint8]bool{}
	targets := map[int32]bool{}
	header := 0
	bodyStart := -1
	for i, in := range p {
		a.ByClass[ClassOf(in.Op)]++
		a.ByOp[in.Op]++
		if header > 0 && in.Op != COMPUTE {
			// The ensemble header just ended; the body starts here.
			if header > a.MaxHeaderVRFs {
				a.MaxHeaderVRFs = header
			}
			header = 0
			bodyStart = i
		}
		switch in.Op {
		case COMPUTE:
			if header == 0 {
				a.ComputeEnsembles++
			}
			header++
			vrfs[[2]uint8{in.A, in.B}] = true
		case COMPUTEDONE:
			if bodyStart >= 0 && i-bodyStart+1 > a.MaxBodyLen {
				a.MaxBodyLen = i - bodyStart + 1
			}
			bodyStart = -1
		case MOVE:
			if i == 0 || p[i-1].Op != MOVE {
				// A MOVE run following a SEND belongs to the send block.
				if i == 0 || p[i-1].Op != SEND {
					a.TransferEnsembles++
				}
			}
		case SEND:
			a.SendBlocks++
		case RECV:
			a.Recvs++
		case JUMPCOND:
			a.HasDynamicLoops = true
			targets[in.Imm] = true
		case JUMP:
			a.HasSubroutines = true
			targets[in.Imm] = true
		case RETURN:
			a.HasSubroutines = true
		}
	}
	a.JumpTargets = len(targets)
	a.VRFsTouched = len(vrfs)
	return a
}

// String renders the analysis as a short report.
func (a Analysis) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d instructions (%d bytes)\n", a.Instructions, a.BinaryBytes)
	fmt.Fprintf(&sb, "ensembles: %d compute (max header %d VRFs, max body %d), %d transfer, %d send, %d recv\n",
		a.ComputeEnsembles, a.MaxHeaderVRFs, a.MaxBodyLen, a.TransferEnsembles, a.SendBlocks, a.Recvs)
	fmt.Fprintf(&sb, "control: dynamic loops=%v subroutines=%v jump targets=%d\n",
		a.HasDynamicLoops, a.HasSubroutines, a.JumpTargets)
	// Deterministic op histogram, densest first.
	type kv struct {
		op Op
		n  int
	}
	var ops []kv
	for op, n := range a.ByOp {
		ops = append(ops, kv{op, n})
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].n != ops[j].n {
			return ops[i].n > ops[j].n
		}
		return ops[i].op < ops[j].op
	})
	sb.WriteString("op histogram:")
	for i, o := range ops {
		if i == 8 {
			fmt.Fprintf(&sb, " … (%d more)", len(ops)-8)
			break
		}
		fmt.Fprintf(&sb, " %s×%d", o.op, o.n)
	}
	sb.WriteByte('\n')
	return sb.String()
}
