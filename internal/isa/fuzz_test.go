package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestAssembleNeverPanics feeds adversarial text to the assembler: it may
// reject, but must never panic.
func TestAssembleNeverPanics(t *testing.T) {
	pieces := []string{
		"ADD", "COMPUTE", "JUMP", "MEMCPY", "SETMASK", "r0", "r63", "r999",
		"rfh0", "vrf77", "mpu1", "cond", ":", "::", "loop:", "//x", ";",
		"\n", "\t", ",", "-1", "0x", "9999999999999999999999", "_", ".",
		"label", "JUMP_COND", "COMPUTE_DONE", "MOVE_DONE", "", " ",
	}
	rng := rand.New(rand.NewSource(77))
	f := func() bool {
		var sb strings.Builder
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			sb.WriteString(pieces[rng.Intn(len(pieces))])
			if rng.Intn(3) == 0 {
				sb.WriteByte(' ')
			}
			if rng.Intn(4) == 0 {
				sb.WriteByte('\n')
			}
		}
		_, _ = Assemble(sb.String()) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanics decodes every possible opcode byte with random
// operand bits.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for i := 0; i < 10000; i++ {
		_, _ = Decode(rng.Uint32())
	}
}

// TestDecodeProgramGarbage parses random byte blobs.
func TestDecodeProgramGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 200; i++ {
		buf := make([]byte, rng.Intn(64)*4)
		rng.Read(buf)
		if p, err := DecodeProgram(buf); err == nil {
			// Whatever decodes must re-encode identically.
			again, err2 := DecodeProgram(EncodeProgram(p))
			if err2 != nil || len(again) != len(p) {
				t.Fatal("decode/encode not stable")
			}
		}
	}
}
