package isa_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mpu/internal/backends"
	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/machine"
)

// TestAssembleNeverPanics feeds adversarial text to the assembler: it may
// reject, but must never panic.
func TestAssembleNeverPanics(t *testing.T) {
	pieces := []string{
		"ADD", "COMPUTE", "JUMP", "MEMCPY", "SETMASK", "r0", "r63", "r999",
		"rfh0", "vrf77", "mpu1", "cond", ":", "::", "loop:", "//x", ";",
		"\n", "\t", ",", "-1", "0x", "9999999999999999999999", "_", ".",
		"label", "JUMP_COND", "COMPUTE_DONE", "MOVE_DONE", "", " ",
	}
	rng := rand.New(rand.NewSource(77))
	f := func() bool {
		var sb strings.Builder
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			sb.WriteString(pieces[rng.Intn(len(pieces))])
			if rng.Intn(3) == 0 {
				sb.WriteByte(' ')
			}
			if rng.Intn(4) == 0 {
				sb.WriteByte('\n')
			}
		}
		_, _ = isa.Assemble(sb.String()) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanics decodes every possible opcode byte with random
// operand bits.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for i := 0; i < 10000; i++ {
		_, _ = isa.Decode(rng.Uint32())
	}
}

// TestDecodeProgramGarbage parses random byte blobs.
func TestDecodeProgramGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 200; i++ {
		buf := make([]byte, rng.Intn(64)*4)
		rng.Read(buf)
		if p, err := isa.DecodeProgram(buf); err == nil {
			// Whatever decodes must re-encode identically.
			again, err2 := isa.DecodeProgram(isa.EncodeProgram(p))
			if err2 != nil || len(again) != len(p) {
				t.Fatal("decode/encode not stable")
			}
		}
	}
}

// --- Lint soundness oracle -------------------------------------------------
//
// The linter promises: a program with no Error findings cannot trip the
// machine's ensemble-structure or capacity guards (machine.ErrEnsembleFault,
// machine.ErrCapacityFault). The fuzz target below holds it to that promise
// with randomly shaped instruction streams. Config-dependent failures —
// deadlock, runaway-loop step limits, return-stack overflow from deep
// recursion, SEND/RECV to an MPU outside the instantiated mesh — are allowed:
// they depend on data and machine sizing, which the linter does not model.

// programFromBytes shapes arbitrary fuzz bytes into a syntactically valid
// program: 5 bytes per instruction (opcode + operands), operands reduced into
// their encodable ranges and jump targets wrapped into the program. Encoding
// validity is the assembler's job; everything beyond it (structure, context,
// capacity) is exactly what the linter must judge.
func programFromBytes(data []byte) isa.Program {
	const maxInstrs = 200
	var p isa.Program
	for len(data) >= 5 && len(p) < maxInstrs {
		op := isa.Op(int(data[0]) % isa.NumOps)
		b1, b2, b3, b4 := data[1], data[2], data[3], data[4]
		data = data[5:]
		var in isa.Instr
		switch op {
		case isa.COMPUTE:
			in = isa.Compute(int(b1)%isa.MaxRFHsPerMPU, int(b2)%isa.MaxVRFsPerRFH)
		case isa.MOVE:
			in = isa.Move(int(b1)%isa.MaxRFHsPerMPU, int(b2)%isa.MaxRFHsPerMPU)
		case isa.MEMCPY:
			in = isa.Memcpy(int(b1)%isa.MaxVRFsPerRFH, int(b2)%isa.NumRegs,
				int(b3)%isa.MaxVRFsPerRFH, int(b4)%isa.NumRegs)
		case isa.SEND, isa.RECV:
			in = isa.Instr{Op: op, Imm: int32(b1 % 2)}
		case isa.JUMP, isa.JUMPCOND:
			in = isa.Instr{Op: op, Imm: int32(b1)} // wrapped into range below
		case isa.SETMASK:
			in = isa.SetMask(int(b1) % isa.NumRegs)
		default:
			in = isa.Instr{Op: op,
				A: uint8(int(b1) % isa.NumRegs),
				B: uint8(int(b2) % isa.NumRegs),
				C: uint8(int(b3) % isa.NumRegs)}
		}
		p = append(p, in)
	}
	for i := range p {
		if p[i].Op == isa.JUMP || p[i].Op == isa.JUMPCOND {
			p[i].Imm = int32(int(p[i].Imm) % len(p))
		}
	}
	return p
}

// soundnessViolation reports a runtime error the linter promised away.
func soundnessViolation(err error) bool {
	return errors.Is(err, machine.ErrEnsembleFault) || errors.Is(err, machine.ErrCapacityFault)
}

// checkLintSoundness lints p against each back end; when the linter passes
// the program, it must execute there without an ensemble or capacity fault.
func checkLintSoundness(t *testing.T, data []byte) {
	t.Helper()
	p := programFromBytes(data)
	for _, spec := range []*backends.Spec{backends.RACER(), backends.MIMDRAM(), backends.DualityCache()} {
		var r *lint.Report
		func() {
			defer func() {
				if e := recover(); e != nil {
					t.Fatalf("lint panicked on %s: %v\nprogram:\n%s", spec.Name, e, isa.Disassemble(p))
				}
			}()
			r = lint.Lint(p, lint.Options{Spec: spec})
		}()
		if !r.Ok() {
			continue
		}
		mpus := 2
		if spec.MPUs < 2 {
			mpus = 1
		}
		m, err := machine.New(machine.Config{Spec: spec, NumMPUs: mpus, MaxSteps: 5000, Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadAll(p); err != nil {
			t.Fatalf("lint-clean program rejected at load on %s: %v\nprogram:\n%s",
				spec.Name, err, isa.Disassemble(p))
		}
		if _, err := m.Run(); err != nil && soundnessViolation(err) {
			t.Fatalf("lint passed but %s faulted: %v\nprogram:\n%s",
				spec.Name, err, isa.Disassemble(p))
		}
	}
}

// chunk encodes one fuzz-input instruction for the seed corpus.
func chunk(op isa.Op, operands ...byte) []byte {
	c := make([]byte, 5)
	c[0] = byte(op)
	copy(c[1:], operands)
	return c
}

func seedCorpus() [][]byte {
	cat := func(chunks ...[]byte) []byte {
		var out []byte
		for _, c := range chunks {
			out = append(out, c...)
		}
		return out
	}
	return [][]byte{
		// A balanced compute ensemble.
		cat(chunk(isa.COMPUTE, 0, 0), chunk(isa.ADD, 0, 1, 2), chunk(isa.COMPUTEDONE)),
		// A conditional loop with a mask.
		cat(chunk(isa.COMPUTE, 0, 0), chunk(isa.CMPGT, 0, 1),
			chunk(isa.SETMASK, isa.RegCond), chunk(isa.SUB, 0, 1, 0),
			chunk(isa.JUMPCOND, 1), chunk(isa.UNMASK), chunk(isa.COMPUTEDONE)),
		// A transfer ensemble and a send block.
		cat(chunk(isa.MOVE, 0, 1), chunk(isa.MEMCPY, 0, 2, 3, 5), chunk(isa.MOVEDONE),
			chunk(isa.SEND, 1), chunk(isa.MOVE, 0, 0), chunk(isa.MEMCPY, 0, 5, 0, 5),
			chunk(isa.MOVEDONE), chunk(isa.SENDDONE)),
		// A subroutine layout in the ezpim style.
		cat(chunk(isa.JUMP, 3), chunk(isa.ADD, 0, 1, 2), chunk(isa.RETURN),
			chunk(isa.COMPUTE, 0, 0), chunk(isa.JUMP, 1), chunk(isa.COMPUTEDONE)),
		// Defective programs: the linter must reject (or the machine must
		// only fail in allowed, config-dependent ways).
		cat(chunk(isa.COMPUTE, 0, 0), chunk(isa.ADD, 0, 1, 2)), // no footer
		cat(chunk(isa.RETURN)),                                 // empty RAS
		cat(chunk(isa.ADD, 0, 1, 2)),                           // datapath at top
		cat(chunk(isa.SEND, 1), chunk(isa.SENDDONE)),           // no MOVE header
		cat(chunk(isa.COMPUTE, 0, 0), chunk(isa.RECV, 0), chunk(isa.COMPUTEDONE)),
		// A top-entered subroutine that opens an ensemble and returns inside
		// its body: the caller's fall-through resumes in body context (the
		// MPU_SYNC at 1 faults there), so the linter must reject it.
		cat(chunk(isa.JUMP, 3), chunk(isa.MPUSYNC), chunk(isa.JUMP, 2),
			chunk(isa.COMPUTE, 0, 0), chunk(isa.ADD, 0, 1, 2),
			chunk(isa.RETURN), chunk(isa.COMPUTEDONE)),
	}
}

// FuzzLintSoundness is the executable form of the linter's soundness
// guarantee. Run with `go test -fuzz=FuzzLintSoundness ./internal/isa`.
func FuzzLintSoundness(f *testing.F) {
	for _, s := range seedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkLintSoundness(t, data)
	})
}

// TestLintSoundnessRandom drives the same oracle from a deterministic PRNG
// so plain `go test` exercises it without the fuzz engine.
func TestLintSoundnessRandom(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 50
	}
	rng := rand.New(rand.NewSource(80))
	for i := 0; i < n; i++ {
		buf := make([]byte, 5*(1+rng.Intn(40)))
		rng.Read(buf)
		checkLintSoundness(t, buf)
	}
	for _, s := range seedCorpus() {
		checkLintSoundness(t, s)
	}
}
