package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the textual MPU assembly format:
//
//	// comment
//	loop:                    ; a label
//	    COMPUTE rfh1 vrf2
//	    ADD r0 r1 r2
//	    CMPGT r2 r3
//	    SETMASK cond
//	    JUMP_COND loop
//	    COMPUTE_DONE
//
// Operands are written r<N> (registers), rfh<N>, vrf<N>, mpu<N>, `cond`
// (the conditional register, only for SETMASK), bare integers (absolute
// targets), or label names. Commas between operands are optional.

// Assemble parses MPU assembly text into a validated Program.
func Assemble(src string) (Program, error) {
	prog, _, err := AssembleWithLines(src)
	return prog, err
}

// AssembleWithLines parses MPU assembly text and additionally returns the
// 1-based source line of every instruction, so downstream tools (the
// linter's findings, trace annotations) can point back into the listing.
func AssembleWithLines(src string) (Program, []int, error) {
	type pending struct {
		instr int
		label string
		line  int
	}
	var (
		prog    Program
		lines   []int
		labels  = map[string]int{}
		fixups  []pending
		lineNum = 0
	)
	for _, raw := range strings.Split(src, "\n") {
		lineNum++
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels may share a line with an instruction: "loop: ADD r0 r1 r2".
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				return nil, nil, fmt.Errorf("isa: line %d: bad label %q", lineNum, name)
			}
			if _, dup := labels[name]; dup {
				return nil, nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNum, name)
			}
			labels[name] = len(prog)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
		if len(fields) == 0 {
			return nil, nil, fmt.Errorf("isa: line %d: no instruction in %q", lineNum, line)
		}
		mnemonic := strings.ToUpper(fields[0])
		op, ok := opByName(mnemonic)
		if !ok {
			return nil, nil, fmt.Errorf("isa: line %d: unknown mnemonic %q", lineNum, fields[0])
		}
		in, labelRef, err := parseOperands(op, fields[1:])
		if err != nil {
			return nil, nil, fmt.Errorf("isa: line %d: %w", lineNum, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{instr: len(prog), label: labelRef, line: lineNum})
		}
		prog = append(prog, in)
		lines = append(lines, lineNum)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, nil, fmt.Errorf("isa: line %d: undefined label %q", f.line, f.label)
		}
		prog[f.instr].Imm = int32(target)
	}
	if err := prog.Validate(); err != nil {
		return nil, nil, err
	}
	return prog, lines, nil
}

func opByName(name string) (Op, bool) {
	for op, s := range opNames {
		if s == name {
			return Op(op), true
		}
	}
	return 0, false
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parsePrefixed(tok, prefix string, limit int) (int, error) {
	low := strings.ToLower(tok)
	if !strings.HasPrefix(low, prefix) {
		return 0, fmt.Errorf("operand %q: expected %s<N>", tok, prefix)
	}
	n, err := strconv.Atoi(low[len(prefix):])
	if err != nil || n < 0 || n >= limit {
		return 0, fmt.Errorf("operand %q: index out of range [0,%d)", tok, limit)
	}
	return n, nil
}

// parseOperands builds an instruction from operand tokens. For jump-like ops
// with a symbolic target it returns the label for later fixup.
func parseOperands(op Op, toks []string) (Instr, string, error) {
	need := func(n int) error {
		if len(toks) != n {
			return fmt.Errorf("%s: want %d operands, got %d", op, n, len(toks))
		}
		return nil
	}
	reg := func(i int) (int, error) { return parsePrefixed(toks[i], "r", NumRegs) }

	switch op {
	case NOP, COMPUTEDONE, MPUSYNC, MOVEDONE, SENDDONE, UNMASK, RETURN:
		return Instr{Op: op}, "", need(0)

	case COMPUTE:
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rfh, err := parsePrefixed(toks[0], "rfh", MaxRFHsPerMPU)
		if err != nil {
			return Instr{}, "", err
		}
		vrf, err := parsePrefixed(toks[1], "vrf", MaxVRFsPerRFH)
		if err != nil {
			return Instr{}, "", err
		}
		return Compute(rfh, vrf), "", nil

	case MOVE:
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		src, err := parsePrefixed(toks[0], "rfh", MaxRFHsPerMPU)
		if err != nil {
			return Instr{}, "", err
		}
		dst, err := parsePrefixed(toks[1], "rfh", MaxRFHsPerMPU)
		if err != nil {
			return Instr{}, "", err
		}
		return Move(src, dst), "", nil

	case SEND, RECV:
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		id, err := parsePrefixed(toks[0], "mpu", 1<<24)
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: op, Imm: int32(id)}, "", nil

	case JUMP, JUMPCOND:
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		if n, err := strconv.Atoi(toks[0]); err == nil {
			return Instr{Op: op, Imm: int32(n)}, "", nil
		}
		if !isIdent(toks[0]) {
			return Instr{}, "", fmt.Errorf("%s: bad target %q", op, toks[0])
		}
		return Instr{Op: op}, toks[0], nil

	case SETMASK:
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		if strings.EqualFold(toks[0], "cond") {
			return SetMask(RegCond), "", nil
		}
		rs, err := reg(0)
		if err != nil {
			return Instr{}, "", err
		}
		return SetMask(rs), "", nil

	case GETMASK, INIT0, INIT1:
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(0)
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: op, C: uint8(rd)}, "", nil

	case CMPEQ, CMPGT, CMPLT, CAS:
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rs, err := reg(0)
		if err != nil {
			return Instr{}, "", err
		}
		rt, err := reg(1)
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: op, A: uint8(rs), B: uint8(rt)}, "", nil

	case INC, POPC, RELU, INV, BFLIP, LSHIFT, MOV:
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rs, err := reg(0)
		if err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(1)
		if err != nil {
			return Instr{}, "", err
		}
		return op2(op, rs, rd), "", nil

	case MEMCPY:
		if err := need(4); err != nil {
			return Instr{}, "", err
		}
		vs, err := parsePrefixed(toks[0], "vrf", MaxVRFsPerRFH)
		if err != nil {
			return Instr{}, "", err
		}
		rs, err := reg(1)
		if err != nil {
			return Instr{}, "", err
		}
		vd, err := parsePrefixed(toks[2], "vrf", MaxVRFsPerRFH)
		if err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(3)
		if err != nil {
			return Instr{}, "", err
		}
		return Memcpy(vs, rs, vd, rd), "", nil

	default: // three-operand arithmetic/boolean/compare forms
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		rs, err := reg(0)
		if err != nil {
			return Instr{}, "", err
		}
		rt, err := reg(1)
		if err != nil {
			return Instr{}, "", err
		}
		rd, err := reg(2)
		if err != nil {
			return Instr{}, "", err
		}
		return op3(op, rs, rt, rd), "", nil
	}
}

// Format renders in as one line of MPU assembly.
func Format(in Instr) string {
	switch in.Op {
	case NOP, COMPUTEDONE, MPUSYNC, MOVEDONE, SENDDONE, UNMASK, RETURN:
		return in.Op.String()
	case COMPUTE:
		return fmt.Sprintf("COMPUTE rfh%d vrf%d", in.A, in.B)
	case MOVE:
		return fmt.Sprintf("MOVE rfh%d rfh%d", in.A, in.B)
	case SEND, RECV:
		return fmt.Sprintf("%s mpu%d", in.Op, in.Imm)
	case JUMP, JUMPCOND:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case SETMASK:
		if in.A == RegCond {
			return "SETMASK cond"
		}
		return fmt.Sprintf("SETMASK r%d", in.A)
	case GETMASK, INIT0, INIT1:
		return fmt.Sprintf("%s r%d", in.Op, in.C)
	case CMPEQ, CMPGT, CMPLT, CAS:
		return fmt.Sprintf("%s r%d r%d", in.Op, in.A, in.B)
	case INC, POPC, RELU, INV, BFLIP, LSHIFT, MOV:
		return fmt.Sprintf("%s r%d r%d", in.Op, in.A, in.C)
	case MEMCPY:
		return fmt.Sprintf("MEMCPY vrf%d r%d vrf%d r%d", in.A, in.B, in.C, in.D)
	default:
		return fmt.Sprintf("%s r%d r%d r%d", in.Op, in.A, in.B, in.C)
	}
}

// Disassemble renders p as assembly text, one instruction per line with the
// absolute index as a comment, matching the Fig. 6 presentation style.
func Disassemble(p Program) string {
	var b strings.Builder
	for i, in := range p {
		fmt.Fprintf(&b, "%-40s // %d\n", Format(in), i)
	}
	return b.String()
}
