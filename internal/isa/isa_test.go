package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "OP(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if got := Op(200).String(); got != "OP(200)" {
		t.Errorf("unknown op String() = %q", got)
	}
}

func TestClassOf(t *testing.T) {
	cases := map[Op]Class{
		NOP:      ClassControl,
		COMPUTE:  ClassEnsemble,
		MOVEDONE: ClassEnsemble,
		SEND:     ClassInterMPU,
		RECV:     ClassInterMPU,
		GETMASK:  ClassControl,
		RETURN:   ClassControl,
		ADD:      ClassArith,
		RELU:     ClassArith,
		CMPEQ:    ClassCompare,
		MIN:      ClassCompare,
		AND:      ClassBoolean,
		LSHIFT:   ClassBoolean,
		MEMCPY:   ClassData,
		MOV:      ClassData,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%s) = %d, want %d", op, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	instrs := []Instr{
		Nop(),
		Compute(3, 17),
		ComputeDone(),
		Sync(),
		Move(1, 7),
		MoveDone(),
		Send(130),
		SendDone(),
		Recv(4),
		GetMask(9),
		SetMask(RegCond),
		SetMask(5),
		Unmask(),
		JumpCond(12345),
		Jump(7),
		Return(),
		Add(1, 2, 3),
		Sub(4, 5, 6),
		Inc(7, 8),
		Init0(9),
		Init1(10),
		Mul(11, 12, 13),
		Mac(14, 15, 16),
		QDiv(17, 18, 19),
		QRDiv(20, 21, 22),
		RDiv(23, 24, 25),
		Popc(26, 27),
		Relu(28, 29),
		CmpEq(30, 31),
		CmpGt(32, 33),
		CmpLt(34, 35),
		Fuzzy(36, 37, 38),
		Cas(39, 40),
		MuxI(41, 42, 43),
		MaxI(44, 45, 46),
		MinI(47, 48, 49),
		And(50, 51, 52),
		Nand(53, 54, 55),
		Nor(56, 57, 58),
		Inv(59, 60),
		OrI(1, 2, 3),
		Xor(4, 5, 6),
		Xnor(7, 8, 9),
		BFlip(10, 11),
		LShift(12, 13),
		Memcpy(63, 62, 61, 60),
		Mov(14, 15),
	}
	for _, in := range instrs {
		got, err := Decode(Encode(in))
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", in, err)
		}
		if got != in {
			t.Errorf("round trip %s: got %+v, want %+v", in.Op, got, in)
		}
	}
}

func TestDecodeUnknownOpcode(t *testing.T) {
	if _, err := Decode(uint32(numOps) << 24); err == nil {
		t.Fatal("Decode accepted unknown opcode")
	}
}

func TestEncodeProgramRoundTrip(t *testing.T) {
	p := Program{Add(1, 2, 3), JumpCond(0), Memcpy(5, 6, 7, 8), ComputeDone()}
	buf := EncodeProgram(p)
	if len(buf) != p.BinarySize() {
		t.Fatalf("binary size %d != %d", len(buf), p.BinarySize())
	}
	got, err := DecodeProgram(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(p) {
		t.Fatalf("decoded %d instrs, want %d", len(got), len(p))
	}
	for i := range p {
		if got[i] != p[i] {
			t.Errorf("instr %d: got %+v want %+v", i, got[i], p[i])
		}
	}
	if _, err := DecodeProgram(buf[:5]); err == nil {
		t.Error("DecodeProgram accepted truncated image")
	}
}

// Property: any in-range instruction encodes/decodes losslessly.
func TestEncodeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		op := Op(rng.Intn(NumOps))
		var in Instr
		switch op {
		case SEND, RECV, JUMP, JUMPCOND:
			in = Instr{Op: op, Imm: int32(rng.Intn(1 << 24))}
		case MEMCPY:
			in = Instr{Op: op, A: uint8(rng.Intn(64)), B: uint8(rng.Intn(64)),
				C: uint8(rng.Intn(64)), D: uint8(rng.Intn(64))}
		default:
			in = Instr{Op: op, A: uint8(rng.Intn(256)), B: uint8(rng.Intn(256)), C: uint8(rng.Intn(256))}
		}
		got, err := Decode(Encode(in))
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	good := Program{
		Compute(0, 1), Add(0, 1, 2), CmpGt(2, 3), SetMask(RegCond),
		JumpCond(1), ComputeDone(),
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	bad := []Instr{
		{Op: numOps},
		{Op: COMPUTE, A: MaxRFHsPerMPU},
		{Op: COMPUTE, B: MaxVRFsPerRFH},
		{Op: MOVE, A: 200},
		{Op: SEND, Imm: -1},
		{Op: JUMP, Imm: -2},
		{Op: ADD, A: 64},
		{Op: MEMCPY, A: 64},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad instr %d (%+v) accepted", i, in)
		}
	}
	if err := (Program{Jump(5)}).Validate(); err == nil {
		t.Error("out-of-range jump target accepted")
	}
}

func TestReadsWrites(t *testing.T) {
	if got := Add(1, 2, 3).Reads(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Add.Reads() = %v", got)
	}
	if got := Add(1, 2, 3).Writes(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Add.Writes() = %v", got)
	}
	if got := QRDiv(1, 2, 3).Writes(); len(got) != 2 {
		t.Errorf("QRDiv.Writes() = %v, want quotient and remainder regs", got)
	}
	if got := Cas(1, 2).Writes(); len(got) != 2 {
		t.Errorf("Cas.Writes() = %v, want both swap regs", got)
	}
	if got := SetMask(RegCond).Reads(); got != nil {
		t.Errorf("SetMask(cond).Reads() = %v, want nil", got)
	}
	if got := SetMask(4).Reads(); len(got) != 1 || got[0] != 4 {
		t.Errorf("SetMask(r4).Reads() = %v", got)
	}
}

func TestAssembleBasic(t *testing.T) {
	src := `
		// compute ensemble (Fig. 6 style)
		COMPUTE rfh1 vrf1
		COMPUTE rfh3 vrf2
		ADD r0, r1, r2
		SUB r2 r3 r4
		COMPUTE_DONE

		MOVE rfh1 rfh2
		MEMCPY vrf0 r0 vrf0 r1
		MOVE_DONE

		SEND mpu4
		SEND_DONE
		MPU_SYNC
	`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	want := Program{
		Compute(1, 1), Compute(3, 2), Add(0, 1, 2), Sub(2, 3, 4), ComputeDone(),
		Move(1, 2), Memcpy(0, 0, 0, 1), MoveDone(),
		Send(4), SendDone(), Sync(),
	}
	if len(p) != len(want) {
		t.Fatalf("got %d instrs, want %d", len(p), len(want))
	}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("instr %d: got %+v, want %+v", i, p[i], want[i])
		}
	}
}

func TestAssembleLabelsAndJumps(t *testing.T) {
	src := `
	start:
		INIT0 r0
	loop:
		INC r0 r0
		CMPLT r0 r1
		SETMASK cond
		JUMP_COND loop
		JUMP start
	`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p[4].Op != JUMPCOND || p[4].Imm != 1 {
		t.Errorf("JUMP_COND resolved to %d, want 1", p[4].Imm)
	}
	if p[5].Op != JUMP || p[5].Imm != 0 {
		t.Errorf("JUMP resolved to %d, want 0", p[5].Imm)
	}
}

func TestAssembleNumericTarget(t *testing.T) {
	p, err := Assemble("NOP\nJUMP 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if p[1].Imm != 0 {
		t.Errorf("numeric JUMP target = %d", p[1].Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"FROB r1 r2 r3",     // unknown mnemonic
		"ADD r0 r1",         // operand count
		"ADD r0 r1 r99",     // register range
		"COMPUTE rfh9 vrf0", // rfh range
		"JUMP nowhere",      // undefined label
		"x: NOP\nx: NOP",    // duplicate label
		"9bad: NOP",         // malformed label
		"SETMASK vrf1",      // wrong operand kind
		"MEMCPY vrf0 r0 r1", // operand count
		"JUMP_COND 99\nNOP", // target out of range
		"SEND r3",           // wrong prefix
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

// Property: Format/Assemble round-trips every constructor-built instruction.
func TestFormatAssembleRoundTrip(t *testing.T) {
	p := Program{
		Compute(2, 9), ComputeDone(), Sync(), Move(0, 3), MoveDone(),
		Send(12), SendDone(), Recv(3),
		GetMask(1), SetMask(RegCond), SetMask(2), Unmask(),
		JumpCond(14), Jump(15), Return(), Nop(),
		Add(1, 2, 3), Sub(1, 2, 3), Inc(1, 2), Init0(3), Init1(4),
		Mul(1, 2, 3), Mac(1, 2, 3), QDiv(1, 2, 3), QRDiv(1, 2, 3), RDiv(1, 2, 3),
		Popc(1, 2), Relu(1, 2),
		CmpEq(1, 2), CmpGt(1, 2), CmpLt(1, 2), Fuzzy(1, 2, 3), Cas(1, 2),
		MuxI(1, 2, 3), MaxI(1, 2, 3), MinI(1, 2, 3),
		And(1, 2, 3), Nand(1, 2, 3), Nor(1, 2, 3), Inv(1, 2), OrI(1, 2, 3),
		Xor(1, 2, 3), Xnor(1, 2, 3), BFlip(1, 2), LShift(1, 2),
		Memcpy(1, 2, 3, 4), Mov(1, 2),
	}
	var src strings.Builder
	for _, in := range p {
		src.WriteString(Format(in))
		src.WriteByte('\n')
	}
	got, err := Assemble(src.String())
	if err != nil {
		t.Fatalf("reassembling formatted program: %v\n%s", err, src.String())
	}
	if len(got) != len(p) {
		t.Fatalf("got %d instrs, want %d", len(got), len(p))
	}
	for i := range p {
		if got[i] != p[i] {
			t.Errorf("instr %d (%s): got %+v, want %+v", i, p[i].Op, got[i], p[i])
		}
	}
}

func TestDisassembleShape(t *testing.T) {
	text := Disassemble(Program{Add(0, 1, 2), Nop()})
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 2 {
		t.Fatalf("Disassemble produced %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "ADD r0 r1 r2") || !strings.Contains(lines[0], "// 0") {
		t.Errorf("line 0 = %q", lines[0])
	}
}
