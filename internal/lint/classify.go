package lint

import (
	"mpu/internal/isa"
	"mpu/internal/recipe"
)

// BodyClass is the control-flow shape of a compute-ensemble body — the
// classification the CFG walker's body exploration already implies, exported
// so the machine's trace engine can decide whether a body is safe to
// compile once and replay across scheduling rounds.
type BodyClass uint8

const (
	// BodyStraight: datapath and mask instructions only; execution falls
	// through lexically to COMPUTE_DONE.
	BodyStraight BodyClass = iota
	// BodyStatic: contains JUMP/RETURN but no data-dependent branch, so
	// every scheduling round executes the identical instruction path.
	BodyStatic
	// BodyDynamic: contains JUMP_COND — control flow depends on lane data
	// and can differ between rounds.
	BodyDynamic
	// BodyIllFormed: reaches an instruction illegal inside an ensemble body,
	// or runs past the program end, before COMPUTE_DONE.
	BodyIllFormed
)

var bodyClassNames = [...]string{
	BodyStraight: "straight", BodyStatic: "static",
	BodyDynamic: "dynamic", BodyIllFormed: "ill-formed",
}

func (c BodyClass) String() string {
	if int(c) < len(bodyClassNames) {
		return bodyClassNames[c]
	}
	return "unknown"
}

// ClassifyBody classifies the body entered at bodyStart (the instruction
// after a COMPUTE header run). The walk over-approximates reachability the
// same way the CFG walker does — a JUMP explores both its target and its
// fall-through, without tracking return-stack state — so a body classified
// Straight or Static cannot execute a data-dependent branch at run time.
// Over-approximation errs only toward the stricter classes, which costs a
// caller a tracing opportunity but never soundness.
func ClassifyBody(p isa.Program, bodyStart int) BodyClass {
	class := BodyStraight
	seen := map[int]bool{}
	work := []int{bodyStart}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if pc < 0 || pc >= len(p) {
			return BodyIllFormed
		}
		if seen[pc] {
			continue
		}
		seen[pc] = true
		in := p[pc]
		switch {
		case in.Op == isa.COMPUTEDONE:
			// Body exit; nothing beyond it belongs to this body.
		case recipe.IsDatapathOp(in.Op),
			in.Op == isa.SETMASK, in.Op == isa.UNMASK, in.Op == isa.GETMASK,
			in.Op == isa.NOP:
			work = append(work, pc+1)
		case in.Op == isa.JUMPCOND:
			return BodyDynamic
		case in.Op == isa.JUMP:
			class = BodyStatic
			// Over-approximate: the fall-through is reachable whether or not
			// the callee returns.
			work = append(work, int(in.Imm), pc+1)
		case in.Op == isa.RETURN:
			class = BodyStatic
			// The return address is a JUMP fall-through already on the
			// worklist; there is no static successor here.
		default:
			return BodyIllFormed
		}
	}
	return class
}
