package lint

import (
	"testing"

	"mpu/internal/isa"
)

// bodyAt returns the body entry of the compute ensemble opening at pc.
func bodyAt(t *testing.T, p isa.Program, pc int) int {
	t.Helper()
	seg := scanCompute(p, pc)
	if seg.bad >= 0 || seg.done < 0 {
		t.Fatalf("program has no well-formed ensemble at %d", pc)
	}
	return seg.bodyStart
}

func TestClassifyBody(t *testing.T) {
	cases := []struct {
		name string
		src  string      // assembly (exclusive with prog)
		prog isa.Program // raw program for shapes the assembler rejects
		ens  int         // pc of the COMPUTE opener (src cases)
		body int         // body entry (prog cases)
		want BodyClass
	}{
		{
			name: "straight line",
			src: `
				COMPUTE rfh0 vrf0
				ADD r0 r1 r2
				SETMASK cond
				UNMASK
				COMPUTE_DONE`,
			want: BodyStraight,
		},
		{
			name: "static subroutine call",
			src: `
				COMPUTE rfh0 vrf0
				JUMP sub
				COMPUTE_DONE
			sub:
				ADD r0 r1 r2
				RETURN`,
			want: BodyStatic,
		},
		{
			name: "dynamic loop",
			src: `
				COMPUTE rfh0 vrf0
			loop:
				SUB r0 r0 r1
				CMPGT r0 r2
				SETMASK cond
				JUMP_COND loop
				COMPUTE_DONE`,
			want: BodyDynamic,
		},
		{
			name: "jump-cond behind a static jump",
			src: `
				COMPUTE rfh0 vrf0
				JUMP sub
				COMPUTE_DONE
			sub:
				JUMP_COND sub
				RETURN`,
			want: BodyDynamic,
		},
		{
			name: "runs past program end",
			prog: isa.Program{
				{Op: isa.COMPUTE},
				{Op: isa.ADD, A: 0, B: 1, C: 2},
			},
			body: 1,
			want: BodyIllFormed,
		},
		{
			name: "illegal op in body",
			prog: isa.Program{
				{Op: isa.COMPUTE},
				{Op: isa.MOVE},
				{Op: isa.COMPUTEDONE},
			},
			body: 1,
			want: BodyIllFormed,
		},
		{
			name: "self-loop jump stays static",
			prog: isa.Program{
				{Op: isa.COMPUTE},
				{Op: isa.JUMP, Imm: 1},
				{Op: isa.COMPUTEDONE},
			},
			body: 1,
			want: BodyStatic,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, body := tc.prog, tc.body
			if tc.src != "" {
				p = mustAssemble(t, tc.src)
				body = bodyAt(t, p, tc.ens)
			}
			if got := ClassifyBody(p, body); got != tc.want {
				t.Fatalf("ClassifyBody = %v, want %v", got, tc.want)
			}
		})
	}
}
