package lint

import (
	"fmt"
	"sort"

	"mpu/internal/isa"
	"mpu/internal/recipe"
)

// The walker explores every (pc, context) pair a machine core can reach,
// mirroring the control path's two execution levels: the top-level
// dispatcher (machine.core.run) and the compute-ensemble body interpreter
// (machine.core.runBody). JUMP is modeled as a subroutine call: the callee
// gets a reachability summary ("can a RETURN execute at the callee's own
// stack depth?") computed to a least fixpoint, and the call site's
// fall-through only becomes reachable when that summary says the callee can
// return. The summary over-approximates runtime returnability, so every
// runtime path is covered; programs with no Error findings therefore cannot
// trip the machine's ensemble-structure guards.
//
// The call model resumes the fall-through in the caller's context, which is
// only faithful when the callee returns in the context it was entered in. At
// run time the context is a property of the interpreter loop — a RETURN
// executed by runBody keeps interpreting the return address in body context —
// so the two places a callee could exit in a different context than it
// entered are flagged as Errors instead of being resumed unsoundly:
// COMPUTE_DONE inside a body-entered callee (footer-in-subroutine) and
// RETURN inside an ensemble the top-entered callee itself opened
// (return-in-ensemble). The latter is also a genuine runtime hazard: the
// scheduler replays an ensemble body once per activation round, re-executing
// the body's RETURN without re-executing the caller's JUMP, so any round
// after the first underflows the return-address stack.

// ctxKind is the execution context of a walk state.
type ctxKind uint8

const (
	// ctxTop: the top-level dispatcher between ensembles.
	ctxTop ctxKind = iota
	// ctxOwnBody: inside the body of an ensemble opened by the current
	// walk (main program or the same subroutine).
	ctxOwnBody
	// ctxCallerBody: inside a subroutine that was called from an ensemble
	// body — the enclosing ensemble belongs to a caller, so executing its
	// COMPUTE_DONE here would strand the pending return-stack frame.
	ctxCallerBody
)

type state struct {
	pc  int
	ctx ctxKind
}

// procKey identifies a subroutine summary: the entry pc plus the context
// class it is called from (a callee entered from the top level executes
// under different legality rules than one entered from an ensemble body).
type procKey struct {
	entry   int
	fromTop bool
}

type walker struct {
	p      isa.Program
	opt    Options
	report *Report

	dedup     map[string]bool
	recording bool
	changed   bool

	covered   []bool
	procs     map[procKey]bool
	canRet    map[procKey]bool
	ensembles []computeSeg
	ensSeen   map[int]bool
}

func newWalker(p isa.Program, opt Options) *walker {
	return &walker{
		p:       p,
		opt:     opt,
		report:  &Report{},
		dedup:   map[string]bool{},
		covered: make([]bool, len(p)),
		procs:   map[procKey]bool{},
		canRet:  map[procKey]bool{},
		ensSeen: map[int]bool{},
	}
}

// addf records one finding, deduplicated across walk iterations and paths.
func (w *walker) addf(sev Severity, check string, idx int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%s|%d|%s", check, idx, msg)
	if w.dedup[key] {
		return
	}
	w.dedup[key] = true
	line := 0
	if idx >= 0 && idx < len(w.opt.Lines) {
		line = w.opt.Lines[idx]
	}
	w.report.Findings = append(w.report.Findings, Finding{
		Severity: sev, Check: check, MPU: -1, Index: idx, Line: line, Message: msg,
	})
}

// walkAddf is addf gated to the recording pass, for findings emitted while
// exploring (the fixpoint iterations re-explore the same states).
func (w *walker) walkAddf(sev Severity, check string, idx int, format string, args ...any) {
	if w.recording {
		w.addf(sev, check, idx, format, args...)
	}
}

func (w *walker) cover(from, to int) {
	if !w.recording {
		return
	}
	for i := from; i < to && i < len(w.covered); i++ {
		w.covered[i] = true
	}
}

// walk runs the reachability fixpoint and then one recording pass.
func (w *walker) walk() {
	if len(w.p) == 0 {
		return
	}
	for {
		w.changed = false
		w.runFrom(state{0, ctxTop}, false)
		for _, k := range w.procKeys() {
			ctx := ctxCallerBody
			if k.fromTop {
				ctx = ctxTop
			}
			if w.runFrom(state{k.entry, ctx}, true) && !w.canRet[k] {
				w.canRet[k] = true
				w.changed = true
			}
		}
		if !w.changed {
			break
		}
	}
	w.recording = true
	w.runFrom(state{0, ctxTop}, false)
	for _, k := range w.procKeys() {
		ctx := ctxCallerBody
		if k.fromTop {
			ctx = ctxTop
		}
		w.runFrom(state{k.entry, ctx}, true)
	}
}

func (w *walker) procKeys() []procKey {
	keys := make([]procKey, 0, len(w.procs))
	for k := range w.procs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].entry != keys[j].entry {
			return keys[i].entry < keys[j].entry
		}
		return keys[i].fromTop && !keys[j].fromTop
	})
	return keys
}

// runFrom explores every state reachable from root without entering callees
// (calls are summarized). It reports whether a RETURN executes at the walk's
// own stack depth. inProc distinguishes a subroutine walk (RETURN is the
// normal exit) from the main walk (RETURN would pop an empty return stack).
func (w *walker) runFrom(root state, inProc bool) bool {
	seen := map[state]bool{}
	work := []state{root}
	returned := false
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		if s.pc >= len(w.p) {
			// Running off the end is normal program completion at the top
			// level but a fault inside an ensemble body (machine.runBody).
			if s.ctx != ctxTop {
				w.walkAddf(Error, "ensemble-unbalanced", len(w.p)-1,
					"ensemble body runs past the program end without COMPUTE_DONE")
			}
			continue
		}
		if seen[s] {
			continue
		}
		seen[s] = true
		w.cover(s.pc, s.pc+1)
		succs, isRet := w.exec(s, inProc)
		if isRet {
			returned = true
		}
		work = append(work, succs...)
	}
	return returned
}

// exec interprets the instruction at s and returns its successor states.
// The second result reports a RETURN executing at the current walk's depth.
func (w *walker) exec(s state, inProc bool) ([]state, bool) {
	in := w.p[s.pc]
	if s.ctx == ctxTop {
		return w.execTop(s.pc, in, inProc)
	}
	return w.execBody(s, in, inProc)
}

// execTop mirrors machine.core.run's top-level dispatch.
func (w *walker) execTop(pc int, in isa.Instr, inProc bool) ([]state, bool) {
	switch in.Op {
	case isa.NOP, isa.MPUSYNC, isa.RECV:
		return []state{{pc + 1, ctxTop}}, false
	case isa.COMPUTE:
		return w.enterCompute(pc), false
	case isa.MOVE:
		return w.enterTransfer(pc), false
	case isa.SEND:
		return w.enterSend(pc), false
	case isa.JUMP:
		return w.call(pc, ctxTop), false
	case isa.RETURN:
		if inProc {
			return nil, true
		}
		w.walkAddf(Error, "return-unbalanced", pc,
			"RETURN reachable with no enclosing JUMP call — pops an empty return-address stack")
		return nil, false
	default:
		w.walkAddf(Error, "outside-ensemble", pc,
			"instruction %s is not executable outside any ensemble", in.Op)
		return nil, false
	}
}

// execBody mirrors machine.core.runBody's legality rules.
func (w *walker) execBody(s state, in isa.Instr, inProc bool) ([]state, bool) {
	pc := s.pc
	switch {
	case in.Op == isa.COMPUTEDONE:
		if s.ctx == ctxCallerBody {
			w.walkAddf(Error, "footer-in-subroutine", pc,
				"COMPUTE_DONE reachable inside a subroutine called from an ensemble body — the pending return-stack frame would go stale")
			return nil, false
		}
		return []state{{pc + 1, ctxTop}}, false
	case recipe.IsDatapathOp(in.Op),
		in.Op == isa.SETMASK, in.Op == isa.UNMASK, in.Op == isa.GETMASK,
		in.Op == isa.NOP:
		return []state{{pc + 1, s.ctx}}, false
	case in.Op == isa.JUMPCOND:
		return []state{{int(in.Imm), s.ctx}, {pc + 1, s.ctx}}, false
	case in.Op == isa.JUMP:
		return w.call(pc, s.ctx), false
	case in.Op == isa.RETURN:
		if inProc {
			if s.ctx == ctxOwnBody {
				// The subroutine opened this ensemble itself, so its RETURN
				// executes inside runBody: the caller's fall-through would
				// resume in body context (not the top-level context the call
				// model assumes), and scheduler-round replays of the body
				// would pop the return-address stack without a matching JUMP.
				w.walkAddf(Error, "return-in-ensemble", pc,
					"RETURN reachable inside a compute ensemble opened by the subroutine itself — the caller would resume inside the ensemble body, and scheduler-round replays would underflow the return-address stack")
			}
			return nil, true
		}
		w.walkAddf(Error, "return-unbalanced", pc,
			"RETURN reachable with no enclosing JUMP call — pops an empty return-address stack")
		return nil, false
	default:
		w.walkAddf(Error, "illegal-in-ensemble", pc,
			"instruction %s is not executable inside a compute ensemble", in.Op)
		return nil, false
	}
}

// call models a JUMP at pc from context fallCtx: the callee entry is
// registered for a summary walk, and the fall-through successor exists only
// when the callee's current summary says it can return.
func (w *walker) call(pc int, fallCtx ctxKind) []state {
	k := procKey{entry: int(w.p[pc].Imm), fromTop: fallCtx == ctxTop}
	if !w.procs[k] {
		w.procs[k] = true
		w.changed = true
	}
	if w.canRet[k] {
		return []state{{pc + 1, fallCtx}}
	}
	return nil
}

// enterCompute consumes a compute ensemble opening at pc and returns the
// body entry state, mirroring machine.runComputeEnsemble's lexical scan.
func (w *walker) enterCompute(pc int) []state {
	seg := scanCompute(w.p, pc)
	if seg.bad >= 0 {
		w.walkAddf(Error, "ensemble-unbalanced", seg.bad,
			"%s inside the compute ensemble opened at %d", w.p[seg.bad].Op, pc)
		return nil
	}
	if seg.done < 0 {
		w.walkAddf(Error, "ensemble-unbalanced", pc,
			"compute ensemble missing COMPUTE_DONE")
		return nil
	}
	w.cover(seg.header, seg.bodyStart)
	if w.recording && !w.ensSeen[pc] {
		w.ensSeen[pc] = true
		w.ensembles = append(w.ensembles, seg)
	}
	return []state{{seg.bodyStart, ctxOwnBody}}
}

// enterTransfer consumes a MOVE…MOVE_DONE transfer ensemble at pc.
func (w *walker) enterTransfer(pc int) []state {
	end, bad := scanTransfer(w.p, pc)
	if bad >= 0 {
		w.walkAddf(Error, "ensemble-unbalanced", bad,
			"%s inside the transfer ensemble opened at %d", w.p[bad].Op, pc)
		return nil
	}
	if end < 0 {
		w.walkAddf(Error, "ensemble-unbalanced", pc,
			"transfer ensemble missing MOVE_DONE")
		return nil
	}
	w.cover(pc, end)
	return []state{{end, ctxTop}}
}

// enterSend consumes a SEND…SEND_DONE inter-MPU block at pc.
func (w *walker) enterSend(pc int) []state {
	end, bad, noHeader := scanSend(w.p, pc)
	if noHeader {
		w.walkAddf(Error, "ensemble-unbalanced", pc,
			"SEND block without a MOVE header")
		return nil
	}
	if bad >= 0 {
		w.walkAddf(Error, "ensemble-unbalanced", bad,
			"%s inside the SEND block opened at %d", w.p[bad].Op, pc)
		return nil
	}
	if end < 0 {
		w.walkAddf(Error, "ensemble-unbalanced", pc,
			"SEND block missing SEND_DONE")
		return nil
	}
	w.cover(pc, end)
	return []state{{end, ctxTop}}
}
