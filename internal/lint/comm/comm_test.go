package comm_test

import (
	"fmt"
	"strings"
	"testing"

	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/lint/comm"
)

// asm assembles src or fails the test.
func asm(t *testing.T, src string) isa.Program {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	return p
}

// sendBlock is a minimal well-formed inter-MPU send block.
func sendBlock(dst int) string {
	return fmt.Sprintf("SEND mpu%d\nMOVE rfh0 rfh0\nMEMCPY vrf0 r0 vrf0 r0\nMOVE_DONE\nSEND_DONE\n", dst)
}

func recvOp(src int) string { return fmt.Sprintf("RECV mpu%d\n", src) }

// checkIDs returns the distinct check ids of the report's Error findings.
func checkIDs(rep *lint.Report) map[string]bool {
	ids := map[string]bool{}
	for _, f := range rep.Errs() {
		ids[f.Check] = true
	}
	return ids
}

func TestExtractSummary(t *testing.T) {
	t.Run("empty program ends immediately", func(t *testing.T) {
		s := comm.Extract(nil)
		if !s.Complete || len(s.Nodes) != 1 || !s.Nodes[0].End || len(s.Nodes[0].Edges) != 0 {
			t.Fatalf("unexpected summary for empty program: %+v", s)
		}
	})
	t.Run("send then recv chain", func(t *testing.T) {
		s := comm.Extract(asm(t, sendBlock(1)+recvOp(1)))
		if !s.Complete {
			t.Fatal("summary incomplete")
		}
		evs := s.Events()
		if len(evs) != 2 {
			t.Fatalf("want 2 events, got %v", evs)
		}
		if evs[0].Kind != comm.EvSend || evs[0].Partner != 1 || evs[0].PC != 0 {
			t.Errorf("first event = %v, want SEND→mpu1@pc0", evs[0])
		}
		if evs[0].Pairs != 1 || evs[0].Copies != 1 {
			t.Errorf("send shape = %d pairs %d copies, want 1/1", evs[0].Pairs, evs[0].Copies)
		}
		if evs[1].Kind != comm.EvRecv || evs[1].Partner != 1 {
			t.Errorf("second event = %v, want RECV←mpu1", evs[1])
		}
	})
	t.Run("sync is an event", func(t *testing.T) {
		s := comm.Extract(asm(t, "MPU_SYNC\n"))
		evs := s.Events()
		if len(evs) != 1 || evs[0].Kind != comm.EvSync {
			t.Fatalf("want one SYNC event, got %v", evs)
		}
	})
}

// TestCommCounterexamples is the seeded corpus from the issue: every
// statically broken communication pattern must be flagged with its dedicated
// check id and a concrete core→op→partner counterexample.
func TestCommCounterexamples(t *testing.T) {
	build := func(srcs ...string) []isa.Program {
		var out []isa.Program
		for _, s := range srcs {
			out = append(out, asm(t, s))
		}
		return out
	}

	tests := []struct {
		name  string
		progs []isa.Program
		mpus  int
		check string
		trace []string // substrings the finding message must carry
	}{
		{
			name:  "crossed partners",
			progs: build(sendBlock(2), recvOp(3), "", ""),
			mpus:  4,
			check: "comm-unmatched-send",
			trace: []string{
				"mpu0: SEND to mpu2 at pc 0 (waits on mpu2)",
				"mpu1: RECV from mpu3 at pc 0 (waits on mpu3)",
				"never issues a matching RECV",
			},
		},
		{
			name:  "orphan RECV",
			progs: build(recvOp(1), ""),
			mpus:  2,
			check: "comm-unmatched-recv",
			trace: []string{
				"mpu0: RECV from mpu1 at pc 0 (waits on mpu1)",
				"never issues a matching SEND",
			},
		},
		{
			name:  "send-order-rule violation",
			progs: build(sendBlock(1)+recvOp(1), sendBlock(0)+recvOp(0)),
			mpus:  2,
			check: "comm-send-order",
			trace: []string{
				"mpu0: SEND to mpu1 at pc 0 (waits on mpu1)",
				"mpu1: SEND to mpu0 at pc 0 (waits on mpu0)",
				"lower-ID-sends-first",
			},
		},
		{
			name:  "three-core cycle",
			progs: build(sendBlock(1)+recvOp(2), sendBlock(2)+recvOp(0), sendBlock(0)+recvOp(1)),
			mpus:  3,
			check: "comm-deadlock",
			trace: []string{
				"wait-for cycle mpu0 → mpu1 → mpu2 → mpu0",
				"mpu0: SEND to mpu1 at pc 0 (waits on mpu1)",
				"mpu1: SEND to mpu2 at pc 0 (waits on mpu2)",
				"mpu2: SEND to mpu0 at pc 0 (waits on mpu0)",
			},
		},
		{
			name:  "self rendezvous",
			progs: build(sendBlock(0) + recvOp(0)),
			mpus:  1,
			check: "comm-self",
		},
		{
			name:  "partner outside mesh",
			progs: build(sendBlock(5)),
			mpus:  2,
			check: "comm-partner-range",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rep := comm.LintMachine(tc.progs, comm.Options{MPUs: tc.mpus})
			if rep.Ok() {
				t.Fatalf("expected %s error, report clean:\n%s", tc.check, rep)
			}
			if ids := checkIDs(rep); !ids[tc.check] {
				t.Fatalf("expected check %s, got %v:\n%s", tc.check, ids, rep)
			}
			for _, want := range tc.trace {
				if !strings.Contains(rep.String(), want) {
					t.Errorf("counterexample missing %q:\n%s", want, rep)
				}
			}
		})
	}
}

func TestCommCleanExchange(t *testing.T) {
	// mpu0 sends to mpu1, computes nothing else; mpu1 receives then replies;
	// mpu0 receives the reply. Lower-ID core sends first — the legal pattern.
	progs := []isa.Program{
		asm(t, sendBlock(1)+recvOp(1)),
		asm(t, recvOp(0)+sendBlock(0)),
	}
	rep := comm.LintMachine(progs, comm.Options{MPUs: 2})
	for _, f := range rep.Findings {
		if f.Severity >= lint.Warning && strings.HasPrefix(f.Check, "comm-") {
			t.Errorf("unexpected comm finding on clean exchange: %s", f)
		}
	}
}

func TestCommRingWrapAroundClean(t *testing.T) {
	// A 4-core ring in the editdistance pattern: even cores send first, odd
	// cores receive first. The wrap-around pair (3 → 0) necessarily has the
	// higher-ID core sending first; commlint must accept it — any ring must
	// break the lower-ID-sends-first convention somewhere without deadlock.
	n := 4
	progs := make([]isa.Program, n)
	for i := 0; i < n; i++ {
		next, prev := (i+1)%n, (i+n-1)%n
		var src string
		if i%2 == 0 {
			src = sendBlock(next) + recvOp(prev)
		} else {
			src = recvOp(prev) + sendBlock(next)
		}
		progs[i] = asm(t, src)
	}
	rep := comm.LintMachine(progs, comm.Options{MPUs: n})
	for _, f := range rep.Findings {
		if f.Severity >= lint.Warning && strings.HasPrefix(f.Check, "comm-") {
			t.Errorf("unexpected comm finding on ring: %s", f)
		}
	}
}

func TestCommCounterexampleTrace(t *testing.T) {
	// The stall happens only after one rendezvous completes: the trace must
	// show it.
	progs := []isa.Program{
		asm(t, sendBlock(1)+sendBlock(1)),
		asm(t, recvOp(0)),
	}
	rep := comm.LintMachine(progs, comm.Options{MPUs: 2})
	if rep.Ok() {
		t.Fatalf("expected unmatched send, report clean:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "reached after: mpu0→mpu1@pc0") {
		t.Errorf("missing rendezvous trace:\n%s", rep)
	}
}

func TestCommGeometry(t *testing.T) {
	progs := []isa.Program{asm(t, recvOp(1)), asm(t, sendBlock(0)), asm(t, "NOP\n")}
	rep := comm.LintMachine(progs, comm.Options{MPUs: 2})
	if ids := checkIDs(rep); !ids["comm-geometry"] {
		t.Fatalf("expected comm-geometry for 3 programs on 2 MPUs, got:\n%s", rep)
	}
}

func TestLintSPMDSelfSend(t *testing.T) {
	// An SPMD binary where every core sends to mpu0: on core 0 that is a
	// self-rendezvous, flagged per core.
	rep := comm.LintSPMD(asm(t, sendBlock(0)), 2, comm.Options{})
	if ids := checkIDs(rep); !ids["comm-self"] {
		t.Fatalf("expected comm-self, got:\n%s", rep)
	}
}
