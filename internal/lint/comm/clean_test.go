package comm_test

import (
	"strings"
	"testing"

	"mpu/internal/apps"
	"mpu/internal/backends"
	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/lint/comm"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

// requireCommClean fails on any comm-* finding at Warning or above: shipped
// programs must be fully analyzable and free of communication errors.
func requireCommClean(t *testing.T, rep *lint.Report, what string) {
	t.Helper()
	for _, f := range rep.Findings {
		if f.Severity >= lint.Warning && strings.HasPrefix(f.Check, "comm-") {
			t.Errorf("%s: %s", what, f)
		}
	}
}

// TestKernelsCommClean sweeps every shipped kernel on every back end, SPMD
// across 4 cores — the Machine.LoadAll model mpurun uses.
func TestKernelsCommClean(t *testing.T) {
	specs := append(backends.All(), backends.SIMDRAM())
	for _, spec := range specs {
		for _, k := range workloads.All() {
			p, _, err := workloads.BuildProgram(k, spec, 1)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", spec.Name, k.Name, err)
			}
			rep := comm.LintSPMD(p, 4, comm.Options{Spec: spec})
			requireCommClean(t, rep, spec.Name+"/"+k.Name)
		}
	}
}

// TestAppsCommClean verifies the three multi-MPU applications: the
// editdistance ring (with its wrap-around send-order inversion), the
// llmencode coordinator/worker pipeline, and the two-core blackscholes
// splitter.
func TestAppsCommClean(t *testing.T) {
	spec := backends.RACER()
	builds := []struct {
		name  string
		progs func() ([]isa.Program, error)
	}{
		{"editdistance", func() ([]isa.Program, error) {
			return apps.BuildEditDistancePrograms(apps.EditDistanceConfig{Spec: spec, Mode: machine.ModeMPU})
		}},
		{"llmencode", func() ([]isa.Program, error) {
			return apps.BuildLLMEncodePrograms(apps.LLMEncodeConfig{Spec: spec, Mode: machine.ModeMPU})
		}},
		{"blackscholes", func() ([]isa.Program, error) {
			return apps.BuildBlackScholesPrograms(apps.BlackScholesConfig{Spec: spec, Mode: machine.ModeMPU})
		}},
	}
	for _, b := range builds {
		progs, err := b.progs()
		if err != nil {
			t.Fatalf("%s: build: %v", b.name, err)
		}
		rep := comm.LintMachine(progs, comm.Options{Spec: spec})
		requireCommClean(t, rep, b.name)
	}
}
