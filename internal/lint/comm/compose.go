package comm

import (
	"fmt"
	"sort"
	"strings"

	"mpu/internal/backends"
	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/noc"
)

// Waiter describes one blocked core in a wait-for snapshot: the operation it
// is parked on, the partner it waits for, and the program counter of the
// blocking instruction. The machine's runtime deadlock diagnostic and
// commlint's static counterexamples share this type and format, so a static
// finding reads exactly like the runtime failure it predicts.
type Waiter struct {
	Core    int
	Op      string // "SEND" or "RECV"
	Partner int
	PC      int
}

func (w Waiter) String() string {
	prep := "to"
	if w.Op == "RECV" {
		prep = "from"
	}
	return fmt.Sprintf("mpu%d: %s %s mpu%d at pc %d (waits on mpu%d)",
		w.Core, w.Op, prep, w.Partner, w.PC, w.Partner)
}

// FormatWaiters renders the who-waits-on-whom list, one indented line per
// blocked core in ascending core order.
func FormatWaiters(ws []Waiter) string {
	sorted := make([]Waiter, len(ws))
	copy(sorted, ws)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Core < sorted[j].Core })
	lines := make([]string, len(sorted))
	for i, w := range sorted {
		lines[i] = "  " + w.String()
	}
	return strings.Join(lines, "\n")
}

// Options configures LintMachine.
type Options struct {
	// MPUs is the core count the program set will be loaded onto; 0 means
	// len(progs). Partner ids are checked against this count — the geometry
	// the machine instantiates, not the back end's total capacity.
	MPUs int

	// NoC overrides the mesh used for route-legality checks; the zero value
	// means noc.Default(MPUs), the geometry machine.New builds.
	NoC noc.Config

	// Spec forwards the per-program back-end capacity checks to the base
	// linter; nil runs structural and communication checks only.
	Spec *backends.Spec

	// Lines maps each core's instruction index to a 1-based source line,
	// indexed like progs; nil (or shorter) leaves findings without lines.
	Lines [][]int
}

const (
	// maxConfigs bounds the composed-state exploration across all cores.
	maxConfigs = 1 << 15
	// maxStallFindings caps reported stalls per run; distinct stalls beyond
	// this share a root cause in practice and drown the report.
	maxStallFindings = 4
	// maxTraceSteps caps the rendezvous prefix shown in a counterexample.
	maxTraceSteps = 8
)

// LintMachine statically verifies the program set as one machine. Per-core
// base lint findings come first (identical program slices are linted once and
// reported against the lowest core id running them), then the communication
// checks: comm-self and comm-partner-range against the mesh geometry, and —
// when every summary is complete and no Error was found — composed-graph
// exploration reporting comm-unmatched-send, comm-unmatched-recv,
// comm-send-order, and comm-deadlock stalls with concrete counterexamples.
// An analysis bound degrades to a comm-unanalyzable Warning, never to a
// silent pass.
func LintMachine(progs []isa.Program, opt Options) *lint.Report {
	rep := &lint.Report{}
	n := opt.MPUs
	if n <= 0 {
		n = len(progs)
	}
	if n == 0 {
		return rep
	}
	if len(progs) > n {
		addf(rep, lint.Error, "comm-geometry", -1, -1, 0,
			"%d programs for a %d-MPU machine — core %d has nowhere to load", len(progs), n, n)
		return rep
	}
	cfg := opt.NoC
	if cfg == (noc.Config{}) {
		cfg = noc.Default(n)
	}
	mesh, err := noc.New(cfg)
	if err != nil || cfg.MPUs < n {
		if err == nil {
			err = fmt.Errorf("mesh has %d MPUs but the machine instantiates %d", cfg.MPUs, n)
		}
		addf(rep, lint.Error, "comm-geometry", -1, -1, 0, "NoC configuration unusable: %v", err)
		return rep
	}

	// Per-core base lint, deduplicated by program identity so SPMD machines
	// (every core running the same slice) lint the shared binary once.
	type progKey struct {
		head *isa.Instr
		n    int
	}
	keyOf := func(p isa.Program) progKey {
		k := progKey{n: len(p)}
		if len(p) > 0 {
			k.head = &p[0]
		}
		return k
	}
	linted := map[progKey]bool{}
	for i, p := range progs {
		k := keyOf(p)
		if linted[k] {
			continue
		}
		linted[k] = true
		var lines []int
		if i < len(opt.Lines) {
			lines = opt.Lines[i]
		}
		r := lint.Lint(p, lint.Options{Spec: opt.Spec, Lines: lines})
		for _, f := range r.Findings {
			f.MPU = i
			rep.Findings = append(rep.Findings, f)
		}
	}
	if !rep.Ok() {
		// A structurally broken program faults before its communication
		// matters; summaries over it would be guesswork.
		finish(rep)
		return rep
	}

	// Communication summaries, deduplicated the same way. Cores beyond the
	// program list run nothing and are trivially finished.
	sums := make([]*Summary, n)
	sumCache := map[progKey]*Summary{}
	for i := 0; i < n; i++ {
		if i >= len(progs) {
			sums[i] = &Summary{Nodes: []Node{{End: true}}, Complete: true}
			continue
		}
		k := keyOf(progs[i])
		if s, ok := sumCache[k]; ok {
			sums[i] = s
			continue
		}
		s := Extract(progs[i])
		sumCache[k] = s
		sums[i] = s
	}

	analyzable := true
	for i, s := range sums {
		if !s.Complete {
			addf(rep, lint.Warning, "comm-unanalyzable", i, -1, 0,
				"communication summary hit an analysis bound — machine-level verification skipped")
			analyzable = false
			continue
		}
		for _, nd := range s.Nodes {
			for _, e := range nd.Edges {
				if e.Event.Kind == EvSync {
					continue
				}
				op := e.Event.Kind.String()
				switch {
				case e.Event.Partner == i:
					addf(rep, lint.Error, "comm-self", i, e.Event.PC, lineAt(opt, i, e.Event.PC),
						"%s names the executing core mpu%d — a core cannot rendezvous with itself", op, i)
				case e.Event.Partner < 0 || e.Event.Partner >= n:
					addf(rep, lint.Error, "comm-partner-range", i, e.Event.PC, lineAt(opt, i, e.Event.PC),
						"%s names mpu%d, outside the %d-MPU mesh (side %d) — no route exists", op, e.Event.Partner, n, mesh.Side())
				}
			}
		}
	}

	if analyzable && rep.Ok() {
		simulate(rep, sums, n, opt)
	}
	finish(rep)
	return rep
}

// LintSPMD lints n copies of one program composed as a machine — the
// Machine.LoadAll model mpurun and mpud use for submitted binaries. A single
// Lines table (the shared listing) is replicated across cores.
func LintSPMD(p isa.Program, n int, opt Options) *lint.Report {
	if n <= 0 {
		n = 1
	}
	progs := make([]isa.Program, n)
	for i := range progs {
		progs[i] = p
	}
	if opt.MPUs == 0 {
		opt.MPUs = n
	}
	if len(opt.Lines) == 1 && n > 1 {
		lines := make([][]int, n)
		for i := range lines {
			lines[i] = opt.Lines[0]
		}
		opt.Lines = lines
	}
	return LintMachine(progs, opt)
}

// simulate explores the composed event graph: a configuration is one
// automaton node per core, and transitions are matched SEND/RECV rendezvous
// (plus free SYNC advances) — the same matching rule the machine's barrier
// phase applies. A configuration with no enabled transition where some core
// still has a pending event is a statically reachable stall; its wait-for
// snapshot is classified and reported with the rendezvous path reaching it.
func simulate(rep *lint.Report, sums []*Summary, n int, opt Options) {
	enc := func(nodes []int) string {
		var sb strings.Builder
		for i, nd := range nodes {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(fmt.Sprintf("%d", nd))
		}
		return sb.String()
	}
	start := make([]int, n)
	startKey := enc(start)
	visited := map[string][]int{startKey: start}
	paths := map[string]pathStep{}
	queue := []string{startKey}
	reported := map[string]bool{}
	stalls := 0

	push := func(fromKey string, nodes []int, desc string) {
		k := enc(nodes)
		if _, ok := visited[k]; ok {
			return
		}
		visited[k] = nodes
		paths[k] = pathStep{prev: fromKey, desc: desc}
		queue = append(queue, k)
	}

	for len(queue) > 0 {
		if len(visited) > maxConfigs {
			addf(rep, lint.Warning, "comm-unanalyzable", -1, -1, 0,
				"composed state space exceeds %d configurations — exploration truncated", maxConfigs)
			return
		}
		k := queue[0]
		queue = queue[1:]
		nodes := visited[k]
		enabled := false

		// Free SYNC advances: MPU_SYNC drains the local pipeline and never
		// blocks on a partner.
		for c := 0; c < n; c++ {
			for _, e := range sums[c].Nodes[nodes[c]].Edges {
				if e.Event.Kind != EvSync {
					continue
				}
				enabled = true
				next := make([]int, n)
				copy(next, nodes)
				next[c] = e.To
				push(k, next, fmt.Sprintf("mpu%d SYNC@pc%d", c, e.Event.PC))
			}
		}
		// Matched rendezvous, ascending sender id — the barrier's order.
		for s := 0; s < n; s++ {
			for _, se := range sums[s].Nodes[nodes[s]].Edges {
				if se.Event.Kind != EvSend {
					continue
				}
				r := se.Event.Partner
				for _, re := range sums[r].Nodes[nodes[r]].Edges {
					if re.Event.Kind != EvRecv || re.Event.Partner != s {
						continue
					}
					enabled = true
					next := make([]int, n)
					copy(next, nodes)
					next[s], next[r] = se.To, re.To
					push(k, next, fmt.Sprintf("mpu%d→mpu%d@pc%d (%d pairs, %d copies)",
						s, r, se.Event.PC, se.Event.Pairs, se.Event.Copies))
				}
			}
		}
		if enabled {
			continue
		}

		// No transition fires. Cores with pending SEND/RECV edges are
		// blocked forever — the runtime deadlock detector would trip here.
		ws := configWaiters(sums, nodes)
		if len(ws) == 0 {
			continue // quiescent: every core finished (or spins locally)
		}
		check, headline, anchor := classifyStall(ws)
		key := check + "|" + FormatWaiters(ws)
		if reported[key] {
			continue
		}
		reported[key] = true
		msg := headline + "\n" + FormatWaiters(ws)
		if trace := tracePath(paths, k); trace != "" {
			msg += "\nreached after: " + trace
		}
		addf(rep, lint.Error, check, anchor.Core, anchor.PC, lineAt(opt, anchor.Core, anchor.PC), "%s", msg)
		if stalls++; stalls >= maxStallFindings {
			return
		}
	}
}

// configWaiters snapshots the blocked cores of a stuck configuration: each
// core with at least one pending SEND/RECV edge, described by its first such
// edge (extraction order is deterministic, so so is the snapshot).
func configWaiters(sums []*Summary, nodes []int) []Waiter {
	var ws []Waiter
	for c, nd := range nodes {
		for _, e := range sums[c].Nodes[nd].Edges {
			if e.Event.Kind == EvSync {
				continue
			}
			ws = append(ws, Waiter{Core: c, Op: e.Event.Kind.String(), Partner: e.Event.Partner, PC: e.Event.PC})
			break
		}
	}
	return ws
}

// classifyStall names the stall by following the wait-for chain from the
// lowest blocked core: a cycle is a deadlock (a 2-cycle of crossed SENDs is
// the lower-ID-sends-first violation); a chain ending at a core that is not
// blocked is an unmatched SEND or RECV — the partner already finished or
// never communicates back.
func classifyStall(ws []Waiter) (check, headline string, anchor Waiter) {
	byCore := map[int]Waiter{}
	for _, w := range ws {
		byCore[w.Core] = w
	}
	cur := ws[0]
	for _, w := range ws {
		if w.Core < cur.Core {
			cur = w
		}
	}
	seen := map[int]int{} // core → position in chain
	var chain []Waiter
	for {
		if pos, ok := seen[cur.Core]; ok {
			cycle := chain[pos:]
			if len(cycle) == 2 && cycle[0].Op == "SEND" && cycle[1].Op == "SEND" {
				return "comm-send-order",
					fmt.Sprintf("crossed sends: mpu%d and mpu%d both SEND first — the lower-ID core must send and the higher-ID core must RECV before its own SEND (lower-ID-sends-first rule)",
						cycle[0].Core, cycle[1].Core),
					cycle[0]
			}
			cores := make([]string, len(cycle))
			for i, w := range cycle {
				cores[i] = fmt.Sprintf("mpu%d", w.Core)
			}
			return "comm-deadlock",
				fmt.Sprintf("wait-for cycle %s → %s: no core in the cycle can make progress", strings.Join(cores, " → "), cores[0]),
				cycle[0]
		}
		seen[cur.Core] = len(chain)
		chain = append(chain, cur)
		next, blocked := byCore[cur.Partner]
		if !blocked {
			last := chain[len(chain)-1]
			if last.Op == "SEND" {
				return "comm-unmatched-send",
					fmt.Sprintf("mpu%d SENDs to mpu%d, which never issues a matching RECV", last.Core, last.Partner),
					last
			}
			return "comm-unmatched-recv",
				fmt.Sprintf("mpu%d RECVs from mpu%d, which never issues a matching SEND", last.Core, last.Partner),
				last
		}
		cur = next
	}
}

// pathStep records how the composed-graph exploration reached a
// configuration: the predecessor key and the transition description.
type pathStep struct {
	prev string
	desc string
}

// tracePath reconstructs the rendezvous prefix that reached the stall,
// trimmed to the last maxTraceSteps steps. Empty when the stall is the start
// configuration (the machine blocks before any rendezvous completes).
func tracePath(paths map[string]pathStep, key string) string {
	var steps []string
	for {
		st, ok := paths[key]
		if !ok {
			break
		}
		steps = append(steps, st.desc)
		key = st.prev
	}
	if len(steps) == 0 {
		return ""
	}
	// steps are stall→start; reverse into execution order.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	trimmed := ""
	if len(steps) > maxTraceSteps {
		trimmed = fmt.Sprintf("… %d earlier rendezvous, then ", len(steps)-maxTraceSteps)
		steps = steps[len(steps)-maxTraceSteps:]
	}
	return trimmed + strings.Join(steps, ", ")
}

func addf(rep *lint.Report, sev lint.Severity, check string, mpu, idx, line int, format string, args ...any) {
	rep.Findings = append(rep.Findings, lint.Finding{
		Severity: sev, Check: check, MPU: mpu, Index: idx, Line: line,
		Message: fmt.Sprintf(format, args...),
	})
}

func lineAt(opt Options, mpu, idx int) int {
	if mpu >= 0 && mpu < len(opt.Lines) && idx >= 0 && idx < len(opt.Lines[mpu]) {
		return opt.Lines[mpu][idx]
	}
	return 0
}

// finish orders findings like the base linter: severest first, then by core,
// then by instruction index.
func finish(rep *lint.Report) {
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.MPU != b.MPU {
			return a.MPU < b.MPU
		}
		return a.Index < b.Index
	})
}
