package comm_test

import (
	"fmt"
	"strings"
	"testing"

	"mpu/internal/backends"
	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/lint/comm"
	"mpu/internal/machine"
)

// FuzzCommSoundness is the differential oracle between commlint and the
// machine's runtime deadlock detector. The fuzzer drives a structured
// generator — 2–4 cores, each running a chain of SEND/RECV/MPU_SYNC/COMPUTE
// events with in-range partners — so every generated set is base-lint-clean
// and branch-free, where commlint is exact. The oracle is bidirectional:
//
//   - a commlint-clean set must run to completion (no runtime deadlock);
//   - a set commlint rejects must deadlock at runtime, proving every static
//     finding corresponds to a real failure (no false positives either).
func FuzzCommSoundness(f *testing.F) {
	// Seeds covering the interesting regimes: clean exchange, crossed sends,
	// orphan recv, a 3-core cycle, sync/compute noise.
	f.Add([]byte{2, 0, 1, 1, 0})                   // mpu0 SEND→1, mpu1 RECV←0: clean
	f.Add([]byte{2, 0, 1, 0, 0, 1, 0, 1, 1})       // crossed sends
	f.Add([]byte{2, 1, 1, 2, 0})                   // orphan recv + sync
	f.Add([]byte{3, 0, 1, 0, 2, 0, 0, 1, 0, 1, 1}) // ring-ish
	f.Add([]byte{4, 3, 0, 2, 0, 0, 3, 1, 2, 3, 0, 0, 1, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		progs, n := genPrograms(data)
		if progs == nil {
			t.Skip()
		}
		rep := comm.LintMachine(progs, comm.Options{MPUs: n, Spec: backends.RACER()})
		for _, fd := range rep.Findings {
			if fd.Check == "comm-unanalyzable" {
				t.Fatalf("generator produced an unanalyzable set:\n%s", rep)
			}
			if fd.Severity == lint.Error && !strings.HasPrefix(fd.Check, "comm-") {
				t.Fatalf("generator produced a base-lint-broken program: %s", fd)
			}
		}
		m, err := machine.New(machine.Config{Spec: backends.RACER(), Mode: machine.ModeMPU, NumMPUs: n})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range progs {
			if len(p) == 0 {
				continue
			}
			if err := m.LoadProgram(i, p); err != nil {
				t.Fatalf("load mpu%d: %v", i, err)
			}
		}
		_, runErr := m.Run()
		switch {
		case rep.Ok() && runErr != nil:
			t.Fatalf("commlint-clean set failed at runtime: %v\nreport:\n%s", runErr, rep)
		case !rep.Ok() && runErr == nil:
			t.Fatalf("commlint flagged a set that runs clean:\n%s", rep)
		case runErr != nil && !strings.Contains(runErr.Error(), "deadlock"):
			t.Fatalf("runtime failure is not a deadlock (generator bug): %v", runErr)
		}
	})
}

// genPrograms decodes fuzz bytes into a program set: data[0] picks the core
// count (2–4), then (op, operand) byte pairs round-robin across cores. Ops:
// 0 = SEND block, 1 = RECV, 2 = MPU_SYNC, 3 = compute ensemble. Partners are
// reduced mod the core count, so every program is base-lint-clean and every
// runtime failure can only be a rendezvous deadlock.
func genPrograms(data []byte) ([]isa.Program, int) {
	if len(data) < 3 {
		return nil, 0
	}
	n := int(data[0])%3 + 2
	srcs := make([]strings.Builder, n)
	events := make([]int, n)
	core := 0
	for i := 1; i+1 < len(data); i += 2 {
		op, arg := data[i]%4, int(data[i+1])%n
		if events[core] >= 6 {
			break // cap chain length to keep each run fast
		}
		sb := &srcs[core]
		switch op {
		case 0:
			fmt.Fprintf(sb, "SEND mpu%d\nMOVE rfh0 rfh0\nMEMCPY vrf0 r0 vrf0 r0\nMOVE_DONE\nSEND_DONE\n", arg)
		case 1:
			fmt.Fprintf(sb, "RECV mpu%d\n", arg)
		case 2:
			sb.WriteString("MPU_SYNC\n")
		case 3:
			sb.WriteString("COMPUTE rfh0 vrf0\nADD r0 r0 r1\nCOMPUTE_DONE\n")
		}
		events[core]++
		core = (core + 1) % n
	}
	progs := make([]isa.Program, n)
	for i := range progs {
		src := srcs[i].String()
		if src == "" {
			continue
		}
		p, err := isa.Assemble(src)
		if err != nil {
			return nil, 0
		}
		progs[i] = p
	}
	return progs, n
}
