// Package comm statically verifies cross-MPU communication — the "commlint"
// pass. Where package lint checks one binary in isolation, comm checks a
// whole machine: per-core abstract interpretation over the shared
// segmentation machinery extracts each program's communication summary (the
// ordered automaton of SEND/RECV/MPU_SYNC events it can emit, with partner
// ids, transfer-ensemble shapes, and branch-induced alternatives), and a
// machine-level composition checks the program set against the NoC topology:
// every SEND must find its matching RECV (and vice versa), partners must be
// routable in the instantiated mesh, the lower-ID-sends-first rule must hold
// for pairwise exchanges, and the composed event graph must be deadlock-free.
// Violations come with a concrete counterexample: the rendezvous path that
// reaches the stall and the who-waits-on-whom list, in the same format the
// machine's runtime deadlock diagnostic uses.
//
// Soundness contract (the FuzzCommSoundness oracle): a program set whose
// machine report has no Error findings and no comm-unanalyzable warnings
// never trips the runtime deadlock detector; conversely, every runtime
// deadlock is statically flagged. For programs without data-dependent
// communication (no JUMPCOND body can reach more than one COMPUTE_DONE) the
// analysis is exact; dynamic bodies make it a conservative
// over-approximation.
package comm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/recipe"
)

// EventKind classifies one communication action.
type EventKind uint8

const (
	// EvSend is a SEND…SEND_DONE block naming a destination MPU.
	EvSend EventKind = iota
	// EvRecv is a RECV naming a source MPU.
	EvRecv
	// EvSync is an MPU_SYNC fence — a local pipeline drain that never
	// blocks on another core, kept in the summary for completeness.
	EvSync
)

func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "SEND"
	case EvRecv:
		return "RECV"
	default:
		return "SYNC"
	}
}

// Event is one communication action a core can take.
type Event struct {
	Kind    EventKind
	Partner int // SEND destination / RECV source MPU id; -1 for SYNC
	PC      int // instruction index of the SEND/RECV/MPU_SYNC
	Pairs   int // SEND only: RFH pairs in the MOVE header (the transfer shape)
	Copies  int // SEND only: MEMCPY count in the block
}

func (e Event) String() string {
	switch e.Kind {
	case EvSend:
		return fmt.Sprintf("SEND→mpu%d@pc%d", e.Partner, e.PC)
	case EvRecv:
		return fmt.Sprintf("RECV←mpu%d@pc%d", e.Partner, e.PC)
	default:
		return fmt.Sprintf("SYNC@pc%d", e.PC)
	}
}

// Edge emits Event and continues at node To.
type Edge struct {
	Event Event
	To    int
}

// Node is one stable point between communication events. A node with more
// than one edge carries branch-induced alternatives (a dynamic ensemble body
// that can resume at different top-level pcs); a node with End set can also
// run to completion without further communication.
type Node struct {
	Edges []Edge
	End   bool
}

// Summary is the communication automaton extracted from one program:
// Nodes[0] is the entry. Complete is false when extraction hit an analysis
// bound (or the program is structurally broken), in which case the machine
// composition must not claim the program set clean.
type Summary struct {
	Nodes    []Node
	Complete bool
}

// Events returns every distinct communication event in the summary, in
// deterministic node/edge discovery order.
func (s *Summary) Events() []Event {
	var out []Event
	seen := map[Event]bool{}
	for _, nd := range s.Nodes {
		for _, e := range nd.Edges {
			if !seen[e.Event] {
				seen[e.Event] = true
				out = append(out, e.Event)
			}
		}
	}
	return out
}

const (
	// maxStack mirrors the machine's return-address stack depth (64): a
	// deeper call chain faults at runtime before it could communicate.
	maxStack = 64
	// maxStates bounds the abstract-state exploration per program.
	maxStates = 1 << 14
)

// position is one abstract execution state: a top-level pc plus the encoded
// return-address stack.
type position struct {
	pc    int
	stack string
}

func (q position) key() string { return strconv.Itoa(q.pc) + "|" + q.stack }

func pushStack(stack string, ret int) string {
	if stack == "" {
		return strconv.Itoa(ret)
	}
	return stack + "," + strconv.Itoa(ret)
}

func popStack(stack string) (ret int, rest string, ok bool) {
	if stack == "" {
		return 0, "", false
	}
	if i := strings.LastIndexByte(stack, ','); i >= 0 {
		n, err := strconv.Atoi(stack[i+1:])
		return n, stack[:i], err == nil
	}
	n, err := strconv.Atoi(stack)
	return n, "", err == nil
}

func stackDepth(stack string) int {
	if stack == "" {
		return 0
	}
	return strings.Count(stack, ",") + 1
}

// Extract computes the communication summary of p by abstract interpretation
// of the top-level dispatch (machine.core.run): ensembles are consumed with
// the same lexical scans the machine uses, JUMP/RETURN thread an explicit
// abstract return stack, and a compute ensemble whose body can reach more
// than one COMPUTE_DONE (via JUMPCOND) contributes one successor per exit —
// the branch-induced alternatives. Programs should already pass the base
// linter; on structurally broken programs extraction marks the summary
// incomplete instead of guessing.
func Extract(p isa.Program) *Summary {
	s := &Summary{Complete: true}
	if len(p) == 0 {
		s.Nodes = []Node{{End: true}}
		return s
	}
	nodeIdx := map[string]int{}
	var queue []position
	nodeFor := func(q position) int {
		k := q.key()
		if i, ok := nodeIdx[k]; ok {
			return i
		}
		i := len(s.Nodes)
		s.Nodes = append(s.Nodes, Node{})
		nodeIdx[k] = i
		queue = append(queue, q)
		return i
	}
	exitMemo := map[int][]int{}
	exitKnown := map[int]bool{}
	states := 0
	nodeFor(position{pc: 0})
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		ni := nodeIdx[q.key()]
		// ε-closure: run the non-communicating execution forward until the
		// next event, program completion, or a dead end.
		seen := map[string]bool{}
		work := []position{q}
		for len(work) > 0 {
			cur := work[len(work)-1]
			work = work[:len(work)-1]
			k := cur.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			if states++; states > maxStates {
				s.Complete = false
				return s
			}
			if cur.pc < 0 || cur.pc >= len(p) {
				s.Nodes[ni].End = true
				continue
			}
			in := p[cur.pc]
			switch in.Op {
			case isa.NOP:
				work = append(work, position{cur.pc + 1, cur.stack})
			case isa.MPUSYNC:
				to := nodeFor(position{cur.pc + 1, cur.stack})
				s.addEdge(ni, Event{Kind: EvSync, Partner: -1, PC: cur.pc}, to)
			case isa.COMPUTE:
				exits, ok := ensembleExits(p, cur.pc, exitMemo, exitKnown)
				if !ok {
					s.Complete = false
					continue
				}
				for _, e := range exits {
					work = append(work, position{e, cur.stack})
				}
			case isa.MOVE:
				end, bad := lint.SegTransfer(p, cur.pc)
				if bad >= 0 || end < 0 {
					s.Complete = false
					continue
				}
				work = append(work, position{end, cur.stack})
			case isa.SEND:
				end, bad, noHeader := lint.SegSend(p, cur.pc)
				if bad >= 0 || end < 0 || noHeader {
					s.Complete = false
					continue
				}
				ev := Event{Kind: EvSend, Partner: int(in.Imm), PC: cur.pc}
				ev.Pairs, ev.Copies = sendShape(p, cur.pc)
				to := nodeFor(position{end, cur.stack})
				s.addEdge(ni, ev, to)
			case isa.RECV:
				to := nodeFor(position{cur.pc + 1, cur.stack})
				s.addEdge(ni, Event{Kind: EvRecv, Partner: int(in.Imm), PC: cur.pc}, to)
			case isa.JUMP:
				if stackDepth(cur.stack) >= maxStack {
					// The return-address stack overflows here at runtime; no
					// deeper path can reach a rendezvous.
					continue
				}
				work = append(work, position{int(in.Imm), pushStack(cur.stack, cur.pc+1)})
			case isa.RETURN:
				if ret, rest, ok := popStack(cur.stack); ok {
					work = append(work, position{ret, rest})
				}
				// Underflow is a runtime fault the base linter flags as
				// return-unbalanced; a dead end for the summary.
			default:
				// Not executable at the top level (outside-ensemble Error in
				// the base linter): the core faults before communicating.
			}
		}
	}
	return s
}

// addEdge appends the edge unless an identical one exists (ε-paths can reach
// the same event more than once).
func (s *Summary) addEdge(from int, ev Event, to int) {
	for _, e := range s.Nodes[from].Edges {
		if e.Event == ev && e.To == to {
			return
		}
	}
	s.Nodes[from].Edges = append(s.Nodes[from].Edges, Edge{Event: ev, To: to})
}

// ensembleExits returns the top-level resumption pcs of the compute ensemble
// opening at header: the pc just past every COMPUTE_DONE its body can reach.
// The walk mirrors machine.core.runBody's dispatch but is
// call-structure-insensitive (a JUMP explores both the callee and the
// fall-through), an over-approximation covering every runtime path. ok is
// false when the ensemble is not well-bracketed — impossible for programs
// the base linter passes with no Errors.
func ensembleExits(p isa.Program, header int, memo map[int][]int, known map[int]bool) ([]int, bool) {
	if known[header] {
		exits, ok := memo[header]
		return exits, ok
	}
	known[header] = true
	bodyStart, done, bad := lint.SegCompute(p, header)
	if bad >= 0 || done < 0 {
		return nil, false
	}
	var exits []int
	seen := make([]bool, len(p))
	work := []int{bodyStart}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if pc < 0 || pc >= len(p) || seen[pc] {
			continue
		}
		seen[pc] = true
		in := p[pc]
		switch {
		case in.Op == isa.COMPUTEDONE:
			exits = append(exits, pc+1)
		case recipe.IsDatapathOp(in.Op),
			in.Op == isa.SETMASK, in.Op == isa.UNMASK, in.Op == isa.GETMASK,
			in.Op == isa.NOP:
			work = append(work, pc+1)
		case in.Op == isa.JUMPCOND, in.Op == isa.JUMP:
			work = append(work, int(in.Imm), pc+1)
		case in.Op == isa.RETURN:
			// Returns within the body context; the JUMP fall-through above
			// already covers the continuation.
		default:
			// Illegal inside a body (illegal-in-ensemble Error): the core
			// faults before reaching a rendezvous.
		}
	}
	sort.Ints(exits)
	memo[header] = exits
	return exits, true
}

// sendShape reports the transfer-ensemble shape of the SEND block at pc:
// the MOVE-header pair count and the MEMCPY count before SEND_DONE.
func sendShape(p isa.Program, pc int) (pairs, copies int) {
	i := pc + 1
	for i < len(p) && p[i].Op == isa.MOVE {
		pairs++
		i++
	}
	for ; i < len(p); i++ {
		switch p[i].Op {
		case isa.MEMCPY:
			copies++
		case isa.SENDDONE:
			return pairs, copies
		}
	}
	return pairs, copies
}
