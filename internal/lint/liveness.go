package lint

import (
	"math/bits"

	"mpu/internal/isa"
	"mpu/internal/recipe"
)

// Def-use analysis over one lexical ensemble body. The body is the only
// place vector registers are read or written, and isa.NumRegs == 64 lets a
// register set live in one word.

type regset uint64

const fullSet = ^regset(0)

func toSet(regs []int) regset {
	var s regset
	for _, r := range regs {
		s |= 1 << uint(r)
	}
	return s
}

// livenessPass runs read-before-write, dead-write, and register-pressure
// analysis over every reachable compute-ensemble body.
func (w *walker) livenessPass() {
	maxLive := w.opt.MaxLiveRegs
	if maxLive <= 0 || maxLive > isa.NumRegs {
		maxLive = isa.NumRegs
	}
	for _, seg := range w.ensembles {
		w.analyzeBody(seg, maxLive)
	}
}

// bodyFlow is the intra-ensemble flow graph: one node per instruction in
// [bodyStart, done], plus a synthetic exit for COMPUTE_DONE, RETURN,
// escaping JUMP_COND targets, and illegal instructions.
type bodyFlow struct {
	p     isa.Program
	start int
	n     int
	succ  [][]int // local indices
	exit  []bool  // node has an edge to the exit
}

func newBodyFlow(p isa.Program, seg computeSeg) *bodyFlow {
	f := &bodyFlow{p: p, start: seg.bodyStart, n: seg.done - seg.bodyStart + 1}
	f.succ = make([][]int, f.n)
	f.exit = make([]bool, f.n)
	for li := 0; li < f.n; li++ {
		in := p[f.start+li]
		switch {
		case in.Op == isa.COMPUTEDONE, in.Op == isa.RETURN:
			f.exit[li] = true
		case in.Op == isa.JUMPCOND:
			if t := int(in.Imm) - f.start; t >= 0 && t < f.n {
				f.succ[li] = append(f.succ[li], t)
			} else {
				f.exit[li] = true
			}
			f.succ[li] = append(f.succ[li], li+1)
		case in.Op == isa.JUMP,
			recipe.IsDatapathOp(in.Op),
			in.Op == isa.SETMASK, in.Op == isa.UNMASK, in.Op == isa.GETMASK,
			in.Op == isa.NOP:
			f.succ[li] = append(f.succ[li], li+1)
		default:
			// Illegal in a body; the walk already errored. Treat as exit.
			f.exit[li] = true
		}
		// The last node is always the lexical COMPUTE_DONE (an exit with no
		// successors), so li+1 never leaves the range.
	}
	return f
}

// useDef returns the registers an instruction reads and fully writes. A
// JUMP is a call barrier: the callee may read or write anything.
func useDef(in isa.Instr) (use, def regset) {
	if in.Op == isa.JUMP {
		return fullSet, fullSet
	}
	return toSet(in.Reads()), toSet(in.Writes())
}

// mustDefined computes, per node, the set of registers written on every
// path from the body entry (forward intersection dataflow).
func (f *bodyFlow) mustDefined() []regset {
	in := make([]regset, f.n)
	for i := range in {
		in[i] = fullSet
	}
	in[0] = 0
	for changed := true; changed; {
		changed = false
		for li := 0; li < f.n; li++ {
			_, def := useDef(f.p[f.start+li])
			out := in[li] | def
			for _, s := range f.succ[li] {
				if nv := in[s] & out; nv != in[s] {
					in[s] = nv
					changed = true
				}
			}
		}
	}
	return in
}

// liveIn computes backward liveness with exitLive assumed live at every
// exit edge. Calls (JUMP) use everything and kill nothing.
func (f *bodyFlow) liveIn(exitLive regset) []regset {
	in := make([]regset, f.n)
	for changed := true; changed; {
		changed = false
		for li := f.n - 1; li >= 0; li-- {
			var out regset
			if f.exit[li] {
				out = exitLive
			}
			for _, s := range f.succ[li] {
				out |= in[s]
			}
			use, def := useDef(f.p[f.start+li])
			if f.p[f.start+li].Op == isa.JUMP {
				def = 0
			}
			if nv := use | (out &^ def); nv != in[li] {
				in[li] = nv
				changed = true
			}
		}
	}
	return in
}

// liveOutAt recomputes the live-out set of one node from its successors.
func (f *bodyFlow) liveOutAt(li int, in []regset, exitLive regset) regset {
	var out regset
	if f.exit[li] {
		out = exitLive
	}
	for _, s := range f.succ[li] {
		out |= in[s]
	}
	return out
}

func (w *walker) analyzeBody(seg computeSeg, maxLive int) {
	f := newBodyFlow(w.p, seg)
	hasMask := false
	var touched regset
	for li := 0; li < f.n; li++ {
		in := w.p[f.start+li]
		if in.Op == isa.SETMASK {
			hasMask = true
		}
		use, def := useDef(in)
		if in.Op != isa.JUMP {
			touched |= use | def
		}
	}

	// Read-before-write: a register read on some path before any write.
	// Info severity — kernels legitimately read host-preloaded inputs.
	defined := f.mustDefined()
	var reported regset
	for li := 0; li < f.n; li++ {
		in := w.p[f.start+li]
		if in.Op == isa.JUMP {
			continue
		}
		for _, r := range in.Reads() {
			bit := regset(1) << uint(r)
			if defined[li]&bit == 0 && reported&bit == 0 {
				reported |= bit
				w.addf(Info, "read-before-write", f.start+li,
					"r%d read before any write in this ensemble (host-preloaded input?)", r)
			}
		}
	}

	// Dead writes: a full write whose value cannot be observed. Skipped for
	// predicated bodies — under a SETMASK, writes merge with prior values
	// lane-by-lane, so nothing fully kills. Exits assume every register may
	// be read back by the host.
	if !hasMask {
		live := f.liveIn(fullSet)
		for li := 0; li < f.n; li++ {
			in := w.p[f.start+li]
			if in.Op == isa.JUMP {
				continue
			}
			out := f.liveOutAt(li, live, fullSet)
			for _, r := range in.Writes() {
				if out&(regset(1)<<uint(r)) == 0 {
					w.addf(Warning, "dead-write", f.start+li,
						"write to r%d is overwritten before any read", r)
				}
			}
		}
	}

	// Register pressure vs. the configured live-register budget. The exit
	// assumes only registers the body itself touches stay live.
	if maxLive < isa.NumRegs {
		live := f.liveIn(touched)
		peak, at := 0, f.start
		for li := 0; li < f.n; li++ {
			if n := bits.OnesCount64(uint64(live[li])); n > peak {
				peak, at = n, f.start+li
			}
		}
		if peak > maxLive {
			w.addf(Error, "register-pressure", at,
				"%d vector registers simultaneously live exceeds the budget of %d", peak, maxLive)
		}
	}
}
