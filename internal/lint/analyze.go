package lint

import (
	"fmt"
	"sort"
	"strings"

	"mpu/internal/isa"
)

// Analysis is a static summary of an MPU binary — the toolchain-side view a
// compiler or autotuner needs before dispatch. It lives next to the linter
// so both views are built from the same lexical segmentation (scanCompute /
// scanTransfer / scanSend) and cannot drift apart.
type Analysis struct {
	Instructions int
	BinaryBytes  int

	ByClass map[isa.Class]int
	ByOp    map[isa.Op]int

	ComputeEnsembles  int
	TransferEnsembles int
	SendBlocks        int
	Recvs             int
	HeaderVRFs        []int // per compute ensemble, in program order
	MaxHeaderVRFs     int   // largest compute-ensemble header
	MaxBodyLen        int   // largest straight-line ensemble body (playback pressure)
	JumpTargets       int
	HasDynamicLoops   bool // any JUMP_COND
	HasSubroutines    bool // any JUMP/RETURN
	VRFsTouched       int  // distinct (rfh, vrf) pairs in COMPUTE headers
}

// Analyze computes the static summary of p.
func Analyze(p isa.Program) Analysis {
	a := Analysis{
		Instructions: len(p),
		BinaryBytes:  p.BinarySize(),
		ByClass:      map[isa.Class]int{},
		ByOp:         map[isa.Op]int{},
	}
	vrfs := map[[2]uint8]bool{}
	targets := map[int32]bool{}
	for _, in := range p {
		a.ByClass[isa.ClassOf(in.Op)]++
		a.ByOp[in.Op]++
		switch in.Op {
		case isa.COMPUTE:
			vrfs[[2]uint8{in.A, in.B}] = true
		case isa.JUMPCOND:
			a.HasDynamicLoops = true
			targets[in.Imm] = true
		case isa.JUMP:
			a.HasSubroutines = true
			targets[in.Imm] = true
		case isa.RETURN:
			a.HasSubroutines = true
		}
	}
	a.JumpTargets = len(targets)
	a.VRFsTouched = len(vrfs)

	// Ensemble structure from the shared lexical segmenters.
	for i := 0; i < len(p); {
		switch p[i].Op {
		case isa.COMPUTE:
			seg := scanCompute(p, i)
			a.ComputeEnsembles++
			h := seg.headerLen()
			a.HeaderVRFs = append(a.HeaderVRFs, h)
			if h > a.MaxHeaderVRFs {
				a.MaxHeaderVRFs = h
			}
			if seg.done >= 0 {
				if n := seg.done - seg.bodyStart + 1; n > a.MaxBodyLen {
					a.MaxBodyLen = n
				}
				i = seg.done + 1
			} else {
				i = seg.bodyStart
			}
		case isa.MOVE:
			a.TransferEnsembles++
			if end, _ := scanTransfer(p, i); end > i {
				i = end
			} else {
				i++
			}
		case isa.SEND:
			a.SendBlocks++
			if end, _, _ := scanSend(p, i); end > i {
				i = end
			} else {
				i++
			}
		case isa.RECV:
			a.Recvs++
			i++
		default:
			i++
		}
	}
	return a
}

// String renders the analysis as a short report.
func (a Analysis) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d instructions (%d bytes)\n", a.Instructions, a.BinaryBytes)
	fmt.Fprintf(&sb, "ensembles: %d compute (max header %d VRFs, max body %d), %d transfer, %d send, %d recv\n",
		a.ComputeEnsembles, a.MaxHeaderVRFs, a.MaxBodyLen, a.TransferEnsembles, a.SendBlocks, a.Recvs)
	fmt.Fprintf(&sb, "control: dynamic loops=%v subroutines=%v jump targets=%d\n",
		a.HasDynamicLoops, a.HasSubroutines, a.JumpTargets)
	// Deterministic op histogram, densest first.
	type kv struct {
		op isa.Op
		n  int
	}
	var ops []kv
	for op, n := range a.ByOp {
		ops = append(ops, kv{op, n})
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].n != ops[j].n {
			return ops[i].n > ops[j].n
		}
		return ops[i].op < ops[j].op
	})
	sb.WriteString("op histogram:")
	for i, o := range ops {
		if i == 8 {
			fmt.Fprintf(&sb, " … (%d more)", len(ops)-8)
			break
		}
		fmt.Fprintf(&sb, " %s×%d", o.op, o.n)
	}
	sb.WriteByte('\n')
	return sb.String()
}
