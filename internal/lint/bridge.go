package lint

import "mpu/internal/isa"

// The exported Seg* hooks below expose the lexical segmenters to the
// lint/comm machine-composition pass, so its per-core abstract interpreter
// consumes ensembles with exactly the same scans as the CFG walker and the
// machine — one source of truth for where a block ends.

// SegCompute segments the compute ensemble opening at pc (p[pc] must be
// COMPUTE): bodyStart is the first instruction after the COMPUTE header run,
// done the lexical COMPUTE_DONE index (-1 if missing), bad the index of an
// illegal opener inside the body scan (-1 if none).
func SegCompute(p isa.Program, pc int) (bodyStart, done, bad int) {
	seg := scanCompute(p, pc)
	return seg.bodyStart, seg.done, seg.bad
}

// SegTransfer segments the transfer ensemble opening at pc (p[pc] must be
// MOVE): end is the index just past MOVE_DONE (-1 if the footer is missing),
// bad as in SegCompute.
func SegTransfer(p isa.Program, pc int) (end, bad int) {
	return scanTransfer(p, pc)
}

// SegSend segments the inter-MPU send block opening at pc (p[pc] must be
// SEND): end is the index just past SEND_DONE (-1 if missing); noHeader
// reports a block with no MOVE run after the SEND.
func SegSend(p isa.Program, pc int) (end, bad int, noHeader bool) {
	return scanSend(p, pc)
}
