package lint

import (
	"mpu/internal/isa"
)

// encodingPass validates operand encodings and jump-target ranges, the same
// gate Machine.LoadProgram applies via Program.Validate. The CFG walk only
// runs when this pass is clean.
func (w *walker) encodingPass() {
	for i, in := range w.p {
		if err := in.Validate(); err != nil {
			w.addf(Error, "bad-encoding", i, "%v", err)
			continue
		}
		if in.Op == isa.JUMP || in.Op == isa.JUMPCOND {
			if int(in.Imm) >= len(w.p) {
				w.addf(Error, "jump-range", i,
					"%s target %d beyond program end %d", in.Op, in.Imm, len(w.p))
			}
		}
	}
}

// unreachablePass warns about instructions no walk state covered. Reported
// per contiguous run to keep one dead region one finding.
func (w *walker) unreachablePass() {
	for i := 0; i < len(w.covered); i++ {
		if w.covered[i] {
			continue
		}
		j := i
		for j < len(w.covered) && !w.covered[j] {
			j++
		}
		if j-i == 1 {
			w.addf(Warning, "unreachable", i, "instruction %s is unreachable", w.p[i].Op)
		} else {
			w.addf(Warning, "unreachable", i,
				"instructions %d..%d (%d) are unreachable", i, j-1, j-i)
		}
		i = j
	}
}

// capacityPass checks every instruction's resource ids against the
// configured back-end spec — the static counterpart of machine.checkAddr —
// and annotates compute headers with their thermal scheduling cost.
func (w *walker) capacityPass() {
	spec := w.opt.Spec
	if spec == nil {
		return
	}
	for i, in := range w.p {
		switch in.Op {
		case isa.COMPUTE:
			if int(in.A) >= spec.RFHsPerMPU {
				w.addf(Error, "capacity-rfh", i,
					"COMPUTE rfh%d out of range [0,%d) on %s", in.A, spec.RFHsPerMPU, spec.Name)
			}
			if int(in.B) >= spec.VRFsPerRFH {
				w.addf(Error, "capacity-vrf", i,
					"COMPUTE vrf%d out of range [0,%d) on %s", in.B, spec.VRFsPerRFH, spec.Name)
			}
		case isa.MOVE:
			if int(in.A) >= spec.RFHsPerMPU || int(in.B) >= spec.RFHsPerMPU {
				w.addf(Error, "capacity-rfh", i,
					"MOVE rfh%d->rfh%d out of range [0,%d) on %s", in.A, in.B, spec.RFHsPerMPU, spec.Name)
			}
		case isa.MEMCPY:
			if int(in.A) >= spec.VRFsPerRFH || int(in.C) >= spec.VRFsPerRFH {
				w.addf(Error, "capacity-vrf", i,
					"MEMCPY vrf%d->vrf%d out of range [0,%d) on %s", in.A, in.C, spec.VRFsPerRFH, spec.Name)
			}
		case isa.SEND, isa.RECV:
			if int(in.Imm) >= spec.MPUs {
				w.addf(Error, "capacity-mpu", i,
					"%s mpu%d out of range [0,%d) on %s", in.Op, in.Imm, spec.MPUs, spec.Name)
			}
		}
	}
	// Header-level checks on the lexical COMPUTE runs (reachable or not).
	for i := 0; i < len(w.p); i++ {
		if w.p[i].Op != isa.COMPUTE {
			continue
		}
		seen := map[[2]uint8]bool{}
		perRFH := map[uint8]int{}
		j := i
		for ; j < len(w.p) && w.p[j].Op == isa.COMPUTE; j++ {
			key := [2]uint8{w.p[j].A, w.p[j].B}
			if seen[key] {
				w.addf(Warning, "duplicate-activation", j,
					"rfh%d vrf%d activated twice in one ensemble header", w.p[j].A, w.p[j].B)
			}
			seen[key] = true
			perRFH[w.p[j].A]++
		}
		if limit := spec.ActiveVRFsPerRFH; limit > 0 {
			maxPer := 0
			for _, n := range perRFH {
				if n > maxPer {
					maxPer = n
				}
			}
			if rounds := (maxPer + limit - 1) / limit; rounds > 1 {
				w.addf(Info, "activation-rounds", i,
					"header activates up to %d VRFs per RFH; thermal limit %d on %s replays the body over %d scheduler rounds",
					maxPer, limit, spec.Name, rounds)
			}
		}
		i = j - 1
	}
}

// condWriters are the ops that load the per-lane conditional register
// (recipe gCondWrite sites).
func writesCond(op isa.Op) bool {
	switch op {
	case isa.CMPEQ, isa.CMPGT, isa.CMPLT, isa.FUZZY:
		return true
	}
	return false
}

// maskPass runs the lexical per-ensemble control checks: SETMASK cond must
// follow some comparison (a fresh VRF's conditional register is all-zero, so
// the mask would disable every lane), and JUMP_COND targets should stay
// inside the ensemble that is executing them (escaping is legal but replays
// foreign code under this ensemble's activation batch).
func (w *walker) maskPass() {
	for _, seg := range w.ensembles {
		for i := seg.bodyStart; i < seg.done; i++ {
			in := w.p[i]
			switch in.Op {
			case isa.SETMASK:
				if in.A != isa.RegCond {
					continue
				}
				// The conditional register is per-VRF state that survives
				// ensemble boundaries and subroutine calls, so any reachable
				// earlier comparison — in this body, a callee, or a prior
				// ensemble — may prime it (cross-ensemble persistence is
				// assumed, not tracked per VRF). Unreachable comparisons
				// never execute and do not count.
				primed := false
				for j := 0; j < i; j++ {
					if writesCond(w.p[j].Op) && w.covered[j] {
						primed = true
						break
					}
				}
				if !primed {
					w.addf(Warning, "setmask-before-compare", i,
						"SETMASK cond with no prior comparison — the conditional register is still all-zero, masking off every lane")
				}
			case isa.JUMPCOND:
				if t := int(in.Imm); t < seg.header || t > seg.done {
					w.addf(Warning, "jump-escapes-ensemble", i,
						"JUMP_COND target %d lies outside the compute ensemble [%d,%d]", t, seg.header, seg.done)
				}
			}
		}
	}
}
