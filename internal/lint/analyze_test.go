package lint

import (
	"strings"
	"testing"

	"mpu/internal/isa"
)

func TestAnalyzeEnsembleProgram(t *testing.T) {
	p, err := isa.Assemble(`
		COMPUTE rfh0 vrf0
		COMPUTE rfh1 vrf3
		ADD r0 r1 r2
		CMPGT r2 r3
		SETMASK cond
	loop:
		SUB r2 r4 r2
		CMPGT r2 r3
		SETMASK cond
		JUMP_COND loop
		COMPUTE_DONE

		MOVE rfh0 rfh1
		MEMCPY vrf0 r2 vrf3 r5
		MOVE_DONE

		SEND mpu1
		MOVE rfh0 rfh0
		MEMCPY vrf0 r5 vrf0 r5
		MOVE_DONE
		SEND_DONE
	`)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	if a.Instructions != len(p) || a.BinaryBytes != 4*len(p) {
		t.Fatalf("size accounting wrong: %+v", a)
	}
	if a.ComputeEnsembles != 1 || a.MaxHeaderVRFs != 2 {
		t.Fatalf("compute ensembles = %d header %d", a.ComputeEnsembles, a.MaxHeaderVRFs)
	}
	if len(a.HeaderVRFs) != 1 || a.HeaderVRFs[0] != 2 {
		t.Fatalf("HeaderVRFs = %v, want [2]", a.HeaderVRFs)
	}
	if a.TransferEnsembles != 1 {
		t.Fatalf("transfer ensembles = %d, want 1 (the SEND's MOVE is part of the send block)", a.TransferEnsembles)
	}
	if a.SendBlocks != 1 || a.Recvs != 0 {
		t.Fatalf("send/recv = %d/%d", a.SendBlocks, a.Recvs)
	}
	if !a.HasDynamicLoops || a.HasSubroutines {
		t.Fatalf("control detection: %+v", a)
	}
	if a.VRFsTouched != 2 {
		t.Fatalf("VRFs touched = %d", a.VRFsTouched)
	}
	if a.ByOp[isa.SETMASK] != 2 || a.ByClass[isa.ClassArith] == 0 {
		t.Fatalf("histograms wrong: %+v", a.ByOp)
	}
	if a.MaxBodyLen != 8 { // ADD..COMPUTE_DONE
		t.Fatalf("MaxBodyLen = %d", a.MaxBodyLen)
	}
	s := a.String()
	for _, want := range []string{"instructions", "dynamic loops=true", "op histogram:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzeSubroutines(t *testing.T) {
	p, _ := isa.Assemble("JUMP main\nsub: ADD r0 r1 r2\nRETURN\nmain: COMPUTE rfh0 vrf0\nJUMP sub\nCOMPUTE_DONE")
	a := Analyze(p)
	if !a.HasSubroutines {
		t.Fatal("subroutines not detected")
	}
	if a.JumpTargets != 2 {
		t.Fatalf("jump targets = %d, want 2", a.JumpTargets)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Instructions != 0 || a.ComputeEnsembles != 0 {
		t.Fatalf("empty analysis: %+v", a)
	}
}

// A header run at the very end of the program (no body, no footer) must
// still be counted and must not hang or panic the segmentation loop.
func TestAnalyzeTrailingHeader(t *testing.T) {
	p := isa.Program{isa.Compute(0, 0), isa.Compute(1, 0)}
	a := Analyze(p)
	if a.ComputeEnsembles != 1 || a.MaxHeaderVRFs != 2 || a.MaxBodyLen != 0 {
		t.Fatalf("trailing header analysis: %+v", a)
	}
	if len(a.HeaderVRFs) != 1 || a.HeaderVRFs[0] != 2 {
		t.Fatalf("HeaderVRFs = %v, want [2]", a.HeaderVRFs)
	}
}

func TestAnalyzePerEnsembleHeaders(t *testing.T) {
	p, err := isa.Assemble(`
		COMPUTE rfh0 vrf0
		ADD r0 r1 r2
		COMPUTE_DONE
		COMPUTE rfh0 vrf0
		COMPUTE rfh1 vrf0
		COMPUTE rfh2 vrf0
		ADD r0 r1 r2
		COMPUTE_DONE
	`)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(p)
	if a.ComputeEnsembles != 2 {
		t.Fatalf("compute ensembles = %d, want 2", a.ComputeEnsembles)
	}
	if len(a.HeaderVRFs) != 2 || a.HeaderVRFs[0] != 1 || a.HeaderVRFs[1] != 3 {
		t.Fatalf("HeaderVRFs = %v, want [1 3]", a.HeaderVRFs)
	}
	if a.MaxHeaderVRFs != 3 {
		t.Fatalf("MaxHeaderVRFs = %d, want 3", a.MaxHeaderVRFs)
	}
}
