package lint_test

import (
	"testing"

	"mpu/internal/apps"
	"mpu/internal/backends"
	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

// Every workload kernel's SPMD binary must lint warning-free (Info
// observations such as reads of host-preloaded inputs are allowed) on every
// back end shape. This pins the toolchain: a builder change that starts
// emitting suspicious code fails here before it ever reaches an experiment.
func TestAllKernelsLintClean(t *testing.T) {
	kernels := workloads.All()
	if len(kernels) < 21 {
		t.Fatalf("kernel suite shrank: %d kernels, want at least 21", len(kernels))
	}
	for _, spec := range backends.All() {
		for _, k := range kernels {
			simVRFs := 4
			if cap := spec.VRFsPerMPU(); simVRFs > cap {
				simVRFs = cap
			}
			p, _, err := workloads.BuildProgram(k, spec, simVRFs)
			if err != nil {
				t.Fatalf("%s on %s: %v", k.Name, spec.Name, err)
			}
			r := lint.Lint(p, lint.Options{Spec: spec})
			if !r.Clean() {
				t.Errorf("%s on %s not lint-clean:\n%s", k.Name, spec.Name, r)
			}
		}
	}
}

// The three end-to-end applications must lint warning-free as well, across
// every per-MPU program they build.
func TestAppsLintClean(t *testing.T) {
	spec := backends.RACER()
	builds := []struct {
		name  string
		progs func() ([]isa.Program, error)
	}{
		{"BlackScholes", func() ([]isa.Program, error) {
			return apps.BuildBlackScholesPrograms(apps.BlackScholesConfig{Spec: spec, Mode: machine.ModeMPU})
		}},
		{"LLMEncode", func() ([]isa.Program, error) {
			return apps.BuildLLMEncodePrograms(apps.LLMEncodeConfig{Spec: spec, Mode: machine.ModeMPU})
		}},
		{"EditDistance", func() ([]isa.Program, error) {
			return apps.BuildEditDistancePrograms(apps.EditDistanceConfig{Spec: spec, Mode: machine.ModeMPU})
		}},
	}
	for _, b := range builds {
		t.Run(b.name, func(t *testing.T) {
			progs, err := b.progs()
			if err != nil {
				t.Fatal(err)
			}
			if len(progs) < 2 {
				t.Fatalf("app built only %d programs", len(progs))
			}
			for i, p := range progs {
				r := lint.Lint(p, lint.Options{Spec: spec})
				if !r.Clean() {
					t.Errorf("mpu%d program not lint-clean:\n%s", i, r)
				}
			}
		})
	}
}
