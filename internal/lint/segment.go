package lint

import "mpu/internal/isa"

// The lexical segmenters below mirror the machine's ensemble consumption
// exactly (machine.runComputeEnsemble / findComputeDone,
// runTransferEnsemble, rendezvous). Both the CFG walker and Analyze build on
// them, so the two views of a program cannot drift apart.

// computeSeg is one lexical compute ensemble: a run of COMPUTE activations
// followed by a straight-line body up to the first COMPUTE_DONE.
type computeSeg struct {
	header    int // index of the first COMPUTE
	bodyStart int // first instruction after the header run
	done      int // index of the lexical COMPUTE_DONE, -1 if missing
	bad       int // index of an illegal opener inside the body scan, -1 if none
}

// headerLen returns the number of COMPUTE activations in the header.
func (s computeSeg) headerLen() int { return s.bodyStart - s.header }

// scanCompute segments the compute ensemble opening at pc (p[pc] must be
// COMPUTE). Mirrors machine.findComputeDone: the body scan stops at the
// first COMPUTE_DONE and rejects ensemble/inter-MPU openers on the way.
func scanCompute(p isa.Program, pc int) computeSeg {
	seg := computeSeg{header: pc, done: -1, bad: -1}
	i := pc
	for i < len(p) && p[i].Op == isa.COMPUTE {
		i++
	}
	seg.bodyStart = i
	for ; i < len(p); i++ {
		switch p[i].Op {
		case isa.COMPUTEDONE:
			seg.done = i
			return seg
		case isa.COMPUTE, isa.MOVE, isa.SEND, isa.RECV:
			seg.bad = i
			return seg
		}
	}
	return seg
}

// scanTransfer segments the transfer ensemble opening at pc (p[pc] must be
// MOVE). end is the index just past MOVE_DONE (-1 if the footer is missing);
// bad is the index of an instruction illegal inside the ensemble (-1 if
// none). Mirrors machine.runTransferEnsemble.
func scanTransfer(p isa.Program, pc int) (end, bad int) {
	i := pc
	for i < len(p) && p[i].Op == isa.MOVE {
		i++
	}
	for ; i < len(p); i++ {
		switch p[i].Op {
		case isa.MOVEDONE:
			return i + 1, -1
		case isa.MEMCPY, isa.NOP:
		default:
			return -1, i
		}
	}
	return -1, -1
}

// scanSend segments the inter-MPU send block opening at pc (p[pc] must be
// SEND). end is the index just past SEND_DONE (-1 if missing); bad as in
// scanTransfer; noHeader reports a block with no MOVE run after the SEND.
// Mirrors machine.rendezvous.
func scanSend(p isa.Program, pc int) (end, bad int, noHeader bool) {
	i := pc + 1
	moves := 0
	for i < len(p) && p[i].Op == isa.MOVE {
		moves++
		i++
	}
	if moves == 0 {
		return -1, -1, true
	}
	for ; i < len(p); i++ {
		switch p[i].Op {
		case isa.SENDDONE:
			return i + 1, -1, false
		case isa.MEMCPY, isa.MOVEDONE, isa.NOP:
		default:
			return -1, i, false
		}
	}
	return -1, -1, false
}
