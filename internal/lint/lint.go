// Package lint statically verifies assembled MPU ISA programs before they
// reach a machine. It segments a binary into ensembles and basic blocks,
// walks the control-flow graph with the same context rules the machine's
// control path enforces at run time (which instructions are legal at the top
// level vs. inside a compute ensemble, how JUMP/RETURN thread the return
// address stack), and reports findings for ensemble bracketing violations,
// illegal jump targets, register def-use anomalies, and back-end capacity
// overruns.
//
// The linter is sound with respect to the machine's runtime guards: a
// program that lints with no Error findings cannot trip an ensemble
// structure fault (machine.ErrEnsembleFault) or, when linted against the
// same back-end spec, a capacity fault. internal/isa's fuzz tests enforce
// this as an executable oracle.
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"mpu/internal/backends"
	"mpu/internal/isa"
)

// Severity ranks a finding.
type Severity int

// Severities, least to most severe.
const (
	// Info findings are observations (e.g. a register read before any
	// write, which is how kernels consume host-preloaded inputs).
	Info Severity = iota
	// Warning findings are suspicious but cannot fault the machine.
	Warning
	// Error findings identify programs the machine will reject or fault on.
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON encodes the severity as its stable string form ("info",
// "warning", "error") so findings emitted for CI consumption do not depend
// on the enum's numeric values.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses the string form produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("lint: unknown severity %q", name)
	}
	return nil
}

// Finding is one diagnostic, anchored to an instruction index and, when the
// program came from an assembly listing, a 1-based source line. The JSON
// encoding is the stable machine-readable form `mpurun -lint -json` and
// `ezpim -lint -json` emit for CI.
type Finding struct {
	Severity Severity `json:"severity"`
	Check    string   `json:"check"`          // stable check identifier (docs/LINT.md catalog)
	MPU      int      `json:"mpu"`            // core id for machine-level lint runs, -1 for single-program runs
	Index    int      `json:"index"`          // instruction index, -1 for program-level findings
	Line     int      `json:"line,omitempty"` // 1-based source line, 0 when unknown
	Message  string   `json:"message"`
}

func (f Finding) String() string {
	loc := "program"
	if f.Index >= 0 {
		loc = fmt.Sprintf("instr %d", f.Index)
		if f.Line > 0 {
			loc = fmt.Sprintf("line %d (instr %d)", f.Line, f.Index)
		}
	}
	if f.MPU >= 0 {
		loc = fmt.Sprintf("mpu%d %s", f.MPU, loc)
	}
	return fmt.Sprintf("%s: %s: %s [%s]", f.Severity, loc, f.Message, f.Check)
}

// Report is the outcome of one Lint run.
type Report struct {
	Findings []Finding
}

// Count returns the number of findings at exactly severity s.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == s {
			n++
		}
	}
	return n
}

// Errs returns the Error findings.
func (r *Report) Errs() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == Error {
			out = append(out, f)
		}
	}
	return out
}

// Ok reports whether the program is runnable: no Error findings.
func (r *Report) Ok() bool { return r.Count(Error) == 0 }

// Clean reports whether the program is warning-free: no Error and no
// Warning findings (Info observations are allowed).
func (r *Report) Clean() bool { return r.Count(Error) == 0 && r.Count(Warning) == 0 }

// String renders every finding, one per line, severest first.
func (r *Report) String() string {
	if len(r.Findings) == 0 {
		return "lint: clean\n"
	}
	var sb strings.Builder
	for _, f := range r.Findings {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Err converts Error findings into a single error (nil when Ok).
func (r *Report) Err() error {
	errs := r.Errs()
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, 0, len(errs))
	for _, f := range errs {
		msgs = append(msgs, f.String())
	}
	return fmt.Errorf("lint: %d error(s):\n%s", len(errs), strings.Join(msgs, "\n"))
}

// Options configures a lint run.
type Options struct {
	// Spec enables the per-back-end capacity checks (RFH/VRF id ranges,
	// MPU ids, activation rounds). nil runs the structural checks only.
	Spec *backends.Spec

	// Lines maps instruction index to 1-based source line (as returned by
	// isa.AssembleWithLines); nil leaves findings without line numbers.
	Lines []int

	// MaxLiveRegs caps simultaneously-live vector registers per ensemble
	// body (register-pressure check). 0 means isa.NumRegs, which the ISA
	// encoding cannot exceed; smaller values model back ends that reserve
	// architectural registers for scratch planes.
	MaxLiveRegs int
}

// Preflight is the one-call admission form: it lints p against spec and
// returns a non-nil error when the report carries Error findings. The mpud
// service uses it to reject submitted binaries before they consume a queue
// slot; warnings and observations are dropped (callers that surface them
// use Lint directly).
func Preflight(p isa.Program, spec *backends.Spec) error {
	return Lint(p, Options{Spec: spec}).Err()
}

// Lint runs every analysis pass over p and returns the findings, severest
// first and by instruction index within a severity.
func Lint(p isa.Program, opt Options) *Report {
	w := newWalker(p, opt)
	w.encodingPass()
	// The CFG walk only makes sense over decodable instructions with
	// in-range jump targets; encoding errors stop the analysis the same way
	// they stop Machine.LoadProgram.
	if w.report.Ok() {
		w.walk()
		w.unreachablePass()
		w.capacityPass()
		w.maskPass()
		w.livenessPass()
	}
	r := w.report
	sort.SliceStable(r.Findings, func(i, j int) bool {
		if r.Findings[i].Severity != r.Findings[j].Severity {
			return r.Findings[i].Severity > r.Findings[j].Severity
		}
		return r.Findings[i].Index < r.Findings[j].Index
	})
	return r
}
