package lint

import (
	"encoding/json"
	"strings"
	"testing"

	"mpu/internal/backends"
	"mpu/internal/isa"
)

// tinySpec is a deliberately cramped back end for the capacity checks.
var tinySpec = &backends.Spec{
	Name:             "tiny",
	Lanes:            4,
	VRFsPerRFH:       2,
	RFHsPerMPU:       1,
	MPUs:             2,
	ActiveVRFsPerRFH: 1,
	ClockGHz:         1,
}

func mustAssemble(t *testing.T, src string) isa.Program {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// has reports whether the report contains a finding for check at severity.
func has(r *Report, check string, sev Severity) bool {
	for _, f := range r.Findings {
		if f.Check == check && f.Severity == sev {
			return true
		}
	}
	return false
}

func TestLintSeededDefects(t *testing.T) {
	cases := []struct {
		name string
		src  string      // assembly source (exclusive with prog)
		prog isa.Program // raw program for defects the assembler rejects
		opt  Options
		want map[string]Severity // check id -> expected severity
		ok   bool                // expected Report.Ok()
	}{
		{
			name: "clean straight-line ensemble",
			src: `
				COMPUTE rfh0 vrf0
				ADD r0 r1 r2
				COMPUTE_DONE`,
			want: map[string]Severity{"read-before-write": Info},
			ok:   true,
		},
		{
			name: "unbalanced: missing COMPUTE_DONE",
			src: `
				COMPUTE rfh0 vrf0
				ADD r0 r1 r2`,
			want: map[string]Severity{"ensemble-unbalanced": Error},
		},
		{
			name: "unbalanced: MOVE opener inside compute body",
			src: `
				COMPUTE rfh0 vrf0
				ADD r0 r1 r2
				MOVE rfh0 rfh0
				COMPUTE_DONE`,
			want: map[string]Severity{"ensemble-unbalanced": Error},
		},
		{
			name: "unbalanced: transfer missing MOVE_DONE",
			src: `
				MOVE rfh0 rfh0
				MEMCPY vrf0 r0 vrf0 r1`,
			want: map[string]Severity{"ensemble-unbalanced": Error},
		},
		{
			name: "unbalanced: SEND without MOVE header",
			src: `
				SEND mpu1
				SEND_DONE`,
			want: map[string]Severity{"ensemble-unbalanced": Error},
		},
		{
			name: "unbalanced: body runs past program end",
			src: `
				COMPUTE rfh0 vrf0
				CMPGT r0 r1
				JUMP_COND end
				COMPUTE_DONE
			end:
				NOP`,
			want: map[string]Severity{"ensemble-unbalanced": Error},
		},
		{
			name: "bad jump target: beyond program end",
			prog: isa.Program{
				isa.Compute(0, 0),
				{Op: isa.JUMPCOND, Imm: 99},
				{Op: isa.COMPUTEDONE},
			},
			want: map[string]Severity{"jump-range": Error},
		},
		{
			name: "bad encoding: register id out of range",
			prog: isa.Program{{Op: isa.ADD, A: 99, B: 0, C: 1}},
			want: map[string]Severity{"bad-encoding": Error},
		},
		{
			name: "datapath op outside any ensemble",
			src:  `ADD r0 r1 r2`,
			want: map[string]Severity{"outside-ensemble": Error},
		},
		{
			name: "illegal op inside compute ensemble",
			src: `
				COMPUTE rfh0 vrf0
				RECV mpu1
				COMPUTE_DONE`,
			// The lexical scan flags RECV as an opener fault before the
			// walk can classify it; either way it is an Error.
			want: map[string]Severity{"ensemble-unbalanced": Error},
		},
		{
			name: "RETURN with empty return stack",
			src:  `RETURN`,
			want: map[string]Severity{"return-unbalanced": Error},
		},
		{
			name: "COMPUTE_DONE inside a body-called subroutine",
			src: `
				JUMP main
			sub:
				COMPUTE_DONE
				RETURN
			main:
				COMPUTE rfh0 vrf0
				ADD r0 r1 r2
				JUMP sub
				COMPUTE_DONE`,
			want: map[string]Severity{"footer-in-subroutine": Error},
		},
		{
			// The callee opens the ensemble and returns inside its body: at
			// run time the caller's fall-through resumes inside runBody (here
			// MPU_SYNC would fault), and round replays of the body would
			// underflow the return-address stack.
			name: "RETURN inside an ensemble the subroutine itself opened",
			src: `
				JUMP sub
				MPU_SYNC
			sub:
				COMPUTE rfh0 vrf0
				ADD r0 r1 r2
				RETURN
				COMPUTE_DONE`,
			want: map[string]Severity{"return-in-ensemble": Error},
		},
		{
			name: "subroutine containing a complete ensemble is clean",
			src: `
				JUMP main
			sub:
				COMPUTE rfh0 vrf0
				ADD r0 r1 r2
				COMPUTE_DONE
				RETURN
			main:
				JUMP sub`,
			want: map[string]Severity{"read-before-write": Info},
			ok:   true,
		},
		{
			name: "read before write is an Info observation",
			src: `
				COMPUTE rfh0 vrf0
				ADD r0 r1 r2
				COMPUTE_DONE`,
			want: map[string]Severity{"read-before-write": Info},
			ok:   true,
		},
		{
			name: "dead write",
			src: `
				COMPUTE rfh0 vrf0
				INIT0 r2
				ADD r0 r1 r2
				COMPUTE_DONE`,
			want: map[string]Severity{"dead-write": Warning},
			ok:   true,
		},
		{
			name: "no dead write under a mask",
			src: `
				COMPUTE rfh0 vrf0
				CMPGT r0 r1
				SETMASK cond
				INIT0 r2
				ADD r0 r1 r2
				UNMASK
				COMPUTE_DONE`,
			want: map[string]Severity{},
			ok:   true,
		},
		{
			name: "register over-pressure",
			src: `
				COMPUTE rfh0 vrf0
				ADD r0 r1 r2
				ADD r3 r4 r5
				COMPUTE_DONE`,
			opt:  Options{MaxLiveRegs: 2},
			want: map[string]Severity{"register-pressure": Error},
		},
		{
			name: "capacity overruns on a cramped back end",
			src: `
				COMPUTE rfh1 vrf5
				ADD r0 r1 r2
				COMPUTE_DONE
				SEND mpu5
				MOVE rfh0 rfh0
				MEMCPY vrf3 r0 vrf0 r1
				SEND_DONE`,
			opt: Options{Spec: tinySpec},
			want: map[string]Severity{
				"capacity-rfh": Error,
				"capacity-vrf": Error,
				"capacity-mpu": Error,
			},
		},
		{
			name: "capacity clean on every real back end shape",
			src: `
				COMPUTE rfh7 vrf63
				ADD r0 r1 r2
				COMPUTE_DONE`,
			opt: Options{Spec: backends.RACER()},
			ok:  true,
		},
		{
			name: "unreachable block after the entry jump",
			src: `
				JUMP main
				NOP
			main:
				COMPUTE rfh0 vrf0
				ADD r0 r1 r2
				COMPUTE_DONE`,
			want: map[string]Severity{"unreachable": Warning},
			ok:   true,
		},
		{
			name: "SETMASK with a cold conditional register",
			src: `
				COMPUTE rfh0 vrf0
				SETMASK cond
				UNMASK
				COMPUTE_DONE`,
			want: map[string]Severity{"setmask-before-compare": Warning},
			ok:   true,
		},
		{
			name: "SETMASK primed by a comparison is clean",
			src: `
				COMPUTE rfh0 vrf0
				CMPGT r0 r1
				SETMASK cond
				UNMASK
				COMPUTE_DONE`,
			want: map[string]Severity{},
			ok:   true,
		},
		{
			// An unreachable comparison never executes, so it must not
			// suppress the cold-conditional warning.
			name: "SETMASK not primed by an unreachable comparison",
			src: `
				JUMP main
				CMPGT r0 r1
			main:
				COMPUTE rfh0 vrf0
				SETMASK cond
				UNMASK
				COMPUTE_DONE`,
			want: map[string]Severity{
				"setmask-before-compare": Warning,
				"unreachable":            Warning,
			},
			ok: true,
		},
		{
			// The conditional register persists across ensemble boundaries,
			// so a reachable comparison in an earlier ensemble primes it.
			name: "SETMASK primed by a comparison in an earlier ensemble",
			src: `
				COMPUTE rfh0 vrf0
				CMPGT r0 r1
				COMPUTE_DONE
				COMPUTE rfh0 vrf0
				SETMASK cond
				UNMASK
				COMPUTE_DONE`,
			want: map[string]Severity{},
			ok:   true,
		},
		{
			name: "JUMP_COND escaping its ensemble",
			src: `
				COMPUTE rfh0 vrf0
				CMPGT r0 r1
				JUMP_COND out
				COMPUTE_DONE
				COMPUTE rfh0 vrf1
			out:
				ADD r0 r1 r2
				COMPUTE_DONE`,
			want: map[string]Severity{"jump-escapes-ensemble": Warning},
			ok:   true,
		},
		{
			name: "duplicate activation and thermal rounds",
			src: `
				COMPUTE rfh0 vrf0
				COMPUTE rfh0 vrf0
				ADD r0 r1 r2
				COMPUTE_DONE`,
			opt: Options{Spec: tinySpec},
			want: map[string]Severity{
				"duplicate-activation": Warning,
				"activation-rounds":    Info,
			},
			ok: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.prog
			if tc.src != "" {
				p = mustAssemble(t, tc.src)
			}
			r := Lint(p, tc.opt)
			for check, sev := range tc.want {
				if !has(r, check, sev) {
					t.Errorf("missing %s finding for check %q:\n%s", sev, check, r)
				}
			}
			if r.Ok() != tc.ok {
				t.Errorf("Ok() = %v, want %v:\n%s", r.Ok(), tc.ok, r)
			}
			// For runnable programs, anything unexpected at Warning/Error
			// level is itself a bug. (Faulty programs cascade secondary
			// unreachable warnings past the Error; those are fine.)
			if !tc.ok {
				return
			}
			for _, f := range r.Findings {
				if f.Severity == Info {
					continue
				}
				if _, expected := tc.want[f.Check]; !expected {
					t.Errorf("unexpected finding: %s", f)
				}
			}
		})
	}
}

// A loop kernel in the ezpim style — subroutine + conditional loop — must
// lint with no Errors and no Warnings.
func TestLintCleanLoopProgram(t *testing.T) {
	src := `
		JUMP main
	sub:
		ADD r0 r1 r2
		RETURN
	main:
		COMPUTE rfh0 vrf0
		COMPUTE rfh0 vrf1
		JUMP sub
		CMPGT r2 r3
		SETMASK cond
	loop:
		SUB r2 r4 r2
		CMPGT r2 r3
		SETMASK cond
		JUMP_COND loop
		UNMASK
		COMPUTE_DONE`
	p := mustAssemble(t, src)
	r := Lint(p, Options{Spec: backends.MIMDRAM()})
	if !r.Clean() {
		t.Fatalf("loop program not clean:\n%s", r)
	}
}

func TestLintEmptyProgram(t *testing.T) {
	r := Lint(nil, Options{})
	if !r.Clean() {
		t.Fatalf("empty program not clean:\n%s", r)
	}
}

// Findings carry source lines when the program came from an assembly
// listing, and render them.
func TestLintSourceLines(t *testing.T) {
	src := "NOP\nADD r0 r1 r2\n"
	p, lines, err := isa.AssembleWithLines(src)
	if err != nil {
		t.Fatal(err)
	}
	r := Lint(p, Options{Lines: lines})
	if r.Ok() {
		t.Fatalf("expected outside-ensemble error:\n%s", r)
	}
	if !strings.Contains(r.String(), "line 2") {
		t.Fatalf("finding does not cite source line 2:\n%s", r)
	}
}

// Findings are ordered severest first.
func TestLintFindingOrder(t *testing.T) {
	src := `
		JUMP main
		NOP
	main:
		COMPUTE rfh0 vrf0
		ADD r0 r1 r2
		RETURN`
	p := mustAssemble(t, src)
	r := Lint(p, Options{})
	if len(r.Findings) < 2 {
		t.Fatalf("want at least 2 findings:\n%s", r)
	}
	for i := 1; i < len(r.Findings); i++ {
		if r.Findings[i].Severity > r.Findings[i-1].Severity {
			t.Fatalf("findings not ordered severest first:\n%s", r)
		}
	}
	if r.Findings[0].Severity != Error {
		t.Fatalf("first finding should be the Error:\n%s", r)
	}
}

// The JSON encoding of findings is the stable contract `mpurun -lint -json`
// and mpud's rejection body rely on: severities as strings, every field
// surviving a round trip.
func TestFindingJSONRoundTrip(t *testing.T) {
	in := []Finding{
		{Severity: Error, Check: "comm-deadlock", MPU: 2, Index: 7, Line: 13, Message: "wait-for cycle"},
		{Severity: Warning, Check: "unreachable", MPU: -1, Index: 3, Message: "dead code"},
		{Severity: Info, Check: "read-before-write", MPU: 0, Index: -1, Message: "host input"},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, sev := range []string{`"error"`, `"warning"`, `"info"`} {
		if !strings.Contains(string(b), sev) {
			t.Errorf("encoding does not use string severity %s: %s", sev, b)
		}
	}
	var out []Finding
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip changed length: %d -> %d", len(in), len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("finding %d changed in round trip:\n in: %+v\nout: %+v", i, in[i], out[i])
		}
	}
	var bad Severity
	if err := bad.UnmarshalJSON([]byte(`"fatal"`)); err == nil {
		t.Error("unknown severity accepted")
	}
}
