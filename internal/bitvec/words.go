package bitvec

// Multi-word slab kernels: the raw []uint64 counterparts of the Plane
// operations, for callers that address plane storage through a word
// directory rather than Plane views (internal/vrf's resolved executor and
// the trace JIT). Each operand is one plane's backing span — wpl =
// lanes/64 words — and all spans of a call must have the same length.
//
// The kernels assume the lane count is a multiple of 64: every word is
// fully populated, so there is no tail to clamp and the masked merge
// (dst&^m | v&m) is exact. Callers with ragged lane counts must stay on
// the Plane path, whose clampTail maintains the tail invariant.
//
// The *All variants are the unmasked fast paths (every lane enabled); the
// JIT selects them per replay once it has observed the mask word(s) to be
// all ones, which removes the merge entirely from the hot loop.

// AllOnes reports whether every bit of the span is set — the "every lane
// enabled" test for a mask plane's backing words.
func AllOnes(m []uint64) bool {
	for _, w := range m {
		if w != ^uint64(0) {
			return false
		}
	}
	return true
}

// NorWords computes dst = NOR(a, b) on lanes where m=1.
func NorWords(dst, a, b, m []uint64) {
	a, b, m = a[:len(dst)], b[:len(dst)], m[:len(dst)]
	for i := range dst {
		v := ^(a[i] | b[i])
		dst[i] = (dst[i] &^ m[i]) | (v & m[i])
	}
}

// NorWordsAll is NorWords with every lane enabled.
func NorWordsAll(dst, a, b []uint64) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = ^(a[i] | b[i])
	}
}

// AndWords computes dst = a AND b under m.
func AndWords(dst, a, b, m []uint64) {
	a, b, m = a[:len(dst)], b[:len(dst)], m[:len(dst)]
	for i := range dst {
		v := a[i] & b[i]
		dst[i] = (dst[i] &^ m[i]) | (v & m[i])
	}
}

// AndWordsAll is AndWords with every lane enabled.
func AndWordsAll(dst, a, b []uint64) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// OrWords computes dst = a OR b under m.
func OrWords(dst, a, b, m []uint64) {
	a, b, m = a[:len(dst)], b[:len(dst)], m[:len(dst)]
	for i := range dst {
		v := a[i] | b[i]
		dst[i] = (dst[i] &^ m[i]) | (v & m[i])
	}
}

// OrWordsAll is OrWords with every lane enabled.
func OrWordsAll(dst, a, b []uint64) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] | b[i]
	}
}

// XorWords computes dst = a XOR b under m.
func XorWords(dst, a, b, m []uint64) {
	a, b, m = a[:len(dst)], b[:len(dst)], m[:len(dst)]
	for i := range dst {
		v := a[i] ^ b[i]
		dst[i] = (dst[i] &^ m[i]) | (v & m[i])
	}
}

// XorWordsAll is XorWords with every lane enabled.
func XorWordsAll(dst, a, b []uint64) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}

// NotWords computes dst = NOT a under m.
func NotWords(dst, a, m []uint64) {
	a, m = a[:len(dst)], m[:len(dst)]
	for i := range dst {
		v := ^a[i]
		dst[i] = (dst[i] &^ m[i]) | (v & m[i])
	}
}

// NotWordsAll is NotWords with every lane enabled.
func NotWordsAll(dst, a []uint64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = ^a[i]
	}
}

// CopyWords writes dst = a under m. The unmasked counterpart is the
// built-in copy.
func CopyWords(dst, a, m []uint64) {
	a, m = a[:len(dst)], m[:len(dst)]
	for i := range dst {
		dst[i] = (dst[i] &^ m[i]) | (a[i] & m[i])
	}
}

// MajWords computes the three-input majority dst = MAJ(a, b, c) under m.
func MajWords(dst, a, b, c, m []uint64) {
	a, b, c, m = a[:len(dst)], b[:len(dst)], c[:len(dst)], m[:len(dst)]
	for i := range dst {
		v := (a[i] & b[i]) | (b[i] & c[i]) | (a[i] & c[i])
		dst[i] = (dst[i] &^ m[i]) | (v & m[i])
	}
}

// MajWordsAll is MajWords with every lane enabled.
func MajWordsAll(dst, a, b, c []uint64) {
	a, b, c = a[:len(dst)], b[:len(dst)], c[:len(dst)]
	for i := range dst {
		dst[i] = (a[i] & b[i]) | (b[i] & c[i]) | (a[i] & c[i])
	}
}

// MuxWords computes dst = sel?a:b per lane under m (sel=1 chooses a).
func MuxWords(dst, a, b, sel, m []uint64) {
	a, b, sel, m = a[:len(dst)], b[:len(dst)], sel[:len(dst)], m[:len(dst)]
	for i := range dst {
		v := (a[i] & sel[i]) | (b[i] &^ sel[i])
		dst[i] = (dst[i] &^ m[i]) | (v & m[i])
	}
}

// MuxWordsAll is MuxWords with every lane enabled.
func MuxWordsAll(dst, a, b, sel []uint64) {
	a, b, sel = a[:len(dst)], b[:len(dst)], sel[:len(dst)]
	for i := range dst {
		dst[i] = (a[i] & sel[i]) | (b[i] &^ sel[i])
	}
}

// FullAddWords computes sum = a XOR b XOR cin and cout = MAJ(a, b, cin)
// under m. Word i's inputs are read before either output word is written,
// so outputs may alias inputs (but not each other), exactly like
// bitvec.FullAdd on planes.
func FullAddWords(sum, cout, a, b, cin, m []uint64) {
	cout, a, b, cin, m = cout[:len(sum)], a[:len(sum)], b[:len(sum)], cin[:len(sum)], m[:len(sum)]
	for i := range sum {
		aw, bw, cw := a[i], b[i], cin[i]
		s := aw ^ bw ^ cw
		co := (aw & bw) | (bw & cw) | (aw & cw)
		sum[i] = (sum[i] &^ m[i]) | (s & m[i])
		cout[i] = (cout[i] &^ m[i]) | (co & m[i])
	}
}

// FullAddWordsAll is FullAddWords with every lane enabled.
func FullAddWordsAll(sum, cout, a, b, cin []uint64) {
	cout, a, b, cin = cout[:len(sum)], a[:len(sum)], b[:len(sum)], cin[:len(sum)]
	for i := range sum {
		aw, bw, cw := a[i], b[i], cin[i]
		sum[i] = aw ^ bw ^ cw
		cout[i] = (aw & bw) | (bw & cw) | (aw & cw)
	}
}

// ClearWords clears masked lanes: dst &^= m (SET0). Unmasked, the span is
// simply zeroed.
func ClearWords(dst, m []uint64) {
	m = m[:len(dst)]
	for i := range dst {
		dst[i] &^= m[i]
	}
}

// SetWords sets masked lanes: dst |= m (SET1). Unmasked, the span is
// filled with ones.
func SetWords(dst, m []uint64) {
	m = m[:len(dst)]
	for i := range dst {
		dst[i] |= m[i]
	}
}

// FillWords writes v to every word of the span (the unmasked SET0/SET1 and
// mask-fill store).
func FillWords(dst []uint64, v uint64) {
	for i := range dst {
		dst[i] = v
	}
}

// AndIntoWords writes dst = a AND m, unmasked — the CONDWR store: disabled
// lanes read conditional bit 0 regardless of dst's prior contents.
func AndIntoWords(dst, a, m []uint64) {
	a, m = a[:len(dst)], m[:len(dst)]
	for i := range dst {
		dst[i] = a[i] & m[i]
	}
}
