package bitvec

import (
	"math/rand"
	"testing"
)

// The word kernels must be bit-identical to the Plane kernels whenever the
// lane count is a multiple of 64 (the only geometry they serve). Each case
// runs the plane op and the word op on independent copies of the same
// random state and compares the results, masked and unmasked.

const wordLanes = 256 // 4 words per plane

func randWords(n int, rng *rand.Rand) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

func planeOf(ws []uint64) Plane {
	return PlanesOver(wordLanes, 1, ws)[0]
}

func TestWordKernelsMatchPlanes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := wordLanes / 64
	for _, masked := range []bool{true, false} {
		name := "masked"
		mask := randWords(w, rng)
		if !masked {
			name = "unmasked"
			mask = make([]uint64, w)
			FillWords(mask, ^uint64(0))
		}
		t.Run(name, func(t *testing.T) {
			type op struct {
				name  string
				plane func(dst, a, b, c, m Plane)
				words func(dst, a, b, c, m []uint64)
			}
			cases := []op{
				{"nor",
					func(d, a, b, c, m Plane) { Nor(d, a, b, m) },
					func(d, a, b, c, m []uint64) { NorWords(d, a, b, m) }},
				{"and",
					func(d, a, b, c, m Plane) { And(d, a, b, m) },
					func(d, a, b, c, m []uint64) { AndWords(d, a, b, m) }},
				{"or",
					func(d, a, b, c, m Plane) { Or(d, a, b, m) },
					func(d, a, b, c, m []uint64) { OrWords(d, a, b, m) }},
				{"xor",
					func(d, a, b, c, m Plane) { Xor(d, a, b, m) },
					func(d, a, b, c, m []uint64) { XorWords(d, a, b, m) }},
				{"not",
					func(d, a, b, c, m Plane) { Not(d, a, m) },
					func(d, a, b, c, m []uint64) { NotWords(d, a, m) }},
				{"copy",
					func(d, a, b, c, m Plane) { Copy(d, a, m) },
					func(d, a, b, c, m []uint64) { CopyWords(d, a, m) }},
				{"maj",
					func(d, a, b, c, m Plane) { Maj(d, a, b, c, m) },
					func(d, a, b, c, m []uint64) { MajWords(d, a, b, c, m) }},
				{"mux",
					func(d, a, b, c, m Plane) { Mux(d, a, b, c, m) },
					func(d, a, b, c, m []uint64) { MuxWords(d, a, b, c, m) }},
				{"set0",
					func(d, a, b, c, m Plane) { SetAll(d, false, m) },
					func(d, a, b, c, m []uint64) { ClearWords(d, m) }},
				{"set1",
					func(d, a, b, c, m Plane) { SetAll(d, true, m) },
					func(d, a, b, c, m []uint64) { SetWords(d, m) }},
				{"condwr",
					func(d, a, b, c, m Plane) {
						one := New(wordLanes)
						one.Fill(true)
						And(d, a, m, one)
					},
					func(d, a, b, c, m []uint64) { AndIntoWords(d, a, m) }},
			}
			for _, tc := range cases {
				dst, a, b, c := randWords(w, rng), randWords(w, rng), randWords(w, rng), randWords(w, rng)
				dstP := append([]uint64(nil), dst...)
				tc.plane(planeOf(dstP), planeOf(a), planeOf(b), planeOf(c), planeOf(mask))
				tc.words(dst, a, b, c, mask)
				for i := range dst {
					if dst[i] != dstP[i] {
						t.Errorf("%s: word %d: words=%#x planes=%#x", tc.name, i, dst[i], dstP[i])
					}
				}
			}

			// FADD writes two outputs.
			sum, cout := randWords(w, rng), randWords(w, rng)
			a, b, cin := randWords(w, rng), randWords(w, rng), randWords(w, rng)
			sumP, coutP := append([]uint64(nil), sum...), append([]uint64(nil), cout...)
			FullAdd(planeOf(sumP), planeOf(coutP), planeOf(a), planeOf(b), planeOf(cin), planeOf(mask))
			FullAddWords(sum, cout, a, b, cin, mask)
			for i := range sum {
				if sum[i] != sumP[i] || cout[i] != coutP[i] {
					t.Errorf("fadd: word %d: words=(%#x,%#x) planes=(%#x,%#x)", i, sum[i], cout[i], sumP[i], coutP[i])
				}
			}
		})
	}
}

// The *All fast paths must agree with their masked forms under a full mask.
func TestWordKernelsAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := wordLanes / 64
	full := make([]uint64, w)
	FillWords(full, ^uint64(0))

	check := func(name string, masked, all func(dst []uint64)) {
		t.Helper()
		d1 := randWords(w, rng)
		d2 := append([]uint64(nil), d1...)
		masked(d1)
		all(d2)
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Errorf("%s: word %d: masked=%#x all=%#x", name, i, d1[i], d2[i])
			}
		}
	}

	a, b, c := randWords(w, rng), randWords(w, rng), randWords(w, rng)
	check("nor", func(d []uint64) { NorWords(d, a, b, full) }, func(d []uint64) { NorWordsAll(d, a, b) })
	check("and", func(d []uint64) { AndWords(d, a, b, full) }, func(d []uint64) { AndWordsAll(d, a, b) })
	check("or", func(d []uint64) { OrWords(d, a, b, full) }, func(d []uint64) { OrWordsAll(d, a, b) })
	check("xor", func(d []uint64) { XorWords(d, a, b, full) }, func(d []uint64) { XorWordsAll(d, a, b) })
	check("not", func(d []uint64) { NotWords(d, a, full) }, func(d []uint64) { NotWordsAll(d, a) })
	check("copy", func(d []uint64) { CopyWords(d, a, full) }, func(d []uint64) { copy(d, a) })
	check("maj", func(d []uint64) { MajWords(d, a, b, c, full) }, func(d []uint64) { MajWordsAll(d, a, b, c) })
	check("mux", func(d []uint64) { MuxWords(d, a, b, c, full) }, func(d []uint64) { MuxWordsAll(d, a, b, c) })
	check("set0", func(d []uint64) { ClearWords(d, full) }, func(d []uint64) { FillWords(d, 0) })
	check("set1", func(d []uint64) { SetWords(d, full) }, func(d []uint64) { FillWords(d, ^uint64(0)) })

	s1, c1 := randWords(w, rng), randWords(w, rng)
	s2, c2 := append([]uint64(nil), s1...), append([]uint64(nil), c1...)
	FullAddWords(s1, c1, a, b, c, full)
	FullAddWordsAll(s2, c2, a, b, c)
	for i := range s1 {
		if s1[i] != s2[i] || c1[i] != c2[i] {
			t.Errorf("fadd-all: word %d diverges", i)
		}
	}

	if !AllOnes(full) {
		t.Error("AllOnes(full) = false")
	}
	notFull := append([]uint64(nil), full...)
	notFull[w-1] &^= 1 << 63
	if AllOnes(notFull) {
		t.Error("AllOnes with a cleared bit = true")
	}
	if !AllOnes(nil) {
		t.Error("AllOnes(nil) = false; an empty span has no disabled lane")
	}
}
