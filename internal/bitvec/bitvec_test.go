package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randPlane builds a plane of the given size from a seeded generator.
func randPlane(lanes int, rng *rand.Rand) Plane {
	p := New(lanes)
	for i := 0; i < lanes; i++ {
		p.Set(i, rng.Intn(2) == 1)
	}
	return p
}

func fullMask(lanes int) Plane {
	m := New(lanes)
	m.Fill(true)
	return m
}

func TestNewAndGetSet(t *testing.T) {
	for _, lanes := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		p := New(lanes)
		if p.Len() != lanes {
			t.Fatalf("Len() = %d, want %d", p.Len(), lanes)
		}
		for i := 0; i < lanes; i++ {
			if p.Get(i) {
				t.Fatalf("new plane lane %d not zero", i)
			}
		}
		for i := 0; i < lanes; i += 3 {
			p.Set(i, true)
		}
		for i := 0; i < lanes; i++ {
			want := i%3 == 0
			if p.Get(i) != want {
				t.Fatalf("lane %d = %v, want %v", i, p.Get(i), want)
			}
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	p := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			p.Get(i)
		}()
	}
}

func TestNegativeLanesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFillAndAnySetAndPopCount(t *testing.T) {
	p := New(130)
	if p.AnySet() {
		t.Fatal("fresh plane AnySet true")
	}
	p.Fill(true)
	if got := p.PopCount(); got != 130 {
		t.Fatalf("PopCount after Fill(true) = %d, want 130", got)
	}
	p.Fill(false)
	if p.AnySet() || p.PopCount() != 0 {
		t.Fatal("Fill(false) left bits set")
	}
	p.Set(129, true)
	if !p.AnySet() || p.PopCount() != 1 {
		t.Fatal("single tail bit not observed")
	}
}

func TestTailBitsStayClamped(t *testing.T) {
	// Not, Nor and Fill write full words internally; bits beyond the lane
	// count must never leak into PopCount.
	p := New(70)
	m := fullMask(70)
	Not(p, p, m)
	if got := p.PopCount(); got != 70 {
		t.Fatalf("PopCount after Not = %d, want 70", got)
	}
	q := New(70)
	Nor(q, q, q, m)
	if got := q.PopCount(); got != 70 {
		t.Fatalf("PopCount after Nor = %d, want 70", got)
	}
	SetAll(q, true, m)
	if got := q.PopCount(); got != 70 {
		t.Fatalf("PopCount after SetAll = %d, want 70", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(64)
	p.Set(5, true)
	q := p.Clone()
	q.Set(6, true)
	if p.Get(6) {
		t.Fatal("Clone shares storage with original")
	}
	if !q.Get(5) {
		t.Fatal("Clone lost bit 5")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(65), New(65)
	if !a.Equal(b) {
		t.Fatal("zero planes not equal")
	}
	a.Set(64, true)
	if a.Equal(b) {
		t.Fatal("differing planes equal")
	}
	if a.Equal(New(64)) {
		t.Fatal("different lane counts reported equal")
	}
}

func TestMismatchedLanesPanics(t *testing.T) {
	a, b, m := New(64), New(65), fullMask(64)
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lanes did not panic")
		}
	}()
	And(a, a, b, m)
}

// TestGateTruthTables exercises each gate against its Boolean definition on
// every input combination, on a lane layout that crosses a word boundary.
func TestGateTruthTables(t *testing.T) {
	const lanes = 8
	mk := func(bits [lanes]bool) Plane {
		p := New(lanes)
		for i, b := range bits {
			p.Set(i, b)
		}
		return p
	}
	// Lanes enumerate all 8 combinations of (a,b,c).
	var av, bv, cv [lanes]bool
	for i := 0; i < lanes; i++ {
		av[i] = i&1 != 0
		bv[i] = i&2 != 0
		cv[i] = i&4 != 0
	}
	a, b, c := mk(av), mk(bv), mk(cv)
	m := fullMask(lanes)

	check := func(name string, got Plane, f func(a, b, c bool) bool) {
		t.Helper()
		for i := 0; i < lanes; i++ {
			want := f(av[i], bv[i], cv[i])
			if got.Get(i) != want {
				t.Errorf("%s lane %d (a=%v b=%v c=%v): got %v want %v",
					name, i, av[i], bv[i], cv[i], got.Get(i), want)
			}
		}
	}

	d := New(lanes)
	Nor(d, a, b, m)
	check("NOR", d, func(a, b, _ bool) bool { return !(a || b) })
	And(d, a, b, m)
	check("AND", d, func(a, b, _ bool) bool { return a && b })
	Or(d, a, b, m)
	check("OR", d, func(a, b, _ bool) bool { return a || b })
	Xor(d, a, b, m)
	check("XOR", d, func(a, b, _ bool) bool { return a != b })
	Not(d, a, m)
	check("NOT", d, func(a, _, _ bool) bool { return !a })
	AndNot(d, a, b, m)
	check("ANDNOT", d, func(a, b, _ bool) bool { return a && !b })
	Maj(d, a, b, c, m)
	check("MAJ", d, func(a, b, c bool) bool {
		n := 0
		for _, v := range []bool{a, b, c} {
			if v {
				n++
			}
		}
		return n >= 2
	})
	Mux(d, a, b, c, m)
	check("MUX", d, func(a, b, sel bool) bool {
		if sel {
			return a
		}
		return b
	})

	sum, cout := New(lanes), New(lanes)
	FullAdd(sum, cout, a, b, c, m)
	check("FULLADD.sum", sum, func(a, b, c bool) bool { return a != b != c })
	check("FULLADD.cout", cout, func(a, b, c bool) bool {
		n := 0
		for _, v := range []bool{a, b, c} {
			if v {
				n++
			}
		}
		return n >= 2
	})
}

// TestMaskingPreservesDisabledLanes verifies the per-lane power gating
// behaviour: masked-off lanes must keep their previous contents.
func TestMaskingPreservesDisabledLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const lanes = 200
	a, b := randPlane(lanes, rng), randPlane(lanes, rng)
	orig := randPlane(lanes, rng)
	mask := randPlane(lanes, rng)

	ops := map[string]func(dst Plane){
		"Nor":  func(dst Plane) { Nor(dst, a, b, mask) },
		"And":  func(dst Plane) { And(dst, a, b, mask) },
		"Or":   func(dst Plane) { Or(dst, a, b, mask) },
		"Xor":  func(dst Plane) { Xor(dst, a, b, mask) },
		"Not":  func(dst Plane) { Not(dst, a, mask) },
		"Copy": func(dst Plane) { Copy(dst, a, mask) },
	}
	for name, op := range ops {
		dst := orig.Clone()
		op(dst)
		for i := 0; i < lanes; i++ {
			if !mask.Get(i) && dst.Get(i) != orig.Get(i) {
				t.Errorf("%s modified masked-off lane %d", name, i)
			}
		}
	}
}

// Property: XOR expressed as pure NOR gates (the RACER decomposition used by
// the recipe library) matches the direct XOR for arbitrary planes.
func TestNorDecompositionOfXorProperty(t *testing.T) {
	f := func(seed int64, lanesRaw uint8) bool {
		lanes := int(lanesRaw)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := randPlane(lanes, rng), randPlane(lanes, rng)
		m := fullMask(lanes)
		n1, n2, n3, n4, got := New(lanes), New(lanes), New(lanes), New(lanes), New(lanes)
		Nor(n1, a, b, m)   // ¬(a|b)
		Nor(n2, a, a, m)   // ¬a
		Nor(n3, b, b, m)   // ¬b
		Nor(n4, n2, n3, m) // a&b
		Nor(got, n1, n4, m)
		want := New(lanes)
		Xor(want, a, b, m)
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MAJ(a,b,0)=AND, MAJ(a,b,1)=OR — the TRA trick MIMDRAM relies on.
func TestMajAndOrProperty(t *testing.T) {
	f := func(seed int64, lanesRaw uint8) bool {
		lanes := int(lanesRaw)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := randPlane(lanes, rng), randPlane(lanes, rng)
		m := fullMask(lanes)
		zero, one := New(lanes), New(lanes)
		one.Fill(true)
		andViaMaj, orViaMaj := New(lanes), New(lanes)
		Maj(andViaMaj, a, b, zero, m)
		Maj(orViaMaj, a, b, one, m)
		andDirect, orDirect := New(lanes), New(lanes)
		And(andDirect, a, b, m)
		Or(orDirect, a, b, m)
		return andViaMaj.Equal(andDirect) && orViaMaj.Equal(orDirect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FullAdd agrees with gate-level sum/carry for arbitrary planes.
func TestFullAddProperty(t *testing.T) {
	f := func(seed int64, lanesRaw uint8) bool {
		lanes := int(lanesRaw)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randPlane(lanes, rng), randPlane(lanes, rng), randPlane(lanes, rng)
		m := fullMask(lanes)
		sum, cout := New(lanes), New(lanes)
		FullAdd(sum, cout, a, b, c, m)
		t1, wantSum, wantCout := New(lanes), New(lanes), New(lanes)
		Xor(t1, a, b, m)
		Xor(wantSum, t1, c, m)
		Maj(wantCout, a, b, c, m)
		return sum.Equal(wantSum) && cout.Equal(wantCout)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAliasedDestination(t *testing.T) {
	// dst aliasing a source must still produce the correct result for the
	// single-pass word loop (each word is read before written).
	rng := rand.New(rand.NewSource(3))
	a, b := randPlane(100, rng), randPlane(100, rng)
	m := fullMask(100)
	want := New(100)
	Nor(want, a, b, m)
	got := a.Clone()
	Nor(got, got, b, m)
	if !got.Equal(want) {
		t.Fatal("aliased NOR differs from non-aliased NOR")
	}
}

func TestString(t *testing.T) {
	p := New(4)
	p.Set(1, true)
	p.Set(3, true)
	if got := p.String(); got != "0101" {
		t.Fatalf("String() = %q, want %q", got, "0101")
	}
}

func TestPopCountPatterns(t *testing.T) {
	// Word-boundary patterns that exercised the old hand-rolled popcount.
	p := New(130)
	if got := p.PopCount(); got != 0 {
		t.Errorf("empty PopCount = %d", got)
	}
	p.Fill(true)
	if got := p.PopCount(); got != 130 {
		t.Errorf("full PopCount = %d, want 130", got)
	}
	p.Set(64, false)
	p.Set(129, false)
	if got := p.PopCount(); got != 128 {
		t.Errorf("PopCount = %d, want 128", got)
	}
}

func TestNewSlab(t *testing.T) {
	planes := NewSlab(100, 8)
	if len(planes) != 8 {
		t.Fatalf("len = %d", len(planes))
	}
	for i, p := range planes {
		if p.Len() != 100 {
			t.Fatalf("plane %d lanes = %d", i, p.Len())
		}
		if p.AnySet() {
			t.Fatalf("plane %d not zero", i)
		}
	}
	// Planes must be independent despite the shared backing.
	planes[3].Fill(true)
	for i, p := range planes {
		if i != 3 && p.AnySet() {
			t.Fatalf("plane %d aliased plane 3", i)
		}
	}
	if planes[3].PopCount() != 100 {
		t.Fatal("filled slab plane lost bits")
	}
	if got := NewSlab(10, 0); len(got) != 0 {
		t.Fatalf("NewSlab(10, 0) = %d planes", len(got))
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const lanes = 131
	vals := make([]uint64, lanes)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	planes := NewSlab(lanes, 64)
	for b := range planes {
		planes[b].GatherFrom(vals, uint(b))
	}
	got := make([]uint64, lanes)
	for b := range planes {
		planes[b].ScatterInto(got, uint(b))
	}
	for l := range vals {
		if got[l] != vals[l] {
			t.Fatalf("lane %d: round trip %#x, want %#x", l, got[l], vals[l])
		}
	}
	// GatherFrom zeroes lanes beyond the value slice.
	short := []uint64{^uint64(0), ^uint64(0)}
	p := New(lanes)
	p.GatherFrom(short, 0)
	if p.PopCount() != 2 || !p.Get(0) || !p.Get(1) {
		t.Fatalf("GatherFrom(short) left %d bits", p.PopCount())
	}
	// ScatterInto ignores lanes beyond the output slice.
	out := make([]uint64, 1)
	p.Fill(true)
	p.ScatterInto(out, 7)
	if out[0] != 1<<7 {
		t.Fatalf("ScatterInto short out = %#x", out[0])
	}
}

func BenchmarkNor4096(b *testing.B) {
	p, q, r := New(4096), New(4096), New(4096)
	m := fullMask(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Nor(r, p, q, m)
	}
}
