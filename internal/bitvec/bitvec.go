// Package bitvec provides the bit-plane substrate underlying every simulated
// PUM memory array. A Plane holds one bit for each of n vector lanes, packed
// 64 lanes per machine word. Bitwise micro-ops (NOR, AND, TRA/majority, ...)
// operate on whole planes at once, which is exactly how a column-wide PUM
// micro-op behaves in hardware: one electrical operation touches the same bit
// position of every lane simultaneously.
package bitvec

import (
	"fmt"
	"math/bits"
)

// Plane is a single bit position across n vector lanes. The zero value is
// unusable; create planes with New.
type Plane struct {
	n int
	w []uint64
}

// New returns an all-zero plane spanning lanes lanes.
func New(lanes int) Plane {
	if lanes < 0 {
		panic(fmt.Sprintf("bitvec: negative lane count %d", lanes))
	}
	return Plane{n: lanes, w: make([]uint64, (lanes+63)/64)}
}

// NewSlab returns count planes of the given lane width backed by one
// contiguous allocation. A vector register is 64 planes; allocating them
// as a slab instead of 64 separate slices keeps concurrent sweeps from
// turning the garbage collector into the bottleneck.
func NewSlab(lanes, count int) []Plane {
	planes, _ := NewSlabWords(lanes, count)
	return planes
}

// NewSlabWords is NewSlab plus the slab's shared backing words (plane i
// occupies backing[i*w:(i+1)*w] for w = ceil(lanes/64)). The backing gives
// word-granular access to the same storage the planes alias; internal/vrf
// uses it to execute resolved micro-op streams without per-op plane
// resolution. Writers through the backing must preserve the tail invariant
// (bits at or beyond the lane count stay zero).
func NewSlabWords(lanes, count int) ([]Plane, []uint64) {
	if lanes < 0 || count < 0 {
		panic(fmt.Sprintf("bitvec: negative slab dimensions %d×%d", count, lanes))
	}
	words := (lanes + 63) / 64
	backing := make([]uint64, words*count)
	out := make([]Plane, count)
	for i := range out {
		out[i] = Plane{n: lanes, w: backing[i*words : (i+1)*words : (i+1)*words]}
	}
	return out, backing
}

// PlanesOver returns count planes of the given lane width aliasing an
// existing backing slab laid out as NewSlabWords produces (plane i occupies
// backing[i*w:(i+1)*w] for w = ceil(lanes/64)). internal/vrf uses it to hang
// lazy plane views over a word directory allocated up front, so the plane
// and word paths always observe the same storage.
func PlanesOver(lanes, count int, backing []uint64) []Plane {
	if lanes < 0 || count < 0 {
		panic(fmt.Sprintf("bitvec: negative slab dimensions %d×%d", count, lanes))
	}
	words := (lanes + 63) / 64
	if len(backing) < words*count {
		panic(fmt.Sprintf("bitvec: backing holds %d words, planes need %d", len(backing), words*count))
	}
	out := make([]Plane, count)
	for i := range out {
		out[i] = Plane{n: lanes, w: backing[i*words : (i+1)*words : (i+1)*words]}
	}
	return out
}

// Len reports the number of lanes in the plane.
func (p Plane) Len() int { return p.n }

// words returns the number of backing words.
func (p Plane) words() int { return len(p.w) }

// tailMask is a mask of the valid bits in the final backing word.
func (p Plane) tailMask() uint64 {
	r := p.n % 64
	if r == 0 {
		return ^uint64(0)
	}
	return (uint64(1) << r) - 1
}

// clampTail zeroes bits beyond the lane count so PopCount and AnySet stay
// exact after full-word operations.
func (p Plane) clampTail() {
	if len(p.w) == 0 {
		return
	}
	p.w[len(p.w)-1] &= p.tailMask()
}

// Get reports the bit of lane i.
func (p Plane) Get(i int) bool {
	p.check(i)
	return p.w[i/64]>>(uint(i)%64)&1 == 1
}

// Set writes bit b to lane i.
func (p Plane) Set(i int, b bool) {
	p.check(i)
	if b {
		p.w[i/64] |= 1 << (uint(i) % 64)
	} else {
		p.w[i/64] &^= 1 << (uint(i) % 64)
	}
}

func (p Plane) check(i int) {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("bitvec: lane %d out of range [0,%d)", i, p.n))
	}
}

// Clone returns an independent copy of p.
func (p Plane) Clone() Plane {
	q := Plane{n: p.n, w: make([]uint64, len(p.w))}
	copy(q.w, p.w)
	return q
}

// CopyFrom overwrites p with src. Lane counts must match.
func (p Plane) CopyFrom(src Plane) {
	p.mustMatch(src)
	copy(p.w, src.w)
}

func (p Plane) mustMatch(q Plane) {
	if p.n != q.n {
		panic(fmt.Sprintf("bitvec: lane count mismatch %d vs %d", p.n, q.n))
	}
}

// Fill sets every lane to b.
func (p Plane) Fill(b bool) {
	var v uint64
	if b {
		v = ^uint64(0)
	}
	for i := range p.w {
		p.w[i] = v
	}
	p.clampTail()
}

// AnySet reports whether any lane bit is 1.
func (p Plane) AnySet() bool {
	for _, w := range p.w {
		if w != 0 {
			return true
		}
	}
	return false
}

// PopCount returns the number of lanes whose bit is 1.
func (p Plane) PopCount() int {
	c := 0
	for _, w := range p.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// Equal reports whether p and q have identical lane bits.
func (p Plane) Equal(q Plane) bool {
	if p.n != q.n {
		return false
	}
	for i := range p.w {
		if p.w[i] != q.w[i] {
			return false
		}
	}
	return true
}

// The masked write-back helper: dst lanes where mask=1 take v; others keep
// their old value. mask may share backing with neither dst nor v.
func mergeMasked(dst, v, mask Plane) {
	for i := range dst.w {
		dst.w[i] = (dst.w[i] &^ mask.w[i]) | (v.w[i] & mask.w[i])
	}
}

// Nor computes dst = NOR(a, b) on lanes where mask=1 (other lanes of dst are
// preserved). This mirrors an in-ReRAM NOR with per-lane voltage gating. dst
// may alias a or b.
func Nor(dst, a, b, mask Plane) {
	dst.mustMatch(a)
	dst.mustMatch(b)
	dst.mustMatch(mask)
	for i := range dst.w {
		v := ^(a.w[i] | b.w[i])
		dst.w[i] = (dst.w[i] &^ mask.w[i]) | (v & mask.w[i])
	}
	dst.clampTail()
}

// And computes dst = a AND b under mask.
func And(dst, a, b, mask Plane) {
	dst.mustMatch(a)
	dst.mustMatch(b)
	dst.mustMatch(mask)
	for i := range dst.w {
		v := a.w[i] & b.w[i]
		dst.w[i] = (dst.w[i] &^ mask.w[i]) | (v & mask.w[i])
	}
}

// Or computes dst = a OR b under mask.
func Or(dst, a, b, mask Plane) {
	dst.mustMatch(a)
	dst.mustMatch(b)
	dst.mustMatch(mask)
	for i := range dst.w {
		v := a.w[i] | b.w[i]
		dst.w[i] = (dst.w[i] &^ mask.w[i]) | (v & mask.w[i])
	}
}

// Xor computes dst = a XOR b under mask.
func Xor(dst, a, b, mask Plane) {
	dst.mustMatch(a)
	dst.mustMatch(b)
	dst.mustMatch(mask)
	for i := range dst.w {
		v := a.w[i] ^ b.w[i]
		dst.w[i] = (dst.w[i] &^ mask.w[i]) | (v & mask.w[i])
	}
}

// Not computes dst = NOT a under mask.
func Not(dst, a, mask Plane) {
	dst.mustMatch(a)
	dst.mustMatch(mask)
	for i := range dst.w {
		v := ^a.w[i]
		dst.w[i] = (dst.w[i] &^ mask.w[i]) | (v & mask.w[i])
	}
	dst.clampTail()
}

// Maj computes the three-input majority dst = MAJ(a, b, c) under mask. This
// is the charge-sharing primitive of a DRAM triple-row activation (TRA).
func Maj(dst, a, b, c, mask Plane) {
	dst.mustMatch(a)
	dst.mustMatch(b)
	dst.mustMatch(c)
	dst.mustMatch(mask)
	for i := range dst.w {
		v := (a.w[i] & b.w[i]) | (b.w[i] & c.w[i]) | (a.w[i] & c.w[i])
		dst.w[i] = (dst.w[i] &^ mask.w[i]) | (v & mask.w[i])
	}
}

// Mux computes dst = sel?a:b per lane under mask (sel=1 chooses a).
func Mux(dst, a, b, sel, mask Plane) {
	dst.mustMatch(a)
	dst.mustMatch(b)
	dst.mustMatch(sel)
	dst.mustMatch(mask)
	for i := range dst.w {
		v := (a.w[i] & sel.w[i]) | (b.w[i] &^ sel.w[i])
		dst.w[i] = (dst.w[i] &^ mask.w[i]) | (v & mask.w[i])
	}
}

// FullAdd computes, in one step, sum = a XOR b XOR cin and cout = MAJ(a,b,cin)
// under mask. This models the dedicated single-cycle CMOS full adders that
// augment bitline computation in Duality Cache. sum and cout must not alias
// each other; sum/cout may alias inputs only if distinct planes.
func FullAdd(sum, cout, a, b, cin, mask Plane) {
	sum.mustMatch(a)
	sum.mustMatch(b)
	sum.mustMatch(cin)
	sum.mustMatch(cout)
	sum.mustMatch(mask)
	for i := range sum.w {
		aw, bw, cw := a.w[i], b.w[i], cin.w[i]
		s := aw ^ bw ^ cw
		c := (aw & bw) | (bw & cw) | (aw & cw)
		sum.w[i] = (sum.w[i] &^ mask.w[i]) | (s & mask.w[i])
		cout.w[i] = (cout.w[i] &^ mask.w[i]) | (c & mask.w[i])
	}
}

// Copy writes dst = a under mask.
func Copy(dst, a, mask Plane) {
	dst.mustMatch(a)
	dst.mustMatch(mask)
	mergeMasked(dst, a, mask)
}

// SetAll writes dst = b under mask.
func SetAll(dst Plane, b bool, mask Plane) {
	dst.mustMatch(mask)
	var v uint64
	if b {
		v = ^uint64(0)
	}
	for i := range dst.w {
		dst.w[i] = (dst.w[i] &^ mask.w[i]) | (v & mask.w[i])
	}
	dst.clampTail()
}

// AndNot computes dst = a AND NOT b under mask.
func AndNot(dst, a, b, mask Plane) {
	dst.mustMatch(a)
	dst.mustMatch(b)
	dst.mustMatch(mask)
	for i := range dst.w {
		v := a.w[i] &^ b.w[i]
		dst.w[i] = (dst.w[i] &^ mask.w[i]) | (v & mask.w[i])
	}
}

// ScatterInto ORs bit `bit` of out[l] for every lane l whose plane bit is
// 1, skipping lanes beyond len(out). It walks set bits a word at a time,
// so sparse planes cost almost nothing — this is the word-level fast path
// behind register readback (vrf.ReadReg), which previously probed every
// lane of every plane individually.
func (p Plane) ScatterInto(out []uint64, bit uint) {
	for wi, w := range p.w {
		base := wi * 64
		for w != 0 {
			l := base + bits.TrailingZeros64(w)
			if l >= len(out) {
				return
			}
			out[l] |= 1 << bit
			w &= w - 1
		}
	}
}

// GatherFrom sets each lane's plane bit from bit `bit` of vals[l], zeroing
// lanes beyond len(vals). It assembles whole backing words instead of
// calling Set per lane — the fast path behind register loads
// (vrf.WriteReg).
func (p Plane) GatherFrom(vals []uint64, bit uint) {
	for wi := range p.w {
		base := wi * 64
		n := p.n - base
		if n > 64 {
			n = 64
		}
		if n > len(vals)-base {
			n = len(vals) - base
		}
		var w uint64
		for j := 0; j < n; j++ {
			w |= (vals[base+j] >> bit & 1) << uint(j)
		}
		p.w[wi] = w
	}
}

// AppendWords appends the plane's backing words (lane 0 in bit 0 of the
// first word) to dst and returns the extended slice — the serialization
// path of machine snapshots. Exposing a copy rather than the backing slice
// keeps plane mutation behind the package's masked kernels.
func (p Plane) AppendWords(dst []uint64) []uint64 {
	return append(dst, p.w...)
}

// LoadWords overwrites the plane's backing from src, which must hold
// exactly the plane's word count with no bits set at or beyond the lane
// count. Rejecting a dirty tail instead of clamping it keeps snapshot
// decoding canonical: every accepted stream re-encodes byte-identically.
func (p Plane) LoadWords(src []uint64) error {
	if len(src) != len(p.w) {
		return fmt.Errorf("bitvec: plane of %d words loaded from %d", len(p.w), len(src))
	}
	if len(src) > 0 && src[len(src)-1]&^p.tailMask() != 0 {
		return fmt.Errorf("bitvec: tail bits set beyond lane %d", p.n)
	}
	copy(p.w, src)
	return nil
}

// String renders the plane as lane bits, lane 0 first, for debugging.
func (p Plane) String() string {
	buf := make([]byte, p.n)
	for i := 0; i < p.n; i++ {
		if p.Get(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
