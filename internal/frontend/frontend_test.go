package frontend

import (
	"math"
	"testing"
)

func TestFractionsSumToOne(t *testing.T) {
	var a, s, d float64
	for _, c := range Components() {
		if c.AreaFrac <= 0 || c.StaticFrac <= 0 || c.DynamicFrac <= 0 {
			t.Errorf("%s: non-positive fraction", c.Name)
		}
		a += c.AreaFrac
		s += c.StaticFrac
		d += c.DynamicFrac
	}
	for name, sum := range map[string]float64{"area": a, "static": s, "dynamic": d} {
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s fractions sum to %v, want 1", name, sum)
		}
	}
}

// TestStorageDominance pins the §VIII-A observation: storage components are
// 53% of area, 91% of static power, and almost all dynamic power.
func TestStorageDominance(t *testing.T) {
	area, static, dynamic := StorageShare()
	if math.Abs(area-0.53) > 0.01 {
		t.Errorf("storage area share = %.2f, want 0.53", area)
	}
	if math.Abs(static-0.91) > 0.01 {
		t.Errorf("storage static share = %.2f, want 0.91", static)
	}
	if dynamic < 0.9 {
		t.Errorf("storage dynamic share = %.2f, want ≈1", dynamic)
	}
}

// TestChipImpactMatchesPaper reproduces the §VIII-A RACER example: 512 MPUs
// take the chip from 4.00 to 4.63 cm² and 330 to ~955 mW static.
func TestChipImpactMatchesPaper(t *testing.T) {
	area, static := ChipImpact(512, 4.00, 330)
	if math.Abs(area-4.63) > 0.01 {
		t.Errorf("chip area = %.2f cm², want 4.63", area)
	}
	if math.Abs(static-954.6) > 1 {
		t.Errorf("chip static = %.1f mW, want ≈955", static)
	}
}

// TestMaxRuntimePower reproduces the 36.7 W maximum for 512 MPUs.
func TestMaxRuntimePower(t *testing.T) {
	if got := MaxRuntimePowerW(512); math.Abs(got-37.3) > 1 {
		t.Errorf("max runtime power = %.1f W, want ≈36.7–37.3", got)
	}
}

func TestEnergyHelpers(t *testing.T) {
	if got := StaticEnergyPJ(2, 1000); got != 2*1.22*1000 {
		t.Errorf("StaticEnergyPJ = %v", got)
	}
	if got := DynamicEnergyPJ(100); got != 7172.0 {
		t.Errorf("DynamicEnergyPJ = %v", got)
	}
}
