// Package frontend models the synthesized MPU control-path hardware: the
// per-component area and power breakdown of Fig. 11 and the chip-level
// iso-area arithmetic of §VIII-A. The totals are the paper's 15 nm Synopsys
// results (0.123 mm², 1.22 mW static, 71.72 mW dynamic at 1 GHz); component
// fractions follow the reported storage-dominated split (storage components
// hold 53% of area, 91% of static power, and almost all dynamic power).
package frontend

// Totals from the §VIII-A synthesis run, per MPU front end.
const (
	AreaMM2        = 0.123
	StaticPowerMW  = 1.22
	DynamicPowerMW = 71.72
	ClockGHz       = 1.0
)

// Component is one control-path block with its share of the front end.
type Component struct {
	Name        string
	Storage     bool    // counted toward the storage-dominated share
	AreaFrac    float64 // fraction of AreaMM2
	StaticFrac  float64 // fraction of StaticPowerMW
	DynamicFrac float64 // fraction of DynamicPowerMW
}

// Components returns the Fig. 11 breakdown. Fractions sum to 1 per column.
func Components() []Component {
	return []Component{
		{Name: "playback buffer", Storage: true, AreaFrac: 0.24, StaticFrac: 0.41, DynamicFrac: 0.44},
		{Name: "template lookup", Storage: true, AreaFrac: 0.17, StaticFrac: 0.29, DynamicFrac: 0.31},
		{Name: "recipe/pointer table", Storage: true, AreaFrac: 0.12, StaticFrac: 0.21, DynamicFrac: 0.21},
		{Name: "activation board", Storage: false, AreaFrac: 0.09, StaticFrac: 0.02, DynamicFrac: 0.01},
		{Name: "fetcher + ISU port", Storage: false, AreaFrac: 0.13, StaticFrac: 0.03, DynamicFrac: 0.01},
		{Name: "I2M template filler", Storage: false, AreaFrac: 0.10, StaticFrac: 0.02, DynamicFrac: 0.01},
		{Name: "data transfer controller", Storage: false, AreaFrac: 0.08, StaticFrac: 0.01, DynamicFrac: 0.005},
		{Name: "EFI + scheduler", Storage: false, AreaFrac: 0.07, StaticFrac: 0.01, DynamicFrac: 0.005},
	}
}

// StorageShare sums the storage components' fractions: (area, static,
// dynamic). §VIII-A reports 53% / 91% / ~100%.
func StorageShare() (area, static, dynamic float64) {
	for _, c := range Components() {
		if c.Storage {
			area += c.AreaFrac
			static += c.StaticFrac
			dynamic += c.DynamicFrac
		}
	}
	return area, static, dynamic
}

// ChipImpact reports the chip-level cost of adding n MPU front ends to a
// datapath chip of the given area (cm²) and static power (mW), as in the
// §VIII-A RACER example (512 MPUs: 4.00 → 4.63 cm², 330 → 955 mW).
func ChipImpact(n int, chipAreaCM2, chipStaticMW float64) (areaCM2, staticMW float64) {
	areaCM2 = chipAreaCM2 + float64(n)*AreaMM2/100
	staticMW = chipStaticMW + float64(n)*StaticPowerMW
	return areaCM2, staticMW
}

// MaxRuntimePowerW returns the worst-case control-path power for n MPUs
// (§VIII-A: 36.7 W for 512 MPUs, 40.2% of RACER system power).
func MaxRuntimePowerW(n int) float64 {
	return float64(n) * (StaticPowerMW + DynamicPowerMW) / 1000
}

// StaticEnergyPJ returns front-end static energy for n MPUs over the given
// number of 1 GHz cycles.
func StaticEnergyPJ(n int, cycles int64) float64 {
	return float64(n) * StaticPowerMW * float64(cycles) // 1 mW × 1 ns = 1 pJ
}

// DynamicEnergyPJ returns decode/issue energy for the given number of
// active-issue cycles (cycles in which a front end issued a micro-op).
func DynamicEnergyPJ(issueCycles int64) float64 {
	return DynamicPowerMW * float64(issueCycles)
}
