package recipe

import (
	"fmt"

	"mpu/internal/isa"
	"mpu/internal/micro"
)

// word addresses the bit planes of one 64-bit operand.
type word func(bit int) micro.Ref

func regw(r uint8) word {
	return func(b int) micro.Ref { return micro.Reg(int(r), b) }
}

func scratchw(s int) word {
	return func(b int) micro.Ref { return micro.Scratch(s, b) }
}

const w = isa.WordBits

// Scratch register roles used by the recipes below. They are reserved
// hardware (spare columns / pipeline buffers), never visible to programs.
const (
	sAcc  = 0 // multiply accumulator, POPC counter, division remainder
	sQuo  = 1 // division quotient
	sTmp  = 2 // division trial subtraction; CAS/MUL staging
	sFlip = 3 // BFLIP staging
)

// IsDatapathOp reports whether op is expanded by the I2M decoder (true) or
// executed directly by the control path (false).
func IsDatapathOp(op isa.Op) bool {
	switch isa.ClassOf(op) {
	case isa.ClassArith, isa.ClassCompare, isa.ClassBoolean:
		return true
	}
	return op == isa.MOV
}

// Expand produces the micro-op sequence implementing in on a datapath with
// the given capabilities. It returns an error for instructions that are not
// datapath instructions (ensemble, control, MEMCPY).
func Expand(caps micro.CapabilitySet, in isa.Instr) ([]micro.Op, error) {
	if !IsDatapathOp(in.Op) {
		return nil, fmt.Errorf("recipe: %s is not a datapath instruction", in.Op)
	}
	e := newExpander(caps)
	rs, rt, rd := regw(in.A), regw(in.B), regw(in.C)
	switch in.Op {
	case isa.ADD:
		emitAdd(e, rd, rs, rt)
	case isa.SUB:
		emitSub(e, rd, rs, rt)
	case isa.INC:
		emitInc(e, rd, rs)
	case isa.INIT0:
		for i := 0; i < w; i++ {
			e.gSet(rd(i), false)
		}
	case isa.INIT1:
		e.gSet(rd(0), true)
		for i := 1; i < w; i++ {
			e.gSet(rd(i), false)
		}
	case isa.MUL:
		emitMulAcc(e, rs, rt)
		for i := 0; i < w; i++ {
			e.gCopy(rd(i), scratchw(sAcc)(i))
		}
	case isa.MAC:
		emitMulAcc(e, rs, rt)
		emitAdd(e, rd, rd, scratchw(sAcc))
	case isa.QDIV:
		emitDiv(e, rs, rt)
		for i := 0; i < w; i++ {
			e.gCopy(rd(i), scratchw(sQuo)(i))
		}
	case isa.RDIV:
		emitDiv(e, rs, rt)
		for i := 0; i < w; i++ {
			e.gCopy(rd(i), scratchw(sAcc)(i))
		}
	case isa.QRDIV:
		// Quotient in rd, remainder overwrites rt (Table II).
		emitDiv(e, rs, rt)
		for i := 0; i < w; i++ {
			e.gCopy(rd(i), scratchw(sQuo)(i))
			e.gCopy(rt(i), scratchw(sAcc)(i))
		}
	case isa.POPC:
		emitPopc(e, rd, rs)
	case isa.RELU:
		emitRelu(e, rd, rs)

	case isa.CMPEQ:
		eq := e.alloc()
		emitEq(e, eq, rs, rt, nil)
		e.gCondWrite(eq)
		e.release(eq)
	case isa.CMPLT:
		lt := e.alloc()
		emitSignedLt(e, lt, rs, rt)
		e.gCondWrite(lt)
		e.release(lt)
	case isa.CMPGT:
		gt := e.alloc()
		emitSignedLt(e, gt, rt, rs) // a > b  ⇔  b < a
		e.gCondWrite(gt)
		e.release(gt)
	case isa.FUZZY:
		eq := e.alloc()
		emitEq(e, eq, rs, rt, rd) // rd holds the don't-care bit positions
		e.gCondWrite(eq)
		e.release(eq)
	case isa.CAS:
		emitCas(e, rs, rt)
	case isa.MUX:
		sel := e.alloc()
		e.gCopy(sel, rd(0))
		for i := 0; i < w; i++ {
			e.gMux(rd(i), rs(i), rt(i), sel)
		}
		e.release(sel)
	case isa.MAX:
		lt := e.alloc()
		emitSignedLt(e, lt, rs, rt)
		for i := 0; i < w; i++ {
			e.gMux(rd(i), rt(i), rs(i), lt)
		}
		e.release(lt)
	case isa.MIN:
		lt := e.alloc()
		emitSignedLt(e, lt, rs, rt)
		for i := 0; i < w; i++ {
			e.gMux(rd(i), rs(i), rt(i), lt)
		}
		e.release(lt)

	case isa.AND:
		for i := 0; i < w; i++ {
			e.gAnd(rd(i), rs(i), rt(i))
		}
	case isa.NAND:
		for i := 0; i < w; i++ {
			e.gNand(rd(i), rs(i), rt(i))
		}
	case isa.NOR:
		for i := 0; i < w; i++ {
			e.gNor(rd(i), rs(i), rt(i))
		}
	case isa.OR:
		for i := 0; i < w; i++ {
			e.gOr(rd(i), rs(i), rt(i))
		}
	case isa.XOR:
		for i := 0; i < w; i++ {
			e.gXor(rd(i), rs(i), rt(i))
		}
	case isa.XNOR:
		for i := 0; i < w; i++ {
			e.gXnor(rd(i), rs(i), rt(i))
		}
	case isa.INV:
		for i := 0; i < w; i++ {
			e.gNot(rd(i), rs(i))
		}
	case isa.BFLIP:
		for i := 0; i < w; i++ {
			e.gCopy(scratchw(sFlip)(i), rs(i))
		}
		for i := 0; i < w; i++ {
			e.gCopy(rd(i), scratchw(sFlip)(w-1-i))
		}
	case isa.LSHIFT:
		for i := w - 1; i >= 1; i-- {
			e.gCopy(rd(i), rs(i-1))
		}
		e.gSet(rd(0), false)
	case isa.MOV:
		for i := 0; i < w; i++ {
			e.gCopy(rd(i), rs(i))
		}
	default:
		return nil, fmt.Errorf("recipe: no recipe for %s", in.Op)
	}
	return e.finish(), nil
}

// emitAdd emits rd = a + b (two's complement, wrap on overflow). rd may
// alias a and/or b.
func emitAdd(e *expander, rd, a, b word) {
	c, cn, sum := e.alloc(), e.alloc(), e.alloc()
	e.gSet(c, false)
	for i := 0; i < w; i++ {
		e.gFullAdd(sum, cn, a(i), b(i), c)
		e.gCopy(rd(i), sum)
		c, cn = cn, c
	}
	e.release(sum)
	e.release(cn)
	e.release(c)
}

// emitSub emits rd = a - b via a + ¬b + 1.
func emitSub(e *expander, rd, a, b word) {
	c, cn, sum, nb := e.alloc(), e.alloc(), e.alloc(), e.alloc()
	e.gSet(c, true)
	for i := 0; i < w; i++ {
		e.gNot(nb, b(i))
		e.gFullAdd(sum, cn, a(i), nb, c)
		e.gCopy(rd(i), sum)
		c, cn = cn, c
	}
	e.release(nb)
	e.release(sum)
	e.release(cn)
	e.release(c)
}

// emitInc emits rd = a + 1 with a half-adder chain.
func emitInc(e *expander, rd, a word) {
	c, cn, sum := e.alloc(), e.alloc(), e.alloc()
	e.gSet(c, true)
	for i := 0; i < w; i++ {
		e.gHalfAdd(sum, cn, a(i), c)
		e.gCopy(rd(i), sum)
		c, cn = cn, c
	}
	e.release(sum)
	e.release(cn)
	e.release(c)
}

// emitMulAcc computes the low-64-bit product a*b into the sAcc scratch
// register using shift-and-add partial products. The low-64 truncation makes
// the result correct for both signed and unsigned operands modulo 2^64.
// (Table II restricts MUL to 8/16/32-bit inputs on real hardware; the full
// 64-bit expansion is a strict superset and is what the simulator executes.)
func emitMulAcc(e *expander, a, b word) {
	acc := scratchw(sAcc)
	for i := 0; i < w; i++ {
		e.gSet(acc(i), false)
	}
	pp, c, cn, sum := e.alloc(), e.alloc(), e.alloc(), e.alloc()
	for i := 0; i < w; i++ {
		e.gSet(c, false)
		for j := 0; j+i < w; j++ {
			e.gAnd(pp, a(j), b(i))
			e.gFullAdd(sum, cn, acc(i+j), pp, c)
			e.gCopy(acc(i+j), sum)
			c, cn = cn, c
		}
		// Carry past bit 63 falls off the word (modulo arithmetic).
	}
	e.release(sum)
	e.release(cn)
	e.release(c)
	e.release(pp)
}

// emitDiv computes unsigned n / d by restoring division: quotient into the
// sQuo scratch register, remainder into sAcc. For d == 0 the restoring
// datapath naturally produces quotient 2^64-1 and remainder n.
func emitDiv(e *expander, n, d word) {
	r, q, t := scratchw(sAcc), scratchw(sQuo), scratchw(sTmp)
	for i := 0; i < w; i++ {
		e.gSet(r(i), false)
	}
	c, cn, nb, qb := e.alloc(), e.alloc(), e.alloc(), e.alloc()
	for i := w - 1; i >= 0; i-- {
		// R = (R << 1) | n_i
		for k := w - 1; k >= 1; k-- {
			e.gCopy(r(k), r(k-1))
		}
		e.gCopy(r(0), n(i))
		// T = R - D; carry-out high means R >= D.
		e.gSet(c, true)
		for k := 0; k < w; k++ {
			e.gNot(nb, d(k))
			e.gFullAdd(t(k), cn, r(k), nb, c)
			c, cn = cn, c
		}
		e.gCopy(qb, c) // quotient bit = no borrow
		e.gCopy(q(i), qb)
		// R = qb ? T : R (restore on borrow).
		for k := 0; k < w; k++ {
			e.gMux(r(k), t(k), r(k), qb)
		}
	}
	e.release(qb)
	e.release(nb)
	e.release(cn)
	e.release(c)
}

// emitPopc counts the set bits of a into rd with a carry-save reduction
// tree (Wallace style): full adders repeatedly compress three equal-weight
// planes into a sum and a carry of double weight, needing only ~62 adders
// for 64 bits instead of a 64×7 ripple. Intermediate planes live in the
// scratch registers; rd is written last so it may alias a.
func emitPopc(e *expander, rd, a word) {
	const cntBits = 7 // counts 0..64
	// Scratch-plane allocator over the recipe scratch registers.
	next := 0
	allocPlane := func() micro.Ref {
		reg, bit := next/w, next%w
		if reg >= 4 {
			panic("recipe: popc reduction exhausted scratch planes")
		}
		next++
		return micro.Scratch(reg, bit)
	}
	// Weight buckets, seeded with the operand's bit planes.
	buckets := make([][]micro.Ref, cntBits+1)
	for i := 0; i < w; i++ {
		buckets[0] = append(buckets[0], a(i))
	}
	var result [cntBits]micro.Ref
	var haveResult [cntBits]bool
	for k := 0; k < cntBits; k++ {
		for len(buckets[k]) >= 3 {
			n := len(buckets[k])
			x, y, z := buckets[k][n-3], buckets[k][n-2], buckets[k][n-1]
			buckets[k] = buckets[k][:n-3]
			s, cy := allocPlane(), allocPlane()
			e.gFullAdd(s, cy, x, y, z)
			buckets[k] = append(buckets[k], s)
			buckets[k+1] = append(buckets[k+1], cy)
		}
		if len(buckets[k]) == 2 {
			x, y := buckets[k][0], buckets[k][1]
			s, cy := allocPlane(), allocPlane()
			e.gHalfAdd(s, cy, x, y)
			buckets[k] = buckets[k][:0]
			buckets[k] = append(buckets[k], s)
			buckets[k+1] = append(buckets[k+1], cy)
		}
		if len(buckets[k]) == 1 {
			result[k] = buckets[k][0]
			haveResult[k] = true
		}
	}
	for k := 0; k < cntBits; k++ {
		if !haveResult[k] {
			e.gSet(rd(k), false)
			continue
		}
		e.gCopy(rd(k), result[k])
	}
	for k := cntBits; k < w; k++ {
		e.gSet(rd(k), false)
	}
}

// emitRelu emits rd = a < 0 ? 0 : a (signed).
func emitRelu(e *expander, rd, a word) {
	pos := e.alloc()
	e.gNot(pos, a(w-1))
	for i := 0; i < w; i++ {
		e.gAnd(rd(i), a(i), pos)
	}
	e.release(pos)
}

// emitEq sets eq = (a == b), optionally ignoring bit positions where the
// dontCare word has 1s (the FUZZY instruction).
func emitEq(e *expander, eq micro.Ref, a, b word, dontCare word) {
	neq, x := e.alloc(), e.alloc()
	e.gSet(neq, false)
	for i := 0; i < w; i++ {
		e.gXor(x, a(i), b(i))
		if dontCare != nil {
			nm := e.alloc()
			e.gNot(nm, dontCare(i))
			e.gAnd(x, x, nm)
			e.release(nm)
		}
		e.gOr(neq, neq, x)
	}
	e.gNot(eq, neq)
	e.release(x)
	e.release(neq)
}

// emitSignedLt sets lt = (a < b) for two's-complement words, using the
// borrow chain of a - b and the standard N⊕V test.
func emitSignedLt(e *expander, lt micro.Ref, a, b word) {
	c, nb := e.alloc(), e.alloc()
	e.gSet(c, true)
	for i := 0; i < w-1; i++ {
		e.gNot(nb, b(i))
		e.gMaj(c, a(i), nb, c)
	}
	// Top bit: need the difference sign d63 and overflow V.
	d63, t := e.alloc(), e.alloc()
	e.gNot(nb, b(w-1))
	e.gXor(t, a(w-1), nb)
	e.gXor(d63, t, c) // d63 = a63 ⊕ ¬b63 ⊕ c
	// V = (a63 ⊕ b63) ∧ (a63 ⊕ d63); note a63⊕b63 = ¬(a63⊕¬b63) = ¬t.
	v := e.alloc()
	e.gNot(t, t)
	e.gXor(v, a(w-1), d63)
	e.gAnd(v, t, v)
	e.gXor(lt, d63, v)
	e.release(v)
	e.release(t)
	e.release(d63)
	e.release(nb)
	e.release(c)
}

// emitCas conditionally swaps a and b so that a <= b (signed) afterwards.
func emitCas(e *expander, a, b word) {
	swap := e.alloc()
	emitSignedLt(e, swap, b, a) // swap when b < a, i.e. a > b
	t := e.alloc()
	for i := 0; i < w; i++ {
		e.gCopy(t, a(i))
		e.gMux(a(i), b(i), t, swap)
		e.gMux(b(i), t, b(i), swap)
	}
	e.release(t)
	e.release(swap)
}

// Cost returns the micro-op count of in's recipe under caps; it is used by
// the control path for decode accounting and by the recipe-table model.
func Cost(caps micro.CapabilitySet, in isa.Instr) int {
	ops, err := Expand(caps, in)
	if err != nil {
		return 0
	}
	return len(ops)
}
