// Package recipe implements the content of the MPU's instruction-to-micro-op
// (I2M) decoder: for every arithmetic, comparison, Boolean, and data-movement
// instruction in the MPU ISA it produces the datapath-specific micro-op
// sequence ("recipe", §VI-B) that computes the instruction bit-serially on a
// vector register file.
//
// A recipe is generated against a micro.CapabilitySet. Gates the datapath
// lacks are decomposed into supported primitives: a NOR-complete datapath
// (RACER) builds XOR from five NORs, a TRA datapath (MIMDRAM) builds carry
// chains from single majority activations, and an adder-augmented datapath
// (Duality Cache) collapses a whole full adder into one micro-op.
package recipe

import (
	"fmt"

	"mpu/internal/micro"
)

// expander accumulates micro-ops and manages the per-VRF temp-plane pool.
type expander struct {
	caps micro.CapabilitySet
	ops  []micro.Op
	free []micro.Ref
	high int // high-water mark of simultaneously live temps
	live int
}

func newExpander(caps micro.CapabilitySet) *expander {
	e := &expander{caps: caps}
	for t := micro.NumTempPlanes - 1; t >= 0; t-- {
		e.free = append(e.free, micro.Temp(t))
	}
	return e
}

// alloc takes a free temp plane; recipes are written so the pool never
// exhausts (the high-water mark is asserted in tests).
func (e *expander) alloc() micro.Ref {
	if len(e.free) == 0 {
		panic("recipe: temp plane pool exhausted")
	}
	r := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	e.live++
	if e.live > e.high {
		e.high = e.live
	}
	return r
}

func (e *expander) release(r micro.Ref) {
	if r.Space != micro.SpaceTemp {
		panic("recipe: released non-temp plane")
	}
	e.free = append(e.free, r)
	e.live--
}

func (e *expander) emit(op micro.Op) { e.ops = append(e.ops, op) }

// ---- Gate-level emitters -------------------------------------------------
//
// Every emitter reads all of its sources before writing its destination, so
// destinations may alias sources unless documented otherwise.

// gNot emits d = ¬a.
func (e *expander) gNot(d, a micro.Ref) {
	switch {
	case e.caps.Has(micro.NOT):
		e.emit(micro.Op{Kind: micro.NOT, Dst: d, A: a})
	case e.caps.Has(micro.NOR):
		e.emit(micro.Op{Kind: micro.NOR, Dst: d, A: a, B: a})
	case e.caps.Has(micro.XOR):
		e.emit(micro.Op{Kind: micro.XOR, Dst: d, A: a, B: micro.One()})
	default:
		panic("recipe: capability set cannot express NOT")
	}
}

// gAnd emits d = a ∧ b.
func (e *expander) gAnd(d, a, b micro.Ref) {
	switch {
	case e.caps.Has(micro.AND):
		e.emit(micro.Op{Kind: micro.AND, Dst: d, A: a, B: b})
	case e.caps.Has(micro.MAJ):
		e.emit(micro.Op{Kind: micro.MAJ, Dst: d, A: a, B: b, C: micro.Zero()})
	case e.caps.Has(micro.NOR):
		t0, t1 := e.alloc(), e.alloc()
		e.gNot(t0, a)
		e.gNot(t1, b)
		e.emit(micro.Op{Kind: micro.NOR, Dst: d, A: t0, B: t1})
		e.release(t1)
		e.release(t0)
	default:
		panic("recipe: capability set cannot express AND")
	}
}

// gOr emits d = a ∨ b.
func (e *expander) gOr(d, a, b micro.Ref) {
	switch {
	case e.caps.Has(micro.OR):
		e.emit(micro.Op{Kind: micro.OR, Dst: d, A: a, B: b})
	case e.caps.Has(micro.MAJ):
		e.emit(micro.Op{Kind: micro.MAJ, Dst: d, A: a, B: b, C: micro.One()})
	case e.caps.Has(micro.NOR):
		t0 := e.alloc()
		e.emit(micro.Op{Kind: micro.NOR, Dst: t0, A: a, B: b})
		e.gNot(d, t0)
		e.release(t0)
	default:
		panic("recipe: capability set cannot express OR")
	}
}

// gNor emits d = ¬(a ∨ b).
func (e *expander) gNor(d, a, b micro.Ref) {
	if e.caps.Has(micro.NOR) {
		e.emit(micro.Op{Kind: micro.NOR, Dst: d, A: a, B: b})
		return
	}
	e.gOr(d, a, b)
	e.gNot(d, d)
}

// gNand emits d = ¬(a ∧ b).
func (e *expander) gNand(d, a, b micro.Ref) {
	e.gAnd(d, a, b)
	e.gNot(d, d)
}

// gXor emits d = a ⊕ b.
func (e *expander) gXor(d, a, b micro.Ref) {
	if e.caps.Has(micro.XOR) {
		e.emit(micro.Op{Kind: micro.XOR, Dst: d, A: a, B: b})
		return
	}
	// a⊕b = ¬( ¬(a∨b) ∨ (a∧b) ): NOR(NOR(a,b), AND(a,b)).
	t0, t1 := e.alloc(), e.alloc()
	e.gNor(t0, a, b)
	e.gAnd(t1, a, b)
	e.gNor(d, t0, t1)
	e.release(t1)
	e.release(t0)
}

// gXnor emits d = ¬(a ⊕ b).
func (e *expander) gXnor(d, a, b micro.Ref) {
	e.gXor(d, a, b)
	e.gNot(d, d)
}

// gCopy emits d = a.
func (e *expander) gCopy(d, a micro.Ref) {
	e.emit(micro.Op{Kind: micro.COPY, Dst: d, A: a})
}

// gSet emits d = constant.
func (e *expander) gSet(d micro.Ref, one bool) {
	k := micro.SET0
	if one {
		k = micro.SET1
	}
	e.emit(micro.Op{Kind: k, Dst: d})
}

// gMaj emits d = majority(a, b, c).
func (e *expander) gMaj(d, a, b, c micro.Ref) {
	if e.caps.Has(micro.MAJ) {
		e.emit(micro.Op{Kind: micro.MAJ, Dst: d, A: a, B: b, C: c})
		return
	}
	// maj = (a∧b) ∨ (c ∧ (a∨b))
	t0, t1 := e.alloc(), e.alloc()
	e.gAnd(t0, a, b)
	e.gOr(t1, a, b)
	e.gAnd(t1, c, t1)
	e.gOr(d, t0, t1)
	e.release(t1)
	e.release(t0)
}

// gMux emits d = sel ? a : b.
func (e *expander) gMux(d, a, b, sel micro.Ref) {
	if e.caps.Has(micro.MUX) {
		e.emit(micro.Op{Kind: micro.MUX, Dst: d, A: a, B: b, C: sel})
		return
	}
	// (a∧sel) ∨ (b∧¬sel)
	t0, t1 := e.alloc(), e.alloc()
	e.gAnd(t0, a, sel)
	e.gNot(t1, sel)
	e.gAnd(t1, b, t1)
	e.gOr(d, t0, t1)
	e.release(t1)
	e.release(t0)
}

// gFullAdd emits sum = a⊕b⊕cin and cout = maj(a,b,cin). sum and cout must
// not alias each other or any input (recipes pass temps).
func (e *expander) gFullAdd(sum, cout, a, b, cin micro.Ref) {
	if e.caps.Has(micro.FADD) {
		e.emit(micro.Op{Kind: micro.FADD, Dst: sum, Dst2: cout, A: a, B: b, C: cin})
		return
	}
	t0 := e.alloc()
	e.gXor(t0, a, b)
	e.gXor(sum, t0, cin)
	e.gMaj(cout, a, b, cin)
	e.release(t0)
}

// gHalfAdd emits sum = a⊕c and cout = a∧c, with the same aliasing rule.
func (e *expander) gHalfAdd(sum, cout, a, c micro.Ref) {
	e.gXor(sum, a, c)
	e.gAnd(cout, a, c)
}

// gCondWrite latches src∧mask into the conditional register.
func (e *expander) gCondWrite(src micro.Ref) {
	e.emit(micro.Op{Kind: micro.CONDWR, A: src})
}

func (e *expander) finish() []micro.Op {
	if e.live != 0 {
		panic(fmt.Sprintf("recipe: %d temp planes leaked", e.live))
	}
	return e.ops
}
