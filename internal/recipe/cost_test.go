package recipe

import (
	"testing"

	"mpu/internal/isa"
)

// TestRecipeCostGolden pins the micro-op counts of every datapath
// instruction on each capability set. These are the I2M expansion factors
// the timing model is built on — an unintended recipe change shows up here
// before it silently skews every experiment. Update deliberately.
func TestRecipeCostGolden(t *testing.T) {
	type row struct {
		in                     isa.Instr
		racer, mimdram, dcache int
	}
	rows := []row{
		{isa.Add(0, 1, 2), 1345, 769, 129},
		{isa.Sub(0, 1, 2), 1409, 833, 193},
		{isa.Inc(0, 2), 577, 449, 193},
		{isa.Init0(2), 64, 64, 64},
		{isa.Init1(2), 64, 64, 64},
		{isa.Mov(0, 2), 64, 64, 64},
		{isa.And(0, 1, 2), 192, 64, 64},
		{isa.OrI(0, 1, 2), 128, 64, 64},
		{isa.Xor(0, 1, 2), 320, 320, 64},
		{isa.Nand(0, 1, 2), 256, 128, 128},
		{isa.Nor(0, 1, 2), 64, 128, 128},
		{isa.Xnor(0, 1, 2), 384, 384, 128},
		{isa.Inv(0, 2), 64, 64, 64},
		{isa.BFlip(0, 2), 128, 128, 128},
		{isa.LShift(0, 2), 64, 64, 64},
		{isa.Relu(0, 2), 193, 65, 65},
		{isa.CmpEq(0, 1), 451, 387, 131},
		{isa.CmpLt(0, 1), 720, 151, 324},
		{isa.CmpGt(0, 1), 720, 151, 324},
		{isa.MaxI(0, 1, 2), 1295, 406, 387},
		{isa.MinI(0, 1, 2), 1295, 406, 387},
		{isa.MuxI(0, 1, 2), 577, 257, 65},
	}
	for _, r := range rows {
		got := [3]int{
			Cost(capSets["racer"], r.in),
			Cost(capSets["mimdram"], r.in),
			Cost(capSets["dcache"], r.in),
		}
		want := [3]int{r.racer, r.mimdram, r.dcache}
		if got != want {
			t.Errorf("%s: costs = %v, want %v", r.in.Op, got, want)
		}
	}
}

// TestHeavyRecipeCostBounds sanity-bounds the big expansions rather than
// pinning them exactly (their structure is more likely to be tuned).
func TestHeavyRecipeCostBounds(t *testing.T) {
	bounds := []struct {
		in       isa.Instr
		caps     string
		min, max int
	}{
		{isa.Mul(0, 1, 2), "racer", 30_000, 80_000},
		{isa.Mul(0, 1, 2), "dcache", 4_000, 15_000},
		{isa.QDiv(0, 1, 2), "racer", 60_000, 200_000},
		{isa.QDiv(0, 1, 2), "dcache", 10_000, 80_000},
		{isa.Popc(0, 2), "racer", 800, 2_000},
		{isa.Popc(0, 2), "dcache", 100, 300},
		{isa.Mac(0, 1, 2), "racer", 30_000, 90_000},
		{isa.Cas(0, 1), "racer", 1_000, 4_000},
		{isa.Fuzzy(0, 1, 2), "racer", 500, 1_500},
	}
	for _, b := range bounds {
		got := Cost(capSets[b.caps], b.in)
		if got < b.min || got > b.max {
			t.Errorf("%s on %s: %d micro-ops outside [%d,%d]", b.in.Op, b.caps, got, b.min, b.max)
		}
	}
}

// TestCostsDeterministic: identical expansion on repeated calls.
func TestCostsDeterministic(t *testing.T) {
	for _, in := range []isa.Instr{isa.Add(3, 4, 5), isa.QDiv(1, 2, 3), isa.Popc(0, 1)} {
		a, _ := Expand(capSets["racer"], in)
		b, _ := Expand(capSets["racer"], in)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic length", in.Op)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic op at %d", in.Op, i)
			}
		}
	}
}
