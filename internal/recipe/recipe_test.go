package recipe

import (
	"math/rand"
	"testing"

	"mpu/internal/isa"
	"mpu/internal/micro"
	"mpu/internal/vrf"
)

// The three capability sets of the evaluated back ends (§IV, §II-C).
var capSets = map[string]micro.CapabilitySet{
	// RACER: NOR-complete in-ReRAM logic.
	"racer": micro.NewCapabilitySet(micro.NOR),
	// MIMDRAM: TRA majority plus NOT (dual-contact cells), AND/OR presets.
	"mimdram": micro.NewCapabilitySet(micro.MAJ, micro.NOT, micro.AND, micro.OR),
	// Duality Cache: bitline logic plus single-cycle CMOS full adders.
	"dcache": micro.NewCapabilitySet(micro.AND, micro.OR, micro.XOR, micro.NOT, micro.FADD, micro.MUX),
}

const testLanes = 67 // deliberately crosses a word boundary

// run executes instruction in on fresh VRF state with the given register
// preloads, returning the VRF for inspection.
func run(t *testing.T, caps micro.CapabilitySet, in isa.Instr, regs map[int][]uint64) *vrf.VRF {
	t.Helper()
	v := vrf.New(testLanes)
	for r, vals := range regs {
		v.WriteReg(r, vals)
	}
	ops, err := Expand(caps, in)
	if err != nil {
		t.Fatalf("Expand(%s): %v", in.Op, err)
	}
	v.ExecAll(ops)
	return v
}

func randWords(rng *rand.Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		switch rng.Intn(4) {
		case 0: // small values exercise carry chains near zero
			out[i] = uint64(rng.Intn(16))
		case 1: // values near the sign boundary
			out[i] = uint64(int64(-1 - rng.Intn(16)))
		default:
			out[i] = rng.Uint64()
		}
	}
	return out
}

// checkBinary runs a 3-operand instruction against a scalar reference on all
// capability sets.
func checkBinary(t *testing.T, mk func(rs, rt, rd int) isa.Instr, ref func(a, b uint64) uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	a, b := randWords(rng, testLanes), randWords(rng, testLanes)
	for name, caps := range capSets {
		v := run(t, caps, mk(0, 1, 2), map[int][]uint64{0: a, 1: b})
		got := v.ReadReg(2)
		for l := range a {
			if want := ref(a[l], b[l]); got[l] != want {
				t.Fatalf("%s lane %d: %s(%#x, %#x) = %#x, want %#x",
					name, l, mk(0, 1, 2).Op, a[l], b[l], got[l], want)
			}
		}
	}
}

func TestAdd(t *testing.T) {
	checkBinary(t, isa.Add, func(a, b uint64) uint64 { return a + b })
}

func TestSub(t *testing.T) {
	checkBinary(t, isa.Sub, func(a, b uint64) uint64 { return a - b })
}

func TestMul(t *testing.T) {
	checkBinary(t, isa.Mul, func(a, b uint64) uint64 { return a * b })
}

func TestBooleans(t *testing.T) {
	checkBinary(t, isa.And, func(a, b uint64) uint64 { return a & b })
	checkBinary(t, isa.OrI, func(a, b uint64) uint64 { return a | b })
	checkBinary(t, isa.Xor, func(a, b uint64) uint64 { return a ^ b })
	checkBinary(t, isa.Nand, func(a, b uint64) uint64 { return ^(a & b) })
	checkBinary(t, isa.Nor, func(a, b uint64) uint64 { return ^(a | b) })
	checkBinary(t, isa.Xnor, func(a, b uint64) uint64 { return ^(a ^ b) })
}

func TestMaxMin(t *testing.T) {
	checkBinary(t, isa.MaxI, func(a, b uint64) uint64 {
		if int64(a) >= int64(b) {
			return a
		}
		return b
	})
	checkBinary(t, isa.MinI, func(a, b uint64) uint64 {
		if int64(a) <= int64(b) {
			return a
		}
		return b
	})
}

func TestDivision(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := randWords(rng, testLanes), randWords(rng, testLanes)
	b[3] = 0 // exercise the divide-by-zero path
	b[4] = 1
	a[5], b[5] = 17, 5
	quoRef := func(n, d uint64) uint64 {
		if d == 0 {
			return ^uint64(0)
		}
		return n / d
	}
	remRef := func(n, d uint64) uint64 {
		if d == 0 {
			return n
		}
		return n % d
	}
	for name, caps := range capSets {
		v := run(t, caps, isa.QDiv(0, 1, 2), map[int][]uint64{0: a, 1: b})
		for l, got := range v.ReadReg(2) {
			if want := quoRef(a[l], b[l]); got != want {
				t.Fatalf("%s QDIV lane %d: %d/%d = %d, want %d", name, l, a[l], b[l], got, want)
			}
		}
		v = run(t, caps, isa.RDiv(0, 1, 2), map[int][]uint64{0: a, 1: b})
		for l, got := range v.ReadReg(2) {
			if want := remRef(a[l], b[l]); got != want {
				t.Fatalf("%s RDIV lane %d: %d%%%d = %d, want %d", name, l, a[l], b[l], got, want)
			}
		}
		v = run(t, caps, isa.QRDiv(0, 1, 2), map[int][]uint64{0: a, 1: b})
		quo, rem := v.ReadReg(2), v.ReadReg(1)
		for l := range a {
			if quo[l] != quoRef(a[l], b[l]) || rem[l] != remRef(a[l], b[l]) {
				t.Fatalf("%s QRDIV lane %d: got q=%d r=%d, want q=%d r=%d",
					name, l, quo[l], rem[l], quoRef(a[l], b[l]), remRef(a[l], b[l]))
			}
		}
	}
}

func TestMac(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b, acc := randWords(rng, testLanes), randWords(rng, testLanes), randWords(rng, testLanes)
	for name, caps := range capSets {
		v := run(t, caps, isa.Mac(0, 1, 2), map[int][]uint64{0: a, 1: b, 2: acc})
		for l, got := range v.ReadReg(2) {
			if want := acc[l] + a[l]*b[l]; got != want {
				t.Fatalf("%s MAC lane %d: got %#x, want %#x", name, l, got, want)
			}
		}
	}
}

func TestUnaryOps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randWords(rng, testLanes)
	unary := []struct {
		mk  func(rs, rd int) isa.Instr
		ref func(a uint64) uint64
	}{
		{isa.Inc, func(a uint64) uint64 { return a + 1 }},
		{isa.Inv, func(a uint64) uint64 { return ^a }},
		{isa.Mov, func(a uint64) uint64 { return a }},
		{isa.LShift, func(a uint64) uint64 { return a << 1 }},
		{isa.Relu, func(a uint64) uint64 {
			if int64(a) < 0 {
				return 0
			}
			return a
		}},
		{isa.Popc, func(a uint64) uint64 {
			n := uint64(0)
			for x := a; x != 0; x >>= 1 {
				n += x & 1
			}
			return n
		}},
		{isa.BFlip, func(a uint64) uint64 {
			var r uint64
			for i := 0; i < 64; i++ {
				if a>>uint(i)&1 == 1 {
					r |= 1 << uint(63-i)
				}
			}
			return r
		}},
	}
	for name, caps := range capSets {
		for _, u := range unary {
			in := u.mk(0, 2)
			v := run(t, caps, in, map[int][]uint64{0: a})
			for l, got := range v.ReadReg(2) {
				if want := u.ref(a[l]); got != want {
					t.Fatalf("%s %s lane %d: f(%#x) = %#x, want %#x", name, in.Op, l, a[l], got, want)
				}
			}
		}
	}
}

func TestInit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	junk := randWords(rng, testLanes)
	for name, caps := range capSets {
		v := run(t, caps, isa.Init0(2), map[int][]uint64{2: junk})
		for l, got := range v.ReadReg(2) {
			if got != 0 {
				t.Fatalf("%s INIT0 lane %d = %#x", name, l, got)
			}
		}
		v = run(t, caps, isa.Init1(2), map[int][]uint64{2: junk})
		for l, got := range v.ReadReg(2) {
			if got != 1 {
				t.Fatalf("%s INIT1 lane %d = %#x", name, l, got)
			}
		}
	}
}

func TestCompares(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, b := randWords(rng, testLanes), randWords(rng, testLanes)
	// Force some equal lanes and sign-boundary pairs.
	copy(b[:8], a[:8])
	a[10], b[10] = ^uint64(4), 3 // -5 vs 3
	a[11], b[11] = 3, ^uint64(4)
	a[12], b[12] = 0x8000000000000000, 0x7fffffffffffffff // INT_MIN vs INT_MAX
	cases := []struct {
		in  isa.Instr
		ref func(a, b uint64) bool
	}{
		{isa.CmpEq(0, 1), func(a, b uint64) bool { return a == b }},
		{isa.CmpLt(0, 1), func(a, b uint64) bool { return int64(a) < int64(b) }},
		{isa.CmpGt(0, 1), func(a, b uint64) bool { return int64(a) > int64(b) }},
	}
	for name, caps := range capSets {
		for _, c := range cases {
			v := run(t, caps, c.in, map[int][]uint64{0: a, 1: b})
			cond := v.CondBits()
			for l := range a {
				if want := c.ref(a[l], b[l]); cond[l] != want {
					t.Fatalf("%s %s lane %d: cmp(%#x,%#x) = %v, want %v",
						name, c.in.Op, l, a[l], b[l], cond[l], want)
				}
			}
		}
	}
}

func TestFuzzy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randWords(rng, testLanes)
	b := make([]uint64, testLanes)
	m := make([]uint64, testLanes)
	for l := range a {
		m[l] = rng.Uint64() & 0x00ff00ff00ff00ff
		// b differs from a only in don't-care positions for even lanes.
		if l%2 == 0 {
			b[l] = a[l] ^ (rng.Uint64() & m[l])
		} else {
			b[l] = a[l] ^ 1<<uint(rng.Intn(8)*8) // differs in a cared-about bit
			m[l] &^= 0xff                        // ensure low byte is cared about
			b[l] = a[l] ^ 1                      // low bit differs
		}
	}
	for name, caps := range capSets {
		v := run(t, caps, isa.Fuzzy(0, 1, 2), map[int][]uint64{0: a, 1: b, 2: m})
		cond := v.CondBits()
		for l := range a {
			want := (a[l]^b[l])&^m[l] == 0
			if cond[l] != want {
				t.Fatalf("%s FUZZY lane %d: got %v, want %v", name, l, cond[l], want)
			}
		}
	}
}

func TestCas(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a, b := randWords(rng, testLanes), randWords(rng, testLanes)
	for name, caps := range capSets {
		v := run(t, caps, isa.Cas(0, 1), map[int][]uint64{0: a, 1: b})
		lo, hi := v.ReadReg(0), v.ReadReg(1)
		for l := range a {
			wantLo, wantHi := a[l], b[l]
			if int64(a[l]) > int64(b[l]) {
				wantLo, wantHi = b[l], a[l]
			}
			if lo[l] != wantLo || hi[l] != wantHi {
				t.Fatalf("%s CAS lane %d: got (%d,%d), want (%d,%d)",
					name, l, int64(lo[l]), int64(hi[l]), int64(wantLo), int64(wantHi))
			}
		}
	}
}

func TestMux(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a, b := randWords(rng, testLanes), randWords(rng, testLanes)
	sel := make([]uint64, testLanes)
	for l := range sel {
		sel[l] = uint64(rng.Intn(2))
	}
	for name, caps := range capSets {
		v := run(t, caps, isa.MuxI(0, 1, 2), map[int][]uint64{0: a, 1: b, 2: sel})
		for l, got := range v.ReadReg(2) {
			want := b[l]
			if sel[l]&1 == 1 {
				want = a[l]
			}
			if got != want {
				t.Fatalf("%s MUX lane %d: got %#x, want %#x", name, l, got, want)
			}
		}
	}
}

// TestAliasing verifies recipes tolerate rd aliasing rs/rt.
func TestAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a, b := randWords(rng, testLanes), randWords(rng, testLanes)
	for name, caps := range capSets {
		// rd == rs
		v := run(t, caps, isa.Add(0, 1, 0), map[int][]uint64{0: a, 1: b})
		for l, got := range v.ReadReg(0) {
			if want := a[l] + b[l]; got != want {
				t.Fatalf("%s ADD rd=rs lane %d: got %#x want %#x", name, l, got, want)
			}
		}
		// rd == rt
		v = run(t, caps, isa.Sub(0, 1, 1), map[int][]uint64{0: a, 1: b})
		for l, got := range v.ReadReg(1) {
			if want := a[l] - b[l]; got != want {
				t.Fatalf("%s SUB rd=rt lane %d: got %#x want %#x", name, l, got, want)
			}
		}
		// rs == rt == rd (doubling)
		v = run(t, caps, isa.Add(0, 0, 0), map[int][]uint64{0: a})
		for l, got := range v.ReadReg(0) {
			if want := a[l] + a[l]; got != want {
				t.Fatalf("%s ADD all-alias lane %d: got %#x want %#x", name, l, got, want)
			}
		}
		// In-place unary ops
		v = run(t, caps, isa.LShift(0, 0), map[int][]uint64{0: a})
		for l, got := range v.ReadReg(0) {
			if want := a[l] << 1; got != want {
				t.Fatalf("%s LSHIFT in-place lane %d: got %#x want %#x", name, l, got, want)
			}
		}
		v = run(t, caps, isa.BFlip(0, 0), map[int][]uint64{0: a})
		_ = v
	}
}

// TestMaskedLanesUntouched verifies predication: recipes leave disabled
// lanes' destination registers intact.
func TestMaskedLanesUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a, b, old := randWords(rng, testLanes), randWords(rng, testLanes), randWords(rng, testLanes)
	for name, caps := range capSets {
		v := vrf.New(testLanes)
		v.WriteReg(0, a)
		v.WriteReg(1, b)
		v.WriteReg(2, old)
		// Enable only even lanes via a register-sourced mask.
		maskVals := make([]uint64, testLanes)
		for l := range maskVals {
			if l%2 == 0 {
				maskVals[l] = 1
			}
		}
		v.WriteReg(3, maskVals)
		v.SetMaskFromReg(3)
		ops, err := Expand(caps, isa.Add(0, 1, 2))
		if err != nil {
			t.Fatal(err)
		}
		v.ExecAll(ops)
		got := v.ReadReg(2)
		for l := range got {
			want := old[l]
			if l%2 == 0 {
				want = a[l] + b[l]
			}
			if got[l] != want {
				t.Fatalf("%s lane %d (mask=%v): got %#x, want %#x", name, l, l%2 == 0, got[l], want)
			}
		}
	}
}

// TestComparesClearDisabledCond: a comparison must leave cond=0 for disabled
// lanes so stale conditions can never re-enable a lane through SETMASK.
func TestComparesClearDisabledCond(t *testing.T) {
	for name, caps := range capSets {
		v := vrf.New(testLanes)
		eqVals := make([]uint64, testLanes) // all lanes equal → cond would be 1
		v.WriteReg(0, eqVals)
		v.WriteReg(1, eqVals)
		maskVals := make([]uint64, testLanes)
		maskVals[0] = 1 // only lane 0 enabled
		v.WriteReg(3, maskVals)
		v.SetMaskFromReg(3)
		ops, _ := Expand(caps, isa.CmpEq(0, 1))
		v.ExecAll(ops)
		cond := v.CondBits()
		if !cond[0] {
			t.Fatalf("%s: enabled lane cond = false, want true", name)
		}
		for l := 1; l < testLanes; l++ {
			if cond[l] {
				t.Fatalf("%s: disabled lane %d cond = true, want false", name, l)
			}
		}
	}
}

func TestExpandRejectsNonDatapath(t *testing.T) {
	for _, in := range []isa.Instr{isa.Nop(), isa.Compute(0, 0), isa.Jump(0), isa.Memcpy(0, 0, 0, 0), isa.Sync()} {
		if _, err := Expand(capSets["racer"], in); err == nil {
			t.Errorf("Expand accepted %s", in.Op)
		}
	}
}

func TestIsDatapathOp(t *testing.T) {
	if !IsDatapathOp(isa.ADD) || !IsDatapathOp(isa.MOV) || !IsDatapathOp(isa.CMPEQ) {
		t.Error("datapath ops misclassified")
	}
	if IsDatapathOp(isa.MEMCPY) || IsDatapathOp(isa.JUMP) || IsDatapathOp(isa.COMPUTE) {
		t.Error("non-datapath ops misclassified")
	}
}

// TestExpansionScale pins the qualitative claim of §VI-B: a single
// instruction expands to hundreds or thousands of micro-ops, and richer
// capability sets shrink the expansion.
func TestExpansionScale(t *testing.T) {
	add := isa.Add(0, 1, 2)
	racer := Cost(capSets["racer"], add)
	mimdram := Cost(capSets["mimdram"], add)
	dcache := Cost(capSets["dcache"], add)
	if racer < 500 {
		t.Errorf("NOR-only ADD = %d micro-ops; expected hundreds", racer)
	}
	if !(dcache < mimdram && mimdram < racer) {
		t.Errorf("expected dcache(%d) < mimdram(%d) < racer(%d)", dcache, mimdram, racer)
	}
	if dcache > 3*64 {
		t.Errorf("adder-augmented ADD = %d micro-ops; expected ~2/bit", dcache)
	}
	mul := Cost(capSets["racer"], isa.Mul(0, 1, 2))
	if mul < 10000 {
		t.Errorf("NOR-only MUL = %d micro-ops; expected tens of thousands", mul)
	}
}

func TestCostOfNonDatapathIsZero(t *testing.T) {
	if got := Cost(capSets["racer"], isa.Nop()); got != 0 {
		t.Errorf("Cost(NOP) = %d", got)
	}
}

func BenchmarkExpandAddRACER(b *testing.B) {
	in := isa.Add(0, 1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Expand(capSets["racer"], in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecAddRACER(b *testing.B) {
	ops, err := Expand(capSets["racer"], isa.Add(0, 1, 2))
	if err != nil {
		b.Fatal(err)
	}
	v := vrf.New(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.ExecAll(ops)
	}
}
