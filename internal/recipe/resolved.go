package recipe

import (
	"sync"

	"mpu/internal/isa"
	"mpu/internal/micro"
)

// expandKey identifies an expansion process-wide: recipe selection depends
// only on the back end's capability set and the instruction itself.
type expandKey struct {
	caps micro.CapabilitySet
	in   isa.Instr
}

// expansion is one memoized ExpandResolved result. The slices are shared by
// every caller and must be treated as immutable.
type expansion struct {
	ops  []micro.Op
	rops []micro.ResolvedOp
	err  error
}

// expansions memoizes ExpandResolved across all machines in the process.
// Recipe expansion is deterministic in (caps, instr), so a sweep that builds
// hundreds of machines over the same back ends pays the gate-level expander
// and its resolution once per distinct instruction instead of once per
// machine.
var expansions sync.Map // expandKey -> *expansion

// ExpandResolved is Expand plus the slot-resolved form of the same stream,
// for executors and the trace engine that replay expansions many times: the
// resolution (and its constant-plane write verification) is paid once per
// process instead of per execution. Callers must not mutate the returned
// slices.
func ExpandResolved(caps micro.CapabilitySet, in isa.Instr) ([]micro.Op, []micro.ResolvedOp, error) {
	k := expandKey{caps: caps, in: in}
	if e, ok := expansions.Load(k); ok {
		x := e.(*expansion)
		return x.ops, x.rops, x.err
	}
	x := &expansion{}
	x.ops, x.err = Expand(caps, in)
	if x.err != nil {
		x.ops = nil
	} else {
		x.rops = micro.Resolve(x.ops)
	}
	expansions.Store(k, x)
	return x.ops, x.rops, x.err
}
