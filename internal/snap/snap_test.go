package snap

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.I64(-42)
	w.Int(123456)
	w.F64(3.25)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	data := w.Finish()

	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bools corrupted")
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 123456 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != 3.25 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumRejectsCorruption(t *testing.T) {
	w := NewWriter()
	w.U64(12345)
	data := w.Finish()
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, err := NewReader(bad); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
	if _, err := NewReader(nil); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestStrictBool(t *testing.T) {
	w := NewWriter()
	w.U8(2) // not a legal bool byte
	data := w.Finish()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r.Bool()
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "not 0 or 1") {
		t.Fatalf("bool byte 2 accepted: %v", r.Err())
	}
}

func TestTruncationSticks(t *testing.T) {
	w := NewWriter()
	w.U8(1)
	data := w.Finish()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r.U64() // needs 8 bytes, only 1 in the payload
	if r.Err() == nil {
		t.Fatal("truncated read succeeded")
	}
	// Sticky: later reads keep failing and Close reports the first cause.
	if r.U32() != 0 || r.Err() == nil {
		t.Fatal("error did not stick")
	}
	if err := r.Close(); err == nil {
		t.Fatal("Close ignored the sticky error")
	}
}

func TestCloseRejectsTrailingBytes(t *testing.T) {
	w := NewWriter()
	w.U8(1)
	w.U8(2)
	data := w.Finish()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r.U8()
	if err := r.Close(); err == nil || !strings.Contains(err.Error(), "unconsumed") {
		t.Fatalf("trailing byte not reported: %v", err)
	}
}

func TestLenGuardsAllocation(t *testing.T) {
	w := NewWriter()
	w.U64(1 << 40) // a length no stream this short can satisfy
	data := w.Finish()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Len(8); n != 0 || r.Err() == nil {
		t.Fatalf("oversized length accepted: n=%d err=%v", n, r.Err())
	}
}
