// Package snap implements the canonical binary codec underneath machine
// snapshots. The format is deliberately rigid so that a snapshot is a pure
// function of the serialized state: every field is fixed-width little-endian,
// booleans are strictly 0/1, variable-length sections are length-prefixed,
// and the stream ends with an FNV-64a checksum over everything before it.
// Rigidity is what makes the round-trip oracle meaningful — any byte stream
// the Reader accepts re-encodes to exactly the same bytes, so
// FuzzSnapshotRoundTrip can assert decode∘encode = identity instead of a
// weaker semantic equivalence.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Writer accumulates one snapshot stream.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty snapshot writer.
func NewWriter() *Writer { return &Writer{} }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a strict 0/1 byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends the IEEE-754 bit pattern of v.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Finish appends the FNV-64a checksum of everything written so far and
// returns the completed stream. The writer must not be reused afterwards.
func (w *Writer) Finish() []byte {
	h := fnv.New64a()
	h.Write(w.buf)
	return binary.LittleEndian.AppendUint64(w.buf, h.Sum64())
}

// Reader consumes a snapshot stream produced by Writer. Errors are sticky:
// after the first failure every accessor returns the zero value and Err
// reports the original cause, so decoders can run straight-line and check
// once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader verifies the stream's trailing checksum and returns a reader
// over the payload before it.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("snap: stream of %d bytes is shorter than its checksum", len(data))
	}
	payload, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	h := fnv.New64a()
	h.Write(payload)
	if got := h.Sum64(); got != sum {
		return nil, fmt.Errorf("snap: checksum mismatch (stream %016x, computed %016x)", sum, got)
	}
	return &Reader{buf: payload}, nil
}

// Err returns the first decode failure, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format+" at offset %d", append(args, r.off)...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("truncated stream (need %d bytes, %d left)", n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a strict 0/1 byte; any other value is a decode error.
func (r *Reader) Bool() bool {
	v := r.U8()
	if r.err == nil && v > 1 {
		r.fail("bool byte %d is not 0 or 1", v)
		return false
	}
	return v == 1
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 into an int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads an IEEE-754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Len reads a length prefix and validates it against the bytes remaining,
// scaled by the per-element size — a guard against attacker- or
// fuzzer-controlled lengths driving huge allocations before the stream
// runs out.
func (r *Reader) Len(elemSize int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > uint64(len(r.buf)-r.off)/uint64(elemSize) {
		r.fail("length %d exceeds remaining stream", n)
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte string (copied out of the stream).
func (r *Reader) Bytes() []byte {
	n := r.Len(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Close verifies that the payload was consumed exactly — trailing garbage
// would make re-encoding shorter than the input, breaking canonical
// round-trips — and returns the sticky error, if any.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("snap: %d unconsumed payload bytes", len(r.buf)-r.off)
	}
	return nil
}
