package micro

import "testing"

// TestSlotRoundTrip checks RefOf inverts SlotOf over every addressable plane
// and that the slot space is dense and collision-free.
func TestSlotRoundTrip(t *testing.T) {
	seen := make(map[Slot]bool, NumSlots)
	var refs []Ref
	for r := 0; r < SlotNumRegs; r++ {
		for b := 0; b < SlotWordBits; b++ {
			refs = append(refs, Reg(r, b))
		}
	}
	for s := 0; s < NumScratchRegs; s++ {
		for b := 0; b < SlotWordBits; b++ {
			refs = append(refs, Scratch(s, b))
		}
	}
	for p := 0; p < NumTempPlanes; p++ {
		refs = append(refs, Temp(p))
	}
	refs = append(refs, Cond(), Zero(), One())

	for _, r := range refs {
		s := SlotOf(r)
		if int(s) >= NumSlots {
			t.Fatalf("SlotOf(%v) = %d out of range [0,%d)", r, s, NumSlots)
		}
		if seen[s] {
			t.Fatalf("slot %d assigned twice (at %v)", s, r)
		}
		seen[s] = true
		if got := RefOf(s); got != r {
			t.Fatalf("RefOf(SlotOf(%v)) = %v", r, got)
		}
	}
	// Every slot except the executor-internal mask slot is an addressable ref.
	if len(seen) != NumSlots-1 {
		t.Fatalf("covered %d slots, want %d", len(seen), NumSlots-1)
	}
	if seen[SlotMask] {
		t.Fatal("an addressable ref mapped to the mask slot")
	}
}

func TestResolveMapsOperands(t *testing.T) {
	ops := []Op{
		{Kind: NOR, Dst: Temp(3), A: Reg(7, 11), B: Scratch(2, 63)},
		{Kind: FADD, Dst: Temp(0), Dst2: Temp(1), A: Reg(0, 0), B: One(), C: Zero()},
		{Kind: CONDWR, A: Reg(5, 0)},
	}
	rs := Resolve(ops)
	for i := range ops {
		if rs[i].Kind != ops[i].Kind {
			t.Fatalf("op %d: kind %v != %v", i, rs[i].Kind, ops[i].Kind)
		}
		if got := rs[i].Op(); got != ops[i] {
			t.Fatalf("op %d: round-trip %v != %v", i, got, ops[i])
		}
	}
}

func TestResolveRejectsConstantPlaneWrites(t *testing.T) {
	for _, op := range []Op{
		{Kind: SET1, Dst: Zero()},
		{Kind: COPY, Dst: One(), A: Reg(0, 0)},
		{Kind: FADD, Dst: Temp(0), Dst2: One(), A: Reg(0, 0), B: Reg(1, 0), C: Zero()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Resolve(%v) did not panic", op)
				}
			}()
			Resolve([]Op{op})
		}()
	}
}
