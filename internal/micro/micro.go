// Package micro defines the micro-op layer sitting between the MPU ISA and a
// PUM datapath. An I2M decoder (internal/recipe + internal/controlpath)
// expands each ISA instruction into a sequence of MicroOps; the datapath
// executes them column-wide on bit planes (internal/vrf).
//
// Micro-op kinds mirror the primitives reported for the three back ends:
// in-ReRAM NOR (RACER/OSCAR), DRAM triple-row-activation majority (MIMDRAM),
// and SRAM bitline AND/OR/XOR/NOT plus a single-cycle CMOS full adder
// (Duality Cache).
package micro

import "fmt"

// Kind identifies a micro-op.
type Kind uint8

// Micro-op kinds.
const (
	// Boolean column ops (two sources).
	NOR Kind = iota
	AND
	OR
	XOR

	// Single-source ops.
	NOT
	COPY

	// Three-source ops.
	MAJ // triple-row-activation majority (TRA)
	MUX // dst = C ? A : B

	// Composite arithmetic assist.
	FADD // {Dst=sum, Dst2=carry} = fulladd(A, B, C); dedicated CMOS adders

	// Plane initialisation.
	SET0
	SET1

	// Control-path interface ops.
	CONDWR // conditional register := A AND lane-mask (unmasked write)
	MASKRD // Dst := lane-mask bit (unmasked write; used by GETMASK)

	numKinds
)

// NumKinds is the number of defined micro-op kinds.
const NumKinds = int(numKinds)

var kindNames = [numKinds]string{
	NOR: "nor", AND: "and", OR: "or", XOR: "xor", NOT: "not", COPY: "copy",
	MAJ: "maj", MUX: "mux", FADD: "fadd", SET0: "set0", SET1: "set1",
	CONDWR: "condwr", MASKRD: "maskrd",
}

// String returns the lower-case micro-op mnemonic.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("ukind(%d)", uint8(k))
}

// Space selects the plane address space within a VRF.
type Space uint8

// Plane address spaces.
const (
	SpaceReg     Space = iota // architectural vector registers (Idx=reg, Bit=bit)
	SpaceScratch              // scratch registers reserved for recipes (Idx, Bit)
	SpaceTemp                 // single scratch planes (Idx)
	SpaceCond                 // the conditional register plane
	SpaceZero                 // constant-0 plane
	SpaceOne                  // constant-1 plane
)

// NumScratchRegs is the number of word-wide scratch registers a VRF reserves
// for recipe temporaries (spare columns/buffer rows in the physical arrays).
const NumScratchRegs = 4

// NumTempPlanes is the number of single-bit scratch planes per VRF. Sixteen
// covers the deepest recipe nesting (a NOR-decomposed full adder inside the
// division inner loop) with headroom.
const NumTempPlanes = 16

// Ref addresses one bit plane within a VRF.
type Ref struct {
	Space Space
	Idx   uint8 // register / scratch register / temp index
	Bit   uint8 // bit within the register (reg and scratch spaces only)
}

// Reg addresses bit b of architectural register r.
func Reg(r, b int) Ref { return Ref{Space: SpaceReg, Idx: uint8(r), Bit: uint8(b)} }

// Scratch addresses bit b of scratch register s.
func Scratch(s, b int) Ref { return Ref{Space: SpaceScratch, Idx: uint8(s), Bit: uint8(b)} }

// Temp addresses scratch plane t.
func Temp(t int) Ref { return Ref{Space: SpaceTemp, Idx: uint8(t)} }

// Cond addresses the conditional register plane.
func Cond() Ref { return Ref{Space: SpaceCond} }

// Zero addresses the constant-0 plane.
func Zero() Ref { return Ref{Space: SpaceZero} }

// One addresses the constant-1 plane.
func One() Ref { return Ref{Space: SpaceOne} }

func (r Ref) String() string {
	switch r.Space {
	case SpaceReg:
		return fmt.Sprintf("r%d.%d", r.Idx, r.Bit)
	case SpaceScratch:
		return fmt.Sprintf("s%d.%d", r.Idx, r.Bit)
	case SpaceTemp:
		return fmt.Sprintf("t%d", r.Idx)
	case SpaceCond:
		return "cond"
	case SpaceZero:
		return "zero"
	case SpaceOne:
		return "one"
	}
	return fmt.Sprintf("ref(%d,%d,%d)", r.Space, r.Idx, r.Bit)
}

// Op is one micro-op: a column-wide operation on bit planes. Dst2 is used
// only by FADD (the carry output).
type Op struct {
	Kind      Kind
	Dst, Dst2 Ref
	A, B, C   Ref
}

func (o Op) String() string {
	switch o.Kind {
	case SET0, SET1:
		return fmt.Sprintf("%s %s", o.Kind, o.Dst)
	case NOT, COPY:
		return fmt.Sprintf("%s %s, %s", o.Kind, o.Dst, o.A)
	case MAJ, MUX:
		return fmt.Sprintf("%s %s, %s, %s, %s", o.Kind, o.Dst, o.A, o.B, o.C)
	case FADD:
		return fmt.Sprintf("fadd %s/%s, %s, %s, %s", o.Dst, o.Dst2, o.A, o.B, o.C)
	case CONDWR:
		return fmt.Sprintf("condwr %s", o.A)
	case MASKRD:
		return fmt.Sprintf("maskrd %s", o.Dst)
	default:
		return fmt.Sprintf("%s %s, %s, %s", o.Kind, o.Dst, o.A, o.B)
	}
}

// CapabilitySet describes which micro-op kinds a datapath supports natively.
// The recipe library selects expansions based on this set (e.g. RACER is
// NOR-complete; MIMDRAM uses MAJ/NOT; Duality Cache adds FADD).
type CapabilitySet struct {
	kinds [numKinds]bool
}

// NewCapabilitySet returns a set containing the given kinds. SET0/SET1, COPY,
// CONDWR, and MASKRD are always included: every published datapath can
// initialise cells, move columns, and expose mask state to its controller.
func NewCapabilitySet(kinds ...Kind) CapabilitySet {
	var s CapabilitySet
	for _, k := range []Kind{SET0, SET1, COPY, CONDWR, MASKRD} {
		s.kinds[k] = true
	}
	for _, k := range kinds {
		s.kinds[k] = true
	}
	return s
}

// Has reports whether kind k is supported.
func (s CapabilitySet) Has(k Kind) bool { return s.kinds[k] }

// Kinds returns the supported kinds in ascending order.
func (s CapabilitySet) Kinds() []Kind {
	var out []Kind
	for k := Kind(0); k < numKinds; k++ {
		if s.kinds[k] {
			out = append(out, k)
		}
	}
	return out
}
