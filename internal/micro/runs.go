package micro

// Run is a maximal stretch of consecutive same-Kind ops inside a resolved
// stream: rs[Start : Start+Len] all share Kind. The trace JIT fuses each
// run into one closure whose loop body is the kind's merge expression, so
// the per-op kind dispatch of the interpreting executor disappears from
// replay entirely.
type Run struct {
	Kind       Kind
	Start, Len int
}

// Runs segments a resolved stream into maximal same-kind runs, in order.
// Concatenating the runs reproduces the stream exactly.
func Runs(rs []ResolvedOp) []Run {
	var out []Run
	for i := 0; i < len(rs); {
		j := i + 1
		for j < len(rs) && rs[j].Kind == rs[i].Kind {
			j++
		}
		out = append(out, Run{Kind: rs[i].Kind, Start: i, Len: j - i})
		i = j
	}
	return out
}
