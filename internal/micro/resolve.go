package micro

import "fmt"

// Resolved micro-ops are the trace-friendly form of a recipe expansion: every
// plane Ref is pre-resolved to a dense Slot index into a VRF's plane
// directory, so executing one costs an array load instead of a space-switch
// with range checks. The numbering is geometry-independent — the same
// resolved stream drives every VRF of a machine — which is what lets the
// ensemble trace engine (internal/trace) cache one compiled body per core
// and replay it against whichever VRFs each scheduling round activates.

// Slot is a dense index over every plane a VRF can hold: architectural
// register bits first, then scratch register bits, temp planes, and the four
// fixed planes (cond, zero, one, mask).
type Slot uint16

// Slot layout. SlotNumRegs/SlotWordBits mirror isa.NumRegs/isa.WordBits
// (micro sits below isa in the dependency order; internal/vrf carries a
// compile-time assertion that the two stay equal).
const (
	SlotNumRegs  = 64
	SlotWordBits = 64

	// SlotScratchBase and SlotTempBase are the first scratch-register and
	// temp-plane slots; internal/vrf decodes slots arithmetically against
	// these bases on its word-level fast path.
	SlotScratchBase = SlotNumRegs * SlotWordBits
	SlotTempBase    = SlotScratchBase + NumScratchRegs*SlotWordBits

	// SlotCond, SlotZero, SlotOne, SlotMask address the fixed planes.
	SlotCond = Slot(SlotTempBase + NumTempPlanes)
	SlotZero = SlotCond + 1
	SlotOne  = SlotZero + 1
	SlotMask = SlotOne + 1

	// NumSlots sizes a VRF's plane directory.
	NumSlots = int(SlotMask) + 1
)

// SlotOf returns the directory slot for a plane reference.
func SlotOf(r Ref) Slot {
	switch r.Space {
	case SpaceReg:
		return Slot(int(r.Idx)*SlotWordBits + int(r.Bit))
	case SpaceScratch:
		return Slot(SlotScratchBase + int(r.Idx)*SlotWordBits + int(r.Bit))
	case SpaceTemp:
		return Slot(SlotTempBase + int(r.Idx))
	case SpaceCond:
		return SlotCond
	case SpaceZero:
		return SlotZero
	case SpaceOne:
		return SlotOne
	}
	panic(fmt.Sprintf("micro: bad plane space %d", r.Space))
}

// RefOf inverts SlotOf. It panics on SlotMask: the mask plane is not
// addressable by recipe expansions, so no resolved operand ever names it.
func RefOf(s Slot) Ref {
	si := int(s)
	switch {
	case si < SlotScratchBase:
		return Ref{Space: SpaceReg, Idx: uint8(si / SlotWordBits), Bit: uint8(si % SlotWordBits)}
	case si < SlotTempBase:
		si -= SlotScratchBase
		return Ref{Space: SpaceScratch, Idx: uint8(si / SlotWordBits), Bit: uint8(si % SlotWordBits)}
	case s < SlotCond:
		return Ref{Space: SpaceTemp, Idx: uint8(si - SlotTempBase)}
	case s == SlotCond:
		return Ref{Space: SpaceCond}
	case s == SlotZero:
		return Ref{Space: SpaceZero}
	case s == SlotOne:
		return Ref{Space: SpaceOne}
	}
	panic(fmt.Sprintf("micro: bad slot %d", s))
}

// ResolvedOp is one pre-resolved micro-op. Dst2 is used only by FADD.
type ResolvedOp struct {
	Kind      Kind
	Dst, Dst2 Slot
	A, B, C   Slot
}

// Op converts back to the Ref-addressed form, for executors without a
// slot-indexed fast path.
func (r ResolvedOp) Op() Op {
	return Op{
		Kind: r.Kind,
		Dst:  RefOf(r.Dst), Dst2: RefOf(r.Dst2),
		A: RefOf(r.A), B: RefOf(r.B), C: RefOf(r.C),
	}
}

// Resolve pre-resolves a recipe expansion. It also performs, once, the
// constant-plane write check the interpreting executor repeats per op, so
// the resolved fast path can skip it.
func Resolve(ops []Op) []ResolvedOp {
	out := make([]ResolvedOp, len(ops))
	for i, op := range ops {
		if op.Dst.Space == SpaceZero || op.Dst.Space == SpaceOne ||
			op.Dst2.Space == SpaceOne {
			panic(fmt.Sprintf("micro: op %d writes a constant plane", i))
		}
		out[i] = ResolvedOp{
			Kind: op.Kind,
			Dst:  SlotOf(op.Dst), Dst2: SlotOf(op.Dst2),
			A: SlotOf(op.A), B: SlotOf(op.B), C: SlotOf(op.C),
		}
	}
	return out
}
