package micro

import (
	"reflect"
	"testing"
)

func TestRuns(t *testing.T) {
	if Runs(nil) != nil {
		t.Error("Runs(nil) != nil")
	}
	rs := []ResolvedOp{
		{Kind: XOR}, {Kind: XOR}, {Kind: FADD}, {Kind: FADD}, {Kind: FADD},
		{Kind: COPY}, {Kind: XOR},
	}
	got := Runs(rs)
	want := []Run{
		{Kind: XOR, Start: 0, Len: 2},
		{Kind: FADD, Start: 2, Len: 3},
		{Kind: COPY, Start: 5, Len: 1},
		{Kind: XOR, Start: 6, Len: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Runs = %+v, want %+v", got, want)
	}
	// The runs must tile the stream.
	n := 0
	for _, r := range got {
		if r.Start != n {
			t.Errorf("run starts at %d, want %d", r.Start, n)
		}
		n += r.Len
	}
	if n != len(rs) {
		t.Errorf("runs cover %d ops, want %d", n, len(rs))
	}
}
