package micro

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "ukind") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if got := Kind(99).String(); got != "ukind(99)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestRefConstructors(t *testing.T) {
	cases := []struct {
		ref  Ref
		want string
	}{
		{Reg(3, 17), "r3.17"},
		{Scratch(1, 63), "s1.63"},
		{Temp(5), "t5"},
		{Cond(), "cond"},
		{Zero(), "zero"},
		{One(), "one"},
	}
	for _, c := range cases {
		if got := c.ref.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Kind: NOR, Dst: Temp(0), A: Reg(1, 2), B: Reg(3, 4)}, "nor t0, r1.2, r3.4"},
		{Op{Kind: SET1, Dst: Reg(0, 0)}, "set1 r0.0"},
		{Op{Kind: NOT, Dst: Temp(1), A: Temp(2)}, "not t1, t2"},
		{Op{Kind: MAJ, Dst: Temp(0), A: Reg(0, 0), B: Reg(1, 0), C: Zero()}, "maj t0, r0.0, r1.0, zero"},
		{Op{Kind: FADD, Dst: Temp(0), Dst2: Temp(1), A: Reg(0, 0), B: Reg(1, 0), C: Temp(2)}, "fadd t0/t1, r0.0, r1.0, t2"},
		{Op{Kind: CONDWR, A: Temp(3)}, "condwr t3"},
		{Op{Kind: MASKRD, Dst: Reg(2, 0)}, "maskrd r2.0"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("Op.String() = %q, want %q", got, c.want)
		}
	}
}

func TestCapabilitySet(t *testing.T) {
	s := NewCapabilitySet(NOR)
	// Universal kinds are always present.
	for _, k := range []Kind{SET0, SET1, COPY, CONDWR, MASKRD, NOR} {
		if !s.Has(k) {
			t.Errorf("capability %s missing", k)
		}
	}
	for _, k := range []Kind{AND, OR, XOR, MAJ, FADD, MUX, NOT} {
		if s.Has(k) {
			t.Errorf("capability %s unexpectedly present", k)
		}
	}
	kinds := s.Kinds()
	if len(kinds) != 6 {
		t.Errorf("Kinds() = %v, want 6 entries", kinds)
	}
}
