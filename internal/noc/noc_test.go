package noc

import "testing"

func TestMeshSide(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 4: 2, 5: 3, 9: 3, 10: 4, 497: 23}
	for mpus, want := range cases {
		m, err := New(Default(mpus))
		if err != nil {
			t.Fatal(err)
		}
		if m.Side() != want {
			t.Errorf("Side(%d MPUs) = %d, want %d", mpus, m.Side(), want)
		}
	}
}

func TestHops(t *testing.T) {
	m, err := New(Default(9)) // 3×3
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ src, dst, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},
		{0, 4, 2},
		{0, 8, 4},
		{2, 6, 4},
	}
	for _, c := range cases {
		got, err := m.Hops(c.src, c.dst)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
	if _, err := m.Hops(0, 9); err == nil {
		t.Error("out-of-range MPU accepted")
	}
	if _, err := m.Hops(-1, 0); err == nil {
		t.Error("negative MPU accepted")
	}
}

func TestTransferCost(t *testing.T) {
	cfg := Default(9)
	m, _ := New(cfg)
	cyc, pj, err := m.TransferCost(0, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	wantCyc := cfg.SetupCycles + 4*cfg.HopCycles + 64
	if cyc != wantCyc {
		t.Errorf("cycles = %d, want %d", cyc, wantCyc)
	}
	wantPJ := float64(64*8) * 4 * cfg.EnergyPJByte
	if pj != wantPJ {
		t.Errorf("energy = %v, want %v", pj, wantPJ)
	}
	// Local transfers consume no hop energy.
	_, pj, err = m.TransferCost(3, 3, 64)
	if err != nil || pj != 0 {
		t.Errorf("local transfer energy = %v, err %v", pj, err)
	}
	if _, _, err := m.TransferCost(0, 1, -4); err == nil {
		t.Error("negative word count accepted")
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{MPUs: 0}); err == nil {
		t.Error("zero MPUs accepted")
	}
	if _, err := New(Config{MPUs: 4, HopCycles: 0, WordsPerFlit: 1}); err == nil {
		t.Error("zero hop cycles accepted")
	}
}

func TestMoreHopsCostMore(t *testing.T) {
	m, _ := New(Default(16))
	near, _, _ := m.TransferCost(0, 1, 128)
	far, _, _ := m.TransferCost(0, 15, 128)
	if far <= near {
		t.Errorf("far transfer (%d) not costlier than near (%d)", far, near)
	}
}
