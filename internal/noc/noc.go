// Package noc models the on-chip network connecting MPUs: a 2-D mesh with
// per-hop latency and per-byte-hop energy, used by the inter-MPU controller
// for SEND/RECV message passing (§VI-D). The paper integrates MASTODON with
// SST's network models; this package provides the equivalent cost model.
package noc

import "fmt"

// Config describes the mesh.
type Config struct {
	MPUs         int
	HopCycles    int     // router + link traversal per hop
	SetupCycles  int     // path setup (circuit-switched datapaths)
	WordsPerFlit int     // 64-bit words moved per cycle once streaming
	EnergyPJByte float64 // per byte per hop

	// DTCEnergyPJByte is the intra-MPU movement energy across the RFH
	// interconnect — the cost of a local MOVE ensemble's pair copies, which
	// never leave the MPU and so pay no per-hop router energy. The machine
	// charges it through Mesh.DTCEnergyPJ, making this field the single
	// source of truth for on-chip DTC transfer energy.
	DTCEnergyPJByte float64
}

// Default returns the mesh configuration used in the evaluation: a mesh
// sized for n MPUs with SST-like router costs.
func Default(n int) Config {
	return Config{
		MPUs:            n,
		HopCycles:       3,
		SetupCycles:     12,
		WordsPerFlit:    1,
		EnergyPJByte:    1.1,
		DTCEnergyPJByte: 0.2,
	}
}

// Mesh computes distances and transfer costs over the MPU grid.
type Mesh struct {
	cfg  Config
	side int
}

// New builds a mesh for the configuration.
func New(cfg Config) (*Mesh, error) {
	if cfg.MPUs <= 0 {
		return nil, fmt.Errorf("noc: MPU count %d must be positive", cfg.MPUs)
	}
	if cfg.HopCycles <= 0 || cfg.WordsPerFlit <= 0 {
		return nil, fmt.Errorf("noc: non-positive cost parameters")
	}
	if cfg.DTCEnergyPJByte < 0 {
		return nil, fmt.Errorf("noc: negative DTC energy %g pJ/byte", cfg.DTCEnergyPJByte)
	}
	side := 1
	for side*side < cfg.MPUs {
		side++
	}
	return &Mesh{cfg: cfg, side: side}, nil
}

// Side returns the mesh edge length.
func (m *Mesh) Side() int { return m.side }

// Hops returns the Manhattan distance between two MPUs (X-Y routing).
func (m *Mesh) Hops(src, dst int) (int, error) {
	if src < 0 || src >= m.cfg.MPUs || dst < 0 || dst >= m.cfg.MPUs {
		return 0, fmt.Errorf("noc: MPU id out of range (src=%d dst=%d, have %d)", src, dst, m.cfg.MPUs)
	}
	sx, sy := src%m.side, src/m.side
	dx, dy := dst%m.side, dst/m.side
	h := abs(sx-dx) + abs(sy-dy)
	return h, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// DTCEnergyPJ returns the energy to move the given byte count across one
// MPU's RFH interconnect (a local DTC transfer, §VI-D): bytes times the
// configured per-byte cost. Local movement is point-to-point inside the MPU,
// so no hop count applies.
func (m *Mesh) DTCEnergyPJ(bytes int) float64 {
	return float64(bytes) * m.cfg.DTCEnergyPJByte
}

// TransferCost returns the cycle count and energy (pJ) to move words 64-bit
// words from src to dst: path setup, per-hop latency, then streaming at
// WordsPerFlit per cycle.
func (m *Mesh) TransferCost(src, dst, words int) (cycles int, energyPJ float64, err error) {
	hops, err := m.Hops(src, dst)
	if err != nil {
		return 0, 0, err
	}
	if words < 0 {
		return 0, 0, fmt.Errorf("noc: negative word count %d", words)
	}
	if src == dst {
		// Local loopback through the DTC data buffer.
		return m.cfg.SetupCycles + words/m.cfg.WordsPerFlit, 0, nil
	}
	cycles = m.cfg.SetupCycles + hops*m.cfg.HopCycles + words/m.cfg.WordsPerFlit
	energyPJ = float64(words*8) * float64(hops) * m.cfg.EnergyPJByte
	return cycles, energyPJ, nil
}
