package apps

import (
	"fmt"
	"math/rand"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/ezpim"
	"mpu/internal/isa"
	"mpu/internal/machine"
)

// BlackScholes prices European call options in Q16 fixed point, entirely in
// PUM (§VIII-D): per-lane ln/sqrt/exp software subroutines feed the logistic
// CDF, exactly the pattern for which the paper reports MPU slowdowns against
// GPU hardware transcendentals. The option batch is split across two MPUs
// (Table IV); MPU1 gathers its results back to MPU0.
//
// Register map (per lane): r0=S, r1=K, r2=σ (all Q16, S ≥ K so ln(S/K) ≥ 0),
// broadcast: r3=T, r4=rT, r5=e^(−rT); result: r6=price (Q16).

const (
	bsS, bsK, bsSigma = 0, 1, 2
	bsT, bsRT, bsDisc = 3, 4, 5
	bsPrice           = 6
	bsScratch         = 10 // r10.. free
)

func emitBlackScholes(b *ezpim.Builder) {
	const (
		z, lnSK, sig2T, c, denom, d1, d2, n1, n2, q, t = 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20
		s                                              = 24 // deep scratch for subroutine emitters
	)
	b.Const(q, Q)
	// z = S·Q/K − Q
	b.Mul(bsS, q, z)
	b.Div(z, bsK, z)
	b.Sub(z, q, z)
	emitLn1pFx(b, z, lnSK, s)
	// σ²T
	b.Mul(bsSigma, bsSigma, sig2T)
	b.Div(sig2T, q, sig2T)
	b.Mul(sig2T, bsT, sig2T)
	b.Div(sig2T, q, sig2T)
	// c = rT + σ²T/2
	b.Const(t, 2)
	b.Div(sig2T, t, c)
	b.Add(bsRT, c, c)
	// denom = σ√T = sqrtFx(σ²T)
	emitSqrtFx(b, sig2T, denom, s)
	// d1 = (lnSK + c)·Q/denom; d2 = d1 − denom (clamped at 0)
	b.Add(lnSK, c, d1)
	b.Mul(d1, q, d1)
	b.Div(d1, denom, d1)
	b.Init0(t)
	b.Mov(t, d2)
	b.If(ezpim.Gt(d1, denom), func() {
		b.Sub(d1, denom, d2)
	}, nil)
	// CDFs and price = S·N1/Q − K·disc·N2/Q²
	emitLogisticCDF(b, d1, n1, s)
	emitLogisticCDF(b, d2, n2, s)
	b.Mul(bsS, n1, bsPrice)
	b.Div(bsPrice, q, bsPrice)
	b.Mul(bsK, bsDisc, t)
	b.Div(t, q, t)
	b.Mul(t, n2, t)
	b.Div(t, q, t)
	// price could round below the discounted strike leg; clamp at 0.
	b.If(ezpim.Gt(bsPrice, t), func() {
		b.Sub(bsPrice, t, bsPrice)
	}, func() {
		b.Init0(bsPrice)
	})
}

// refBlackScholes mirrors emitBlackScholes lane-exactly.
func refBlackScholes(S, K, sigma, T, rT, disc uint64) uint64 {
	q := uint64(Q)
	z := S*q/K - q
	lnSK := refLn1pFx(z)
	sig2T := sigma * sigma / q * T / q
	c := sig2T/2 + rT
	denom := refSqrtFx(sig2T)
	d1 := (lnSK + c) * q / denom
	var d2 uint64
	if int64(d1) > int64(denom) {
		d2 = d1 - denom
	}
	n1 := refLogisticCDF(d1)
	n2 := refLogisticCDF(d2)
	lhs := S * n1 / q
	rhs := K * disc / q * n2 / q
	if int64(lhs) > int64(rhs) {
		return lhs - rhs
	}
	return 0
}

// BlackScholesConfig sizes the run.
type BlackScholesConfig struct {
	Spec    *backends.Spec
	Mode    machine.Mode
	Options int // per MPU half; lanes-rounded
	Seed    int64
	Check   bool

	// NoTrace forwards to machine.Config: interpret every scheduling round.
	NoTrace bool

	// NoJIT forwards to machine.Config: trace replay stays step-interpreted.
	NoJIT bool

	// MachineWorkers forwards to machine.Config.Workers: scheduler
	// goroutines executing the two MPUs concurrently between rendezvous
	// (0 = one per CPU, 1 = sequential; statistics are identical either
	// way).
	MachineWorkers int
}

// bsLayout returns the VRF count and addresses for an option batch, or an
// error when the batch exceeds one MPU's capacity.
func bsLayout(cfg BlackScholesConfig) (int, []controlpath.VRFAddr, error) {
	spec := cfg.Spec
	lanes := spec.Lanes
	options := cfg.Options
	if options <= 0 {
		options = lanes
	}
	vrfs := (options + lanes - 1) / lanes
	if vrfs > spec.VRFsPerMPU() {
		return 0, nil, fmt.Errorf("apps: option batch needs %d VRFs per MPU, have %d", vrfs, spec.VRFsPerMPU())
	}
	addrs := make([]controlpath.VRFAddr, vrfs)
	for v := range addrs {
		addrs[v] = controlpath.VRFAddr{RFH: uint8(v % spec.RFHsPerMPU), VRF: uint8(v / spec.RFHsPerMPU)}
	}
	return vrfs, addrs, nil
}

// buildBlackScholesBuilder constructs MPU0's (worker=false) or MPU1's
// (worker=true) builder.
func buildBlackScholesBuilder(spec *backends.Spec, vrfs int, addrs []controlpath.VRFAddr, worker bool) *ezpim.Builder {
	b := ezpim.NewBuilder()
	b.Ensemble(addrs, func() { emitBlackScholes(b) })
	// Gather over every RFH pair at once: one MEMCPY per distinct VRF
	// index moves that register for all pairs in the target map.
	var pairs []controlpath.RFHPair
	for r := 0; r < spec.RFHsPerMPU; r++ {
		pairs = append(pairs, controlpath.RFHPair{Src: uint8(r), Dst: uint8(r)})
	}
	maxVRFID := (vrfs - 1) / spec.RFHsPerMPU
	if worker {
		// Send prices back to MPU0's staging register r7.
		b.Send(0, pairs, func(t *ezpim.Transfer) {
			for id := 0; id <= maxVRFID; id++ {
				t.Copy(id, bsPrice, id, 7)
			}
		})
	} else {
		b.Recv(1)
	}
	return b
}

// BuildBlackScholesPrograms assembles the two MPU binaries (MPU0 first)
// without running them.
func BuildBlackScholesPrograms(cfg BlackScholesConfig) ([]isa.Program, error) {
	vrfs, addrs, err := bsLayout(cfg)
	if err != nil {
		return nil, err
	}
	return ezpim.ProgramSet([]*ezpim.Builder{
		buildBlackScholesBuilder(cfg.Spec, vrfs, addrs, false),
		buildBlackScholesBuilder(cfg.Spec, vrfs, addrs, true),
	})
}

// RunBlackScholes executes the application and verifies it.
func RunBlackScholes(cfg BlackScholesConfig) (*Result, error) {
	spec := cfg.Spec
	lanes := spec.Lanes
	vrfs, addrs, err := bsLayout(cfg)
	if err != nil {
		return nil, err
	}

	b0 := buildBlackScholesBuilder(spec, vrfs, addrs, false)
	b1 := buildBlackScholesBuilder(spec, vrfs, addrs, true)
	p0, err := b0.Program()
	if err != nil {
		return nil, err
	}
	p1, err := b1.Program()
	if err != nil {
		return nil, err
	}

	m, err := machine.New(machine.Config{Spec: spec, Mode: cfg.Mode, NumMPUs: 2,
		NoTrace: cfg.NoTrace, NoJIT: cfg.NoJIT, Workers: cfg.MachineWorkers})
	if err != nil {
		return nil, err
	}
	if err := m.LoadProgram(0, p0); err != nil {
		return nil, err
	}
	if err := m.LoadProgram(1, p1); err != nil {
		return nil, err
	}

	// Generate and load inputs: S in [K, 1.4K], K around 1.0, σ in
	// [0.1, 0.4], T = 1, r = 5%.
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := vrfs * lanes
	type laneIn struct{ S, K, sigma uint64 }
	ins := make([][]laneIn, 2)
	const (
		tQ    = Q
		rTQ   = Q / 20 // rT = 0.05
		discQ = 62347  // e^(-0.05) in Q16
	)
	for mpu := 0; mpu < 2; mpu++ {
		ins[mpu] = make([]laneIn, n)
		for i := range ins[mpu] {
			K := uint64(Q/2 + rng.Intn(Q))
			S := K + uint64(rng.Intn(int(K)/3+1))
			sigma := uint64(Q/10 + rng.Intn(3*Q/10))
			ins[mpu][i] = laneIn{S: S, K: K, sigma: sigma}
		}
		for v := 0; v < vrfs; v++ {
			sv := make([]uint64, lanes)
			kv := make([]uint64, lanes)
			gv := make([]uint64, lanes)
			for l := 0; l < lanes; l++ {
				in := ins[mpu][v*lanes+l]
				sv[l], kv[l], gv[l] = in.S, in.K, in.sigma
			}
			for reg, vals := range map[int][]uint64{
				bsS: sv, bsK: kv, bsSigma: gv,
				bsT:    broadcastLanes(lanes, tQ),
				bsRT:   broadcastLanes(lanes, rTQ),
				bsDisc: broadcastLanes(lanes, discQ),
			} {
				if err := m.WriteVector(mpu, addrs[v], reg, vals); err != nil {
					return nil, err
				}
			}
		}
	}

	st, err := m.Run()
	if err != nil {
		return nil, err
	}

	checked := 0
	if cfg.Check {
		for mpu := 0; mpu < 2; mpu++ {
			outReg := bsPrice
			readMPU := mpu
			if mpu == 1 {
				// MPU1's prices were gathered into MPU0 r7 (RFH0 VRFs).
				outReg = 7
				readMPU = 0
			}
			for v := 0; v < vrfs; v++ {
				got, err := m.ReadVector(readMPU, addrs[v], outReg)
				if err != nil {
					return nil, err
				}
				for l := 0; l < lanes; l++ {
					in := ins[mpu][v*lanes+l]
					want := refBlackScholes(in.S, in.K, in.sigma, tQ, rTQ, discQ)
					if got[l] != want {
						return nil, fmt.Errorf("apps: blackscholes mpu%d lane %d: got %d, want %d", mpu, v*lanes+l, got[l], want)
					}
					checked++
				}
			}
		}
	}

	return &Result{
		Name:        "BlackScholes",
		Stats:       st,
		Seconds:     st.TimeSeconds(spec.ClockGHz),
		Joules:      st.TotalEnergyPJ() * 1e-12,
		Checked:     checked,
		MPUs:        2,
		EzpimLines:  b0.SourceLines() + b1.SourceLines(),
		AsmLines:    b0.EmittedInstructions() + b1.EmittedInstructions(),
		Steps:       []string{"sqrt", "exp", "norm"},
		Collectives: []string{"CDF gather"},
	}, nil
}

func broadcastLanes(n int, v uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
