package apps

import (
	"fmt"
	"math/rand"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/ezpim"
	"mpu/internal/isa"
	"mpu/internal/machine"
)

// LLMEncode runs a transformer-encoder block end to end in PUM (§VIII-D):
// per-token feed-forward matmuls with ReLU, a residual connection,
// layer normalization, and a softmax head — in Q16 fixed point with tokens
// mapped to vector lanes and feature dimensions to registers. Work is
// data-parallel across a coordinator and workers: the coordinator BROADCASTS
// the weight matrices, SCATTERS token batches, and GATHERS results
// (the Table IV collective patterns; the paper's 130-MPU instance is
// reproduced here at configurable scale).
//
// Model: d = 4 features.
//
//	h = ReLU(W1·x)      (matmul + relu)
//	y = W2·h + x        (matmul + residual)
//	z = LayerNorm(y)    (mean/variance over features, rsqrt)
//	p = Softmax(z)      (max-shifted fixed-point exp + normalize)

const llmD = 4 // feature dimensions

// Register map.
const (
	llmX  = 0  // r0..r3: input features (Q16)
	llmW1 = 4  // r4..r19: W1 row-major (small integers)
	llmW2 = 20 // r20..r35: W2
	llmH  = 36 // r36..r39: hidden
	llmY  = 40 // r40..r43: pre-norm
	llmP  = 0  // outputs overwrite r0..r3 (probabilities, Q16)
	llmS  = 44 // r44..: scratch
)

func emitLLMBlock(b *ezpim.Builder) {
	const (
		q, t, mean, varr, denom = llmS, llmS + 1, llmS + 2, llmS + 3, llmS + 4
		s                       = llmS + 5 // deep scratch (r49..r53)
	)
	b.Const(q, Q)
	// h = ReLU(W1·x)
	for i := 0; i < llmD; i++ {
		h := llmH + i
		b.Mul(llmW1+i*llmD, llmX, h)
		for j := 1; j < llmD; j++ {
			b.Mac(llmW1+i*llmD+j, llmX+j, h)
		}
		b.Relu(h, h)
	}
	// y = W2·h + x
	for i := 0; i < llmD; i++ {
		y := llmY + i
		b.Mul(llmW2+i*llmD, llmH, y)
		for j := 1; j < llmD; j++ {
			b.Mac(llmW2+i*llmD+j, llmH+j, y)
		}
		b.Add(y, llmX+i, y)
	}
	// LayerNorm over the llmD feature registers.
	b.Add(llmY, llmY+1, mean)
	b.Add(mean, llmY+2, mean)
	b.Add(mean, llmY+3, mean)
	b.Const(t, llmD)
	b.Div(mean, t, mean)
	b.Init0(varr)
	for i := 0; i < llmD; i++ {
		emitAbsDiff(b, llmY+i, mean, s, s+1)
		b.Mac(s, s, varr)
	}
	b.Const(t, llmD)
	b.Div(varr, t, varr)
	b.Inc(varr, varr) // +1 avoids a zero denominator
	emitISqrt(b, varr, denom, s)
	b.Inc(denom, denom)
	// z_i = sign(y_i − mean) · |y_i − mean|·Q / denom, written back to llmY.
	for i := 0; i < llmD; i++ {
		y := llmY + i
		emitAbsDiff(b, y, mean, s, s+1)
		b.Mul(s, q, s)
		b.Div(s, denom, s)
		b.Init0(s + 1)
		b.If(ezpim.Lt(y, mean), func() {
			b.Sub(s+1, s, s) // negate
		}, nil)
		b.Mov(s, y)
	}
	// Softmax with max-shift: p_i = e^{z_i − m} normalized, computed as
	// Q²/expFx(m − z_i) over non-negative arguments.
	m := llmS + 10 // r54
	b.Max(llmY, llmY+1, m)
	b.Max(m, llmY+2, m)
	b.Max(m, llmY+3, m)
	// e_i into llmW1..llmW1+3 (weights are dead now).
	for i := 0; i < llmD; i++ {
		e := llmW1 + i
		b.Sub(m, llmY+i, s) // m − z_i ≥ 0
		emitExpFx(b, s, e, s+1)
		b.Mul(q, q, t)
		b.Div(t, e, e) // Q²/expFx
	}
	sum := llmS + 1
	b.Add(llmW1, llmW1+1, sum)
	b.Add(sum, llmW1+2, sum)
	b.Add(sum, llmW1+3, sum)
	for i := 0; i < llmD; i++ {
		b.Mul(llmW1+i, q, s)
		b.Div(s, sum, s)
		b.Mov(s, llmP+i)
	}
}

// refLLMBlock mirrors emitLLMBlock for one token.
func refLLMBlock(x [llmD]uint64, w1, w2 [llmD][llmD]uint64) [llmD]uint64 {
	q := uint64(Q)
	var h, y [llmD]uint64
	for i := 0; i < llmD; i++ {
		var acc uint64
		for j := 0; j < llmD; j++ {
			acc += w1[i][j] * x[j]
		}
		if int64(acc) < 0 {
			acc = 0
		}
		h[i] = acc
	}
	for i := 0; i < llmD; i++ {
		var acc uint64
		for j := 0; j < llmD; j++ {
			acc += w2[i][j] * h[j]
		}
		y[i] = acc + x[i]
	}
	mean := (y[0] + y[1] + y[2] + y[3]) / llmD
	var varr uint64
	for i := 0; i < llmD; i++ {
		d := refAbsDiff(y[i], mean)
		varr += d * d
	}
	varr = varr/llmD + 1
	denom := refISqrt(varr) + 1
	var z [llmD]uint64
	for i := 0; i < llmD; i++ {
		v := refAbsDiff(y[i], mean) * q / denom
		if int64(y[i]) < int64(mean) {
			v = -v
		}
		z[i] = v
	}
	m := z[0]
	for i := 1; i < llmD; i++ {
		if int64(z[i]) > int64(m) {
			m = z[i]
		}
	}
	var e [llmD]uint64
	var sum uint64
	for i := 0; i < llmD; i++ {
		e[i] = q * q / refExpFx(m-z[i])
		sum += e[i]
	}
	var p [llmD]uint64
	for i := 0; i < llmD; i++ {
		p[i] = e[i] * q / sum
	}
	return p
}

// LLMEncodeConfig sizes the run.
type LLMEncodeConfig struct {
	Spec    *backends.Spec
	Mode    machine.Mode
	Workers int // worker MPUs beside the coordinator; 0 means 3
	VRFs    int // token VRFs per participant; 0 means 2
	Seed    int64
	Check   bool

	// Groups replicates the coordinator+workers pipeline: group g occupies
	// MPUs g·(Workers+1) … g·(Workers+1)+Workers and runs an independent
	// batch set. 0 means 1 (the paper's single-pipeline instance). The
	// staging-capacity bound (Workers < VRFsPerRFH) is per coordinator, so
	// groups are how the pipeline scales past it — the MPU-count scaling
	// sweep uses them to reach the full 512-MPU chip.
	Groups int

	// NoTrace forwards to machine.Config: interpret every scheduling round.
	NoTrace bool

	// NoJIT forwards to machine.Config: trace replay stays step-interpreted.
	NoJIT bool

	// MachineWorkers forwards to machine.Config.Workers: scheduler
	// goroutines executing participant MPUs concurrently between rendezvous
	// (0 = one per CPU, 1 = sequential; statistics are identical either
	// way).
	MachineWorkers int
}

// normalize applies the config defaults and checks chip capacity.
func (cfg *LLMEncodeConfig) normalize() error {
	if cfg.Workers == 0 {
		cfg.Workers = 3
	}
	if cfg.VRFs == 0 {
		cfg.VRFs = 2
	}
	if cfg.Groups == 0 {
		cfg.Groups = 1
	}
	if cfg.Groups < 0 {
		return fmt.Errorf("apps: negative group count %d", cfg.Groups)
	}
	spec := cfg.Spec
	if mpus := cfg.Groups * (cfg.Workers + 1); mpus > spec.MPUs {
		return fmt.Errorf("apps: %d MPUs exceed chip capacity %d", mpus, spec.MPUs)
	}
	if cfg.VRFs > spec.RFHsPerMPU {
		return fmt.Errorf("apps: token VRFs %d exceed the %d RF holders", cfg.VRFs, spec.RFHsPerMPU)
	}
	if cfg.Workers >= spec.VRFsPerRFH {
		return fmt.Errorf("apps: %d workers exceed staging capacity", cfg.Workers)
	}
	return nil
}

// llmLayout returns the compute-VRF addresses and the identity RFH pair map
// the collectives use.
func llmLayout(cfg LLMEncodeConfig) ([]controlpath.VRFAddr, []controlpath.RFHPair) {
	computeAddrs := make([]controlpath.VRFAddr, cfg.VRFs)
	for v := range computeAddrs {
		computeAddrs[v] = controlpath.VRFAddr{RFH: uint8(v), VRF: 0}
	}
	var pairs []controlpath.RFHPair
	for v := 0; v < cfg.VRFs; v++ {
		pairs = append(pairs, controlpath.RFHPair{Src: uint8(v), Dst: uint8(v)})
	}
	return computeAddrs, pairs
}

// buildLLMEncodeBuilders constructs one builder per participant MPU for a
// normalized config, indexed by MPU id: group g's coordinator sits at
// g·(Workers+1), its workers right behind it. Groups only ever message
// within themselves, and every coordinator has the lowest id of its group,
// so the lower-ID-sends-first rule holds chip-wide.
func buildLLMEncodeBuilders(cfg LLMEncodeConfig) []*ezpim.Builder {
	computeAddrs, pairs := llmLayout(cfg)
	per := cfg.Workers + 1
	builders := make([]*ezpim.Builder, cfg.Groups*per)
	for g := 0; g < cfg.Groups; g++ {
		base := g * per

		// Coordinator program: broadcast weights + scatter batches, compute
		// its own batch (batch 0), gather results.
		cb := ezpim.NewBuilder()
		for w := 1; w <= cfg.Workers; w++ {
			wID := w
			cb.Send(base+w, pairs, func(t *ezpim.Transfer) {
				for r := 0; r < 2*llmD*llmD; r++ {
					t.Copy(0, llmW1+r, 0, llmW1+r) // broadcast W1/W2
				}
				for f := 0; f < llmD; f++ {
					t.Copy(wID, llmX+f, 0, llmX+f) // scatter batch w
				}
			})
		}
		cb.Ensemble(computeAddrs, func() { emitLLMBlock(cb) })
		for w := 1; w <= cfg.Workers; w++ {
			cb.Recv(base + w)
		}
		builders[base] = cb

		// Worker programs: receive weights+batch, compute, send results back
		// into the coordinator's staging VRFs.
		for w := 1; w <= cfg.Workers; w++ {
			b := ezpim.NewBuilder()
			b.Recv(base)
			b.Ensemble(computeAddrs, func() { emitLLMBlock(b) })
			wID := w
			b.Send(base, pairs, func(t *ezpim.Transfer) {
				for f := 0; f < llmD; f++ {
					t.Copy(0, llmP+f, wID, llmP+f) // gather
				}
			})
			builders[base+w] = b
		}
	}
	return builders
}

// BuildLLMEncodePrograms assembles the participant binaries for cfg without
// running them — the static-verification and inspection entry point. Index i
// is MPU i's program; each group's coordinator precedes its workers.
func BuildLLMEncodePrograms(cfg LLMEncodeConfig) ([]isa.Program, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return ezpim.ProgramSet(buildLLMEncodeBuilders(cfg))
}

// RunLLMEncode executes the encoder block across coordinator+worker groups.
//
// Layout: participant compute VRFs sit at (rfh v, vrf 0) for v < VRFs, so a
// single MEMCPY under the pair map {(v,v)} addresses all of them at once.
// Each group's coordinator stages its batch w's tokens at (rfh v, vrf w).
func RunLLMEncode(cfg LLMEncodeConfig) (*Result, error) {
	spec := cfg.Spec
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	per := cfg.Workers + 1 // participants per group
	mpus := cfg.Groups * per
	lanes := spec.Lanes

	computeAddrs, _ := llmLayout(cfg)
	stageAddr := func(batch, v int) controlpath.VRFAddr {
		return controlpath.VRFAddr{RFH: uint8(v), VRF: uint8(batch)}
	}
	builders := buildLLMEncodeBuilders(cfg)

	m, err := machine.New(machine.Config{Spec: spec, Mode: cfg.Mode, NumMPUs: mpus,
		NoTrace: cfg.NoTrace, NoJIT: cfg.NoJIT, Workers: cfg.MachineWorkers})
	if err != nil {
		return nil, err
	}
	for id, b := range builders {
		p, err := b.Program()
		if err != nil {
			return nil, err
		}
		if err := m.LoadProgram(id, p); err != nil {
			return nil, err
		}
	}

	// Data: weights (small integers, shared by every group)
	// broadcast-resident on each coordinator's compute VRFs; token features
	// per group and batch.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var w1, w2 [llmD][llmD]uint64
	for i := 0; i < llmD; i++ {
		for j := 0; j < llmD; j++ {
			w1[i][j] = uint64(rng.Intn(4))
			w2[i][j] = uint64(rng.Intn(4))
		}
	}
	nTok := cfg.VRFs * lanes
	xs := make([][][][llmD]uint64, cfg.Groups) // [group][batch][token][feature]
	for g := range xs {
		xs[g] = make([][][llmD]uint64, per)
		for batch := 0; batch < per; batch++ {
			xs[g][batch] = make([][llmD]uint64, nTok)
			for tok := range xs[g][batch] {
				for f := 0; f < llmD; f++ {
					xs[g][batch][tok][f] = uint64(rng.Intn(2 * Q))
				}
			}
		}
	}
	for g := 0; g < cfg.Groups; g++ {
		coord := g * per
		for v := 0; v < cfg.VRFs; v++ {
			a := computeAddrs[v]
			for i := 0; i < llmD; i++ {
				for j := 0; j < llmD; j++ {
					if err := m.WriteVector(coord, a, llmW1+i*llmD+j, broadcastLanes(lanes, w1[i][j])); err != nil {
						return nil, err
					}
					if err := m.WriteVector(coord, a, llmW2+i*llmD+j, broadcastLanes(lanes, w2[i][j])); err != nil {
						return nil, err
					}
				}
			}
		}
		for batch := 0; batch < per; batch++ {
			for v := 0; v < cfg.VRFs; v++ {
				a := computeAddrs[v]
				if batch > 0 {
					a = stageAddr(batch, v)
				}
				for f := 0; f < llmD; f++ {
					vals := make([]uint64, lanes)
					for l := 0; l < lanes; l++ {
						vals[l] = xs[g][batch][v*lanes+l][f]
					}
					if err := m.WriteVector(coord, a, llmX+f, vals); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	st, err := m.Run()
	if err != nil {
		return nil, err
	}

	checked := 0
	if cfg.Check {
		for g := 0; g < cfg.Groups; g++ {
			coord := g * per
			for batch := 0; batch < per; batch++ {
				for v := 0; v < cfg.VRFs; v++ {
					// Batch 0 results sit in the coordinator's compute VRFs;
					// gathered worker results in its staging VRFs.
					a := computeAddrs[v]
					if batch > 0 {
						a = stageAddr(batch, v)
					}
					var got [llmD][]uint64
					for f := 0; f < llmD; f++ {
						vals, err := m.ReadVector(coord, a, llmP+f)
						if err != nil {
							return nil, err
						}
						got[f] = vals
					}
					for l := 0; l < lanes; l++ {
						tok := v*lanes + l
						want := refLLMBlock(xs[g][batch][tok], w1, w2)
						for f := 0; f < llmD; f++ {
							if got[f][l] != want[f] {
								return nil, fmt.Errorf("apps: llmencode group %d batch %d token %d feature %d: got %d, want %d",
									g, batch, tok, f, got[f][l], want[f])
							}
						}
						checked++
					}
				}
			}
		}
	}

	ez, asm := 0, 0
	for _, b := range builders {
		ez += b.SourceLines()
		asm += b.EmittedInstructions()
	}
	return &Result{
		Name:        "LLMEncode",
		Stats:       st,
		Seconds:     st.TimeSeconds(spec.ClockGHz),
		Joules:      st.TotalEnergyPJ() * 1e-12,
		Checked:     checked,
		MPUs:        mpus,
		EzpimLines:  ez,
		AsmLines:    asm,
		Steps:       []string{"matmul", "softmax", "layernorm", "relu"},
		Collectives: []string{"broadcast", "scatter", "gather"},
	}, nil
}
