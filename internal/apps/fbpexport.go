package apps

import (
	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/ezpim"
)

// This file exports the hand-wired application building blocks to the FBP
// compiler (internal/fbp). The pipeline components EDStep, LLMCoord, and
// LLMWorker replicate buildEditDistanceBuilders/buildLLMEncodeBuilders call
// for call; routing both through the same emit functions, register maps, and
// VRF layouts is what makes the parity tests byte-identical rather than
// merely equivalent.

// Edit-distance register map (r0..r3; r4.. scratch inside EmitEditStep).
const (
	EDChunkReg = edChunk
	EDQueryReg = edQuery
	EDBestReg  = edBest
	EDStageReg = edStage
)

// LLM-encode register map. LLMPReg aliases LLMXReg: the softmax output
// overwrites the input features.
const (
	LLMFeatures = llmD
	LLMXReg     = llmX
	LLMW1Reg    = llmW1
	LLMPReg     = llmP
)

// EmitEditStep emits one systolic scoring step: the visiting query is scored
// against the resident chunk and folded into the running minimum.
func EmitEditStep(b *ezpim.Builder) { emitEditStep(b) }

// EmitLLMBlock emits the full transformer-encoder block (matmul+ReLU,
// residual, LayerNorm, softmax) over the LLM register map.
func EmitLLMBlock(b *ezpim.Builder) { emitLLMBlock(b) }

// EditDistanceLayout returns the per-MPU VRF addresses and identity RFH pair
// map the ring uses for vrfs resident-read VRFs on spec.
func EditDistanceLayout(spec *backends.Spec, vrfs int) ([]controlpath.VRFAddr, []controlpath.RFHPair) {
	return edLayout(EditDistanceConfig{Spec: spec, VRFs: vrfs})
}

// LLMEncodeLayout returns the compute-VRF addresses and identity pair map
// for vrfs token VRFs per participant.
func LLMEncodeLayout(vrfs int) ([]controlpath.VRFAddr, []controlpath.RFHPair) {
	return llmLayout(LLMEncodeConfig{VRFs: vrfs})
}
