package apps

import "mpu/internal/machine"

// Result summarizes one end-to-end application run.
type Result struct {
	Name    string
	Stats   *machine.Stats
	Seconds float64
	Joules  float64
	Checked int // lanes verified against the Go reference

	MPUs       int
	EzpimLines int // high-level statements (Table IV "ezpim" column)
	AsmLines   int // emitted MPU instructions (Table IV "Baseline" proxy)

	Steps       []string // compute steps, as listed in Table IV
	Collectives []string // collective-communication patterns
}

// Breakdown returns the Fig. 15 execution-time split: MPU computation,
// on-chip inter-MPU communication, and off-chip CPU communication, as
// fractions of their sum.
func (r *Result) Breakdown() (compute, interMPU, offchip float64) {
	c := float64(r.Stats.ComputeCycles)
	n := float64(r.Stats.InterMPUCycles + r.Stats.TransferCycles)
	o := float64(r.Stats.OffloadCycles)
	total := c + n + o
	if total == 0 {
		return 0, 0, 0
	}
	return c / total, n / total, o / total
}
