package apps

import (
	"testing"

	"mpu/internal/backends"
	"mpu/internal/machine"
)

func TestFixedPointHelpersAgainstRefs(t *testing.T) {
	// The emit/ref pairing is checked end to end by the app tests; here we
	// sanity-check the references themselves.
	if refExpFx(0) != Q {
		t.Errorf("expFx(0) = %d, want %d", refExpFx(0), Q)
	}
	if got := refExpFx(Q); got < 2*Q || got > 3*Q { // e ≈ 2.67 under the cubic
		t.Errorf("expFx(1.0) = %d/%d", got, Q)
	}
	if refLn1pFx(0) != 0 {
		t.Error("ln1p(0) != 0")
	}
	if got := refLn1pFx(Q / 4); got < 14000 || got > 15000 { // ln(1.25) ≈ 0.223
		t.Errorf("ln1p(0.25) = %d/%d", got, Q)
	}
	if refISqrt(0) != 0 || refISqrt(1) != 1 || refISqrt(15) != 3 || refISqrt(16) != 4 {
		t.Error("isqrt wrong")
	}
	if got := refSqrtFx(4 * Q); got != 2*Q {
		t.Errorf("sqrtFx(4.0) = %d, want %d", got, 2*Q)
	}
	if got := refLogisticCDF(0); got < Q/2-200 || got > Q/2+200 {
		t.Errorf("N(0) = %d/%d, want ≈0.5", got, Q)
	}
	if lo, hi := refLogisticCDF(0), refLogisticCDF(Q); hi <= lo {
		t.Error("CDF not increasing")
	}
	if refAbsDiff(5, 9) != 4 || refAbsDiff(9, 5) != 4 {
		t.Error("absDiff wrong")
	}
}

func TestBlackScholesEndToEnd(t *testing.T) {
	spec := backends.RACER()
	res, err := RunBlackScholes(BlackScholesConfig{
		Spec: spec, Mode: machine.ModeMPU, Options: spec.Lanes * 2, Seed: 11, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked == 0 {
		t.Fatal("no options verified")
	}
	if res.MPUs != 2 {
		t.Fatalf("MPUs = %d, want 2 (Table IV)", res.MPUs)
	}
	if res.Stats.Sends != 1 {
		t.Fatalf("gather sends = %d, want 1", res.Stats.Sends)
	}
	if res.EzpimLines >= res.AsmLines {
		t.Fatalf("ezpim lines (%d) not below assembly (%d)", res.EzpimLines, res.AsmLines)
	}
}

func TestEditDistanceEndToEnd(t *testing.T) {
	spec := backends.RACER()
	res, err := RunEditDistance(EditDistanceConfig{
		Spec: spec, Mode: machine.ModeMPU, MPUs: 4, VRFs: 2, Seed: 13, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked != 4*2*spec.Lanes {
		t.Fatalf("checked %d lanes", res.Checked)
	}
	if res.Stats.Sends != uint64(4*4) { // one send per MPU per systolic step
		t.Fatalf("sends = %d, want 16", res.Stats.Sends)
	}
	if res.Stats.InterMPUCycles == 0 {
		t.Fatal("no inter-MPU communication recorded")
	}
}

func TestEditDistanceRingValidation(t *testing.T) {
	spec := backends.RACER()
	if _, err := RunEditDistance(EditDistanceConfig{Spec: spec, MPUs: 3}); err == nil {
		t.Error("odd ring size accepted")
	}
	if _, err := RunEditDistance(EditDistanceConfig{Spec: spec, MPUs: 9999}); err == nil {
		t.Error("oversized ring accepted")
	}
}

func TestLLMEncodeEndToEnd(t *testing.T) {
	spec := backends.RACER()
	res, err := RunLLMEncode(LLMEncodeConfig{
		Spec: spec, Mode: machine.ModeMPU, Workers: 3, VRFs: 2, Seed: 17, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MPUs != 4 {
		t.Fatalf("MPUs = %d", res.MPUs)
	}
	wantTokens := 4 * 2 * spec.Lanes
	if res.Checked != wantTokens {
		t.Fatalf("checked %d tokens, want %d", res.Checked, wantTokens)
	}
	// Broadcast+scatter to 3 workers and 3 gathers = 6 send blocks.
	if res.Stats.Sends != 6 {
		t.Fatalf("sends = %d, want 6", res.Stats.Sends)
	}
}

func TestAppsOnMIMDRAM(t *testing.T) {
	spec := backends.MIMDRAM()
	if _, err := RunBlackScholes(BlackScholesConfig{Spec: spec, Mode: machine.ModeMPU, Options: spec.Lanes, Seed: 3, Check: true}); err != nil {
		t.Fatalf("blackscholes: %v", err)
	}
	if _, err := RunEditDistance(EditDistanceConfig{Spec: spec, Mode: machine.ModeMPU, MPUs: 2, VRFs: 1, Seed: 3, Check: true}); err != nil {
		t.Fatalf("editdistance: %v", err)
	}
	if _, err := RunLLMEncode(LLMEncodeConfig{Spec: spec, Mode: machine.ModeMPU, Workers: 1, VRFs: 1, Seed: 3, Check: true}); err != nil {
		t.Fatalf("llmencode: %v", err)
	}
}

// TestBaselineAppsSlower: Baseline pays CPU coordination for every systolic
// transfer, which is the EditDistance story of Fig. 15.
func TestBaselineAppsSlower(t *testing.T) {
	spec := backends.RACER()
	mpu, err := RunEditDistance(EditDistanceConfig{Spec: spec, Mode: machine.ModeMPU, MPUs: 4, VRFs: 1, Seed: 5, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunEditDistance(EditDistanceConfig{Spec: spec, Mode: machine.ModeBaseline, MPUs: 4, VRFs: 1, Seed: 5, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Seconds <= mpu.Seconds {
		t.Fatalf("Baseline EditDistance (%.3gs) not slower than MPU (%.3gs)", base.Seconds, mpu.Seconds)
	}
	// Fig. 15: Baseline EditDistance is dominated by off-chip time.
	_, _, off := base.Breakdown()
	if off < 0.5 {
		t.Fatalf("Baseline off-chip share = %.2f, want the dominant component", off)
	}
	if _, _, offMPU := mpu.Breakdown(); offMPU != 0 {
		t.Fatalf("MPU mode shows off-chip time %.2f", offMPU)
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	spec := backends.RACER()
	res, err := RunLLMEncode(LLMEncodeConfig{Spec: spec, Mode: machine.ModeMPU, Workers: 1, VRFs: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c, n, o := res.Breakdown()
	if sum := c + n + o; sum < 0.999 || sum > 1.001 {
		t.Fatalf("breakdown sums to %v", sum)
	}
	if c <= 0 || n <= 0 {
		t.Fatalf("compute %.2f / interMPU %.2f should both be positive", c, n)
	}
}
