// Package apps implements the paper's three end-to-end applications
// (§VIII-D, Table IV): LLMEncode, BlackScholes, and EditDistance. Each runs
// entirely on simulated MPUs — multiple compute ensembles plus collective
// communication over the mesh — and is verified against a Go reference that
// mirrors the same fixed-point arithmetic.
//
// Scale note: the paper's instances use 130/2/23 MPUs on full chips; these
// reproductions run the same program structure on scaled-down instances
// (the MPU counts are configurable), which preserves the compute/
// communication patterns that drive the Fig. 14/15 comparisons.
package apps

import (
	"mpu/internal/ezpim"
)

// Q is the fixed-point scale (Q16: 16 fractional bits).
const Q = 65536

// Fixed-point helper emitters. Each emitter has a matching ref* function
// computing the identical integer arithmetic, so application outputs are
// bit-exact against the references. All helpers assume non-negative inputs
// and use scratch registers [s, s+needs).

// emitExpFx emits out = expFx(x): the Q16 cubic Taylor approximation
// Q + x + x²/2Q + x³/6Q². Clobbers s..s+2.
func emitExpFx(b *ezpim.Builder, x, out, s int) {
	c2, c6 := s, s+1
	t := s + 2
	b.Const(c2, 2*Q)
	b.Const(c6, 6*Q)
	b.Mul(x, x, t)   // x²
	b.Div(t, c2, c2) // x²/2Q   (c2 reused as result)
	b.Mul(t, x, t)   // x³  (t was x²; x³ = x²·x)
	b.Div(t, c6, t)  // x³/6Q ... then /Q again below
	b.Const(c6, Q)
	b.Div(t, c6, t) // x³/6Q²
	b.Add(x, c6, out)
	b.Add(out, c2, out)
	b.Add(out, t, out)
}

// refExpFx mirrors emitExpFx.
func refExpFx(x uint64) uint64 {
	x2 := x * x
	x3 := x2 * x
	return Q + x + x2/(2*Q) + x3/(6*Q)/Q
}

// emitLn1pFx emits out = ln(1+z) ≈ z − z²/2Q + z³/3Q² for z in [0, Q/2].
// Clobbers s..s+2.
func emitLn1pFx(b *ezpim.Builder, z, out, s int) {
	t2, t3, c := s, s+1, s+2
	b.Mul(z, z, t2) // z²
	b.Mul(t2, z, t3)
	b.Const(c, 2*Q)
	b.Div(t2, c, t2) // z²/2Q
	b.Const(c, 3*Q)
	b.Div(t3, c, t3)
	b.Const(c, Q)
	b.Div(t3, c, t3) // z³/3Q²
	b.Sub(z, t2, out)
	b.Add(out, t3, out)
}

// refLn1pFx mirrors emitLn1pFx.
func refLn1pFx(z uint64) uint64 {
	z2 := z * z
	z3 := z2 * z
	return z - z2/(2*Q) + z3/(3*Q)/Q
}

// emitISqrt emits out = floor(sqrt(x)) with the Newton loop (data-driven
// divergence per lane). Clobbers s..s+3.
func emitISqrt(b *ezpim.Builder, x, out, s int) {
	zero, two, u, t := s, s+1, s+2, s+3
	b.Init0(zero)
	b.Const(two, 2)
	b.Mov(x, out)
	b.If(ezpim.Gt(x, zero), func() {
		b.Div(x, out, t)
		b.Add(out, t, t)
		b.Div(t, two, t)
		b.Mov(t, u)
		b.While(ezpim.Lt(u, out), func() {
			b.Mov(u, out)
			b.Div(x, out, t)
			b.Add(out, t, t)
			b.Div(t, two, u)
		})
	}, func() {
		b.Init0(out)
	})
}

// refISqrt mirrors emitISqrt.
func refISqrt(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	s := x
	u := (s + x/s) / 2
	for u < s {
		s = u
		u = (s + x/s) / 2
	}
	return s
}

// emitSqrtFx emits out = sqrtFx(x) for Q16 x: floor(sqrt(x << 16)).
// Clobbers s..s+3 and x is preserved via s+3 staging? No: x preserved —
// the shift happens in a scratch register.
func emitSqrtFx(b *ezpim.Builder, x, out, s int) {
	sh := s + 4
	b.Mov(x, sh)
	for i := 0; i < 16; i++ {
		b.LShift(sh, sh)
	}
	emitISqrt(b, sh, out, s)
}

// refSqrtFx mirrors emitSqrtFx.
func refSqrtFx(x uint64) uint64 { return refISqrt(x << 16) }

// emitLogisticCDF emits out = N(d) ≈ Q·E/(E+Q) with E = expFx(1.702·d)
// (the logistic approximation of the standard normal CDF; this is the
// "CORDIC-style software subroutine" role from §VIII-D). d must be ≥ 0.
// Clobbers s..s+4.
func emitLogisticCDF(b *ezpim.Builder, d, out, s int) {
	k, arg := s+3, s+4
	b.Const(k, 111543) // 1.702 in Q16
	b.Mul(d, k, arg)
	b.Const(k, Q)
	b.Div(arg, k, arg) // 1.702·d in Q16
	emitExpFx(b, arg, out, s)
	// out = E; N = E·Q/(E+Q)
	b.Add(out, k, arg) // E + Q  (k still holds Q)
	b.Mul(out, k, out) // E·Q
	b.Div(out, arg, out)
}

// refLogisticCDF mirrors emitLogisticCDF.
func refLogisticCDF(d uint64) uint64 {
	arg := d * 111543 / Q
	e := refExpFx(arg)
	return e * Q / (e + Q)
}

// emitAbsDiff emits out = |a - b| for signed values via predication.
// Clobbers s.
func emitAbsDiff(b *ezpim.Builder, a, bb, out, s int) {
	b.Sub(a, bb, out)
	b.Init0(s)
	b.If(ezpim.Lt(out, s), func() {
		b.Sub(bb, a, out)
	}, nil)
}

// refAbsDiff mirrors emitAbsDiff.
func refAbsDiff(a, b uint64) uint64 {
	if int64(a-b) < 0 {
		return b - a
	}
	return a - b
}
