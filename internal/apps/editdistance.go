package apps

import (
	"fmt"
	"math/rand"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/ezpim"
	"mpu/internal/isa"
	"mpu/internal/machine"
)

// EditDistance is the bitap-style genome-read matcher (§VIII-D): each lane
// holds one 64-bit encoded reference chunk, and query reads flow systolically
// around a ring of MPUs. At every step each MPU scores its resident chunks
// against the visiting queries with pure bitwise comparisons — XOR, shifted
// XOR (alignment slack, the bitap spirit), and popcounts — keeps the
// running minimum, and forwards the queries to its ring successor.
//
// The constant ring traffic is exactly the communication pattern that makes
// the Baseline configuration live on the host CPU (Fig. 15's off-chip bar).
//
// Register map: r0 = resident chunk, r1 = visiting query, r2 = best score,
// r3 = incoming staging, r4.. scratch.

const (
	edChunk, edQuery, edBest, edStage = 0, 1, 2, 3
	shiftPenalty                      = 3
)

// emitEditStep scores the visiting query against the resident chunk and
// folds it into the running minimum.
func emitEditStep(b *ezpim.Builder) {
	const (
		x, d, pen, a = 4, 5, 6, 7
	)
	// d = popc(query ^ chunk)
	b.Xor(edQuery, edChunk, x)
	b.Popc(x, d)
	// shifted alignment 1: popc((query<<1) ^ chunk) + penalty
	b.Const(pen, shiftPenalty)
	b.LShift(edQuery, a)
	b.Xor(a, edChunk, x)
	b.Popc(x, x)
	b.Add(x, pen, x)
	b.Min(d, x, d)
	// shifted alignment 2: popc((query<<2) ^ chunk) + 2·penalty
	b.LShift(a, a)
	b.Xor(a, edChunk, x)
	b.Popc(x, x)
	b.Add(x, pen, x)
	b.Add(x, pen, x)
	b.Min(d, x, d)
	b.Min(edBest, d, edBest)
}

// refEditStep mirrors emitEditStep.
func refEditStep(chunk, query, best uint64) uint64 {
	pc := func(x uint64) uint64 {
		var n uint64
		for ; x != 0; x >>= 1 {
			n += x & 1
		}
		return n
	}
	d := pc(query ^ chunk)
	if v := pc(query<<1^chunk) + shiftPenalty; v < d {
		d = v
	}
	if v := pc(query<<2^chunk) + 2*shiftPenalty; v < d {
		d = v
	}
	if d < best {
		return d
	}
	return best
}

// EditDistanceConfig sizes the run.
type EditDistanceConfig struct {
	Spec  *backends.Spec
	Mode  machine.Mode
	MPUs  int // ring size (even); 0 means 8
	VRFs  int // VRFs per MPU holding reads; 0 means 4
	Seed  int64
	Check bool

	// Steps caps the systolic rotation: queries visit Steps consecutive
	// ring positions instead of completing the full circle. 0 means MPUs
	// (the full rotation — the paper's configuration). The MPU-count
	// scaling sweep pins Steps so per-MPU work stays constant while the
	// ring grows.
	Steps int

	// NoTrace forwards to machine.Config: interpret every scheduling round.
	NoTrace bool

	// NoJIT forwards to machine.Config: trace replay stays step-interpreted.
	NoJIT bool

	// MachineWorkers forwards to machine.Config.Workers: scheduler
	// goroutines executing ring positions concurrently between rendezvous
	// (0 = one per CPU, 1 = sequential; statistics are identical either
	// way).
	MachineWorkers int
}

// normalize applies the ring defaults and checks chip capacity.
func (cfg *EditDistanceConfig) normalize() error {
	if cfg.MPUs == 0 {
		cfg.MPUs = 8
	}
	if cfg.MPUs%2 != 0 || cfg.MPUs < 2 {
		return fmt.Errorf("apps: editdistance ring size %d must be even and ≥ 2", cfg.MPUs)
	}
	if cfg.MPUs > cfg.Spec.MPUs {
		return fmt.Errorf("apps: ring size %d exceeds chip MPUs %d", cfg.MPUs, cfg.Spec.MPUs)
	}
	if cfg.Steps == 0 {
		cfg.Steps = cfg.MPUs
	}
	if cfg.Steps < 1 || cfg.Steps > cfg.MPUs {
		return fmt.Errorf("apps: editdistance steps %d outside [1,%d]", cfg.Steps, cfg.MPUs)
	}
	if cfg.VRFs == 0 {
		cfg.VRFs = 4
	}
	if cfg.VRFs > cfg.Spec.VRFsPerMPU() {
		return fmt.Errorf("apps: %d VRFs per MPU exceeds capacity", cfg.VRFs)
	}
	return nil
}

// edLayout returns the per-MPU VRF addresses and the identity pair map.
func edLayout(cfg EditDistanceConfig) ([]controlpath.VRFAddr, []controlpath.RFHPair) {
	spec := cfg.Spec
	addrs := make([]controlpath.VRFAddr, cfg.VRFs)
	for v := range addrs {
		addrs[v] = controlpath.VRFAddr{RFH: uint8(v % spec.RFHsPerMPU), VRF: uint8(v / spec.RFHsPerMPU)}
	}
	var pairs []controlpath.RFHPair
	for r := 0; r < spec.RFHsPerMPU; r++ {
		pairs = append(pairs, controlpath.RFHPair{Src: uint8(r), Dst: uint8(r)})
	}
	return addrs, pairs
}

// buildEditDistanceBuilders constructs one builder per ring position for a
// normalized config: T = Steps systolic steps (MPUs for the full rotation);
// even MPUs send before receiving, odd MPUs receive first (ring deadlock
// avoidance, the lower-ID-sends-first rule of §V-B).
func buildEditDistanceBuilders(cfg EditDistanceConfig) []*ezpim.Builder {
	addrs, pairs := edLayout(cfg)
	maxVRFID := (cfg.VRFs - 1) / cfg.Spec.RFHsPerMPU
	builders := make([]*ezpim.Builder, cfg.MPUs)
	for id := 0; id < cfg.MPUs; id++ {
		b := ezpim.NewBuilder()
		next := (id + 1) % cfg.MPUs
		prev := (id + cfg.MPUs - 1) % cfg.MPUs
		for step := 0; step < cfg.Steps; step++ {
			b.Ensemble(addrs, func() { emitEditStep(b) })
			send := func() {
				b.Send(next, pairs, func(t *ezpim.Transfer) {
					for v := 0; v <= maxVRFID; v++ {
						t.Copy(v, edQuery, v, edStage)
					}
				})
			}
			recv := func() { b.Recv(prev) }
			if id%2 == 0 {
				send()
				recv()
			} else {
				recv()
				send()
			}
			b.Ensemble(addrs, func() { b.Mov(edStage, edQuery) })
		}
		builders[id] = b
	}
	return builders
}

// BuildEditDistancePrograms assembles the per-ring-position binaries without
// running them.
func BuildEditDistancePrograms(cfg EditDistanceConfig) ([]isa.Program, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	// ProgramSet runs the commlint composition over the finished ring, so a
	// mis-phased send/recv schedule fails here with a counterexample rather
	// than deadlocking the machine.
	return ezpim.ProgramSet(buildEditDistanceBuilders(cfg))
}

// RunEditDistance executes the systolic application and verifies it.
func RunEditDistance(cfg EditDistanceConfig) (*Result, error) {
	spec := cfg.Spec
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	lanes := spec.Lanes
	addrs, _ := edLayout(cfg)
	builders := buildEditDistanceBuilders(cfg)

	m, err := machine.New(machine.Config{Spec: spec, Mode: cfg.Mode, NumMPUs: cfg.MPUs,
		NoTrace: cfg.NoTrace, NoJIT: cfg.NoJIT, Workers: cfg.MachineWorkers})
	if err != nil {
		return nil, err
	}
	for id, b := range builders {
		p, err := b.Program()
		if err != nil {
			return nil, err
		}
		if err := m.LoadProgram(id, p); err != nil {
			return nil, err
		}
	}

	// Load reference chunks and initial queries.
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.VRFs * lanes
	chunks := make([][]uint64, cfg.MPUs)
	queries := make([][]uint64, cfg.MPUs)
	for id := 0; id < cfg.MPUs; id++ {
		chunks[id] = make([]uint64, n)
		queries[id] = make([]uint64, n)
		for i := range chunks[id] {
			chunks[id][i] = rng.Uint64()
			queries[id][i] = rng.Uint64()
		}
		for v := 0; v < cfg.VRFs; v++ {
			lo := v * lanes
			if err := m.WriteVector(id, addrs[v], edChunk, chunks[id][lo:lo+lanes]); err != nil {
				return nil, err
			}
			if err := m.WriteVector(id, addrs[v], edQuery, queries[id][lo:lo+lanes]); err != nil {
				return nil, err
			}
			if err := m.WriteVector(id, addrs[v], edBest, broadcastLanes(lanes, 1<<20)); err != nil {
				return nil, err
			}
		}
	}

	st, err := m.Run()
	if err != nil {
		return nil, err
	}

	checked := 0
	if cfg.Check {
		// Reference: the query batch starting at MPU q visits MPUs
		// q, q+1, ... in order; chunk lane i of MPU id sees query lane i
		// of batch (id - step) mod MPUs at step `step`.
		for id := 0; id < cfg.MPUs; id++ {
			want := make([]uint64, n)
			for i := range want {
				want[i] = 1 << 20
			}
			for step := 0; step < cfg.Steps; step++ {
				batch := (id - step + cfg.MPUs) % cfg.MPUs
				for i := range want {
					want[i] = refEditStep(chunks[id][i], queries[batch][i], want[i])
				}
			}
			for v := 0; v < cfg.VRFs; v++ {
				got, err := m.ReadVector(id, addrs[v], edBest)
				if err != nil {
					return nil, err
				}
				for l := 0; l < lanes; l++ {
					i := v*lanes + l
					if got[l] != want[i] {
						return nil, fmt.Errorf("apps: editdistance mpu%d lane %d: got %d, want %d", id, i, got[l], want[i])
					}
					checked++
				}
			}
		}
	}

	ez, asm := 0, 0
	for _, b := range builders {
		ez += b.SourceLines()
		asm += b.EmittedInstructions()
	}
	return &Result{
		Name:        "EditDistance",
		Stats:       st,
		Seconds:     st.TimeSeconds(spec.ClockGHz),
		Joules:      st.TotalEnergyPJ() * 1e-12,
		Checked:     checked,
		MPUs:        cfg.MPUs,
		EzpimLines:  ez,
		AsmLines:    asm,
		Steps:       []string{"bitwise comparisons"},
		Collectives: []string{"systolic ring"},
	}, nil
}
