package trace

import "mpu/internal/vrf"

// JIT compilation: when the machine installs a freshly recorded Trace, it
// lowers the step stream once into a Prog — a flat chain of closures with
// everything the interpreter resolves per op (operand directory indices,
// recipe expansions, lane-mask merges, plane aliasing) pre-bound at compile
// time. StepExec streams become vrf.CompiledExec fused-run kernels; mask
// steps become direct method calls. Replaying a round is then a tight loop
// of direct calls with zero per-op dispatch and zero allocation.
//
// Compilation declines (returns nil) when any exec stream fails to lower —
// a lane geometry without a flat word directory, or an unknown micro-op —
// and replay keeps interpreting Steps, so the JIT is strictly an engine
// swap: the Prog touches the same words the interpreter would, in the same
// order, under the same mask.

// Prog is a JIT-compiled body: the closure chain replacing Steps during
// replay.
type Prog struct {
	steps []func(v *vrf.VRF)
	ops   uint64 // total micro-ops per execution, across all exec steps
}

// CompileJIT lowers a compiled trace for VRFs of the given lane count. It
// returns nil — caller stays on the step interpreter — if any exec stream
// cannot be compiled.
func CompileJIT(t *Trace, lanes int) *Prog {
	if t == nil {
		return nil
	}
	p := &Prog{steps: make([]func(v *vrf.VRF), 0, len(t.Steps))}
	for i := range t.Steps {
		s := &t.Steps[i]
		switch s.Kind {
		case StepExec:
			c := vrf.CompileResolved(s.Ops, lanes)
			if c == nil {
				return nil
			}
			p.ops += c.Ops()
			p.steps = append(p.steps, func(v *vrf.VRF) { v.RunCompiled(c) })
		case StepSetMaskCond:
			p.steps = append(p.steps, (*vrf.VRF).SetMaskFromCond)
		case StepSetMaskReg:
			r := int(s.Arg)
			p.steps = append(p.steps, func(v *vrf.VRF) { v.SetMaskFromReg(r) })
		case StepUnmask:
			p.steps = append(p.steps, (*vrf.VRF).Unmask)
		case StepGetMask:
			r := int(s.Arg)
			p.steps = append(p.steps, func(v *vrf.VRF) { v.GetMaskInto(r) })
		default:
			return nil
		}
	}
	return p
}

// Run applies the compiled body to one activated VRF.
func (p *Prog) Run(v *vrf.VRF) {
	for _, s := range p.steps {
		s(v)
	}
}

// Ops reports the micro-ops one execution simulates (accounting
// cross-check; equals the trace's MicroOpsPerVRF).
func (p *Prog) Ops() uint64 { return p.ops }
