package trace

import (
	"math/rand"
	"testing"

	"mpu/internal/micro"
	"mpu/internal/vrf"
)

// jitBody builds a trace with exec and mask steps over real register slots.
func jitBody() *Trace {
	slot := func(reg, bit int) micro.Slot { return micro.Slot(reg*micro.SlotWordBits + bit) }
	return &Trace{
		Steps: []Step{
			{Kind: StepExec, Ops: []micro.ResolvedOp{
				{Kind: micro.XOR, Dst: slot(2, 0), A: slot(0, 0), B: slot(1, 0)},
				{Kind: micro.XOR, Dst: slot(2, 1), A: slot(0, 1), B: slot(1, 1)},
				{Kind: micro.AND, Dst: slot(3, 0), A: slot(0, 0), B: slot(1, 0)},
				{Kind: micro.CONDWR, A: slot(3, 0)},
			}},
			{Kind: StepSetMaskCond},
			{Kind: StepExec, Ops: []micro.ResolvedOp{
				{Kind: micro.SET1, Dst: slot(4, 0)},
				{Kind: micro.MASKRD, Dst: slot(5, 0)},
			}},
			{Kind: StepUnmask},
			{Kind: StepGetMask, Arg: 6},
			{Kind: StepSetMaskReg, Arg: 6},
		},
		MicroOpsPerVRF: 6,
	}
}

// The compiled Prog must mutate a VRF exactly like the step interpreter
// (the replayRound loop in internal/machine).
func interpretSteps(tr *Trace, v *vrf.VRF) {
	for i := range tr.Steps {
		s := &tr.Steps[i]
		switch s.Kind {
		case StepExec:
			v.ExecAllResolved(s.Ops)
		case StepSetMaskCond:
			v.SetMaskFromCond()
		case StepSetMaskReg:
			v.SetMaskFromReg(int(s.Arg))
		case StepUnmask:
			v.Unmask()
		case StepGetMask:
			v.GetMaskInto(int(s.Arg))
		}
	}
}

func TestCompileJITMatchesStepInterpreter(t *testing.T) {
	tr := jitBody()
	for _, lanes := range []int{64, 256} {
		p := CompileJIT(tr, lanes)
		if p == nil {
			t.Fatalf("lanes=%d: CompileJIT declined a straight-line body", lanes)
		}
		if p.Ops() != tr.MicroOpsPerVRF {
			t.Fatalf("lanes=%d: Prog.Ops() = %d, want %d", lanes, p.Ops(), tr.MicroOpsPerVRF)
		}
		vi, vj := vrf.New(lanes), vrf.New(lanes)
		for _, v := range []*vrf.VRF{vi, vj} {
			r := rand.New(rand.NewSource(99))
			for reg := 0; reg <= 6; reg++ {
				vals := make([]uint64, lanes)
				for l := range vals {
					vals[l] = r.Uint64()
				}
				v.WriteReg(reg, vals)
			}
		}
		interpretSteps(tr, vi)
		p.Run(vj)
		if vi.MicroOps != vj.MicroOps {
			t.Fatalf("lanes=%d: MicroOps %d vs %d", lanes, vi.MicroOps, vj.MicroOps)
		}
		for reg := 0; reg <= 6; reg++ {
			a, b := vi.ReadReg(reg), vj.ReadReg(reg)
			for l := range a {
				if a[l] != b[l] {
					t.Fatalf("lanes=%d: r%d lane %d: interp=%#x jit=%#x", lanes, reg, l, a[l], b[l])
				}
			}
		}
		am, bm := vi.MaskBits(), vj.MaskBits()
		ac, bc := vi.CondBits(), vj.CondBits()
		for l := 0; l < lanes; l++ {
			if am[l] != bm[l] || ac[l] != bc[l] {
				t.Fatalf("lanes=%d: mask/cond diverge at lane %d", lanes, l)
			}
		}
	}
}

func TestCompileJITDeclines(t *testing.T) {
	if CompileJIT(nil, 64) != nil {
		t.Error("compiled a nil trace")
	}
	tr := jitBody()
	if CompileJIT(tr, 65) != nil {
		t.Error("compiled for a ragged lane count")
	}
	bad := &Trace{Steps: []Step{{Kind: StepExec, Ops: []micro.ResolvedOp{{Kind: 200}}}}}
	if CompileJIT(bad, 64) != nil {
		t.Error("compiled an unknown micro-op kind")
	}
}

// Replay is the simulator's hot loop: one compiled round must not allocate.
func TestProgRunDoesNotAllocate(t *testing.T) {
	tr := jitBody()
	for _, lanes := range []int{64, 256} {
		p := CompileJIT(tr, lanes)
		v := vrf.New(lanes)
		if n := testing.AllocsPerRun(100, func() { p.Run(v) }); n != 0 {
			t.Errorf("lanes=%d: Prog.Run allocates %v times per replay", lanes, n)
		}
	}
}
