package trace

import "sync"

// ProgMemo caches JIT-compiled programs by step-stream content, so a body
// that is re-recorded — a pooled machine Reset between requests, the same
// binary reloaded, or the same body recorded by several cores — reuses the
// closure chain instead of lowering it again. Compilation allocates one or
// more closures per micro-op, which for wide-recipe bodies is thousands of
// allocations; the memo collapses that to a hash of the step stream plus a
// structural comparison.
//
// A compiled Prog is a pure function of the step stream and the lane
// geometry: it pre-binds word-directory indices and expansion contents, and
// charges nothing. That is exactly the contract the machine's
// recipe-expansion memo relies on to survive Machine.Reset, and ProgMemo
// survives it the same way — reuse changes no statistic, only wall-clock
// and allocations (pinned by TestResetReuseMatchesFresh and
// TestProgMemoReuse).
//
// Lookup and install take a mutex: cores on the parallel scheduler may
// record the same body concurrently. A race between two compilers of the
// same stream at worst compiles twice and keeps the first entry; both
// results behave identically.
type ProgMemo struct {
	mu sync.Mutex
	m  map[uint64][]memoEntry
}

type memoEntry struct {
	lanes int
	steps []Step
	prog  *Prog // nil: compilation declined; memoized so the decline is also O(1)
}

// NewProgMemo returns an empty memo.
func NewProgMemo() *ProgMemo { return &ProgMemo{m: map[uint64][]memoEntry{}} }

// Compile returns the JIT program for the trace's step stream, lowering it
// at most once per distinct (stream, lanes) pair. A nil return means
// compilation declined (unsupported lane geometry or micro-op) — also
// memoized, so replay's step interpreter is not re-probed per recording.
func (pm *ProgMemo) Compile(t *Trace, lanes int) *Prog {
	if t == nil {
		return nil
	}
	h := hashSteps(t.Steps, lanes)
	pm.mu.Lock()
	for _, e := range pm.m[h] {
		if e.lanes == lanes && stepsEqual(e.steps, t.Steps) {
			pm.mu.Unlock()
			return e.prog
		}
	}
	pm.mu.Unlock()
	p := CompileJIT(t, lanes)
	pm.mu.Lock()
	defer pm.mu.Unlock()
	for _, e := range pm.m[h] {
		if e.lanes == lanes && stepsEqual(e.steps, t.Steps) {
			return e.prog // lost the race; keep the first entry
		}
	}
	pm.m[h] = append(pm.m[h], memoEntry{lanes: lanes, steps: t.Steps, prog: p})
	return p
}

// hashSteps is FNV-1a over every field the compiler reads, so equal streams
// collide by construction and unequal ones are separated before the
// structural comparison runs.
func hashSteps(steps []Step, lanes int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		h = (h ^ v) * prime
	}
	mix(uint64(lanes))
	for i := range steps {
		s := &steps[i]
		mix(uint64(s.Kind))
		mix(uint64(s.Arg))
		for _, op := range s.Ops {
			mix(uint64(op.Kind))
			mix(uint64(op.Dst) | uint64(op.Dst2)<<16 | uint64(op.A)<<32 | uint64(op.B)<<48)
			mix(uint64(op.C))
		}
	}
	return h
}

// stepsEqual is the structural comparison backing the memo: hash collisions
// between distinct streams must never alias two programs.
func stepsEqual(a, b []Step) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Arg != b[i].Arg || len(a[i].Ops) != len(b[i].Ops) {
			return false
		}
		for j := range a[i].Ops {
			if a[i].Ops[j] != b[i].Ops[j] {
				return false
			}
		}
	}
	return true
}
