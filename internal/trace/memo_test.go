package trace

import "testing"

// TestProgMemoReuse pins the memo contract: structurally equal step streams
// share one compiled program (pointer-identical), while a different lane
// geometry or a different stream compiles separately, and a declined
// compilation is memoized as the nil it returned.
func TestProgMemoReuse(t *testing.T) {
	pm := NewProgMemo()

	a, b := jitBody(), jitBody() // equal content, distinct backing arrays
	pa := pm.Compile(a, 64)
	if pa == nil {
		t.Fatal("CompileJIT declined a straight-line body at 64 lanes")
	}
	if pb := pm.Compile(b, 64); pb != pa {
		t.Fatalf("structurally equal streams compiled to distinct programs: %p vs %p", pa, pb)
	}

	wide := pm.Compile(a, 256)
	if wide == nil {
		t.Fatal("CompileJIT declined the same body at 256 lanes")
	}
	if wide == pa {
		t.Fatal("lane geometries 64 and 256 shared one compiled program")
	}

	c := jitBody()
	c.Steps[0].Ops[0].Dst++ // same shape, different operand slot
	if pc := pm.Compile(c, 64); pc == pa {
		t.Fatal("distinct streams aliased one compiled program")
	}

	// 48 lanes has no flat word directory, so compilation declines; the
	// decline must be memoized (same nil on the second call, no re-probe).
	if p := pm.Compile(a, 48); p != nil {
		t.Fatalf("expected nil program for 48 lanes, got %p", p)
	}
	if p := pm.Compile(a, 48); p != nil {
		t.Fatalf("memoized decline returned non-nil on second call: %p", p)
	}

	if p := pm.Compile(nil, 64); p != nil {
		t.Fatalf("nil trace compiled to %p", p)
	}
}
