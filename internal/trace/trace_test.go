package trace

import (
	"reflect"
	"testing"

	"mpu/internal/micro"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Abort()
	r.Instr()
	r.Cycles(3)
	r.Lookup(1, 2)
	r.Exec(nil, 1, 0.5)
	r.Mask(StepUnmask, 0)
	r.Offload(10, 1)
	r.Push()
	r.Pop()
	if r.Aborted() {
		t.Fatal("nil recorder reports aborted")
	}
}

func TestRecorderCompilesBody(t *testing.T) {
	r := NewRecorder()
	ops := []micro.ResolvedOp{{Kind: micro.COPY}, {Kind: micro.NOT}}

	r.Instr()
	r.Lookup(7, len(ops))
	r.Exec(ops, 4, 1.5)
	r.Instr()
	r.Lookup(9, 1)
	r.Exec(ops[:1], 2, 0.5)
	r.Instr()
	r.Mask(StepSetMaskReg, 3)
	r.Instr()
	r.Lookup(7, len(ops))
	r.Exec(ops, 4, 1.5)

	tr := r.Finish(42)
	if tr == nil {
		t.Fatal("Finish returned nil for a well-formed recording")
	}
	if tr.EndPC != 42 {
		t.Errorf("EndPC = %d, want 42", tr.EndPC)
	}
	if tr.Instructions != 4 {
		t.Errorf("Instructions = %d, want 4", tr.Instructions)
	}
	if tr.Cycles != 10 || tr.ComputeCycles != 10 {
		t.Errorf("Cycles/ComputeCycles = %d/%d, want 10/10", tr.Cycles, tr.ComputeCycles)
	}
	if tr.MicroOpsPerVRF != 5 || tr.Issue != 5 {
		t.Errorf("MicroOpsPerVRF/Issue = %d/%d, want 5/5", tr.MicroOpsPerVRF, tr.Issue)
	}
	if tr.EnergyPerVRF != 1.5+0.5+1.5 {
		t.Errorf("EnergyPerVRF = %v, want 3.5", tr.EnergyPerVRF)
	}
	// Two distinct opcodes, three lookups, opcode 9 touched before 7's
	// last occurrence.
	if tr.NumLookups != 3 || len(tr.Lookups) != 2 {
		t.Errorf("NumLookups/Lookups = %d/%d, want 3/2", tr.NumLookups, len(tr.Lookups))
	}
	if want := []uint8{9, 7}; !reflect.DeepEqual(tr.TouchOrder, want) {
		t.Errorf("TouchOrder = %v, want %v", tr.TouchOrder, want)
	}
	// Adjacent Execs merge; the mask step splits them.
	if len(tr.Steps) != 3 || tr.Steps[0].Kind != StepExec || tr.Steps[1].Kind != StepSetMaskReg || tr.Steps[2].Kind != StepExec {
		t.Fatalf("Steps = %+v, want [exec mask exec]", tr.Steps)
	}
	if len(tr.Steps[0].Ops) != 3 || len(tr.Steps[2].Ops) != 2 {
		t.Errorf("merged op counts = %d/%d, want 3/2", len(tr.Steps[0].Ops), len(tr.Steps[2].Ops))
	}
	if tr.Steps[1].Arg != 3 {
		t.Errorf("mask step arg = %d, want 3", tr.Steps[1].Arg)
	}
}

func TestRecorderExecCopiesSharedExpansion(t *testing.T) {
	r := NewRecorder()
	shared := []micro.ResolvedOp{{Kind: micro.COPY}}
	// Give the shared slice spare capacity so an in-place append would
	// overwrite the machine-wide expansion cache.
	shared = append(make([]micro.ResolvedOp, 0, 8), shared...)
	r.Exec(shared, 1, 0)
	r.Exec([]micro.ResolvedOp{{Kind: micro.NOT}}, 1, 0)
	if shared[:cap(shared)][1].Kind == micro.NOT {
		t.Fatal("merge wrote into the shared expansion slice")
	}
}

func TestRecorderAborts(t *testing.T) {
	t.Run("explicit", func(t *testing.T) {
		r := NewRecorder()
		r.Abort()
		if !r.Aborted() || r.Finish(0) != nil {
			t.Fatal("aborted recording survived Finish")
		}
	})
	t.Run("pop-below-entry", func(t *testing.T) {
		r := NewRecorder()
		r.Pop()
		if r.Finish(0) != nil {
			t.Fatal("recording that popped a caller frame survived Finish")
		}
	})
	t.Run("unbalanced-push", func(t *testing.T) {
		r := NewRecorder()
		r.Push()
		if r.Finish(0) != nil {
			t.Fatal("recording that leaked a frame survived Finish")
		}
	})
	t.Run("expansion-size-conflict", func(t *testing.T) {
		r := NewRecorder()
		r.Lookup(7, 2)
		r.Lookup(7, 3)
		if r.Finish(0) != nil {
			t.Fatal("opcode at two expansion sizes survived Finish")
		}
	})
	t.Run("balanced-call", func(t *testing.T) {
		r := NewRecorder()
		r.Push()
		r.Pop()
		if r.Finish(0) == nil {
			t.Fatal("balanced push/pop aborted the recording")
		}
	})
}

func TestCacheNegativeEntries(t *testing.T) {
	c := NewCache()
	k := Key{BodyStart: 3, BodyLen: 5}
	if _, ok := c.Lookup(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Install(k, nil)
	tr, ok := c.Lookup(k)
	if !ok || tr != nil {
		t.Fatalf("negative entry Lookup = (%v, %v), want (nil, true)", tr, ok)
	}
	c.Install(k, &Trace{EndPC: 9})
	if tr, _ := c.Lookup(k); tr == nil || tr.EndPC != 9 {
		t.Fatal("positive entry did not replace negative entry")
	}
	c.Reset()
	if _, ok := c.Lookup(k); ok {
		t.Fatal("Reset left an entry behind")
	}
}

// The classification verdict is computed at most once per key: ineligible
// bodies must not re-run the CFG walk on every activation.
func TestCacheMemoizesClassification(t *testing.T) {
	c := NewCache()
	k := Key{BodyStart: 1, BodyLen: 2}
	calls := 0
	classify := func() bool { calls++; return false }
	for i := 0; i < 5; i++ {
		if c.Eligible(k, classify) {
			t.Fatal("classify returned false but Eligible reported true")
		}
	}
	if calls != 1 {
		t.Fatalf("classify ran %d times, want 1", calls)
	}
	// A different key classifies independently.
	k2 := Key{BodyStart: 9, BodyLen: 2}
	ok := c.Eligible(k2, func() bool { return true })
	if !ok {
		t.Fatal("second key inherited the first key's verdict")
	}
	// Eligibility and recording outcome are independent: installing a
	// trace must not disturb the memoized verdict.
	c.Install(k2, &Trace{EndPC: 4})
	if !c.Eligible(k2, func() bool { t.Fatal("verdict recomputed"); return false }) {
		t.Fatal("verdict lost after Install")
	}
	// Reset clears verdicts along with traces (program reload).
	c.Reset()
	if c.Eligible(k, func() bool { calls++; return true }) != true || calls != 2 {
		t.Fatal("Reset did not clear the memoized verdict")
	}
}
