// Package trace implements the compile-once/replay-many execution engine
// for compute-ensemble bodies. The Fig. 10 scheduler replays an ensemble
// body once per thermal activation round; for the bodies the lint CFG
// proves straight-line or statically resolvable (internal/lint.ClassifyBody)
// every round executes the identical instruction path with identical
// per-round costs. The machine therefore interprets such a body once, under
// a Recorder that compiles it into a flat Trace — the fully resolved
// micro-op stream with recipe expansions inlined and JUMP/RETURN folded
// away, plus the precomputed per-round cycle/energy/stat deltas — and
// replays later rounds in O(1) accounting time: apply the data-mutating
// steps to the round's activated VRFs and add the aggregated deltas.
//
// Bodies with data-dependent control flow (JUMP_COND), bodies that spill
// the playback buffer, and rounds whose recipe-cache residency cannot
// guarantee all-hit decode fall back to the interpreter unchanged.
package trace

import (
	"sort"

	"mpu/internal/controlpath"
	"mpu/internal/micro"
)

// Key identifies a compiled body within one core's program: the body entry
// pc and the lexical body length. The capability set and decode
// configuration are fixed per machine, so they need no key bits; the cache
// is invalidated wholesale when a new program is loaded.
type Key struct {
	BodyStart, BodyLen int
}

// StepKind discriminates the data-mutating operations a replayed round
// applies to each activated VRF.
type StepKind uint8

const (
	// StepExec applies a resolved micro-op stream (one or more consecutive
	// datapath instructions, merged).
	StepExec StepKind = iota
	// StepSetMaskCond loads the lane mask from the conditional register.
	StepSetMaskCond
	// StepSetMaskReg loads the lane mask from bit 0 of register Arg.
	StepSetMaskReg
	// StepUnmask re-enables every lane.
	StepUnmask
	// StepGetMask copies the lane mask into register Arg.
	StepGetMask
)

// Step is one data-mutating operation of a compiled body.
type Step struct {
	Kind StepKind
	Arg  uint8
	Ops  []micro.ResolvedOp // StepExec only
}

// Trace is a compiled ensemble body: the replayable step stream plus the
// aggregated charge deltas one execution round costs. Integer deltas are
// order-insensitive; the two float deltas (EnergyPerVRF, HostEnergyPJ) are
// accumulated during recording in exactly the per-round order the
// interpreter uses, so replaying them reproduces bit-identical energies.
type Trace struct {
	Steps []Step
	EndPC int // pc just past COMPUTE_DONE

	Cycles         int64   // core cycle delta (all-hit decode; incl. offload latency)
	Issue          int64   // micro-op issue cycles (front-end dynamic energy)
	Instructions   uint64  // dynamic instructions, COMPUTE_DONE included
	ComputeCycles  int64   // datapath execution share of Cycles
	MicroOpsPerVRF uint64  // micro-ops executed per activated VRF
	EnergyPerVRF   float64 // datapath pJ per activated VRF
	Offloads       uint64  // Baseline host round trips (JUMP/RETURN)
	OffloadCycles  int64   // their latency share of Cycles
	HostEnergyPJ   float64 // their energy

	// Recipe-decode replay state (ModeMPU): the distinct lookups the body
	// performs, the per-round lookup count, and the body's opcodes in
	// last-occurrence order for LRU-exact touch replay.
	Lookups    []controlpath.LookupPair
	NumLookups uint64
	TouchOrder []uint8

	// Prog, when non-nil, is the JIT-compiled form of Steps (jit.go):
	// replay runs the closure chain instead of interpreting the steps. The
	// machine compiles it lazily — on the body's first replayed round, not
	// at install time — so bodies that never replay (recipe-cold decode,
	// NoJIT) are never lowered. Compiled records that the lowering attempt
	// concluded; Prog nil after that means the JIT declined (unsupported
	// lane geometry or micro-op, or disabled) and replay interprets Steps.
	Prog     *Prog
	Compiled bool
}

// Cache holds one core's compiled bodies, each entry carrying the
// memoized CFG-classification verdict separately from the recording
// outcome. The split matters for ineligible (dynamic) bodies: their
// verdict is computed once and every later activation skips straight to
// the interpreter without re-running lint.ClassifyBody or consulting the
// recorder.
type Cache struct {
	m map[Key]*cacheEntry
}

type cacheEntry struct {
	classified bool // Eligible's verdict has been memoized
	eligible   bool // ClassifyBody proved the body straight-line/static
	done       bool // a recording attempt concluded (tr may still be nil)
	tr         *Trace
}

// NewCache returns an empty trace cache.
func NewCache() *Cache { return &Cache{m: map[Key]*cacheEntry{}} }

func (c *Cache) entry(k Key) *cacheEntry {
	e := c.m[k]
	if e == nil {
		e = &cacheEntry{}
		c.m[k] = e
	}
	return e
}

// Eligible reports whether the body may be traced at all, invoking
// classify at most once per key — the verdict is memoized for the life of
// the cache (a program reload Resets it).
func (c *Cache) Eligible(k Key, classify func() bool) bool {
	e := c.entry(k)
	if !e.classified {
		e.eligible = classify()
		e.classified = true
	}
	return e.eligible
}

// Lookup returns the cached trace and whether a recording attempt has
// concluded. A (nil, true) result is a negative entry: the recording
// proved the body unreplayable, so later executions skip straight to the
// interpreter.
func (c *Cache) Lookup(k Key) (*Trace, bool) {
	e := c.m[k]
	if e == nil {
		return nil, false
	}
	return e.tr, e.done
}

// Install records the outcome of a recording attempt: a compiled trace, or
// nil to mark the body unreplayable.
func (c *Cache) Install(k Key, t *Trace) {
	e := c.entry(k)
	e.tr, e.done = t, true
}

// Reset drops every entry (program reload).
func (c *Cache) Reset() {
	if len(c.m) > 0 {
		c.m = map[Key]*cacheEntry{}
	}
}

// Recorder compiles a Trace while the interpreter executes a body's first
// round. The machine drives it at every charge point; if the body turns out
// to do anything a replay could not reproduce — pop a return-address frame
// it did not push, leave a frame behind, execute a data-dependent branch,
// or decode one opcode at two different expansion sizes — the recording
// aborts and Finish returns nil.
//
// Every recording method is a no-op on a nil *Recorder, so the interpreter
// drives the hooks unconditionally and passes nil for unrecorded rounds.
type Recorder struct {
	t       Trace
	depth   int // return-stack depth relative to body entry
	aborted bool
	sizes   map[uint8]int // opcode -> expansion micro-ops
	last    map[uint8]int // opcode -> last lookup ordinal
}

// NewRecorder starts recording one body round.
func NewRecorder() *Recorder {
	return &Recorder{sizes: map[uint8]int{}, last: map[uint8]int{}}
}

// Abort marks the recording unusable.
func (r *Recorder) Abort() {
	if r == nil {
		return
	}
	r.aborted = true
}

// Aborted reports whether the recording was abandoned.
func (r *Recorder) Aborted() bool { return r != nil && r.aborted }

// Instr notes one executed body instruction.
func (r *Recorder) Instr() {
	if r == nil {
		return
	}
	r.t.Instructions++
}

// Cycles adds plain control cycles (mask ops, NOP, redirects, EFI reads).
func (r *Recorder) Cycles(n int64) {
	if r == nil {
		return
	}
	r.t.Cycles += n
}

// Lookup notes one recipe-table decode (ModeMPU datapath instruction).
func (r *Recorder) Lookup(opcode uint8, microOps int) {
	if r == nil {
		return
	}
	if prev, ok := r.sizes[opcode]; ok {
		if prev != microOps {
			// Two expansion sizes under one opcode can never be resident
			// simultaneously, so replay could never be all-hit.
			r.aborted = true
		}
	} else {
		r.sizes[opcode] = microOps
		r.t.Lookups = append(r.t.Lookups, controlpath.LookupPair{Opcode: opcode, MicroOps: microOps})
	}
	r.t.NumLookups++
	r.last[opcode] = int(r.t.NumLookups)
}

// Exec records one datapath instruction: its resolved expansion (merged
// into a preceding StepExec when adjacent), its execution cycles, and its
// per-VRF energy.
func (r *Recorder) Exec(rops []micro.ResolvedOp, exec int64, perVRFPJ float64) {
	if r == nil {
		return
	}
	if n := len(r.t.Steps); n > 0 && r.t.Steps[n-1].Kind == StepExec {
		r.t.Steps[n-1].Ops = append(r.t.Steps[n-1].Ops, rops...)
	} else {
		// Copy: the expansion slice is shared machine-wide and a later
		// merge must not write into it.
		r.t.Steps = append(r.t.Steps, Step{Kind: StepExec, Ops: append([]micro.ResolvedOp(nil), rops...)})
	}
	n := int64(len(rops))
	r.t.Cycles += exec
	r.t.ComputeCycles += exec
	r.t.Issue += n
	r.t.MicroOpsPerVRF += uint64(n)
	r.t.EnergyPerVRF += perVRFPJ
}

// Mask records a mask-manipulating step.
func (r *Recorder) Mask(kind StepKind, arg uint8) {
	if r == nil {
		return
	}
	r.t.Steps = append(r.t.Steps, Step{Kind: kind, Arg: arg})
}

// Offload records one Baseline host round trip inside the body.
func (r *Recorder) Offload(lat int64, pj float64) {
	if r == nil {
		return
	}
	r.t.Offloads++
	r.t.OffloadCycles += lat
	r.t.Cycles += lat
	r.t.HostEnergyPJ += pj
}

// Push notes a JUMP pushing a return frame.
func (r *Recorder) Push() {
	if r == nil {
		return
	}
	r.depth++
}

// Pop notes a RETURN consuming one. Popping a frame the body did not push
// makes the body's path depend on caller state, so the recording aborts.
func (r *Recorder) Pop() {
	if r == nil {
		return
	}
	r.depth--
	if r.depth < 0 {
		r.aborted = true
	}
}

// Finish seals the recording. It returns nil if the body proved
// unreplayable: aborted, or return-stack depth not restored (replaying such
// a body would mutate the stack every round).
func (r *Recorder) Finish(endPC int) *Trace {
	if r.aborted || r.depth != 0 {
		return nil
	}
	r.t.EndPC = endPC
	r.t.TouchOrder = make([]uint8, 0, len(r.last))
	for op := range r.last {
		r.t.TouchOrder = append(r.t.TouchOrder, op)
	}
	sort.Slice(r.t.TouchOrder, func(i, j int) bool {
		return r.last[r.t.TouchOrder[i]] < r.last[r.t.TouchOrder[j]]
	})
	return &r.t
}
