package trace

import "sort"

// CacheEntry is the exported form of one cache slot, used by machine
// snapshots. It carries the memoized classification verdict and recording
// outcome exactly as the private entry does; Tr is shared, not copied —
// installed traces are immutable once recorded (Prog/Compiled excepted,
// which the restoring machine recomputes).
type CacheEntry struct {
	Key        Key
	Classified bool // Eligible's verdict has been memoized
	Eligible   bool // ClassifyBody proved the body straight-line/static
	Done       bool // a recording attempt concluded (Tr may still be nil)
	Tr         *Trace
}

// SnapshotEntries returns every cache slot ordered by key (BodyStart, then
// BodyLen) — a canonical order independent of map iteration, so two
// machines in the same state serialize identically.
func (c *Cache) SnapshotEntries() []CacheEntry {
	out := make([]CacheEntry, 0, len(c.m))
	for k, e := range c.m {
		out = append(out, CacheEntry{Key: k, Classified: e.classified, Eligible: e.eligible, Done: e.done, Tr: e.tr})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.BodyStart != out[j].Key.BodyStart {
			return out[i].Key.BodyStart < out[j].Key.BodyStart
		}
		return out[i].Key.BodyLen < out[j].Key.BodyLen
	})
	return out
}

// RestoreEntries replaces the cache contents with the given slots.
func (c *Cache) RestoreEntries(entries []CacheEntry) {
	c.m = make(map[Key]*cacheEntry, len(entries))
	for _, e := range entries {
		c.m[e.Key] = &cacheEntry{classified: e.Classified, eligible: e.Eligible, done: e.Done, tr: e.Tr}
	}
}
