package serve

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// reqLogger writes one structured JSON line per answered request. It is a
// deliberate non-dependency logger: the daemon's operational surface is
// small enough that a mutex around an io.Writer beats pulling a logging
// framework into a stdlib-only module.
type reqLogger struct {
	mu   sync.Mutex
	w    io.Writer
	node string // cluster node label, stamped on every entry when non-empty
	now  func() time.Time
}

func newReqLogger(w io.Writer, node string) *reqLogger {
	return &reqLogger{w: w, node: node, now: time.Now}
}

// logEntry is the request-log schema; field order is the JSON order.
type logEntry struct {
	TS        string  `json:"ts"`
	Msg       string  `json:"msg"`
	Node      string  `json:"node,omitempty"`
	Pool      string  `json:"pool,omitempty"`
	Workload  string  `json:"workload,omitempty"`
	Pipeline  string  `json:"pipeline,omitempty"`
	Class     string  `json:"class,omitempty"`
	Status    int     `json:"status,omitempty"`
	MS        float64 `json:"ms,omitempty"`
	BatchSize int     `json:"batch_size,omitempty"`
	Queue     int     `json:"queue,omitempty"`
	Err       string  `json:"err,omitempty"`
}

func (l *reqLogger) log(e logEntry) {
	if l == nil || l.w == nil {
		return
	}
	e.TS = l.now().UTC().Format(time.RFC3339Nano)
	if e.Node == "" {
		e.Node = l.node
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	l.w.Write(b)
	l.mu.Unlock()
}
