package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/fbp"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

// The pipeline session plane: POST /v1/pipelines compiles an FBP graph once
// into a persistent session, and each later POST /v1/pipelines/{id} streams
// records through the already-compiled, already-warm pipeline. The expensive
// work — parsing, placement, ensemble emission, commlint verification,
// trace recording and JIT compilation — happens exactly once per session;
// every record after the first replays warm traces (the per-record response
// pins this with its trace_misses/jit_compiles summary, which a steady-state
// session reports as zero).
//
// Sessions do not pin machines. Between requests the session's complete
// architectural state is parked as a Machine.Snapshot and the machine
// returns to a per-geometry free list, so MaxSessions sessions coexist with
// far fewer live machines; the next advance restores the snapshot onto any
// free machine of the same geometry (the fingerprint covers configuration,
// not machine identity — the same property the QoS preemption plane relies
// on). Admission failures reuse the /v1/execute taxonomy: a grammar or
// component error is a 400, a graph the machine-level verifier rejects
// (deadlocking composition, geometry overflow) is a 422 carrying the finding
// report, and a full session table is 503 + Retry-After.

// maxAdvanceRecords bounds one advance request; longer streams split across
// requests (which is the intended shape — parking between requests is what
// keeps sessions from pinning machines).
const maxAdvanceRecords = 256

// PipelineRequest is the POST /v1/pipelines body.
type PipelineRequest struct {
	Source  string `json:"source"`             // FBP graph text
	Backend string `json:"backend"`            // backends.ByName key
	Mode    string `json:"mode,omitempty"`     // mpu (default) or baseline
	MaxMPUs int    `json:"max_mpus,omitempty"` // optional placement cap below the server's
}

// PipelineResponse is the create success body: the session id plus the
// placement the compiler chose.
type PipelineResponse struct {
	ID      string           `json:"id"`
	Backend string           `json:"backend"`
	Mode    string           `json:"mode"`
	MPUs    int              `json:"mpus"`
	Lanes   int              `json:"lanes"`
	Hops    int              `json:"hops"`
	Nodes   []fbp.PlacedNode `json:"nodes"`
}

// PipelineSet preloads one vector register on a named node before a record
// runs. RFH/VRF address within the node's MPU (streaming components read
// record registers at rfh 0, vrf 0).
type PipelineSet struct {
	Node   string   `json:"node"`
	RFH    uint8    `json:"rfh"`
	VRF    uint8    `json:"vrf"`
	Reg    int      `json:"reg"`
	Values []uint64 `json:"values"`
}

// PipelineRef names one vector register on a named node to read back after a
// record runs.
type PipelineRef struct {
	Node string `json:"node"`
	RFH  uint8  `json:"rfh"`
	VRF  uint8  `json:"vrf"`
	Reg  int    `json:"reg"`
}

// PipelineDump is one post-record register read.
type PipelineDump struct {
	Node   string   `json:"node"`
	RFH    uint8    `json:"rfh"`
	VRF    uint8    `json:"vrf"`
	Reg    int      `json:"reg"`
	Values []uint64 `json:"values"`
}

// PipelineRecord is one record streamed through the session: registers to
// write before the run and registers to read after it.
type PipelineRecord struct {
	Sets  []PipelineSet `json:"sets,omitempty"`
	Dumps []PipelineRef `json:"dumps,omitempty"`
}

// AdvanceRequest is the POST /v1/pipelines/{id} body.
type AdvanceRequest struct {
	Records []PipelineRecord `json:"records"`
	Stats   bool             `json:"stats,omitempty"` // include per-record machine.Stats
}

// RecordResult is one record's outputs.
type RecordResult struct {
	Dumps []PipelineDump  `json:"dumps,omitempty"`
	Stats json.RawMessage `json:"stats,omitempty"`
}

// SessionSummary sums this request's per-record counters. TraceMisses and
// JITCompiles are the recompilation account: a steady-state session (every
// record after its first) reports both as zero — records ride entirely on
// traces recorded and JIT'd during record one, across parks, restores, and
// machine changes.
type SessionSummary struct {
	Records      int    `json:"records"`
	TotalRecords uint64 `json:"total_records"` // session lifetime, including this request
	Cycles       int64  `json:"cycles"`
	TraceHits    uint64 `json:"trace_hits"`
	TraceMisses  uint64 `json:"trace_misses"`
	JITCompiles  uint64 `json:"jit_compiles"`
	JITReplays   uint64 `json:"jit_replays"`
}

// AdvanceResponse is the advance success body.
type AdvanceResponse struct {
	ID      string         `json:"id"`
	Records []RecordResult `json:"records"`
	Summary SessionSummary `json:"summary"`
}

// SessionStatus is the GET /v1/pipelines/{id} body and the element of the
// GET /v1/pipelines listing.
type SessionStatus struct {
	ID            string           `json:"id"`
	Backend       string           `json:"backend"`
	Mode          string           `json:"mode"`
	MPUs          int              `json:"mpus"`
	Nodes         []fbp.PlacedNode `json:"nodes"`
	Records       uint64           `json:"records"`
	Parked        bool             `json:"parked"` // state held as a snapshot, no machine pinned
	Busy          bool             `json:"busy"`
	SnapshotBytes int              `json:"snapshot_bytes"`
	AgeSec        float64          `json:"age_sec"`
}

// session is one live pipeline: the compiled placement plus the parked
// architectural state between requests. busy/snap/records are guarded by the
// manager mutex; compiled/nodeMPU/spec are immutable after create.
type session struct {
	id       string
	key      string // machine geometry key (spec/mode/mpus)
	spec     *backends.Spec
	mode     machine.Mode
	compiled *fbp.Compiled
	nodeMPU  map[string]int
	created  time.Time

	busy    bool   // an advance request holds the session
	loaded  bool   // programs have been loaded at least once
	snap    []byte // parked state; nil before the first advance completes
	records uint64 // lifetime records streamed
}

// sessionManager owns the session table and the per-geometry free list of
// machines that parked sessions resume onto. The sessions map is written
// only by createSession, advanceSession, and closeSession (cmd/repolint
// rule 8); every other path reads it under the mutex.
type sessionManager struct {
	mu       sync.Mutex
	sessions map[string]*session
	idle     map[string][]*machine.Machine
	maxIdle  int
	nextID   uint64
}

func newSessionManager(maxIdle int) *sessionManager {
	return &sessionManager{idle: map[string][]*machine.Machine{}, maxIdle: maxIdle}
}

func sessionKey(spec *backends.Spec, mode machine.Mode, mpus int) string {
	return spec.Name + "/" + mode.String() + "/" + strconv.Itoa(mpus)
}

// sessionMachineConfig derives the machine configuration for a session's
// geometry the same way the pools derive theirs, so snapshot fingerprints
// agree across every machine the manager ever builds for that key.
func (s *Server) sessionMachineConfig(spec *backends.Spec, mode machine.Mode, mpus int) machine.Config {
	mc := workloads.MachineConfigFor(workloads.RunConfig{
		Spec: spec, Mode: mode, NoTrace: s.cfg.NoTrace, NoJIT: s.cfg.NoJIT, Workers: s.cfg.MachineWorkers,
	})
	mc.NumMPUs = mpus
	return mc
}

// acquireMachine pops an idle machine for the geometry or builds a fresh
// one. Idle machines may carry a previous tenant's state; both consumers
// overwrite it wholesale (Reset+LoadProgram on a session's first advance,
// Restore on every later one).
func (s *Server) acquireMachine(sess *session) (*machine.Machine, error) {
	s.sess.mu.Lock()
	if ms := s.sess.idle[sess.key]; len(ms) > 0 {
		m := ms[len(ms)-1]
		s.sess.idle[sess.key] = ms[:len(ms)-1]
		s.sess.mu.Unlock()
		return m, nil
	}
	s.sess.mu.Unlock()
	return machine.New(s.sessionMachineConfig(sess.spec, sess.mode, sess.compiled.MPUs))
}

// releaseMachine returns a machine to the free list (bounded; overflow is
// dropped for the collector — building a machine is cheap, holding dozens of
// idle ones is not).
func (s *Server) releaseMachine(key string, m *machine.Machine) {
	s.sess.mu.Lock()
	defer s.sess.mu.Unlock()
	if len(s.sess.idle[key]) < s.sess.maxIdle {
		s.sess.idle[key] = append(s.sess.idle[key], m)
	}
}

// createSession compiles the graph and installs the session. One of the
// three audited writers of the session table (cmd/repolint rule 8).
func (s *Server) createSession(req *PipelineRequest) (*PipelineResponse, int, error) {
	mode, err := ParseMode(req.Mode)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	spec, err := backends.ByName(req.Backend)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if strings.TrimSpace(req.Source) == "" {
		return nil, http.StatusBadRequest, fmt.Errorf("pipeline request needs a source graph")
	}
	maxMPUs := s.cfg.MaxPipelineMPUs
	if req.MaxMPUs > 0 && req.MaxMPUs < maxMPUs {
		maxMPUs = req.MaxMPUs
	}
	c, err := fbp.CompileSource(req.Source, fbp.Options{Spec: spec, MaxMPUs: maxMPUs})
	if err != nil {
		// The same admission taxonomy as /v1/execute: malformed submissions
		// are 400, graphs the machine-level verifier rejects are 422 with
		// the finding report attached.
		var le *fbp.LintError
		if errors.As(err, &le) {
			return nil, http.StatusUnprocessableEntity, &admissionError{report: le.Report}
		}
		return nil, http.StatusBadRequest, err
	}
	nodeMPU := make(map[string]int, len(c.Nodes))
	for _, n := range c.Nodes {
		nodeMPU[n.Name] = n.MPU
	}
	s.sess.mu.Lock()
	defer s.sess.mu.Unlock()
	if len(s.sess.sessions) >= s.cfg.MaxSessions {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("session table full (%d live sessions)", s.cfg.MaxSessions)
	}
	s.sess.nextID++
	id := "p" + strconv.FormatUint(s.sess.nextID, 10)
	if s.cfg.NodeID != "" {
		id = s.cfg.NodeID + "-" + id
	}
	sess := &session{
		id: id, key: sessionKey(spec, mode, c.MPUs),
		spec: spec, mode: mode, compiled: c, nodeMPU: nodeMPU, created: time.Now(),
	}
	if s.sess.sessions == nil {
		s.sess.sessions = map[string]*session{}
	}
	s.sess.sessions[id] = sess
	s.metrics.observeSessionOpen(1)
	return &PipelineResponse{
		ID: id, Backend: spec.Name, Mode: mode.String(),
		MPUs: c.MPUs, Lanes: spec.Lanes, Hops: c.Hops, Nodes: c.Nodes,
	}, http.StatusOK, nil
}

// advanceSession streams one request's records through the session: claim,
// restore (or first-load), then per record Rewind → write → Run → read, and
// finally park the state and free the machine. One of the three audited
// writers of the session table (cmd/repolint rule 8) — it claims and
// releases the busy flag and swaps the parked snapshot.
func (s *Server) advanceSession(id string, req *AdvanceRequest) (*AdvanceResponse, int, error) {
	if len(req.Records) == 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("advance request carries no records")
	}
	if len(req.Records) > maxAdvanceRecords {
		return nil, http.StatusBadRequest, fmt.Errorf("advance request carries %d records, cap is %d per request", len(req.Records), maxAdvanceRecords)
	}
	s.sess.mu.Lock()
	sess := s.sess.sessions[id]
	if sess == nil {
		s.sess.mu.Unlock()
		return nil, http.StatusNotFound, fmt.Errorf("no session %q", id)
	}
	if sess.busy {
		s.sess.mu.Unlock()
		return nil, http.StatusConflict, fmt.Errorf("session %q has an advance in flight", id)
	}
	sess.busy = true
	snap, loaded := sess.snap, sess.loaded
	s.sess.mu.Unlock()

	unclaim := func() {
		s.sess.mu.Lock()
		sess.busy = false
		s.sess.mu.Unlock()
	}
	m, err := s.acquireMachine(sess)
	if err != nil {
		unclaim()
		return nil, http.StatusInternalServerError, err
	}
	switch {
	case snap != nil:
		// A failed Restore leaves the machine untouched, so it can safely go
		// back to the free list while the session keeps its old snapshot.
		if err := m.Restore(snap); err != nil {
			s.releaseMachine(sess.key, m)
			unclaim()
			return nil, http.StatusInternalServerError, err
		}
	case !loaded:
		m.Reset()
		for mpu, p := range sess.compiled.Programs {
			if err := m.LoadProgram(mpu, p); err != nil {
				s.releaseMachine(sess.key, m)
				unclaim()
				return nil, http.StatusInternalServerError, err
			}
		}
	}

	resp := &AdvanceResponse{ID: id}
	status := http.StatusOK
	var reqErr error
	for _, rec := range req.Records {
		m.Rewind()
		if status, reqErr = s.applySets(m, sess, rec.Sets); reqErr != nil {
			break
		}
		st, err := m.Run()
		if err != nil {
			status, reqErr = http.StatusInternalServerError, err
			break
		}
		rr := RecordResult{}
		if rr.Dumps, reqErr = s.readDumps(m, sess, rec.Dumps); reqErr != nil {
			status = http.StatusBadRequest
			break
		}
		if req.Stats {
			b, err := json.Marshal(st)
			if err != nil {
				status, reqErr = http.StatusInternalServerError, err
				break
			}
			rr.Stats = b
		}
		resp.Records = append(resp.Records, rr)
		resp.Summary.Records++
		resp.Summary.Cycles += st.Cycles
		resp.Summary.TraceHits += st.TraceHits
		resp.Summary.TraceMisses += st.TraceMisses
		resp.Summary.JITCompiles += st.JITCompiles
		resp.Summary.JITReplays += st.JITReplays
		s.metrics.rollupStats(st.TraceHits, st.TraceMisses, st.TraceFallbacks, st.JITCompiles, st.JITReplays, st.Rounds)
	}

	// Park whatever state the stream reached — also on a record error, so a
	// bad record (wrong lane count, unknown node) costs that request, not
	// the session.
	newSnap := m.Snapshot()
	s.releaseMachine(sess.key, m)
	s.sess.mu.Lock()
	delta := len(newSnap) - len(sess.snap)
	sess.snap = newSnap
	sess.loaded = true
	sess.records += uint64(resp.Summary.Records)
	resp.Summary.TotalRecords = sess.records
	sess.busy = false
	s.sess.mu.Unlock()
	s.metrics.observeSessionPark(resp.Summary.Records, delta)
	if reqErr != nil {
		return nil, status, reqErr
	}
	return resp, status, nil
}

func (s *Server) applySets(m *machine.Machine, sess *session, sets []PipelineSet) (int, error) {
	for _, set := range sets {
		mpu, ok := sess.nodeMPU[set.Node]
		if !ok {
			return http.StatusBadRequest, fmt.Errorf("set names unknown node %q", set.Node)
		}
		a := controlpath.VRFAddr{RFH: set.RFH, VRF: set.VRF}
		if err := m.WriteVector(mpu, a, set.Reg, set.Values); err != nil {
			return http.StatusBadRequest, err
		}
	}
	return http.StatusOK, nil
}

func (s *Server) readDumps(m *machine.Machine, sess *session, refs []PipelineRef) ([]PipelineDump, error) {
	var out []PipelineDump
	for _, d := range refs {
		mpu, ok := sess.nodeMPU[d.Node]
		if !ok {
			return nil, fmt.Errorf("dump names unknown node %q", d.Node)
		}
		a := controlpath.VRFAddr{RFH: d.RFH, VRF: d.VRF}
		vals, err := m.ReadVector(mpu, a, d.Reg)
		if err != nil {
			return nil, err
		}
		out = append(out, PipelineDump{Node: d.Node, RFH: d.RFH, VRF: d.VRF, Reg: d.Reg, Values: vals})
	}
	return out, nil
}

// closeSession removes a session and releases its parked snapshot. One of
// the three audited writers of the session table (cmd/repolint rule 8).
func (s *Server) closeSession(id string) (*SessionStatus, int, error) {
	s.sess.mu.Lock()
	sess := s.sess.sessions[id]
	if sess == nil {
		s.sess.mu.Unlock()
		return nil, http.StatusNotFound, fmt.Errorf("no session %q", id)
	}
	if sess.busy {
		s.sess.mu.Unlock()
		return nil, http.StatusConflict, fmt.Errorf("session %q has an advance in flight", id)
	}
	delete(s.sess.sessions, id)
	st := sess.status()
	s.sess.mu.Unlock()
	s.metrics.observeSessionClose(st.SnapshotBytes)
	return st, http.StatusOK, nil
}

// status renders the session's externally visible state; call with the
// manager mutex held.
func (sess *session) status() *SessionStatus {
	return &SessionStatus{
		ID:            sess.id,
		Backend:       sess.spec.Name,
		Mode:          sess.mode.String(),
		MPUs:          sess.compiled.MPUs,
		Nodes:         sess.compiled.Nodes,
		Records:       sess.records,
		Parked:        sess.snap != nil && !sess.busy,
		Busy:          sess.busy,
		SnapshotBytes: len(sess.snap),
		AgeSec:        time.Since(sess.created).Seconds(),
	}
}

// handlePipelines serves the collection endpoint: POST creates a session,
// GET lists the live ones.
func (s *Server) handlePipelines(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.sess.mu.Lock()
		ids := make([]string, 0, len(s.sess.sessions))
		for id := range s.sess.sessions {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var out struct {
			Sessions []*SessionStatus `json:"sessions"`
		}
		out.Sessions = []*SessionStatus{}
		for _, id := range ids {
			out.Sessions = append(out.Sessions, s.sess.sessions[id].status())
		}
		s.sess.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		start := time.Now()
		if s.Draining() {
			s.refusePipeline(w, "", start, "draining")
			return
		}
		var req PipelineRequest
		body := http.MaxBytesReader(w, r.Body, 1<<20)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			s.finishPipeline(w, "", "create", start, http.StatusBadRequest,
				errResult(http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)))
			return
		}
		resp, status, err := s.createSession(&req)
		if err != nil {
			if status == http.StatusServiceUnavailable {
				s.refusePipeline(w, "", start, err.Error())
				return
			}
			s.finishPipeline(w, "", "create", start, status, pipelineError(status, err))
			return
		}
		s.finishPipeline(w, resp.ID, "create", start, status, jsonResult(status, resp))
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET or POST only"})
	}
}

// handlePipelineID serves one session: POST advances it, GET reports its
// status, DELETE closes it.
func (s *Server) handlePipelineID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/pipelines/")
	if id == "" || strings.Contains(id, "/") {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "want /v1/pipelines/{id}"})
		return
	}
	start := time.Now()
	switch r.Method {
	case http.MethodGet:
		s.sess.mu.Lock()
		sess := s.sess.sessions[id]
		var st *SessionStatus
		if sess != nil {
			st = sess.status()
		}
		s.sess.mu.Unlock()
		if st == nil {
			writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no session %q", id)})
			return
		}
		writeJSON(w, http.StatusOK, st)
	case http.MethodPost:
		// Advancing an existing session is admitted work, so it keeps
		// flowing during a drain; only new sessions are refused.
		var req AdvanceRequest
		body := http.MaxBytesReader(w, r.Body, 64<<20)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			s.finishPipeline(w, id, "advance", start, http.StatusBadRequest,
				errResult(http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)))
			return
		}
		resp, status, err := s.advanceSession(id, &req)
		if err != nil {
			s.finishPipeline(w, id, "advance", start, status, pipelineError(status, err))
			return
		}
		s.finishPipeline(w, id, "advance", start, status, jsonResult(status, resp))
	case http.MethodDelete:
		st, status, err := s.closeSession(id)
		if err != nil {
			s.finishPipeline(w, id, "close", start, status, pipelineError(status, err))
			return
		}
		s.finishPipeline(w, id, "close", start, status, jsonResult(status, st))
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET, POST, or DELETE only"})
	}
}

// pipelineError renders an error into the shared errorBody envelope,
// attaching the finding report on 422s exactly as /v1/execute does.
func pipelineError(status int, err error) *batchResult {
	var adm *admissionError
	if errors.As(err, &adm) {
		body, _ := json.Marshal(errorBody{Error: adm.Error(), Findings: adm.report.Findings})
		return &batchResult{status: status, body: body}
	}
	return errResult(status, err)
}

func jsonResult(status int, v any) *batchResult {
	body, err := json.Marshal(v)
	if err != nil {
		return errResult(http.StatusInternalServerError, err)
	}
	return &batchResult{status: status, body: body}
}

// finishPipeline writes the response, counts it in the metrics plane, and
// logs one line.
func (s *Server) finishPipeline(w http.ResponseWriter, id, op string, start time.Time, status int, res *batchResult) {
	elapsed := time.Since(start).Seconds()
	s.metrics.observeRequest(status, elapsed)
	writeBody(w, status, res.body)
	e := logEntry{Msg: "pipeline", Pipeline: id, Workload: op, Status: status, MS: elapsed * 1e3}
	if status >= 400 {
		var eb errorBody
		if json.Unmarshal(res.body, &eb) == nil {
			e.Err = eb.Error
		}
	}
	s.logger.log(e)
}

// refusePipeline is the 503 + Retry-After path for creates (draining, or the
// session table is full).
func (s *Server) refusePipeline(w http.ResponseWriter, id string, start time.Time, why string) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	s.metrics.observeDrop(http.StatusServiceUnavailable)
	res := errResult(http.StatusServiceUnavailable, fmt.Errorf("not admitted: %s", why))
	writeBody(w, res.status, res.body)
	s.logger.log(logEntry{Msg: "refused", Pipeline: id, Workload: "create",
		Status: http.StatusServiceUnavailable, MS: msSince(start), Err: why})
}
