package serve

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
	"time"

	"mpu/internal/backends"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

// TestServeParityColdWarmBatchedConcurrent is the PR's acceptance test: the
// same request returns byte-identical machine.Stats JSON whether it is
// served cold (first request on a fresh pool), warm (a recycled machine),
// batched (coalesced with identical requests), or under 8 concurrent
// clients. It runs under -race in CI (make race-short).
func TestServeParityColdWarmBatchedConcurrent(t *testing.T) {
	req := Request{Workload: "gcd", Backend: "racer", Elements: 512, Seed: 11, Check: true}

	statsOf := func(t *testing.T, body []byte) []byte {
		t.Helper()
		return []byte(decodeResponse(t, body).Stats)
	}

	// Cold + warm: a single-machine pool, so the second request is
	// guaranteed to reuse (and Reset) the machine that served the first.
	_, ts := newTestServer(t, Config{
		Pools: []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 1}},
	})
	code, body, _ := postExecute(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("cold: %d %s", code, body)
	}
	cold := statsOf(t, body)

	// Interleave a different program so the warm machine's architectural
	// state is thoroughly dirty before the repeat.
	if code, body, _ := postExecute(t, ts.URL, Request{
		Workload: "relu", Backend: "racer", Elements: 256, Seed: 3,
	}); code != http.StatusOK {
		t.Fatalf("interleave: %d %s", code, body)
	}
	code, body, _ = postExecute(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("warm: %d %s", code, body)
	}
	if warm := statsOf(t, body); !bytes.Equal(cold, warm) {
		t.Fatalf("warm stats diverge from cold:\ncold: %s\nwarm: %s", cold, warm)
	}

	// Batched: a wide window so concurrent identical requests coalesce into
	// one SPMD run.
	_, tsBatch := newTestServer(t, Config{
		Pools:       []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 1}},
		BatchWindow: 150 * time.Millisecond,
	})
	const nBatch = 4
	var wg sync.WaitGroup
	batched := make([][]byte, nBatch)
	sizes := make([]int, nBatch)
	for i := 0; i < nBatch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, _ := postExecute(t, tsBatch.URL, req)
			if code != http.StatusOK {
				t.Errorf("batched: %d %s", code, body)
				return
			}
			r := decodeResponse(t, body)
			batched[i] = []byte(r.Stats)
			sizes[i] = r.BatchSize
		}(i)
	}
	wg.Wait()
	for i, st := range batched {
		if sizes[i] <= 1 {
			t.Errorf("request %d was not coalesced (batch_size=%d)", i, sizes[i])
		}
		if !bytes.Equal(cold, st) {
			t.Fatalf("batched stats diverge from cold:\ncold:    %s\nbatched: %s", cold, st)
		}
	}

	// Concurrent: 8 clients against a 2-machine pool, coalescing disabled
	// so every client is a distinct run racing for warm machines.
	_, tsConc := newTestServer(t, Config{
		Pools:       []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 2}},
		BatchWindow: -1,
	})
	const nConc = 8
	conc := make([][]byte, nConc)
	for i := 0; i < nConc; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, _ := postExecute(t, tsConc.URL, req)
			if code != http.StatusOK {
				t.Errorf("concurrent: %d %s", code, body)
				return
			}
			conc[i] = statsOf(t, body)
		}(i)
	}
	wg.Wait()
	for i, st := range conc {
		if !bytes.Equal(cold, st) {
			t.Fatalf("concurrent client %d stats diverge from cold:\ncold: %s\ngot:  %s", i, cold, st)
		}
	}
}

// TestServePoolHammer drives one warm pool hard under the race detector:
// many concurrent distinct requests (seeds differ, so nothing coalesces)
// across a pool smaller than the client count, each response checked
// against a fresh single-machine reference run. Any sharing of per-core
// caches between pool entries shows up either as a -race report or as a
// stats mismatch.
func TestServePoolHammer(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Pools:       []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 4}},
		QueueDepth:  64,
		BatchWindow: -1,
	})

	kernels := []string{"vecadd", "gcd", "relu", "vecxor"}
	const perKernel = 8 // 32 concurrent requests over 4 machines

	// Fresh-machine reference stats per (kernel, seed).
	type key struct {
		kernel string
		seed   int64
	}
	want := map[key][]byte{}
	for _, name := range kernels {
		for s := int64(0); s < perKernel; s++ {
			k := workloads.ByName(name)
			res, err := workloads.Run(k, workloads.RunConfig{
				Spec: poolSpecOf(t, ts.URL), Mode: machine.ModeMPU,
				TotalElements: 128, Seed: s, Check: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			b, err := res.Stats.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			want[key{name, s}] = b
		}
	}

	var wg sync.WaitGroup
	for _, name := range kernels {
		for s := int64(0); s < perKernel; s++ {
			wg.Add(1)
			go func(name string, seed int64) {
				defer wg.Done()
				code, body, _ := postExecute(t, ts.URL, Request{
					Workload: name, Backend: "racer", Elements: 128, Seed: seed, Check: true,
				})
				if code != http.StatusOK {
					t.Errorf("%s/%d: status %d: %s", name, seed, code, body)
					return
				}
				got := []byte(decodeResponse(t, body).Stats)
				if !bytes.Equal(want[key{name, seed}], got) {
					t.Errorf("%s/%d: pooled stats diverge from fresh run:\nwant: %s\ngot:  %s",
						name, seed, want[key{name, seed}], got)
				}
			}(name, s)
		}
	}
	wg.Wait()
}

// poolSpecOf resolves the RACER spec the way the server under test did, so
// reference runs use the identical backend object.
func poolSpecOf(t *testing.T, _ string) *backends.Spec {
	t.Helper()
	spec, err := backends.ByName("racer")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}
