package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mpu/internal/machine"
)

func TestParseClass(t *testing.T) {
	for in, want := range map[string]string{
		"": ClassBatch, "batch": ClassBatch, "Batch": ClassBatch,
		"latency": ClassLatency, " LATENCY ": ClassLatency,
	} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, in := range []string{"turbo", "best-effort", "latency,batch"} {
		if _, err := ParseClass(in); err == nil {
			t.Errorf("ParseClass(%q) accepted", in)
		}
	}
}

// postExecuteClass is postExecute with an X-QoS header attached.
func postExecuteClass(t *testing.T, url, class string, req Request) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/execute", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if class != "" {
		hr.Header.Set("X-QoS", class)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestExecuteRejectsBadQoSHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := postExecuteClass(t, ts.URL, "turbo", Request{
		Workload: "vecadd", Backend: "racer", Elements: 64,
	})
	if code != http.StatusBadRequest {
		t.Fatalf("X-QoS: turbo: status %d, want 400: %s", code, body)
	}
	if !strings.Contains(string(body), "QoS") {
		t.Fatalf("error does not name the header: %s", body)
	}
}

func scrapeMetric(t *testing.T, url, name string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			f := strings.Fields(line)
			return f[len(f)-1]
		}
	}
	return ""
}

// preemptOnce runs the preemption choreography against a single-machine pool:
// a batch request is admitted first and held in its coalescing window, a
// latency request arrives while the worker is busy, and (with preemption
// enabled) the batch job parks at its first ensemble boundary, the latency
// request runs, and the batch job is restored and resumed. Returns the batch
// run's stats and whether a preemption was recorded.
func preemptOnce(t *testing.T, cfg Config, batchReq, latReq Request) (batchStats []byte, preempted bool) {
	t.Helper()
	_, ts := newTestServer(t, cfg)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, body := postExecuteClass(t, ts.URL, ClassBatch, batchReq)
		if code != http.StatusOK {
			t.Errorf("batch request: %d %s", code, body)
			return
		}
		batchStats = []byte(decodeResponse(t, body).Stats)
	}()
	// Land the latency request inside the batch job's coalescing window so
	// the worker is reliably busy with preemptible work.
	time.Sleep(cfg.BatchWindow / 4)
	code, body := postExecuteClass(t, ts.URL, ClassLatency, latReq)
	if code != http.StatusOK {
		t.Fatalf("latency request: %d %s", code, body)
	}
	wg.Wait()
	return batchStats, scrapeMetric(t, ts.URL, "mpud_preemptions_total") != "0"
}

// TestServePreemptParity is the serve-level acceptance bar: a batch run that
// was preempted at an ensemble boundary, snapshotted into the parking lot,
// and resumed after a latency request answers with byte-identical
// machine.Stats to the same request served uncontended. It runs under -race
// in CI (make race-short).
func TestServePreemptParity(t *testing.T) {
	batchReq := Request{Workload: "gcd", Backend: "racer", Elements: 512, Seed: 11, Check: true}
	latReq := Request{Workload: "vecadd", Backend: "racer", Elements: 64, Seed: 3}

	// Uncontended reference.
	_, ts := newTestServer(t, Config{
		Pools: []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 1}},
	})
	code, body, _ := postExecute(t, ts.URL, batchReq)
	if code != http.StatusOK {
		t.Fatalf("reference: %d %s", code, body)
	}
	want := []byte(decodeResponse(t, body).Stats)

	cfg := Config{
		Pools:       []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 1}},
		BatchWindow: 300 * time.Millisecond,
	}
	// The choreography depends on the latency request landing inside the
	// batch window; retry on a slow machine rather than flake.
	for attempt := 0; attempt < 3; attempt++ {
		got, preempted := preemptOnce(t, cfg, batchReq, latReq)
		if t.Failed() {
			return
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("preempted batch stats diverge from uncontended run:\nwant: %s\ngot:  %s", want, got)
		}
		if preempted {
			return
		}
		t.Logf("attempt %d: no preemption observed, retrying", attempt)
	}
	t.Fatal("no preemption observed in 3 attempts")
}

// TestServeNoPreempt pins the opt-out: with NoPreempt the same choreography
// never parks a job (latency work waits for the batch run), and parity holds.
func TestServeNoPreempt(t *testing.T) {
	batchReq := Request{Workload: "gcd", Backend: "racer", Elements: 512, Seed: 11, Check: true}
	latReq := Request{Workload: "vecadd", Backend: "racer", Elements: 64, Seed: 3}

	_, ts := newTestServer(t, Config{
		Pools: []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 1}},
	})
	code, body, _ := postExecute(t, ts.URL, batchReq)
	if code != http.StatusOK {
		t.Fatalf("reference: %d %s", code, body)
	}
	want := []byte(decodeResponse(t, body).Stats)

	got, preempted := preemptOnce(t, Config{
		Pools:       []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 1}},
		BatchWindow: 150 * time.Millisecond,
		NoPreempt:   true,
	}, batchReq, latReq)
	if t.Failed() {
		return
	}
	if preempted {
		t.Fatal("NoPreempt server recorded a preemption")
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("batch stats diverge under NoPreempt:\nwant: %s\ngot:  %s", want, got)
	}
}

// TestClassCoalescingSeparation pins that a latency request never joins an
// open batch-class twin: identical requests in different classes execute as
// distinct batches.
func TestClassCoalescingSeparation(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Pools:       []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 1}},
		BatchWindow: 150 * time.Millisecond,
	})
	req := Request{Workload: "vecadd", Backend: "racer", Elements: 128, Seed: 5}
	var wg sync.WaitGroup
	sizes := make([]int, 2)
	for i, class := range []string{ClassBatch, ClassLatency} {
		wg.Add(1)
		go func(i int, class string) {
			defer wg.Done()
			code, body := postExecuteClass(t, ts.URL, class, req)
			if code != http.StatusOK {
				t.Errorf("%s: %d %s", class, code, body)
				return
			}
			sizes[i] = decodeResponse(t, body).BatchSize
		}(i, class)
	}
	wg.Wait()
	if sizes[0] != 1 || sizes[1] != 1 {
		t.Fatalf("cross-class coalescing: batch sizes %v, want [1 1]", sizes)
	}
}

// TestParkedGaugesDrain pins the parking-lot accounting: after a preempted
// job has resumed and answered, the parked gauges are back to zero and a
// restore was observed.
func TestParkedGaugesDrain(t *testing.T) {
	cfg := Config{
		Pools:       []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 1}},
		BatchWindow: 300 * time.Millisecond,
	}
	batchReq := Request{Workload: "gcd", Backend: "racer", Elements: 512, Seed: 11}
	latReq := Request{Workload: "vecadd", Backend: "racer", Elements: 64, Seed: 3}
	for attempt := 0; attempt < 3; attempt++ {
		_, ts := newTestServer(t, cfg)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body := postExecuteClass(t, ts.URL, ClassBatch, batchReq)
			if code != http.StatusOK {
				t.Errorf("batch request: %d %s", code, body)
			}
		}()
		time.Sleep(cfg.BatchWindow / 4)
		if code, body := postExecuteClass(t, ts.URL, ClassLatency, latReq); code != http.StatusOK {
			t.Fatalf("latency request: %d %s", code, body)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		if scrapeMetric(t, ts.URL, "mpud_preemptions_total") == "0" {
			t.Logf("attempt %d: no preemption observed, retrying", attempt)
			continue
		}
		if got := scrapeMetric(t, ts.URL, "mpud_parked_jobs"); got != "0" {
			t.Fatalf("mpud_parked_jobs = %s after drain, want 0", got)
		}
		if got := scrapeMetric(t, ts.URL, "mpud_parked_bytes"); got != "0" {
			t.Fatalf("mpud_parked_bytes = %s after drain, want 0", got)
		}
		if got := scrapeMetric(t, ts.URL, "mpud_restore_seconds_count"); got == "0" || got == "" {
			t.Fatalf("mpud_restore_seconds_count = %q, want >= 1", got)
		}
		return
	}
	t.Fatal("no preemption observed in 3 attempts")
}
