package serve

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the metrics golden files")

// goldenMetrics populates every series the daemon exports with fixed
// observations, so the render is fully deterministic.
func goldenMetrics() *metrics {
	m := newMetrics("n1")
	m.observeRequest(200, 0.004)
	m.observeRequest(200, 0.03)
	m.observeRequest(504, 31)
	m.observeDrop(503)
	m.observeBatch(3)
	m.observeBatch(1)
	m.rollupStats(5, 2, 1, 3, 4, 100)
	m.addInflight(2)
	m.observeClass(ClassBatch, 0.03)
	m.observeClass(ClassLatency, 0.004)
	m.observePark(1000)
	m.observePark(500)
	m.observeSpill()
	m.observeUnpark(1000)
	m.observeRestore(0.0005)
	m.observeSessionOpen(2)
	m.observeSessionPark(10, 4096)
	m.observeSessionPark(5, 0)
	m.observeSessionClose(2048)
	return m
}

// TestMetricsRenderGolden pins the full /metrics exposition byte-for-byte:
// the series names, help text, label shapes, and emission order are a wire
// contract — mpurouter scrapes mpud_queue_depth and mpud_inflight by name,
// and dashboards key on the rest. Renaming or reordering a series must show
// up as a reviewed golden diff, not a silent scrape break.
// Regenerate with: go test ./internal/serve -run TestMetricsRenderGolden -update
func TestMetricsRenderGolden(t *testing.T) {
	got := goldenMetrics().render([]queueDepth{
		{pool: "MIMDRAM/MPU", depth: 0},
		{pool: "RACER/MPU", depth: 2},
	})
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("metrics rendering drifted from %s (regenerate with -update if intended):\n%s",
			golden, diffLines(string(want), got))
	}
}

// TestMetricsRenderNoNode pins the standalone-daemon shape: without a NodeID
// the gauges carry no node label (single-node dashboards key on the bare
// series names).
func TestMetricsRenderNoNode(t *testing.T) {
	got := newMetrics("").render(nil)
	for _, want := range []string{
		"mpud_inflight 0\n",
		"mpud_parked_jobs 0\n",
		"mpud_parked_bytes 0\n",
		"mpud_sessions 0\n",
		"mpud_session_snapshot_bytes 0\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in node-less rendering", strings.TrimSpace(want))
		}
	}
	if strings.Contains(got, "node=") {
		t.Error("node label leaked into node-less rendering")
	}
}

// diffLines renders a compact first-divergence report for golden mismatches.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\nwant: %s\ngot:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(w), len(g))
}
